package dynalloc

// End-to-end integration test of the live subsystem: crash the serving
// store into a worst-case state and assert the online recovery detector
// fires within the paper's O(m ln m) scale — the serving-layer mirror
// of the offline pipeline in integration_test.go.

import (
	"context"
	"testing"

	"dynalloc/internal/core"
	"dynalloc/internal/process"
	"dynalloc/internal/serve"
)

func TestServeCrashRecoveryWithinTheorem1Scale(t *testing.T) {
	const (
		n     = 1024
		m0    = 1024
		crash = 3 * n // crash one bin to a tower holding 3n extra balls
		seed  = 1998  // single worker + pinned shards: fully deterministic
	)
	st := serve.NewStoreShards(n, 16)
	st.FillBalanced(m0)

	pol := serve.NewABKUPolicy(2)
	m := m0 + crash
	target, err := serve.NewTarget(pol, process.ScenarioA, n, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	det := serve.NewDetector(st, target)

	// Fault injection: the store leaves the typical state.
	st.Crash(0, crash)
	det.MarkDisrupted()
	if s := det.Check(); s.Recovered || s.MaxLoad < crash {
		t.Fatalf("crash not visible to the detector: %+v", s)
	}

	// Theorem 1: from an arbitrary state, I_A-ABKU[2] is within eps of
	// stationary after m ln(m/eps) phases. The detector's max-load
	// criterion is a coarser (one-dimensional) notion of "typical", so
	// a small constant over the bound is the right budget; c=8 holds
	// with a wide margin for this pinned seed (measured ~0.6x the
	// bound).
	budget := int64(8 * target.BudgetSteps)
	eng := serve.NewEngine(serve.Config{
		Store: st, Policy: pol, Scenario: process.ScenarioA,
		Workers: 1, Seed: seed, MaxSteps: budget,
		Detector: det, CheckEvery: 256, StopOnRecovery: true,
	})
	res := eng.Run(context.Background())
	if !res.Recovered {
		s, _ := det.Last()
		t.Fatalf("detector did not fire within %d phases (8x Theorem 1 bound %.0f); last: %+v",
			budget, target.BudgetSteps, s)
	}
	if res.Episode.Steps <= 0 || res.Episode.Steps > budget {
		t.Fatalf("episode steps %d outside (0, %d]", res.Episode.Steps, budget)
	}
	t.Logf("recovered in %d steps = %.2fx the m·ln(m/eps) bound (%.0f), wall %v",
		res.Episode.Steps, float64(res.Episode.Steps)/target.BudgetSteps,
		target.BudgetSteps, res.Episode.Wall)

	// The recovered state really is typical: max load within the fluid
	// prediction + slack, and the closed drive conserved the balls.
	s := det.Check()
	if s.MaxLoad > target.MaxLoad() {
		t.Fatalf("recovered with max load %d above target %d", s.MaxLoad, target.MaxLoad())
	}
	if st.Total() != int64(m) {
		t.Fatalf("closed drive changed the ball count to %d, want %d", st.Total(), m)
	}

	// Sanity tie to the theory layer: the budget the detector publishes
	// is exactly the Theorem 1 formula.
	if want := core.Theorem1Bound(m, 0.25); target.BudgetSteps != want {
		t.Fatalf("detector budget %.0f != Theorem1Bound %.0f", target.BudgetSteps, want)
	}
}
