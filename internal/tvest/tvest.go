// Package tvest estimates variation-distance mixing curves by
// simulation, for systems too large to enumerate.
//
// The idea: project the chain onto a discrete statistic (e.g. the pair
// (max load, imbalance)), estimate the distribution of the statistic at
// time t over K independent replicas started from the worst state, and
// compare it with a long-run stationary reference sample. Projection
// can only lose mass differences, so the projected variation distance
// lower-bounds the true one, and the resulting mixing-time estimate is a
// LOWER estimate of tau(eps). Together with coupling coalescence times
// (which upper-bound mixing via the coupling inequality) this brackets
// the paper's quantity from both sides — which is how E13 verifies
// Theorem 1 at sizes where exact enumeration (E10) is impossible.
package tvest

import (
	"fmt"
	"math"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/metrics"
	"dynalloc/internal/par"
	"dynalloc/internal/stats"
)

// StateKey discretizes a load vector into a statistic class.
type StateKey func(v loadvec.Vector) string

// FullKey is the identity statistic (exact state) — only for tiny
// systems, where it makes the projected distance equal the true one.
func FullKey(v loadvec.Vector) string { return v.Key() }

// GapMaxKey projects onto (imbalance, max load), the pair the recovery
// definition cares about.
func GapMaxKey(v loadvec.Vector) string {
	return fmt.Sprintf("%d/%d", v.Gap(), v.MaxLoad())
}

// TopKey projects onto the three largest loads — finer than GapMaxKey,
// still O(1) to compute.
func TopKey(v loadvec.Vector) string {
	a, b, c := 0, 0, 0
	if v.N() > 0 {
		a = v[0]
	}
	if v.N() > 1 {
		b = v[1]
	}
	if v.N() > 2 {
		c = v[2]
	}
	return fmt.Sprintf("%d/%d/%d", a, b, c)
}

// Stepper is one replica of the chain under study: tvest only needs to
// advance it and read its state. process.Process satisfies this.
type Stepper interface {
	Step()
	Peek() loadvec.Vector
}

// Reference samples the stationary distribution of the statistic from a
// single long run: burn steps of warm-up, then samples draws thinned by
// thin steps each.
func Reference(chain Stepper, key StateKey, burn, samples, thin int) map[string]int {
	defer metrics.Span("tvest.reference.stage_ns")()
	for i := 0; i < burn; i++ {
		chain.Step()
	}
	counts := make(map[string]int)
	for s := 0; s < samples; s++ {
		for i := 0; i < thin; i++ {
			chain.Step()
		}
		counts[key(chain.Peek())]++
	}
	return counts
}

// Curve estimates the projected variation distance to the reference at
// each checkpoint time (checkpoints must be increasing). It runs K
// replicas built by factory (trial index -> fresh chain with a derived
// stream), walks each replica through the checkpoints, and compares the
// empirical statistic distribution at each checkpoint against ref.
//
// The estimate carries sampling noise of order sqrt(support)/sqrt(K); it
// neither floors at 0 nor is unbiased, so read curves comparatively.
func Curve(factory func(trial int) Stepper, key StateKey, ref map[string]int, K int, checkpoints []int64) []float64 {
	defer metrics.Span("tvest.curve.stage_ns")()
	if len(checkpoints) == 0 {
		return nil
	}
	for i := 1; i < len(checkpoints); i++ {
		if checkpoints[i] <= checkpoints[i-1] {
			panic("tvest: checkpoints must be strictly increasing")
		}
	}
	// keys[trial][ci] = statistic at checkpoint ci.
	keys := par.Map(K, 0, func(trial int) []string {
		chain := factory(trial)
		out := make([]string, len(checkpoints))
		var t int64
		for ci, cp := range checkpoints {
			for ; t < cp; t++ {
				chain.Step()
			}
			out[ci] = key(chain.Peek())
		}
		return out
	})
	curve := make([]float64, len(checkpoints))
	for ci := range checkpoints {
		counts := make(map[string]int)
		for trial := 0; trial < K; trial++ {
			counts[keys[trial][ci]]++
		}
		curve[ci] = stats.TVDistanceCounts(counts, ref)
	}
	return curve
}

// FirstBelow returns the first checkpoint whose estimated distance is at
// most eps, or (0, false) if none is.
func FirstBelow(checkpoints []int64, curve []float64, eps float64) (int64, bool) {
	if len(checkpoints) != len(curve) {
		panic("tvest: checkpoint/curve length mismatch")
	}
	for i, d := range curve {
		if d <= eps {
			return checkpoints[i], true
		}
	}
	return 0, false
}

// GeometricGrid returns an increasing grid of about `points` checkpoint
// times from lo to hi (inclusive-ish), geometrically spaced — the right
// shape for mixing curves, which move on multiplicative timescales.
func GeometricGrid(lo, hi int64, points int) []int64 {
	if lo < 1 || hi < lo || points < 1 {
		panic("tvest: bad grid parameters")
	}
	if points == 1 || lo == hi {
		return []int64{lo}
	}
	ratio := float64(hi) / float64(lo)
	out := make([]int64, 0, points)
	last := int64(0)
	for i := 0; i < points; i++ {
		f := float64(i) / float64(points-1)
		v := int64(math.Round(float64(lo) * math.Pow(ratio, f)))
		if v <= last {
			v = last + 1
		}
		out = append(out, v)
		last = v
	}
	return out
}
