package tvest_test

import (
	"fmt"

	"dynalloc/internal/tvest"
)

// GeometricGrid spaces checkpoints multiplicatively — the natural grid
// for mixing curves.
func ExampleGeometricGrid() {
	fmt.Println(tvest.GeometricGrid(1, 64, 7))
	// Output: [1 2 4 8 16 32 64]
}

// FirstBelow reads the mixing-time estimate off an estimated curve.
func ExampleFirstBelow() {
	cps := []int64{10, 20, 40, 80}
	curve := []float64{0.8, 0.4, 0.2, 0.05}
	t, ok := tvest.FirstBelow(cps, curve, 0.25)
	fmt.Println(t, ok)
	// Output: 40 true
}
