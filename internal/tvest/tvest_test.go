package tvest

import (
	"math"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/markov"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

func TestKeys(t *testing.T) {
	v := loadvec.Vector{4, 2, 1, 1}
	if FullKey(v) != "4,2,1,1" {
		t.Fatalf("FullKey = %q", FullKey(v))
	}
	if GapMaxKey(v) != "2/4" {
		t.Fatalf("GapMaxKey = %q", GapMaxKey(v))
	}
	if TopKey(v) != "4/2/1" {
		t.Fatalf("TopKey = %q", TopKey(v))
	}
	small := loadvec.Vector{3}
	if TopKey(small) != "3/0/0" {
		t.Fatalf("TopKey(small) = %q", TopKey(small))
	}
}

func TestGeometricGrid(t *testing.T) {
	g := GeometricGrid(1, 1000, 7)
	if len(g) != 7 || g[0] != 1 || g[len(g)-1] < 900 {
		t.Fatalf("grid = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not increasing: %v", g)
		}
	}
	one := GeometricGrid(5, 5, 3)
	if len(one) != 1 || one[0] != 5 {
		t.Fatalf("degenerate grid = %v", one)
	}
}

func TestGeometricGridPanics(t *testing.T) {
	for _, f := range []func(){
		func() { GeometricGrid(0, 10, 3) },
		func() { GeometricGrid(10, 5, 3) },
		func() { GeometricGrid(1, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFirstBelow(t *testing.T) {
	cps := []int64{1, 2, 4, 8}
	curve := []float64{0.9, 0.5, 0.2, 0.05}
	if tt, ok := FirstBelow(cps, curve, 0.25); !ok || tt != 4 {
		t.Fatalf("FirstBelow = (%d, %v)", tt, ok)
	}
	if _, ok := FirstBelow(cps, curve, 0.01); ok {
		t.Fatal("should not find below 0.01")
	}
}

func TestCurvePanicsOnBadCheckpoints(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Curve(func(int) Stepper { return nil }, FullKey, map[string]int{"x": 1}, 1, []int64{3, 3})
}

// TestCurveMatchesExactTV validates the estimator against the exact
// machinery: for a tiny chain with the full-state statistic, the
// estimated distance at each checkpoint must match the exact
// TV(L(X_t | X_0 = tower), pi) within sampling noise.
func TestCurveMatchesExactTV(t *testing.T) {
	const n, m = 3, 4
	chain := markov.NewAllocChain(process.ScenarioA, rules.NewABKU(2), n, m)
	mat := markov.MustBuild(chain)
	pi, err := mat.Stationary(1e-12, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	start := loadvec.OneTower(n, m)
	exact := mat.TVCurve(chain.Index(start), pi, 16)

	// Reference counts directly proportional to pi (avoids reference
	// sampling noise; Reference() is tested separately).
	ref := make(map[string]int)
	for s := 0; s < chain.NumStates(); s++ {
		ref[chain.State(s).Key()] = int(math.Round(pi[s] * 1e9))
	}
	checkpoints := []int64{1, 2, 4, 8, 16}
	const K = 60000
	curve := Curve(func(trial int) Stepper {
		return process.New(process.ScenarioA, rules.NewABKU(2), start, rng.NewStream(5, uint64(trial)))
	}, FullKey, ref, K, checkpoints)

	for i, cp := range checkpoints {
		want := exact[cp]
		// Sampling noise: a few sqrt(states)/sqrt(K).
		if math.Abs(curve[i]-want) > 0.02 {
			t.Fatalf("checkpoint %d: estimated %.4f vs exact %.4f", cp, curve[i], want)
		}
	}
}

// TestReferenceApproximatesStationary: long-run reference counts are
// close to pi in TV.
func TestReferenceApproximatesStationary(t *testing.T) {
	const n, m = 3, 4
	chain := markov.NewAllocChain(process.ScenarioA, rules.NewABKU(2), n, m)
	mat := markov.MustBuild(chain)
	pi, _ := mat.Stationary(1e-12, 5_000_000)

	p := process.New(process.ScenarioA, rules.NewABKU(2), loadvec.Balanced(n, m), rng.New(9))
	ref := Reference(p, FullKey, 2000, 60000, 3)

	total := 0
	for _, c := range ref {
		total += c
	}
	d := 0.0
	for s := 0; s < chain.NumStates(); s++ {
		emp := float64(ref[chain.State(s).Key()]) / float64(total)
		d += math.Abs(emp - pi[s])
	}
	if d/2 > 0.02 {
		t.Fatalf("reference TV from pi = %.4f", d/2)
	}
}

// TestProjectionLowerBounds: a coarser statistic cannot show a larger
// distance than the full state.
func TestProjectionLowerBounds(t *testing.T) {
	const n, m = 3, 4
	start := loadvec.OneTower(n, m)
	chain := markov.NewAllocChain(process.ScenarioA, rules.NewABKU(2), n, m)
	mat := markov.MustBuild(chain)
	pi, _ := mat.Stationary(1e-12, 5_000_000)
	refFull := make(map[string]int)
	refGap := make(map[string]int)
	for s := 0; s < chain.NumStates(); s++ {
		w := int(math.Round(pi[s] * 1e9))
		refFull[FullKey(chain.State(s))] += w
		refGap[GapMaxKey(chain.State(s))] += w
	}
	checkpoints := []int64{1, 3, 6}
	const K = 40000
	full := Curve(func(trial int) Stepper {
		return process.New(process.ScenarioA, rules.NewABKU(2), start, rng.NewStream(6, uint64(trial)))
	}, FullKey, refFull, K, checkpoints)
	gap := Curve(func(trial int) Stepper {
		return process.New(process.ScenarioA, rules.NewABKU(2), start, rng.NewStream(6, uint64(trial)))
	}, GapMaxKey, refGap, K, checkpoints)
	for i := range checkpoints {
		if gap[i] > full[i]+0.02 {
			t.Fatalf("projection increased distance at checkpoint %d: %.4f > %.4f",
				checkpoints[i], gap[i], full[i])
		}
	}
}
