package dgram

import (
	"encoding/binary"
	"fmt"

	"dynalloc/internal/wal"
)

// Replication payload codecs (internal/replica). The conversation:
//
//	follower                         primary
//	   | -- SUBSCRIBE(afterSeq) ------> |
//	   | <------ SNAPSHOT(seq, image) - |  (only if the log can't cover afterSeq+1)
//	   | <------ SEG_HDR(firstSeq) ---- |  (segment boundary: seal + rotate)
//	   | <------ REC_BATCH(records) --- |  (seq-ordered WAL records)
//	   | <------ HEARTBEAT(lastSeq) --- |  (caught up; repeats on a cadence)
//	   | -- PROMOTE(force) -----------> |  (forced takeover fence, best effort)
//	   | <------ PROMOTE_OK(lastSeq) -- |
//
// Like msg.go these are fixed-layout append/parse pairs; the frame CRC
// covers them, so record CRCs are not re-sent on the wire (the
// follower re-checksums when it appends to its own log).

// SubscribeReq opens a replication stream: send everything with
// seq > AfterSeq.
type SubscribeReq struct {
	AfterSeq uint64
}

// AppendSubscribeReq appends the encoded form of q to dst.
func AppendSubscribeReq(dst []byte, q SubscribeReq) []byte {
	return binary.LittleEndian.AppendUint64(dst, q.AfterSeq)
}

// DecodeSubscribeReq parses a SubscribeReq payload.
func DecodeSubscribeReq(p []byte) (SubscribeReq, error) {
	if len(p) != 8 {
		return SubscribeReq{}, fmt.Errorf("%w: subscribe payload %d bytes, want 8", ErrShort, len(p))
	}
	return SubscribeReq{AfterSeq: binary.LittleEndian.Uint64(p)}, nil
}

// SegHdr announces a segment boundary: records that follow belong to a
// segment whose header seq is FirstSeq. The follower seals its current
// segment and opens a new one, mirroring the primary's rotation points.
type SegHdr struct {
	FirstSeq uint64
}

// AppendSegHdr appends the encoded form of h to dst.
func AppendSegHdr(dst []byte, h SegHdr) []byte {
	return binary.LittleEndian.AppendUint64(dst, h.FirstSeq)
}

// DecodeSegHdr parses a SegHdr payload.
func DecodeSegHdr(p []byte) (SegHdr, error) {
	if len(p) != 8 {
		return SegHdr{}, fmt.Errorf("%w: seghdr payload %d bytes, want 8", ErrShort, len(p))
	}
	return SegHdr{FirstSeq: binary.LittleEndian.Uint64(p)}, nil
}

// recBatchRecSize is the wire size of one record in a REC_BATCH:
// op(1) + bin(4) + k(4) + seq(8). The on-disk per-record CRC is
// omitted — the frame CRC covers the batch.
const recBatchRecSize = 1 + 4 + 4 + 8

// MaxBatchRecords is the most records one REC_BATCH frame may carry,
// chosen so a batch stays well under MaxPayload.
const MaxBatchRecords = (MaxPayload - 4) / recBatchRecSize

// AppendRecBatch appends a REC_BATCH payload (count + records) to dst.
// It panics if recs exceeds MaxBatchRecords (a sender-side bug).
func AppendRecBatch(dst []byte, recs []wal.Record) []byte {
	if len(recs) > MaxBatchRecords {
		panic(fmt.Sprintf("dgram: batch of %d records exceeds MaxBatchRecords", len(recs)))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for _, r := range recs {
		dst = append(dst, byte(r.Op))
		dst = binary.LittleEndian.AppendUint32(dst, r.Bin)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.K))
		dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	}
	return dst
}

// DecodeRecBatch parses a REC_BATCH payload, appending into dst (which
// may be a reused slice) and returning it. Ops are validated here so a
// skewed peer can't smuggle an op byte replay would reject later.
func DecodeRecBatch(p []byte, dst []wal.Record) ([]wal.Record, error) {
	if len(p) < 4 {
		return dst, fmt.Errorf("%w: record batch %d bytes", ErrShort, len(p))
	}
	n := binary.LittleEndian.Uint32(p[0:4])
	if uint64(len(p)) != 4+uint64(recBatchRecSize)*uint64(n) {
		return dst, fmt.Errorf("%w: record batch %d bytes for %d records", ErrShort, len(p), n)
	}
	off := 4
	for i := uint32(0); i < n; i++ {
		r := wal.Record{
			Op:  wal.Op(p[off]),
			Bin: binary.LittleEndian.Uint32(p[off+1 : off+5]),
			K:   int32(binary.LittleEndian.Uint32(p[off+5 : off+9])),
			Seq: binary.LittleEndian.Uint64(p[off+9 : off+17]),
		}
		if r.Op != wal.OpAlloc && r.Op != wal.OpFree && r.Op != wal.OpCrash {
			return dst, fmt.Errorf("%w: record op %d", ErrShort, p[off])
		}
		dst = append(dst, r)
		off += recBatchRecSize
	}
	return dst, nil
}

// Heartbeat reports the primary's durable seq while the stream is
// caught up; the follower computes lag = LastSeq - appliedSeq.
type Heartbeat struct {
	LastSeq uint64
}

// AppendHeartbeat appends the encoded form of h to dst.
func AppendHeartbeat(dst []byte, h Heartbeat) []byte {
	return binary.LittleEndian.AppendUint64(dst, h.LastSeq)
}

// DecodeHeartbeat parses a Heartbeat payload.
func DecodeHeartbeat(p []byte) (Heartbeat, error) {
	if len(p) != 8 {
		return Heartbeat{}, fmt.Errorf("%w: heartbeat payload %d bytes, want 8", ErrShort, len(p))
	}
	return Heartbeat{LastSeq: binary.LittleEndian.Uint64(p)}, nil
}

// PromoteReq is the follower's stand-down fence before a forced
// takeover of a still-live primary.
type PromoteReq struct {
	Force bool
}

// AppendPromoteReq appends the encoded form of q to dst.
func AppendPromoteReq(dst []byte, q PromoteReq) []byte {
	b := byte(0)
	if q.Force {
		b = 1
	}
	return append(dst, b)
}

// DecodePromoteReq parses a PromoteReq payload.
func DecodePromoteReq(p []byte) (PromoteReq, error) {
	if len(p) != 1 {
		return PromoteReq{}, fmt.Errorf("%w: promote payload %d bytes, want 1", ErrShort, len(p))
	}
	return PromoteReq{Force: p[0] != 0}, nil
}

// PromoteOK acknowledges a PROMOTE with the primary's final durable
// seq, so the follower can confirm it is caught up before taking over.
type PromoteOK struct {
	LastSeq uint64
}

// AppendPromoteOK appends the encoded form of a to dst.
func AppendPromoteOK(dst []byte, a PromoteOK) []byte {
	return binary.LittleEndian.AppendUint64(dst, a.LastSeq)
}

// DecodePromoteOK parses a PromoteOK payload.
func DecodePromoteOK(p []byte) (PromoteOK, error) {
	if len(p) != 8 {
		return PromoteOK{}, fmt.Errorf("%w: promote_ok payload %d bytes, want 8", ErrShort, len(p))
	}
	return PromoteOK{LastSeq: binary.LittleEndian.Uint64(p)}, nil
}

// SnapshotMsg bootstraps a follower: a full store image as of Seq,
// with the admission/departure clocks. It is sent when the primary's
// retained segments cannot cover the follower's requested AfterSeq —
// including the always-true first boot case (seeded balls exist only
// in the boot checkpoint, never in the WAL).
type SnapshotMsg struct {
	Seq    uint64
	Allocs int64
	Frees  int64
	Loads  []int32
}

// snapshotFixed is the fixed prefix of an encoded SnapshotMsg.
const snapshotFixed = 8 + 8 + 8 + 4

// AppendSnapshotMsg appends the encoded form of s to dst.
func AppendSnapshotMsg(dst []byte, s SnapshotMsg) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, s.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Allocs))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Frees))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Loads)))
	for _, l := range s.Loads {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(l))
	}
	return dst
}

// DecodeSnapshotMsg parses a SnapshotMsg payload, appending the loads
// into loads (which may be a reused slice).
func DecodeSnapshotMsg(p []byte, loads []int32) (SnapshotMsg, error) {
	if len(p) < snapshotFixed {
		return SnapshotMsg{}, fmt.Errorf("%w: snapshot payload %d bytes", ErrShort, len(p))
	}
	s := SnapshotMsg{
		Seq:    binary.LittleEndian.Uint64(p[0:8]),
		Allocs: int64(binary.LittleEndian.Uint64(p[8:16])),
		Frees:  int64(binary.LittleEndian.Uint64(p[16:24])),
	}
	n := binary.LittleEndian.Uint32(p[24:28])
	if uint64(len(p)) != snapshotFixed+4*uint64(n) {
		return SnapshotMsg{}, fmt.Errorf("%w: snapshot payload %d bytes for %d bins", ErrShort, len(p), n)
	}
	off := snapshotFixed
	for i := uint32(0); i < n; i++ {
		loads = append(loads, int32(binary.LittleEndian.Uint32(p[off:off+4])))
		off += 4
	}
	s.Loads = loads
	return s, nil
}
