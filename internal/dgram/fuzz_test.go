package dgram

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"dynalloc/internal/wal"
)

// FuzzDecodeFrame feeds arbitrary bytes through both decoders (slice
// and stream) and checks the protocol's safety contract: no panic, no
// giant allocation, typed errors only, and agreement between the two
// decoders on every input. Valid-frame seeds come from the committed
// corpus under testdata/fuzz (one per frame type plus mutation bait:
// truncations, version skew, oversized length prefixes).
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(AppendFrame(nil, TProbe, nil))
	f.Add(AppendFrame(nil, TSummary, AppendSummary(nil, Summary{N: 64, Total: 64, MaxLoad: 2, NonEmpty: 40, Allocs: 100, Frees: 36, Recovered: true})))
	f.Add(AppendFrame(nil, TAdmit, AppendAdmitReq(nil, AdmitReq{Count: 1})))
	f.Add(AppendFrame(nil, TAdmitOK, AppendBinLoads(nil, []BinLoad{{Bin: 3, Load: 2}})))
	f.Add(AppendFrame(nil, TFree, AppendFreeReq(nil, FreeReq{Mode: FreeScenario, Count: 1})))
	f.Add(AppendFrame(nil, TCrash, AppendCrashReq(nil, CrashReq{Bin: 0, K: 4096})))
	f.Add(AppendFrame(nil, TState, nil))
	f.Add(AppendFrame(nil, TStateOK, AppendStateReply(nil, StateReply{Allocs: 9, Frees: 4, Loads: []int32{1, 0, 2}})))
	f.Add(AppendFrame(nil, TErr, AppendErrReply(nil, ErrReply{Code: CodeEmpty, Msg: "empty"})))
	// Replication frames (internal/replica).
	f.Add(AppendFrame(nil, TSubscribe, AppendSubscribeReq(nil, SubscribeReq{AfterSeq: 42})))
	f.Add(AppendFrame(nil, TSegHdr, AppendSegHdr(nil, SegHdr{FirstSeq: 43})))
	f.Add(AppendFrame(nil, TRecBatch, AppendRecBatch(nil, []wal.Record{
		{Op: wal.OpAlloc, Bin: 7, K: 1, Seq: 43},
		{Op: wal.OpFree, Bin: 7, K: 1, Seq: 44},
		{Op: wal.OpCrash, Bin: 0, K: 512, Seq: 45},
	})))
	f.Add(AppendFrame(nil, THeartbeat, AppendHeartbeat(nil, Heartbeat{LastSeq: 45})))
	f.Add(AppendFrame(nil, TPromote, AppendPromoteReq(nil, PromoteReq{Force: true})))
	f.Add(AppendFrame(nil, TPromoteOK, AppendPromoteOK(nil, PromoteOK{LastSeq: 45})))
	f.Add(AppendFrame(nil, TSnapshot, AppendSnapshotMsg(nil, SnapshotMsg{Seq: 45, Allocs: 40, Frees: 4, Loads: []int32{3, 0, 1}})))
	// Mutation bait: a frame claiming a huge payload, a torn frame, a
	// frame from the future (version skew), an unknown-but-well-framed
	// type (ErrType skew), and two frames back to back.
	huge := AppendFrame(nil, TProbe, nil)
	binary.LittleEndian.PutUint32(huge[4:8], MaxPayload+1)
	f.Add(huge)
	f.Add(AppendFrame(nil, TSummary, make([]byte, summarySize))[:20])
	skew := AppendFrame(nil, TProbe, nil)
	skew[1] = Version + 1
	f.Add(skew)
	f.Add(AppendFrame(nil, maxType+1, []byte("future type")))
	f.Add(AppendFrame(AppendFrame(nil, TProbe, nil), TState, nil))

	f.Fuzz(func(t *testing.T, b []byte) {
		typ, payload, rest, err := DecodeFrame(b)
		st, sp, serr := NewReader(bytes.NewReader(b)).ReadFrame()

		if err == nil {
			if len(payload) > MaxPayload {
				t.Fatalf("decoded payload of %d bytes", len(payload))
			}
			if len(rest) > len(b) {
				t.Fatal("rest grew beyond the input")
			}
			// The stream reader must accept exactly the same frame.
			if serr != nil || st != typ || !bytes.Equal(sp, payload) {
				t.Fatalf("stream reader disagrees: %v/%d bytes/%v vs %v/%d bytes", st, len(sp), serr, typ, len(payload))
			}
			// Decoded frames re-encode byte-identically (canonical form).
			if re := AppendFrame(nil, typ, payload); !bytes.Equal(re, b[:len(b)-len(rest)]) {
				t.Fatal("re-encoded frame differs from wire form")
			}
			// Message decoders on the payload must not panic either.
			switch typ {
			case TSummary:
				_, _ = DecodeSummary(payload)
			case TAdmit:
				_, _ = DecodeAdmitReq(payload)
			case TAdmitOK, TFreeOK:
				_, _ = DecodeBinLoads(payload, nil)
			case TFree:
				_, _ = DecodeFreeReq(payload)
			case TCrash:
				_, _ = DecodeCrashReq(payload)
			case TCrashOK:
				_, _ = DecodeLoad(payload)
			case TStateOK:
				_, _ = DecodeStateReply(payload, nil)
			case TErr:
				_, _ = DecodeErrReply(payload)
			case TSubscribe:
				_, _ = DecodeSubscribeReq(payload)
			case TSegHdr:
				_, _ = DecodeSegHdr(payload)
			case TRecBatch:
				_, _ = DecodeRecBatch(payload, nil)
			case THeartbeat:
				_, _ = DecodeHeartbeat(payload)
			case TPromote:
				_, _ = DecodePromoteReq(payload)
			case TPromoteOK:
				_, _ = DecodePromoteOK(payload)
			case TSnapshot:
				_, _ = DecodeSnapshotMsg(payload, nil)
			}
			return
		}
		if serr == nil {
			t.Fatalf("slice decoder rejected (%v) what the stream reader accepted", err)
		}
		// ErrType is the one error with a verified frame extent: both
		// decoders must agree on it and skip exactly the frame.
		if errors.Is(err, ErrType) {
			if !errors.Is(serr, ErrType) {
				t.Fatalf("stream reader: got %v, want ErrType like the slice decoder", serr)
			}
			if len(rest) >= len(b) {
				t.Fatal("ErrType did not advance past the frame")
			}
		}
		if len(b) == 0 && serr != io.EOF {
			t.Fatalf("empty stream: got %v, want io.EOF", serr)
		}
	})
}

// FuzzFrameRoundTrip fuzzes the encode side: any (type, payload)
// within limits must survive encode -> decode bit-exactly.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(TProbe), []byte(nil))
	f.Add(uint8(TStateOK), bytes.Repeat([]byte{7}, 1000))
	f.Add(uint8(TErr), []byte("message"))
	f.Fuzz(func(t *testing.T, rawType uint8, payload []byte) {
		typ := Type(rawType)
		if typ == 0 || typ > maxType {
			return // AppendFrame encodes it, but decode rejects by design
		}
		b := AppendFrame(nil, typ, payload)
		gotT, got, rest, err := DecodeFrame(b)
		if err != nil || gotT != typ || !bytes.Equal(got, payload) || len(rest) != 0 {
			t.Fatalf("round trip: %v/%v/%d rest/%v", gotT, len(got), len(rest), err)
		}
	})
}
