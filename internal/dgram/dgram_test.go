package dgram

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func frame(t Type, payload []byte) []byte {
	return AppendFrame(nil, t, payload)
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, want := range payloads {
		for _, typ := range []Type{TProbe, TSummary, TAdmit, TErr} {
			b := frame(typ, want)
			gotT, got, rest, err := DecodeFrame(b)
			if err != nil {
				t.Fatalf("type %v payload %d bytes: %v", typ, len(want), err)
			}
			if gotT != typ || !bytes.Equal(got, want) || len(rest) != 0 {
				t.Fatalf("round trip mismatch: type %v->%v, %d->%d payload bytes, %d rest", typ, gotT, len(want), len(got), len(rest))
			}
		}
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	types := []Type{TProbe, TAdmit, TState, TFree}
	for i, typ := range types {
		if err := w.WriteFrame(typ, bytes.Repeat([]byte{byte(i)}, i*100)); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, typ := range types {
		gotT, p, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if gotT != typ || len(p) != i*100 {
			t.Fatalf("frame %d: got %v/%d bytes, want %v/%d", i, gotT, len(p), typ, i*100)
		}
		for _, b := range p {
			if b != byte(i) {
				t.Fatalf("frame %d: payload corrupted", i)
			}
		}
	}
	if _, _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("clean stream end: got %v, want io.EOF", err)
	}
}

// TestDecodeErrors drives every malformed-frame class through both the
// slice decoder and the stream reader and checks for the typed error —
// truncation, bad magic, version skew, unknown type, oversized length
// prefix, bad CRC — and that none of them panics.
func TestDecodeErrors(t *testing.T) {
	good := frame(TSummary, []byte("payload"))

	corrupt := func(off int, val byte) []byte {
		b := bytes.Clone(good)
		b[off] = val
		return b
	}
	oversize := bytes.Clone(good)
	binary.LittleEndian.PutUint32(oversize[4:8], MaxPayload+1)

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"header torn", good[:5], ErrTruncated},
		{"payload torn", good[:HeaderSize+3], ErrTruncated},
		{"crc torn", good[:len(good)-1], ErrTruncated},
		{"bad magic", corrupt(0, 0x00), ErrMagic},
		{"version skew", corrupt(1, Version+1), ErrVersion},
		// A flipped type byte without a matching CRC is corruption, not
		// version skew: the CRC verdict comes first.
		{"type zero, bad crc", corrupt(2, 0), ErrCRC},
		{"type unknown, bad crc", corrupt(2, byte(maxType)+1), ErrCRC},
		// A properly framed frame of a type this build does not speak is
		// ErrType — observable version skew, not a silent skip.
		{"type zero, well framed", frame(Type(0), []byte("payload")), ErrType},
		{"type unknown, well framed", frame(maxType+1, []byte("payload")), ErrType},
		{"oversized length", oversize, ErrTooLarge},
		{"flipped payload bit", corrupt(HeaderSize, 'P'^0x40), ErrCRC},
		{"flipped reserved byte", corrupt(3, 0xFF), ErrCRC},
		{"flipped crc", corrupt(len(good)-2, good[len(good)-2]^1), ErrCRC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, err := DecodeFrame(tc.in); !errors.Is(err, tc.want) {
				t.Fatalf("DecodeFrame: got %v, want %v", err, tc.want)
			}
			_, _, err := NewReader(bytes.NewReader(tc.in)).ReadFrame()
			if tc.in == nil {
				// A stream that ends on a frame boundary is io.EOF, not
				// an error: there is no partial frame to complain about.
				if err != io.EOF {
					t.Fatalf("ReadFrame on empty stream: got %v, want io.EOF", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadFrame: got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeFrameRest(t *testing.T) {
	b := frame(TProbe, nil)
	b = AppendFrame(b, TState, nil)
	t1, _, rest, err := DecodeFrame(b)
	if err != nil || t1 != TProbe {
		t.Fatalf("first frame: %v %v", t1, err)
	}
	t2, _, rest, err := DecodeFrame(rest)
	if err != nil || t2 != TState || len(rest) != 0 {
		t.Fatalf("second frame: %v %v, %d rest", t2, err, len(rest))
	}
}

// TestUnknownTypeSkippable pins the version-skew contract: an
// unknown-but-well-framed frame surfaces ErrType with rest advanced
// past it, so both the slice decoder and the stream reader can report
// the skew and keep decoding the frames that follow.
func TestUnknownTypeSkippable(t *testing.T) {
	b := frame(maxType+1, []byte("from the future"))
	b = AppendFrame(b, TProbe, nil)

	_, _, rest, err := DecodeFrame(b)
	if !errors.Is(err, ErrType) {
		t.Fatalf("unknown type: got %v, want ErrType", err)
	}
	t2, _, rest, err := DecodeFrame(rest)
	if err != nil || t2 != TProbe || len(rest) != 0 {
		t.Fatalf("frame after skew: %v %v, %d rest", t2, err, len(rest))
	}

	r := NewReader(bytes.NewReader(b))
	if _, _, err := r.ReadFrame(); !errors.Is(err, ErrType) {
		t.Fatalf("stream unknown type: got %v, want ErrType", err)
	}
	typ, _, err := r.ReadFrame()
	if err != nil || typ != TProbe {
		t.Fatalf("stream frame after skew: %v %v", typ, err)
	}
	if _, _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("stream end after skew: got %v, want io.EOF", err)
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	want := Summary{N: 4096, Total: 123456, MaxLoad: 7, NonEmpty: 4000, Allocs: 1 << 40, Frees: 99, Recovered: true}
	got, err := DecodeSummary(AppendSummary(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if _, err := DecodeSummary(AppendSummary(nil, want)[:summarySize-1]); !errors.Is(err, ErrShort) {
		t.Fatalf("short summary: got %v", err)
	}
}

func TestAdmitFreeCrashRoundTrip(t *testing.T) {
	aq, err := DecodeAdmitReq(AppendAdmitReq(nil, AdmitReq{Count: 17}))
	if err != nil || aq.Count != 17 {
		t.Fatalf("admit req: %+v %v", aq, err)
	}
	fq, err := DecodeFreeReq(AppendFreeReq(nil, FreeReq{Mode: FreeBin, Bin: 5, Count: 2}))
	if err != nil || fq != (FreeReq{Mode: FreeBin, Bin: 5, Count: 2}) {
		t.Fatalf("free req: %+v %v", fq, err)
	}
	if _, err := DecodeFreeReq([]byte{9, 0, 0, 0, 0, 1, 0, 0, 0}); !errors.Is(err, ErrShort) {
		t.Fatalf("bad free mode: got %v", err)
	}
	cq, err := DecodeCrashReq(AppendCrashReq(nil, CrashReq{Bin: 3, K: 1024}))
	if err != nil || cq != (CrashReq{Bin: 3, K: 1024}) {
		t.Fatalf("crash req: %+v %v", cq, err)
	}
	load, err := DecodeLoad(AppendLoad(nil, -7))
	if err != nil || load != -7 {
		t.Fatalf("load: %d %v", load, err)
	}

	pairs := []BinLoad{{Bin: 1, Load: 2}, {Bin: 4090, Load: -1}}
	got, err := DecodeBinLoads(AppendBinLoads(nil, pairs), nil)
	if err != nil || len(got) != 2 || got[0] != pairs[0] || got[1] != pairs[1] {
		t.Fatalf("pairs: %+v %v", got, err)
	}
	// A count prefix larger than the payload backs is ErrShort, never a
	// huge allocation or a panic.
	bad := AppendBinLoads(nil, pairs)
	binary.LittleEndian.PutUint32(bad[0:4], 1<<30)
	if _, err := DecodeBinLoads(bad, nil); !errors.Is(err, ErrShort) {
		t.Fatalf("overlong pair count: got %v", err)
	}
}

func TestStateReplyRoundTrip(t *testing.T) {
	want := StateReply{Allocs: 42, Frees: 17, Loads: []int32{0, 1, 5, 0, 3}}
	got, err := DecodeStateReply(AppendStateReply(nil, want), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Allocs != want.Allocs || got.Frees != want.Frees || len(got.Loads) != len(want.Loads) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want.Loads {
		if got.Loads[i] != want.Loads[i] {
			t.Fatalf("load %d: got %d, want %d", i, got.Loads[i], want.Loads[i])
		}
	}
	bad := AppendStateReply(nil, want)
	binary.LittleEndian.PutUint32(bad[16:20], 1<<29)
	if _, err := DecodeStateReply(bad, nil); !errors.Is(err, ErrShort) {
		t.Fatalf("overlong load count: got %v", err)
	}
}

func TestErrReplyRoundTrip(t *testing.T) {
	want := ErrReply{Code: CodeEmpty, Msg: "store is empty"}
	got, err := DecodeErrReply(AppendErrReply(nil, want))
	if err != nil || got != want {
		t.Fatalf("got %+v %v, want %+v", got, err, want)
	}
	if got.Error() == "" || (ErrReply{Code: CodeDraining}).Error() == "" {
		t.Fatal("ErrReply.Error must describe the failure")
	}
	if _, err := DecodeErrReply(nil); !errors.Is(err, ErrShort) {
		t.Fatalf("empty error payload: got %v", err)
	}
}

// TestReaderReusesBuffer pins the zero-alloc contract: after warmup,
// reading frames of a stable size does not allocate.
func TestReaderReusesBuffer(t *testing.T) {
	var stream bytes.Buffer
	w := NewWriter(&stream)
	const frames = 100
	for i := 0; i < frames; i++ {
		if err := w.WriteFrame(TSummary, AppendSummary(nil, Summary{N: 1, Total: int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(bytes.NewReader(stream.Bytes()))
	if _, _, err := r.ReadFrame(); err != nil { // warm the payload buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(frames-1, func() {
		if _, _, err := r.ReadFrame(); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("ReadFrame allocates %.1f per frame after warmup", allocs)
	}
}
