package dgram

import (
	"encoding/binary"
	"fmt"
)

// Summary is the PROBE reply payload: a shard's load digest, the wire
// form of serve.Store.LoadSummary plus the shard's recovered bit. It
// is everything the cluster-level d-choice rule (compare Total) and
// the cluster recovery detector (MaxLoad, clocks) need per probe.
type Summary struct {
	N         uint32 // bins on this shard
	Total     int64  // balls currently stored
	MaxLoad   int32  // current maximum bin load
	NonEmpty  int64  // bins with load > 0
	Allocs    int64  // shard admission clock
	Frees     int64  // shard departure clock
	Recovered bool   // the shard's own detector state (0 if it has none)
}

// summarySize is the fixed encoded size of a Summary.
const summarySize = 4 + 8 + 4 + 8 + 8 + 8 + 1

// AppendSummary appends the encoded form of s to dst.
func AppendSummary(dst []byte, s Summary) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, s.N)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Total))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.MaxLoad))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.NonEmpty))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Allocs))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Frees))
	b := byte(0)
	if s.Recovered {
		b = 1
	}
	return append(dst, b)
}

// DecodeSummary parses a Summary payload.
func DecodeSummary(p []byte) (Summary, error) {
	if len(p) != summarySize {
		return Summary{}, fmt.Errorf("%w: summary payload %d bytes, want %d", ErrShort, len(p), summarySize)
	}
	return Summary{
		N:         binary.LittleEndian.Uint32(p[0:4]),
		Total:     int64(binary.LittleEndian.Uint64(p[4:12])),
		MaxLoad:   int32(binary.LittleEndian.Uint32(p[12:16])),
		NonEmpty:  int64(binary.LittleEndian.Uint64(p[16:24])),
		Allocs:    int64(binary.LittleEndian.Uint64(p[24:32])),
		Frees:     int64(binary.LittleEndian.Uint64(p[32:40])),
		Recovered: p[40] != 0,
	}, nil
}

// AdmitReq asks a shard to admit Count balls through its local policy.
type AdmitReq struct {
	Count uint32
}

// AppendAdmitReq appends the encoded form of q to dst.
func AppendAdmitReq(dst []byte, q AdmitReq) []byte {
	return binary.LittleEndian.AppendUint32(dst, q.Count)
}

// DecodeAdmitReq parses an AdmitReq payload.
func DecodeAdmitReq(p []byte) (AdmitReq, error) {
	if len(p) != 4 {
		return AdmitReq{}, fmt.Errorf("%w: admit payload %d bytes, want 4", ErrShort, len(p))
	}
	return AdmitReq{Count: binary.LittleEndian.Uint32(p)}, nil
}

// BinLoad is one (bin, resulting load) pair of an ADMIT_OK / FREE_OK
// reply.
type BinLoad struct {
	Bin  uint32
	Load int32
}

// AppendBinLoads appends a pair-list payload (count + pairs) to dst.
func AppendBinLoads(dst []byte, pairs []BinLoad) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pairs)))
	for _, p := range pairs {
		dst = binary.LittleEndian.AppendUint32(dst, p.Bin)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Load))
	}
	return dst
}

// DecodeBinLoads parses a pair-list payload, appending into dst (which
// may be a reused slice) and returning it.
func DecodeBinLoads(p []byte, dst []BinLoad) ([]BinLoad, error) {
	if len(p) < 4 {
		return dst, fmt.Errorf("%w: pair list %d bytes", ErrShort, len(p))
	}
	n := binary.LittleEndian.Uint32(p[0:4])
	if uint64(len(p)) != 4+8*uint64(n) {
		return dst, fmt.Errorf("%w: pair list %d bytes for %d pairs", ErrShort, len(p), n)
	}
	off := 4
	for i := uint32(0); i < n; i++ {
		dst = append(dst, BinLoad{
			Bin:  binary.LittleEndian.Uint32(p[off : off+4]),
			Load: int32(binary.LittleEndian.Uint32(p[off+4 : off+8])),
		})
		off += 8
	}
	return dst, nil
}

// FreeMode selects a FreeReq's departure semantics.
type FreeMode uint8

const (
	// FreeScenario draws departures from the shard's configured
	// scenario stream (A: uniform ball, B: uniform nonempty bin).
	FreeScenario FreeMode = 0
	// FreeBin frees from the specific bin in FreeReq.Bin.
	FreeBin FreeMode = 1
)

// FreeReq asks a shard for Count departures.
type FreeReq struct {
	Mode  FreeMode
	Bin   uint32 // used when Mode == FreeBin
	Count uint32
}

// AppendFreeReq appends the encoded form of q to dst.
func AppendFreeReq(dst []byte, q FreeReq) []byte {
	dst = append(dst, byte(q.Mode))
	dst = binary.LittleEndian.AppendUint32(dst, q.Bin)
	return binary.LittleEndian.AppendUint32(dst, q.Count)
}

// DecodeFreeReq parses a FreeReq payload.
func DecodeFreeReq(p []byte) (FreeReq, error) {
	if len(p) != 9 {
		return FreeReq{}, fmt.Errorf("%w: free payload %d bytes, want 9", ErrShort, len(p))
	}
	q := FreeReq{
		Mode:  FreeMode(p[0]),
		Bin:   binary.LittleEndian.Uint32(p[1:5]),
		Count: binary.LittleEndian.Uint32(p[5:9]),
	}
	if q.Mode != FreeScenario && q.Mode != FreeBin {
		return FreeReq{}, fmt.Errorf("%w: free mode %d", ErrShort, p[0])
	}
	return q, nil
}

// CrashReq dumps K extra balls into Bin — the cluster fault injector.
type CrashReq struct {
	Bin uint32
	K   uint32
}

// AppendCrashReq appends the encoded form of q to dst.
func AppendCrashReq(dst []byte, q CrashReq) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, q.Bin)
	return binary.LittleEndian.AppendUint32(dst, q.K)
}

// DecodeCrashReq parses a CrashReq payload.
func DecodeCrashReq(p []byte) (CrashReq, error) {
	if len(p) != 8 {
		return CrashReq{}, fmt.Errorf("%w: crash payload %d bytes, want 8", ErrShort, len(p))
	}
	return CrashReq{
		Bin: binary.LittleEndian.Uint32(p[0:4]),
		K:   binary.LittleEndian.Uint32(p[4:8]),
	}, nil
}

// AppendLoad appends a CRASH_OK payload (the bin's new load).
func AppendLoad(dst []byte, load int32) []byte {
	return binary.LittleEndian.AppendUint32(dst, uint32(load))
}

// DecodeLoad parses a CRASH_OK payload.
func DecodeLoad(p []byte) (int32, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("%w: load payload %d bytes, want 4", ErrShort, len(p))
	}
	return int32(binary.LittleEndian.Uint32(p)), nil
}

// StateReply is the STATE_OK payload: the shard's clocks plus its full
// per-bin load vector, the cluster detector's raw material.
type StateReply struct {
	Allocs int64
	Frees  int64
	Loads  []int32
}

// AppendStateReply appends the encoded form of s to dst.
func AppendStateReply(dst []byte, s StateReply) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Allocs))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Frees))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Loads)))
	for _, l := range s.Loads {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(l))
	}
	return dst
}

// DecodeStateReply parses a STATE_OK payload, appending the loads into
// loads (which may be a reused slice).
func DecodeStateReply(p []byte, loads []int32) (StateReply, error) {
	if len(p) < 20 {
		return StateReply{}, fmt.Errorf("%w: state payload %d bytes", ErrShort, len(p))
	}
	s := StateReply{
		Allocs: int64(binary.LittleEndian.Uint64(p[0:8])),
		Frees:  int64(binary.LittleEndian.Uint64(p[8:16])),
	}
	n := binary.LittleEndian.Uint32(p[16:20])
	if uint64(len(p)) != 20+4*uint64(n) {
		return StateReply{}, fmt.Errorf("%w: state payload %d bytes for %d bins", ErrShort, len(p), n)
	}
	off := 20
	for i := uint32(0); i < n; i++ {
		loads = append(loads, int32(binary.LittleEndian.Uint32(p[off:off+4])))
		off += 4
	}
	s.Loads = loads
	return s, nil
}

// ErrCode classifies a TErr reply.
type ErrCode uint8

const (
	// CodeBadRequest: the request payload did not decode, or its
	// arguments are out of range for this shard.
	CodeBadRequest ErrCode = 1
	// CodeEmpty: a departure found no ball to free.
	CodeEmpty ErrCode = 2
	// CodeDraining: the shard is shutting down; retry elsewhere.
	CodeDraining ErrCode = 3
	// CodeInternal: the shard failed to apply the mutation.
	CodeInternal ErrCode = 4
)

func (c ErrCode) String() string {
	switch c {
	case CodeBadRequest:
		return "bad_request"
	case CodeEmpty:
		return "empty"
	case CodeDraining:
		return "draining"
	case CodeInternal:
		return "internal"
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// ErrReply is the TErr payload.
type ErrReply struct {
	Code ErrCode
	Msg  string
}

// Error makes ErrReply usable as a Go error on the client side.
func (e ErrReply) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("dgram: shard error %s", e.Code)
	}
	return fmt.Sprintf("dgram: shard error %s: %s", e.Code, e.Msg)
}

// AppendErrReply appends the encoded form of e to dst.
func AppendErrReply(dst []byte, e ErrReply) []byte {
	dst = append(dst, byte(e.Code))
	return append(dst, e.Msg...)
}

// DecodeErrReply parses a TErr payload. The message is copied (error
// paths are cold, and the payload buffer is reused).
func DecodeErrReply(p []byte) (ErrReply, error) {
	if len(p) < 1 {
		return ErrReply{}, fmt.Errorf("%w: empty error payload", ErrShort)
	}
	return ErrReply{Code: ErrCode(p[0]), Msg: string(p[1:])}, nil
}
