// Package dgram is the cluster tier's wire protocol: compact
// length-prefixed binary frames over persistent TCP connections,
// carrying the probe/admit conversation between a d-choice shard
// router and the dynallocd shard fleet.
//
// A frame is
//
//	magic(1) version(1) type(1) reserved(1) payload_len(4, LE)
//	payload(payload_len)
//	crc32c(4, LE)   — over header + payload, Castagnoli (same as the WAL)
//
// The header is fixed-width so a reader always knows how many bytes to
// expect next; the CRC covers the header too, so a flipped type or a
// corrupted length never decodes as a shorter valid frame. Payload
// codecs (Summary, AdmitReq, ...) are fixed-layout append/parse pairs
// in msg.go.
//
// Encoding and decoding are allocation-free on the hot path, mirroring
// the WAL's group-commit buffer reuse: AppendFrame appends into a
// caller-owned buffer, and Conn reuses one payload buffer per
// connection (a ReadFrame payload is valid only until the next
// ReadFrame on that Conn).
//
// Malformed input never panics; it surfaces as one of the typed
// errors (ErrMagic, ErrVersion, ErrType, ErrTooLarge, ErrCRC,
// ErrTruncated), so a router can tell version skew from corruption
// from a half-closed peer. See docs/CLUSTER.md for the full protocol
// walkthrough.
package dgram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Protocol constants.
const (
	// Magic is the first byte of every frame.
	Magic = 0xD6
	// Version is the protocol version this package speaks. A frame
	// with any other version decodes to ErrVersion, the forward-compat
	// seam for rolling upgrades of a shard fleet.
	Version = 1
	// HeaderSize is the fixed frame header length.
	HeaderSize = 8
	// TrailerSize is the CRC32C trailer length.
	TrailerSize = 4
	// MaxPayload bounds a frame's payload. A STATE reply carries 4
	// bytes per bin, so this admits shards up to ~4M bins while keeping
	// a corrupted length prefix from provoking a giant allocation.
	MaxPayload = 16 << 20
)

// Type identifies a frame's meaning. Requests and replies share one
// space; each request type documents its reply type.
type Type uint8

const (
	// TProbe asks a shard for its load digest. Empty payload.
	// Reply: TSummary.
	TProbe Type = 1
	// TSummary is the PROBE reply: an encoded Summary.
	TSummary Type = 2
	// TAdmit asks the shard to admit Count balls through its local
	// admission policy. Payload: AdmitReq. Reply: TAdmitOK.
	TAdmit Type = 3
	// TAdmitOK carries the admitted (bin, load) pairs.
	TAdmitOK Type = 4
	// TFree asks for departures: FreeReq (a specific bin, or a draw
	// from the shard's departure scenario). Reply: TFreeOK.
	TFree Type = 5
	// TFreeOK carries the freed (bin, load) pairs.
	TFreeOK Type = 6
	// TCrash is the fault injector: CrashReq dumps K balls into a bin.
	// Reply: TCrashOK.
	TCrash Type = 7
	// TCrashOK carries the crashed bin's new load (int32).
	TCrashOK Type = 8
	// TState asks for the full per-bin load vector. Empty payload.
	// Reply: TStateOK.
	TState Type = 9
	// TStateOK is an encoded StateReply: clocks plus n int32 loads.
	TStateOK Type = 10
	// TErr is the error reply to any request: ErrReply.
	TErr Type = 11

	// Replication types (internal/replica). A follower opens the
	// conversation with TSubscribe; the primary answers with a stream
	// of TSnapshot / TSegHdr / TRecBatch frames and idles with
	// THeartbeat. TPromote travels follower→primary as a best-effort
	// stand-down fence.

	// TSubscribe asks the primary to stream WAL records after a seq.
	// Payload: SubscribeReq. Replies: a TSnapshot and/or TSegHdr +
	// TRecBatch stream, then THeartbeat while caught up.
	TSubscribe Type = 12
	// TSegHdr announces a segment boundary in the stream: the follower
	// seals its current segment and opens one with the carried firstSeq.
	// Payload: SegHdr.
	TSegHdr Type = 13
	// TRecBatch carries a batch of WAL records in seq order.
	// Payload: RecBatch.
	TRecBatch Type = 14
	// THeartbeat reports the primary's durable seq while the stream is
	// caught up; the follower derives replication lag from it.
	// Payload: Heartbeat.
	THeartbeat Type = 15
	// TPromote is the follower's stand-down fence: sent best-effort to
	// a still-live primary before a forced promotion. Payload:
	// PromoteReq. Reply: TPromoteOK.
	TPromote Type = 16
	// TPromoteOK acknowledges a TPromote with the primary's final
	// durable seq, letting the follower catch up before taking over.
	// Payload: PromoteOK.
	TPromoteOK Type = 17
	// TSnapshot bootstraps a follower whose local log predates the
	// primary's retained segments (or is empty: seeded balls never hit
	// the WAL, only the boot checkpoint). Payload: SnapshotMsg — a full
	// store image as of a seq, like TStateOK plus counters.
	TSnapshot Type = 18

	maxType = TSnapshot
)

func (t Type) String() string {
	switch t {
	case TProbe:
		return "PROBE"
	case TSummary:
		return "SUMMARY"
	case TAdmit:
		return "ADMIT"
	case TAdmitOK:
		return "ADMIT_OK"
	case TFree:
		return "FREE"
	case TFreeOK:
		return "FREE_OK"
	case TCrash:
		return "CRASH"
	case TCrashOK:
		return "CRASH_OK"
	case TState:
		return "STATE"
	case TStateOK:
		return "STATE_OK"
	case TErr:
		return "ERR"
	case TSubscribe:
		return "SUBSCRIBE"
	case TSegHdr:
		return "SEG_HDR"
	case TRecBatch:
		return "REC_BATCH"
	case THeartbeat:
		return "HEARTBEAT"
	case TPromote:
		return "PROMOTE"
	case TPromoteOK:
		return "PROMOTE_OK"
	case TSnapshot:
		return "SNAPSHOT"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Typed decode errors. Decoders wrap these with context via %w, so
// errors.Is works on every return path.
var (
	// ErrMagic: the first byte is not Magic — the peer is not speaking
	// this protocol (or the stream lost sync).
	ErrMagic = errors.New("dgram: bad magic byte")
	// ErrVersion: a well-formed frame of a protocol version this
	// build does not speak.
	ErrVersion = errors.New("dgram: protocol version mismatch")
	// ErrType: a well-framed frame (magic, version, and CRC all good)
	// of a type this build does not speak — version skew, not
	// corruption. DecodeFrame returns rest advanced past the frame, so
	// a stream can surface the skew and keep decoding.
	ErrType = errors.New("dgram: unknown frame type")
	// ErrTooLarge: the length prefix exceeds MaxPayload.
	ErrTooLarge = errors.New("dgram: frame payload exceeds limit")
	// ErrCRC: header+payload failed the CRC32C check.
	ErrCRC = errors.New("dgram: frame crc mismatch")
	// ErrTruncated: the buffer or stream ended inside a frame.
	ErrTruncated = errors.New("dgram: truncated frame")
	// ErrShort: a payload is too short for its fixed-layout message.
	ErrShort = errors.New("dgram: short payload")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one encoded frame of type t carrying payload to
// dst and returns the extended slice. It never allocates beyond dst's
// growth and panics only on a payload over MaxPayload (a programming
// error on the sending side, not an input condition).
func AppendFrame(dst []byte, t Type, payload []byte) []byte {
	if len(payload) > MaxPayload {
		panic(fmt.Sprintf("dgram: payload of %d bytes exceeds MaxPayload", len(payload)))
	}
	start := len(dst)
	dst = append(dst, Magic, Version, byte(t), 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeFrame parses the first frame in b, returning its type, its
// payload (aliasing b, no copy), and the remainder of b after the
// frame. Errors are the typed errors above; ErrTruncated means b ends
// mid-frame (read more and retry).
func DecodeFrame(b []byte) (t Type, payload, rest []byte, err error) {
	if len(b) < HeaderSize {
		return 0, nil, b, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(b), HeaderSize)
	}
	if b[0] != Magic {
		return 0, nil, b, fmt.Errorf("%w: 0x%02x", ErrMagic, b[0])
	}
	if b[1] != Version {
		return 0, nil, b, fmt.Errorf("%w: got %d, speak %d", ErrVersion, b[1], Version)
	}
	n := binary.LittleEndian.Uint32(b[4:8])
	if n > MaxPayload {
		return 0, nil, b, fmt.Errorf("%w: length prefix %d", ErrTooLarge, n)
	}
	total := HeaderSize + int(n) + TrailerSize
	if len(b) < total {
		return 0, nil, b, fmt.Errorf("%w: %d bytes of %d", ErrTruncated, len(b), total)
	}
	body := b[:HeaderSize+int(n)]
	want := binary.LittleEndian.Uint32(b[HeaderSize+int(n) : total])
	if crc32.Checksum(body, crcTable) != want {
		return 0, nil, b, ErrCRC
	}
	// Type is checked only after the CRC passes: a corrupted type byte
	// is ErrCRC, so ErrType always means genuine version skew — a
	// well-framed frame from a build that speaks types we don't. The
	// frame's extent is known and verified, so rest advances past it.
	t = Type(b[2])
	if t == 0 || t > maxType {
		return 0, nil, b[total:], fmt.Errorf("%w: %d", ErrType, uint8(b[2]))
	}
	return t, b[HeaderSize : HeaderSize+int(n)], b[total:], nil
}

// Reader decodes a frame stream incrementally, buffering reads so one
// read syscall typically delivers one or more whole frames (the
// protocol's frames are tens of bytes; an unbuffered header+body pair
// of reads would double the syscall count, which dominates loopback
// round-trip cost). It is the stream-side twin of DecodeFrame; a Conn
// embeds one per direction.
type Reader struct {
	r        io.Reader
	buf      []byte // buffered stream bytes; frames decode from buf[pos:end]
	pos, end int
}

// readerBufSize is the initial fill-buffer size: comfortably larger
// than any fixed-layout frame, so steady-state request/reply traffic
// never regrows it (STATE replies grow it to the frame size once).
const readerBufSize = 4096

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// decodable reports whether buf[pos:end] holds enough bytes for
// DecodeFrame to return something other than ErrTruncated: a complete
// frame, or a header whose fixed fields are invalid (DecodeFrame
// rejects those from the header alone). Gating DecodeFrame on this
// keeps the fill path from constructing ErrTruncated values that are
// only ever discarded — ReadFrame runs once per reply on the router's
// hot path, and a thrown-away fmt.Errorf per fill is real garbage.
func (fr *Reader) decodable() bool {
	avail := fr.end - fr.pos
	if avail < HeaderSize {
		return false
	}
	b := fr.buf[fr.pos:fr.end]
	if b[0] != Magic || b[1] != Version {
		return true
	}
	// An unknown type is NOT decidable from the header alone: the
	// decoder verifies the CRC before ruling on the type, so the whole
	// frame must be buffered first.
	n := binary.LittleEndian.Uint32(b[4:8])
	if n > MaxPayload {
		return true
	}
	return avail >= HeaderSize+int(n)+TrailerSize
}

// ReadFrame reads and verifies the next frame. The returned payload is
// valid only until the next ReadFrame call. io.EOF is returned only on
// a clean frame boundary; an EOF inside a frame is ErrTruncated.
func (fr *Reader) ReadFrame() (Type, []byte, error) {
	for {
		if fr.decodable() {
			t, payload, rest, err := DecodeFrame(fr.buf[fr.pos:fr.end])
			if err != nil {
				// An unknown-but-well-framed frame (version skew) has a
				// verified extent; advance past it so the caller can
				// report the skew and keep reading the stream.
				if errors.Is(err, ErrType) {
					fr.pos = fr.end - len(rest)
				}
				return 0, nil, err
			}
			fr.pos = fr.end - len(rest)
			return t, payload, nil
		}
		// A partial frame: compact it to the front, make sure the whole
		// frame can fit, and fill with one read.
		if fr.pos > 0 {
			fr.end = copy(fr.buf, fr.buf[fr.pos:fr.end])
			fr.pos = 0
		}
		need := readerBufSize
		if fr.end >= HeaderSize {
			if n := binary.LittleEndian.Uint32(fr.buf[4:8]); n <= MaxPayload {
				need = HeaderSize + int(n) + TrailerSize
			}
		}
		if cap(fr.buf) < need {
			grown := make([]byte, need)
			copy(grown, fr.buf[:fr.end])
			fr.buf = grown
		}
		fr.buf = fr.buf[:cap(fr.buf)]
		n, rerr := fr.r.Read(fr.buf[fr.end:])
		fr.end += n
		if n == 0 && rerr != nil {
			if rerr == io.EOF {
				if fr.end == 0 {
					return 0, nil, io.EOF
				}
				return 0, nil, fmt.Errorf("%w: stream ended %d bytes into a frame", ErrTruncated, fr.end)
			}
			return 0, nil, fmt.Errorf("%w: %v", ErrTruncated, rerr)
		}
	}
}

// Writer encodes frames onto a stream, reusing one encode buffer.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteFrame encodes and writes one frame. The payload is copied into
// the writer's scratch buffer, so the caller may reuse it immediately.
func (fw *Writer) WriteFrame(t Type, payload []byte) error {
	fw.buf = AppendFrame(fw.buf[:0], t, payload)
	_, err := fw.w.Write(fw.buf)
	return err
}
