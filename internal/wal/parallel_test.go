package wal

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"dynalloc/internal/simfs"
)

// pipelineRun drives ReplayPipelineFS with a recording applier and
// returns the per-worker record streams (each in arrival order) plus
// the stats. Partitioning is by bin, so which worker owns a record is
// independent of segment layout — like the serve layer's stripe
// mapping.
func pipelineRun(t *testing.T, fs *simfs.FS, dir string, afterSeq uint64, workers int) ([][]Record, ReplayStats, error) {
	t.Helper()
	streams := make([][]Record, workers)
	var mu sync.Mutex
	stats, err := ReplayPipelineFS(fs, dir, afterSeq, PipelineOptions{
		Workers:   workers,
		Partition: func(r Record) int { return int(r.Bin) },
		ApplyBatch: func(w int, recs []Record) error {
			mu.Lock()
			streams[w] = append(streams[w], recs...)
			mu.Unlock()
			return nil
		},
	})
	return streams, stats, err
}

// checkParity asserts the pipeline replay of dir is indistinguishable
// from the sequential ReplayFS at every worker count: identical stats,
// and each worker observing exactly its partitions' records in file
// order. Every crash-shape test below funnels through here, so the
// validator's torn-tail / seq-gap / continuity decisions are pinned
// against the sequential walk they must mirror.
func checkParity(t *testing.T, fs *simfs.FS, dir string, afterSeq uint64) {
	t.Helper()
	want, wantStats := collect(t, fs, dir, afterSeq)
	for _, workers := range []int{1, 2, 3, 4, 7} {
		streams, stats, err := pipelineRun(t, fs, dir, afterSeq, workers)
		if err != nil {
			t.Fatalf("workers=%d: pipeline error: %v", workers, err)
		}
		if stats != wantStats {
			t.Fatalf("workers=%d: stats %+v, sequential %+v", workers, stats, wantStats)
		}
		for w, got := range streams {
			var exp []Record
			for _, r := range want {
				if int(r.Bin)%workers == w {
					exp = append(exp, r)
				}
			}
			if len(got) != len(exp) {
				t.Fatalf("workers=%d worker %d: %d records, want %d", workers, w, len(got), len(exp))
			}
			for i := range got {
				if got[i] != exp[i] {
					t.Fatalf("workers=%d worker %d record %d: got %+v want %+v", workers, w, i, got[i], exp[i])
				}
			}
		}
	}
}

func TestPipelineParityCleanRotation(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever})
	appendN(t, l, 1, 100) // tiny segments: a dozen rotations
	l.Close()
	checkParity(t, fs, l.Dir(), 0)
	checkParity(t, fs, l.Dir(), 25) // afterSeq filter
	checkParity(t, fs, l.Dir(), 1000)
}

func TestPipelineParityEmptyDir(t *testing.T) {
	fs := testFS()
	checkParity(t, fs, "/wal", 0)
}

func TestPipelineParityTornTail(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l, 1, 50)
	l.Close()
	segs, _ := listSegments(fs, l.Dir())
	if err := fs.Truncate(segs[0], int64(segHeaderSize+48*RecordSize+RecordSize/2)); err != nil {
		t.Fatal(err)
	}
	checkParity(t, fs, l.Dir(), 0)
}

func TestPipelineParityCorruptedCRC(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever})
	appendN(t, l, 1, 60)
	l.Close()
	segs, _ := listSegments(fs, l.Dir())
	if err := fs.Corrupt(segs[1], segHeaderSize+2*RecordSize+3, 0xff); err != nil {
		t.Fatal(err)
	}
	checkParity(t, fs, l.Dir(), 0)
}

func TestPipelineParityBadSegmentHeader(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever, SegmentBytes: segHeaderSize + 4*RecordSize})
	appendN(t, l, 1, 6)
	l.Close()
	segs, _ := listSegments(fs, l.Dir())
	if err := fs.Corrupt(segs[1], 0, 0xff); err != nil {
		t.Fatal(err)
	}
	checkParity(t, fs, l.Dir(), 0)
}

// TestPipelineParityHealedTornSegment is the double-crash layout: run
// 1's tail is torn, run 2's segment opens contiguously past it. Both
// replays must walk through the tear into run 2's records.
func TestPipelineParityHealedTornSegment(t *testing.T) {
	fs := testFS()
	dir := "/wal"
	l1 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l1, 1, 10)
	l1.Close()
	segs, _ := listSegments(fs, dir)
	fs.Truncate(segs[0], int64(segHeaderSize+9*RecordSize+RecordSize/2))
	l2 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l2, 10, 25)
	l2.Close()
	checkParity(t, fs, dir, 0)
}

// TestPipelineParitySeqGap: the segment after the tear does NOT
// continue the stream; both replays must stop at the last reachable
// record, and both must accept the suffix when a checkpoint covers the
// gap (afterSeq = 11).
func TestPipelineParitySeqGap(t *testing.T) {
	fs := testFS()
	dir := "/wal"
	l1 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l1, 1, 10)
	l1.Close()
	segs, _ := listSegments(fs, dir)
	fs.Truncate(segs[0], int64(segHeaderSize+9*RecordSize+RecordSize/2))
	l2 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l2, 12, 20)
	l2.Close()
	checkParity(t, fs, dir, 0)
	checkParity(t, fs, dir, 11)
}

// TestPipelineParityTruncatedHead: a head segment opening past
// afterSeq+1 is a gap from scratch but contiguous once the checkpoint
// covers it — both replays must agree in both modes.
func TestPipelineParityTruncatedHead(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever, SegmentBytes: segHeaderSize + 10*RecordSize})
	appendN(t, l, 1, 35)
	if _, err := l.TruncateThrough(20); err != nil {
		t.Fatal(err)
	}
	l.Close()
	checkParity(t, fs, l.Dir(), 0)
	checkParity(t, fs, l.Dir(), 20)
	checkParity(t, fs, l.Dir(), 30)
}

// TestPipelineParityLegacyHooks pins that the pipeline honors the
// explorer's mutation hooks exactly like the sequential walk.
func TestPipelineParityLegacyHooks(t *testing.T) {
	fs := testFS()
	dir := "/wal"
	l1 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l1, 1, 10)
	l1.Close()
	segs, _ := listSegments(fs, dir)
	fs.Truncate(segs[0], int64(segHeaderSize+9*RecordSize+RecordSize/2))
	l2 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l2, 12, 20)
	l2.Close()

	SetLegacyTornStopForTest(true)
	checkParity(t, fs, dir, 0)
	SetLegacyTornStopForTest(false)

	SetLegacyGapSkipForTest(true)
	checkParity(t, fs, dir, 0)
	SetLegacyGapSkipForTest(false)
}

// TestPipelineApplyErrorAborts: an ApplyBatch error must surface from
// ReplayPipelineFS and stop the replay (later batches are drained, not
// applied).
func TestPipelineApplyErrorAborts(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever})
	appendN(t, l, 1, 80)
	l.Close()

	boom := errors.New("apply exploded")
	var applied, calls int
	var mu sync.Mutex
	_, err := ReplayPipelineFS(fs, l.Dir(), 0, PipelineOptions{
		Workers:   3,
		Partition: func(r Record) int { return int(r.Bin) },
		ApplyBatch: func(w int, recs []Record) error {
			mu.Lock()
			defer mu.Unlock()
			calls++
			for _, r := range recs {
				if r.Seq == 30 {
					return boom
				}
				applied++
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("pipeline error = %v, want the apply error", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if applied >= 80 {
		t.Fatalf("replay did not stop: %d records applied over %d calls", applied, calls)
	}
}

// TestPipelineOpenErrorIsFatal: a segment that cannot be opened fails
// the replay with the same error ReplayFS reports, after the sound
// prefix was applied.
func TestPipelineOpenErrorIsFatal(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever, SegmentBytes: segHeaderSize + 4*RecordSize})
	appendN(t, l, 1, 10)
	l.Close()
	segs, _ := listSegments(fs, l.Dir())
	if len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d", len(segs))
	}

	// Replay opens segments strictly in order, so the 2nd Open is the
	// second segment — in both the sequential walk and the pipeline's
	// read-ahead stage. Faults are one-shot; arm one per run.
	fs.FailOp(simfs.OpOpen, 2, nil)
	_, seqErr := ReplayFS(fs, l.Dir(), 0, func(Record) error { return nil })
	if seqErr == nil {
		t.Fatal("sequential replay survived the open fault")
	}

	fs.FailOp(simfs.OpOpen, 2, nil)
	streams, _, err := pipelineRun(t, fs, l.Dir(), 0, 2)
	if err == nil || !strings.Contains(err.Error(), "wal: replay:") {
		t.Fatalf("pipeline error = %v, want a replay open error like %v", err, seqErr)
	}
	got := 0
	for _, s := range streams {
		got += len(s)
	}
	if got != 4 {
		t.Fatalf("applied %d records before the fatal segment, want the first segment's 4", got)
	}
}

// TestPipelineNilPartitionAndApply: nil Partition routes everything to
// worker 0; nil ApplyBatch counts without applying. Stats must still
// match the sequential walk.
func TestPipelineNilPartitionAndApply(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever})
	appendN(t, l, 1, 40)
	l.Close()
	_, wantStats := collect(t, fs, l.Dir(), 0)

	var mu sync.Mutex
	var got []Record
	stats, err := ReplayPipelineFS(fs, l.Dir(), 0, PipelineOptions{
		Workers: 4,
		ApplyBatch: func(w int, recs []Record) error {
			if w != 0 {
				t.Errorf("nil Partition sent a batch to worker %d", w)
			}
			mu.Lock()
			got = append(got, recs...)
			mu.Unlock()
			return nil
		},
	})
	if err != nil || stats != wantStats {
		t.Fatalf("nil partition: stats %+v, %v; want %+v", stats, err, wantStats)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("worker 0 saw out-of-order seq %d at %d", r.Seq, i)
		}
	}

	// nil ApplyBatch scans without applying: Applied stays 0 (nothing
	// was handed to an applier), every other stat matches.
	scanStats := wantStats
	scanStats.Applied = 0
	stats, err = ReplayPipelineFS(fs, l.Dir(), 0, PipelineOptions{Workers: 3})
	if err != nil || stats != scanStats {
		t.Fatalf("nil ApplyBatch: stats %+v, %v; want %+v", stats, err, scanStats)
	}
}

// TestPipelineNegativePartitionWraps: a Partition returning negatives
// (id % workers in Go keeps the sign) still lands on a valid worker.
func TestPipelineNegativePartitionWraps(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l, 1, 10)
	l.Close()
	var n int
	var mu sync.Mutex
	stats, err := ReplayPipelineFS(fs, l.Dir(), 0, PipelineOptions{
		Workers:   4,
		Partition: func(r Record) int { return -int(r.Bin) },
		ApplyBatch: func(w int, recs []Record) error {
			mu.Lock()
			n += len(recs)
			mu.Unlock()
			return nil
		},
	})
	if err != nil || stats.Applied != 10 || n != 10 {
		t.Fatalf("negative partition: stats %+v, %d applied, %v", stats, n, err)
	}
}
