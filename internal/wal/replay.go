package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	Segments int    // segment files visited
	Records  int64  // valid records decoded (including ones skipped by seq)
	Applied  int64  // records handed to the apply callback
	Bytes    int64  // record bytes decoded
	LastSeq  uint64 // highest seq seen (0 if none)
	Torn     bool   // replay stopped at a torn tail or corrupted record
}

// Replay walks the segments of dir in order and hands every valid
// record with Seq > afterSeq to apply. It stops — without error — at
// the first torn or corrupted record (CRC mismatch, partial tail, or
// bad segment header) and ignores everything after it, including later
// segments: a gap in the record stream would make the suffix
// unsound to apply, so recovery is "everything up to the last valid
// record", exactly the guarantee the crash-recovery drills assert.
// An error from apply aborts the replay and is returned as-is.
func Replay(dir string, afterSeq uint64, apply func(Record) error) (ReplayStats, error) {
	var stats ReplayStats
	paths, err := listSegments(dir)
	if err != nil {
		return stats, fmt.Errorf("wal: replay: %w", err)
	}
	for _, p := range paths {
		stats.Segments++
		clean, err := replaySegment(p, afterSeq, apply, &stats)
		if err != nil {
			return stats, err
		}
		if !clean {
			stats.Torn = true
			return stats, nil
		}
	}
	return stats, nil
}

// replaySegment streams one segment through apply. It returns
// clean=false when the segment ends in a torn or corrupted record (or
// has a bad header); apply errors are returned verbatim.
func replaySegment(path string, afterSeq uint64, apply func(Record) error, stats *ReplayStats) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("wal: replay: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return false, nil // truncated header: torn at segment birth
	}
	if [8]byte(hdr[:8]) != segMagic {
		return false, nil
	}

	var buf [RecordSize]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			// io.EOF: clean segment end. ErrUnexpectedEOF: torn tail.
			return err == io.EOF, nil
		}
		rec, ok := decodeRecord(buf[:])
		if !ok {
			return false, nil
		}
		stats.Records++
		stats.Bytes += RecordSize
		if rec.Seq > stats.LastSeq {
			stats.LastSeq = rec.Seq
		}
		if rec.Seq <= afterSeq || apply == nil {
			continue
		}
		if err := apply(rec); err != nil {
			return true, err
		}
		stats.Applied++
	}
}

// segInfo is the summary scanSegment produces for truncation
// decisions.
type segInfo struct {
	firstSeq uint64 // from the header (the seq the segment was opened for)
	maxSeq   uint64 // highest valid record seq (0 when records == 0)
	records  int64  // valid records
}

// scanSegment reads a segment's valid prefix without applying it.
// Corruption is not an error here — the scan just stops, like Replay.
func scanSegment(path string) (segInfo, error) {
	var info segInfo
	f, err := os.Open(path)
	if err != nil {
		return info, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return info, nil
	}
	if [8]byte(hdr[:8]) != segMagic {
		return info, nil
	}
	info.firstSeq = binary.LittleEndian.Uint64(hdr[8:16])

	var buf [RecordSize]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return info, nil
		}
		rec, ok := decodeRecord(buf[:])
		if !ok {
			return info, nil
		}
		info.records++
		if rec.Seq > info.maxSeq {
			info.maxSeq = rec.Seq
		}
	}
}
