package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dynalloc/internal/metrics"
	"dynalloc/internal/vfs"
)

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	Segments int    // segment files visited
	Records  int64  // valid records decoded (including ones skipped by seq)
	Applied  int64  // records handed to the apply callback
	Bytes    int64  // record bytes decoded
	LastSeq  uint64 // highest seq seen (0 if none)
	Torn     bool   // a torn tail or corrupted record was encountered
}

// legacyTornStop reinstates the original (buggy) replay behavior that
// stopped at the first torn segment even when the next segment's
// header proved the record stream stayed contiguous — the double-crash
// data-loss defect fixed in an earlier release. It exists ONLY so the
// crash-schedule explorer's mutation self-check can prove it would
// have caught that bug; see SetLegacyTornStopForTest.
var legacyTornStop = false

// SetLegacyTornStopForTest toggles the pre-fix "stop replay at first
// torn segment" behavior. Test hook for the simulation harness's
// mutation self-check; never enable outside a test.
func SetLegacyTornStopForTest(on bool) { legacyTornStop = on }

// legacyGapSkip reinstates the second historical replay defect: the
// seq-continuity check at segment boundaries used to run only after a
// TORN segment, so a cleanly-ended segment followed by a gap-opening
// successor — the on-disk shape an aborted segment leaves behind when a
// failed append's bytes never reached the disk — was silently replayed
// across, applying records on top of missing mutations. It exists ONLY
// so the chaos explorer's mutation self-check can prove its injected
// write faults produce that shape and would have caught the bug.
var legacyGapSkip = false

// SetLegacyGapSkipForTest toggles the pre-fix "continuity check only
// after torn segments" behavior. Test hook for the simulation
// harness's mutation self-check; never enable outside a test.
func SetLegacyGapSkipForTest(on bool) { legacyGapSkip = on }

// Replay walks the segments of dir in order and hands every valid
// record with Seq > afterSeq to apply. A torn or corrupted record
// (CRC mismatch, partial tail, or bad segment header) ends the current
// segment without error; replay continues into a later segment — after
// a torn tail or a clean end alike — only when that segment's header
// firstSeq proves no record would be skipped: firstSeq <= 1 + the
// highest seq already covered (valid records seen, or afterSeq from
// the caller's checkpoint). A clean gap arises when the log aborts a
// wedged segment after a failed append whose bytes never reached the
// disk and heals onto a fresh segment; the records past the gap stay
// on disk but are unsound to apply until a checkpoint covers it. That is
// exactly the crash → restore → traffic → crash-again layout: the
// pre-crash segment keeps its torn tail (until truncation removes it)
// while the post-restore segment opens at the restored seq + 1, and
// both must replay. A later segment that would open a true seq gap is
// unsound to apply, so replay stops there: recovery is "everything
// reachable without skipping a record". An error from apply aborts
// the replay and is returned as-is.
//
// Replay runs against the real filesystem; ReplayFS is the same pass
// against any vfs.FS.
func Replay(dir string, afterSeq uint64, apply func(Record) error) (ReplayStats, error) {
	return ReplayFS(vfs.OS, dir, afterSeq, apply)
}

// ReplayFS is Replay against an explicit filesystem.
func ReplayFS(fsys vfs.FS, dir string, afterSeq uint64, apply func(Record) error) (ReplayStats, error) {
	var stats ReplayStats
	paths, err := listSegments(fsys, dir)
	if err != nil {
		return stats, fmt.Errorf("wal: replay: %w", err)
	}
	for _, p := range paths {
		if stats.Torn && legacyTornStop {
			return stats, nil // mutation hook: the pre-fix early stop
		}
		if stats.Torn || !legacyGapSkip {
			// Continuity check at EVERY segment, torn or not — including
			// the FIRST one: a head segment opening past afterSeq+1 means
			// the log's earliest records were dropped before anything was
			// written (an aborted first append heals onto a segment that
			// starts at seq 2), and replaying the suffix onto the
			// checkpoint state would skip them just like a mid-log gap. A
			// cleanly-ended segment followed by a higher firstSeq is how
			// an aborted segment looks when its failed batch never reached
			// the disk (the log heals by opening a fresh segment for the
			// next append — see Log.abortSegmentLocked). Applying the
			// suffix would replay records on top of missing mutations.
			covered := stats.LastSeq
			if afterSeq > covered {
				covered = afterSeq
			}
			if first, ok := readSegmentFirstSeq(fsys, p); ok && first > covered+1 {
				return stats, nil // a real seq gap: the suffix is unsound
			}
			// An unreadable header falls through: replaySegment applies
			// nothing from such a segment, so contiguity is preserved.
		}
		stats.Segments++
		clean, err := replaySegment(fsys, p, afterSeq, apply, &stats)
		if err != nil {
			return stats, err
		}
		if !clean {
			stats.Torn = true
		}
	}
	return stats, nil
}

// RemoveStaleFS deletes every segment that replay pinned at lastSeq
// (the seq the restored state is consistent with) can never soundly
// apply: those whose header firstSeq opens past lastSeq. Such a
// suffix arises when replay stops at a seq gap — a record dropped by
// an aborted append left segments on disk that are unsound to apply.
// It must be removed at restore time, BEFORE the log reopens: the next
// incarnation re-issues seqs from lastSeq+1, so a stale suffix left
// behind overlaps the new history's seq range, and a later replay
// would walk the stale segment (its firstSeq looks contiguous against
// the new, higher covered seq) and apply records from the dead
// timeline on top of the live one. Nothing acknowledged durable is
// lost: the journal's error froze the durable watermark before the
// gap, so every record past it was never acknowledged. Segments with
// unreadable headers are left alone — replay applies nothing from
// them, and a name collision with a future segment truncates them.
func RemoveStaleFS(fsys vfs.FS, dir string, lastSeq uint64) (int, error) {
	paths, err := listSegments(fsys, dir)
	if err != nil {
		return 0, fmt.Errorf("wal: remove stale: %w", err)
	}
	removed := 0
	for _, p := range paths {
		first, ok := readSegmentFirstSeq(fsys, p)
		if !ok || first <= lastSeq {
			continue
		}
		if err := fsys.Remove(p); err != nil {
			return removed, fmt.Errorf("wal: remove stale: %w", err)
		}
		removed++
	}
	if removed > 0 {
		// The unlinks must be durable before the log reopens: without the
		// directory fsync a power cut resurrects the stale segments —
		// now overlapping the seqs the new incarnation has re-issued.
		if err := fsys.SyncDir(dir); err != nil {
			return removed, fmt.Errorf("wal: remove stale: %w", err)
		}
		metrics.AddCounter("wal.segment.stale_removed", int64(removed))
	}
	return removed, nil
}

// readSegmentFirstSeq reads just a segment's header and returns the
// first record seq it was opened for; ok=false when the header is
// missing, truncated or has the wrong magic.
func readSegmentFirstSeq(fsys vfs.FS, path string) (uint64, bool) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, false
	}
	if [8]byte(hdr[:8]) != segMagic {
		return 0, false
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), true
}

// replaySegment streams one segment through apply. It returns
// clean=false when the segment ends in a torn or corrupted record (or
// has a bad header); apply errors are returned verbatim.
func replaySegment(fsys vfs.FS, path string, afterSeq uint64, apply func(Record) error, stats *ReplayStats) (bool, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return false, fmt.Errorf("wal: replay: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return false, nil // truncated header: torn at segment birth
	}
	if [8]byte(hdr[:8]) != segMagic {
		return false, nil
	}

	var buf [RecordSize]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			// io.EOF: clean segment end. ErrUnexpectedEOF: torn tail.
			return err == io.EOF, nil
		}
		rec, ok := decodeRecord(buf[:])
		if !ok {
			return false, nil
		}
		stats.Records++
		stats.Bytes += RecordSize
		if rec.Seq > stats.LastSeq {
			stats.LastSeq = rec.Seq
		}
		if rec.Seq <= afterSeq || apply == nil {
			continue
		}
		if err := apply(rec); err != nil {
			return true, err
		}
		stats.Applied++
	}
}

// segInfo is the summary scanSegment produces for truncation
// decisions.
type segInfo struct {
	firstSeq uint64 // from the header (the seq the segment was opened for)
	maxSeq   uint64 // highest valid record seq (0 when records == 0)
	records  int64  // valid records
}

// scanSegment reads a segment's valid prefix without applying it.
// Corruption is not an error here — the scan just stops, like Replay.
func scanSegment(fsys vfs.FS, path string) (segInfo, error) {
	var info segInfo
	f, err := fsys.Open(path)
	if err != nil {
		return info, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return info, nil
	}
	if [8]byte(hdr[:8]) != segMagic {
		return info, nil
	}
	info.firstSeq = binary.LittleEndian.Uint64(hdr[8:16])

	var buf [RecordSize]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return info, nil
		}
		rec, ok := decodeRecord(buf[:])
		if !ok {
			return info, nil
		}
		info.records++
		if rec.Seq > info.maxSeq {
			info.maxSeq = rec.Seq
		}
	}
}
