// Package wal is the durability substrate of the live allocation
// service: a segmented, append-only write-ahead log of the store's
// mutations (alloc / free / crash), written as fixed-width binary
// records each protected by a CRC32C, with a configurable fsync policy
// and size-based segment rotation.
//
// The log records *committed* mutations, so restore is "load the
// latest valid checkpoint (internal/checkpoint), then replay the WAL
// suffix". Replay is tolerant of the two corruptions a crash can
// leave behind: a torn tail (a partial record at the end of a
// segment) and a corrupted record (CRC mismatch); in both cases
// replay skips to the next segment when its header shows the record
// stream stays contiguous (so segments written after a restore — they
// open at the restored seq + 1 — survive a later crash even while an
// older torn segment is still on disk), and stops at the last valid
// record only when continuing would skip a record. Either way it
// reports the corruption instead of failing, which is exactly the
// self-stabilization reading of the paper — a crash-corrupted state
// is just another starting point the process recovers from.
//
// Records carry a caller-assigned sequence number (seq). Sequence
// numbers are assigned under the store's shard locks, so a checkpoint
// taken with every shard locked knows exactly which seq it covers;
// records may still land in the file slightly out of seq order (two
// shards can enqueue in either order), which is harmless because
// per-bin order is preserved and replay filters by seq, not by file
// position.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Op is the mutation type of one WAL record.
type Op uint8

const (
	// OpAlloc is one admission into Bin (K is always 1).
	OpAlloc Op = 1
	// OpFree is one departure from Bin (K is always 1).
	OpFree Op = 2
	// OpCrash is a fault injection of K balls into Bin (also used for
	// the balanced seeding at first boot, which goes through
	// Store.Crash).
	OpCrash Op = 3
)

func (o Op) String() string {
	switch o {
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	case OpCrash:
		return "crash"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Record is one logged store mutation.
type Record struct {
	Op  Op
	Bin uint32
	K   int32  // ball count: 1 for alloc/free, the injected k for crash
	Seq uint64 // caller-assigned sequence number, 1-based
}

// RecordSize is the fixed on-disk size of an encoded record:
// op(1) + bin(4) + k(4) + seq(8) + crc32c(4).
const RecordSize = 1 + 4 + 4 + 8 + 4

// crcTable is the Castagnoli polynomial table (CRC32C), the same
// checksum used by ext4 and most storage engines.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// payloadSize is the checksummed prefix of a record.
const payloadSize = RecordSize - 4

// encode writes r into buf (which must hold RecordSize bytes).
func (r Record) encode(buf []byte) {
	buf[0] = byte(r.Op)
	binary.LittleEndian.PutUint32(buf[1:5], r.Bin)
	binary.LittleEndian.PutUint32(buf[5:9], uint32(r.K))
	binary.LittleEndian.PutUint64(buf[9:17], r.Seq)
	binary.LittleEndian.PutUint32(buf[17:21], crc32.Checksum(buf[:payloadSize], crcTable))
}

// decodeRecord parses one record from buf, verifying the CRC. It
// returns ok=false on checksum mismatch or an invalid op byte — the
// two shapes a torn or corrupted record takes.
func decodeRecord(buf []byte) (Record, bool) {
	want := binary.LittleEndian.Uint32(buf[17:21])
	if crc32.Checksum(buf[:payloadSize], crcTable) != want {
		return Record{}, false
	}
	r := Record{
		Op:  Op(buf[0]),
		Bin: binary.LittleEndian.Uint32(buf[1:5]),
		K:   int32(binary.LittleEndian.Uint32(buf[5:9])),
		Seq: binary.LittleEndian.Uint64(buf[9:17]),
	}
	if r.Op != OpAlloc && r.Op != OpFree && r.Op != OpCrash {
		return Record{}, false
	}
	return r, true
}
