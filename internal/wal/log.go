package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dynalloc/internal/metrics"
	"dynalloc/internal/vfs"
)

// FsyncPolicy controls when appended records are forced to stable
// storage.
type FsyncPolicy int

const (
	// FsyncInterval flushes and fsyncs when at least Options.FsyncInterval
	// has elapsed since the last sync (checked on each append), bounding
	// the data-loss window on power failure to roughly that interval.
	// This is the default.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways flushes and fsyncs after every append: no committed
	// record is ever lost, at the cost of one fsync per mutation.
	FsyncAlways
	// FsyncNever leaves syncing to the OS (and to Close/rotation
	// flushes). A process kill loses only the user-space buffer; a
	// power failure can lose everything since the last rotation.
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("fsync(%d)", int(p))
}

// ParseFsyncPolicy parses "always", "interval" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configures a Log.
type Options struct {
	// Dir is the directory holding the segment files (created if
	// missing). Required.
	Dir string

	// SegmentBytes is the rotation threshold: once a segment reaches
	// this size it is sealed and the next append opens a fresh one.
	// Default 4 MiB.
	SegmentBytes int64

	// Fsync is the sync policy (default FsyncInterval).
	Fsync FsyncPolicy

	// FsyncInterval is the cadence for FsyncInterval (default 100ms).
	FsyncInterval time.Duration

	// FS is the filesystem the log runs against. Default vfs.OS; the
	// crash-schedule simulations substitute the fault-injecting
	// in-memory filesystem (internal/simfs).
	FS vfs.FS
}

func (o *Options) fill() error {
	if o.Dir == "" {
		return errors.New("wal: Options.Dir is required")
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = vfs.OS
	}
	return nil
}

// createSegmentFile creates a fresh segment file exclusively. When a
// segment with this first-seq already exists — a fork left behind by a
// crash whose replay could not reach it (a gap, a bad header, or a
// checkpoint that superseded it) — it is dead to replay, but it may
// still hold durably-written records an operator wants for forensics,
// so it is never truncated: it is renamed aside to a .dead.N name —
// which no wal-*.seg glob matches, so replay and TruncateThrough
// ignore it — and a fresh segment takes the name.
func createSegmentFile(fsys vfs.FS, path string) (vfs.File, error) {
	f, err := fsys.Create(path)
	if !vfs.IsExist(err) {
		return f, err
	}
	for i := 0; ; i++ {
		aside := fmt.Sprintf("%s.dead.%d", path, i)
		if _, err := fsys.Stat(aside); vfs.IsNotExist(err) {
			if err := fsys.Rename(path, aside); err != nil {
				return nil, fmt.Errorf("wal: move colliding segment aside: %w", err)
			}
			break
		} else if err != nil {
			return nil, fmt.Errorf("wal: move colliding segment aside: %w", err)
		}
	}
	return fsys.Create(path)
}

// segMagic is the 8-byte segment header magic; the header is the magic
// followed by the first record seq the segment was opened for.
var segMagic = [8]byte{'d', 'w', 'a', 'l', 's', 'e', 'g', '1'}

// segHeaderSize is the on-disk segment header size.
const segHeaderSize = 16

func segmentName(firstSeq uint64) string { return fmt.Sprintf("wal-%016x.seg", firstSeq) }

// Log is a segmented append-only record log. All methods are safe for
// concurrent use; appends from concurrent callers serialize on one
// mutex (callers that want the append off their hot path put a
// buffered writer goroutine in front — see serve.Journal).
type Log struct {
	opts Options

	mu       sync.Mutex
	f        vfs.File
	bw       *bufio.Writer
	curPath  string
	curSize  int64
	curMax   uint64 // max seq written to the current segment
	lastSync time.Time
	closed   bool
	one      [1]Record // Append's one-element batch, reused under mu
	batchBuf []byte    // grow-only encode buffer, reused under mu
}

// Open prepares a log in opts.Dir. No segment file is created until
// the first Append (segments are named by their first record's seq),
// so opening after a restore never clobbers existing segments: new
// records always go to a fresh file and torn tails in old segments
// stay untouched for forensics until TruncateThrough removes them.
func Open(opts Options) (*Log, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Log{opts: opts, lastSync: time.Now()}, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.opts.Dir }

// FS returns the filesystem the log runs against, so cooperating
// components (the journal's checkpoint writer) share the same seam.
func (l *Log) FS() vfs.FS { return l.opts.FS }

// Append encodes and writes one record, applying the fsync policy and
// rotating the segment when the size threshold is crossed. The record's
// Seq must be assigned by the caller (see the package comment). Append
// is a one-element AppendBatch.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.one[0] = r
	return l.appendBatchLocked(l.one[:])
}

// AppendBatch encodes and writes a batch of records under one mutex
// acquisition, with one buffered write and — the group commit — the
// fsync policy applied once for the whole batch: a single fsync durably
// covers every record in it, so under FsyncAlways the per-record fsync
// cost is divided by the batch size. Rotation happens at batch
// boundaries only: the entire batch lands in the current segment, and
// the size threshold is checked after it (a batch larger than
// SegmentBytes simply produces one oversized segment, which replay and
// truncation handle like any other).
//
// A write error fails the whole batch: none of its records may be
// reported durable (a torn prefix can still survive on disk — replay
// treats it like any torn tail and recovers the clean prefix). An
// empty batch is a no-op.
func (l *Log) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendBatchLocked(recs)
}

func (l *Log) appendBatchLocked(recs []Record) error {
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.f == nil {
		if err := l.openSegmentLocked(recs[0].Seq); err != nil {
			return err
		}
	}
	need := len(recs) * RecordSize
	if cap(l.batchBuf) < need {
		l.batchBuf = make([]byte, need)
	}
	buf := l.batchBuf[:need]
	for i := range recs {
		recs[i].encode(buf[i*RecordSize : (i+1)*RecordSize])
	}
	if _, err := l.bw.Write(buf); err != nil {
		l.abortSegmentLocked()
		return fmt.Errorf("wal: append: %w", err)
	}
	for i := range recs {
		if recs[i].Seq > l.curMax {
			l.curMax = recs[i].Seq
		}
	}
	l.curSize += int64(need)
	metrics.AddCounter("wal.append.records", int64(len(recs)))
	metrics.AddCounter("wal.append.bytes", int64(need))
	metrics.ObserveHistogram("wal.batch.records", int64(len(recs)))

	switch l.opts.Fsync {
	case FsyncAlways:
		if err := l.syncLocked(); err != nil {
			l.abortSegmentLocked()
			return err
		}
		if len(recs) > 1 {
			// Group commit: all but the first record rode an fsync that
			// would each have been their own under per-record append.
			metrics.AddCounter("wal.sync.coalesced", int64(len(recs)-1))
		}
	case FsyncInterval:
		if time.Since(l.lastSync) >= l.opts.FsyncInterval {
			if err := l.syncLocked(); err != nil {
				l.abortSegmentLocked()
				return err
			}
			if len(recs) > 1 {
				metrics.AddCounter("wal.sync.coalesced", int64(len(recs)-1))
			}
		}
	}

	if l.curSize >= l.opts.SegmentBytes {
		if err := l.sealLocked(); err != nil {
			l.abortSegmentLocked()
			return err
		}
	}
	return nil
}

// abortSegmentLocked drops the current segment handle after a failed
// write, fsync or seal, so the next append opens a fresh segment
// instead of re-hitting the wedged one. Without this a transient fault
// (an injected ENOSPC, a momentarily failing device) would jam the log
// forever: a bufio.Writer error is sticky, and the failed segment's
// size counter stops advancing so rotation never triggers. The failed
// segment's clean prefix stays on disk — replay treats it like any
// torn tail, and the seq-continuity rule decides whether the stream
// continues into the next segment (it does whenever the failed bytes
// in fact reached the disk; a truly lost record is a real gap and
// stops replay there, exactly as it must).
func (l *Log) abortSegmentLocked() {
	if l.f == nil {
		return
	}
	l.f.Close() // best effort: the segment is already suspect
	l.f, l.bw, l.curPath = nil, nil, ""
	l.curSize, l.curMax = 0, 0
	metrics.AddCounter("wal.segment.aborts", 1)
}

// openSegmentLocked starts a fresh segment whose name and header carry
// firstSeq.
func (l *Log) openSegmentLocked(firstSeq uint64) error {
	path := filepath.Join(l.opts.Dir, segmentName(firstSeq))
	f, err := createSegmentFile(l.opts.FS, path)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	bw := bufio.NewWriter(f)
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], firstSeq)
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.f, l.bw, l.curPath = f, bw, path
	l.curSize = segHeaderSize
	l.curMax = 0
	metrics.AddCounter("wal.append.bytes", segHeaderSize)
	return nil
}

// syncLocked flushes the buffer and fsyncs the current segment,
// recording the fsync latency.
func (l *Log) syncLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	metrics.ObserveHistogram("wal.fsync_ns", time.Since(start).Nanoseconds())
	l.lastSync = time.Now()
	return nil
}

// sealLocked closes the current segment (flushed, and fsynced unless
// the policy is FsyncNever); the next append opens a fresh one.
func (l *Log) sealLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if l.opts.Fsync != FsyncNever {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		metrics.ObserveHistogram("wal.fsync_ns", time.Since(start).Nanoseconds())
		l.lastSync = time.Now()
	}
	err := l.f.Close()
	l.f, l.bw, l.curPath = nil, nil, ""
	l.curSize, l.curMax = 0, 0
	metrics.AddCounter("wal.segment.rotations", 1)
	if err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	return nil
}

// Sync flushes buffered records and fsyncs the current segment. Under
// FsyncInterval a caller (e.g. the journal's idle ticker) uses this to
// bound the loss window when no appends are arriving.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if err := l.syncLocked(); err != nil {
		l.abortSegmentLocked()
		return err
	}
	return nil
}

// Close seals the current segment and closes the log. Unless the
// policy is FsyncNever the tail is fsynced first.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.sealLocked()
}

// TruncateThrough deletes every sealed segment whose records are all
// covered by seq (that is, whose max record seq is <= seq), scanning
// the directory so segments left by previous processes are pruned too.
// The open segment is never touched. Segments holding only garbage
// (no valid record) are removed when their header seq is covered.
// It returns the number of files removed.
func (l *Log) TruncateThrough(seq uint64) (int, error) {
	l.mu.Lock()
	cur := l.curPath
	l.mu.Unlock()

	paths, err := listSegments(l.opts.FS, l.opts.Dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, p := range paths {
		if cur != "" && p == cur {
			continue
		}
		info, err := scanSegment(l.opts.FS, p)
		if err != nil {
			// Unreadable file: leave it; replay will classify it.
			continue
		}
		covered := (info.records > 0 && info.maxSeq <= seq) ||
			(info.records == 0 && info.firstSeq <= seq)
		if !covered {
			continue
		}
		if err := l.opts.FS.Remove(p); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
		removed++
	}
	if removed > 0 {
		metrics.AddCounter("wal.segment.truncated", int64(removed))
	}
	return removed, nil
}

// listSegments returns the segment paths in dir sorted by name, which
// is first-seq order (names are zero-padded hex).
func listSegments(fsys vfs.FS, dir string) ([]string, error) {
	paths, err := fsys.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
