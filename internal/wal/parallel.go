package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"dynalloc/internal/metrics"
	"dynalloc/internal/vfs"
)

// PipelineOptions configures ReplayPipelineFS, the parallel form of
// ReplayFS: a segment read-ahead stage feeds record-decode workers, a
// sequential validator preserves ReplayFS's exact torn-tail / seq-gap
// semantics, and validated records fan out to partitioned apply
// workers.
type PipelineOptions struct {
	// Workers is the number of apply workers (< 1 is treated as 1).
	// Each partition id maps to exactly one worker (id % Workers), so
	// records of one partition apply in file order on one goroutine —
	// per-partition order is preserved no matter how many workers run.
	Workers int

	// ReadAhead bounds how many whole segments the read stage may hold
	// in flight ahead of the validator (default 2). Segments are
	// bounded by the log's rotation size, so this also bounds pipeline
	// memory.
	ReadAhead int

	// Partition maps a record to its partition id (the serve layer uses
	// the store's lock-stripe index, so applies to different partitions
	// commute). nil sends every record to partition 0 — one apply
	// worker does all the work, the others idle.
	Partition func(Record) int

	// ApplyBatch applies one ordered batch of records belonging to
	// worker (a batch never mixes records of two different workers, and
	// batches for one worker arrive in file order). An error aborts the
	// replay; see ReplayPipelineFS.
	ApplyBatch func(worker int, recs []Record) error
}

// rawSegment is one segment file read whole by the read-ahead stage.
type rawSegment struct {
	idx     int
	data    []byte
	openErr error // fatal, like ReplayFS's segment-open failure
	readErr bool  // mid-read failure: the undecoded tail counts as torn
}

// decodedSegment is one segment's decode result, delivered to the
// validator strictly in segment order.
type decodedSegment struct {
	firstSeq uint64
	hdrOK    bool
	recs     []Record
	clean    bool // ended exactly at a record boundary with no corruption
	openErr  error
}

// readSegment reads one segment file whole. Open failures are fatal
// (exactly like ReplayFS); a failure mid-read keeps the bytes already
// read and taints the tail, which is how the streaming reader would
// have experienced the same fault.
func readSegment(fsys vfs.FS, path string, idx int) rawSegment {
	raw := rawSegment{idx: idx}
	f, err := fsys.Open(path)
	if err != nil {
		raw.openErr = fmt.Errorf("wal: replay: %w", err)
		return raw
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	raw.data = data
	raw.readErr = err != nil
	return raw
}

// decodeSegmentData decodes one segment's bytes into records, stopping
// at the first torn or corrupted record — the same valid-prefix rule
// replaySegment applies while streaming.
func decodeSegmentData(raw rawSegment) decodedSegment {
	d := decodedSegment{openErr: raw.openErr}
	if raw.openErr != nil {
		return d
	}
	data := raw.data
	if len(data) < segHeaderSize || [8]byte(data[:8]) != segMagic {
		return d // missing/short/foreign header: torn at segment birth
	}
	d.hdrOK = true
	d.firstSeq = binary.LittleEndian.Uint64(data[8:16])
	body := data[segHeaderSize:]
	n := len(body) / RecordSize
	d.recs = make([]Record, 0, n)
	for i := 0; i < n; i++ {
		rec, ok := decodeRecord(body[i*RecordSize : (i+1)*RecordSize])
		if !ok {
			return d // corrupted record: valid prefix ends here
		}
		d.recs = append(d.recs, rec)
	}
	d.clean = len(body)%RecordSize == 0 && !raw.readErr
	return d
}

// ReplayPipelineFS is ReplayFS restructured as a parallel pipeline:
// a read-ahead goroutine loads segments whole, decode workers verify
// CRCs and parse records concurrently, and a sequential validator —
// consuming decode results strictly in segment order — applies the
// exact same torn-tail / seq-gap / continuity rules as ReplayFS
// (including the legacy test hooks) before fanning validated records
// out to opts.Workers apply workers by partition. Records of one
// partition are always applied, in file order, by one worker, so
// callers whose partitions commute (the store's lock stripes) get a
// bit-identical final state to the sequential replay.
//
// The success path produces exactly the stats ReplayFS would. On an
// ApplyBatch error the pipeline stops and returns the first error
// observed; records already handed to other workers may or may not
// have been applied, so — like ReplayFS's apply-error contract — the
// store's state is unspecified and stats are best-effort.
//
// Stage totals are observed into the wal.replay.read_ns /
// wal.replay.decode_ns / wal.replay.apply_ns timers, and the worker
// count into the wal.replay.workers gauge.
func ReplayPipelineFS(fsys vfs.FS, dir string, afterSeq uint64, opts PipelineOptions) (ReplayStats, error) {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	readAhead := opts.ReadAhead
	if readAhead < 1 {
		readAhead = 2
	}
	metrics.SetGauge("wal.replay.workers", float64(workers))

	var stats ReplayStats
	paths, err := listSegments(fsys, dir)
	if err != nil {
		return stats, fmt.Errorf("wal: replay: %w", err)
	}
	if len(paths) == 0 {
		return stats, nil
	}

	var readNs, decodeNs, applyNs atomic.Int64
	stop := make(chan struct{})

	// Read-ahead stage: segments are read whole, at most readAhead in
	// flight, and stop after the first fatal open error (the validator
	// fails at that segment; nothing past it can be applied).
	rawCh := make(chan rawSegment, readAhead)
	go func() {
		defer close(rawCh)
		for i, p := range paths {
			t := time.Now()
			raw := readSegment(fsys, p, i)
			readNs.Add(time.Since(t).Nanoseconds())
			select {
			case rawCh <- raw:
			case <-stop:
				return
			}
			if raw.openErr != nil {
				return
			}
		}
	}()

	// Decode stage: CRC verification is the CPU-heavy part of replay,
	// and segments decode independently. Results are delivered through
	// one single-use buffered channel per segment so the validator can
	// consume them strictly in order no matter which worker finishes
	// first.
	outs := make([]chan decodedSegment, len(paths))
	for i := range outs {
		outs[i] = make(chan decodedSegment, 1)
	}
	decoders := workers
	if decoders > 4 {
		decoders = 4
	}
	var decodeWg sync.WaitGroup
	for i := 0; i < decoders; i++ {
		decodeWg.Add(1)
		go func() {
			defer decodeWg.Done()
			for raw := range rawCh {
				t := time.Now()
				d := decodeSegmentData(raw)
				decodeNs.Add(time.Since(t).Nanoseconds())
				outs[raw.idx] <- d // cap 1, sole sender: never blocks
			}
		}()
	}

	// Apply stage: one goroutine per worker, fed per-segment batches.
	// After an error the workers keep draining (so the validator never
	// blocks on a full channel) but apply nothing further.
	applyCh := make([]chan []Record, workers)
	for w := range applyCh {
		applyCh[w] = make(chan []Record, 4)
	}
	var (
		applyWg   sync.WaitGroup
		errMu     sync.Mutex
		applyErr  error
		errFlag   atomic.Bool
		noteError = func(err error) {
			errMu.Lock()
			if applyErr == nil {
				applyErr = err
			}
			errMu.Unlock()
			errFlag.Store(true)
		}
	)
	for w := 0; w < workers; w++ {
		applyWg.Add(1)
		go func(w int) {
			defer applyWg.Done()
			for batch := range applyCh[w] {
				if errFlag.Load() {
					continue
				}
				t := time.Now()
				err := opts.ApplyBatch(w, batch)
				applyNs.Add(time.Since(t).Nanoseconds())
				if err != nil {
					noteError(err)
				}
			}
		}(w)
	}

	// Sequential validator: the single place replay decisions are made,
	// mirroring ReplayFS line for line. It consumes decoded segments in
	// order, so stats.LastSeq/Torn evolve exactly as in the sequential
	// walk, and only records it admits reach the apply workers.
	var finalErr error
	batches := make([][]Record, workers)
	for idx := range paths {
		if errFlag.Load() {
			break
		}
		d := <-outs[idx]
		if stats.Torn && legacyTornStop {
			break // mutation hook: the pre-fix early stop
		}
		if d.openErr == nil && (stats.Torn || !legacyGapSkip) {
			// The same continuity rule as ReplayFS, at EVERY segment:
			// a header opening past covered+1 is a real seq gap, and
			// the suffix is unsound to apply.
			covered := stats.LastSeq
			if afterSeq > covered {
				covered = afterSeq
			}
			if d.hdrOK && d.firstSeq > covered+1 {
				break
			}
		}
		stats.Segments++
		if d.openErr != nil {
			finalErr = d.openErr
			break
		}
		est := len(d.recs)/workers + 16
		for w := range batches {
			batches[w] = nil
		}
		for _, rec := range d.recs {
			stats.Records++
			stats.Bytes += RecordSize
			if rec.Seq > stats.LastSeq {
				stats.LastSeq = rec.Seq
			}
			if rec.Seq <= afterSeq || opts.ApplyBatch == nil {
				continue
			}
			w := 0
			if opts.Partition != nil {
				w = opts.Partition(rec) % workers
				if w < 0 {
					w += workers
				}
			}
			if batches[w] == nil {
				batches[w] = make([]Record, 0, est)
			}
			batches[w] = append(batches[w], rec)
			stats.Applied++
		}
		for w, b := range batches {
			if len(b) == 0 {
				continue
			}
			// Blocking send is safe: workers always drain their channel,
			// discarding batches after an error instead of stopping.
			applyCh[w] <- b
			batches[w] = nil
		}
		if !d.clean {
			stats.Torn = true
		}
	}

	close(stop)
	for _, ch := range applyCh {
		close(ch)
	}
	applyWg.Wait()
	decodeWg.Wait()

	metrics.ObserveTimer("wal.replay.read_ns", time.Duration(readNs.Load()))
	metrics.ObserveTimer("wal.replay.decode_ns", time.Duration(decodeNs.Load()))
	metrics.ObserveTimer("wal.replay.apply_ns", time.Duration(applyNs.Load()))

	if finalErr == nil {
		errMu.Lock()
		finalErr = applyErr
		errMu.Unlock()
	}
	return stats, finalErr
}
