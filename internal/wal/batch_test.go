package wal

import (
	"errors"
	"path/filepath"
	"testing"

	"dynalloc/internal/metrics"
	"dynalloc/internal/simfs"
)

// recs returns rec(from)..rec(to) as one batch.
func recs(from, to int) []Record {
	out := make([]Record, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, rec(i))
	}
	return out
}

func TestAppendBatchEmptyIsNoOp(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncAlways})
	if err := l.AppendBatch(nil); err != nil {
		t.Fatalf("nil batch: %v", err)
	}
	if err := l.AppendBatch([]Record{}); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	// No segment may exist: an empty batch must not open a file (a
	// segment's name is its first record's seq, which an empty batch
	// does not have).
	if segs, _ := listSegments(fs, l.Dir()); len(segs) != 0 {
		t.Fatalf("empty batch created segments: %v", segs)
	}
	if got := fs.Ops(simfs.OpSync); got != 0 {
		t.Fatalf("empty batch synced %d times", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendBatchEquivalentToAppend pins the on-disk contract: a batch
// replays record for record exactly like the same stream appended one
// at a time, including across the rotations that happen at batch
// boundaries.
func TestAppendBatchEquivalentToAppend(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever}) // 8-record segments
	for from := 1; from <= 100; from += 7 {
		to := from + 6
		if to > 100 {
			to = 100
		}
		if err := l.AppendBatch(recs(from, to)); err != nil {
			t.Fatalf("batch [%d,%d]: %v", from, to, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if segs, _ := listSegments(fs, l.Dir()); len(segs) < 5 {
		t.Fatalf("expected rotation at batch boundaries to produce several segments, got %d", len(segs))
	}
	got, stats := collect(t, fs, "/wal", 0)
	if len(got) != 100 || stats.Torn || stats.LastSeq != 100 {
		t.Fatalf("replay: %d records, stats %+v", len(got), stats)
	}
	for i, r := range got {
		if r != rec(i+1) {
			t.Fatalf("record %d: got %+v want %+v", i, r, rec(i+1))
		}
	}
}

// TestAppendBatchSpanningRotation: a batch is never split — it lands
// whole in the current segment even when that overshoots SegmentBytes
// (one oversized segment), and the seal happens at the batch boundary.
func TestAppendBatchSpanningRotation(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever})   // threshold: 8 records
	if err := l.AppendBatch(recs(1, 20)); err != nil { // 2.5x the threshold
		t.Fatal(err)
	}
	segs, _ := listSegments(fs, l.Dir())
	if len(segs) != 1 {
		t.Fatalf("oversized batch split across %d segments, want 1", len(segs))
	}
	// The overshoot sealed the segment, so the next batch opens a new one.
	if err := l.AppendBatch(recs(21, 24)); err != nil {
		t.Fatal(err)
	}
	if segs, _ = listSegments(fs, l.Dir()); len(segs) != 2 {
		t.Fatalf("post-overshoot batch did not open a fresh segment: %d segments", len(segs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := collect(t, fs, "/wal", 0)
	if len(got) != 24 || stats.Torn {
		t.Fatalf("replay: %d records, stats %+v", len(got), stats)
	}
	for i, r := range got {
		if r != rec(i+1) {
			t.Fatalf("record %d: got %+v want %+v", i, r, rec(i+1))
		}
	}
}

// TestAppendBatchGroupCommit is the point of the whole change: under
// FsyncAlways a batch of n records costs ONE fsync, and the saved n-1
// are visible in the wal.sync.coalesced counter.
func TestAppendBatchGroupCommit(t *testing.T) {
	metrics.Reset()
	metrics.Enable()
	defer func() {
		metrics.Disable()
		metrics.Reset()
	}()

	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncAlways, SegmentBytes: 1 << 20})
	if err := l.AppendBatch(recs(1, 64)); err != nil {
		t.Fatal(err)
	}
	if got := fs.Ops(simfs.OpSync); got != 1 {
		t.Fatalf("batch of 64 issued %d fsyncs, want 1 (group commit)", got)
	}
	if err := l.AppendBatch(recs(65, 65)); err != nil {
		t.Fatal(err)
	}
	if got := fs.Ops(simfs.OpSync); got != 2 {
		t.Fatalf("one-record batch: %d total fsyncs, want 2", got)
	}
	snap := metrics.Default().Snapshot()
	if got := snap.Counters["wal.sync.coalesced"]; got != 63 {
		t.Fatalf("wal.sync.coalesced = %d, want 63", got)
	}
	if h, ok := snap.Histograms["wal.batch.records"]; !ok || h.Count != 2 {
		t.Fatalf("wal.batch.records histogram: %+v (ok=%v)", h, ok)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendBatchWriteErrorFailsWholeBatch: a mid-batch write fault
// fails the AppendBatch call as a unit — the caller must treat every
// record of the batch as non-durable. The log then aborts the wedged
// segment and heals: the NEXT batch opens a fresh segment and
// succeeds, so a transient fault (chaos-injected ENOSPC, a blip of a
// failing device) cannot jam the log forever. Because the failed
// batch's bytes never reached the disk, the healed stream has a real
// seq gap — replay must recover exactly the pre-fault prefix and stop
// there; the post-heal records stay on disk but are unsound to apply
// until a checkpoint covers the gap.
func TestAppendBatchWriteErrorFailsWholeBatch(t *testing.T) {
	metrics.Reset()
	metrics.Enable()
	defer func() {
		metrics.Disable()
		metrics.Reset()
	}()

	fs := testFS()
	boom := errors.New("injected write failure")
	l := testOpen(t, fs, Options{Fsync: FsyncAlways, SegmentBytes: 1 << 20})
	if err := l.AppendBatch(recs(1, 4)); err != nil {
		t.Fatal(err)
	}
	// The next flush (the failing batch's sync) is the first Write the
	// file sees after the fault is armed: records 5..12 never reach it.
	fs.FailOp(simfs.OpWrite, 1, boom)
	err := l.AppendBatch(recs(5, 12))
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("batch write error not surfaced: %v", err)
	}
	// The heal: the wedged segment was aborted, so the next batch opens
	// a fresh segment (named for its first seq) and succeeds — the
	// simfs fault disarmed after firing, as a transient fault does.
	if err := l.AppendBatch(recs(13, 16)); err != nil {
		t.Fatalf("append after aborted segment: %v (want success on a fresh segment)", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := metrics.Default().Snapshot().Counters["wal.segment.aborts"]; got != 1 {
		t.Fatalf("wal.segment.aborts = %d, want 1", got)
	}
	if _, err := fs.Stat(filepath.Join("/wal", segmentName(13))); err != nil {
		t.Fatalf("healed segment missing: %v", err)
	}
	// Records 5..12 are genuinely lost, so replay stops at the gap: the
	// 4 synced records come back and 13..16 must NOT be applied on top
	// of the missing mutations.
	got, stats := collect(t, fs, "/wal", 0)
	if len(got) != 4 || stats.LastSeq != 4 {
		t.Fatalf("committed prefix: %d records, stats %+v (want exactly the 4 synced records)", len(got), stats)
	}
	for i, r := range got {
		if r != rec(i+1) {
			t.Fatalf("record %d: got %+v want %+v", i, r, rec(i+1))
		}
	}
}

// TestAppendFsyncErrorAbortsSegmentAndHeals is the other abort flavor:
// the batch's bytes DO reach the file but its fsync fails. The batch
// is still reported failed (its durability is unknown), the segment is
// aborted, and the next append heals onto a fresh segment — but now
// the on-disk stream is contiguous across the abort, so replay's
// seq-continuity rule keeps going and recovers everything, including
// the unacknowledged-but-present batch. Losing an acknowledgement is
// not losing data.
func TestAppendFsyncErrorAbortsSegmentAndHeals(t *testing.T) {
	metrics.Reset()
	metrics.Enable()
	defer func() {
		metrics.Disable()
		metrics.Reset()
	}()

	fs := testFS()
	boom := errors.New("injected fsync failure")
	l := testOpen(t, fs, Options{Fsync: FsyncAlways, SegmentBytes: 1 << 20})
	if err := l.AppendBatch(recs(1, 4)); err != nil {
		t.Fatal(err)
	}
	fs.FailOp(simfs.OpSync, 1, boom)
	if err := l.AppendBatch(recs(5, 12)); err == nil || !errors.Is(err, boom) {
		t.Fatalf("fsync error not surfaced: %v", err)
	}
	if err := l.AppendBatch(recs(13, 16)); err != nil {
		t.Fatalf("append after aborted segment: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := metrics.Default().Snapshot().Counters["wal.segment.aborts"]; got != 1 {
		t.Fatalf("wal.segment.aborts = %d, want 1", got)
	}
	// The flushed-but-unsynced batch survived, and the healed segment
	// opens at exactly the next seq: no gap, so replay applies all 16.
	got, stats := collect(t, fs, "/wal", 0)
	if len(got) != 16 || stats.LastSeq != 16 {
		t.Fatalf("replay after fsync abort: %d records, stats %+v (want all 16)", len(got), stats)
	}
	for i, r := range got {
		if r != rec(i+1) {
			t.Fatalf("record %d: got %+v want %+v", i, r, rec(i+1))
		}
	}
}

// TestAppendBatchShortWriteReplaysCleanPrefix: a simfs ShortWrite
// fault tears the batch mid-record on its way to the file; replay must
// recover exactly the clean record prefix and flag the tear.
func TestAppendBatchShortWriteReplaysCleanPrefix(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncAlways, SegmentBytes: 1 << 20})
	fs.ShortWrite(1)
	err := l.AppendBatch(recs(1, 8))
	if err == nil {
		t.Fatal("short write did not surface an error")
	}
	// The absorbed prefix: half of header+8 records = 92 bytes = header
	// + 3 records + a torn 4th.
	got, stats := collect(t, fs, "/wal", 0)
	if !stats.Torn {
		t.Fatalf("torn batch not flagged: %+v", stats)
	}
	if len(got) != 3 || stats.LastSeq != 3 {
		t.Fatalf("short-write prefix: %d records, stats %+v (want exactly the 3 clean records)", len(got), stats)
	}
	for i, r := range got {
		if r != rec(i+1) {
			t.Fatalf("record %d: got %+v want %+v", i, r, rec(i+1))
		}
	}
}
