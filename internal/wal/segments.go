package wal

import (
	"encoding/binary"
	"fmt"
	"io"

	"dynalloc/internal/vfs"
)

// This file is the log's read-only streaming surface, built for the
// replication layer (internal/replica): segment enumeration for the
// primary's streamer, and a tail-follow reader that turns a live log
// directory into an ordered record stream without the streamer ever
// groveling the directory layout itself.

// SegmentInfo describes one on-disk segment.
type SegmentInfo struct {
	Path     string
	FirstSeq uint64 // from the header: the seq the segment was opened for
	Size     int64  // current size in bytes (header included)
}

// SegmentsFS enumerates the valid-headered segments of dir in
// first-seq order. Files the segment glob does not match — notably the
// `.dead.N` names a crash collision leaves behind — are excluded by
// construction, and files whose header is missing or torn are skipped
// (replay applies nothing from them either).
func SegmentsFS(fsys vfs.FS, dir string) ([]SegmentInfo, error) {
	paths, err := listSegments(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("wal: segments: %w", err)
	}
	out := make([]SegmentInfo, 0, len(paths))
	for _, p := range paths {
		first, ok := readSegmentFirstSeq(fsys, p)
		if !ok {
			continue
		}
		size, err := fsys.Stat(p)
		if err != nil {
			continue // raced with truncation: gone is just absent
		}
		out = append(out, SegmentInfo{Path: p, FirstSeq: first, Size: size})
	}
	return out, nil
}

// Segments enumerates this log's segments (SegmentsFS on its own
// directory and filesystem).
func (l *Log) Segments() ([]SegmentInfo, error) {
	return SegmentsFS(l.opts.FS, l.opts.Dir)
}

// Seal flushes, fsyncs (unless the policy is FsyncNever) and closes
// the current segment; the next append opens a fresh one. A follower
// mirrors the primary's rotation points by calling Seal on its local
// log when the stream announces a segment boundary.
func (l *Log) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if err := l.sealLocked(); err != nil {
		l.abortSegmentLocked()
		return err
	}
	return nil
}

// TailEvent classifies what TailReader.Next produced.
type TailEvent uint8

const (
	// TailCaughtUp: the reader is at the live end of the log; poll
	// again after a delay.
	TailCaughtUp TailEvent = iota
	// TailSegment: a segment boundary; TailResult.FirstSeq is its
	// header seq. Emitted before the segment's records.
	TailSegment
	// TailRecords: TailResult.Records holds 1..max decoded records in
	// file order (per-bin seq order; see the package comment on
	// cross-shard seq interleaving).
	TailRecords
	// TailGap: the next segment's header opens a true seq gap —
	// records were truncated or lost under the reader. The stream
	// cannot continue soundly; the caller must resync (snapshot).
	TailGap
)

// TailResult is one TailReader.Next outcome. Records aliases an
// internal buffer, valid until the next call.
type TailResult struct {
	Event    TailEvent
	FirstSeq uint64
	Records  []Record
}

// TailReader follows a live log directory as an ordered record stream:
// the exact segment walk of ReplayFS — including its seq-continuity
// rule at every segment boundary — but incremental, holding its
// position at the live tail and picking up appended bytes and new
// segments as they arrive. A record split across two flushes is held
// as a partial until the rest lands; a torn or corrupted record parks
// the reader until a successor segment proves continuity (the crash →
// heal-onto-fresh-segment layout) or opens a gap (TailGap).
//
// It is single-goroutine; the replication streamer owns one per
// subscription.
type TailReader struct {
	fsys  vfs.FS
	dir   string
	after uint64 // subscription floor: records with Seq <= after are skipped

	covered uint64 // max(after, highest valid seq seen) — the continuity watermark

	f       vfs.File
	curPath string
	hdrRead bool
	torn    bool // current segment ended in a torn/corrupt record; await successor

	buf  []byte // unconsumed stream bytes buf[r:w]; partial records persist here
	r, w int
	out  []Record // grow-only result buffer
}

// tailBufSize is the read-chunk size: large enough that catch-up
// streaming is not syscall-bound.
const tailBufSize = 1 << 16

// NewTailReaderFS returns a TailReader over dir that yields records
// with Seq > afterSeq.
func NewTailReaderFS(fsys vfs.FS, dir string, afterSeq uint64) *TailReader {
	return &TailReader{
		fsys:    fsys,
		dir:     dir,
		after:   afterSeq,
		covered: afterSeq,
		buf:     make([]byte, tailBufSize),
	}
}

// Covered returns the continuity watermark: the highest seq the reader
// has decoded (or the subscription floor if higher).
func (t *TailReader) Covered() uint64 { return t.covered }

// Close releases the open segment handle.
func (t *TailReader) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}

// Next advances the stream and returns the next event: a segment
// boundary, a batch of up to max records, caught-up (poll later), or a
// gap (resync required). Filesystem errors are returned as errors; the
// reader stays usable and the caller may retry.
func (t *TailReader) Next(max int) (TailResult, error) {
	if max <= 0 {
		max = 1
	}
	for {
		if t.f == nil || t.torn {
			res, err := t.advance()
			return res, err
		}
		if !t.hdrRead {
			res, done, err := t.readHeader()
			if err != nil || done {
				return res, err
			}
			continue
		}
		// Decode complete records out of the buffer, filling as needed.
		// Once a successor segment is observed the current one is sealed
		// (appends happen-before rotation), so one more drain round
		// closes the race where bytes landed between our EOF read and
		// the rotation.
		t.out = t.out[:0]
		sawSuccessor := false
		for len(t.out) < max {
			if t.w-t.r < RecordSize {
				n, err := t.fill()
				if err != nil {
					return TailResult{}, err
				}
				if n == 0 {
					if !sawSuccessor && t.successorExists() {
						sawSuccessor = true
						continue
					}
					break // live tail (or drained sealed segment)
				}
				continue
			}
			rec, ok := decodeRecord(t.buf[t.r : t.r+RecordSize])
			if !ok {
				// Torn/corrupt record: this segment contributes nothing
				// further. Park until a successor proves continuity.
				t.torn = true
				break
			}
			t.r += RecordSize
			if rec.Seq > t.covered {
				t.covered = rec.Seq
			}
			if rec.Seq > t.after {
				t.out = append(t.out, rec)
			}
		}
		if len(t.out) > 0 {
			return TailResult{Event: TailRecords, Records: t.out}, nil
		}
		if t.torn {
			continue // try to advance past the torn segment
		}
		// Fully drained with no records to hand out. A successor means
		// the primary rotated — move on; otherwise we are caught up.
		if !sawSuccessor {
			return TailResult{Event: TailCaughtUp}, nil
		}
		res, err := t.advance()
		return res, err
	}
}

// fill reads more bytes from the current segment handle into the
// buffer, compacting first. It returns the byte count (0 at the live
// EOF — the handle keeps its offset, so a later fill sees appended
// bytes).
func (t *TailReader) fill() (int, error) {
	if t.r > 0 {
		t.w = copy(t.buf, t.buf[t.r:t.w])
		t.r = 0
	}
	if t.w == len(t.buf) {
		return 0, nil // buffer full (cannot happen: tailBufSize >> RecordSize)
	}
	n, err := t.f.Read(t.buf[t.w:])
	t.w += n
	if err != nil && err != io.EOF {
		return n, fmt.Errorf("wal: tail read: %w", err)
	}
	return n, nil
}

// readHeader consumes the current segment's header. done=true means
// the caller should return res to its caller (caught up on a header
// still being written); done=false means the header was consumed and
// reading can proceed.
func (t *TailReader) readHeader() (res TailResult, done bool, err error) {
	sawSuccessor := false
	for t.w-t.r < segHeaderSize {
		n, err := t.fill()
		if err != nil {
			return TailResult{}, true, err
		}
		if n == 0 {
			// Header still being written. A successor segment means this
			// one is sealed; drain once more (the header bytes may have
			// raced our read), then treat a still-short header as torn
			// at birth and move past it.
			if !sawSuccessor && t.successorExists() {
				sawSuccessor = true
				continue
			}
			if sawSuccessor {
				t.torn = true
				return TailResult{}, false, nil
			}
			return TailResult{Event: TailCaughtUp}, true, nil
		}
	}
	hdr := t.buf[t.r : t.r+segHeaderSize]
	if [8]byte(hdr[:8]) != segMagic {
		t.torn = true // not a segment; contributes nothing
		return TailResult{}, false, nil
	}
	first := binary.LittleEndian.Uint64(hdr[8:16])
	if first > t.covered+1 {
		// The continuity rule of ReplayFS at every boundary: a header
		// opening past covered+1 means records were lost under us.
		return TailResult{Event: TailGap, FirstSeq: first}, true, nil
	}
	t.r += segHeaderSize
	t.hdrRead = true
	return TailResult{Event: TailSegment, FirstSeq: first}, true, nil
}

// successorExists reports whether a segment after curPath is on disk.
func (t *TailReader) successorExists() bool {
	paths, err := listSegments(t.fsys, t.dir)
	if err != nil {
		return false
	}
	for _, p := range paths {
		if p > t.curPath {
			return true
		}
	}
	return false
}

// advance moves to the next segment (the first path after curPath in
// name = first-seq order), skipping unusable segments (bad magic, torn
// at birth) when a successor proves there is more log to read. It
// returns TailSegment (header consumed, records follow), TailCaughtUp
// (nothing further yet — including parked on a torn segment whose
// successor has not appeared), or TailGap.
func (t *TailReader) advance() (TailResult, error) {
	for {
		paths, err := listSegments(t.fsys, t.dir)
		if err != nil {
			return TailResult{}, fmt.Errorf("wal: tail: %w", err)
		}
		var next string
		for _, p := range paths {
			if p > t.curPath {
				next = p
				break
			}
		}
		if next == "" {
			// Nothing past curPath yet. If we are parked on a torn
			// segment the primary may still heal onto a fresh one.
			return TailResult{Event: TailCaughtUp}, nil
		}
		f, err := t.fsys.Open(next)
		if err != nil {
			if vfs.IsNotExist(err) {
				return TailResult{Event: TailCaughtUp}, nil // raced with truncation
			}
			return TailResult{}, fmt.Errorf("wal: tail: %w", err)
		}
		if t.f != nil {
			t.f.Close()
		}
		t.f, t.curPath = f, next
		t.hdrRead, t.torn = false, false
		t.r, t.w = 0, 0
		res, done, err := t.readHeader()
		if err != nil {
			return TailResult{}, err
		}
		if !done {
			continue // unusable segment with a successor: keep moving
		}
		return res, nil // TailSegment, TailCaughtUp or TailGap
	}
}
