package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dynalloc/internal/simfs"
)

// testFS returns a fresh simulated filesystem; the pure-logic tests in
// this file run entirely in memory (deterministic, no disk fsyncs).
// TestRealDiskRoundTrip keeps the default vfs.OS path covered.
func testFS() *simfs.FS {
	fs := simfs.New()
	fs.MkdirAll("/wal")
	return fs
}

// testOpen returns a log on fs with tiny segments so rotation is
// exercised constantly.
func testOpen(t *testing.T, fs *simfs.FS, opts Options) *Log {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = "/wal"
	}
	if opts.FS == nil {
		opts.FS = fs
	}
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = segHeaderSize + 8*RecordSize
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func rec(i int) Record {
	op := OpAlloc
	switch i % 3 {
	case 1:
		op = OpFree
	case 2:
		op = OpCrash
	}
	return Record{Op: op, Bin: uint32(i % 97), K: int32(1 + i%5), Seq: uint64(i)}
}

func appendN(t *testing.T, l *Log, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func collect(t *testing.T, fs *simfs.FS, dir string, afterSeq uint64) ([]Record, ReplayStats) {
	t.Helper()
	var got []Record
	stats, err := ReplayFS(fs, dir, afterSeq, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, stats
}

func TestRoundTripAcrossSegments(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever})
	appendN(t, l, 1, 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := listSegments(fs, l.Dir())
	if len(segs) < 5 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	got, stats := collect(t, fs, l.Dir(), 0)
	if len(got) != 100 || stats.Records != 100 || stats.Torn {
		t.Fatalf("replay: %d records, stats %+v", len(got), stats)
	}
	for i, r := range got {
		if r != rec(i+1) {
			t.Fatalf("record %d: got %+v want %+v", i, r, rec(i+1))
		}
	}
	if stats.LastSeq != 100 {
		t.Fatalf("LastSeq = %d, want 100", stats.LastSeq)
	}
}

// TestRealDiskRoundTrip keeps the production vfs.OS implementation
// covered end to end (everything else in this file runs on simfs).
func TestRealDiskRoundTrip(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncNever, SegmentBytes: segHeaderSize + 8*RecordSize})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 30)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	stats, err := Replay(l.Dir(), 0, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil || len(got) != 30 || stats.Torn {
		t.Fatalf("real-disk replay: %d records, stats %+v, err %v", len(got), stats, err)
	}
}

func TestReplayAfterSeqFilters(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever})
	appendN(t, l, 1, 40)
	l.Close()
	got, stats := collect(t, fs, l.Dir(), 25)
	if len(got) != 15 || got[0].Seq != 26 {
		t.Fatalf("afterSeq filter: %d records, first %+v", len(got), got[0])
	}
	if stats.Records != 40 || stats.Applied != 15 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestTornTailRecoversToLastValidRecord(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l, 1, 50)
	l.Close()
	segs, _ := listSegments(fs, l.Dir())
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %d", len(segs))
	}
	// Tear the tail mid-record: truncate to 48 full records plus half a
	// record.
	full := int64(segHeaderSize + 48*RecordSize)
	if err := fs.Truncate(segs[0], full+RecordSize/2); err != nil {
		t.Fatal(err)
	}
	got, stats := collect(t, fs, l.Dir(), 0)
	if len(got) != 48 || !stats.Torn || stats.LastSeq != 48 {
		t.Fatalf("torn tail: %d records, stats %+v", len(got), stats)
	}
}

func TestCorruptedCRCStopsWithoutError(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever})
	appendN(t, l, 1, 60) // several 8-record segments
	l.Close()
	segs, _ := listSegments(fs, l.Dir())
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Flip one payload byte of the 3rd record in the 2nd segment:
	// records 1..10 stay valid, everything from record 11 on — including
	// the later, perfectly valid segments — must be ignored (a gap in
	// the stream would be unsound to apply).
	if err := fs.Corrupt(segs[1], segHeaderSize+2*RecordSize+3, 0xff); err != nil {
		t.Fatal(err)
	}
	got, stats := collect(t, fs, l.Dir(), 0)
	if !stats.Torn {
		t.Fatalf("corruption not reported: stats %+v", stats)
	}
	if len(got) != 10 || stats.LastSeq != 10 {
		t.Fatalf("recovered %d records (LastSeq %d), want exactly 10", len(got), stats.LastSeq)
	}
}

func TestBadSegmentHeaderStopsReplay(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever, SegmentBytes: segHeaderSize + 4*RecordSize})
	appendN(t, l, 1, 4) // exactly one sealed segment
	appendN(t, l, 5, 6) // second (open) segment
	l.Close()
	segs, _ := listSegments(fs, l.Dir())
	if len(segs) != 2 {
		t.Fatalf("want 2 segments, got %d", len(segs))
	}
	if err := fs.Corrupt(segs[1], 0, 0xff); err != nil { // break the magic
		t.Fatal(err)
	}
	got, stats := collect(t, fs, l.Dir(), 0)
	if len(got) != 4 || !stats.Torn {
		t.Fatalf("bad header: %d records, stats %+v", len(got), stats)
	}
}

func TestTruncateThrough(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever, SegmentBytes: segHeaderSize + 10*RecordSize})
	appendN(t, l, 1, 35) // 3 sealed segments (1-10, 11-20, 21-30) + open (31-35)
	if removed, err := l.TruncateThrough(20); err != nil || removed != 2 {
		t.Fatalf("TruncateThrough(20) = %d, %v; want 2", removed, err)
	}
	// The open segment's records are still buffered (never flushed), so
	// replay sees the sealed 21-30 then stops torn at the empty open file.
	got, stats := collect(t, fs, l.Dir(), 20)
	if len(got) != 10 {
		t.Fatalf("after truncation: %d records (want 21-30 from sealed seg), stats %+v", len(got), stats)
	}
	// The open segment is never touched, even when fully covered.
	if removed, err := l.TruncateThrough(1 << 62); err != nil || removed != 1 {
		t.Fatalf("TruncateThrough(max) = %d, %v; want 1 (sealed only)", removed, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay resumes from the coverage that justified the truncation
	// (restore passes the checkpoint seq), and the open segment's
	// records follow contiguously from it.
	got, _ = collect(t, fs, l.Dir(), 30)
	if len(got) != 5 || got[0].Seq != 31 {
		t.Fatalf("open segment survived truncation wrong: %d records", len(got))
	}
	// Replaying from scratch, though, must refuse the truncated head:
	// the head segment opens at seq 31, so without the covering
	// checkpoint the first 30 records are a gap, not a prefix.
	got, stats = collect(t, fs, l.Dir(), 0)
	if len(got) != 0 || stats.Segments != 0 {
		t.Fatalf("replay from 0 walked a truncated head: %d records, stats %+v", len(got), stats)
	}
}

// TestRemoveStaleFSPrunesDeadTimeline covers the stale-suffix hazard
// the chaos explorer surfaced: a dropped append opens a seq gap, the
// segments past it stay on disk, and the next incarnation re-issues
// the same seqs — so a later replay would interleave records from the
// dead timeline into the live one. RemoveStaleFS at restore time must
// prune the unreachable suffix, and the unlinks must survive a power
// cut (an unsynced directory resurrects them).
func TestRemoveStaleFSPrunesDeadTimeline(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncAlways, SegmentBytes: segHeaderSize + 4*RecordSize})
	appendN(t, l, 1, 6)

	// Drop record 7: the write fails, the segment aborts, and the log
	// heals records 8-10 onto a fresh segment that opens past the gap.
	fs.FailOp(simfs.OpWrite, 1, nil)
	if err := l.Append(rec(7)); err == nil {
		t.Fatal("append 7 succeeded through an injected write fault")
	}
	appendN(t, l, 8, 10)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Replay stops at the gap: 8-10 are unsound to apply.
	got, _ := collect(t, fs, "/wal", 0)
	if len(got) != 6 || got[len(got)-1].Seq != 6 {
		t.Fatalf("replay across the gap: %d records, last %+v", len(got), got[len(got)-1])
	}

	// Restore-time pruning removes the unreachable suffix, durably.
	removed, err := RemoveStaleFS(fs, "/wal", 6)
	if err != nil || removed == 0 {
		t.Fatalf("RemoveStaleFS = %d, %v; want > 0, nil", removed, err)
	}
	fs.PowerCut(nil) // the unlinks must not resurrect

	// The next incarnation re-issues seqs 7.. with different payloads —
	// the dead timeline's 8-10 must not shadow or interleave them.
	l = testOpen(t, fs, Options{Fsync: FsyncAlways, SegmentBytes: segHeaderSize + 4*RecordSize})
	for i := 7; i <= 9; i++ {
		r := Record{Op: OpAlloc, Bin: 77, K: 1, Seq: uint64(i)}
		if err := l.Append(r); err != nil {
			t.Fatalf("append new %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, stats := collect(t, fs, "/wal", 0)
	if len(got) != 9 {
		t.Fatalf("after heal: %d records, stats %+v", len(got), stats)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d; the timelines interleaved: %+v", i, r.Seq, got)
		}
	}
	for _, r := range got[6:] {
		if r.Bin != 77 {
			t.Fatalf("seq %d replayed from the dead timeline: %+v", r.Seq, r)
		}
	}
}

func TestReopenCollidingSegmentNameMovesItAside(t *testing.T) {
	fs := testFS()
	dir := "/wal"
	// A dead segment named for seq 1 left by a previous run (e.g. a
	// crash before its header hit the disk). Its bytes must survive the
	// collision — truncating would destroy the only forensic copy.
	path := filepath.Join(dir, segmentName(1))
	if err := fs.WriteFile(path, []byte("previous run's bytes")); err != nil {
		t.Fatal(err)
	}
	l := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever})
	appendN(t, l, 1, 3)
	l.Close()
	got, stats := collect(t, fs, dir, 0)
	if len(got) != 3 || stats.Torn {
		t.Fatalf("reopen over dead segment: %d records, stats %+v", len(got), stats)
	}
	moved, err := fs.ReadFile(path + ".dead.0")
	if err != nil || string(moved) != "previous run's bytes" {
		t.Fatalf("colliding segment not preserved aside: %q, %v", moved, err)
	}
	// A second collision picks the next free .dead name.
	l2 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever})
	appendN(t, l2, 1, 2)
	l2.Close()
	if _, err := fs.Stat(path + ".dead.1"); err != nil {
		t.Fatalf("second collision not moved to .dead.1: %v", err)
	}
}

// TestReplayContinuesPastTornSegmentWhenNoGap is the double-crash
// layout: run 1 leaves a torn tail, run 2 (after restore) opens its
// segment at the restored seq + 1, then crashes too. Replay must walk
// past the torn record into run 2's segment — its header proves no
// record is skipped — or every post-restart mutation would be lost.
func TestReplayContinuesPastTornSegmentWhenNoGap(t *testing.T) {
	fs := testFS()
	dir := "/wal"
	l1 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l1, 1, 10)
	l1.Close()
	segs, _ := listSegments(fs, dir)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	// Tear record 10 in half: run 1's valid prefix is 1..9.
	if err := fs.Truncate(segs[0], int64(segHeaderSize+9*RecordSize+RecordSize/2)); err != nil {
		t.Fatal(err)
	}
	got, stats := collect(t, fs, dir, 0)
	if len(got) != 9 || !stats.Torn {
		t.Fatalf("after first crash: %d records, stats %+v", len(got), stats)
	}
	// "Restart": a new log continues at the restored seq + 1 = 10.
	l2 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l2, 10, 25)
	l2.Close()
	got, stats = collect(t, fs, dir, 0)
	if len(got) != 25 || stats.LastSeq != 25 {
		t.Fatalf("after second crash: %d records (LastSeq %d), want all 25", len(got), stats.LastSeq)
	}
	if !stats.Torn || stats.Segments != 2 {
		t.Fatalf("stats %+v: want Torn (run 1's tail) and both segments visited", stats)
	}
	for i, r := range got[:9] {
		if r != rec(i+1) {
			t.Fatalf("record %d: got %+v want %+v", i, r, rec(i+1))
		}
	}
	for i, r := range got[9:] {
		if r != rec(i+10) {
			t.Fatalf("record %d: got %+v want %+v", i+9, r, rec(i+10))
		}
	}
}

// TestReplayStopsAtSeqGapAcrossSegments: when the segment after a torn
// one does NOT continue the record stream, applying it would skip
// records — replay must stop at the last reachable record instead.
func TestReplayStopsAtSeqGapAcrossSegments(t *testing.T) {
	fs := testFS()
	dir := "/wal"
	l1 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l1, 1, 10)
	l1.Close()
	segs, _ := listSegments(fs, dir)
	if err := fs.Truncate(segs[0], int64(segHeaderSize+9*RecordSize+RecordSize/2)); err != nil {
		t.Fatal(err)
	}
	// A later segment opening at seq 12: records 10 and 11 are missing.
	l2 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l2, 12, 20)
	l2.Close()
	got, stats := collect(t, fs, dir, 0)
	if len(got) != 9 || !stats.Torn || stats.LastSeq != 9 {
		t.Fatalf("gap not respected: %d records, stats %+v", len(got), stats)
	}
	// With a checkpoint covering seq 11, the same suffix is contiguous.
	got, stats = collect(t, fs, dir, 11)
	if len(got) != 9 || got[0].Seq != 12 || stats.LastSeq != 20 {
		t.Fatalf("checkpoint-covered gap: %d records, stats %+v", len(got), stats)
	}
}

// TestLegacyTornStopHookRestoresOldBehavior pins the mutation hook the
// crash-schedule explorer's self-check relies on: with the hook on,
// replay exhibits the original double-crash data-loss bug.
func TestLegacyTornStopHookRestoresOldBehavior(t *testing.T) {
	fs := testFS()
	dir := "/wal"
	l1 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l1, 1, 10)
	l1.Close()
	segs, _ := listSegments(fs, dir)
	fs.Truncate(segs[0], int64(segHeaderSize+9*RecordSize+RecordSize/2))
	l2 := testOpen(t, fs, Options{Dir: dir, Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l2, 10, 25)
	l2.Close()

	SetLegacyTornStopForTest(true)
	defer SetLegacyTornStopForTest(false)
	got, stats := collect(t, fs, dir, 0)
	if len(got) != 9 || stats.LastSeq != 9 {
		t.Fatalf("legacy hook inactive: %d records (LastSeq %d), old bug would stop at 9", len(got), stats.LastSeq)
	}
}

func TestFsyncAlwaysSyncsEveryAppend(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncAlways, SegmentBytes: 1 << 20})
	appendN(t, l, 1, 5)
	if got := fs.Ops(simfs.OpSync); got != 5 {
		t.Fatalf("FsyncAlways: %d syncs (want 5)", got)
	}
	l.Close()
}

func TestFsyncIntervalBatchesSyncs(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncInterval, FsyncInterval: time.Hour, SegmentBytes: 1 << 20})
	appendN(t, l, 1, 100)
	if got := fs.Ops(simfs.OpSync); got != 0 {
		t.Fatalf("interval=1h synced %d times during appends", got)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Ops(simfs.OpSync); got != 1 {
		t.Fatalf("explicit Sync: %d syncs, want 1", got)
	}
	l.Close()
}

func TestInjectedWriteErrorSurfaces(t *testing.T) {
	fs := testFS()
	boom := errors.New("injected write failure")
	l := testOpen(t, fs, Options{Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l, 1, 3)
	fs.FailOp(simfs.OpWrite, 1, boom)
	// The bufio layer may absorb a few records before flushing into the
	// failing file; an error must surface by the next Sync at the latest.
	var got error
	for i := 4; i <= 4096 && got == nil; i++ {
		got = l.Append(rec(i))
	}
	if got == nil {
		got = l.Sync()
	}
	if got == nil || !errors.Is(got, boom) {
		t.Fatalf("injected write error not surfaced: %v", got)
	}
}

func TestInjectedFsyncErrorSurfaces(t *testing.T) {
	fs := testFS()
	boom := errors.New("injected fsync failure")
	l := testOpen(t, fs, Options{Fsync: FsyncAlways, SegmentBytes: 1 << 20})
	appendN(t, l, 1, 2)
	fs.FailOp(simfs.OpSync, 1, boom)
	if err := l.Append(rec(3)); err == nil || !errors.Is(err, boom) {
		t.Fatalf("injected fsync error not surfaced: %v", err)
	}
}

// TestUnsyncedAppendsLostAtPowerCut pins what the fsync policies
// actually buy: under FsyncNever a power cut erases everything since
// the last rotation, under FsyncAlways nothing is ever lost.
func TestUnsyncedAppendsLostAtPowerCut(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever, SegmentBytes: 1 << 20})
	appendN(t, l, 1, 20)
	fs.PowerCut(nil)
	got, _ := collect(t, fs, "/wal", 0)
	if len(got) != 0 {
		t.Fatalf("FsyncNever survived %d records across a power cut", len(got))
	}

	fs2 := testFS()
	l2 := testOpen(t, fs2, Options{FS: fs2, Fsync: FsyncAlways, SegmentBytes: 1 << 20})
	appendN(t, l2, 1, 20)
	fs2.PowerCut(nil)
	got, stats := collect(t, fs2, "/wal", 0)
	if len(got) != 20 || stats.LastSeq != 20 {
		t.Fatalf("FsyncAlways lost records: %d survived, stats %+v", len(got), stats)
	}
}

func TestConcurrentAppendsAllSurvive(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever, SegmentBytes: segHeaderSize + 64*RecordSize})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	var seq struct {
		mu sync.Mutex
		n  uint64
	}
	next := func() uint64 {
		seq.mu.Lock()
		defer seq.mu.Unlock()
		seq.n++
		return seq.n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := Record{Op: OpAlloc, Bin: uint32(w), K: 1, Seq: next()}
				if err := l.Append(r); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	got, stats := collect(t, fs, l.Dir(), 0)
	if len(got) != workers*per || stats.Torn {
		t.Fatalf("concurrent appends: %d records, stats %+v", len(got), stats)
	}
	seen := map[uint64]bool{}
	for _, r := range got {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "ALWAYS": FsyncAlways,
		"interval": FsyncInterval, "": FsyncInterval,
		"never": FsyncNever, " Never ": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}

func TestRecordEncodingIsFixedWidth(t *testing.T) {
	var buf [RecordSize]byte
	r := Record{Op: OpCrash, Bin: 1<<32 - 1, K: -7, Seq: 1<<64 - 1}
	r.encode(buf[:])
	got, ok := decodeRecord(buf[:])
	if !ok || got != r {
		t.Fatalf("roundtrip: %+v ok=%v", got, ok)
	}
	// Any single bit flip must fail the CRC.
	for i := 0; i < RecordSize; i++ {
		buf[i] ^= 1
		if _, ok := decodeRecord(buf[:]); ok {
			t.Fatalf("bit flip at byte %d not detected", i)
		}
		buf[i] ^= 1
	}
}

func TestSegmentNameOrdering(t *testing.T) {
	a, b := segmentName(9), segmentName(10)
	if !(a < b) {
		t.Fatalf("segment names must sort by seq: %q vs %q", a, b)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], 42)
	if fmt.Sprintf("wal-%016x.seg", 42) != segmentName(42) {
		t.Fatal("segment naming drifted")
	}
}
