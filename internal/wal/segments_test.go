package wal

import (
	"testing"
)

// collectTail drains a TailReader until it reports caught-up, a gap,
// or an error, returning every delivered record and the segment
// firstSeqs announced along the way.
func collectTail(t *testing.T, tr *TailReader, max int) (recs []Record, segs []uint64, last TailResult) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		res, err := tr.Next(max)
		if err != nil {
			t.Fatalf("tail next: %v", err)
		}
		switch res.Event {
		case TailRecords:
			recs = append(recs, res.Records...)
		case TailSegment:
			segs = append(segs, res.FirstSeq)
		case TailCaughtUp, TailGap:
			return recs, segs, res
		}
	}
	t.Fatal("tail never caught up")
	return nil, nil, TailResult{}
}

// TestSegmentsExcludesDead is the regression test for the segment
// iterator's contract: `.dead.N` aside-renamed segments (the corpse a
// crash collision leaves behind) never appear in Segments, so the
// replication streamer can never ship a dead timeline.
func TestSegmentsExcludesDead(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever})
	appendN(t, l, 1, 20) // tiny segments: several rotations
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := SegmentsFS(fs, "/wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(segs))
	}

	// Manufacture the collision layout: rename the first segment aside
	// the way createSegmentFile does, then put a fresh segment at the
	// same name (as a healed restart would).
	dead := segs[0].Path + ".dead.0"
	if err := fs.Rename(segs[0].Path, dead); err != nil {
		t.Fatal(err)
	}

	after, err := SegmentsFS(fs, "/wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(segs)-1 {
		t.Fatalf("after aside-rename: %d segments, want %d", len(after), len(segs)-1)
	}
	for _, s := range after {
		if s.Path == dead || s.Path == segs[0].Path {
			t.Fatalf("dead segment %s leaked into Segments", s.Path)
		}
	}

	// The tail reader must not walk it either: with the head segment
	// dead, the remaining head opens past afterSeq+1 — a gap, never a
	// silent replay of the dead timeline.
	tr := NewTailReaderFS(fs, "/wal", 0)
	defer tr.Close()
	_, _, last := collectTail(t, tr, 8)
	if last.Event != TailGap {
		t.Fatalf("tail over dead head segment: got event %d, want TailGap", last.Event)
	}

	// Segment metadata sanity on the surviving files.
	for i, s := range after {
		if s.Size <= segHeaderSize {
			t.Fatalf("segment %d: size %d", i, s.Size)
		}
		if i > 0 && after[i-1].FirstSeq >= s.FirstSeq {
			t.Fatalf("segments out of order: %d then %d", after[i-1].FirstSeq, s.FirstSeq)
		}
	}
}

// TestTailReaderFollowsLiveLog drives the tail reader interleaved with
// a live writer: catch-up from the middle, segment boundaries
// announced in order, appended bytes picked up after a caught-up
// report, and seal-then-reopen rotation followed seamlessly.
func TestTailReaderFollowsLiveLog(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever})
	appendN(t, l, 1, 10)
	if err := l.Sync(); err != nil { // flush the open segment's bufio tail
		t.Fatal(err)
	}

	const after = 4
	tr := NewTailReaderFS(fs, "/wal", after)
	defer tr.Close()

	recs, segs, last := collectTail(t, tr, 3)
	if last.Event != TailCaughtUp {
		t.Fatalf("want caught up, got %d", last.Event)
	}
	if len(segs) == 0 || segs[0] != 1 {
		t.Fatalf("segment announcements %v, want first = 1", segs)
	}
	for i, r := range recs {
		if want := uint64(after + 1 + i); r.Seq != want {
			t.Fatalf("record %d: seq %d, want %d", i, r.Seq, want)
		}
	}
	if want := uint64(10 - after); uint64(len(recs)) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}

	// The writer keeps going while the reader is parked at the tail;
	// Seal forces a rotation mid-stream.
	appendN(t, l, 11, 13)
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 14, 30)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	recs2, _, last2 := collectTail(t, tr, 4)
	if last2.Event != TailCaughtUp {
		t.Fatalf("want caught up after growth, got %d", last2.Event)
	}
	for i, r := range recs2 {
		if want := uint64(11 + i); r.Seq != want {
			t.Fatalf("post-growth record %d: seq %d, want %d", i, r.Seq, want)
		}
	}
	if len(recs2) != 20 {
		t.Fatalf("got %d post-growth records, want 20", len(recs2))
	}
	if got := tr.Covered(); got != 30 {
		t.Fatalf("covered = %d, want 30", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTailReaderTruncationGap pins the resync trigger: when the
// primary truncates segments the subscriber still needs, the tail
// reports a gap instead of silently skipping records.
func TestTailReaderTruncationGap(t *testing.T) {
	fs := testFS()
	l := testOpen(t, fs, Options{Fsync: FsyncNever})
	appendN(t, l, 1, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Drop everything through seq 24 (all fully-covered sealed
	// segments), as checkpoint maintenance would.
	l2 := testOpen(t, fs, Options{Fsync: FsyncNever})
	if _, err := l2.TruncateThrough(24); err != nil {
		t.Fatal(err)
	}

	// A fresh subscriber from 0 can no longer be served from the log.
	tr := NewTailReaderFS(fs, "/wal", 0)
	defer tr.Close()
	_, _, last := collectTail(t, tr, 8)
	if last.Event != TailGap {
		t.Fatalf("want gap after truncation, got %d", last.Event)
	}

	// One already past the truncation point streams fine.
	tr2 := NewTailReaderFS(fs, "/wal", 24)
	defer tr2.Close()
	recs, _, last2 := collectTail(t, tr2, 8)
	if last2.Event != TailCaughtUp {
		t.Fatalf("want caught up, got %d", last2.Event)
	}
	if len(recs) != 16 || recs[0].Seq != 25 || recs[len(recs)-1].Seq != 40 {
		t.Fatalf("got %d records [%d..%d], want 16 [25..40]", len(recs), recs[0].Seq, recs[len(recs)-1].Seq)
	}
}

// TestTailReaderPartialRecord feeds the reader a record split across
// two writes (the shape a bufio flush boundary produces) and checks it
// holds the partial until the rest arrives.
func TestTailReaderPartialRecord(t *testing.T) {
	fs := testFS()
	fs.MkdirAll("/t")
	f, err := fs.Create("/t/" + segmentName(1))
	if err != nil {
		t.Fatal(err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic[:])
	hdr[8] = 1 // firstSeq = 1, little endian
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	var buf [RecordSize]byte
	Record{Op: OpAlloc, Bin: 3, K: 1, Seq: 1}.encode(buf[:])

	tr := NewTailReaderFS(fs, "/t", 0)
	defer tr.Close()

	// First half of the record: reader must report caught-up, not torn.
	if _, err := f.Write(buf[:10]); err != nil {
		t.Fatal(err)
	}
	recs, _, last := collectTail(t, tr, 4)
	if last.Event != TailCaughtUp || len(recs) != 0 {
		t.Fatalf("half record: event %d with %d records", last.Event, len(recs))
	}

	// Second half: the record completes.
	if _, err := f.Write(buf[10:]); err != nil {
		t.Fatal(err)
	}
	recs, _, last = collectTail(t, tr, 4)
	if last.Event != TailCaughtUp || len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("completed record: event %d, records %v", last.Event, recs)
	}
	f.Close()
}
