// Package table renders aligned plain-text tables and CSV for the
// benchmark harness. Every experiment produces one Table whose rows are
// the series the corresponding theorem predicts; cmd/recoverysim prints
// them, and EXPERIMENTS.md quotes them.
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// New returns an empty table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; each cell is rendered with %v. It panics if the
// number of cells does not match the header.
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("table: row has %d cells, header has %d", len(cells), len(t.Columns)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs != 0 && (abs >= 1e6 || abs < 1e-3):
		return fmt.Sprintf("%.3g", v)
	case abs >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	rules := make([]string, len(t.Columns))
	for i, wd := range widths {
		rules[i] = strings.Repeat("-", wd)
	}
	line(rules)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (header + rows; title
// and notes are omitted). Cells containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvEscape(c)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
