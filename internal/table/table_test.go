package table

import (
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := New("demo", "n", "time")
	tb.AddRow(8, 12.5)
	tb.AddRow(128, 3.25)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// Header and separator must align with the widest cell.
	if !strings.HasPrefix(lines[1], "n ") {
		t.Fatalf("bad header line %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("bad rule line %q", lines[2])
	}
	if !strings.Contains(out, "128") || !strings.Contains(out, "3.250") {
		t.Fatalf("missing cells:\n%s", out)
	}
}

func TestAddRowPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("x", "a", "b").AddRow(1)
}

func TestFloatFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0.000"},
		{3.14159, "3.142"},
		{123.456, "123.5"},
		{1e7, "1e+07"},
		{0.0001, "0.0001"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNotes(t *testing.T) {
	tb := New("t", "c")
	tb.AddRow("x")
	tb.AddNote("fit: %s", "n ln n")
	if !strings.Contains(tb.String(), "note: fit: n ln n") {
		t.Fatalf("missing note:\n%s", tb.String())
	}
}

func TestCSV(t *testing.T) {
	tb := New("t", "a", "b")
	tb.AddRow("x,y", `q"u`)
	var b strings.Builder
	tb.CSV(&b)
	want := "a,b\n\"x,y\",\"q\"\"u\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestEmptyTitle(t *testing.T) {
	tb := New("", "a")
	tb.AddRow(1)
	if strings.Contains(tb.String(), "==") {
		t.Fatal("empty title should not render a banner")
	}
}
