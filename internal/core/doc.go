// Package core implements the paper's contribution: the path-coupling
// framework for bounding the recovery time of dynamic allocation
// processes.
//
// The pipeline mirrors the paper exactly:
//
//  1. A dynamic allocation process is an ergodic Markov chain on
//     normalized load vectors (internal/process, internal/loadvec); its
//     recovery time — the number of steps needed to get from an
//     arbitrary state to a typical one w.h.p. — is the chain's mixing
//     time (Section 2.1).
//
//  2. The Path Coupling Lemma of Bubley and Dyer (Lemma 3.1) turns a
//     one-step contraction estimate on ADJACENT state pairs into a
//     mixing-time bound. Bounds.go provides both cases of the lemma and
//     the paper's closed-form results: Theorem 1 (Scenario A,
//     tau(eps) = ceil(m ln(m/eps))), Claim 5.3 (Scenario B,
//     O(n m^2 ln(1/eps))), Corollary 6.4 and Theorem 2 (edge
//     orientation, O(n^3 (ln n + ln(1/eps))) and O(n^2 ln^2 n)), plus
//     the prior-work baselines they improve on (O(n^3) by Azar et al.,
//     O(n^5) by Ajtai et al.).
//
//  3. The couplings themselves: Section 4's coupling for Scenario A
//     (remove-a-random-ball, where the removal halves are matched with
//     the 1/v_lambda trick and the insertion halves share a sample of a
//     right-oriented rule per Lemma 3.3) and Section 5's coupling for
//     Scenario B (uniform nonempty bin, with the s1 = s2 / s1 != s2 case
//     split). GammaStepA/GammaStepB execute one exact paper-coupling
//     step on a distance-1 pair so experiments can measure the
//     contraction factors the lemmas assert; CoupledAlloc extends the
//     shared-randomness idea to arbitrary pairs so experiments can
//     measure full coalescence times, which upper-bound mixing times by
//     the coupling inequality.
//
// The edge-orientation coupling of Section 6 lives with its data
// structures in internal/edgeorient; this package's estimators accept it
// through the Coupling interface.
package core
