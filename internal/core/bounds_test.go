package core

import (
	"math"
	"testing"
)

func TestPathCouplingContraction(t *testing.T) {
	// D = 10, beta = 0.9, eps = 0.01: ln(1000)/0.1 ~ 69.07 -> 70.
	got := PathCouplingContraction(10, 0.9, 0.01)
	if got != math.Ceil(math.Log(1000)/0.1) {
		t.Fatalf("bound = %v", got)
	}
	// Stronger contraction gives a smaller bound.
	if PathCouplingContraction(10, 0.5, 0.01) >= got {
		t.Fatal("bound not monotone in beta")
	}
}

func TestPathCouplingVariance(t *testing.T) {
	got := PathCouplingVariance(10, 0.1, 0.25)
	want := math.Ceil(math.E*100/0.1) * math.Ceil(math.Log(4))
	if got != want {
		t.Fatalf("bound = %v, want %v", got, want)
	}
	if PathCouplingVariance(10, 0.5, 0.25) >= got {
		t.Fatal("bound not monotone in alpha")
	}
}

func TestBoundPanics(t *testing.T) {
	for _, f := range []func(){
		func() { PathCouplingContraction(10, 1, 0.1) },
		func() { PathCouplingContraction(10, -0.1, 0.1) },
		func() { PathCouplingContraction(0.5, 0.9, 0.1) },
		func() { PathCouplingContraction(10, 0.9, 0) },
		func() { PathCouplingVariance(10, 0, 0.1) },
		func() { PathCouplingVariance(10, 2, 0.1) },
		func() { Theorem1Bound(0, 0.1) },
		func() { Claim53Bound(0, 1, 0.1) },
		func() { Corollary64Bound(1, 0.1) },
		func() { Theorem2Bound(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTheorem1BoundValues(t *testing.T) {
	// m = 100, eps = 1/4: 100 * ln(400) ~ 599.15 -> 600.
	got := Theorem1Bound(100, 0.25)
	if got != 600 {
		t.Fatalf("Theorem1Bound = %v, want 600", got)
	}
	// Grows like m ln m: ratio between m and 2m is a bit over 2.
	r := Theorem1Bound(2000, 0.25) / Theorem1Bound(1000, 0.25)
	if r < 2 || r > 2.5 {
		t.Fatalf("Theorem 1 growth ratio = %v", r)
	}
}

func TestClaim53Shape(t *testing.T) {
	// O(n m^2): doubling n with m fixed doubles the bound (within
	// ceiling slack); doubling m quadruples it.
	b := Claim53Bound(100, 100, 0.25)
	bn := Claim53Bound(200, 100, 0.25)
	bm := Claim53Bound(100, 200, 0.25)
	if r := bn / b; r < 1.9 || r > 2.1 {
		t.Fatalf("n-scaling ratio = %v", r)
	}
	if r := bm / b; r < 3.9 || r > 4.1 {
		t.Fatalf("m-scaling ratio = %v", r)
	}
}

// TestHeadlineComparisons encodes the paper's improvement claims: for
// m = n the Theorem 1 bound is far below Azar et al.'s O(n^3), and the
// Theorem 2 shape is far below Ajtai et al.'s O(n^5).
func TestHeadlineComparisons(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		if Theorem1Bound(n, 0.25) >= AzarRecoveryBound(n) {
			t.Fatalf("n=%d: Theorem 1 bound does not beat the O(n^3) baseline", n)
		}
		if Theorem2Bound(n, 1) >= AjtaiRecoveryBound(n) {
			t.Fatalf("n=%d: Theorem 2 shape does not beat the O(n^5) baseline", n)
		}
		if Corollary64Bound(n, 0.25) >= AjtaiRecoveryBound(n) {
			t.Fatalf("n=%d: Corollary 6.4 does not beat the O(n^5) baseline", n)
		}
	}
}

func TestCorollary64Shape(t *testing.T) {
	// O(n^3 ln n): ratio between n and 2n is about 8 (times log factor).
	r := Corollary64Bound(512, 0.25) / Corollary64Bound(256, 0.25)
	if r < 7.5 || r > 10 {
		t.Fatalf("Corollary 6.4 growth ratio = %v", r)
	}
}

func TestLowerBounds(t *testing.T) {
	if ScenarioALowerBound(1) != 1 {
		t.Fatal("degenerate lower bound")
	}
	if got := ScenarioALowerBound(100); math.Abs(got-100*math.Log(100)) > 1e-9 {
		t.Fatalf("ScenarioALowerBound = %v", got)
	}
	nm, m2 := ScenarioBLowerBounds(10, 20)
	if nm != 200 || m2 != 400 {
		t.Fatalf("ScenarioBLowerBounds = %v, %v", nm, m2)
	}
	if EdgeOrientLowerBound(10) != 100 {
		t.Fatal("EdgeOrientLowerBound wrong")
	}
	// Consistency: upper bounds dominate the corresponding lower bounds.
	for _, n := range []int{16, 64, 256} {
		if Theorem1Bound(n, 0.25) < ScenarioALowerBound(n) {
			t.Fatalf("n=%d: Theorem 1 upper bound below its lower bound", n)
		}
		if Theorem2Bound(n, 1) < EdgeOrientLowerBound(n) {
			t.Fatalf("n=%d: Theorem 2 shape below Omega(n^2)", n)
		}
	}
}
