package core

import (
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/stats"
)

func TestPositionByBallIndex(t *testing.T) {
	v := loadvec.Vector{3, 2, 0, 1}
	// Not normalized on purpose? No — must be; use a normalized one.
	v = loadvec.Vector{3, 2, 1, 0}
	want := []int{0, 0, 0, 1, 1, 2}
	for ball, pos := range want {
		if got := positionByBallIndex(v, ball); got != pos {
			t.Fatalf("ball %d -> %d, want %d", ball, got, pos)
		}
	}
}

func TestCoupledAllocInvariants(t *testing.T) {
	r := rng.New(1)
	for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
		c := NewCoupledAlloc(sc, rules.NewABKU(2), loadvec.OneTower(6, 12), loadvec.Balanced(6, 12), r)
		for i := 0; i < 3000; i++ {
			c.Step()
			if c.X.Total() != 12 || c.Y.Total() != 12 {
				t.Fatalf("scenario %v: totals drifted", sc)
			}
			if !c.X.IsNormalized() || !c.Y.IsNormalized() {
				t.Fatalf("scenario %v: states denormalized", sc)
			}
		}
	}
}

// TestInsertionNeverIncreasesL1 is Lemma 3.3 on the live coupling: track
// the L1 distance across insertion halves only. We check the weaker
// full-step property on Scenario A distance: Delta is non-increasing in
// expectation (statistically).
func TestCoupledDistanceShrinks(t *testing.T) {
	r := rng.New(2)
	c := NewCoupledAlloc(process.ScenarioA, rules.NewABKU(2), loadvec.OneTower(8, 16), loadvec.Balanced(8, 16), r)
	start := c.Distance()
	for i := 0; i < 20000 && !c.Coalesced(); i++ {
		c.Step()
	}
	if !c.Coalesced() && c.Distance() >= start {
		t.Fatalf("distance did not shrink: %d -> %d", start, c.Distance())
	}
}

func TestCoupledCoalescesAndStays(t *testing.T) {
	r := rng.New(3)
	for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
		c := NewCoupledAlloc(sc, rules.NewABKU(2), loadvec.OneTower(6, 6), loadvec.Balanced(6, 6), r)
		steps, ok := CoalescenceTime(c, 2_000_000)
		if !ok {
			t.Fatalf("scenario %v: no coalescence in 2M steps (distance %d)", sc, c.Distance())
		}
		if steps <= 0 {
			t.Fatalf("scenario %v: zero coalescence time from distinct states", sc)
		}
		for i := 0; i < 1000; i++ {
			c.Step()
			if !c.Coalesced() {
				t.Fatalf("scenario %v: coupling diverged after coalescing", sc)
			}
		}
	}
}

// TestCoupledMarginalFaithful: each copy of CoupledAlloc, viewed alone,
// must step exactly like the free process.
func TestCoupledMarginalFaithful(t *testing.T) {
	x0 := loadvec.Vector{3, 1, 1, 1}
	y0 := loadvec.Vector{2, 2, 2, 0}
	const trials = 200000
	for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
		rc := rng.New(4)
		coupled := make(map[string]int)
		for i := 0; i < trials; i++ {
			c := NewCoupledAlloc(sc, rules.NewABKU(2), x0, y0, rc)
			c.Step()
			coupled[c.Y.Key()]++
		}
		rf := rng.New(5)
		free := make(map[string]int)
		for i := 0; i < trials; i++ {
			p := process.New(sc, rules.NewABKU(2), y0, rf)
			p.Step()
			free[p.State().Key()]++
		}
		if d := stats.TVDistanceCounts(coupled, free); d > 0.01 {
			t.Fatalf("scenario %v: coupled Y marginal off by TV %.4f", sc, d)
		}
	}
}

// TestGammaStepAMarginals: both halves of the Section 4 coupling must be
// faithful one-step copies of I_A.
func TestGammaStepAMarginals(t *testing.T) {
	r := rng.New(6)
	u := loadvec.Vector{2, 2, 1, 1}
	v := u.Clone()
	v.Remove(3)
	v.Add(0) // v = u + e_top - e_bottom
	if v.Delta(u) != 1 {
		t.Fatal("setup: pair not at distance 1")
	}
	const trials = 300000
	rule := rules.NewABKU(2)
	gotV := make(map[string]int)
	gotU := make(map[string]int)
	for i := 0; i < trials; i++ {
		x, y := GammaStepA(rule, v, u, r)
		gotV[x.Key()]++
		gotU[y.Key()]++
	}
	rf := rng.New(7)
	freeV := make(map[string]int)
	freeU := make(map[string]int)
	for i := 0; i < trials; i++ {
		p := process.New(process.ScenarioA, rule, v, rf)
		p.Step()
		freeV[p.State().Key()]++
		q := process.New(process.ScenarioA, rule, u, rf)
		q.Step()
		freeU[q.State().Key()]++
	}
	if d := stats.TVDistanceCounts(gotV, freeV); d > 0.01 {
		t.Fatalf("upper marginal off by TV %.4f", d)
	}
	if d := stats.TVDistanceCounts(gotU, freeU); d > 0.01 {
		t.Fatalf("lower marginal off by TV %.4f", d)
	}
}

// TestGammaStepBMarginals: same for the Section 5 coupling, including
// the s1 != s2 branch (the pair below has supports of different sizes).
func TestGammaStepBMarginals(t *testing.T) {
	r := rng.New(8)
	u := loadvec.Vector{2, 1, 1}
	v := loadvec.Vector{3, 1, 0} // v = u + e_0 - e_2; s1=2, s2=3
	if v.Delta(u) != 1 {
		t.Fatal("setup: pair not at distance 1")
	}
	const trials = 300000
	rule := rules.NewABKU(2)
	gotV := make(map[string]int)
	gotU := make(map[string]int)
	for i := 0; i < trials; i++ {
		x, y := GammaStepB(rule, v, u, r)
		gotV[x.Key()]++
		gotU[y.Key()]++
	}
	rf := rng.New(9)
	freeV := make(map[string]int)
	freeU := make(map[string]int)
	for i := 0; i < trials; i++ {
		p := process.New(process.ScenarioB, rule, v, rf)
		p.Step()
		freeV[p.State().Key()]++
		q := process.New(process.ScenarioB, rule, u, rf)
		q.Step()
		freeU[q.State().Key()]++
	}
	if d := stats.TVDistanceCounts(gotV, freeV); d > 0.01 {
		t.Fatalf("upper marginal off by TV %.4f", d)
	}
	if d := stats.TVDistanceCounts(gotU, freeU); d > 0.01 {
		t.Fatalf("lower marginal off by TV %.4f", d)
	}
}

// TestGammaStepBEqualSupports exercises the s1 == s2 branch marginals.
func TestGammaStepBEqualSupports(t *testing.T) {
	r := rng.New(10)
	u := loadvec.Vector{3, 2, 1}
	v := loadvec.Vector{4, 1, 1} // +1 at 0, -1 at 1; both supports = 3
	if v.Delta(u) != 1 {
		t.Fatal("setup: not distance 1")
	}
	const trials = 200000
	rule := rules.NewUniform()
	gotU := make(map[string]int)
	for i := 0; i < trials; i++ {
		_, y := GammaStepB(rule, v, u, r)
		gotU[y.Key()]++
	}
	rf := rng.New(11)
	freeU := make(map[string]int)
	for i := 0; i < trials; i++ {
		q := process.New(process.ScenarioB, rule, u, rf)
		q.Step()
		freeU[q.State().Key()]++
	}
	if d := stats.TVDistanceCounts(gotU, freeU); d > 0.01 {
		t.Fatalf("lower marginal off by TV %.4f", d)
	}
}

// TestLemma41NeverGrows: the Section 4 coupling never takes a Gamma pair
// beyond distance 1 (Lemma 4.1: Delta' <= 1, and i != j coalesces).
func TestLemma41NeverGrows(t *testing.T) {
	r := rng.New(12)
	rule := rules.NewABKU(2)
	for trial := 0; trial < 20000; trial++ {
		v, u := loadvec.AdjacentPair(3+r.Intn(5), 2+r.Intn(12), r)
		x, y := GammaStepA(rule, v, u, r)
		if d := x.Delta(y); d > 1 {
			t.Fatalf("Delta' = %d > 1 from %v, %v -> %v, %v", d, v, u, x, y)
		}
	}
}

// TestCorollary42Contraction: E[Delta'] <= 1 - 1/m with coalescence
// probability about 1/m.
func TestCorollary42Contraction(t *testing.T) {
	r := rng.New(13)
	const n, m, trials = 6, 12, 200000
	est := MeasureContractionA(rules.NewABKU(2), n, m, trials, r)
	bound := 1 - 1.0/float64(m)
	// Allow 3-sigma statistical slack above the bound.
	slack := 3 * 0.3 / 141.0 // ~3*sd/sqrt(trials), sd < 0.3
	if est.MeanDelta > bound+slack {
		t.Fatalf("E[Delta'] = %.5f exceeds Corollary 4.2 bound %.5f", est.MeanDelta, bound)
	}
	if est.Coalesced == 0 {
		t.Fatal("coupling never coalesced on Gamma pairs")
	}
	if est.MaxDelta > 1 {
		t.Fatalf("MaxDelta = %d", est.MaxDelta)
	}
}

// TestClaim51Contraction: Scenario B coupling keeps E[Delta'] <= 1 and
// moves the distance with probability at least about 1/(2n).
func TestClaim51Contraction(t *testing.T) {
	r := rng.New(14)
	const n, m, trials = 6, 12, 200000
	est := MeasureContractionB(rules.NewABKU(2), n, m, trials, r)
	if est.MeanDelta > 1+0.01 {
		t.Fatalf("E[Delta'] = %.5f > 1", est.MeanDelta)
	}
	if est.AlphaFreq < 1/(2.0*float64(n))-0.02 {
		t.Fatalf("alpha = %.5f below 1/(2n) = %.5f", est.AlphaFreq, 1/(2.0*float64(n)))
	}
	if est.MaxDelta > 2 {
		t.Fatalf("Scenario B coupling produced Delta' = %d > 2", est.MaxDelta)
	}
}

func TestFindGammaOrientation(t *testing.T) {
	u := loadvec.Vector{3, 1}
	v := loadvec.Vector{2, 2}
	upper, lower, lambda, delta := findGammaOrientation(v, u)
	// u = v + e_0 - e_1, so u is the upper one.
	if !upper.Equal(u) || !lower.Equal(v) || lambda != 0 || delta != 1 {
		t.Fatalf("orientation = %v %v %d %d", upper, lower, lambda, delta)
	}
	// And with arguments swapped the answer is the same.
	upper2, lower2, l2, d2 := findGammaOrientation(u, v)
	if !upper2.Equal(upper) || !lower2.Equal(lower) || l2 != lambda || d2 != delta {
		t.Fatal("orientation not symmetric in argument order")
	}
}

func TestFindGammaOrientationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	findGammaOrientation(loadvec.Vector{2, 0}, loadvec.Vector{0, 2})
}

func TestNewCoupledAllocPanics(t *testing.T) {
	for _, f := range []func(){
		func() {
			NewCoupledAlloc(process.ScenarioA, rules.NewUniform(), loadvec.Vector{1, 0}, loadvec.Vector{1, 1}, rng.New(1))
		},
		func() {
			NewCoupledAlloc(process.ScenarioA, rules.NewUniform(), loadvec.Vector{0, 0}, loadvec.Vector{0, 0}, rng.New(1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
