package core

import (
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// TestEstimateCoalescenceDeterministic: the parallel estimator must
// produce bit-identical aggregates across repeated runs (per-trial
// streams + in-order reduction).
func TestEstimateCoalescenceDeterministic(t *testing.T) {
	run := func() CoalescenceResult {
		return EstimateCoalescence(func(r *rng.RNG) Coupling {
			v, u := loadvec.ExtremePair(8, 8)
			return NewCoupledAlloc(process.ScenarioA, rules.NewABKU(2), v, u, r)
		}, 99, 24, 1_000_000)
	}
	a := run()
	b := run()
	if a.Times.Mean() != b.Times.Mean() || a.Times.Var() != b.Times.Var() ||
		a.Times.N() != b.Times.N() || a.Timeouts != b.Timeouts {
		t.Fatalf("parallel estimator not deterministic: %+v vs %+v", a, b)
	}
}

func TestMeasureRecoveryDeterministic(t *testing.T) {
	spec := RecoverySpec{
		Scenario:  process.ScenarioA,
		Rule:      func() rules.Rule { return rules.NewABKU(2) },
		Initial:   func() loadvec.Vector { return loadvec.OneTower(8, 8) },
		GapTarget: 1,
		MaxSteps:  1_000_000,
	}
	a := MeasureRecovery(spec, 7, 16)
	b := MeasureRecovery(spec, 7, 16)
	if a.Times.Mean() != b.Times.Mean() || a.Times.N() != b.Times.N() {
		t.Fatal("recovery estimator not deterministic")
	}
	// A different seed gives a different (but valid) answer.
	c := MeasureRecovery(spec, 8, 16)
	if c.Times.N() != 16 {
		t.Fatalf("trials lost: %d", c.Times.N())
	}
}

// TestQuantileCoalescenceMonotone: higher quantiles are larger.
func TestQuantileCoalescenceMonotone(t *testing.T) {
	factory := func(r *rng.RNG) Coupling {
		v, u := loadvec.ExtremePair(8, 8)
		return NewCoupledAlloc(process.ScenarioA, rules.NewABKU(2), v, u, r)
	}
	q25 := QuantileCoalescence(factory, 11, 40, 1_000_000, 0.25)
	q75 := QuantileCoalescence(factory, 11, 40, 1_000_000, 0.75)
	if q25 > q75 {
		t.Fatalf("q25 %v > q75 %v", q25, q75)
	}
}
