package core

import (
	"time"

	"dynalloc/internal/metrics"
	"dynalloc/internal/par"
	"dynalloc/internal/rng"
	"dynalloc/internal/stats"
)

// Coupling is a pair of faithfully-coupled copies of one Markov chain.
// Implementations: CoupledAlloc (Scenarios A/B, this package) and
// edgeorient.Coupled (Section 6).
type Coupling interface {
	// Step advances both copies by one coupled transition.
	Step()
	// Coalesced reports whether the copies coincide. Once true it must
	// stay true: couplings here keep coalesced copies identical.
	Coalesced() bool
	// Distance returns the current distance between the copies in the
	// coupling's working metric (used for progress diagnostics).
	Distance() int
}

// CoalescenceTime steps a coupling until the copies coincide, returning
// the number of steps taken, or (maxSteps, false) on timeout. By the
// coupling inequality, the distribution of this time upper-bounds the
// mixing time: Pr[T_coal > t] >= max-TV distance at time t.
func CoalescenceTime(c Coupling, maxSteps int64) (int64, bool) {
	if c.Coalesced() {
		return 0, true
	}
	for t := int64(1); t <= maxSteps; t++ {
		c.Step()
		if c.Coalesced() {
			return t, true
		}
	}
	return maxSteps, false
}

// CoalescenceResult aggregates repeated coalescence measurements.
type CoalescenceResult struct {
	Times    stats.Summary // coalescence times of successful trials
	Timeouts int           // trials that hit maxSteps
}

// EstimateCoalescence runs `trials` independent couplings produced by
// factory (which receives a derived RNG stream per trial) and aggregates
// their coalescence times. Trials run on all CPUs; because each trial's
// randomness is a pure function of (seed, trial) and results are reduced
// in trial order, the aggregate is identical to a sequential run.
func EstimateCoalescence(factory func(r *rng.RNG) Coupling, seed uint64, trials int, maxSteps int64) CoalescenceResult {
	defer metrics.Span("core.coalescence.stage_ns")()
	type outcome struct {
		t  int64
		ok bool
	}
	outs := par.Map(trials, 0, func(trial int) outcome {
		start := time.Now()
		c := factory(rng.NewStream(seed, uint64(trial)))
		t, ok := CoalescenceTime(c, maxSteps)
		metrics.ObserveHistogram("core.coalescence.trial_ns", time.Since(start).Nanoseconds())
		metrics.AddCounter("core.coalescence.steps", t)
		return outcome{t, ok}
	})
	var res CoalescenceResult
	for _, o := range outs {
		if !o.ok {
			res.Timeouts++
			continue
		}
		res.Times.AddInt(int(o.t))
	}
	return res
}

// QuantileCoalescence runs trials in parallel and returns the q-th
// quantile of the coalescence times (all trials must coalesce; it panics
// on timeout so a too-small horizon is loud, not silently biased).
func QuantileCoalescence(factory func(r *rng.RNG) Coupling, seed uint64, trials int, maxSteps int64, q float64) float64 {
	times := par.Map(trials, 0, func(trial int) float64 {
		c := factory(rng.NewStream(seed, uint64(trial)))
		t, ok := CoalescenceTime(c, maxSteps)
		if !ok {
			panic("core: coalescence timed out; raise maxSteps")
		}
		return float64(t)
	})
	return stats.Quantile(times, q)
}
