package core

import (
	"dynalloc/internal/loadvec"
	"dynalloc/internal/par"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// MeasureDelayedContraction is the multi-step ("delayed") view of path
// coupling, in the spirit of the delayed path coupling of Czumaj,
// Kanarek, Kutylowski and Lorys (reference [10] of the paper): instead
// of demanding contraction in one step, run the coupling for k steps and
// measure the compounded E[Delta^(k)] on pairs started at distance 1.
//
// For Scenario A, Corollary 4.2's one-step factor 1 - 1/m compounds
// geometrically, so E[Delta^(k)] ~ (1 - 1/m)^k; the returned curve has
// entry [t-1] = E[Delta after t coupled steps] for t = 1..k, measured
// with the general shared-randomness coupling (CoupledAlloc) over
// `trials` independent Gamma pairs.
//
// Note that CoupledAlloc is not the paper's Gamma coupling (that one is
// only defined on distance-1 pairs; see GammaStepA/E7 for its exact
// one-step factor): its one-step expectation can sit marginally above 1,
// but it contracts at least geometrically over longer horizons, which is
// the delayed-path-coupling observation.
func MeasureDelayedContraction(sc process.Scenario, rule rules.Rule, n, m, k, trials int, seed uint64) []float64 {
	if k < 1 || trials < 1 {
		panic("core: MeasureDelayedContraction needs k >= 1, trials >= 1")
	}
	curves := par.Map(trials, 0, func(trial int) []int {
		r := rng.NewStream(seed, uint64(trial))
		v, u := loadvec.AdjacentPair(n, m, r)
		c := NewCoupledAlloc(sc, rule, v, u, r)
		out := make([]int, k)
		for t := 0; t < k; t++ {
			c.Step()
			out[t] = c.Distance()
		}
		return out
	})
	mean := make([]float64, k)
	for _, cu := range curves {
		for t, d := range cu {
			mean[t] += float64(d)
		}
	}
	for t := range mean {
		mean[t] /= float64(trials)
	}
	return mean
}
