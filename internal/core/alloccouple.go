package core

import (
	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// positionByBallIndex maps a ball index t in [0, m) to the position of
// the bin holding that ball in the normalized vector v — the inverse-CDF
// map of the distribution A(v).
func positionByBallIndex(v loadvec.Vector, t int) int {
	acc := 0
	for i, x := range v {
		acc += x
		if t < acc {
			return i
		}
	}
	panic("core: ball index beyond total load")
}

// CoupledAlloc couples two copies of a closed allocation process on
// ARBITRARY state pairs by sharing all randomness:
//
//   - Removal. Scenario A: both copies remove the ball with the same
//     shared uniform ball index (the inverse-CDF coupling of A(v) and
//     A(u); the totals are equal in a closed process). Scenario B: both
//     copies apply the inverse-CDF coupling of B: a shared uniform
//     u in [0,1) picks rank floor(u*s) among each copy's s nonempty bins.
//   - Insertion. Both copies consult the same lazily-drawn sample of the
//     right-oriented rule, one of them through Phi (Lemma 3.3), so the
//     insertion never increases ||X - Y||_1.
//
// Each copy in isolation performs exactly its process's step, so this is
// a faithful coupling and its coalescence time upper-bounds the mixing
// time. On distance-1 pairs the Scenario A removal coupling coincides
// with the paper's Section 4 construction in distribution.
type CoupledAlloc struct {
	Scenario process.Scenario
	Rule     rules.Rule
	X, Y     loadvec.Vector
	r        *rng.RNG
	steps    int64
}

// NewCoupledAlloc couples the two (copied) start states, which must
// belong to the same Omega_m.
func NewCoupledAlloc(sc process.Scenario, rule rules.Rule, x, y loadvec.Vector, r *rng.RNG) *CoupledAlloc {
	if x.N() != y.N() || x.Total() != y.Total() {
		panic("core: coupled states must share n and m")
	}
	if x.Total() < 1 {
		panic("core: closed coupling needs at least one ball")
	}
	return &CoupledAlloc{Scenario: sc, Rule: rule, X: x.Clone(), Y: y.Clone(), r: r}
}

// Steps returns the number of coupled steps executed.
func (c *CoupledAlloc) Steps() int64 { return c.steps }

// Coalesced implements Coupling.
func (c *CoupledAlloc) Coalesced() bool { return c.X.Equal(c.Y) }

// Distance implements Coupling: Delta(X, Y) = (1/2)||X - Y||_1.
func (c *CoupledAlloc) Distance() int { return c.X.Delta(c.Y) }

// Step implements Coupling.
func (c *CoupledAlloc) Step() {
	switch c.Scenario {
	case process.ScenarioA:
		t := c.r.Intn(c.X.Total())
		c.X.Remove(positionByBallIndex(c.X, t))
		c.Y.Remove(positionByBallIndex(c.Y, t))
	case process.ScenarioB:
		u := c.r.Float64()
		s1, s2 := c.X.NonEmpty(), c.Y.NonEmpty()
		i := int(u * float64(s1))
		if i >= s1 {
			i = s1 - 1
		}
		j := int(u * float64(s2))
		if j >= s2 {
			j = s2 - 1
		}
		c.X.Remove(i)
		c.Y.Remove(j)
	default:
		panic("core: unknown scenario")
	}
	s := rules.NewSample(c.X.N(), c.r)
	c.X.Add(c.Rule.Choose(c.X, s))
	c.Y.Add(c.Rule.Choose(c.Y, c.Rule.Phi(s)))
	c.steps++
}

// findGammaOrientation identifies lambda < delta with v = u + e_lambda -
// e_delta for a pair at Delta distance 1, possibly swapping the roles of
// the inputs. Returns (upper, lower, lambda, delta) with upper = lower +
// e_lambda - e_delta. It panics if Delta(v, u) != 1.
func findGammaOrientation(v, u loadvec.Vector) (upper, lower loadvec.Vector, lambda, delta int) {
	if v.Delta(u) != 1 {
		panic("core: pair is not at Delta distance 1")
	}
	plus, minus := -1, -1
	for i := range v {
		switch v[i] - u[i] {
		case 1:
			plus = i
		case -1:
			minus = i
		}
	}
	if plus < minus {
		return v, u, plus, minus
	}
	// v = u + e_plus - e_minus with plus > minus means u = v + e_minus -
	// e_plus with minus < plus: swap roles.
	return u, v, minus, plus
}

// GammaStepA performs ONE step of the paper's Section 4 coupling on a
// pair (v, u) at Delta distance 1 and returns the coupled successors.
// The removal halves are coupled as in the paper: draw i from A(upper);
// if i != lambda both copies remove at the matching index, and if
// i = lambda the lower copy removes at delta with probability
// 1/upper[lambda] (which makes the marginals exact and coalesces the
// pair). The insertion halves share a sample via Lemma 3.3.
//
// Lemma 4.1 asserts Delta of the result is at most 1, with coalescence
// whenever the removal indices split; Corollary 4.2 gives
// E[Delta'] <= 1 - 1/m.
func GammaStepA(rule rules.Rule, v, u loadvec.Vector, r *rng.RNG) (loadvec.Vector, loadvec.Vector) {
	upper, lower, lambda, delta := findGammaOrientation(v, u)
	x := upper.Clone()
	y := lower.Clone()
	m := x.Total()

	t := r.Intn(m)
	i := positionByBallIndex(x, t)
	j := i
	if i == lambda {
		// With probability 1/x[lambda], remove at delta in the lower copy.
		if r.Intn(x[lambda]) == 0 {
			j = delta
		}
	}
	x.Remove(i)
	y.Remove(j)

	s := rules.NewSample(x.N(), r)
	x.Add(rule.Choose(x, s))
	y.Add(rule.Choose(y, rule.Phi(s)))
	return x, y
}

// GammaStepB performs ONE step of the paper's Section 5 coupling on a
// pair at Delta distance 1 under Scenario B, returning the coupled
// successors. Writing upper = lower + e_lambda - e_delta (lambda <
// delta) and s1 = nonempty(upper), s2 = nonempty(lower):
//
//   - if s1 == s2, draw i uniform on [s1] for the upper copy and mirror
//     lambda <-> delta for the lower copy;
//   - if s1 != s2 (then s1 = s2 - 1: the lower copy's bin at position
//     delta holds the single ball the upper copy moved away), draw i*
//     uniform on [s2] for the lower copy; the upper copy uses i = i*
//     except i* = delta maps to lambda and i* = lambda re-draws uniform
//     on [s1].
//
// The insertion halves share a sample via Lemma 3.3. Claims 5.1/5.2
// assert E[Delta'] <= 1 and Pr[Delta' != 1] >= 1/(2n).
func GammaStepB(rule rules.Rule, v, u loadvec.Vector, r *rng.RNG) (loadvec.Vector, loadvec.Vector) {
	upper, lower, lambda, delta := findGammaOrientation(v, u)
	x := upper.Clone()
	y := lower.Clone()
	s1, s2 := x.NonEmpty(), y.NonEmpty()

	var i, j int
	if s1 == s2 {
		i = r.Intn(s1)
		switch i {
		case lambda:
			j = delta
		case delta:
			j = lambda
		default:
			j = i
		}
	} else {
		// The only way the supports differ for a distance-1 pair:
		// lower has one extra nonempty bin, at position delta.
		j = r.Intn(s2)
		switch j {
		case delta:
			i = lambda
		case lambda:
			i = r.Intn(s1)
		default:
			i = j
		}
	}
	x.Remove(i)
	y.Remove(j)

	s := rules.NewSample(x.N(), r)
	x.Add(rule.Choose(x, s))
	y.Add(rule.Choose(y, rule.Phi(s)))
	return x, y
}
