package core

import (
	"math"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

func TestAbkuInsertProbs(t *testing.T) {
	p := abkuInsertProbs(4, 2)
	want := []float64{1.0 / 16, 3.0 / 16, 5.0 / 16, 7.0 / 16}
	sum := 0.0
	for g := range p {
		if math.Abs(p[g]-want[g]) > 1e-12 {
			t.Fatalf("g=%d: %v, want %v", g, p[g], want[g])
		}
		sum += p[g]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum %v", sum)
	}
}

func TestAllGammaPairs(t *testing.T) {
	pairs := AllGammaPairs(3, 4)
	// Omega_4 with 3 bins: {400, 310, 220, 211}; distance-1 pairs:
	// 400-310, 310-220, 310-211, 220-211 -> 4 pairs.
	if len(pairs) != 4 {
		t.Fatalf("found %d pairs: %v", len(pairs), pairs)
	}
	for _, pr := range pairs {
		if pr[0].Delta(pr[1]) != 1 {
			t.Fatalf("non-adjacent pair %v", pr)
		}
	}
}

// TestCorollary42Exhaustive verifies Corollary 4.2 EXACTLY on every
// Gamma pair of several small state spaces: the Section 4 coupling's
// one-step expected distance never exceeds 1 - 1/m, its coalescence
// probability is at least 1/m, and the distance never exceeds 1.
func TestCorollary42Exhaustive(t *testing.T) {
	for _, inst := range [][2]int{{3, 5}, {4, 6}, {4, 8}, {5, 7}} {
		n, m := inst[0], inst[1]
		bound := 1 - 1/float64(m)
		for _, d := range []int{1, 2, 3} {
			for _, pr := range AllGammaPairs(n, m) {
				ec := ExactGammaA(d, pr[0], pr[1])
				if ec.MeanDelta > bound+1e-12 {
					t.Fatalf("n=%d m=%d d=%d pair %v/%v: E[Delta'] = %.12f > %.12f",
						n, m, d, pr[0], pr[1], ec.MeanDelta, bound)
				}
				if ec.ZeroFreq < 1/float64(m)-1e-12 {
					t.Fatalf("n=%d m=%d d=%d pair %v/%v: coalescence prob %.12f < 1/m",
						n, m, d, pr[0], pr[1], ec.ZeroFreq)
				}
				if ec.MaxDelta > 1 {
					t.Fatalf("n=%d m=%d d=%d pair %v/%v: Delta' reached %d",
						n, m, d, pr[0], pr[1], ec.MaxDelta)
				}
			}
		}
	}
}

// TestClaims51Exhaustive verifies Claims 5.1/5.2 exactly on every Gamma
// pair: E[Delta'] <= 1, Pr[Delta' != 1] >= 1/(2n), Delta' <= 2.
func TestClaims51Exhaustive(t *testing.T) {
	for _, inst := range [][2]int{{3, 5}, {4, 6}, {4, 8}, {5, 7}} {
		n, m := inst[0], inst[1]
		for _, d := range []int{1, 2, 3} {
			for _, pr := range AllGammaPairs(n, m) {
				ec := ExactGammaB(d, pr[0], pr[1])
				if ec.MeanDelta > 1+1e-12 {
					t.Fatalf("n=%d m=%d d=%d pair %v/%v: E[Delta'] = %.12f > 1",
						n, m, d, pr[0], pr[1], ec.MeanDelta)
				}
				if ec.AlphaFreq < 1/(2*float64(n))-1e-12 {
					t.Fatalf("n=%d m=%d d=%d pair %v/%v: alpha = %.12f < 1/(2n)",
						n, m, d, pr[0], pr[1], ec.AlphaFreq)
				}
				if ec.MaxDelta > 2 {
					t.Fatalf("n=%d m=%d d=%d pair %v/%v: Delta' reached %d",
						n, m, d, pr[0], pr[1], ec.MaxDelta)
				}
			}
		}
	}
}

// TestMixedExhaustive: the exhaustive lemma checks hold for the
// (1+beta)-choice mixture too — its position choice is also
// state-independent, so the same exact enumeration applies.
func TestMixedExhaustive(t *testing.T) {
	for _, inst := range [][2]int{{3, 5}, {4, 6}} {
		n, m := inst[0], inst[1]
		boundA := 1 - 1/float64(m)
		for _, beta := range []float64{0, 0.3, 0.7, 1} {
			ins := MixedInsertProbs(n, beta)
			for _, pr := range AllGammaPairs(n, m) {
				a := ExactGammaAProbs(ins, pr[0], pr[1])
				if a.MeanDelta > boundA+1e-12 || a.MaxDelta > 1 {
					t.Fatalf("beta=%.1f n=%d m=%d pair %v/%v: A law violated (%+v)",
						beta, n, m, pr[0], pr[1], a)
				}
				b := ExactGammaBProbs(ins, pr[0], pr[1])
				if b.MeanDelta > 1+1e-12 || b.AlphaFreq < 1/(2*float64(n))-1e-12 {
					t.Fatalf("beta=%.1f n=%d m=%d pair %v/%v: B law violated (%+v)",
						beta, n, m, pr[0], pr[1], b)
				}
			}
		}
	}
}

func TestMixedInsertProbsEndpoints(t *testing.T) {
	n := 5
	p0 := MixedInsertProbs(n, 0)
	p1 := MixedInsertProbs(n, 1)
	one := abkuInsertProbs(n, 1)
	two := abkuInsertProbs(n, 2)
	for g := 0; g < n; g++ {
		if math.Abs(p0[g]-one[g]) > 1e-12 || math.Abs(p1[g]-two[g]) > 1e-12 {
			t.Fatalf("mixture endpoints wrong at g=%d", g)
		}
	}
}

// TestExactMatchesMonteCarloA: the exact computation agrees with the
// Monte-Carlo GammaStepA on a fixed pair.
func TestExactMatchesMonteCarloA(t *testing.T) {
	u := loadvec.Vector{2, 2, 1, 1}
	v := loadvec.Vector{3, 2, 1, 0}
	ec := ExactGammaA(2, v, u)
	r := rng.New(17)
	const trialCount = 400000
	sum, zeros := 0, 0
	rule := rules.NewABKU(2)
	for i := 0; i < trialCount; i++ {
		x, y := GammaStepA(rule, v, u, r)
		dd := x.Delta(y)
		sum += dd
		if dd == 0 {
			zeros++
		}
	}
	mcMean := float64(sum) / trialCount
	mcZero := float64(zeros) / trialCount
	if math.Abs(mcMean-ec.MeanDelta) > 0.004 {
		t.Fatalf("MC mean %.5f vs exact %.5f", mcMean, ec.MeanDelta)
	}
	if math.Abs(mcZero-ec.ZeroFreq) > 0.004 {
		t.Fatalf("MC zero freq %.5f vs exact %.5f", mcZero, ec.ZeroFreq)
	}
}

// TestExactMatchesMonteCarloB: same for Scenario B on an
// unequal-supports pair.
func TestExactMatchesMonteCarloB(t *testing.T) {
	u := loadvec.Vector{2, 1, 1}
	v := loadvec.Vector{3, 1, 0}
	ec := ExactGammaB(2, v, u)
	r := rng.New(19)
	const trialCount = 400000
	sum, moved := 0, 0
	rule := rules.NewABKU(2)
	for i := 0; i < trialCount; i++ {
		x, y := GammaStepB(rule, v, u, r)
		dd := x.Delta(y)
		sum += dd
		if dd != 1 {
			moved++
		}
	}
	mcMean := float64(sum) / trialCount
	mcAlpha := float64(moved) / trialCount
	if math.Abs(mcMean-ec.MeanDelta) > 0.004 {
		t.Fatalf("MC mean %.5f vs exact %.5f", mcMean, ec.MeanDelta)
	}
	if math.Abs(mcAlpha-ec.AlphaFreq) > 0.004 {
		t.Fatalf("MC alpha %.5f vs exact %.5f", mcAlpha, ec.AlphaFreq)
	}
}
