package core_test

import (
	"fmt"

	"dynalloc/internal/core"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// The Path Coupling Lemma turns contraction on adjacent pairs into a
// mixing-time bound; Theorem 1 instantiates it for Scenario A.
func ExampleTheorem1Bound() {
	fmt.Println(core.Theorem1Bound(100, 0.25))
	// The same number from the lemma's raw ingredients: D = m = 100,
	// beta = 1 - 1/m.
	fmt.Println(core.PathCouplingContraction(100, 1-1.0/100, 0.25))
	// Output:
	// 600
	// 600
}

// A coupled pair of Scenario A chains coalesces; by the coupling
// inequality the coalescence time upper-bounds the mixing time.
func ExampleCoalescenceTime() {
	v, u := loadvec.ExtremePair(8, 8)
	c := core.NewCoupledAlloc(process.ScenarioA, rules.NewABKU(2), v, u, rng.New(3))
	_, ok := core.CoalescenceTime(c, 1_000_000)
	fmt.Println("coalesced:", ok, "distance now:", c.Distance())
	// Output: coalesced: true distance now: 0
}

// One exact Section 4 coupling step on a distance-1 pair never increases
// the distance (Lemma 4.1).
func ExampleGammaStepA() {
	u := loadvec.Vector{2, 2, 1, 1}
	v := loadvec.Vector{3, 2, 1, 0}
	x, y := core.GammaStepA(rules.NewABKU(2), v, u, rng.New(4))
	fmt.Println("Delta after one coupled step is at most 1:", x.Delta(y) <= 1)
	// Output: Delta after one coupled step is at most 1: true
}
