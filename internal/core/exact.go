package core

import (
	"math"

	"dynalloc/internal/loadvec"
)

// ExactContraction is the exactly-computed one-step behavior of a Gamma
// coupling on one distance-1 pair: the full expectation over removal
// randomness, coupling branches and insertion randomness.
type ExactContraction struct {
	MeanDelta float64 // E[Delta']
	AlphaFreq float64 // Pr[Delta' != 1]
	ZeroFreq  float64 // Pr[Delta' == 0] (coalescence)
	MaxDelta  int     // largest Delta' with positive probability
}

// abkuInsertProbs returns the shared insertion distribution of ABKU[d]
// over positions: the position choice max(b) of d uniform probes is
// state-independent in normalized-position space, so both coupled copies
// insert at the SAME position g with probability ((g+1)^d - g^d)/n^d.
// That state-independence is what makes the coupling exactly enumerable.
func abkuInsertProbs(n, d int) []float64 {
	p := make([]float64, n)
	nd := math.Pow(float64(n), float64(d))
	for g := 0; g < n; g++ {
		p[g] = (math.Pow(float64(g+1), float64(d)) - math.Pow(float64(g), float64(d))) / nd
	}
	return p
}

// accumulate folds one weighted outcome into the running contraction.
func (e *ExactContraction) accumulate(w float64, delta int) {
	e.MeanDelta += w * float64(delta)
	if delta != 1 {
		e.AlphaFreq += w
	}
	if delta == 0 {
		e.ZeroFreq += w
	}
	if delta > e.MaxDelta {
		e.MaxDelta = delta
	}
}

// MixedInsertProbs returns the state-independent position distribution
// of the (1+beta)-choice rule: the beta-mixture of the one- and
// two-probe laws.
func MixedInsertProbs(n int, beta float64) []float64 {
	one := abkuInsertProbs(n, 1)
	two := abkuInsertProbs(n, 2)
	out := make([]float64, n)
	for g := range out {
		out[g] = (1-beta)*one[g] + beta*two[g]
	}
	return out
}

// ExactGammaA computes the Section 4 coupling's one-step law exactly for
// ABKU[d] on a pair at Delta distance 1, by enumerating the removal
// position (probability v[i]/m), the 1/v[lambda] coupling branch, and
// the shared insertion position. Corollary 4.2 asserts
// MeanDelta <= 1 - 1/m for every such pair; TestCorollary42Exhaustive
// checks that over ALL Gamma pairs of small state spaces.
func ExactGammaA(d int, vIn, uIn loadvec.Vector) ExactContraction {
	return ExactGammaAProbs(abkuInsertProbs(vIn.N(), d), vIn, uIn)
}

// ExactGammaAProbs is ExactGammaA for ANY rule whose position choice is
// state-independent (ABKU[d], Uniform, the Mixed mixture): ins[g] is the
// probability both coupled copies insert at position g.
func ExactGammaAProbs(ins []float64, vIn, uIn loadvec.Vector) ExactContraction {
	upper, lower, lambda, delta := findGammaOrientation(vIn, uIn)
	n := upper.N()
	m := upper.Total()
	if len(ins) != n {
		panic("core: insertion distribution length mismatch")
	}
	var out ExactContraction
	for i := 0; i < n; i++ {
		pRem := float64(upper[i]) / float64(m)
		if pRem == 0 {
			continue
		}
		type branch struct {
			j int
			w float64
		}
		branches := []branch{{i, 1}}
		if i == lambda {
			w := 1 / float64(upper[lambda])
			branches = []branch{{delta, w}, {lambda, 1 - w}}
		}
		for _, br := range branches {
			x := upper.Clone()
			x.Remove(i)
			y := lower.Clone()
			y.Remove(br.j)
			for g := 0; g < n; g++ {
				if ins[g] == 0 {
					continue
				}
				xx := x.Clone()
				xx.Add(g)
				yy := y.Clone()
				yy.Add(g)
				out.accumulate(pRem*br.w*ins[g], xx.Delta(yy))
			}
		}
	}
	return out
}

// ExactGammaB computes the Section 5 coupling's one-step law exactly for
// ABKU[d] on a pair at Delta distance 1 (both support cases). Claims
// 5.1/5.2 assert MeanDelta <= 1 and AlphaFreq >= 1/(2n);
// TestClaims51Exhaustive checks that over ALL Gamma pairs of small state
// spaces.
func ExactGammaB(d int, vIn, uIn loadvec.Vector) ExactContraction {
	return ExactGammaBProbs(abkuInsertProbs(vIn.N(), d), vIn, uIn)
}

// ExactGammaBProbs is ExactGammaB for any state-independent insertion
// distribution.
func ExactGammaBProbs(ins []float64, vIn, uIn loadvec.Vector) ExactContraction {
	upper, lower, lambda, delta := findGammaOrientation(vIn, uIn)
	n := upper.N()
	s1, s2 := upper.NonEmpty(), lower.NonEmpty()
	if len(ins) != n {
		panic("core: insertion distribution length mismatch")
	}
	var out ExactContraction

	type branch struct {
		i, j int
		w    float64
	}
	var branches []branch
	if s1 == s2 {
		for i := 0; i < s1; i++ {
			j := i
			switch i {
			case lambda:
				j = delta
			case delta:
				j = lambda
			}
			branches = append(branches, branch{i, j, 1 / float64(s1)})
		}
	} else {
		// s1 = s2 - 1: enumerate j uniform on [s2].
		for j := 0; j < s2; j++ {
			w := 1 / float64(s2)
			switch j {
			case delta:
				branches = append(branches, branch{lambda, j, w})
			case lambda:
				for i := 0; i < s1; i++ {
					branches = append(branches, branch{i, j, w / float64(s1)})
				}
			default:
				branches = append(branches, branch{j, j, w})
			}
		}
	}
	for _, br := range branches {
		x := upper.Clone()
		x.Remove(br.i)
		y := lower.Clone()
		y.Remove(br.j)
		for g := 0; g < n; g++ {
			if ins[g] == 0 {
				continue
			}
			xx := x.Clone()
			xx.Add(g)
			yy := y.Clone()
			yy.Add(g)
			out.accumulate(br.w*ins[g], xx.Delta(yy))
		}
	}
	return out
}

// AllGammaPairs enumerates every unordered pair of Omega_m states at
// Delta distance exactly 1, for exhaustive lemma verification.
func AllGammaPairs(n, m int) [][2]loadvec.Vector {
	states := loadvec.Enumerate(n, m)
	var out [][2]loadvec.Vector
	for a := 0; a < len(states); a++ {
		for b := a + 1; b < len(states); b++ {
			if states[a].Delta(states[b]) == 1 {
				out = append(out, [2]loadvec.Vector{states[a], states[b]})
			}
		}
	}
	return out
}
