package core

import (
	"math"
	"testing"

	"dynalloc/internal/process"
	"dynalloc/internal/rules"
)

func TestDelayedContractionDecreases(t *testing.T) {
	const n, m, k, trials = 16, 16, 64, 20000
	curve := MeasureDelayedContraction(process.ScenarioA, rules.NewABKU(2), n, m, k, trials, 7)
	if len(curve) != k {
		t.Fatalf("curve length %d", len(curve))
	}
	// The general shared-randomness coupling is not the paper's Gamma
	// coupling: its one-step factor can sit slightly above 1 (the exact
	// Section 4 construction, verified in E7, never does). What matters
	// here is the compounding.
	if curve[0] > 1.1 {
		t.Fatalf("one-step expected distance %v >> 1 from Gamma pairs", curve[0])
	}
	// Broadly decreasing: final far below initial.
	if curve[k-1] > curve[0]/2 {
		t.Fatalf("no compounding: E[Delta] %v -> %v over %d steps", curve[0], curve[k-1], k)
	}
}

// TestDelayedContractionGeometric: the compounded contraction tracks
// (1 - 1/m)^k within statistical and coupling-constant slack.
func TestDelayedContractionGeometric(t *testing.T) {
	const n, m, trials = 16, 16, 40000
	k := 2 * m
	curve := MeasureDelayedContraction(process.ScenarioA, rules.NewABKU(2), n, m, k, trials, 11)
	predict := math.Pow(1-1.0/float64(m), float64(k))
	got := curve[k-1]
	// The shared-randomness coupling can only be at least as contractive
	// as the paper's worst-case factor on average; allow generous slack
	// upward for noise.
	if got > 3*predict+0.05 {
		t.Fatalf("E[Delta^(%d)] = %v far above geometric prediction %v", k, got, predict)
	}
}

func TestDelayedContractionScenarioB(t *testing.T) {
	const n, m, k, trials = 8, 8, 200, 5000
	curve := MeasureDelayedContraction(process.ScenarioB, rules.NewABKU(2), n, m, k, trials, 13)
	if curve[k-1] >= curve[0] {
		t.Fatalf("Scenario B delayed coupling does not contract: %v -> %v", curve[0], curve[k-1])
	}
}

func TestDelayedContractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeasureDelayedContraction(process.ScenarioA, rules.NewABKU(2), 4, 4, 0, 1, 1)
}
