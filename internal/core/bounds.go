package core

import "math"

// PathCouplingContraction is case (1) of the Path Coupling Lemma
// (Lemma 3.1): if on adjacent pairs E[Delta(X', Y')] <= beta *
// Delta(X, Y) with beta < 1, and the metric diameter is D, then
//
//	tau(eps) <= ln(D / eps) / (1 - beta).
//
// It panics unless 0 <= beta < 1, D >= 1 and 0 < eps < 1.
func PathCouplingContraction(diameter, beta, eps float64) float64 {
	if beta < 0 || beta >= 1 {
		panic("core: contraction case needs 0 <= beta < 1")
	}
	if diameter < 1 || eps <= 0 || eps >= 1 {
		panic("core: bad diameter or epsilon")
	}
	return math.Ceil(math.Log(diameter/eps) / (1 - beta))
}

// PathCouplingVariance is case (2) of the Path Coupling Lemma: if
// E[Delta(X', Y')] <= Delta(X, Y) (beta = 1) but the distance moves with
// probability at least alpha on adjacent pairs, then
//
//	tau(eps) <= ceil(e * D^2 / alpha) * ceil(ln(1/eps)).
//
// It panics unless 0 < alpha <= 1, D >= 1 and 0 < eps < 1.
func PathCouplingVariance(diameter, alpha, eps float64) float64 {
	if alpha <= 0 || alpha > 1 {
		panic("core: variance case needs 0 < alpha <= 1")
	}
	if diameter < 1 || eps <= 0 || eps >= 1 {
		panic("core: bad diameter or epsilon")
	}
	return math.Ceil(math.E*diameter*diameter/alpha) * math.Ceil(math.Log(1/eps))
}

// Theorem1Bound is the paper's Theorem 1: for Scenario A with any
// right-oriented insertion rule, tau(eps) = ceil(m * ln(m / eps)).
// The coupling contracts with beta = 1 - 1/m on a metric of diameter
// at most m - ceil(m/n) <= m.
func Theorem1Bound(m int, eps float64) float64 {
	if m < 1 || eps <= 0 || eps >= 1 {
		panic("core: bad arguments to Theorem1Bound")
	}
	return math.Ceil(float64(m) * math.Log(float64(m)/eps))
}

// Claim53Bound is the paper's Claim 5.3: for Scenario B,
// tau(eps) = O(n * m^2 * ln(1/eps)). The constant follows from the
// variance case of the Path Coupling Lemma with diameter D <= m and
// alpha >= 1/(2n) (the coupling's distance moves whenever the shared
// removal index hits one of the two differing bins).
func Claim53Bound(n, m int, eps float64) float64 {
	if n < 1 || m < 1 || eps <= 0 || eps >= 1 {
		panic("core: bad arguments to Claim53Bound")
	}
	return PathCouplingVariance(float64(m), 1/(2*float64(n)), eps)
}

// Corollary64Bound is the paper's Corollary 6.4 for the edge orientation
// chain: tau(eps) = O(n^3 (ln n + ln(1/eps))). It instantiates the
// contraction case with diameter n and
// beta = 1 - (1/n) * (n choose 2)^{-1}, the bound obtained from
// Lemmas 6.2/6.3 together with Delta <= n on adjacent pairs.
func Corollary64Bound(n int, eps float64) float64 {
	if n < 2 || eps <= 0 || eps >= 1 {
		panic("core: bad arguments to Corollary64Bound")
	}
	pairs := float64(n) * float64(n-1) / 2
	beta := 1 - 1/(float64(n)*pairs)
	return PathCouplingContraction(float64(n), beta, eps)
}

// Theorem2Bound is the shape of the paper's Theorem 2:
// tau(1/4) = O(n^2 ln^2 n) for the edge orientation chain, obtained by
// first arguing the discrepancies shrink to O(ln n) within O(n^2 ln n)
// steps and then path-coupling on the smaller effective diameter. The
// constant c multiplies the asymptotic shape; c = 1 reports the bare
// shape for table columns.
func Theorem2Bound(n int, c float64) float64 {
	if n < 2 {
		panic("core: bad n in Theorem2Bound")
	}
	ln := math.Log(float64(n))
	return c * float64(n) * float64(n) * ln * ln
}

// AzarRecoveryBound is the prior-work baseline the paper improves for
// Scenario A: Azar et al. showed recovery within O(n^3) steps for
// m = n. The paper's Theorem 1 replaces this with Theta(n ln n).
func AzarRecoveryBound(n int) float64 {
	return float64(n) * float64(n) * float64(n)
}

// AjtaiRecoveryBound is the prior-work baseline for the edge
// orientation problem: at least O(n^5) in Ajtai et al.; the paper's
// Theorem 2 replaces it with O(n^2 ln^2 n).
func AjtaiRecoveryBound(n int) float64 {
	return math.Pow(float64(n), 5)
}

// ScenarioALowerBound is the matching lower bound discussed after
// Theorem 1: the recovery time of Scenario A is Omega(m ln m) (the bound
// is tight up to lower-order terms).
func ScenarioALowerBound(m int) float64 {
	if m < 2 {
		return 1
	}
	return float64(m) * math.Log(float64(m))
}

// ScenarioBLowerBounds returns the two lower bounds stated after
// Claim 5.3: Omega(n*m) and, for sufficiently large m, Omega(m^2).
func ScenarioBLowerBounds(n, m int) (nm, m2 float64) {
	return float64(n) * float64(m), float64(m) * float64(m)
}

// EdgeOrientLowerBound is the Omega(n^2) lower bound noted after
// Theorem 2.
func EdgeOrientLowerBound(n int) float64 {
	return float64(n) * float64(n)
}
