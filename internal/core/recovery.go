package core

import (
	"time"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/metrics"
	"dynalloc/internal/par"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/stats"
)

// RecoverySpec describes one max-load recovery experiment: start a
// closed process from a given bad state and record how many phases it
// needs until the imbalance (max load above fair share) falls to
// GapTarget.
type RecoverySpec struct {
	Scenario  process.Scenario
	Rule      func() rules.Rule // fresh rule per trial (rules are stateless but cheap)
	Initial   func() loadvec.Vector
	GapTarget int
	MaxSteps  int64
}

// RecoveryResult aggregates recovery times over independent trials.
type RecoveryResult struct {
	Times    stats.Summary
	Timeouts int
}

// MeasureRecovery runs `trials` independent recoveries (in parallel,
// with per-trial derived streams and in-order reduction, so the result
// is identical to a sequential run) and aggregates the hitting times of
// the target gap. This is the operational form of the paper's recovery
// time: the time to go from an arbitrary (here: adversarial) state to a
// typical state.
func MeasureRecovery(spec RecoverySpec, seed uint64, trials int) RecoveryResult {
	defer metrics.Span("core.recovery.stage_ns")()
	type outcome struct {
		t  int64
		ok bool
	}
	outs := par.Map(trials, 0, func(trial int) outcome {
		start := time.Now()
		r := rng.NewStream(seed, uint64(trial))
		p := process.New(spec.Scenario, spec.Rule(), spec.Initial(), r)
		t, ok := p.RecoveryTime(spec.GapTarget, spec.MaxSteps)
		metrics.ObserveHistogram("core.recovery.trial_ns", time.Since(start).Nanoseconds())
		return outcome{t, ok}
	})
	var res RecoveryResult
	for _, o := range outs {
		if !o.ok {
			res.Timeouts++
			continue
		}
		res.Times.AddInt(int(o.t))
	}
	return res
}

// ContractionEstimate measures the one-step contraction of a Gamma-pair
// coupling: it generates `trials` fresh pairs at Delta distance 1,
// applies one coupled step, and returns the empirical E[Delta'] together
// with the fraction of trials where Delta' != 1 (the alpha of the Path
// Coupling Lemma's variance case).
type ContractionEstimate struct {
	MeanDelta float64
	AlphaFreq float64 // Pr[Delta' != 1]
	MaxDelta  int
	Coalesced int // trials with Delta' == 0
	Trials    int
}

// MeasureContractionA estimates the Section 4 coupling's contraction on
// random Gamma pairs from Omega_m. Corollary 4.2 predicts
// E[Delta'] <= 1 - 1/m.
func MeasureContractionA(rule rules.Rule, n, m, trials int, r *rng.RNG) ContractionEstimate {
	return measureContraction(rule, n, m, trials, r, GammaStepA)
}

// MeasureContractionB estimates the Section 5 coupling's contraction.
// Claims 5.1/5.2 predict E[Delta'] <= 1 and Pr[Delta' != 1] >= 1/(2n).
func MeasureContractionB(rule rules.Rule, n, m, trials int, r *rng.RNG) ContractionEstimate {
	return measureContraction(rule, n, m, trials, r, GammaStepB)
}

func measureContraction(rule rules.Rule, n, m, trials int, r *rng.RNG,
	step func(rules.Rule, loadvec.Vector, loadvec.Vector, *rng.RNG) (loadvec.Vector, loadvec.Vector)) ContractionEstimate {
	var est ContractionEstimate
	sum := 0
	moved := 0
	for trial := 0; trial < trials; trial++ {
		v, u := loadvec.AdjacentPair(n, m, r)
		x, y := step(rule, v, u, r)
		d := x.Delta(y)
		sum += d
		if d != 1 {
			moved++
		}
		if d == 0 {
			est.Coalesced++
		}
		if d > est.MaxDelta {
			est.MaxDelta = d
		}
	}
	est.Trials = trials
	est.MeanDelta = float64(sum) / float64(trials)
	est.AlphaFreq = float64(moved) / float64(trials)
	return est
}
