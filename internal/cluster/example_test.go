package cluster_test

import (
	"fmt"

	"dynalloc/internal/cluster"
	"dynalloc/internal/rng"
)

// A cluster dispatches jobs with the power of two choices and heals
// under churn; its load-vector projection is the paper's Markov chain.
func ExampleCluster() {
	c := cluster.New(8, rng.New(1))
	for i := 0; i < 8; i++ {
		c.SubmitTo(0) // a crash crammed every job onto one server
	}
	fmt.Println("after the crash: max load", c.MaxLoad())
	c.ChurnA(2000, 2) // Scenario A churn with two-choice dispatch
	fmt.Println("after churn: max load", c.MaxLoad(), "— jobs still:", c.Jobs())
	// Output:
	// after the crash: max load 8
	// after churn: max load 2 — jobs still: 8
}
