package cluster

import (
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/stats"
)

func TestSubmitAndComplete(t *testing.T) {
	c := New(4, rng.New(1))
	j1 := c.SubmitTo(2)
	j2 := c.SubmitTo(2)
	if c.Jobs() != 2 || c.Load(2) != 2 || c.MaxLoad() != 2 {
		t.Fatalf("state after submits: jobs=%d load=%d", c.Jobs(), c.Load(2))
	}
	done := c.Complete(j1.ID)
	if done.Server != 2 || c.Jobs() != 1 || c.Load(2) != 1 {
		t.Fatalf("completion wrong: %+v", done)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	c.Complete(j2.ID)
	if c.Jobs() != 0 {
		t.Fatal("cluster not empty")
	}
}

func TestCompleteUnknownPanics(t *testing.T) {
	c := New(2, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Complete(42)
}

func TestSubmitDChoice(t *testing.T) {
	// With d = n probes... not guaranteed to see every server (with
	// replacement), so test the d=1 and deterministic-extreme cases.
	c := New(3, rng.New(2))
	c.SubmitTo(0)
	c.SubmitTo(0)
	c.SubmitTo(1)
	// d-choice with many probes lands on server 2 (empty) with high
	// probability; run several and check it never picks the fullest when
	// an emptier probe was available — indirectly via invariants + load.
	for i := 0; i < 50; i++ {
		c.Submit(8)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.Jobs() != 53 {
		t.Fatalf("jobs = %d", c.Jobs())
	}
}

func TestEmptyCompletions(t *testing.T) {
	c := New(2, rng.New(3))
	if _, ok := c.CompleteRandomJob(); ok {
		t.Fatal("completed a job on an empty cluster")
	}
	if _, ok := c.CompleteAtRandomServer(); ok {
		t.Fatal("completed at a server on an empty cluster")
	}
}

func TestInvariantsUnderHeavyChurn(t *testing.T) {
	r := rng.New(4)
	c := New(8, r)
	for i := 0; i < 16; i++ {
		c.Submit(2)
	}
	for round := 0; round < 200; round++ {
		c.ChurnA(10, 2)
		c.ChurnB(10, 2)
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if c.Jobs() != 16 {
			t.Fatalf("round %d: job count drifted to %d", round, c.Jobs())
		}
	}
}

// TestProjectionLawMatchesProcessA: the sorted-load projection of the
// cluster under Scenario A churn has the same law as the I_A-ABKU[2]
// process — the exchangeability reduction, statistically.
func TestProjectionLawMatchesProcessA(t *testing.T) {
	const n, m, steps, trials = 4, 6, 8, 120000
	rc := rng.New(5)
	clusterCounts := make(map[string]int)
	for trial := 0; trial < trials; trial++ {
		c := New(n, rc)
		// Initial one-tower placement.
		for i := 0; i < m; i++ {
			c.SubmitTo(0)
		}
		c.ChurnA(steps, 2)
		clusterCounts[c.LoadVector().Key()]++
	}
	rp := rng.New(6)
	processCounts := make(map[string]int)
	for trial := 0; trial < trials; trial++ {
		p := process.New(process.ScenarioA, rules.NewABKU(2), loadvec.OneTower(n, m), rp)
		p.Run(steps)
		processCounts[p.State().Key()]++
	}
	if d := stats.TVDistanceCounts(clusterCounts, processCounts); d > 0.012 {
		t.Fatalf("cluster and process laws differ under Scenario A churn: TV = %.4f", d)
	}
}

// TestProjectionLawMatchesProcessB: same for Scenario B churn.
func TestProjectionLawMatchesProcessB(t *testing.T) {
	const n, m, steps, trials = 4, 6, 8, 120000
	rc := rng.New(7)
	clusterCounts := make(map[string]int)
	for trial := 0; trial < trials; trial++ {
		c := New(n, rc)
		for i := 0; i < m; i++ {
			c.SubmitTo(0)
		}
		c.ChurnB(steps, 2)
		clusterCounts[c.LoadVector().Key()]++
	}
	rp := rng.New(8)
	processCounts := make(map[string]int)
	for trial := 0; trial < trials; trial++ {
		p := process.New(process.ScenarioB, rules.NewABKU(2), loadvec.OneTower(n, m), rp)
		p.Run(steps)
		processCounts[p.State().Key()]++
	}
	if d := stats.TVDistanceCounts(clusterCounts, processCounts); d > 0.012 {
		t.Fatalf("cluster and process laws differ under Scenario B churn: TV = %.4f", d)
	}
}

// TestCrashRecovery: a crammed cluster heals under churn within the
// Theorem 1 timescale.
func TestCrashRecovery(t *testing.T) {
	const n = 256
	c := New(n, rng.New(9))
	for i := 0; i < n; i++ {
		c.SubmitTo(i % 4) // jobs crammed onto 4 servers
	}
	start := c.MaxLoad()
	churned := 0
	for c.MaxLoad() > 4 && churned < 100*n {
		c.ChurnA(n/4, 2)
		churned += n / 4
	}
	if c.MaxLoad() > 4 {
		t.Fatalf("cluster did not heal: max load %d -> %d after %d phases", start, c.MaxLoad(), churned)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, rng.New(1)) },
		func() { New(2, rng.New(1)).Submit(0) },
		func() { New(2, rng.New(1)).SubmitTo(5) },
		func() { New(2, rng.New(1)).ChurnA(1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
