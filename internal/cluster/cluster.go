// Package cluster is the concrete face of the paper's Dynamic Resource
// Allocation application (Section 1.1): n identical servers, jobs with
// identities, d-choice dispatch, and the two job-completion semantics
// the paper analyzes (a random JOB finishes — Scenario A; a random
// SERVER finishes one job — Scenario B).
//
// Whereas internal/process works on the exchangeable load vector (the
// Markov-chain state the paper couples), Cluster tracks which job runs
// where. Its sorted-load projection evolves with exactly the law of the
// corresponding process — tested statistically — so everything the
// paper proves about I_A/I_B transfers verbatim to this system, which is
// the form a scheduler implementer would actually use.
package cluster

import (
	"fmt"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
)

// Job identifies one unit of work and where it is running.
type Job struct {
	ID     int64
	Server int
}

type jobPos struct {
	server int
	pos    int // index within the server's stack
}

// Cluster is a set of servers with running jobs.
type Cluster struct {
	stacks [][]int64 // job IDs per server
	where  map[int64]jobPos
	all    []int64 // all job IDs (swap-removal order)
	allPos map[int64]int
	nextID int64
	r      *rng.RNG
}

// New returns an empty cluster of n servers (n >= 1).
func New(n int, r *rng.RNG) *Cluster {
	if n < 1 {
		panic("cluster: need at least one server")
	}
	return &Cluster{
		stacks: make([][]int64, n),
		where:  make(map[int64]jobPos),
		allPos: make(map[int64]int),
		r:      r,
	}
}

// N returns the number of servers.
func (c *Cluster) N() int { return len(c.stacks) }

// Jobs returns the number of running jobs.
func (c *Cluster) Jobs() int { return len(c.all) }

// Load returns the number of jobs on server i.
func (c *Cluster) Load(i int) int { return len(c.stacks[i]) }

// MaxLoad returns the largest server load.
func (c *Cluster) MaxLoad() int {
	max := 0
	for _, s := range c.stacks {
		if len(s) > max {
			max = len(s)
		}
	}
	return max
}

// LoadVector returns the exchangeable-state projection: the normalized
// load vector the paper's Markov chains live on.
func (c *Cluster) LoadVector() loadvec.Vector {
	loads := make([]int, len(c.stacks))
	for i, s := range c.stacks {
		loads[i] = len(s)
	}
	return loadvec.FromLoads(loads)
}

// place puts a new job on server i.
func (c *Cluster) place(server int) Job {
	id := c.nextID
	c.nextID++
	c.where[id] = jobPos{server, len(c.stacks[server])}
	c.stacks[server] = append(c.stacks[server], id)
	c.allPos[id] = len(c.all)
	c.all = append(c.all, id)
	return Job{ID: id, Server: server}
}

// Submit dispatches a new job with the ABKU[d] rule: probe d servers
// independently and uniformly at random (with replacement) and run the
// job on the least loaded probe (first probe wins ties).
func (c *Cluster) Submit(d int) Job {
	if d < 1 {
		panic("cluster: need d >= 1 probes")
	}
	best := c.r.Intn(len(c.stacks))
	for p := 1; p < d; p++ {
		s := c.r.Intn(len(c.stacks))
		if len(c.stacks[s]) < len(c.stacks[best]) {
			best = s
		}
	}
	return c.place(best)
}

// SubmitTo runs a job on an explicit server (for adversarial or replay
// workloads).
func (c *Cluster) SubmitTo(server int) Job {
	if server < 0 || server >= len(c.stacks) {
		panic(fmt.Sprintf("cluster: server %d out of range", server))
	}
	return c.place(server)
}

// remove deletes a specific job, fixing both swap-removal indexes.
func (c *Cluster) remove(id int64) Job {
	jp, ok := c.where[id]
	if !ok {
		panic(fmt.Sprintf("cluster: job %d not running", id))
	}
	// Remove from the server stack (swap with last).
	stack := c.stacks[jp.server]
	last := len(stack) - 1
	moved := stack[last]
	stack[jp.pos] = moved
	c.stacks[jp.server] = stack[:last]
	if moved != id {
		mp := c.where[moved]
		mp.pos = jp.pos
		c.where[moved] = mp
	}
	delete(c.where, id)
	// Remove from the global list (swap with last).
	gpos := c.allPos[id]
	gl := len(c.all) - 1
	gmoved := c.all[gl]
	c.all[gpos] = gmoved
	c.all = c.all[:gl]
	if gmoved != id {
		c.allPos[gmoved] = gpos
	}
	delete(c.allPos, id)
	return Job{ID: id, Server: jp.server}
}

// CompleteRandomJob finishes a job chosen uniformly among all running
// jobs — the Scenario A removal. Returns false on an empty cluster.
func (c *Cluster) CompleteRandomJob() (Job, bool) {
	if len(c.all) == 0 {
		return Job{}, false
	}
	id := c.all[c.r.Intn(len(c.all))]
	return c.remove(id), true
}

// CompleteAtRandomServer finishes one job at a nonempty server chosen
// uniformly among nonempty servers — the Scenario B removal. Returns
// false on an empty cluster.
func (c *Cluster) CompleteAtRandomServer() (Job, bool) {
	if len(c.all) == 0 {
		return Job{}, false
	}
	// Uniform nonempty server: draw among nonempty indices.
	nonEmpty := make([]int, 0, len(c.stacks))
	for i, s := range c.stacks {
		if len(s) > 0 {
			nonEmpty = append(nonEmpty, i)
		}
	}
	server := nonEmpty[c.r.Intn(len(nonEmpty))]
	stack := c.stacks[server]
	id := stack[len(stack)-1]
	return c.remove(id), true
}

// Complete finishes a specific job (for replay workloads). It panics if
// the job is not running.
func (c *Cluster) Complete(id int64) Job { return c.remove(id) }

// ChurnA runs k phases of Scenario A churn with d-choice dispatch:
// finish a random job, submit a new one.
func (c *Cluster) ChurnA(k, d int) {
	for i := 0; i < k; i++ {
		if _, ok := c.CompleteRandomJob(); !ok {
			panic("cluster: churn on an empty cluster")
		}
		c.Submit(d)
	}
}

// ChurnB runs k phases of Scenario B churn.
func (c *Cluster) ChurnB(k, d int) {
	for i := 0; i < k; i++ {
		if _, ok := c.CompleteAtRandomServer(); !ok {
			panic("cluster: churn on an empty cluster")
		}
		c.Submit(d)
	}
}

// CheckInvariants verifies internal consistency (for tests and debug
// builds): every job indexed exactly once, positions correct, counts
// agreeing. Returns nil when consistent.
func (c *Cluster) CheckInvariants() error {
	total := 0
	for server, stack := range c.stacks {
		total += len(stack)
		for pos, id := range stack {
			jp, ok := c.where[id]
			if !ok || jp.server != server || jp.pos != pos {
				return fmt.Errorf("cluster: job %d indexed at %+v, stored at (%d,%d)", id, jp, server, pos)
			}
		}
	}
	if total != len(c.all) {
		return fmt.Errorf("cluster: %d jobs in stacks, %d in the global list", total, len(c.all))
	}
	for pos, id := range c.all {
		if c.allPos[id] != pos {
			return fmt.Errorf("cluster: job %d global index broken", id)
		}
	}
	return nil
}
