// Package carpool implements the fair allocation problem of Section 1.1:
// the carpool problem of Fagin and Williams, in the uniform-subsets
// model analyzed via the edge orientation reduction of Ajtai et al.
//
// n participants share rides. Each trip, a subset of k participants
// rides together and one of them drives. Fairness bookkeeping: the
// driver "pays" 1 and every rider in the trip "owes" 1/k, so
// participant i's discrepancy after a history of trips is
//
//	disc(i) = drives(i) - trips(i)/k,
//
// and the unfairness of a state is max_i |disc(i)|. The greedy protocol
// always lets the participant with the smallest discrepancy drive.
//
// For k = 2 with uniformly random pairs, this IS the edge orientation
// problem: the trip is an edge, the driver is the tail, and
// disc = (outdeg - indeg)/2 — which is the "price of doubling the
// expected fairness" in Ajtai et al.'s reduction, made concrete. The
// package stores discrepancies scaled by k so all arithmetic is exact
// integer arithmetic.
package carpool

import (
	"fmt"
	"sort"

	"dynalloc/internal/rng"
)

// Pool is a carpool instance: n participants, trips of size k.
type Pool struct {
	k int
	// scaled[i] = k*drives(i) - trips(i): the discrepancy times k.
	scaled []int64
	trips  int64
}

// New returns a pool of n participants with trip size k (2 <= k <= n).
func New(n, k int) *Pool {
	if k < 2 || k > n {
		panic(fmt.Sprintf("carpool: need 2 <= k <= n, got k=%d n=%d", k, n))
	}
	return &Pool{k: k, scaled: make([]int64, n)}
}

// N returns the number of participants.
func (p *Pool) N() int { return len(p.scaled) }

// K returns the trip size.
func (p *Pool) K() int { return p.k }

// Trips returns the number of trips taken.
func (p *Pool) Trips() int64 { return p.trips }

// ScaledDisc returns k * disc(i) (exact integer bookkeeping).
func (p *Pool) ScaledDisc(i int) int64 { return p.scaled[i] }

// Unfairness returns max_i |disc(i)| = max_i |scaled(i)| / k.
func (p *Pool) Unfairness() float64 {
	var worst int64
	for _, s := range p.scaled {
		if s < 0 {
			s = -s
		}
		if s > worst {
			worst = s
		}
	}
	return float64(worst) / float64(p.k)
}

// TotalDiscrepancy returns sum_i disc(i) * k, which is invariantly zero:
// each trip adds k for the driver and subtracts 1 from each of the k
// participants.
func (p *Pool) TotalDiscrepancy() int64 {
	var s int64
	for _, x := range p.scaled {
		s += x
	}
	return s
}

// Trip runs one trip with the given distinct participants: the greedy
// protocol picks the participant with the smallest discrepancy as the
// driver (ties broken toward the first listed). It panics on duplicate
// or out-of-range participants.
func (p *Pool) Trip(riders []int) {
	if len(riders) != p.k {
		panic(fmt.Sprintf("carpool: trip of %d riders, want %d", len(riders), p.k))
	}
	driver := -1
	var best int64
	seen := make(map[int]bool, p.k)
	for _, r := range riders {
		if r < 0 || r >= len(p.scaled) {
			panic(fmt.Sprintf("carpool: rider %d out of range", r))
		}
		if seen[r] {
			panic(fmt.Sprintf("carpool: duplicate rider %d", r))
		}
		seen[r] = true
		if driver < 0 || p.scaled[r] < best {
			driver = r
			best = p.scaled[r]
		}
	}
	for _, r := range riders {
		p.scaled[r]-- // everyone owes 1/k
	}
	p.scaled[driver] += int64(p.k) // the driver pays 1
	p.trips++
}

// Step runs one trip with a uniformly random k-subset of participants.
func (p *Pool) Step(r *rng.RNG) {
	riders := sampleSubset(len(p.scaled), p.k, r)
	p.Trip(riders)
}

// sampleSubset draws a uniform k-subset of [0, n) by partial
// Fisher-Yates on a scratch index table (allocated per call; trips are
// cheap relative to the bookkeeping).
func sampleSubset(n, k int, r *rng.RNG) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// SetDiscrepancies installs an adversarial state: scaled discrepancies
// must sum to zero.
func (p *Pool) SetDiscrepancies(scaled []int64) {
	if len(scaled) != len(p.scaled) {
		panic("carpool: wrong state size")
	}
	var sum int64
	for _, s := range scaled {
		sum += s
	}
	if sum != 0 {
		panic("carpool: discrepancies must sum to zero")
	}
	copy(p.scaled, scaled)
}

// SortedScaled returns the scaled discrepancies in descending order (the
// exchangeable-state projection).
func (p *Pool) SortedScaled() []int64 {
	out := append([]int64(nil), p.scaled...)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}
