package carpool

import (
	"testing"

	"dynalloc/internal/edgeorient"
	"dynalloc/internal/rng"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range [][2]int{{3, 1}, {3, 4}, {1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d,%d) accepted", bad[0], bad[1])
				}
			}()
			New(bad[0], bad[1])
		}()
	}
}

func TestTripBookkeeping(t *testing.T) {
	p := New(4, 2)
	p.Trip([]int{0, 1}) // equal discs: first listed (0) drives
	if p.ScaledDisc(0) != 1 || p.ScaledDisc(1) != -1 {
		t.Fatalf("discs after first trip: %d, %d", p.ScaledDisc(0), p.ScaledDisc(1))
	}
	p.Trip([]int{0, 1}) // now 1 has smaller disc: 1 drives
	if p.ScaledDisc(0) != 0 || p.ScaledDisc(1) != 0 {
		t.Fatalf("discs after second trip: %d, %d", p.ScaledDisc(0), p.ScaledDisc(1))
	}
	if p.Trips() != 2 {
		t.Fatalf("trips = %d", p.Trips())
	}
}

func TestTripPanics(t *testing.T) {
	p := New(4, 3)
	for _, riders := range [][]int{{0, 1}, {0, 1, 1}, {0, 1, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Trip(%v) accepted", riders)
				}
			}()
			p.Trip(riders)
		}()
	}
}

func TestInvariants(t *testing.T) {
	r := rng.New(1)
	for _, k := range []int{2, 3, 5} {
		p := New(9, k)
		for i := 0; i < 5000; i++ {
			p.Step(r)
			if p.TotalDiscrepancy() != 0 {
				t.Fatalf("k=%d: discrepancies unbalanced at trip %d", k, i)
			}
		}
	}
}

// TestMatchesEdgeOrientation is the Ajtai et al. reduction, exactly:
// the k = 2 carpool run IS the edge orientation process with
// disc = (outdeg - indeg)/2, so the carpool unfairness is half the
// edge-orientation unfairness on the same trip sequence.
func TestMatchesEdgeOrientation(t *testing.T) {
	const n = 8
	p := New(n, 2)
	g := edgeorient.NewGraph(n)
	r := rng.New(2)
	rEdge := rng.New(3)
	for trip := 0; trip < 20000; trip++ {
		a, b := r.DistinctPair(n)
		p.Trip([]int{a, b})
		// Greedy edge orientation: tail = smaller discrepancy. The
		// carpool driver (smaller disc, tie toward first listed = lower
		// index since DistinctPair returns a < b) matches Graph's greedy
		// tie-break toward its first argument.
		g.AddEdge(a, b, edgeorient.Greedy, rEdge)
		for v := 0; v < n; v++ {
			if p.ScaledDisc(v) != int64(g.Disc(v)) {
				t.Fatalf("trip %d vertex %d: carpool scaled %d vs edge disc %d",
					trip, v, p.ScaledDisc(v), g.Disc(v))
			}
		}
	}
	if p.Unfairness() != float64(g.Unfairness())/2 {
		t.Fatalf("unfairness %v != edge unfairness %d / 2", p.Unfairness(), g.Unfairness())
	}
}

// TestGreedyKeepsFairness: for every k the greedy protocol keeps the
// long-run unfairness tiny.
func TestGreedyKeepsFairness(t *testing.T) {
	r := rng.New(4)
	for _, k := range []int{2, 3, 4} {
		p := New(32, k)
		worst := 0.0
		for i := 0; i < 60000; i++ {
			p.Step(r)
			if u := p.Unfairness(); u > worst {
				worst = u
			}
		}
		if worst > 4 {
			t.Fatalf("k=%d: unfairness reached %v", k, worst)
		}
	}
}

// TestRecoveryFromAdversarial: an unfair history heals under greedy.
func TestRecoveryFromAdversarial(t *testing.T) {
	const n = 16
	p := New(n, 2)
	bad := make([]int64, n)
	for i := 0; i < n/2; i++ {
		bad[i] = 20
		bad[n-1-i] = -20
	}
	p.SetDiscrepancies(bad)
	r := rng.New(5)
	var steps int
	for steps = 0; steps < 2_000_000 && p.Unfairness() > 2; steps++ {
		p.Step(r)
	}
	if p.Unfairness() > 2 {
		t.Fatalf("carpool did not recover (unfairness %v)", p.Unfairness())
	}
}

func TestSetDiscrepanciesPanics(t *testing.T) {
	p := New(3, 2)
	for _, bad := range [][]int64{{1, 0}, {1, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetDiscrepancies(%v) accepted", bad)
				}
			}()
			p.SetDiscrepancies(bad)
		}()
	}
}

func TestSortedScaled(t *testing.T) {
	p := New(3, 2)
	p.SetDiscrepancies([]int64{-2, 2, 0})
	s := p.SortedScaled()
	if s[0] != 2 || s[1] != 0 || s[2] != -2 {
		t.Fatalf("sorted = %v", s)
	}
}

func TestSampleSubset(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 2000; trial++ {
		s := sampleSubset(10, 4, r)
		if len(s) != 4 {
			t.Fatalf("size %d", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 10 || seen[v] {
				t.Fatalf("bad subset %v", s)
			}
			seen[v] = true
		}
	}
}
