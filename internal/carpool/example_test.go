package carpool_test

import (
	"fmt"

	"dynalloc/internal/carpool"
)

// The greedy protocol keeps the carpool fair: the participant with the
// smallest discrepancy drives.
func ExamplePool_Trip() {
	p := carpool.New(4, 2)
	p.Trip([]int{0, 1}) // equal discs: 0 drives
	p.Trip([]int{0, 1}) // now 1 owes less driving? no — 1 has smaller disc, 1 drives
	fmt.Println("unfairness after a fair exchange:", p.Unfairness())
	// Output: unfairness after a fair exchange: 0
}
