// Package vfs is the filesystem seam of the durability stack: the
// small set of operations internal/wal and internal/checkpoint perform
// against a directory, abstracted behind one FS interface so the same
// code runs against the real OS in production and against the
// deterministic fault-injecting filesystem (internal/simfs) in the
// crash-schedule simulations.
//
// The interface is deliberately narrow — create-exclusive, append-only
// writes, fsync, rename, remove, globbing and whole-file reads — which
// is exactly the vocabulary a write-ahead log and an atomic-rename
// checkpoint store need, and exactly the vocabulary a power-cut model
// can give precise semantics to. Anything richer (seeks, truncation,
// permissions) is intentionally absent: if the durability code cannot
// express an operation here, it cannot accidentally depend on
// filesystem behavior the simulator does not model.
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is an open file handle. Handles returned by Create/CreateTemp
// are write-only and append-only; handles returned by Open are
// read-only. Both directions implement the full interface so one type
// serves the log writer (Write/Sync/Close) and the replay reader
// (Read/Close); calling the wrong direction returns an error from the
// underlying implementation.
type File interface {
	io.Reader
	io.Writer
	// Sync forces everything written so far to stable storage. Only
	// bytes covered by a completed Sync are guaranteed to survive a
	// power cut (see the simfs power-cut model).
	Sync() error
	Close() error
	// Name returns the path the handle was opened at (for temp files,
	// the generated name — the caller renames it into place).
	Name() string
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name  string
	IsDir bool
}

// FS is the filesystem surface of the durability stack. All paths are
// slash-separated absolute or relative paths as the caller composed
// them (the OS implementation hands them to the os package verbatim).
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create creates name exclusively for writing: it fails with an
	// error satisfying errors.Is(err, fs.ErrExist) when the name already
	// exists. This is the segment-creation primitive of the WAL.
	Create(name string) (File, error)
	// CreateTemp creates a fresh uniquely-named file in dir for
	// writing, replacing the final "*" of pattern with a unique suffix
	// (os.CreateTemp semantics). The checkpoint writer builds its
	// temp-fsync-rename sequence on this.
	CreateTemp(dir, pattern string) (File, error)
	// Open opens name read-only; errors.Is(err, fs.ErrNotExist) when
	// absent.
	Open(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists dir; errors.Is(err, fs.ErrNotExist) when absent.
	ReadDir(dir string) ([]DirEntry, error)
	// Glob returns the sorted paths matching pattern (filepath.Match
	// syntax, as used by filepath.Glob).
	Glob(pattern string) ([]string, error)
	// Rename atomically moves oldPath to newPath, replacing newPath if
	// present (POSIX rename).
	Rename(oldPath, newPath string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat returns the size of name; errors.Is(err, fs.ErrNotExist)
	// when absent. Used as an existence probe and for segment sizing.
	Stat(name string) (int64, error)
	// SyncDir fsyncs the directory itself, making entry mutations
	// (create, rename, remove) durable against a power cut. A failure
	// is best-effort information: callers treat it like the OS
	// implementation does (directory fsync is advisory on many
	// filesystems).
	SyncDir(dir string) error
}

// OS is the production FS: a thin pass-through to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(dir string) ([]DirEntry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, len(ents))
	for i, e := range ents {
		out[i] = DirEntry{Name: e.Name(), IsDir: e.IsDir()}
	}
	return out, nil
}

func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Stat(name string) (int64, error) {
	fi, err := os.Lstat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// IsNotExist reports whether err denotes a missing file on any FS
// implementation.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// IsExist reports whether err denotes an already-existing file on any
// FS implementation.
func IsExist(err error) bool { return errors.Is(err, fs.ErrExist) }
