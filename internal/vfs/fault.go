package vfs

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrInjectedNoSpace is the error FaultFS returns for write-path
// operations while a write fault is armed with a nil error. It is
// deliberately distinct from any real os error so logs and tests can
// tell an injected catastrophe from a genuine disk problem.
var ErrInjectedNoSpace = errors.New("vfs: no space left on device (injected)")

// FaultFS wraps any FS with runtime-switchable fault injection — the
// production-side counterpart of the deterministic simfs fault hooks.
// The chaos injector (serve.ChaosInjector) arms and clears faults on
// a live daemon's WAL directory through this wrapper:
//
//   - a write fault (SetWriteError) makes Create, CreateTemp and every
//     File.Write fail — the ENOSPC catastrophe. Reads, renames and
//     removes still succeed, so checkpoint pruning and restore keep
//     working while the disk is "full".
//   - a sync delay (SetSyncDelay) makes every File.Sync and SyncDir
//     sleep before proceeding — the stalled-disk catastrophe. The
//     journal's writer goroutine absorbs the stall off the hot path;
//     with a bounded queue the stall eventually backpressures
//     mutations exactly like a real hung device.
//
// Both faults are transient by design: the injector clears them after
// an exponentially-distributed repair window. The unfaulted path costs
// two atomic loads per operation, so leaving a FaultFS permanently in
// place (chaos mode off) is free in practice.
//
// All methods are safe for concurrent use.
type FaultFS struct {
	inner FS

	writeErr  atomic.Pointer[error] // nil = no write fault
	syncDelay atomic.Int64          // nanoseconds; 0 = no stall

	failedWrites atomic.Int64
	stalledSyncs atomic.Int64
}

// NewFaultFS wraps inner. With no faults armed it is a transparent
// pass-through.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner}
}

// SetWriteError arms (non-nil) or clears (nil) the write fault. While
// armed, Create, CreateTemp and File.Write return err.
func (f *FaultFS) SetWriteError(err error) {
	if err == nil {
		f.writeErr.Store(nil)
		return
	}
	f.writeErr.Store(&err)
}

// SetSyncDelay arms (d > 0) or clears (d <= 0) the sync stall. While
// armed, every File.Sync and SyncDir sleeps d before delegating.
func (f *FaultFS) SetSyncDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	f.syncDelay.Store(int64(d))
}

// ClearFaults disarms everything.
func (f *FaultFS) ClearFaults() {
	f.writeErr.Store(nil)
	f.syncDelay.Store(0)
}

// FailedWrites returns how many operations the write fault has failed.
func (f *FaultFS) FailedWrites() int64 { return f.failedWrites.Load() }

// StalledSyncs returns how many syncs the stall has delayed.
func (f *FaultFS) StalledSyncs() int64 { return f.stalledSyncs.Load() }

// writeFault returns the armed write error, or nil.
func (f *FaultFS) writeFault() error {
	if p := f.writeErr.Load(); p != nil {
		f.failedWrites.Add(1)
		return *p
	}
	return nil
}

// stall sleeps through an armed sync delay.
func (f *FaultFS) stall() {
	if d := f.syncDelay.Load(); d > 0 {
		f.stalledSyncs.Add(1)
		time.Sleep(time.Duration(d))
	}
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// Create implements FS; it fails while a write fault is armed.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.writeFault(); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// CreateTemp implements FS; it fails while a write fault is armed.
func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.writeFault(); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// Open implements FS. Read handles skip fault wrapping: chaos never
// fails reads, so restore and replay always see the disk as it is.
func (f *FaultFS) Open(name string) (File, error) { return f.inner.Open(name) }

// ReadFile implements FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]DirEntry, error) { return f.inner.ReadDir(dir) }

// Glob implements FS.
func (f *FaultFS) Glob(pattern string) ([]string, error) { return f.inner.Glob(pattern) }

// Rename implements FS.
func (f *FaultFS) Rename(oldPath, newPath string) error { return f.inner.Rename(oldPath, newPath) }

// Remove implements FS.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// Stat implements FS.
func (f *FaultFS) Stat(name string) (int64, error) { return f.inner.Stat(name) }

// SyncDir implements FS; it sleeps through an armed sync stall.
func (f *FaultFS) SyncDir(dir string) error {
	f.stall()
	return f.inner.SyncDir(dir)
}

// faultFile is a write handle subject to the owning FaultFS's faults.
type faultFile struct {
	File
	fs *FaultFS
}

func (h *faultFile) Write(p []byte) (int, error) {
	if err := h.fs.writeFault(); err != nil {
		return 0, err
	}
	return h.File.Write(p)
}

func (h *faultFile) Sync() error {
	h.fs.stall()
	return h.File.Sync()
}
