package vfs_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dynalloc/internal/vfs"
)

func TestFaultFSPassThrough(t *testing.T) {
	dir := t.TempDir()
	f := vfs.NewFaultFS(vfs.OS)

	name := filepath.Join(dir, "a.txt")
	h, err := f.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadFile(name)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if n, err := f.Stat(name); err != nil || n != 5 {
		t.Fatalf("Stat = %d, %v", n, err)
	}
	if f.FailedWrites() != 0 || f.StalledSyncs() != 0 {
		t.Fatalf("counters moved without faults: %d writes, %d syncs",
			f.FailedWrites(), f.StalledSyncs())
	}
}

func TestFaultFSWriteFault(t *testing.T) {
	dir := t.TempDir()
	f := vfs.NewFaultFS(vfs.OS)

	name := filepath.Join(dir, "w.txt")
	h, err := f.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	f.SetWriteError(nil) // nil arms nothing
	if _, err := h.Write([]byte("ok")); err != nil {
		t.Fatalf("write with nil fault: %v", err)
	}

	f.SetWriteError(vfs.ErrInjectedNoSpace)
	if _, err := h.Write([]byte("x")); !errors.Is(err, vfs.ErrInjectedNoSpace) {
		t.Fatalf("faulted write err = %v, want ErrInjectedNoSpace", err)
	}
	if _, err := f.Create(filepath.Join(dir, "b.txt")); !errors.Is(err, vfs.ErrInjectedNoSpace) {
		t.Fatalf("faulted create err = %v", err)
	}
	if _, err := f.CreateTemp(dir, "tmp-*"); !errors.Is(err, vfs.ErrInjectedNoSpace) {
		t.Fatalf("faulted createtemp err = %v", err)
	}
	// Reads stay healthy while the disk is "full".
	if _, err := f.ReadFile(name); err != nil {
		t.Fatalf("read during write fault: %v", err)
	}
	if got := f.FailedWrites(); got != 3 {
		t.Fatalf("FailedWrites = %d, want 3", got)
	}

	f.ClearFaults()
	if _, err := h.Write([]byte("y")); err != nil {
		t.Fatalf("write after repair: %v", err)
	}
}

func TestFaultFSSyncStall(t *testing.T) {
	dir := t.TempDir()
	f := vfs.NewFaultFS(vfs.OS)
	h, err := f.Create(filepath.Join(dir, "s.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}

	const delay = 30 * time.Millisecond
	f.SetSyncDelay(delay)
	start := time.Now()
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("stalled sync returned in %v, want >= %v", elapsed, delay)
	}
	if err := f.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := f.StalledSyncs(); got != 2 {
		t.Fatalf("StalledSyncs = %d, want 2", got)
	}

	f.SetSyncDelay(0)
	start = time.Now()
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > delay {
		t.Fatalf("repaired sync still slow: %v", elapsed)
	}
}

// TestFaultFSRenameRemoveUnfaulted pins the taxonomy: ENOSPC hits the
// write path only, so checkpoint pruning (remove) and the atomic
// rename publish keep working while the fault is armed.
func TestFaultFSRenameRemoveUnfaulted(t *testing.T) {
	dir := t.TempDir()
	f := vfs.NewFaultFS(vfs.OS)
	name := filepath.Join(dir, "c.txt")
	if err := os.WriteFile(name, []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	f.SetWriteError(vfs.ErrInjectedNoSpace)
	moved := filepath.Join(dir, "d.txt")
	if err := f.Rename(name, moved); err != nil {
		t.Fatalf("rename during write fault: %v", err)
	}
	if err := f.Remove(moved); err != nil {
		t.Fatalf("remove during write fault: %v", err)
	}
}
