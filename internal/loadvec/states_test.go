package loadvec

import (
	"testing"

	"dynalloc/internal/rng"
)

func TestEnumerateSmall(t *testing.T) {
	// Partitions of 4 into at most 3 parts: 4, 3+1, 2+2, 2+1+1 -> 4 states.
	states := Enumerate(3, 4)
	if len(states) != 4 {
		t.Fatalf("Enumerate(3,4) has %d states, want 4", len(states))
	}
	for _, s := range states {
		if !s.IsNormalized() || s.Total() != 4 || s.N() != 3 {
			t.Fatalf("bad state %v", s)
		}
	}
}

func TestEnumerateZeroBalls(t *testing.T) {
	states := Enumerate(3, 0)
	if len(states) != 1 || !states[0].Equal(Vector{0, 0, 0}) {
		t.Fatalf("Enumerate(3,0) = %v", states)
	}
}

func TestEnumerateMatchesCount(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for m := 0; m <= 9; m++ {
			got := len(Enumerate(n, m))
			want := CountStates(n, m)
			if got != want {
				t.Fatalf("n=%d m=%d: Enumerate found %d states, CountStates says %d", n, m, got, want)
			}
		}
	}
}

func TestCountStatesKnownValues(t *testing.T) {
	// Partition numbers p(m) for n >= m.
	known := map[int]int{0: 1, 1: 1, 2: 2, 3: 3, 4: 5, 5: 7, 6: 11, 7: 15, 8: 22}
	for m, p := range known {
		if got := CountStates(m+2, m); got != p {
			t.Errorf("CountStates(%d,%d) = %d, want p(%d)=%d", m+2, m, got, m, p)
		}
	}
	// Single bin: always exactly one state.
	for m := 0; m <= 10; m++ {
		if got := CountStates(1, m); got != 1 {
			t.Errorf("CountStates(1,%d) = %d, want 1", m, got)
		}
	}
}

func TestEnumerateNoDuplicates(t *testing.T) {
	states := Enumerate(5, 8)
	seen := make(map[string]bool, len(states))
	for _, s := range states {
		k := s.Key()
		if seen[k] {
			t.Fatalf("duplicate state %v", s)
		}
		seen[k] = true
	}
}

func TestInitialStates(t *testing.T) {
	const n, m = 6, 10
	cases := []struct {
		name string
		v    Vector
	}{
		{"OneTower", OneTower(n, m)},
		{"TwoTowers", TwoTowers(n, m)},
		{"Staircase", Staircase(n, m)},
		{"Balanced", Balanced(n, m)},
		{"Random", Random(n, m, rng.New(1))},
	}
	for _, c := range cases {
		if !c.v.IsNormalized() {
			t.Errorf("%s is not normalized: %v", c.name, c.v)
		}
		if c.v.Total() != m {
			t.Errorf("%s has total %d, want %d", c.name, c.v.Total(), m)
		}
		if c.v.N() != n {
			t.Errorf("%s has %d bins, want %d", c.name, c.v.N(), n)
		}
	}
	if OneTower(n, m).MaxLoad() != m {
		t.Error("OneTower max load wrong")
	}
	if Balanced(n, m).Gap() != 0 {
		t.Error("Balanced should have zero gap")
	}
	if tw := TwoTowers(n, 9); tw[0] != 5 || tw[1] != 4 {
		t.Errorf("TwoTowers(_,9) = %v", tw)
	}
}

func TestAdjacentPairDistanceOne(t *testing.T) {
	r := rng.New(55)
	for trial := 0; trial < 500; trial++ {
		n := 2 + r.Intn(8)
		m := 2 + r.Intn(20)
		v, u := AdjacentPair(n, m, r)
		if d := v.Delta(u); d != 1 {
			t.Fatalf("AdjacentPair(%d,%d) = %v, %v with Delta %d", n, m, v, u, d)
		}
		if !v.IsNormalized() || !u.IsNormalized() {
			t.Fatalf("AdjacentPair returned unnormalized states")
		}
	}
}

func TestExtremePair(t *testing.T) {
	v, u := ExtremePair(4, 8)
	if !v.Equal(Vector{8, 0, 0, 0}) {
		t.Fatalf("ExtremePair tower = %v", v)
	}
	if !u.Equal(Vector{2, 2, 2, 2}) {
		t.Fatalf("ExtremePair balanced = %v", u)
	}
	if v.Delta(u) != 6 {
		t.Fatalf("ExtremePair Delta = %d, want 6", v.Delta(u))
	}
}

// TestEnumerateComplete: every randomly generated normalized vector of
// the right total appears in the enumeration (completeness, not just
// soundness).
func TestEnumerateComplete(t *testing.T) {
	r := rng.New(71)
	for _, nm := range [][2]int{{3, 7}, {5, 9}, {4, 12}} {
		n, m := nm[0], nm[1]
		index := make(map[string]bool)
		for _, s := range Enumerate(n, m) {
			index[s.Key()] = true
		}
		for trial := 0; trial < 2000; trial++ {
			v := Random(n, m, r)
			if !index[v.Key()] {
				t.Fatalf("n=%d m=%d: reachable state %v missing from Enumerate", n, m, v)
			}
		}
	}
}

func TestRandomReproducible(t *testing.T) {
	a := Random(10, 30, rng.New(7))
	b := Random(10, 30, rng.New(7))
	if !a.Equal(b) {
		t.Fatal("Random with the same seed differs")
	}
}
