// Package loadvec implements the normalized load vectors of Section 3.1
// of the paper.
//
// A state of a dynamic allocation process with n bins is a normalized
// n-vector v with v[0] >= v[1] >= ... >= v[n-1] >= 0, where v[i] is the
// load of the i-th fullest bin. The set of all such vectors with total
// load m is the state space Omega_m. Because all scheduling rules in the
// paper are symmetric in the bins, the load vector carries all relevant
// information about the process state (the identity of the bins is
// insignificant), which is exactly why the underlying Markov chains are
// defined on Omega_m.
//
// The package provides the two transition primitives of the paper,
// v (+) e_i (Add) and v (-) e_i (Remove), implemented with the fast paths
// of Fact 3.2: adding a ball to position i re-normalizes by incrementing
// the *first* position j holding the value v[i], and removing a ball
// re-normalizes by decrementing the *last* position s holding v[i]. Both
// run in O(log n) via binary search on the sorted vector.
package loadvec

import (
	"fmt"
	"sort"
	"strings"
)

// Vector is a normalized (non-increasing, non-negative) load vector.
// Index 0 is the fullest bin. All methods other than Normalize assume
// the receiver is normalized; constructors in this package guarantee it.
type Vector []int

// New returns the all-zero vector with n bins (the state 0 of Omega_0).
func New(n int) Vector {
	if n < 0 {
		panic("loadvec: negative bin count")
	}
	return make(Vector, n)
}

// FromLoads returns the normalized vector of an arbitrary (possibly
// unsorted) load assignment. The input is not modified. It panics on a
// negative load, which cannot occur in any allocation process.
func FromLoads(loads []int) Vector {
	v := make(Vector, len(loads))
	copy(v, loads)
	for _, x := range v {
		if x < 0 {
			panic(fmt.Sprintf("loadvec: negative load %d", x))
		}
	}
	v.Normalize()
	return v
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Normalize sorts v into non-increasing order in place.
func (v Vector) Normalize() {
	sort.Sort(sort.Reverse(sort.IntSlice(v)))
}

// IsNormalized reports whether v is non-increasing and non-negative.
func (v Vector) IsNormalized() bool {
	for i := range v {
		if v[i] < 0 {
			return false
		}
		if i > 0 && v[i] > v[i-1] {
			return false
		}
	}
	return true
}

// N returns the number of bins.
func (v Vector) N() int { return len(v) }

// Total returns the total load m = ||v||_1.
func (v Vector) Total() int {
	m := 0
	for _, x := range v {
		m += x
	}
	return m
}

// MaxLoad returns the largest bin load (0 for an empty system).
func (v Vector) MaxLoad() int {
	if len(v) == 0 {
		return 0
	}
	return v[0]
}

// MinLoad returns the smallest bin load (0 for an empty system).
func (v Vector) MinLoad() int {
	if len(v) == 0 {
		return 0
	}
	return v[len(v)-1]
}

// NonEmpty returns s = |{i : v[i] > 0}|, the number of nonempty bins.
// Because v is normalized these are exactly positions 0..s-1, the support
// of the distribution B(v) used by Scenario B.
func (v Vector) NonEmpty() int {
	// First index with value <= 0 in the non-increasing vector.
	return sort.Search(len(v), func(t int) bool { return v[t] <= 0 })
}

// Gap returns the imbalance max load - ceil(m/n), the "above fair share"
// height used as the recovery measure for load balancing. It is 0 for a
// perfectly balanced vector.
func (v Vector) Gap() int {
	if len(v) == 0 {
		return 0
	}
	m := v.Total()
	fair := (m + len(v) - 1) / len(v)
	return v.MaxLoad() - fair
}

// firstIndexOf returns min{t : v[t] == val} assuming val occurs in v.
// In the non-increasing vector this is the first t with v[t] <= val.
func (v Vector) firstIndexOf(val int) int {
	return sort.Search(len(v), func(t int) bool { return v[t] <= val })
}

// lastIndexOf returns max{t : v[t] == val} assuming val occurs in v.
// In the non-increasing vector this is one before the first t with
// v[t] < val.
func (v Vector) lastIndexOf(val int) int {
	return sort.Search(len(v), func(t int) bool { return v[t] < val }) - 1
}

// Add performs v = v (+) e_i in place and returns the position j that was
// actually incremented. Per Fact 3.2, j = min{t : v[t] == v[i]}, so the
// vector stays normalized. It panics if i is out of range.
func (v *Vector) Add(i int) int {
	w := *v
	if i < 0 || i >= len(w) {
		panic(fmt.Sprintf("loadvec: Add index %d out of range [0,%d)", i, len(w)))
	}
	j := w.firstIndexOf(w[i])
	w[j]++
	return j
}

// Remove performs v = v (-) e_i in place and returns the position s that
// was actually decremented. Per Fact 3.2, s = max{t : v[t] == v[i]}, so
// the vector stays normalized. It panics if i is out of range or the bin
// is empty (a process never removes from an empty bin).
func (v *Vector) Remove(i int) int {
	w := *v
	if i < 0 || i >= len(w) {
		panic(fmt.Sprintf("loadvec: Remove index %d out of range [0,%d)", i, len(w)))
	}
	if w[i] <= 0 {
		panic(fmt.Sprintf("loadvec: Remove from empty bin %d", i))
	}
	s := w.lastIndexOf(w[i])
	w[s]--
	return s
}

// L1 returns ||v - u||_1. It panics if the vectors have different lengths.
func (v Vector) L1(u Vector) int {
	if len(v) != len(u) {
		panic("loadvec: L1 on vectors of different length")
	}
	d := 0
	for i := range v {
		if v[i] >= u[i] {
			d += v[i] - u[i]
		} else {
			d += u[i] - v[i]
		}
	}
	return d
}

// Delta returns the path-coupling distance of Sections 4 and 5,
// Delta(v, u) = (1/2)||v - u||_1 = sum_i max(v[i]-u[i], 0) for vectors of
// equal total load. It panics if the vectors have different lengths or
// different totals (the metric is only defined within one Omega_m).
func (v Vector) Delta(u Vector) int {
	if len(v) != len(u) {
		panic("loadvec: Delta on vectors of different length")
	}
	pos, neg := 0, 0
	for i := range v {
		if v[i] >= u[i] {
			pos += v[i] - u[i]
		} else {
			neg += u[i] - v[i]
		}
	}
	if pos != neg {
		panic("loadvec: Delta on vectors of different total load")
	}
	return pos
}

// Equal reports whether v and u are identical states.
func (v Vector) Equal(u Vector) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if v[i] != u[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string encoding of v, usable as a map key when
// enumerating state spaces. Distinct normalized vectors have distinct
// keys.
func (v Vector) Key() string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}

// String renders the vector for logs and error messages.
func (v Vector) String() string {
	return "[" + v.Key() + "]"
}

// Histogram returns counts[l] = number of bins with load exactly l, for
// l in [0, MaxLoad()]. This is the representation used by the fluid-limit
// baseline and by the edge-orientation level chain.
func (v Vector) Histogram() []int {
	counts := make([]int, v.MaxLoad()+1)
	for _, x := range v {
		counts[x]++
	}
	return counts
}

// TailCounts returns tail[l] = number of bins with load >= l, for
// l in [0, MaxLoad()+1] (the last entry is 0). This is the s_l statistic
// of Mitzenmacher's fluid-limit method.
func (v Vector) TailCounts() []int {
	tail := make([]int, v.MaxLoad()+2)
	for _, x := range v {
		tail[x]++
	}
	for l := len(tail) - 2; l >= 0; l-- {
		tail[l] += tail[l+1]
	}
	return tail
}
