package loadvec

import "dynalloc/internal/rng"

// Enumerate returns every state of Omega_m with n bins, i.e. every
// partition of m into at most n parts, each as a normalized Vector. The
// order is deterministic (lexicographically decreasing in the largest
// part). The count grows like the partition function, so this is intended
// for the exact-chain experiments with small n and m.
func Enumerate(n, m int) []Vector {
	if n < 0 || m < 0 {
		panic("loadvec: Enumerate with negative arguments")
	}
	var out []Vector
	cur := make([]int, 0, n)
	var rec func(remaining, maxPart, binsLeft int)
	rec = func(remaining, maxPart, binsLeft int) {
		if remaining == 0 {
			v := make(Vector, n)
			copy(v, cur)
			out = append(out, v)
			return
		}
		if binsLeft == 0 {
			return
		}
		hi := remaining
		if maxPart < hi {
			hi = maxPart
		}
		// The remaining load must fit in binsLeft bins of size <= part.
		for part := hi; part >= 1; part-- {
			if part*binsLeft < remaining {
				break
			}
			cur = append(cur, part)
			rec(remaining-part, part, binsLeft-1)
			cur = cur[:len(cur)-1]
		}
	}
	if m == 0 {
		return []Vector{New(n)}
	}
	rec(m, m, n)
	return out
}

// CountStates returns |Omega_m| for n bins (partitions of m into at most
// n parts) without materializing the states, via the standard DP.
func CountStates(n, m int) int {
	if n < 0 || m < 0 {
		panic("loadvec: CountStates with negative arguments")
	}
	// p[k][j] = partitions of j into at most k parts.
	prev := make([]int, m+1)
	prev[0] = 1
	for k := 1; k <= n; k++ {
		curRow := make([]int, m+1)
		curRow[0] = 1
		for j := 1; j <= m; j++ {
			curRow[j] = prev[j] // use fewer than k parts
			if j >= k {
				curRow[j] += curRow[j-k] // every part >= 1: subtract 1 from each of k parts
			}
		}
		prev = curRow
	}
	return prev[m]
}

// OneTower returns the most adversarial state of Omega_m: all m balls in
// a single bin. This is the state v(0) = m*e_1 used in the paper's
// tightness discussion after Theorem 1.
func OneTower(n, m int) Vector {
	if n < 1 {
		panic("loadvec: OneTower needs at least one bin")
	}
	v := New(n)
	v[0] = m
	return v
}

// TwoTowers splits m balls as evenly as possible between two bins.
func TwoTowers(n, m int) Vector {
	if n < 2 {
		panic("loadvec: TwoTowers needs at least two bins")
	}
	v := New(n)
	v[0] = (m + 1) / 2
	v[1] = m / 2
	return v
}

// Staircase returns the state with loads n-1, n-2, ..., spread until the
// budget m is exhausted (a maximally "spread but unbalanced" start).
func Staircase(n, m int) Vector {
	v := New(n)
	remaining := m
	for level := 0; remaining > 0; level++ {
		for i := 0; i < n && remaining > 0; i++ {
			// Fill diagonally so bin i ends close to proportional height.
			if v[i] <= level && i <= level {
				v[i]++
				remaining--
			}
		}
	}
	v.Normalize()
	return v
}

// Balanced returns the most balanced state of Omega_m: every bin holds
// floor(m/n) or ceil(m/n) balls. This is the "typical" target state.
func Balanced(n, m int) Vector {
	if n < 1 {
		panic("loadvec: Balanced needs at least one bin")
	}
	v := New(n)
	q, r := m/n, m%n
	for i := 0; i < n; i++ {
		v[i] = q
		if i < r {
			v[i]++
		}
	}
	return v
}

// Random returns the normalized vector of throwing m balls into n bins
// independently and uniformly at random (the classical one-choice start).
func Random(n, m int, r *rng.RNG) Vector {
	if n < 1 {
		panic("loadvec: Random needs at least one bin")
	}
	v := New(n)
	for b := 0; b < m; b++ {
		v[r.Intn(n)]++
	}
	v.Normalize()
	return v
}

// AdjacentPair returns a worst-case pair of states at Delta distance 1:
// v = u + e_lambda - e_delta with the ball moved from the bottom bin to
// the top. Such pairs are the set Gamma on which the paper's couplings
// are defined; coalescence experiments start from them.
func AdjacentPair(n, m int, r *rng.RNG) (v, u Vector) {
	if n < 2 || m < 1 {
		panic("loadvec: AdjacentPair needs n >= 2, m >= 1")
	}
	u = Random(n, m, r)
	v = u.Clone()
	// Move one ball from the last nonempty bin to the first bin.
	src := u.NonEmpty() - 1
	v.Remove(src)
	v.Add(0)
	if v.Equal(u) {
		// Degenerate: u has a single nonempty bin, so the move above was
		// the identity. Move one ball out of the tower instead. This
		// requires m >= 2; Omega_1 consists of a single state and has no
		// pair at distance 1 at all.
		if m < 2 {
			panic("loadvec: AdjacentPair impossible for m == 1")
		}
		v = u.Clone()
		v.Remove(0)
		v.Add(n - 1)
	}
	return v, u
}

// ExtremePair returns the farthest-apart pair used to seed worst-case
// coalescence runs: one tower versus the balanced state.
func ExtremePair(n, m int) (v, u Vector) {
	return OneTower(n, m), Balanced(n, m)
}
