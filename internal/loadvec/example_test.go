package loadvec_test

import (
	"fmt"

	"dynalloc/internal/loadvec"
)

// A load vector is always kept normalized (non-increasing); the (+) and
// (-) operations of Fact 3.2 re-normalize in O(log n).
func ExampleVector_Add() {
	v := loadvec.FromLoads([]int{2, 0, 3, 1})
	fmt.Println("state:", v)
	v.Add(3) // one more ball in the least loaded bin
	fmt.Println("after (+) e_3:", v)
	v.Remove(0) // one ball out of the fullest bin
	fmt.Println("after (-) e_0:", v)
	// Output:
	// state: [3,2,1,0]
	// after (+) e_3: [3,2,1,1]
	// after (-) e_0: [2,2,1,1]
}

// Delta is the path-coupling metric of Sections 4 and 5: half the L1
// distance between states of the same total load.
func ExampleVector_Delta() {
	v := loadvec.Vector{4, 2, 0}
	u := loadvec.Vector{3, 2, 1}
	fmt.Println(v.Delta(u))
	// Output: 1
}

func ExampleEnumerate() {
	for _, s := range loadvec.Enumerate(3, 4) {
		fmt.Println(s)
	}
	// Output:
	// [4,0,0]
	// [3,1,0]
	// [2,2,0]
	// [2,1,1]
}
