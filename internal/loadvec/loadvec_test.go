package loadvec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynalloc/internal/rng"
)

// randomVector builds a random normalized vector for property tests,
// driven by testing/quick's source.
func randomVector(r *rand.Rand, n, maxLoad int) Vector {
	loads := make([]int, n)
	for i := range loads {
		loads[i] = r.Intn(maxLoad + 1)
	}
	return FromLoads(loads)
}

func TestNewIsZero(t *testing.T) {
	v := New(5)
	if v.Total() != 0 || v.MaxLoad() != 0 || v.N() != 5 {
		t.Fatalf("New(5) = %v", v)
	}
	if !v.IsNormalized() {
		t.Fatal("zero vector must be normalized")
	}
}

func TestFromLoadsNormalizes(t *testing.T) {
	v := FromLoads([]int{1, 5, 3, 0, 2})
	want := Vector{5, 3, 2, 1, 0}
	if !v.Equal(want) {
		t.Fatalf("FromLoads = %v, want %v", v, want)
	}
}

func TestFromLoadsDoesNotAlias(t *testing.T) {
	in := []int{3, 1, 2}
	v := FromLoads(in)
	v[0] = 99
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("FromLoads aliased its input: %v", in)
	}
}

func TestFromLoadsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromLoads with negative load did not panic")
		}
	}()
	FromLoads([]int{1, -1})
}

func TestIsNormalized(t *testing.T) {
	cases := []struct {
		v    Vector
		want bool
	}{
		{Vector{}, true},
		{Vector{0}, true},
		{Vector{3, 2, 2, 0}, true},
		{Vector{2, 3}, false},
		{Vector{1, 0, 1}, false},
		{Vector{-1}, false},
	}
	for _, c := range cases {
		if got := c.v.IsNormalized(); got != c.want {
			t.Errorf("IsNormalized(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestNonEmpty(t *testing.T) {
	cases := []struct {
		v    Vector
		want int
	}{
		{Vector{}, 0},
		{Vector{0, 0}, 0},
		{Vector{5, 0, 0}, 1},
		{Vector{3, 2, 1}, 3},
		{Vector{1, 1, 0, 0}, 2},
	}
	for _, c := range cases {
		if got := c.v.NonEmpty(); got != c.want {
			t.Errorf("NonEmpty(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestGap(t *testing.T) {
	cases := []struct {
		v    Vector
		want int
	}{
		{Vector{2, 2, 2}, 0},
		{Vector{3, 2, 1}, 1},
		{Vector{6, 0, 0}, 4},
		{Vector{1, 1, 0}, 0},
	}
	for _, c := range cases {
		if got := c.v.Gap(); got != c.want {
			t.Errorf("Gap(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestAddMatchesDefinition verifies Fact 3.2: v (+) e_i computed by the
// O(log n) fast path equals "increment slot i, then sort".
func TestAddMatchesDefinition(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(8)
		v := Random(n, r.Intn(12), r)
		i := r.Intn(n)
		naive := v.Clone()
		naive[i]++
		naive.Normalize()
		fast := v.Clone()
		j := fast.Add(i)
		if !fast.Equal(naive) {
			t.Fatalf("Add(%d) on %v = %v, want %v", i, v, fast, naive)
		}
		if fast[j] != v[i]+1 {
			t.Fatalf("Add(%d) on %v reported slot %d, but fast[%d]=%d want %d",
				i, v, j, j, fast[j], v[i]+1)
		}
	}
}

// TestRemoveMatchesDefinition verifies the (-) half of Fact 3.2.
func TestRemoveMatchesDefinition(t *testing.T) {
	r := rng.New(103)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(8)
		v := Random(n, 1+r.Intn(12), r)
		s := v.NonEmpty()
		if s == 0 {
			continue
		}
		i := r.Intn(s)
		naive := v.Clone()
		naive[i]--
		naive.Normalize()
		fast := v.Clone()
		j := fast.Remove(i)
		if !fast.Equal(naive) {
			t.Fatalf("Remove(%d) on %v = %v, want %v", i, v, fast, naive)
		}
		if fast[j] != v[i]-1 {
			t.Fatalf("Remove(%d) on %v decremented slot %d badly", i, v, j)
		}
	}
}

func TestAddKeepsNormalized(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		v := Random(1+r.Intn(10), r.Intn(20), r)
		before := v.Total()
		v.Add(r.Intn(v.N()))
		return v.IsNormalized() && v.Total() == before+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveKeepsNormalized(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		v := Random(1+r.Intn(10), 1+r.Intn(20), r)
		s := v.NonEmpty()
		before := v.Total()
		v.Remove(r.Intn(s))
		return v.IsNormalized() && v.Total() == before-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRemoveInverse(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		v := Random(1+r.Intn(10), r.Intn(20), r)
		orig := v.Clone()
		j := v.Add(r.Intn(v.N()))
		v.Remove(j)
		return v.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRemovePanicsOnEmptyBin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Remove from empty bin did not panic")
		}
	}()
	v := Vector{2, 0}
	v.Remove(1)
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	v := Vector{1}
	v.Add(1)
}

func TestL1AndDelta(t *testing.T) {
	v := Vector{4, 2, 0}
	u := Vector{3, 2, 1}
	if got := v.L1(u); got != 2 {
		t.Fatalf("L1 = %d, want 2", got)
	}
	if got := v.Delta(u); got != 1 {
		t.Fatalf("Delta = %d, want 1", got)
	}
	if got := u.Delta(v); got != 1 {
		t.Fatalf("Delta is not symmetric: %d", got)
	}
}

func TestDeltaPanicsOnDifferentTotals(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Delta across different totals did not panic")
		}
	}()
	Vector{2, 0}.Delta(Vector{1, 0})
}

// TestDeltaMetricProperties checks symmetry and the triangle inequality
// on random triples from the same Omega_m.
func TestDeltaMetricProperties(t *testing.T) {
	r := rng.New(107)
	for trial := 0; trial < 1000; trial++ {
		n := 2 + r.Intn(6)
		m := r.Intn(15)
		a := Random(n, m, r)
		b := Random(n, m, r)
		c := Random(n, m, r)
		if a.Delta(b) != b.Delta(a) {
			t.Fatalf("Delta not symmetric on %v, %v", a, b)
		}
		if a.Delta(a) != 0 {
			t.Fatalf("Delta(a,a) != 0 for %v", a)
		}
		if a.Delta(c) > a.Delta(b)+b.Delta(c) {
			t.Fatalf("triangle inequality violated on %v, %v, %v", a, b, c)
		}
		if a.Delta(b) == 0 && !a.Equal(b) {
			t.Fatalf("Delta = 0 for distinct %v, %v", a, b)
		}
	}
}

// TestDeltaBound checks the paper's bound Delta(v,u) <= m - ceil(m/n).
func TestDeltaBound(t *testing.T) {
	r := rng.New(109)
	for trial := 0; trial < 500; trial++ {
		n := 2 + r.Intn(6)
		m := 1 + r.Intn(15)
		a := Random(n, m, r)
		b := Random(n, m, r)
		bound := m - (m+n-1)/n
		if d := a.Delta(b); d > bound {
			t.Fatalf("Delta(%v,%v) = %d exceeds bound %d", a, b, d, bound)
		}
	}
}

func TestKeyDistinguishesStates(t *testing.T) {
	states := Enumerate(4, 6)
	seen := make(map[string]bool, len(states))
	for _, s := range states {
		k := s.Key()
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
	}
}

func TestHistogramAndTailCounts(t *testing.T) {
	v := Vector{3, 3, 1, 0}
	h := v.Histogram()
	wantH := []int{1, 1, 0, 2}
	for l, c := range wantH {
		if h[l] != c {
			t.Fatalf("Histogram = %v, want %v", h, wantH)
		}
	}
	tail := v.TailCounts()
	wantT := []int{4, 3, 2, 2, 0}
	for l, c := range wantT {
		if tail[l] != c {
			t.Fatalf("TailCounts = %v, want %v", tail, wantT)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Vector{2, 1}
	c := v.Clone()
	c[0] = 9
	if v[0] != 2 {
		t.Fatal("Clone aliased the original")
	}
}
