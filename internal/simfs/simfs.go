// Package simfs is a deterministic, in-memory, fault-injecting
// filesystem implementing the vfs.FS seam of the durability stack. It
// exists so crash-recovery properties of internal/wal,
// internal/checkpoint and serve.Journal can be checked from
// systematically adversarial disk states — per-operation crash points,
// short and torn writes, injected ENOSPC/rename failures, fsyncs that
// lie — instead of the handful of hand-picked cut points real-disk
// tests can afford.
//
// # Durability model
//
// Every file tracks two lengths: the bytes written (data) and the
// bytes covered by a completed Sync (synced). The namespace is tracked
// twice the same way: cur is what a running process sees, dur is what
// has been made durable. A completed file Sync marks the file's bytes
// durable AND persists its current directory entry (the ext4
// ordered-mode behavior the WAL relies on); rename/remove/create
// become durable only at the next SyncDir of their directory (the
// checkpoint writer's temp-fsync-rename-dirsync sequence) or when the
// file itself is fsynced afterwards.
//
// A power cut (PowerCut) collapses the filesystem to its durable
// image: the namespace reverts to dur, and every file's content
// reverts to its synced prefix plus an arbitrary, caller-chosen
// fragment of the unsynced tail — the torn-write model; a fragment
// that splits a WAL record mid-way is exactly the torn tail replay
// must tolerate. Whatever survives the cut is then on stable media, so
// it is durable against the next cut too.
//
// # Crash points
//
// Every FS operation is numbered. CrashAfterOps(k) arms a crash at the
// k-th operation from now: that operation fails with ErrCrashed
// without effect, and so does everything after it — the moment the
// process "loses the disk". The harness then calls PowerCut and
// restarts the stack, which is the simulated equivalent of kill -9
// plus a machine power failure. Handles opened before the cut are
// fenced by a generation counter, so a straggling goroutine from the
// previous "process" can never write into the next incarnation's
// state.
//
// All operations are serialized on one mutex and consume no wall
// clock and no global randomness: given the same sequence of calls and
// the same injected faults, every run is bit-identical, which is what
// makes failing crash schedules replayable from a one-line seed.
package simfs

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"path"
	"path/filepath"
	"sort"
	"sync"

	"dynalloc/internal/vfs"
)

// ErrCrashed is returned by every operation at and after an armed
// crash point, and by operations on handles from a previous process
// incarnation (pre-PowerCut).
var ErrCrashed = errors.New("simfs: crashed (power cut pending)")

// ErrNoSpace is the default error of injected write faults.
var ErrNoSpace = errors.New("simfs: no space left on device (injected)")

// OpKind classifies FS operations for fault matching, crash-point
// accounting and per-kind op counters.
type OpKind int

const (
	OpMkdir OpKind = iota
	OpCreate
	OpCreateTemp
	OpOpen
	OpRead
	OpWrite
	OpSync
	OpClose
	OpReadFile
	OpReadDir
	OpGlob
	OpRename
	OpRemove
	OpStat
	OpSyncDir
	opKinds // sentinel: number of kinds
)

func (k OpKind) String() string {
	names := [...]string{"mkdir", "create", "createtemp", "open", "read", "write", "sync",
		"close", "readfile", "readdir", "glob", "rename", "remove", "stat", "syncdir"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Fault is one injected failure. It fires on the Nth operation of
// kind Op counted from the moment of injection, then disarms.
type Fault struct {
	Op  OpKind
	Nth int   // 1-based; 1 = the next matching operation
	Err error // error to return; nil means ErrNoSpace

	// Short makes an OpWrite fault absorb the first half of the buffer
	// before failing — a short write whose prefix is real.
	Short bool

	// LieSync makes an OpSync fault report success WITHOUT marking
	// anything durable: the classic lying fsync. Err is ignored.
	LieSync bool

	remaining int
}

// inode is one file's storage. Names live in the namespace maps; the
// inode only remembers its current live name so Sync can persist the
// right directory entry deterministically.
type inode struct {
	data    []byte
	synced  int    // durable prefix length
	curName string // current name in cur ("" if unlinked)
}

// FS is the simulated filesystem. It implements vfs.FS. The zero
// value is not usable; call New.
type FS struct {
	mu      sync.Mutex
	cur     map[string]*inode // live namespace
	dur     map[string]*inode // durable namespace
	dirs    map[string]bool   // existing directories (durable immediately)
	faults  []*Fault
	opCount int64
	byKind  [opKinds]int64
	crashAt int64 // absolute opCount that crashes; 0 = unarmed
	crashed bool
	gen     int // incarnation; bumped by PowerCut to fence old handles
	tmpSeq  int // deterministic CreateTemp suffixes
}

// New returns an empty simulated filesystem containing only the root
// directory.
func New() *FS {
	return &FS{
		cur:  map[string]*inode{},
		dur:  map[string]*inode{},
		dirs: map[string]bool{"/": true, ".": true},
	}
}

func clean(p string) string { return path.Clean(p) }

// opLocked numbers one operation and decides its fate: ErrCrashed when
// crashed or at the armed crash point, an injected fault when one
// matches, nil otherwise.
func (s *FS) opLocked(kind OpKind) (*Fault, error) {
	if s.crashed {
		return nil, ErrCrashed
	}
	s.opCount++
	s.byKind[kind]++
	if s.crashAt > 0 && s.opCount >= s.crashAt {
		s.crashed = true
		return nil, ErrCrashed
	}
	for i, f := range s.faults {
		if f.Op != kind {
			continue
		}
		f.remaining--
		if f.remaining > 0 {
			continue
		}
		s.faults = append(s.faults[:i], s.faults[i+1:]...)
		return f, nil
	}
	return nil, nil
}

func faultErr(f *Fault) error {
	if f.Err != nil {
		return f.Err
	}
	return ErrNoSpace
}

// Inject arms one fault. Faults of the same kind fire in injection
// order; each disarms after firing.
func (s *FS) Inject(f Fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.Nth < 1 {
		f.Nth = 1
	}
	cp := f
	cp.remaining = f.Nth
	s.faults = append(s.faults, &cp)
}

// FailOp arms a plain error fault: the nth subsequent operation of the
// given kind returns err (ErrNoSpace when nil).
func (s *FS) FailOp(op OpKind, nth int, err error) { s.Inject(Fault{Op: op, Nth: nth, Err: err}) }

// ShortWrite arms a short-write fault: the nth subsequent Write
// absorbs half its buffer, then fails with ErrNoSpace.
func (s *FS) ShortWrite(nth int) { s.Inject(Fault{Op: OpWrite, Nth: nth, Short: true}) }

// LieOnSync arms a lying fsync: the nth subsequent Sync reports
// success without making anything durable.
func (s *FS) LieOnSync(nth int) { s.Inject(Fault{Op: OpSync, Nth: nth, LieSync: true}) }

// CrashAfterOps arms a crash at the k-th FS operation from now
// (k >= 1): that operation and every later one fail with ErrCrashed.
func (s *FS) CrashAfterOps(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k < 1 {
		k = 1
	}
	s.crashAt = s.opCount + int64(k)
}

// CrashNow crashes immediately: every subsequent operation fails with
// ErrCrashed until PowerCut.
func (s *FS) CrashNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = true
}

// Crashed reports whether the simulated process has lost the disk.
func (s *FS) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// OpCount returns the total number of operations attempted (crashed
// and faulted ones included).
func (s *FS) OpCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opCount
}

// Ops returns how many operations of one kind have been attempted.
func (s *FS) Ops(kind OpKind) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKind[kind]
}

// TornPolicy decides, at power-cut time, how many of a file's unsynced
// tail bytes survive (0 <= kept <= unsynced). The zero policy (nil)
// keeps none — the strictest cut.
type TornPolicy func(name string, unsynced int) int

// PowerCut collapses the filesystem to its durable image and starts a
// new process incarnation: the namespace reverts to the durable
// entries, each file keeps its synced prefix plus keep(name, unsynced)
// bytes of unsynced tail (nil keeps none), the crash state clears, all
// pending faults are dropped, and handles from before the cut are
// permanently fenced. Bytes that survive are durable from now on.
func (s *FS) PowerCut(keep TornPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.dur))
	for name := range s.dur {
		names = append(names, name)
	}
	sort.Strings(names)
	cur := make(map[string]*inode, len(names))
	seen := make(map[*inode]bool, len(names))
	for _, name := range names {
		ino := s.dur[name]
		cur[name] = ino
		if seen[ino] {
			continue
		}
		seen[ino] = true
		kept := ino.synced
		if unsynced := len(ino.data) - ino.synced; unsynced > 0 && keep != nil {
			extra := keep(name, unsynced)
			if extra < 0 {
				extra = 0
			}
			if extra > unsynced {
				extra = unsynced
			}
			kept += extra
		}
		ino.data = ino.data[:kept]
		ino.synced = kept
		ino.curName = name
	}
	s.cur = cur
	s.crashed = false
	s.crashAt = 0
	s.faults = nil
	s.gen++
}

// --- vfs.FS implementation ---

var _ vfs.FS = (*FS)(nil)

func notExist(op, p string) error { return &iofs.PathError{Op: op, Path: p, Err: iofs.ErrNotExist} }
func exist(op, p string) error    { return &iofs.PathError{Op: op, Path: p, Err: iofs.ErrExist} }

// MkdirAll implements vfs.FS. Directories are durable immediately (a
// modeling simplification: the stack creates its directory once at
// boot, long before any state worth losing exists).
func (s *FS) MkdirAll(dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.opLocked(OpMkdir); err != nil {
		return err
	}
	for p := clean(dir); ; p = path.Dir(p) {
		s.dirs[p] = true
		if p == "/" || p == "." {
			return nil
		}
	}
}

func (s *FS) createLocked(op, name string) (*inode, error) {
	name = clean(name)
	if !s.dirs[path.Dir(name)] {
		return nil, notExist(op, name)
	}
	if _, ok := s.cur[name]; ok || s.dirs[name] {
		return nil, exist(op, name)
	}
	ino := &inode{curName: name}
	s.cur[name] = ino
	return ino, nil
}

// Create implements vfs.FS (O_CREATE|O_EXCL|O_WRONLY semantics).
func (s *FS) Create(name string) (vfs.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, err := s.opLocked(OpCreate); err != nil {
		return nil, err
	} else if f != nil {
		return nil, faultErr(f)
	}
	ino, err := s.createLocked("create", name)
	if err != nil {
		return nil, err
	}
	return &handle{fs: s, ino: ino, name: clean(name), gen: s.gen, writable: true}, nil
}

// CreateTemp implements vfs.FS with deterministic unique suffixes.
func (s *FS) CreateTemp(dir, pattern string) (vfs.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, err := s.opLocked(OpCreateTemp); err != nil {
		return nil, err
	} else if f != nil {
		return nil, faultErr(f)
	}
	prefix, suffix := pattern, ""
	if i := lastIndexByte(pattern, '*'); i >= 0 {
		prefix, suffix = pattern[:i], pattern[i+1:]
	}
	for {
		s.tmpSeq++
		name := clean(path.Join(dir, fmt.Sprintf("%s%08d%s", prefix, s.tmpSeq, suffix)))
		if _, ok := s.cur[name]; ok {
			continue
		}
		ino, err := s.createLocked("createtemp", name)
		if err != nil {
			return nil, err
		}
		return &handle{fs: s, ino: ino, name: name, gen: s.gen, writable: true}, nil
	}
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Open implements vfs.FS (read-only).
func (s *FS) Open(name string) (vfs.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, err := s.opLocked(OpOpen); err != nil {
		return nil, err
	} else if f != nil {
		return nil, faultErr(f)
	}
	name = clean(name)
	ino, ok := s.cur[name]
	if !ok {
		return nil, notExist("open", name)
	}
	return &handle{fs: s, ino: ino, name: name, gen: s.gen}, nil
}

// ReadFile implements vfs.FS.
func (s *FS) ReadFile(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, err := s.opLocked(OpReadFile); err != nil {
		return nil, err
	} else if f != nil {
		return nil, faultErr(f)
	}
	name = clean(name)
	ino, ok := s.cur[name]
	if !ok {
		return nil, notExist("readfile", name)
	}
	return append([]byte(nil), ino.data...), nil
}

// ReadDir implements vfs.FS.
func (s *FS) ReadDir(dir string) ([]vfs.DirEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, err := s.opLocked(OpReadDir); err != nil {
		return nil, err
	} else if f != nil {
		return nil, faultErr(f)
	}
	dir = clean(dir)
	if !s.dirs[dir] {
		return nil, notExist("readdir", dir)
	}
	var out []vfs.DirEntry
	for name := range s.cur {
		if path.Dir(name) == dir {
			out = append(out, vfs.DirEntry{Name: path.Base(name)})
		}
	}
	for d := range s.dirs {
		if d != dir && path.Dir(d) == dir {
			out = append(out, vfs.DirEntry{Name: path.Base(d), IsDir: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Glob implements vfs.FS (filepath.Match syntax, sorted results).
func (s *FS) Glob(pattern string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, err := s.opLocked(OpGlob); err != nil {
		return nil, err
	} else if f != nil {
		return nil, faultErr(f)
	}
	var out []string
	for name := range s.cur {
		ok, err := filepath.Match(pattern, name)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, name)
		}
	}
	for d := range s.dirs {
		if ok, _ := filepath.Match(pattern, d); ok {
			out = append(out, d)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Rename implements vfs.FS (POSIX: replaces newPath when present).
func (s *FS) Rename(oldPath, newPath string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, err := s.opLocked(OpRename); err != nil {
		return err
	} else if f != nil {
		return faultErr(f)
	}
	oldPath, newPath = clean(oldPath), clean(newPath)
	ino, ok := s.cur[oldPath]
	if !ok {
		return notExist("rename", oldPath)
	}
	if !s.dirs[path.Dir(newPath)] {
		return notExist("rename", newPath)
	}
	if displaced, ok := s.cur[newPath]; ok && displaced.curName == newPath {
		displaced.curName = ""
	}
	delete(s.cur, oldPath)
	s.cur[newPath] = ino
	ino.curName = newPath
	return nil
}

// Remove implements vfs.FS. The durable entry (if any) survives until
// the next SyncDir — a removed-but-unsynced file resurrects at the
// next power cut, exactly like a real unsynced directory.
func (s *FS) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, err := s.opLocked(OpRemove); err != nil {
		return err
	} else if f != nil {
		return faultErr(f)
	}
	name = clean(name)
	ino, ok := s.cur[name]
	if !ok {
		return notExist("remove", name)
	}
	if ino.curName == name {
		ino.curName = ""
	}
	delete(s.cur, name)
	return nil
}

// Stat implements vfs.FS.
func (s *FS) Stat(name string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, err := s.opLocked(OpStat); err != nil {
		return 0, err
	} else if f != nil {
		return 0, faultErr(f)
	}
	name = clean(name)
	if ino, ok := s.cur[name]; ok {
		return int64(len(ino.data)), nil
	}
	if s.dirs[name] {
		return 0, nil
	}
	return 0, notExist("stat", name)
}

// SyncDir implements vfs.FS: the directory's live entries become the
// durable ones (creates, renames and removes in dir are now
// power-cut-proof; file *contents* still need their own Sync).
func (s *FS) SyncDir(dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, err := s.opLocked(OpSyncDir); err != nil {
		return err
	} else if f != nil {
		return faultErr(f)
	}
	dir = clean(dir)
	if !s.dirs[dir] {
		return notExist("syncdir", dir)
	}
	for name := range s.dur {
		if path.Dir(name) == dir {
			if _, live := s.cur[name]; !live {
				delete(s.dur, name)
			}
		}
	}
	for name, ino := range s.cur {
		if path.Dir(name) == dir {
			s.dur[name] = ino
		}
	}
	return nil
}

// --- handles ---

// handle is one open file. Write-handles append; read-handles stream
// from a cursor. A handle from a previous incarnation (pre-PowerCut)
// fails every operation with ErrCrashed.
type handle struct {
	fs       *FS
	ino      *inode
	name     string
	gen      int
	off      int
	writable bool
	closed   bool
}

func (h *handle) Name() string { return h.name }

func (h *handle) guardLocked(kind OpKind) (*Fault, error) {
	if h.gen != h.fs.gen {
		return nil, ErrCrashed
	}
	if h.closed {
		return nil, iofs.ErrClosed
	}
	return h.fs.opLocked(kind)
}

func (h *handle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.guardLocked(OpWrite)
	if err != nil {
		return 0, err
	}
	if !h.writable {
		return 0, errors.New("simfs: file not open for writing")
	}
	if f != nil {
		if f.Short {
			n := len(p) / 2
			h.ino.data = append(h.ino.data, p[:n]...)
			return n, faultErr(f)
		}
		return 0, faultErr(f)
	}
	h.ino.data = append(h.ino.data, p...)
	return len(p), nil
}

// Sync makes the file's bytes durable and persists its current
// directory entry (dropping any stale durable name of the same file).
func (h *handle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.guardLocked(OpSync)
	if err != nil {
		return err
	}
	if f != nil {
		if f.LieSync {
			return nil // the lie: success reported, nothing durable
		}
		return faultErr(f)
	}
	if !h.writable {
		return nil
	}
	h.ino.synced = len(h.ino.data)
	if name := h.ino.curName; name != "" {
		for durName, ino := range h.fs.dur {
			if ino == h.ino && durName != name {
				delete(h.fs.dur, durName)
			}
		}
		h.fs.dur[name] = h.ino
	}
	return nil
}

func (h *handle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.guardLocked(OpRead)
	if err != nil {
		return 0, err
	}
	if f != nil {
		return 0, faultErr(f)
	}
	if h.writable {
		return 0, errors.New("simfs: file not open for reading")
	}
	if h.off >= len(h.ino.data) {
		return 0, io.EOF
	}
	n := copy(p, h.ino.data[h.off:])
	h.off += n
	return n, nil
}

func (h *handle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.gen != h.fs.gen {
		return ErrCrashed
	}
	if h.closed {
		return iofs.ErrClosed
	}
	f, err := h.fs.opLocked(OpClose)
	h.closed = true
	if err != nil {
		return err
	}
	if f != nil {
		return faultErr(f)
	}
	return nil
}

// --- test manipulation helpers (not FS operations; never counted) ---

// Truncate cuts name to size bytes, as a test's stand-in for an
// external corruption. The truncation is immediately durable.
func (s *FS) Truncate(name string, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	name = clean(name)
	ino, ok := s.cur[name]
	if !ok {
		return notExist("truncate", name)
	}
	if size < 0 || size > int64(len(ino.data)) {
		return fmt.Errorf("simfs: truncate %s to %d (size %d)", name, size, len(ino.data))
	}
	ino.data = ino.data[:size]
	if ino.synced > int(size) {
		ino.synced = int(size)
	}
	return nil
}

// Corrupt XORs the byte at off with x — bit rot on demand.
func (s *FS) Corrupt(name string, off int64, x byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	name = clean(name)
	ino, ok := s.cur[name]
	if !ok {
		return notExist("corrupt", name)
	}
	if off < 0 || off >= int64(len(ino.data)) {
		return fmt.Errorf("simfs: corrupt %s at %d (size %d)", name, off, len(ino.data))
	}
	ino.data[off] ^= x
	return nil
}

// WriteFile plants a fully-durable file (parents auto-created) — test
// setup for pre-existing disk states.
func (s *FS) WriteFile(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	name = clean(name)
	for p := path.Dir(name); ; p = path.Dir(p) {
		s.dirs[p] = true
		if p == "/" || p == "." {
			break
		}
	}
	ino := &inode{data: append([]byte(nil), data...), curName: name}
	ino.synced = len(ino.data)
	s.cur[name] = ino
	s.dur[name] = ino
	return nil
}

// Size returns a file's live length, -1 when absent.
func (s *FS) Size(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ino, ok := s.cur[clean(name)]; ok {
		return int64(len(ino.data))
	}
	return -1
}

// DurableLen returns how many of a file's bytes would survive a
// strict (no torn tail) power cut right now; -1 when the file has no
// durable directory entry at all.
func (s *FS) DurableLen(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ino, ok := s.dur[clean(name)]; ok {
		return int64(ino.synced)
	}
	return -1
}

// Clone returns an independent deep copy of the filesystem (contents,
// durable state, directories; not faults, crash state or open
// handles). Tests fork trials from one prepared disk image with it.
func (s *FS) Clone() *FS {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := New()
	copied := map[*inode]*inode{}
	cp := func(ino *inode) *inode {
		if d, ok := copied[ino]; ok {
			return d
		}
		d := &inode{data: append([]byte(nil), ino.data...), synced: ino.synced, curName: ino.curName}
		copied[ino] = d
		return d
	}
	for name, ino := range s.cur {
		c.cur[name] = cp(ino)
	}
	for name, ino := range s.dur {
		c.dur[name] = cp(ino)
	}
	for d := range s.dirs {
		c.dirs[d] = true
	}
	c.tmpSeq = s.tmpSeq
	return c
}
