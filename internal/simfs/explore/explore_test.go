package explore_test

import (
	"flag"
	"os"
	"reflect"
	"testing"
	"time"

	"dynalloc/internal/simfs/explore"
	"dynalloc/internal/wal"
)

// Repro flags: a failing schedule prints a one-line
// `go test ... -run TestReplaySchedule -explore.seed=S -explore.schedule=K`
// command; these flags feed that entry point.
var (
	exploreSeed       = flag.Uint64("explore.seed", 1, "root seed for TestReplaySchedule")
	exploreSchedule   = flag.Int("explore.schedule", -1, "schedule index for TestReplaySchedule (-1 skips)")
	exploreBurst      = flag.Int("explore.burst", 0, "burst size for TestReplaySchedule (0/1 replays per-record)")
	exploreAdmitBatch = flag.Int("explore.admitbatch", 0, "admission group ceiling for TestReplaySchedule (0/1 replays per-ball)")
	exploreMaxBatch   = flag.Int("explore.maxbatch", 0, "journal batch ceiling for TestReplaySchedule burst/admit-batch mode")
	exploreChaos      = flag.Int("explore.chaos", 0, "chaos faults per round for TestReplaySchedule (0 = none)")
	exploreWorkers    = flag.Int("explore.workers", 0, "restore apply workers for TestReplaySchedule (0 = suite default, 1 = sequential)")

	// exploreSchedules overrides the sweep width of every TestExplore*
	// sweep; the nightly soak passes -explore.schedules=10000.
	exploreSchedules = flag.Int("explore.schedules", 0, "schedules per sweep (0 = suite default: 500 short, 2000 full)")
)

// sweepSchedules resolves the sweep width: the -explore.schedules flag
// wins, then the full-suite default, then the config's own (short) one.
func sweepSchedules(short int) int {
	if *exploreSchedules > 0 {
		return *exploreSchedules
	}
	if !testing.Short() {
		return 2000
	}
	return short
}

// writeReproArtifact drops the repro lines where CI can pick them up as
// an artifact (EXPLORE_REPRO_FILE, set by the workflow).
func writeReproArtifact(t *testing.T, res explore.Result) {
	path := os.Getenv("EXPLORE_REPRO_FILE")
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte(res.Report()), 0o644); err != nil {
		t.Logf("could not write repro artifact %s: %v", path, err)
		return
	}
	t.Logf("repro lines written to %s", path)
}

// TestExplore is the main sweep: 500 schedules in -short (the CI sim
// job), 2000 otherwise. Any violation fails the test with a one-line
// repro per schedule.
func TestExplore(t *testing.T) {
	cfg := explore.Default()
	cfg.Seed = *exploreSeed
	cfg.Schedules = sweepSchedules(cfg.Schedules)

	start := time.Now()
	res := explore.Explore(cfg)
	elapsed := time.Since(start)
	t.Logf("explored %d schedules in %v: %+v", res.Schedules, elapsed, res.Stats)

	// Sanity: the sweep must actually exercise the machinery. Every
	// schedule restores once per round, and the traffic mix plus the
	// 4x-mutations crash span make mid-traffic cuts, torn tails and
	// completed checkpoints all common — a sweep without them would be
	// silently exploring nothing.
	if res.Schedules != cfg.Schedules {
		t.Errorf("ran %d schedules, want %d", res.Schedules, cfg.Schedules)
	}
	if want := cfg.Schedules * cfg.Rounds; res.Stats.Restores != want {
		t.Errorf("restores = %d, want %d", res.Stats.Restores, want)
	}
	if res.Stats.MidOpCuts < cfg.Schedules/4 {
		t.Errorf("only %d/%d rounds cut mid-traffic; crash points are not landing", res.Stats.MidOpCuts, cfg.Schedules*cfg.Rounds)
	}
	if res.Stats.TornCuts < cfg.Schedules/8 {
		t.Errorf("only %d torn cuts; power cuts are not tearing tails", res.Stats.TornCuts)
	}
	if res.Stats.Checkpoints < cfg.Schedules {
		t.Errorf("only %d checkpoints completed; checkpoint path unexercised", res.Stats.Checkpoints)
	}
	// Every restore runs with the default 2 parallel workers and is
	// cross-checked against a sequential restore of the same cut — the
	// sweep doubles as the parallel ≡ sequential equivalence suite.
	if want := cfg.Schedules * cfg.Rounds; res.Stats.EquivChecks != want {
		t.Errorf("equivalence checks = %d, want %d; parallel restores are not being cross-checked", res.Stats.EquivChecks, want)
	}

	if res.Failed() {
		writeReproArtifact(t, res)
		t.Fatalf("durability violations:\n%s", res.Report())
	}
	if testing.Short() && elapsed > 30*time.Second {
		t.Fatalf("short sweep took %v, budget 30s", elapsed)
	}
}

// TestExploreBatched sweeps the group-commit pipeline: bursts of
// mutations drained as multi-record WAL batches (SyncWriter mode), so
// the armed power cut regularly lands inside a batch's single write or
// its one group fsync. The invariant is the same — a torn batch must
// replay as a clean contiguous prefix of the acknowledged history.
func TestExploreBatched(t *testing.T) {
	cfg := explore.DefaultBatched()
	cfg.Seed = *exploreSeed
	cfg.Schedules = sweepSchedules(cfg.Schedules)

	start := time.Now()
	res := explore.Explore(cfg)
	elapsed := time.Since(start)
	t.Logf("explored %d batched schedules in %v: %+v", res.Schedules, elapsed, res.Stats)

	if res.Schedules != cfg.Schedules {
		t.Errorf("ran %d schedules, want %d", res.Schedules, cfg.Schedules)
	}
	if want := cfg.Schedules * cfg.Rounds; res.Stats.Restores != want {
		t.Errorf("restores = %d, want %d", res.Stats.Restores, want)
	}
	// Every segment tail in burst mode is written by AppendBatch, so a
	// torn cut here IS a torn batch: the sweep is vacuous unless cuts
	// land mid-traffic and tear tails at a healthy rate.
	if res.Stats.MidOpCuts < cfg.Schedules/4 {
		t.Errorf("only %d/%d rounds cut mid-traffic; crash points are not landing", res.Stats.MidOpCuts, cfg.Schedules*cfg.Rounds)
	}
	if res.Stats.TornCuts < cfg.Schedules/8 {
		t.Errorf("only %d torn cuts; power cuts are not tearing batches", res.Stats.TornCuts)
	}
	if res.Stats.Checkpoints < cfg.Schedules {
		t.Errorf("only %d checkpoints completed; checkpoint path unexercised", res.Stats.Checkpoints)
	}

	if res.Failed() {
		writeReproArtifact(t, res)
		t.Fatalf("durability violations:\n%s", res.Report())
	}
	if testing.Short() && elapsed > 30*time.Second {
		t.Fatalf("short batched sweep took %v, budget 30s", elapsed)
	}
}

// TestExploreAdmitBatched sweeps the batched admission pipeline:
// admission traffic arrives in groups of up to 6 balls driven through
// Store.AdmitBatch, journaled through the batch hook's single
// seq-range reservation, so the armed power cut regularly lands in the
// store-apply/journal-push window with a group half-persisted. The
// reference history follows AdmitScratch.Order — the invariant demands
// a torn group replay as a clean prefix of the APPLY order, which is
// exactly what would break if AdmitBatch's per-shard application and
// the batch hook's seq reservation ever disagreed.
func TestExploreAdmitBatched(t *testing.T) {
	cfg := explore.DefaultAdmitBatched()
	cfg.Seed = *exploreSeed
	cfg.Schedules = sweepSchedules(cfg.Schedules)

	start := time.Now()
	res := explore.Explore(cfg)
	elapsed := time.Since(start)
	t.Logf("explored %d admit-batched schedules in %v: %+v", res.Schedules, elapsed, res.Stats)

	if res.Schedules != cfg.Schedules {
		t.Errorf("ran %d schedules, want %d", res.Schedules, cfg.Schedules)
	}
	if want := cfg.Schedules * cfg.Rounds; res.Stats.Restores != want {
		t.Errorf("restores = %d, want %d", res.Stats.Restores, want)
	}
	// The sweep is vacuous unless it actually drives multi-ball groups
	// AND cuts power mid-traffic: a healthy round fits many admission
	// groups, so demand at least one per round on average, plus the
	// usual mid-cut / torn-tail / checkpoint coverage floors.
	if want := int64(cfg.Schedules * cfg.Rounds); res.Stats.BatchedAdmits < want {
		t.Errorf("only %d batched admits across %d rounds; admission groups are not forming", res.Stats.BatchedAdmits, want)
	}
	if res.Stats.MidOpCuts < cfg.Schedules/4 {
		t.Errorf("only %d/%d rounds cut mid-traffic; crash points are not landing", res.Stats.MidOpCuts, cfg.Schedules*cfg.Rounds)
	}
	if res.Stats.TornCuts < cfg.Schedules/8 {
		t.Errorf("only %d torn cuts; power cuts are not tearing admission groups", res.Stats.TornCuts)
	}
	if res.Stats.Checkpoints < cfg.Schedules {
		t.Errorf("only %d checkpoints completed; checkpoint path unexercised", res.Stats.Checkpoints)
	}

	if res.Failed() {
		writeReproArtifact(t, res)
		t.Fatalf("durability violations:\n%s", res.Report())
	}
	if testing.Short() && elapsed > 30*time.Second {
		t.Fatalf("short admit-batched sweep took %v, budget 30s", elapsed)
	}
}

// TestExploreAdmitBatchedDeterministic: admission group sizes, bin
// choices and the seq order the batch hook reserves are all pure
// functions of the schedule, so two identical admit-batched sweeps
// must be bit-identical — the property every -explore.admitbatch
// repro line depends on.
func TestExploreAdmitBatchedDeterministic(t *testing.T) {
	cfg := explore.DefaultAdmitBatched()
	cfg.Schedules = 40
	a := explore.Explore(cfg)
	b := explore.Explore(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical admit-batched explorations diverged:\n%+v\n%+v", a, b)
	}
	if a.Failed() {
		t.Fatalf("admit-batched determinism sweep hit violations:\n%s", a.Report())
	}
}

// TestExploreChaos sweeps the continuous-chaos configuration: on top
// of the armed power cut, every round arms transient write-path faults
// mid-traffic, so appends, fsyncs, rotations and checkpoints fail
// while mutations keep flowing. This is the explorer-side analogue of
// the serve.ChaosInjector disk faults, compressed to simulation time;
// the WAL must abort and heal, and every restore must refuse to replay
// across the seq gaps the dropped records leave.
func TestExploreChaos(t *testing.T) {
	cfg := explore.DefaultChaos()
	cfg.Seed = *exploreSeed
	cfg.Schedules = sweepSchedules(cfg.Schedules)

	start := time.Now()
	res := explore.Explore(cfg)
	elapsed := time.Since(start)
	t.Logf("explored %d chaos schedules in %v: %+v", res.Schedules, elapsed, res.Stats)

	if res.Schedules != cfg.Schedules {
		t.Errorf("ran %d schedules, want %d", res.Schedules, cfg.Schedules)
	}
	if want := cfg.Schedules * cfg.Rounds; res.Stats.Restores != want {
		t.Errorf("restores = %d, want %d", res.Stats.Restores, want)
	}
	// Every round arms exactly ChaosFaults faults, and the write-heavy
	// fault menu must actually bite: a sweep where the journal never
	// degrades before the cut is exploring the same space as TestExplore
	// and calling it chaos.
	if want := int64(cfg.Schedules * cfg.Rounds * cfg.ChaosFaults); res.Stats.FaultsArmed != want {
		t.Errorf("faults armed = %d, want %d", res.Stats.FaultsArmed, want)
	}
	if res.Stats.DegradedRounds < cfg.Schedules {
		t.Errorf("only %d/%d rounds degraded; chaos faults are not biting the journal",
			res.Stats.DegradedRounds, cfg.Schedules*cfg.Rounds)
	}
	if res.Stats.MidOpCuts < cfg.Schedules/4 {
		t.Errorf("only %d/%d rounds cut mid-traffic; crash points are not landing", res.Stats.MidOpCuts, cfg.Schedules*cfg.Rounds)
	}

	if res.Failed() {
		writeReproArtifact(t, res)
		t.Fatalf("durability violations:\n%s", res.Report())
	}
	if testing.Short() && elapsed > 30*time.Second {
		t.Fatalf("short chaos sweep took %v, budget 30s", elapsed)
	}
}

// TestExploreChaosDeterministic: chaos fault points are drawn from the
// schedule stream, so chaos sweeps must replay bit-identically too —
// the property every -explore.chaos repro line depends on.
func TestExploreChaosDeterministic(t *testing.T) {
	cfg := explore.DefaultChaos()
	cfg.Schedules = 40
	a := explore.Explore(cfg)
	b := explore.Explore(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical chaos explorations diverged:\n%+v\n%+v", a, b)
	}
	if a.Failed() {
		t.Fatalf("chaos determinism sweep hit violations:\n%s", a.Report())
	}
}

// TestExploreChaosFindsGapSkipBug is the chaos sweep's mutation
// self-check: reinstate the historical "continuity check only after
// torn segments" replay defect and demand the chaos sweep rediscover
// it. Only chaos schedules can: the defect needs a CLEANLY-ended
// segment followed by a seq gap — the exact shape an aborted segment
// leaves when a failed append's bytes never reached the disk — and
// only injected write faults manufacture that shape.
func TestExploreChaosFindsGapSkipBug(t *testing.T) {
	wal.SetLegacyGapSkipForTest(true)
	defer wal.SetLegacyGapSkipForTest(false)

	cfg := explore.DefaultChaos()
	cfg.Schedules = 200
	cfg.MaxViolations = 1
	res := explore.Explore(cfg)
	if !res.Failed() {
		t.Fatalf("chaos explorer missed the reintroduced gap-skip bug in %d schedules", cfg.Schedules)
	}
	v := res.Violations[0]
	t.Logf("rediscovered after %d chaos schedules: %v", res.Schedules, &v)

	// The repro must replay to the same violation while the bug is in...
	rv := explore.RunSchedule(cfg, v.Schedule)
	if rv == nil || rv.Round != v.Round || rv.Msg != v.Msg {
		t.Fatalf("repro did not replay: got %v, want %v", rv, &v)
	}

	// ...and the very same schedule must pass once the fix is back.
	wal.SetLegacyGapSkipForTest(false)
	if v2 := explore.RunSchedule(cfg, v.Schedule); v2 != nil {
		t.Fatalf("schedule %d fails even without the mutation: %v", v.Schedule, v2)
	}
}

// TestExploreBatchedDeterministic: batch boundaries must be a pure
// function of the schedule (that is what SyncWriter mode buys), so two
// identical batched sweeps must be bit-identical too.
func TestExploreBatchedDeterministic(t *testing.T) {
	cfg := explore.DefaultBatched()
	cfg.Schedules = 40
	a := explore.Explore(cfg)
	b := explore.Explore(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical batched explorations diverged:\n%+v\n%+v", a, b)
	}
	if a.Failed() {
		t.Fatalf("batched determinism sweep hit violations:\n%s", a.Report())
	}
}

// TestReplaySchedule replays one schedule named on the command line —
// the entry point every violation's repro line points at.
func TestReplaySchedule(t *testing.T) {
	if *exploreSchedule < 0 {
		t.Skip("replay entry point: pass -explore.seed and -explore.schedule")
	}
	cfg := explore.Default()
	if *exploreBurst > 1 {
		cfg = explore.DefaultBatched()
		cfg.Burst = *exploreBurst
		cfg.MaxBatch = *exploreMaxBatch
	}
	if *exploreAdmitBatch > 1 {
		cfg.AdmitBatch = *exploreAdmitBatch
		cfg.MaxBatch = *exploreMaxBatch
	}
	cfg.Seed = *exploreSeed
	cfg.ChaosFaults = *exploreChaos
	if *exploreWorkers > 0 {
		cfg.RestoreWorkers = *exploreWorkers
	}
	if v := explore.RunSchedule(cfg, *exploreSchedule); v != nil {
		t.Fatalf("%v\n\t%s", v, v.Repro())
	}
	t.Logf("seed=%d schedule=%d burst=%d admitbatch=%d chaos=%d passes",
		cfg.Seed, *exploreSchedule, cfg.Burst, cfg.AdmitBatch, cfg.ChaosFaults)
}

// TestExploreDeterministic runs the same sweep twice and demands
// bit-identical results — the property every repro line depends on.
func TestExploreDeterministic(t *testing.T) {
	cfg := explore.Default()
	cfg.Schedules = 40
	a := explore.Explore(cfg)
	b := explore.Explore(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical explorations diverged:\n%+v\n%+v", a, b)
	}
	if a.Failed() {
		t.Fatalf("determinism sweep hit violations:\n%s", a.Report())
	}
}

// TestExploreFindsLegacyTornStopBug is the harness's mutation
// self-check: re-introduce the old "stop replay at the first torn
// segment" defect (a double-crash could silently drop post-restart
// mutations — fixed in an earlier release) behind its test hook and
// demand the explorer rediscover it within a bounded number of
// schedules. A fault-injection harness that cannot re-find a bug it
// was built for is vacuous.
func TestExploreFindsLegacyTornStopBug(t *testing.T) {
	wal.SetLegacyTornStopForTest(true)
	defer wal.SetLegacyTornStopForTest(false)

	cfg := explore.Default()
	cfg.Schedules = 120
	cfg.MaxViolations = 1
	res := explore.Explore(cfg)
	if !res.Failed() {
		t.Fatalf("explorer missed the reintroduced torn-stop bug in %d schedules", cfg.Schedules)
	}
	v := res.Violations[0]
	t.Logf("rediscovered after %d schedules: %v", res.Schedules, &v)

	// The repro must replay to the same violation while the bug is in...
	rv := explore.RunSchedule(cfg, v.Schedule)
	if rv == nil || rv.Round != v.Round || rv.Msg != v.Msg {
		t.Fatalf("repro did not replay: got %v, want %v", rv, &v)
	}

	// ...and the very same schedule must pass once the fix is back —
	// pinning the violation on the mutation, not on the harness.
	wal.SetLegacyTornStopForTest(false)
	if v2 := explore.RunSchedule(cfg, v.Schedule); v2 != nil {
		t.Fatalf("schedule %d fails even without the mutation: %v", v.Schedule, v2)
	}
}

// TestExploreAdmitBatchedFindsLegacyTornStopBug is the same mutation
// self-check through the batched admission pipeline: the admit-batched
// sweep must also rediscover the torn-stop defect, proving its
// mid-group power cuts produce torn multi-record tails the replay
// actually has to survive.
func TestExploreAdmitBatchedFindsLegacyTornStopBug(t *testing.T) {
	wal.SetLegacyTornStopForTest(true)
	defer wal.SetLegacyTornStopForTest(false)

	cfg := explore.DefaultAdmitBatched()
	cfg.Schedules = 120
	cfg.MaxViolations = 1
	res := explore.Explore(cfg)
	if !res.Failed() {
		t.Fatalf("admit-batched explorer missed the reintroduced torn-stop bug in %d schedules", cfg.Schedules)
	}
	v := res.Violations[0]
	t.Logf("rediscovered after %d admit-batched schedules: %v", res.Schedules, &v)

	rv := explore.RunSchedule(cfg, v.Schedule)
	if rv == nil || rv.Round != v.Round || rv.Msg != v.Msg {
		t.Fatalf("repro did not replay: got %v, want %v", rv, &v)
	}

	wal.SetLegacyTornStopForTest(false)
	if v2 := explore.RunSchedule(cfg, v.Schedule); v2 != nil {
		t.Fatalf("schedule %d fails even without the mutation: %v", v.Schedule, v2)
	}
}

// TestExploreBatchedFindsLegacyTornStopBug is the same mutation
// self-check through the group-commit pipeline: the batched sweep must
// also rediscover the torn-stop defect, proving its mid-batch power
// cuts produce torn tails the replay actually has to survive.
func TestExploreBatchedFindsLegacyTornStopBug(t *testing.T) {
	wal.SetLegacyTornStopForTest(true)
	defer wal.SetLegacyTornStopForTest(false)

	cfg := explore.DefaultBatched()
	cfg.Schedules = 120
	cfg.MaxViolations = 1
	res := explore.Explore(cfg)
	if !res.Failed() {
		t.Fatalf("batched explorer missed the reintroduced torn-stop bug in %d schedules", cfg.Schedules)
	}
	v := res.Violations[0]
	t.Logf("rediscovered after %d batched schedules: %v", res.Schedules, &v)

	rv := explore.RunSchedule(cfg, v.Schedule)
	if rv == nil || rv.Round != v.Round || rv.Msg != v.Msg {
		t.Fatalf("repro did not replay: got %v, want %v", rv, &v)
	}

	wal.SetLegacyTornStopForTest(false)
	if v2 := explore.RunSchedule(cfg, v.Schedule); v2 != nil {
		t.Fatalf("schedule %d fails even without the mutation: %v", v.Schedule, v2)
	}
}
