// Package explore is a seeded crash-schedule explorer for the
// durability stack (internal/wal + internal/checkpoint wired through
// serve.Journal). Each schedule drives randomized alloc/free/crash
// traffic against a Store journaled onto a simulated filesystem
// (internal/simfs), arms a crash at a pseudo-random filesystem
// operation, power-cuts the machine (keeping a random torn fragment of
// every unsynced tail), restores, and checks the durability invariant:
//
//   - restore itself must succeed,
//   - every mutation acknowledged with a completed fsync must survive
//     (restored LastSeq >= the durable watermark),
//   - the restored state must equal a reference replay of exactly the
//     first LastSeq acknowledged mutations — no more, no less, no skew.
//
// Crash → restore → more traffic → crash again is explored directly:
// every schedule runs several rounds over the same filesystem, so torn
// tails from one incarnation sit under the segments of the next, and
// checkpoints (plus their prune/truncate maintenance) fire mid-round so
// the crash point can land inside the checkpoint write path too.
//
// Batched schedules (Config.Burst > 1, see DefaultBatched) drive the
// group-commit pipeline: mutations are pushed in bursts and the
// journal runs in SyncWriter mode, so each Drain hands multi-record
// batches to wal.Log.AppendBatch — and the armed crash point can land
// inside a batch's single write or its one group fsync. A power cut
// there tears the batch mid-record, and the invariant demands the torn
// batch replay as a clean contiguous prefix of the acknowledged
// history.
//
// Admit-batched schedules (Config.AdmitBatch > 1, see
// DefaultAdmitBatched) drive the batched admission pipeline: admission
// traffic arrives in groups of several balls applied through
// Store.AdmitBatch — one striped-lock acquisition per touched shard,
// one seq-range reservation in the journal's batch hook — and the
// armed power cut can land inside the store-apply/journal-push window
// of a half-persisted group. The reference history records the group
// in AdmitScratch.Order order, which is by construction the journal's
// seq order, so the invariant sharpens to: a group torn mid-batch must
// replay as a clean prefix OF THE APPLY ORDER, never a subset or a
// reordering.
//
// Chaos schedules (Config.ChaosFaults > 0, see DefaultChaos) further
// arm transient write-path faults at random points DURING traffic:
// appends, fsyncs, segment creation and checkpoint renames fail while
// mutations keep flowing, as on a degraded disk. The WAL aborts wedged
// segments and heals onto fresh ones, dropped records open seq gaps in
// the on-disk stream, and the invariant sharpens correspondingly: the
// durable watermark freezes at the first journal error, and the
// restore must stop at the gap (or at a checkpoint that healed it)
// rather than replay records on top of missing mutations.
//
// Everything is deterministic per (Seed, schedule): the driver is
// single-threaded, the journal is quiesced with Journal.Drain at every
// burst boundary (every operation in the per-record configuration) —
// in batched schedules SyncWriter mode appends in the driver's own
// goroutine, so batch boundaries are a pure function of the schedule —
// and simfs numbers every filesystem operation. A violation therefore
// reproduces exactly from its one-line repro — RunSchedule(cfg,
// v.Schedule) with the same Config.
package explore

import (
	"fmt"
	"strings"

	"dynalloc/internal/rng"
	"dynalloc/internal/serve"
	"dynalloc/internal/simfs"
	"dynalloc/internal/wal"
)

// Config parameterizes an exploration. The zero value is not runnable;
// start from Default and override.
type Config struct {
	Seed      uint64 // root seed; schedule k runs on rng.NewStream(Seed, k)
	Schedules int    // how many schedules Explore runs

	Rounds      int // crash/restore cycles per schedule
	OpsPerRound int // store mutations attempted per round
	Bins        int // store bins
	Shards      int // store lock stripes

	// CheckpointEvery takes a checkpoint after every that-many mutations
	// within a round (0 disables checkpoints).
	CheckpointEvery int

	// SegmentBytes is the WAL rotation threshold. Default is small
	// enough that every round spans several segments, so replay
	// regularly crosses torn-segment boundaries.
	SegmentBytes int64

	// MaxViolations stops Explore after this many failing schedules
	// (default 8): one failure is usually worth inspecting before
	// paying for the rest of the sweep.
	MaxViolations int

	// Burst, when > 1, drives mutations in bursts of that many between
	// journal drains, with the journal in deterministic SyncWriter
	// mode: each Drain appends the queued burst in MaxBatch chunks, so
	// WAL writes are multi-record group-commit batches and the crash
	// point can land mid-batch. 0/1 is the per-record configuration.
	Burst int

	// MaxBatch is the journal's batch ceiling in burst mode (default
	// 5, deliberately not dividing the default burst so chunk sizes
	// vary within one burst).
	MaxBatch int

	// AdmitBatch, when > 1, drives admission traffic in groups of up to
	// that many balls through Store.AdmitBatch instead of one Alloc per
	// mutation, with the journal in deterministic SyncWriter mode (as
	// in burst mode): the group's records reach the WAL through the
	// batch hook's single seq-range reservation, so the armed power cut
	// can land inside the store-apply/journal-push window of a
	// half-persisted group. The reference history appends the group in
	// AdmitScratch.Order order — the journal's seq order — so a torn
	// group must replay as a clean prefix of the apply order. 0/1 is
	// the per-ball configuration.
	AdmitBatch int

	// RestoreWorkers is the apply-worker count every restore in the
	// schedule runs with (0 means the suite default of 2, so sweeps
	// exercise the parallel replay pipeline by default; 1 forces the
	// classic sequential replay). With workers > 1 every restore is
	// additionally cross-checked: a second, sequential restore runs
	// against a clone of the post-cut filesystem and the two stores and
	// RestoreResults (minus timings) must match bit for bit — the
	// parallel ≡ sequential equivalence property, checked across every
	// crash shape the sweep produces.
	RestoreWorkers int

	// ChaosFaults, when > 0, arms that many transient write-path faults
	// per round at pseudo-random points DURING traffic (see
	// DefaultChaos): creates, writes, fsyncs and renames fail as on a
	// degraded disk while mutations keep flowing, on top of the armed
	// power cut. Faults are restricted to write-path operation kinds so
	// a leftover armed fault can never fire inside restore's read-only
	// pass; simfs drops unfired faults at the power cut. The invariant
	// is unchanged: an acknowledgement the journal reported durable
	// before the first fault must survive, and the restored state must
	// still be an exact prefix of the acknowledged history — the WAL
	// heals onto fresh segments and replay must refuse to skip the gap
	// the dropped records leave behind.
	ChaosFaults int
}

// Default returns the configuration the test suite runs: 3 rounds of
// 120 mutations over 16 bins / 4 shards, checkpoints every 25
// mutations, 8-record WAL segments.
func Default() Config {
	return Config{
		Seed:            1,
		Schedules:       500,
		Rounds:          3,
		OpsPerRound:     120,
		Bins:            16,
		Shards:          4,
		CheckpointEvery: 25,
		SegmentBytes:    8 * wal.RecordSize, // rotate every ~8 records
		MaxViolations:   8,
		RestoreWorkers:  2,
	}
}

// DefaultBatched returns the group-commit sweep the test suite runs
// alongside Default: bursts of 12 mutations drained as batches of up
// to 5 records, over the same tiny segments — so batches regularly
// straddle rotations and the power cut regularly lands inside a
// batch's write or group fsync.
func DefaultBatched() Config {
	c := Default()
	c.Burst = 12
	c.MaxBatch = 5
	c.CheckpointEvery = 24 // a multiple of Burst: checkpoints fire at drained boundaries
	return c
}

// DefaultAdmitBatched returns the batched-admission sweep the test
// suite runs alongside DefaultBatched: admissions arrive in groups of
// up to 6 balls applied through Store.AdmitBatch and journaled through
// the batch hook's one seq-range reservation, drained as SyncWriter
// batches of up to 4 records over the same tiny segments — so the
// power cut regularly lands between a group's store apply and the
// moment its last record is durable.
func DefaultAdmitBatched() Config {
	c := Default()
	c.AdmitBatch = 6
	c.MaxBatch = 4
	return c
}

// chaosOps is the fault menu for chaos schedules: every kind on the
// durability write path (WAL appends and fsyncs, segment and
// checkpoint creation, checkpoint rename), and nothing on the restore
// read path — so an armed fault that outlives its round cannot turn a
// read-only restore into a false violation.
var chaosOps = []simfs.OpKind{
	simfs.OpWrite, simfs.OpSync, simfs.OpCreate, simfs.OpCreateTemp, simfs.OpRename,
}

// DefaultChaos returns the continuous-chaos sweep the test suite runs
// alongside Default and DefaultBatched: the same traffic and power
// cuts, plus 3 transient write-path faults armed per round at random
// points mid-traffic. This is the explorer-side analogue of serve's
// ChaosInjector disk faults (stall/ENOSPC), compressed to simulation
// time: the journal keeps accepting mutations while appends fail, the
// WAL aborts wedged segments and heals, and every restore must stop at
// the seq gap the dropped records opened (or at the checkpoint that
// healed it).
func DefaultChaos() Config {
	c := Default()
	c.ChaosFaults = 3
	return c
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.Schedules <= 0 {
		c.Schedules = d.Schedules
	}
	if c.Rounds <= 0 {
		c.Rounds = d.Rounds
	}
	if c.OpsPerRound <= 0 {
		c.OpsPerRound = d.OpsPerRound
	}
	if c.Bins <= 0 {
		c.Bins = d.Bins
	}
	if c.Shards <= 0 {
		c.Shards = d.Shards
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = d.SegmentBytes
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = d.MaxViolations
	}
	if c.RestoreWorkers <= 0 {
		c.RestoreWorkers = d.RestoreWorkers
	}
	if c.Burst > 1 && c.MaxBatch <= 0 {
		c.MaxBatch = DefaultBatched().MaxBatch
	}
	if c.AdmitBatch > 1 && c.MaxBatch <= 0 {
		c.MaxBatch = DefaultAdmitBatched().MaxBatch
	}
	return c
}

// Violation is one durability-invariant failure, carrying everything
// needed to reproduce it.
type Violation struct {
	Seed       uint64
	Schedule   int
	Round      int    // crash/restore cycle the failure surfaced in
	Burst      int    // Config.Burst the schedule ran with (0/1 = per-record)
	AdmitBatch int    // Config.AdmitBatch the schedule ran with (0/1 = per-ball)
	MaxBatch   int    // Config.MaxBatch in burst/admit-batch mode
	Chaos      int    // Config.ChaosFaults the schedule ran with (0 = none)
	Workers    int    // Config.RestoreWorkers the schedule restored with
	Msg        string // what broke
}

// Error implements error.
func (v *Violation) Error() string {
	var mode string
	if v.Burst > 1 {
		mode = fmt.Sprintf(" burst=%d", v.Burst)
	}
	if v.AdmitBatch > 1 {
		mode += fmt.Sprintf(" admitbatch=%d", v.AdmitBatch)
	}
	if v.Burst > 1 || v.AdmitBatch > 1 {
		mode += fmt.Sprintf(" maxbatch=%d", v.MaxBatch)
	}
	if v.Chaos > 0 {
		mode += fmt.Sprintf(" chaos=%d", v.Chaos)
	}
	if v.Workers != 0 && v.Workers != Default().RestoreWorkers {
		mode += fmt.Sprintf(" workers=%d", v.Workers)
	}
	return fmt.Sprintf("durability violation at seed=%d schedule=%d round=%d%s: %s",
		v.Seed, v.Schedule, v.Round, mode, v.Msg)
}

// Repro returns a one-line shell repro for this violation.
func (v *Violation) Repro() string {
	repro := fmt.Sprintf("go test ./internal/simfs/explore -run TestReplaySchedule -explore.seed=%d -explore.schedule=%d",
		v.Seed, v.Schedule)
	if v.Burst > 1 {
		repro += fmt.Sprintf(" -explore.burst=%d", v.Burst)
	}
	if v.AdmitBatch > 1 {
		repro += fmt.Sprintf(" -explore.admitbatch=%d", v.AdmitBatch)
	}
	if v.Burst > 1 || v.AdmitBatch > 1 {
		repro += fmt.Sprintf(" -explore.maxbatch=%d", v.MaxBatch)
	}
	if v.Chaos > 0 {
		repro += fmt.Sprintf(" -explore.chaos=%d", v.Chaos)
	}
	if v.Workers != 0 && v.Workers != Default().RestoreWorkers {
		repro += fmt.Sprintf(" -explore.workers=%d", v.Workers)
	}
	return repro
}

// Stats aggregates what an exploration exercised; all fields are
// deterministic functions of the Config.
type Stats struct {
	StoreOps       int64 // store mutations driven (acknowledged or not)
	FSOps          int64 // simulated filesystem operations consumed
	Restores       int   // restore passes executed
	Checkpoints    int   // checkpoints that completed successfully
	MidOpCuts      int   // rounds whose armed crash point fired during traffic
	TornCuts       int   // power cuts that left at least one torn tail
	BatchedAdmits  int64 // admission groups of >= 2 balls driven through Store.AdmitBatch
	FaultsArmed    int64 // chaos faults armed (ChaosFaults per round)
	DegradedRounds int   // rounds where a chaos fault wedged the journal before the cut
	EquivChecks    int   // parallel-vs-sequential restore cross-checks performed
}

func (s *Stats) add(o Stats) {
	s.StoreOps += o.StoreOps
	s.FSOps += o.FSOps
	s.Restores += o.Restores
	s.Checkpoints += o.Checkpoints
	s.MidOpCuts += o.MidOpCuts
	s.TornCuts += o.TornCuts
	s.BatchedAdmits += o.BatchedAdmits
	s.FaultsArmed += o.FaultsArmed
	s.DegradedRounds += o.DegradedRounds
	s.EquivChecks += o.EquivChecks
}

// Result is what Explore found.
type Result struct {
	Schedules  int // schedules fully run (== Config.Schedules unless stopped early)
	Violations []Violation
	Stats      Stats
}

// Failed reports whether any schedule violated the invariant.
func (r Result) Failed() bool { return len(r.Violations) > 0 }

// Report renders the violations as one repro line each.
func (r Result) Report() string {
	var b strings.Builder
	for i := range r.Violations {
		v := &r.Violations[i]
		fmt.Fprintf(&b, "%s\n\t%s\n", v.Error(), v.Repro())
	}
	return b.String()
}

// Explore runs cfg.Schedules schedules and collects every violation
// (up to cfg.MaxViolations, after which it stops early).
func Explore(cfg Config) Result {
	cfg = cfg.withDefaults()
	var res Result
	for k := 0; k < cfg.Schedules; k++ {
		v, st := runSchedule(cfg, k)
		res.Stats.add(st)
		res.Schedules++
		if v != nil {
			res.Violations = append(res.Violations, *v)
			if len(res.Violations) >= cfg.MaxViolations {
				break
			}
		}
	}
	return res
}

// RunSchedule replays a single schedule — the entry point a violation's
// repro line uses. It returns nil when the schedule passes.
func RunSchedule(cfg Config, schedule int) *Violation {
	v, _ := runSchedule(cfg.withDefaults(), schedule)
	return v
}

// refOp is one acknowledged store mutation; the reference history ref
// is indexed so that ref[i] carries WAL seq i+1.
type refOp struct {
	op     wal.Op
	bin, k int
}

// runSchedule drives one full crash/restore lifecycle and checks the
// durability invariant after every power cut.
func runSchedule(cfg Config, schedule int) (*Violation, Stats) {
	var stats Stats
	fail := func(round int, format string, args ...any) (*Violation, Stats) {
		return &Violation{
			Seed:       cfg.Seed,
			Schedule:   schedule,
			Round:      round,
			Burst:      cfg.Burst,
			AdmitBatch: cfg.AdmitBatch,
			MaxBatch:   cfg.MaxBatch,
			Chaos:      cfg.ChaosFaults,
			Workers:    cfg.RestoreWorkers,
			Msg:        fmt.Sprintf(format, args...),
		}, stats
	}

	r := rng.NewStream(cfg.Seed, uint64(schedule))
	fs := simfs.New()
	const dir = "/data"

	openJournal := func(st *serve.Store, lastSeq uint64) (*serve.Journal, error) {
		l, err := wal.Open(wal.Options{
			Dir:          dir,
			FS:           fs,
			Fsync:        wal.FsyncAlways,
			SegmentBytes: cfg.SegmentBytes,
		})
		if err != nil {
			return nil, err
		}
		jo := serve.JournalOptions{Buffer: 8}
		if cfg.Burst > 1 || cfg.AdmitBatch > 1 {
			// SyncWriter keeps batch boundaries a deterministic function
			// of the schedule: Drain appends the queued burst from this
			// goroutine in MaxBatch chunks. Buffer must cover a full
			// burst of pushes between drains, plus the overshoot of an
			// admission group straddling the last burst boundary.
			jo = serve.JournalOptions{
				Buffer:     2*(cfg.Burst+cfg.AdmitBatch) + 8,
				MaxBatch:   cfg.MaxBatch,
				SyncWriter: true,
			}
		}
		return serve.NewJournal(st, l, lastSeq, jo), nil
	}

	// ref holds every acknowledged mutation in seq order; durable is the
	// highest seq known to have completed its fsync (the watermark the
	// restore must reach).
	var ref []refOp
	durable := uint64(0)

	st := serve.NewStoreShards(cfg.Bins, cfg.Shards)
	j, err := openJournal(st, 0)
	if err != nil {
		return fail(0, "boot: %v", err)
	}

	burst := cfg.Burst
	if burst < 1 {
		burst = 1
	}
	var (
		admitBins []int
		admitSc   serve.AdmitScratch
	)
	if cfg.AdmitBatch > 1 {
		admitBins = make([]int, cfg.AdmitBatch)
	}

	for round := 0; round < cfg.Rounds; round++ {
		// Arm the crash at a pseudo-random upcoming FS operation. A
		// store mutation costs ~2 FS ops (write + fsync) plus rotation
		// and checkpoint traffic, so a span of 4x mutations lands the
		// cut inside the round most of the time and past it (a forced
		// cut at a quiet boundary) the rest — both worth covering. A
		// batched round consumes far fewer FS ops per mutation (one
		// write + one fsync covers a whole batch), so its span is
		// proportionally tighter; admission groups sit in between.
		span := 4 * cfg.OpsPerRound
		if burst > 1 {
			span = 2 * cfg.OpsPerRound
		} else if cfg.AdmitBatch > 1 {
			span = 3 * cfg.OpsPerRound
		}
		fs.CrashAfterOps(1 + r.Intn(span))

		// Chaos schedules additionally arm transient write-path faults at
		// random points inside the round: the disk degrades while traffic
		// keeps flowing. The durable watermark stops advancing at the
		// first journal error (the fault un-acknowledges everything
		// after it), and simfs drops whatever never fired at the cut.
		for f := 0; f < cfg.ChaosFaults; f++ {
			fs.FailOp(chaosOps[r.Intn(len(chaosOps))], 1+r.Intn(cfg.OpsPerRound), nil)
			stats.FaultsArmed++
		}
		degraded := false

		// The drive loop advances by mutation GROUPS: driveSome applies
		// 1 mutation (or, in admit-batch mode, up to AdmitBatch
		// admissions in one Store.AdmitBatch) and returns how many. The
		// drain and checkpoint conditions are boundary CROSSINGS of the
		// post-op count, which reduce exactly to the old modular checks
		// when every group has size 1 — per-record and burst schedules
		// replay bit-identically to the pre-AdmitBatch explorer.
		for c := 0; c < cfg.OpsPerRound && !fs.Crashed(); {
			prev := c
			c += driveSome(r, st, &ref, admitBins, &admitSc, cfg.AdmitBatch, cfg.OpsPerRound-c, &stats)
			stats.StoreOps += int64(c - prev)
			if c/burst == prev/burst && c < cfg.OpsPerRound {
				continue // mid-burst: keep queueing, no drain yet
			}
			j.Drain()
			if !fs.Crashed() && j.Err() == nil {
				durable = j.LastSeq()
			}
			if !fs.Crashed() && j.Err() != nil {
				degraded = true // a chaos fault, not the cut, wedged an ack
			}
			if cfg.CheckpointEvery > 0 && c/cfg.CheckpointEvery != prev/cfg.CheckpointEvery && !fs.Crashed() {
				// A cut can land anywhere inside the checkpoint write or
				// its prune/truncate maintenance; failure is part of the
				// schedule, not of the invariant.
				if _, _, err := j.Checkpoint(); err == nil {
					stats.Checkpoints++
				}
			}
		}
		if fs.Crashed() {
			stats.MidOpCuts++
		} else {
			fs.CrashNow()
		}
		if degraded {
			stats.DegradedRounds++
		}
		j.Close() // fails fast against the crashed FS; errors expected

		tornBefore := stats.TornCuts
		fs.PowerCut(func(name string, unsynced int) int {
			keep := r.Intn(unsynced + 1)
			if keep > 0 && keep < unsynced {
				stats.TornCuts = tornBefore + 1
			}
			return keep
		})

		// Restart: fresh store, restore from whatever survived. With
		// workers > 1 the sequential reference restore runs first,
		// against a clone of the cut filesystem (restore mutates it:
		// the stale-suffix fence removes segments), so both paths see
		// the identical crash shape.
		var (
			seqSt  *serve.Store
			seqRes serve.RestoreResult
		)
		if cfg.RestoreWorkers > 1 {
			seqSt = serve.NewStoreShards(cfg.Bins, cfg.Shards)
			sr, err := serve.RestoreFSOpts(seqSt, fs.Clone(), dir, serve.RestoreOptions{Workers: 1})
			if err != nil {
				return fail(round, "sequential reference restore failed: %v", err)
			}
			seqRes = sr
		}
		st = serve.NewStoreShards(cfg.Bins, cfg.Shards)
		res, err := serve.RestoreFSOpts(st, fs, dir, serve.RestoreOptions{Workers: cfg.RestoreWorkers})
		stats.Restores++
		stats.FSOps = fs.OpCount()
		if err != nil {
			return fail(round, "restore failed: %v", err)
		}
		if seqSt != nil {
			stats.EquivChecks++
			if msg := diffRestoreModes(st, res, seqSt, seqRes); msg != "" {
				return fail(round, "parallel restore (workers=%d) diverges from sequential: %s", cfg.RestoreWorkers, msg)
			}
		}
		if res.LastSeq < durable {
			return fail(round, "lost fsynced mutations: restored through seq %d, but seq %d was acknowledged durable", res.LastSeq, durable)
		}
		if res.LastSeq > uint64(len(ref)) {
			return fail(round, "restored through seq %d, but only %d mutations were ever acknowledged", res.LastSeq, len(ref))
		}
		if res.SkippedFrees != 0 {
			return fail(round, "replay skipped %d frees of empty bins; impossible against our own log", res.SkippedFrees)
		}
		if msg := diffAgainstRef(st, ref[:res.LastSeq], cfg); msg != "" {
			return fail(round, "restored state diverges from the acknowledged history at seq %d (ckpt seq %d, replayed %d, torn %v): %s",
				res.LastSeq, res.CheckpointSeq, res.Replayed, res.Torn, msg)
		}

		// The tail of ref past the restored seq died with the cut
		// (acknowledged but never durable — allowed); the next
		// incarnation continues from the restored seq.
		ref = ref[:res.LastSeq]
		durable = res.LastSeq

		j, err = openJournal(st, res.LastSeq)
		if err != nil {
			return fail(round, "reopen after restore: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		return fail(cfg.Rounds-1, "final close: %v", err)
	}
	stats.FSOps = fs.OpCount()
	return nil, stats
}

// driveSome applies one pseudo-random mutation group to the store and
// records it in ref iff acknowledged (produced WAL records), returning
// the number of mutations driven. The mix mirrors the serving
// workload: mostly admissions, a steady departure stream through both
// scenario samplers, occasional crash dumps. With admitBatch <= 1
// every group has size 1 and the rng draws are identical to the
// historical per-ball driver; with admitBatch > 1 the admission branch
// drives a group of 1+Intn(admitBatch) balls (clamped to rem, the
// mutations left in the round) through Store.AdmitBatch, and appends
// the group's refOps in sc.Order() order — the order the batch hook
// assigned their WAL seqs.
func driveSome(r *rng.RNG, st *serve.Store, ref *[]refOp, bins []int, sc *serve.AdmitScratch, admitBatch, rem int, stats *Stats) int {
	switch p := r.Intn(10); {
	case p == 0: // fault injection: dump k balls into one bin
		bin, k := r.Intn(st.N()), 1+r.Intn(4)
		st.Crash(bin, k)
		*ref = append(*ref, refOp{wal.OpCrash, bin, k})
	case p <= 3: // departure via either scenario's sampler
		var bin int
		var err error
		if r.Bool() {
			bin, err = st.FreeBall(r) // Scenario A: load-weighted
		} else {
			bin, err = st.FreeNonEmpty(r) // Scenario B: uniform nonempty
		}
		if err == nil {
			*ref = append(*ref, refOp{wal.OpFree, bin, 1})
		}
	default: // admission
		if admitBatch <= 1 {
			bin := r.Intn(st.N())
			st.Alloc(bin)
			*ref = append(*ref, refOp{wal.OpAlloc, bin, 1})
			break
		}
		g := 1 + r.Intn(admitBatch)
		if g > rem {
			g = rem
		}
		for i := 0; i < g; i++ {
			bins[i] = r.Intn(st.N())
		}
		st.AdmitBatch(bins[:g], nil, sc)
		// Journal seqs were reserved in apply order, not submission
		// order; the reference history must match them index for index.
		for _, idx := range sc.Order() {
			*ref = append(*ref, refOp{wal.OpAlloc, bins[idx], 1})
		}
		if g > 1 {
			stats.BatchedAdmits++
		}
		return g
	}
	return 1
}

// diffAgainstRef replays the acknowledged history into a fresh store —
// through serve.ApplyRecords, the same batch applier restore and the
// replication follower use — and compares it field by field with the
// restored one. Empty string means identical.
func diffAgainstRef(got *serve.Store, ref []refOp, cfg Config) string {
	want := serve.NewStoreShards(cfg.Bins, cfg.Shards)
	recs := make([]wal.Record, len(ref))
	for i, op := range ref {
		recs[i] = wal.Record{Op: op.op, Bin: uint32(op.bin), K: int32(op.k), Seq: uint64(i + 1)}
	}
	skipped, err := serve.ApplyRecords(want, recs)
	if err != nil {
		return fmt.Sprintf("reference replay failed: %v", err)
	}
	if skipped != 0 {
		return fmt.Sprintf("reference replay freed %d empty bins; the acknowledged history is not self-consistent", skipped)
	}
	gl, wl := got.LoadsCopy(), want.LoadsCopy()
	for b := range wl {
		if gl[b] != wl[b] {
			return fmt.Sprintf("bin %d load = %d, want %d", b, gl[b], wl[b])
		}
	}
	if got.Total() != want.Total() {
		return fmt.Sprintf("total = %d, want %d", got.Total(), want.Total())
	}
	if got.Allocs() != want.Allocs() {
		return fmt.Sprintf("allocs = %d, want %d", got.Allocs(), want.Allocs())
	}
	if got.Frees() != want.Frees() {
		return fmt.Sprintf("frees = %d, want %d", got.Frees(), want.Frees())
	}
	return ""
}

// diffRestoreModes compares a parallel restore against the sequential
// reference restore of the same cut filesystem: every RestoreResult
// field except the timings and worker count, then the stores' loads and
// counters. Empty string means bit-identical — the equivalence property
// the parallel pipeline promises.
func diffRestoreModes(par *serve.Store, pr serve.RestoreResult, seq *serve.Store, sr serve.RestoreResult) string {
	switch {
	case pr.Restored != sr.Restored:
		return fmt.Sprintf("Restored = %v, sequential %v", pr.Restored, sr.Restored)
	case pr.CheckpointSeq != sr.CheckpointSeq:
		return fmt.Sprintf("CheckpointSeq = %d, sequential %d", pr.CheckpointSeq, sr.CheckpointSeq)
	case pr.CheckpointPath != sr.CheckpointPath:
		return fmt.Sprintf("CheckpointPath = %q, sequential %q", pr.CheckpointPath, sr.CheckpointPath)
	case pr.Replayed != sr.Replayed:
		return fmt.Sprintf("Replayed = %d, sequential %d", pr.Replayed, sr.Replayed)
	case pr.SkippedFrees != sr.SkippedFrees:
		return fmt.Sprintf("SkippedFrees = %d, sequential %d", pr.SkippedFrees, sr.SkippedFrees)
	case pr.Torn != sr.Torn:
		return fmt.Sprintf("Torn = %v, sequential %v", pr.Torn, sr.Torn)
	case pr.LastSeq != sr.LastSeq:
		return fmt.Sprintf("LastSeq = %d, sequential %d", pr.LastSeq, sr.LastSeq)
	case pr.StaleRemoved != sr.StaleRemoved:
		return fmt.Sprintf("StaleRemoved = %d, sequential %d", pr.StaleRemoved, sr.StaleRemoved)
	}
	pl, sl := par.LoadsCopy(), seq.LoadsCopy()
	for b := range sl {
		if pl[b] != sl[b] {
			return fmt.Sprintf("bin %d load = %d, sequential %d", b, pl[b], sl[b])
		}
	}
	switch {
	case par.Total() != seq.Total():
		return fmt.Sprintf("total = %d, sequential %d", par.Total(), seq.Total())
	case par.NonEmpty() != seq.NonEmpty():
		return fmt.Sprintf("nonEmpty = %d, sequential %d", par.NonEmpty(), seq.NonEmpty())
	case par.Allocs() != seq.Allocs():
		return fmt.Sprintf("allocs = %d, sequential %d", par.Allocs(), seq.Allocs())
	case par.Frees() != seq.Frees():
		return fmt.Sprintf("frees = %d, sequential %d", par.Frees(), seq.Frees())
	}
	return ""
}
