package simfs

import (
	"errors"
	"io"
	iofs "io/fs"
	"testing"

	"dynalloc/internal/vfs"
)

func mustCreate(t *testing.T, fs *FS, name string) vfs.File {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	return f
}

func mustWrite(t *testing.T, f vfs.File, data string) {
	t.Helper()
	if n, err := f.Write([]byte(data)); err != nil || n != len(data) {
		t.Fatalf("Write: n=%d err=%v", n, err)
	}
}

func mustRead(t *testing.T, fs *FS, name string) string {
	t.Helper()
	b, err := fs.ReadFile(name)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", name, err)
	}
	return string(b)
}

func TestSyncedBytesSurvivePowerCut(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/w"); err != nil {
		t.Fatal(err)
	}
	f := mustCreate(t, fs, "/w/a")
	mustWrite(t, f, "durable")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, "-volatile")

	fs.PowerCut(nil)

	if got := mustRead(t, fs, "/w/a"); got != "durable" {
		t.Fatalf("after cut: %q, want %q", got, "durable")
	}
	// Survived bytes are on media: a second cut must not shrink them.
	fs.PowerCut(nil)
	if got := mustRead(t, fs, "/w/a"); got != "durable" {
		t.Fatalf("after second cut: %q, want %q", got, "durable")
	}
}

func TestUnsyncedFileVanishesAtPowerCut(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")
	f := mustCreate(t, fs, "/w/ghost")
	mustWrite(t, f, "never synced")
	fs.PowerCut(nil)
	if _, err := fs.ReadFile("/w/ghost"); !vfs.IsNotExist(err) {
		t.Fatalf("unsynced file should be gone, got err=%v", err)
	}
}

func TestTornTailPolicy(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")
	f := mustCreate(t, fs, "/w/a")
	mustWrite(t, f, "sync")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, "edtail")

	fs.PowerCut(func(name string, unsynced int) int {
		if unsynced != 6 {
			t.Fatalf("unsynced=%d, want 6", unsynced)
		}
		return 2 // keep "ed"
	})
	if got := mustRead(t, fs, "/w/a"); got != "synced" {
		t.Fatalf("torn cut: %q, want %q", got, "synced")
	}
	// The torn fragment survived the cut, so it is durable now.
	fs.PowerCut(nil)
	if got := mustRead(t, fs, "/w/a"); got != "synced" {
		t.Fatalf("torn fragment not durable: %q", got)
	}
}

func TestRenameDurabilityNeedsSyncDir(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")
	f := mustCreate(t, fs, "/w/a.tmp")
	mustWrite(t, f, "payload")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/w/a.tmp", "/w/a"); err != nil {
		t.Fatal(err)
	}

	// Without SyncDir the rename is volatile: the cut resurrects the
	// temp name (the synced entry).
	snap := fs.Clone()
	snap.PowerCut(nil)
	if _, err := snap.ReadFile("/w/a"); !vfs.IsNotExist(err) {
		t.Fatalf("unsynced rename should not survive, err=%v", err)
	}
	if got := mustRead(t, snap, "/w/a.tmp"); got != "payload" {
		t.Fatalf("temp entry should survive: %q", got)
	}

	// With SyncDir the rename is durable and the old entry is gone.
	if err := fs.SyncDir("/w"); err != nil {
		t.Fatal(err)
	}
	fs.PowerCut(nil)
	if got := mustRead(t, fs, "/w/a"); got != "payload" {
		t.Fatalf("renamed file lost: %q", got)
	}
	if _, err := fs.ReadFile("/w/a.tmp"); !vfs.IsNotExist(err) {
		t.Fatalf("old name should be gone after dir sync, err=%v", err)
	}
}

func TestFileSyncAfterRenamePersistsNewEntry(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")
	f := mustCreate(t, fs, "/w/a.tmp")
	mustWrite(t, f, "x")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/w/a.tmp", "/w/a"); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, f, "y")
	if err := f.Sync(); err != nil { // ordered-mode: persists the live entry too
		t.Fatal(err)
	}
	fs.PowerCut(nil)
	if got := mustRead(t, fs, "/w/a"); got != "xy" {
		t.Fatalf("got %q, want %q", got, "xy")
	}
	if _, err := fs.ReadFile("/w/a.tmp"); !vfs.IsNotExist(err) {
		t.Fatalf("stale durable alias should be dropped, err=%v", err)
	}
}

func TestRemoveResurrectsWithoutSyncDir(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")
	f := mustCreate(t, fs, "/w/a")
	mustWrite(t, f, "z")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/w/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/w/a"); !vfs.IsNotExist(err) {
		t.Fatalf("removed file still visible, err=%v", err)
	}
	snap := fs.Clone()
	snap.PowerCut(nil)
	if got := mustRead(t, snap, "/w/a"); got != "z" {
		t.Fatalf("unsynced remove should resurrect the file: %q", got)
	}
	if err := fs.SyncDir("/w"); err != nil {
		t.Fatal(err)
	}
	fs.PowerCut(nil)
	if _, err := fs.ReadFile("/w/a"); !vfs.IsNotExist(err) {
		t.Fatalf("synced remove should stick, err=%v", err)
	}
}

func TestCrashAfterOps(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")
	f := mustCreate(t, fs, "/w/a")
	fs.CrashAfterOps(2) // next op ok, second op crashes
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("op before crash point failed: %v", err)
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-point op: err=%v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op: err=%v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() = false after crash point")
	}
	fs.PowerCut(nil)
	if fs.Crashed() {
		t.Fatal("Crashed() = true after PowerCut")
	}
	// The pre-cut handle is fenced forever.
	if _, err := f.Write([]byte("stale")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle write: err=%v, want ErrCrashed", err)
	}
	if err := f.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle close: err=%v, want ErrCrashed", err)
	}
}

func TestInjectedFaults(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")

	bang := errors.New("bang")
	fs.FailOp(OpCreate, 1, bang)
	if _, err := fs.Create("/w/a"); !errors.Is(err, bang) {
		t.Fatalf("injected create fault: err=%v", err)
	}
	f := mustCreate(t, fs, "/w/a") // fault disarmed

	fs.ShortWrite(1)
	n, err := f.Write([]byte("abcdefgh"))
	if n != 4 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if got := mustRead(t, fs, "/w/a"); got != "abcd" {
		t.Fatalf("short-write prefix: %q", got)
	}

	mustWrite(t, f, "rest")
	fs.LieOnSync(1)
	if err := f.Sync(); err != nil {
		t.Fatalf("lying sync should report success: %v", err)
	}
	fs.PowerCut(nil)
	if _, err := fs.ReadFile("/w/a"); !vfs.IsNotExist(err) {
		t.Fatalf("lying sync must not persist anything, err=%v", err)
	}
}

func TestFaultNthCounting(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")
	f := mustCreate(t, fs, "/w/a")
	fs.FailOp(OpWrite, 3, nil)
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("3rd write should fail: %v", err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("fault should disarm after firing: %v", err)
	}
}

func TestCreateExclusiveAndMissingParent(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")
	mustCreate(t, fs, "/w/a")
	if _, err := fs.Create("/w/a"); !vfs.IsExist(err) {
		t.Fatalf("duplicate create: err=%v, want ErrExist", err)
	}
	if _, err := fs.Create("/nodir/a"); !vfs.IsNotExist(err) {
		t.Fatalf("create under missing dir: err=%v, want ErrNotExist", err)
	}
}

func TestCreateTempDeterministicAndGlob(t *testing.T) {
	a := New()
	b := New()
	var names [2][]string
	for i, fs := range []*FS{a, b} {
		fs.MkdirAll("/w")
		for j := 0; j < 3; j++ {
			f, err := fs.CreateTemp("/w", "ckpt-0001.ck.tmp-*")
			if err != nil {
				t.Fatal(err)
			}
			names[i] = append(names[i], f.Name())
			f.Close()
		}
	}
	for j := range names[0] {
		if names[0][j] != names[1][j] {
			t.Fatalf("CreateTemp not deterministic: %q vs %q", names[0][j], names[1][j])
		}
	}
	got, err := a.Glob("/w/ckpt-*.ck.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("glob matched %d, want 3: %v", len(got), got)
	}
}

func TestReadDirAndStat(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w/sub")
	f := mustCreate(t, fs, "/w/b")
	mustWrite(t, f, "12345")
	mustCreate(t, fs, "/w/a")
	ents, err := fs.ReadDir("/w")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 || ents[0].Name != "a" || ents[1].Name != "b" || ents[2].Name != "sub" || !ents[2].IsDir {
		t.Fatalf("ReadDir: %+v", ents)
	}
	if _, err := fs.ReadDir("/nope"); !vfs.IsNotExist(err) {
		t.Fatalf("ReadDir missing: %v", err)
	}
	size, err := fs.Stat("/w/b")
	if err != nil || size != 5 {
		t.Fatalf("Stat: size=%d err=%v", size, err)
	}
	if _, err := fs.Stat("/w/nope"); !vfs.IsNotExist(err) {
		t.Fatalf("Stat missing: %v", err)
	}
}

func TestOpenReadStreams(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")
	f := mustCreate(t, fs, "/w/a")
	mustWrite(t, f, "hello world")
	f.Close()
	r, err := fs.Open("/w/a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(r, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read 1: %q %v", buf, err)
	}
	rest, err := io.ReadAll(r)
	if err != nil || string(rest) != " world" {
		t.Fatalf("read 2: %q %v", rest, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(buf); !errors.Is(err, iofs.ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestTruncateAndCorruptHelpers(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")
	f := mustCreate(t, fs, "/w/a")
	mustWrite(t, f, "abcdef")
	f.Sync()
	if err := fs.Truncate("/w/a", 3); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, fs, "/w/a"); got != "abc" {
		t.Fatalf("truncate: %q", got)
	}
	fs.PowerCut(nil)
	if got := mustRead(t, fs, "/w/a"); got != "abc" {
		t.Fatalf("truncate should cap durable bytes too: %q", got)
	}
	if err := fs.Corrupt("/w/a", 1, 0xFF); err != nil {
		t.Fatal(err)
	}
	if got := mustRead(t, fs, "/w/a"); got[1] == 'b' {
		t.Fatalf("corrupt did not flip byte: %q", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")
	f := mustCreate(t, fs, "/w/a")
	mustWrite(t, f, "one")
	f.Sync()
	c := fs.Clone()
	mustWrite(t, f, "-more")
	if got := mustRead(t, c, "/w/a"); got != "one" {
		t.Fatalf("clone saw writer mutation: %q", got)
	}
	g := mustCreate(t, c, "/w/b")
	mustWrite(t, g, "clone only")
	if _, err := fs.ReadFile("/w/b"); !vfs.IsNotExist(err) {
		t.Fatalf("original saw clone mutation, err=%v", err)
	}
}

func TestOpCounters(t *testing.T) {
	fs := New()
	fs.MkdirAll("/w")
	f := mustCreate(t, fs, "/w/a")
	mustWrite(t, f, "x")
	f.Sync()
	f.Sync()
	if got := fs.Ops(OpSync); got != 2 {
		t.Fatalf("Ops(OpSync)=%d, want 2", got)
	}
	if got := fs.Ops(OpWrite); got != 1 {
		t.Fatalf("Ops(OpWrite)=%d, want 1", got)
	}
}
