package process

import (
	"fmt"

	"dynalloc/internal/dist"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// BoundedOpen is the first class of open systems in Section 7: the
// number of balls varies but is "bounded all the time". Each step flips
// a fair coin; heads removes a uniformly random ball (a no-op on an
// empty system), tails inserts a ball with the scheduling rule (a no-op
// when the system already holds MaxBalls). Unlike the unbounded open
// process, this chain has a finite state space (the union of Omega_m for
// m = 0..MaxBalls) and is ergodic, so its recovery time is again a
// mixing time — the refinement the paper says its approach extends to.
type BoundedOpen struct {
	rule     rules.Rule
	maxBalls int
	v        loadvec.Vector
	tree     *dist.Tree
	r        *rng.RNG
	steps    int64
}

// NewBoundedOpen returns a bounded open process from initial (copied).
// It panics if the initial state already exceeds maxBalls.
func NewBoundedOpen(rule rules.Rule, initial loadvec.Vector, maxBalls int, r *rng.RNG) *BoundedOpen {
	if maxBalls < 1 {
		panic("process: bounded open process needs maxBalls >= 1")
	}
	if initial.Total() > maxBalls {
		panic("process: initial state exceeds the ball bound")
	}
	if !initial.IsNormalized() {
		panic("process: initial state must be normalized")
	}
	v := initial.Clone()
	return &BoundedOpen{rule: rule, maxBalls: maxBalls, v: v, tree: dist.NewTree(v.N(), v), r: r}
}

// Name identifies the process in tables.
func (b *BoundedOpen) Name() string {
	return fmt.Sprintf("BoundedOpen[%d]-%s", b.maxBalls, b.rule.Name())
}

// N returns the number of bins.
func (b *BoundedOpen) N() int { return b.v.N() }

// M returns the current number of balls.
func (b *BoundedOpen) M() int { return b.tree.Total() }

// MaxBalls returns the ball bound.
func (b *BoundedOpen) MaxBalls() int { return b.maxBalls }

// Steps returns the number of executed steps.
func (b *BoundedOpen) Steps() int64 { return b.steps }

// State returns a copy of the current load vector.
func (b *BoundedOpen) State() loadvec.Vector { return b.v.Clone() }

// Peek returns the live vector (do not modify).
func (b *BoundedOpen) Peek() loadvec.Vector { return b.v }

// Step executes one bounded-open step.
func (b *BoundedOpen) Step() {
	if b.r.Bool() {
		if b.tree.Total() > 0 {
			i := b.tree.Sample(b.r)
			slot := b.v.Remove(i)
			b.tree.Add(slot, -1)
		}
	} else if b.tree.Total() < b.maxBalls {
		s := rules.NewSample(b.v.N(), b.r)
		j := b.rule.Choose(b.v, s)
		slot := b.v.Add(j)
		b.tree.Add(slot, 1)
	}
	b.steps++
}

// Run executes k steps.
func (b *BoundedOpen) Run(k int) {
	for i := 0; i < k; i++ {
		b.Step()
	}
}
