package process

import (
	"fmt"

	"dynalloc/internal/dist"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// Open is an open dynamic allocation process (Section 7): the number of
// balls varies over time. Each step flips a fair coin; heads removes a
// ball chosen i.u.r. among the existing balls (a no-op on an empty
// system), tails inserts a new ball with the scheduling rule. With the
// Uniform rule this is exactly the example process of the paper's
// conclusions; with ABKU[d]/ADAP(x) it is the d-choice open variant.
type Open struct {
	rule  rules.Rule
	v     loadvec.Vector
	tree  *dist.Tree
	r     *rng.RNG
	steps int64
}

// NewOpen returns an open process starting from initial (copied).
func NewOpen(rule rules.Rule, initial loadvec.Vector, r *rng.RNG) *Open {
	if !initial.IsNormalized() {
		panic("process: initial state must be normalized")
	}
	v := initial.Clone()
	return &Open{rule: rule, v: v, tree: dist.NewTree(v.N(), v), r: r}
}

// Name identifies the process in tables.
func (o *Open) Name() string { return fmt.Sprintf("Open-%s", o.rule.Name()) }

// N returns the number of bins.
func (o *Open) N() int { return o.v.N() }

// M returns the current number of balls.
func (o *Open) M() int { return o.tree.Total() }

// Steps returns the number of executed steps.
func (o *Open) Steps() int64 { return o.steps }

// State returns a copy of the current load vector.
func (o *Open) State() loadvec.Vector { return o.v.Clone() }

// Step executes one open-process step.
func (o *Open) Step() {
	if o.r.Bool() {
		// Remove a uniform ball, if any.
		if o.tree.Total() > 0 {
			i := o.tree.Sample(o.r)
			slot := o.v.Remove(i)
			o.tree.Add(slot, -1)
		}
	} else {
		s := rules.NewSample(o.v.N(), o.r)
		j := o.rule.Choose(o.v, s)
		slot := o.v.Add(j)
		o.tree.Add(slot, 1)
	}
	o.steps++
}

// Run executes k steps.
func (o *Open) Run(k int) {
	for i := 0; i < k; i++ {
		o.Step()
	}
}

// Relocating is a closed process with limited relocation (Section 7):
// every phase performs the usual remove-then-insert, and additionally,
// with probability relocProb, relocates one ball — it removes a ball
// chosen i.u.r. and re-inserts it with the scheduling rule. The paper
// defers the analysis of relocation to its full version; this
// instantiation ("one uniformly chosen ball may be rescheduled per
// phase") is the natural minimal form and is what E12 measures.
type Relocating struct {
	*Process
	relocProb float64
}

// NewRelocating wraps a closed process with relocation probability p.
func NewRelocating(scenario Scenario, rule rules.Rule, initial loadvec.Vector, relocProb float64, r *rng.RNG) *Relocating {
	if relocProb < 0 || relocProb > 1 {
		panic("process: relocation probability out of [0,1]")
	}
	return &Relocating{Process: New(scenario, rule, initial, r), relocProb: relocProb}
}

// Name identifies the process in tables.
func (rp *Relocating) Name() string {
	return fmt.Sprintf("%s+reloc(%.2f)", rp.Process.Name(), rp.relocProb)
}

// Step executes one phase plus the optional relocation move.
func (rp *Relocating) Step() {
	rp.Process.Step()
	if rp.r.Bernoulli(rp.relocProb) {
		// Relocate: uniform ball out, rule choice back in.
		i := rp.tree.Sample(rp.r)
		slot := rp.v.Remove(i)
		rp.tree.Add(slot, -1)
		s := rules.NewSample(rp.v.N(), rp.r)
		j := rp.rule.Choose(rp.v, s)
		slot = rp.v.Add(j)
		rp.tree.Add(slot, 1)
	}
}

// Run executes k phases (with their relocation moves).
func (rp *Relocating) Run(k int) {
	for i := 0; i < k; i++ {
		rp.Step()
	}
}

// RunUntil steps the relocating process until pred(state) holds or
// maxSteps phases elapse. (It must be redefined here: the embedded
// Process.RunUntil would call Process.Step and skip relocation.)
func (rp *Relocating) RunUntil(pred func(loadvec.Vector) bool, maxSteps int64) (int64, bool) {
	if pred(rp.v) {
		return 0, true
	}
	for t := int64(1); t <= maxSteps; t++ {
		rp.Step()
		if pred(rp.v) {
			return t, true
		}
	}
	return maxSteps, false
}
