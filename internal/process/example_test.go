package process_test

import (
	"fmt"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// A closed process removes one ball and inserts one per phase; the
// number of balls is invariant and the state recovers from any start.
func ExampleProcess() {
	p := process.New(process.ScenarioA, rules.NewABKU(2), loadvec.OneTower(8, 8), rng.New(1))
	fmt.Println(p.Name(), "starts with max load", p.MaxLoad())
	// The number of steps is random; Theorem 1 bounds it by ~m ln m.
	_, ok := p.RecoveryTime(1, 1_000_000)
	fmt.Println("recovered:", ok, "— balls still:", p.M())
	// Output:
	// I_A-ABKU[2] starts with max load 8
	// recovered: true — balls still: 8
}
