// Package process implements the dynamic allocation processes of
// Section 2 of the paper as step-by-step simulators.
//
// A closed process keeps exactly m balls in n bins. Each step is a
// "phase" (Section 3.3): remove one ball, then place a new ball with the
// scheduling rule.
//
//	Scenario A: the removed ball is chosen i.u.r. among the m balls,
//	            i.e. its bin position is drawn from A(v)  (protocol I_A).
//	Scenario B: the removed ball comes from a nonempty bin chosen
//	            i.u.r., i.e. the position is drawn from B(v) (protocol I_B).
//
// Combining Scenario A with ABKU[d] gives I_A-ABKU[d], etc. The package
// also implements the open processes and the limited-relocation processes
// sketched in Section 7.
//
// Scenario A removal needs a weighted draw over positions; the simulator
// keeps a Fenwick tree mirror of the load vector so every step costs
// O(log n + probes) rather than O(n).
package process

import (
	"fmt"

	"dynalloc/internal/dist"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// Scenario selects the removal half of a phase.
type Scenario int

const (
	// ScenarioA removes a ball chosen uniformly among all balls.
	ScenarioA Scenario = iota
	// ScenarioB removes one ball from a uniformly chosen nonempty bin.
	ScenarioB
)

// String names the scenario as in the paper.
func (s Scenario) String() string {
	switch s {
	case ScenarioA:
		return "A"
	case ScenarioB:
		return "B"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Process is a closed dynamic allocation process: an ergodic Markov chain
// on Omega_m whose transitions are remove-then-insert phases.
type Process struct {
	scenario Scenario
	rule     rules.Rule
	v        loadvec.Vector
	tree     *dist.Tree // mirrors v; weighted removal draws for Scenario A
	r        *rng.RNG
	steps    int64
}

// New returns a process with the given removal scenario, scheduling rule
// and initial state. The initial vector is copied. It panics if the
// initial state has no balls (a closed process needs m >= 1).
func New(scenario Scenario, rule rules.Rule, initial loadvec.Vector, r *rng.RNG) *Process {
	if initial.Total() < 1 {
		panic("process: closed process needs at least one ball")
	}
	if !initial.IsNormalized() {
		panic("process: initial state must be normalized")
	}
	v := initial.Clone()
	return &Process{
		scenario: scenario,
		rule:     rule,
		v:        v,
		tree:     dist.NewTree(v.N(), v),
		r:        r,
	}
}

// Name renders e.g. "I_A-ABKU[2]" as the paper writes it.
func (p *Process) Name() string {
	return fmt.Sprintf("I_%s-%s", p.scenario, p.rule.Name())
}

// N returns the number of bins.
func (p *Process) N() int { return p.v.N() }

// M returns the (constant) number of balls.
func (p *Process) M() int { return p.tree.Total() }

// Steps returns how many phases have been executed.
func (p *Process) Steps() int64 { return p.steps }

// State returns a copy of the current load vector.
func (p *Process) State() loadvec.Vector { return p.v.Clone() }

// Peek returns the live load vector without copying. The caller must not
// modify it; it is invalidated by the next Step. Used by hot measurement
// loops.
func (p *Process) Peek() loadvec.Vector { return p.v }

// MaxLoad returns the current maximum bin load.
func (p *Process) MaxLoad() int { return p.v.MaxLoad() }

// Gap returns the current imbalance (max load above fair share).
func (p *Process) Gap() int { return p.v.Gap() }

// removePos draws the removal position for the current state.
func (p *Process) removePos() int {
	switch p.scenario {
	case ScenarioA:
		return p.tree.Sample(p.r)
	case ScenarioB:
		return dist.SampleNonEmpty(p.v, p.r)
	default:
		panic("process: unknown scenario")
	}
}

// Step executes one phase: remove one ball per the scenario, then place a
// new ball with the scheduling rule.
func (p *Process) Step() {
	i := p.removePos()
	slot := p.v.Remove(i)
	p.tree.Add(slot, -1)

	s := rules.NewSample(p.v.N(), p.r)
	j := p.rule.Choose(p.v, s)
	slot = p.v.Add(j)
	p.tree.Add(slot, 1)
	p.steps++
}

// Run executes k phases.
func (p *Process) Run(k int) {
	for i := 0; i < k; i++ {
		p.Step()
	}
}

// RunUntil steps the process until pred(state) holds or maxSteps phases
// elapse, and returns the number of phases executed and whether pred was
// reached. pred sees the live vector and must not modify or retain it.
func (p *Process) RunUntil(pred func(loadvec.Vector) bool, maxSteps int64) (int64, bool) {
	if pred(p.v) {
		return 0, true
	}
	for t := int64(1); t <= maxSteps; t++ {
		p.Step()
		if pred(p.v) {
			return t, true
		}
	}
	return maxSteps, false
}

// RecoveryTime runs until the imbalance drops to at most gapTarget and
// returns the number of phases needed. This is the operational "recovery
// from an arbitrarily bad state" of the paper's introduction: the time to
// reach a typical maximum load. Returns (steps, false) if maxSteps passes
// first.
func (p *Process) RecoveryTime(gapTarget int, maxSteps int64) (int64, bool) {
	return p.RunUntil(func(v loadvec.Vector) bool { return v.Gap() <= gapTarget }, maxSteps)
}
