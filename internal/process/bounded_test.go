package process

import (
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

func TestBoundedOpenBasics(t *testing.T) {
	r := rng.New(1)
	b := NewBoundedOpen(rules.NewABKU(2), loadvec.New(4), 6, r)
	if b.N() != 4 || b.M() != 0 || b.MaxBalls() != 6 {
		t.Fatalf("fresh bounded open wrong: N=%d M=%d Max=%d", b.N(), b.M(), b.MaxBalls())
	}
	b.Run(5000)
	if b.Steps() != 5000 {
		t.Fatalf("Steps = %d", b.Steps())
	}
	if b.M() < 0 || b.M() > 6 {
		t.Fatalf("ball bound violated: %d", b.M())
	}
	s := b.State()
	s[0] = 99
	if b.Peek()[0] == 99 {
		t.Fatal("State aliased the live vector")
	}
	if b.Name() != "BoundedOpen[6]-ABKU[2]" {
		t.Fatalf("Name = %q", b.Name())
	}
}

func TestBoundedOpenHitsBothBoundaries(t *testing.T) {
	r := rng.New(2)
	b := NewBoundedOpen(rules.NewUniform(), loadvec.New(2), 3, r)
	sawEmpty, sawFull := false, false
	for i := 0; i < 20000 && !(sawEmpty && sawFull); i++ {
		b.Step()
		switch b.M() {
		case 0:
			sawEmpty = true
		case 3:
			sawFull = true
		}
	}
	if !sawEmpty || !sawFull {
		t.Fatalf("walk did not reach both boundaries (empty=%v full=%v)", sawEmpty, sawFull)
	}
}

func TestBoundedOpenPanicsLocal(t *testing.T) {
	for _, f := range []func(){
		func() { NewBoundedOpen(rules.NewUniform(), loadvec.New(2), 0, rng.New(1)) },
		func() { NewBoundedOpen(rules.NewUniform(), loadvec.OneTower(2, 5), 4, rng.New(1)) },
		func() { NewBoundedOpen(rules.NewUniform(), loadvec.Vector{0, 1}, 4, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestOpenAccessors(t *testing.T) {
	o := NewOpen(rules.NewABKU(2), loadvec.New(3), rng.New(3))
	if o.N() != 3 {
		t.Fatalf("N = %d", o.N())
	}
	o.Run(100)
	if o.Steps() != 100 {
		t.Fatalf("Steps = %d", o.Steps())
	}
	s := o.State()
	if !s.IsNormalized() {
		t.Fatal("State not normalized")
	}
}

func TestOpenPanicsOnUnnormalized(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOpen(rules.NewUniform(), loadvec.Vector{0, 1}, rng.New(1))
}

func TestRelocatingRun(t *testing.T) {
	rp := NewRelocating(ScenarioA, rules.NewABKU(2), loadvec.Balanced(4, 8), 0.5, rng.New(4))
	rp.Run(500)
	if rp.Peek().Total() != 8 {
		t.Fatal("relocating Run changed ball count")
	}
}

func TestScenarioStringUnknown(t *testing.T) {
	if Scenario(9).String() != "Scenario(9)" {
		t.Fatalf("unknown scenario string = %q", Scenario(9).String())
	}
	if ScenarioA.String() != "A" || ScenarioB.String() != "B" {
		t.Fatal("scenario names wrong")
	}
}
