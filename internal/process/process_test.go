package process

import (
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

func TestClosedInvariants(t *testing.T) {
	r := rng.New(1)
	for _, sc := range []Scenario{ScenarioA, ScenarioB} {
		for _, rule := range []rules.Rule{rules.NewUniform(), rules.NewABKU(2), rules.MinLoad{}} {
			p := New(sc, rule, loadvec.OneTower(8, 16), r)
			for step := 0; step < 2000; step++ {
				p.Step()
				v := p.Peek()
				if !v.IsNormalized() {
					t.Fatalf("%s step %d: state not normalized: %v", p.Name(), step, v)
				}
				if v.Total() != 16 {
					t.Fatalf("%s step %d: ball count drifted to %d", p.Name(), step, v.Total())
				}
			}
			if p.Steps() != 2000 {
				t.Fatalf("Steps = %d", p.Steps())
			}
			if p.M() != 16 || p.N() != 8 {
				t.Fatalf("M/N wrong: %d/%d", p.M(), p.N())
			}
		}
	}
}

func TestName(t *testing.T) {
	r := rng.New(2)
	p := New(ScenarioA, rules.NewABKU(2), loadvec.Balanced(4, 8), r)
	if p.Name() != "I_A-ABKU[2]" {
		t.Fatalf("Name = %q", p.Name())
	}
	q := New(ScenarioB, rules.NewUniform(), loadvec.Balanced(4, 8), r)
	if q.Name() != "I_B-Uniform" {
		t.Fatalf("Name = %q", q.Name())
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(ScenarioA, rules.NewUniform(), loadvec.New(4), rng.New(1)) },
		func() { New(ScenarioA, rules.NewUniform(), loadvec.Vector{1, 2}, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestStateIsCopy(t *testing.T) {
	p := New(ScenarioA, rules.NewUniform(), loadvec.Balanced(4, 8), rng.New(3))
	s := p.State()
	s[0] = 99
	if p.Peek()[0] == 99 {
		t.Fatal("State aliased the live vector")
	}
}

// TestMinLoadConverges: with the omniscient rule and Scenario A, the
// one-tower state must flatten; after many steps the gap is small.
func TestMinLoadConverges(t *testing.T) {
	p := New(ScenarioA, rules.MinLoad{}, loadvec.OneTower(10, 10), rng.New(4))
	p.Run(2000)
	if g := p.Gap(); g > 1 {
		t.Fatalf("MinLoad gap still %d after 2000 steps: %v", g, p.Peek())
	}
}

func TestRecoveryTime(t *testing.T) {
	p := New(ScenarioA, rules.NewABKU(2), loadvec.OneTower(8, 8), rng.New(5))
	steps, ok := p.RecoveryTime(2, 100000)
	if !ok {
		t.Fatalf("recovery did not happen within 100000 steps (gap=%d)", p.Gap())
	}
	if steps <= 0 {
		t.Fatalf("recovery reported %d steps from a bad start", steps)
	}
}

func TestRunUntilImmediate(t *testing.T) {
	p := New(ScenarioA, rules.NewABKU(2), loadvec.Balanced(8, 8), rng.New(6))
	steps, ok := p.RunUntil(func(v loadvec.Vector) bool { return v.Gap() <= 1 }, 10)
	if !ok || steps != 0 {
		t.Fatalf("RunUntil on satisfied predicate = (%d, %v)", steps, ok)
	}
}

func TestRunUntilTimeout(t *testing.T) {
	p := New(ScenarioA, rules.NewUniform(), loadvec.OneTower(4, 8), rng.New(7))
	steps, ok := p.RunUntil(func(loadvec.Vector) bool { return false }, 50)
	if ok || steps != 50 {
		t.Fatalf("RunUntil timeout = (%d, %v)", steps, ok)
	}
}

// TestScenarioBRemovesUniformBins: under Scenario B with the MinLoad
// rule, a state with one huge tower and one small bin must lose tower
// balls at roughly the same rate as small-bin balls.
func TestScenarioBStepsWork(t *testing.T) {
	p := New(ScenarioB, rules.NewABKU(2), loadvec.OneTower(6, 12), rng.New(8))
	p.Run(3000)
	if p.Peek().Total() != 12 {
		t.Fatal("Scenario B leaked balls")
	}
	if g := p.Gap(); g > 4 {
		t.Fatalf("Scenario B with ABKU[2] still badly unbalanced: gap %d", g)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() loadvec.Vector {
		p := New(ScenarioA, rules.NewABKU(2), loadvec.Staircase(8, 20), rng.New(99))
		p.Run(500)
		return p.State()
	}
	if !run().Equal(run()) {
		t.Fatal("same seed produced different trajectories")
	}
}

func TestOpenProcess(t *testing.T) {
	o := NewOpen(rules.NewABKU(2), loadvec.New(8), rng.New(9))
	if o.M() != 0 {
		t.Fatal("open process should start empty")
	}
	for i := 0; i < 5000; i++ {
		o.Step()
		if !o.v.IsNormalized() {
			t.Fatalf("open process denormalized at step %d", i)
		}
		if o.M() < 0 {
			t.Fatalf("negative ball count at step %d", i)
		}
	}
	if o.Steps() != 5000 {
		t.Fatalf("Steps = %d", o.Steps())
	}
	if o.Name() != "Open-ABKU[2]" {
		t.Fatalf("Name = %q", o.Name())
	}
	// The birth-death chain on M is symmetric random walk reflected at 0;
	// after 5000 steps M is a.s. finite and small relative to steps.
	if o.M() > 5000 {
		t.Fatal("ball count exceeds steps — impossible")
	}
}

// TestOpenMatchesPaperExample: with the Uniform rule this is exactly the
// conclusions' example; check that removal on empty is a tolerated no-op.
func TestOpenEmptyRemovalNoop(t *testing.T) {
	o := NewOpen(rules.NewUniform(), loadvec.New(2), rng.New(10))
	for i := 0; i < 200; i++ {
		o.Step()
	}
	if o.M() < 0 {
		t.Fatal("ball count went negative")
	}
}

func TestRelocatingInvariants(t *testing.T) {
	rp := NewRelocating(ScenarioA, rules.NewABKU(2), loadvec.OneTower(8, 16), 0.5, rng.New(11))
	for i := 0; i < 2000; i++ {
		rp.Step()
		if rp.Peek().Total() != 16 {
			t.Fatalf("relocation changed ball count at step %d", i)
		}
		if !rp.Peek().IsNormalized() {
			t.Fatalf("relocation denormalized at step %d", i)
		}
	}
	if got := rp.Name(); got != "I_A-ABKU[2]+reloc(0.50)" {
		t.Fatalf("Name = %q", got)
	}
}

// TestRelocationSpeedsRecovery: relocation strictly adds rebalancing
// moves, so from a one-tower start the relocating process should recover
// at least as fast on average.
func TestRelocationSpeedsRecovery(t *testing.T) {
	const trials = 30
	var base, reloc int64
	for trial := 0; trial < trials; trial++ {
		p := New(ScenarioA, rules.NewABKU(2), loadvec.OneTower(8, 16), rng.NewStream(500, uint64(trial)))
		s1, ok1 := p.RecoveryTime(1, 1_000_000)
		rp := NewRelocating(ScenarioA, rules.NewABKU(2), loadvec.OneTower(8, 16), 1.0, rng.NewStream(501, uint64(trial)))
		s2, ok2 := rp.RunUntil(func(v loadvec.Vector) bool { return v.Gap() <= 1 }, 1_000_000)
		if !ok1 || !ok2 {
			t.Fatal("recovery timed out")
		}
		base += s1
		reloc += s2
	}
	if reloc > base*2 {
		t.Fatalf("relocation slowed recovery dramatically: %d vs %d", reloc, base)
	}
}

func TestRelocatingPanicsOnBadProb(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRelocating(ScenarioA, rules.NewUniform(), loadvec.Balanced(2, 2), 1.5, rng.New(1))
}

func BenchmarkScenarioAStep(b *testing.B) {
	p := New(ScenarioA, rules.NewABKU(2), loadvec.Balanced(1024, 1024), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkScenarioBStep(b *testing.B) {
	p := New(ScenarioB, rules.NewABKU(2), loadvec.Balanced(1024, 1024), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
