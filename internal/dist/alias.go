package dist

import "dynalloc/internal/rng"

// Alias is a Walker alias-method sampler: O(n) construction, O(1) draws
// from a fixed categorical distribution. The harness uses it for static
// workload mixtures and for sampling from exact-chain stationary
// distributions when estimating variation distances empirically.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds a sampler for the distribution proportional to weights.
// It panics if weights is empty, contains a negative entry, or sums to a
// non-positive value.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("dist: NewAlias with no weights")
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("dist: NewAlias with negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("dist: NewAlias with zero total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	// Scaled probabilities; the classic two-worklist construction.
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Numerical leftovers: these are probability ~1 columns.
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// N returns the number of categories.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws a category index in O(1).
func (a *Alias) Sample(r *rng.RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
