package dist

import "dynalloc/internal/rng"

// Tree is a Fenwick (binary indexed) tree over bin positions, maintaining
// the load vector's prefix sums so that a draw from A(v) costs O(log n)
// instead of the O(n) scan of SampleBallOwner. Long simulations (the
// recovery-time sweeps run hundreds of millions of steps) keep one Tree
// synchronized with the load vector: loadvec.Vector.Add/Remove report the
// position actually changed, which is fed to Tree.Add.
type Tree struct {
	n     int
	total int
	node  []int // 1-based internal array
}

// NewTree returns a Fenwick tree initialized from loads (position i gets
// weight loads[i]); pass nil for an all-zero tree over n positions.
func NewTree(n int, loads []int) *Tree {
	if n < 0 {
		panic("dist: NewTree with negative size")
	}
	t := &Tree{n: n, node: make([]int, n+1)}
	if loads != nil {
		if len(loads) != n {
			panic("dist: NewTree loads length mismatch")
		}
		for i, x := range loads {
			t.Add(i, x)
		}
	}
	return t
}

// N returns the number of positions.
func (t *Tree) N() int { return t.n }

// Total returns the sum of all weights (the total load m).
func (t *Tree) Total() int { return t.total }

// Add adds delta to the weight at position i (0-based).
func (t *Tree) Add(i, delta int) {
	if i < 0 || i >= t.n {
		panic("dist: Tree.Add position out of range")
	}
	t.total += delta
	for j := i + 1; j <= t.n; j += j & (-j) {
		t.node[j] += delta
	}
}

// PrefixSum returns the sum of weights at positions [0, i].
func (t *Tree) PrefixSum(i int) int {
	if i < 0 {
		return 0
	}
	if i >= t.n {
		i = t.n - 1
	}
	s := 0
	for j := i + 1; j > 0; j -= j & (-j) {
		s += t.node[j]
	}
	return s
}

// Weight returns the weight at position i.
func (t *Tree) Weight(i int) int {
	return t.PrefixSum(i) - t.PrefixSum(i-1)
}

// FindByCumulative returns the smallest position p whose prefix sum
// exceeds target, i.e. the position owning the (target+1)-th unit of
// weight. It panics if target is out of [0, Total()).
func (t *Tree) FindByCumulative(target int) int {
	if target < 0 || target >= t.total {
		panic("dist: FindByCumulative target out of range")
	}
	pos := 0
	// Largest power of two <= n.
	bit := 1
	for bit<<1 <= t.n {
		bit <<= 1
	}
	rem := target
	for ; bit > 0; bit >>= 1 {
		next := pos + bit
		if next <= t.n && t.node[next] <= rem {
			rem -= t.node[next]
			pos = next
		}
	}
	return pos // 0-based position (pos counts full nodes skipped)
}

// Sample draws a position with probability proportional to its weight —
// a draw from A(v) when the tree mirrors the load vector. O(log n).
func (t *Tree) Sample(r *rng.RNG) int {
	if t.total <= 0 {
		panic("dist: Sample from an empty tree")
	}
	return t.FindByCumulative(r.Intn(t.total))
}
