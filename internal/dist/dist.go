// Package dist implements the probability distributions of Section 3.2
// of the paper and the sampling substrates the simulators use to draw
// from them efficiently.
//
// Definition 3.2: A(v) is the distribution on bin positions with
// Pr[A(v) = i] = v[i]/m — the bin of a ball chosen uniformly among all
// m balls. Scenario A removes according to A(v).
//
// Definition 3.3: B(v) is the uniform distribution on the s nonempty
// positions of v. Scenario B removes according to B(v).
//
// Both are defined on *normalized* load vectors, so "position" means
// rank in the sorted order, which is all the Markov chains of the paper
// ever need.
package dist

import (
	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
)

// SampleBallOwner draws from A(v): it returns position i with probability
// v[i]/m. It panics if v is empty of balls (A(v) is undefined on Omega_0).
// The scan runs in O(NonEmpty(v)) which is the right tool for one-shot
// draws; long-running processes should maintain a Tree instead.
func SampleBallOwner(v loadvec.Vector, r *rng.RNG) int {
	m := v.Total()
	if m <= 0 {
		panic("dist: SampleBallOwner on an empty system")
	}
	ball := r.Intn(m)
	acc := 0
	for i, x := range v {
		acc += x
		if ball < acc {
			return i
		}
	}
	panic("dist: unreachable — ball index beyond total load")
}

// SampleNonEmpty draws from B(v): a uniform position among the s nonempty
// bins. It panics if there is no nonempty bin.
func SampleNonEmpty(v loadvec.Vector, r *rng.RNG) int {
	s := v.NonEmpty()
	if s == 0 {
		panic("dist: SampleNonEmpty on an empty system")
	}
	return r.Intn(s)
}

// ProbBallOwner returns Pr[A(v) = i] = v[i]/m as a float, for exact-chain
// construction.
func ProbBallOwner(v loadvec.Vector, i int) float64 {
	m := v.Total()
	if m <= 0 {
		panic("dist: ProbBallOwner on an empty system")
	}
	return float64(v[i]) / float64(m)
}

// ProbNonEmpty returns Pr[B(v) = i], i.e. 1/s for the nonempty positions
// and 0 otherwise.
func ProbNonEmpty(v loadvec.Vector, i int) float64 {
	s := v.NonEmpty()
	if s == 0 {
		panic("dist: ProbNonEmpty on an empty system")
	}
	if i >= s {
		return 0
	}
	return 1 / float64(s)
}
