package dist

import (
	"math"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
)

func TestSampleBallOwnerMarginals(t *testing.T) {
	v := loadvec.Vector{5, 3, 2, 0}
	r := rng.New(1)
	const draws = 100000
	counts := make([]int, len(v))
	for i := 0; i < draws; i++ {
		counts[SampleBallOwner(v, r)]++
	}
	m := float64(v.Total())
	for i, x := range v {
		want := float64(x) / m
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("position %d: empirical %.4f, want %.4f", i, got, want)
		}
	}
	if counts[3] != 0 {
		t.Errorf("empty bin sampled %d times", counts[3])
	}
}

func TestSampleBallOwnerPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty system")
		}
	}()
	SampleBallOwner(loadvec.Vector{0, 0}, rng.New(1))
}

func TestSampleNonEmptyMarginals(t *testing.T) {
	v := loadvec.Vector{7, 1, 1, 0, 0}
	r := rng.New(2)
	const draws = 60000
	counts := make([]int, len(v))
	for i := 0; i < draws; i++ {
		counts[SampleNonEmpty(v, r)]++
	}
	for i := 0; i < 3; i++ {
		got := float64(counts[i]) / draws
		if math.Abs(got-1.0/3) > 0.01 {
			t.Errorf("nonempty position %d: empirical %.4f, want 1/3", i, got)
		}
	}
	if counts[3]+counts[4] != 0 {
		t.Error("empty bins were sampled")
	}
}

func TestSampleNonEmptyPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty system")
		}
	}()
	SampleNonEmpty(loadvec.Vector{0}, rng.New(1))
}

func TestProbFunctions(t *testing.T) {
	v := loadvec.Vector{3, 1, 0}
	if p := ProbBallOwner(v, 0); math.Abs(p-0.75) > 1e-12 {
		t.Errorf("ProbBallOwner(0) = %v", p)
	}
	if p := ProbBallOwner(v, 2); p != 0 {
		t.Errorf("ProbBallOwner(empty) = %v", p)
	}
	if p := ProbNonEmpty(v, 1); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("ProbNonEmpty(1) = %v", p)
	}
	if p := ProbNonEmpty(v, 2); p != 0 {
		t.Errorf("ProbNonEmpty(empty) = %v", p)
	}
	// A(v) and B(v) are probability distributions.
	sumA, sumB := 0.0, 0.0
	for i := range v {
		sumA += ProbBallOwner(v, i)
		sumB += ProbNonEmpty(v, i)
	}
	if math.Abs(sumA-1) > 1e-12 || math.Abs(sumB-1) > 1e-12 {
		t.Errorf("distributions do not sum to 1: A=%v B=%v", sumA, sumB)
	}
}

func TestTreeBasics(t *testing.T) {
	tr := NewTree(5, []int{3, 0, 2, 1, 0})
	if tr.Total() != 6 {
		t.Fatalf("Total = %d", tr.Total())
	}
	wantPrefix := []int{3, 3, 5, 6, 6}
	for i, w := range wantPrefix {
		if got := tr.PrefixSum(i); got != w {
			t.Fatalf("PrefixSum(%d) = %d, want %d", i, got, w)
		}
	}
	for i, w := range []int{3, 0, 2, 1, 0} {
		if got := tr.Weight(i); got != w {
			t.Fatalf("Weight(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestTreeFindByCumulative(t *testing.T) {
	tr := NewTree(4, []int{2, 0, 3, 1})
	want := []int{0, 0, 2, 2, 2, 3}
	for target, pos := range want {
		if got := tr.FindByCumulative(target); got != pos {
			t.Fatalf("FindByCumulative(%d) = %d, want %d", target, got, pos)
		}
	}
}

func TestTreeAddAndSample(t *testing.T) {
	tr := NewTree(3, []int{1, 1, 1})
	tr.Add(0, 4) // weights now 5,1,1
	r := rng.New(3)
	const draws = 70000
	counts := make([]int, 3)
	for i := 0; i < draws; i++ {
		counts[tr.Sample(r)]++
	}
	wants := []float64{5.0 / 7, 1.0 / 7, 1.0 / 7}
	for i, w := range wants {
		got := float64(counts[i]) / draws
		if math.Abs(got-w) > 0.01 {
			t.Errorf("position %d: empirical %.4f, want %.4f", i, got, w)
		}
	}
}

// TestTreeMatchesScan cross-checks Tree sampling against the O(n) scan on
// a shared RNG state transcript: both must implement the same A(v).
func TestTreeMatchesScan(t *testing.T) {
	v := loadvec.Vector{4, 4, 2, 1, 0, 0}
	tr := NewTree(v.N(), v)
	rA := rng.New(77)
	rB := rng.New(77)
	for i := 0; i < 5000; i++ {
		a := SampleBallOwner(v, rA)
		b := tr.Sample(rB)
		if a != b {
			t.Fatalf("draw %d: scan says %d, tree says %d", i, a, b)
		}
	}
}

func TestTreeMirrorsVectorOps(t *testing.T) {
	r := rng.New(9)
	v := loadvec.Random(8, 20, r)
	tr := NewTree(v.N(), v)
	for step := 0; step < 3000; step++ {
		// Random remove + add, mirrored into the tree via reported slots.
		i := SampleBallOwner(v, r)
		slot := v.Remove(i)
		tr.Add(slot, -1)
		j := r.Intn(v.N())
		slot = v.Add(j)
		tr.Add(slot, 1)
		if tr.Total() != v.Total() {
			t.Fatalf("step %d: totals diverged", step)
		}
	}
	for i := range v {
		if tr.Weight(i) != v[i] {
			t.Fatalf("tree weight %d = %d, vector %d", i, tr.Weight(i), v[i])
		}
	}
}

func TestTreePanics(t *testing.T) {
	tr := NewTree(2, nil)
	for _, f := range []func(){
		func() { tr.Add(-1, 1) },
		func() { tr.Add(2, 1) },
		func() { tr.Sample(rng.New(1)) },
		func() { tr.FindByCumulative(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAliasMarginals(t *testing.T) {
	weights := []float64{1, 2, 3, 0, 4}
	a := NewAlias(weights)
	if a.N() != 5 {
		t.Fatalf("N = %d", a.N())
	}
	r := rng.New(4)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	total := 10.0
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d: empirical %.4f, want %.4f", i, got, want)
		}
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a := NewAlias([]float64{3.5})
	r := rng.New(5)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-category alias sampled nonzero")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	cases := [][]float64{{}, {-1, 2}, {0, 0}}
	for _, ws := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewAlias(%v) did not panic", ws)
				}
			}()
			NewAlias(ws)
		}()
	}
}

func BenchmarkTreeSample(b *testing.B) {
	v := loadvec.Random(1024, 1024, rng.New(1))
	tr := NewTree(v.N(), v)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Sample(r)
	}
}

func BenchmarkScanSample(b *testing.B) {
	v := loadvec.Random(1024, 1024, rng.New(1))
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleBallOwner(v, r)
	}
}
