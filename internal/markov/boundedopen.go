package markov

import (
	"fmt"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rules"
)

// BoundedOpenChain is the exact Markov chain of the bounded open process
// of Section 7: the state space is the union of Omega_m for m = 0..Max,
// and each step removes a uniform ball with probability 1/2 (no-op on
// empty) or inserts with the rule (no-op at the bound).
type BoundedOpenChain struct {
	Rule  rules.ExactRule
	NBins int
	Max   int

	states []loadvec.Vector
	index  map[string]int
}

// NewBoundedOpenChain enumerates the state space. It panics if it would
// be enormous.
func NewBoundedOpenChain(rule rules.ExactRule, n, max int) *BoundedOpenChain {
	if max < 1 {
		panic("markov: bounded open chain needs max >= 1")
	}
	total := 0
	for m := 0; m <= max; m++ {
		total += loadvec.CountStates(n, m)
	}
	if total > 200000 {
		panic(fmt.Sprintf("markov: bounded open space has %d states; too large", total))
	}
	c := &BoundedOpenChain{Rule: rule, NBins: n, Max: max, index: make(map[string]int, total)}
	for m := 0; m <= max; m++ {
		for _, s := range loadvec.Enumerate(n, m) {
			c.index[s.Key()] = len(c.states)
			c.states = append(c.states, s)
		}
	}
	return c
}

// NumStates implements Chain.
func (c *BoundedOpenChain) NumStates() int { return len(c.states) }

// State returns the load vector of state s.
func (c *BoundedOpenChain) State(s int) loadvec.Vector { return c.states[s] }

// Index returns the state id of a vector.
func (c *BoundedOpenChain) Index(v loadvec.Vector) int {
	i, ok := c.index[v.Key()]
	if !ok {
		panic(fmt.Sprintf("markov: state %v outside the bounded space", v))
	}
	return i
}

// Transitions implements Chain.
func (c *BoundedOpenChain) Transitions(s int) []Edge {
	v := c.states[s]
	m := v.Total()
	acc := make(map[int]float64)
	// Removal half (probability 1/2).
	if m == 0 {
		acc[s] += 0.5
	} else {
		for i, x := range v {
			if x == 0 {
				continue
			}
			w := 0.5 * float64(x) / float64(m)
			next := v.Clone()
			next.Remove(i)
			acc[c.Index(next)] += w
		}
	}
	// Insertion half (probability 1/2).
	if m == c.Max {
		acc[s] += 0.5
	} else {
		for j, p := range c.Rule.ChoiceProbs(v) {
			if p == 0 {
				continue
			}
			next := v.Clone()
			next.Add(j)
			acc[c.Index(next)] += 0.5 * p
		}
	}
	edges := make([]Edge, 0, len(acc))
	for to, p := range acc {
		edges = append(edges, Edge{To: to, P: p})
	}
	return edges
}
