package markov

import (
	"fmt"
	"math"
)

// HittingTimes returns h[s] = the expected number of steps for the chain
// started at s to first reach the target set (h = 0 on targets). It
// solves the first-step equations
//
//	h[s] = 1 + sum_{s' not in T} P(s, s') h[s']   for s not in T
//
// by Gauss-Seidel iteration, which converges whenever the target set is
// reachable from every state (true for the ergodic chains used here).
// This gives the *exact expected recovery time* into a "typical" set for
// small chains — the quantity the paper's mixing-time bounds control.
func (m *Matrix) HittingTimes(target func(s int) bool, tol float64, maxIter int) ([]float64, error) {
	h := make([]float64, m.n)
	isTarget := make([]bool, m.n)
	anyTarget := false
	for s := 0; s < m.n; s++ {
		isTarget[s] = target(s)
		anyTarget = anyTarget || isTarget[s]
	}
	if !anyTarget {
		return nil, fmt.Errorf("markov: empty target set")
	}
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for s := 0; s < m.n; s++ {
			if isTarget[s] {
				continue
			}
			sum := 1.0
			selfP := 0.0
			for _, e := range m.rows[s] {
				switch {
				case e.To == s:
					selfP += e.P
				case !isTarget[e.To]:
					sum += e.P * h[e.To]
				}
			}
			// Solve for h[s] with the self-loop folded in:
			// h = sum + selfP * h  =>  h = sum / (1 - selfP).
			if selfP >= 1 {
				return nil, fmt.Errorf("markov: state %d cannot leave itself", s)
			}
			next := sum / (1 - selfP)
			if d := math.Abs(next - h[s]); d > maxDelta {
				maxDelta = d
			}
			h[s] = next
		}
		if maxDelta < tol {
			return h, nil
		}
	}
	return nil, fmt.Errorf("markov: hitting times did not converge in %d sweeps", maxIter)
}

// WorstHittingTime returns the maximum expected hitting time into the
// target set over all start states, and the state attaining it.
func (m *Matrix) WorstHittingTime(target func(s int) bool, tol float64, maxIter int) (float64, int, error) {
	h, err := m.HittingTimes(target, tol, maxIter)
	if err != nil {
		return 0, 0, err
	}
	worst, arg := 0.0, 0
	for s, v := range h {
		if v > worst {
			worst, arg = v, s
		}
	}
	return worst, arg, nil
}
