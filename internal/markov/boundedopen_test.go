package markov

import (
	"math"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/stats"
)

func TestBoundedOpenChainStochastic(t *testing.T) {
	c := NewBoundedOpenChain(rules.NewABKU(2), 3, 5)
	if _, err := Build(c); err != nil {
		t.Fatal(err)
	}
	// State count = sum of partition counts.
	want := 0
	for m := 0; m <= 5; m++ {
		want += loadvec.CountStates(3, m)
	}
	if c.NumStates() != want {
		t.Fatalf("states = %d, want %d", c.NumStates(), want)
	}
}

func TestBoundedOpenChainErgodic(t *testing.T) {
	c := NewBoundedOpenChain(rules.NewABKU(2), 3, 4)
	m := MustBuild(c)
	if !m.IsErgodic(300) {
		t.Fatal("bounded open chain should be ergodic")
	}
}

// TestBoundedOpenMatchesSimulation: exact one-step law equals the
// simulator's empirical law.
func TestBoundedOpenMatchesSimulation(t *testing.T) {
	const n, max = 3, 4
	c := NewBoundedOpenChain(rules.NewABKU(2), n, max)
	for _, start := range []loadvec.Vector{
		{0, 0, 0}, // empty: removal is a no-op
		{2, 1, 1}, // full: insertion is a no-op
		{2, 1, 0}, // interior
	} {
		sID := c.Index(start)
		want := make(map[int]float64)
		for _, e := range c.Transitions(sID) {
			want[e.To] = e.P
		}
		r := rng.New(101)
		const trials = 300000
		counts := make(map[int]int)
		for i := 0; i < trials; i++ {
			b := process.NewBoundedOpen(rules.NewABKU(2), start, max, r)
			b.Step()
			counts[c.Index(b.State())]++
		}
		for to, p := range want {
			got := float64(counts[to]) / trials
			if math.Abs(got-p) > 0.005 {
				t.Errorf("start %v -> %v: empirical %.4f vs exact %.4f",
					start, c.State(to), got, p)
			}
		}
		for to := range counts {
			if _, ok := want[to]; !ok {
				t.Errorf("start %v: simulator reached unlisted %v", start, c.State(to))
			}
		}
	}
}

// TestBoundedOpenStationaryBallCount: the ball count in stationarity is
// the reflected lazy random walk on {0..max}; with symmetric rates its
// marginal is uniform over ball counts.
func TestBoundedOpenStationaryBallCount(t *testing.T) {
	const n, max = 3, 5
	c := NewBoundedOpenChain(rules.NewABKU(2), n, max)
	m := MustBuild(c)
	pi, err := m.Stationary(1e-12, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	byCount := make([]float64, max+1)
	for s, p := range pi {
		byCount[c.State(s).Total()] += p
	}
	for cnt, p := range byCount {
		if math.Abs(p-1/float64(max+1)) > 1e-6 {
			t.Fatalf("ball count %d has stationary mass %v, want uniform %v", cnt, p, 1/float64(max+1))
		}
	}
}

func TestBoundedOpenMixingFinite(t *testing.T) {
	c := NewBoundedOpenChain(rules.NewABKU(2), 3, 4)
	m := MustBuild(c)
	pi, err := m.Stationary(1e-12, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tau, ok := m.MixingTime(pi, 0.25, 100000)
	if !ok || tau < 1 {
		t.Fatalf("tau = %d (ok=%v)", tau, ok)
	}
}

func TestBoundedOpenProcessInvariants(t *testing.T) {
	r := rng.New(5)
	b := process.NewBoundedOpen(rules.NewABKU(2), loadvec.New(4), 7, r)
	var seen stats.Summary
	for i := 0; i < 20000; i++ {
		b.Step()
		if b.M() < 0 || b.M() > 7 {
			t.Fatalf("ball bound violated: %d", b.M())
		}
		if !b.Peek().IsNormalized() {
			t.Fatal("state denormalized")
		}
		seen.AddInt(b.M())
	}
	// The walk must actually wander (mean well inside (0, 7)).
	if seen.Mean() < 1 || seen.Mean() > 6 {
		t.Fatalf("ball count mean %v suspicious", seen.Mean())
	}
	if b.Name() != "BoundedOpen[7]-ABKU[2]" {
		t.Fatalf("Name = %q", b.Name())
	}
}

func TestBoundedOpenPanics(t *testing.T) {
	for _, f := range []func(){
		func() { process.NewBoundedOpen(rules.NewUniform(), loadvec.New(2), 0, rng.New(1)) },
		func() { process.NewBoundedOpen(rules.NewUniform(), loadvec.OneTower(2, 5), 4, rng.New(1)) },
		func() { NewBoundedOpenChain(rules.NewUniform(), 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
