package markov

import (
	"math"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/stats"
)

func TestHittingTimesTwoState(t *testing.T) {
	// From state 0, hitting state 1 is geometric with success prob a:
	// expected time 1/a.
	m := MustBuild(twoState{a: 0.2, b: 0.6})
	h, err := m.HittingTimes(func(s int) bool { return s == 1 }, 1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if h[1] != 0 {
		t.Fatalf("target hitting time = %v", h[1])
	}
	if math.Abs(h[0]-5) > 1e-9 {
		t.Fatalf("h[0] = %v, want 5", h[0])
	}
}

func TestHittingTimesGamblersRuin(t *testing.T) {
	// Symmetric walk on {0..4} with reflecting 0 and absorbing-as-target
	// 4: classical expected hitting times from i are 16 - i^2... compute:
	// for reflecting at 0 (stay prob 1/2 to 0? define: from 0 go to 1 wp
	// 1/2, stay wp 1/2). Known solution via the solver itself checked
	// against a direct linear solve by hand for n=3 below; here we just
	// verify monotonicity and consistency with simulation.
	walk := chainFunc{n: 5, f: func(s int) []Edge {
		switch s {
		case 0:
			return []Edge{{0, 0.5}, {1, 0.5}}
		case 4:
			return []Edge{{4, 1}}
		default:
			return []Edge{{s - 1, 0.5}, {s + 1, 0.5}}
		}
	}}
	m := MustBuild(walk)
	h, err := m.HittingTimes(func(s int) bool { return s == 4 }, 1e-12, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	// h must be decreasing toward the target.
	for s := 0; s < 4; s++ {
		if h[s] <= h[s+1] {
			t.Fatalf("hitting times not decreasing toward target: %v", h)
		}
	}
	// First-step consistency: h[2] = 1 + (h[1]+h[3])/2.
	if math.Abs(h[2]-1-(h[1]+h[3])/2) > 1e-9 {
		t.Fatalf("first-step equation violated: %v", h)
	}
}

func TestHittingTimesEmptyTarget(t *testing.T) {
	m := MustBuild(twoState{0.5, 0.5})
	if _, err := m.HittingTimes(func(int) bool { return false }, 1e-9, 100); err == nil {
		t.Fatal("empty target accepted")
	}
}

func TestHittingTimesUnreachable(t *testing.T) {
	// Absorbing state 0 never reaches target 1.
	red := chainFunc{n: 2, f: func(s int) []Edge { return []Edge{{s, 1}} }}
	m := MustBuild(red)
	if _, err := m.HittingTimes(func(s int) bool { return s == 1 }, 1e-9, 1000); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

// TestHittingMatchesSimulation: exact expected recovery time of
// I_A-ABKU[2] into the balanced set matches direct simulation.
func TestHittingMatchesSimulation(t *testing.T) {
	const n, m = 3, 6
	chain := NewAllocChain(process.ScenarioA, rules.NewABKU(2), n, m)
	mat := MustBuild(chain)
	typical := func(s int) bool { return chain.State(s).Gap() <= 0 }
	h, err := mat.HittingTimes(typical, 1e-12, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	start := loadvec.OneTower(n, m)
	want := h[chain.Index(start)]

	r := rng.New(77)
	var sum stats.Summary
	const trialCount = 60000
	for trial := 0; trial < trialCount; trial++ {
		p := process.New(process.ScenarioA, rules.NewABKU(2), start, r)
		steps, ok := p.RecoveryTime(0, 100000)
		if !ok {
			t.Fatal("simulation recovery timed out")
		}
		sum.AddInt(int(steps))
	}
	if math.Abs(sum.Mean()-want) > 4*sum.SE()+0.01 {
		t.Fatalf("simulated mean %.4f vs exact %.4f (se %.4f)", sum.Mean(), want, sum.SE())
	}
}

func TestWorstHittingTime(t *testing.T) {
	const n, m = 3, 5
	chain := NewAllocChain(process.ScenarioA, rules.NewABKU(2), n, m)
	mat := MustBuild(chain)
	typical := func(s int) bool { return chain.State(s).Gap() <= 0 }
	worst, arg, err := mat.WorstHittingTime(typical, 1e-12, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	if worst <= 0 {
		t.Fatalf("worst hitting time %v", worst)
	}
	// The worst start should be at least as bad as the one-tower state.
	h, _ := mat.HittingTimes(typical, 1e-12, 1000000)
	if worst < h[chain.Index(loadvec.OneTower(n, m))] {
		t.Fatalf("worst %v below one-tower %v (arg %v)", worst, h[chain.Index(loadvec.OneTower(n, m))], chain.State(arg))
	}
}
