// Package markov provides exact finite-Markov-chain machinery: building
// transition matrices from enumerable chains, stationary distributions,
// total-variation distance curves, and exact mixing times.
//
// The paper bounds mixing times analytically; this package computes them
// *exactly* for small instances (E10), which is how the reproduction
// validates that the path-coupling bounds are true upper bounds of the
// right shape. State spaces grow like partition numbers, so this is for
// small n and m by design.
package markov

import (
	"fmt"
	"math"
)

// Edge is one weighted transition.
type Edge struct {
	To int
	P  float64
}

// Chain describes a finite Markov chain by enumeration: states are
// 0..NumStates()-1 and Transitions(s) returns the outgoing distribution.
type Chain interface {
	NumStates() int
	Transitions(s int) []Edge
}

// Matrix is a materialized row-sparse transition matrix.
type Matrix struct {
	n    int
	rows [][]Edge
}

// Build materializes a chain, validating that every row is a probability
// distribution (within tolerance) with in-range destinations.
func Build(c Chain) (*Matrix, error) {
	n := c.NumStates()
	if n <= 0 {
		return nil, fmt.Errorf("markov: chain has %d states", n)
	}
	m := &Matrix{n: n, rows: make([][]Edge, n)}
	for s := 0; s < n; s++ {
		row := c.Transitions(s)
		sum := 0.0
		for _, e := range row {
			if e.To < 0 || e.To >= n {
				return nil, fmt.Errorf("markov: state %d has edge to out-of-range %d", s, e.To)
			}
			if e.P < -1e-15 {
				return nil, fmt.Errorf("markov: state %d has negative probability %g", s, e.P)
			}
			sum += e.P
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("markov: state %d row sums to %g", s, sum)
		}
		m.rows[s] = append([]Edge(nil), row...)
	}
	return m, nil
}

// MustBuild is Build that panics on error, for tests and experiments
// where the chain is known-valid by construction.
func MustBuild(c Chain) *Matrix {
	m, err := Build(c)
	if err != nil {
		panic(err)
	}
	return m
}

// N returns the number of states.
func (m *Matrix) N() int { return m.n }

// StepDist advances a distribution one step: out = in * P. in is not
// modified; out is freshly allocated.
func (m *Matrix) StepDist(in []float64) []float64 {
	if len(in) != m.n {
		panic("markov: distribution length mismatch")
	}
	out := make([]float64, m.n)
	for s, p := range in {
		if p == 0 {
			continue
		}
		for _, e := range m.rows[s] {
			out[e.To] += p * e.P
		}
	}
	return out
}

// PointMass returns the distribution concentrated on state s.
func (m *Matrix) PointMass(s int) []float64 {
	if s < 0 || s >= m.n {
		panic("markov: PointMass state out of range")
	}
	p := make([]float64, m.n)
	p[s] = 1
	return p
}

// Stationary computes the stationary distribution by power iteration
// from the uniform distribution, stopping when successive iterates are
// within tol in total variation or maxIter steps pass. For an ergodic
// chain this converges to the unique stationary distribution.
func (m *Matrix) Stationary(tol float64, maxIter int) ([]float64, error) {
	p := make([]float64, m.n)
	for i := range p {
		p[i] = 1 / float64(m.n)
	}
	for it := 0; it < maxIter; it++ {
		q := m.StepDist(p)
		// Average consecutive iterates to damp period-2 oscillation.
		for i := range q {
			q[i] = (q[i] + p[i]) / 2
		}
		if TV(p, q) < tol {
			return q, nil
		}
		p = q
	}
	return nil, fmt.Errorf("markov: stationary distribution did not converge in %d iterations", maxIter)
}

// StationaryLinear computes the stationary distribution by Gauss-Seidel
// sweeps on the balance equations pi = pi P with renormalization — an
// independent numerical path from Stationary's power iteration, used to
// cross-validate results.
func (m *Matrix) StationaryLinear(tol float64, maxIter int) ([]float64, error) {
	// Build the column-access structure: in[s] = edges INTO s.
	type inEdge struct {
		from int
		p    float64
	}
	into := make([][]inEdge, m.n)
	selfP := make([]float64, m.n)
	for s := 0; s < m.n; s++ {
		for _, e := range m.rows[s] {
			if e.To == s {
				selfP[s] += e.P
			} else {
				into[e.To] = append(into[e.To], inEdge{s, e.P})
			}
		}
	}
	pi := make([]float64, m.n)
	for i := range pi {
		pi[i] = 1 / float64(m.n)
	}
	for it := 0; it < maxIter; it++ {
		maxDelta := 0.0
		for s := 0; s < m.n; s++ {
			if selfP[s] >= 1 {
				continue // absorbing: balance equation degenerate
			}
			sum := 0.0
			for _, e := range into[s] {
				sum += pi[e.from] * e.p
			}
			next := sum / (1 - selfP[s])
			if d := math.Abs(next - pi[s]); d > maxDelta {
				maxDelta = d
			}
			pi[s] = next
		}
		// Renormalize.
		total := 0.0
		for _, p := range pi {
			total += p
		}
		if total <= 0 {
			return nil, fmt.Errorf("markov: linear solve lost all mass")
		}
		for i := range pi {
			pi[i] /= total
		}
		if maxDelta < tol {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("markov: linear stationary solve did not converge in %d sweeps", maxIter)
}

// TV returns the total variation distance between two distributions.
func TV(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("markov: TV length mismatch")
	}
	d := 0.0
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d / 2
}

// TVCurve returns TV(L(X_t | X_0 = start), pi) for t = 0..maxT.
func (m *Matrix) TVCurve(start int, pi []float64, maxT int) []float64 {
	p := m.PointMass(start)
	out := make([]float64, maxT+1)
	out[0] = TV(p, pi)
	for t := 1; t <= maxT; t++ {
		p = m.StepDist(p)
		out[t] = TV(p, pi)
	}
	return out
}

// MixingTime returns the exact mixing time tau(eps): the smallest T such
// that max over start states of TV(L(X_t | X_0), pi) <= eps for all
// t >= T. The second return is false if some start state had not reached
// eps by the horizon maxT.
//
// The paper's definition quantifies over all later times as well; that
// clause holds automatically because the variation distance to the
// stationary distribution is non-increasing along the chain:
// TV(mu P, pi) = TV(mu P, pi P) <= TV(mu, pi). Each start can therefore
// stop at its first hitting time of eps, and tau is the maximum of those
// hitting times.
func (m *Matrix) MixingTime(pi []float64, eps float64, maxT int) (int, bool) {
	tau := 0
	for s := 0; s < m.n; s++ {
		p := m.PointMass(s)
		hit := -1
		for t := 0; t <= maxT; t++ {
			if t > 0 {
				p = m.StepDist(p)
			}
			if TV(p, pi) <= eps {
				hit = t
				break
			}
		}
		if hit < 0 {
			return maxT, false
		}
		if hit > tau {
			tau = hit
		}
	}
	return tau, true
}

// IsReversible reports whether the chain satisfies detailed balance
// with respect to pi within tolerance: pi_s P(s,t) = pi_t P(t,s) for all
// pairs. The paper's allocation chains are generally NOT reversible
// (removal and insertion are different mechanisms), which is worth
// knowing because it rules out spectral shortcuts and motivates the
// coupling approach; the tests document this.
func (m *Matrix) IsReversible(pi []float64, tol float64) bool {
	if len(pi) != m.n {
		panic("markov: pi length mismatch")
	}
	// flow[s][t] via maps to stay sparse.
	forward := make([]map[int]float64, m.n)
	for s := 0; s < m.n; s++ {
		forward[s] = make(map[int]float64, len(m.rows[s]))
		for _, e := range m.rows[s] {
			forward[s][e.To] += pi[s] * e.P
		}
	}
	for s := 0; s < m.n; s++ {
		for t, f := range forward[s] {
			if diff := f - forward[t][s]; diff > tol || diff < -tol {
				return false
			}
		}
	}
	return true
}

// IsErgodic reports whether the chain is irreducible and aperiodic, by
// checking that some power P^t (t <= horizon) has all entries positive
// from every start. Sufficient for the small chains used in experiments.
func (m *Matrix) IsErgodic(horizon int) bool {
	for s := 0; s < m.n; s++ {
		p := m.PointMass(s)
		ok := false
		for t := 0; t <= horizon && !ok; t++ {
			if t > 0 {
				p = m.StepDist(p)
			}
			ok = true
			for _, x := range p {
				if x <= 0 {
					ok = false
					break
				}
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
