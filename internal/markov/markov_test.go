package markov

import (
	"math"
	"testing"
)

// twoState is the classic two-state chain with flip probabilities a, b.
type twoState struct{ a, b float64 }

func (c twoState) NumStates() int { return 2 }
func (c twoState) Transitions(s int) []Edge {
	if s == 0 {
		return []Edge{{0, 1 - c.a}, {1, c.a}}
	}
	return []Edge{{0, c.b}, {1, 1 - c.b}}
}

func TestBuildValidates(t *testing.T) {
	if _, err := Build(twoState{0.3, 0.7}); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	bad := chainFunc{n: 1, f: func(int) []Edge { return []Edge{{0, 0.5}} }}
	if _, err := Build(bad); err == nil {
		t.Fatal("sub-stochastic row accepted")
	}
	oob := chainFunc{n: 1, f: func(int) []Edge { return []Edge{{3, 1}} }}
	if _, err := Build(oob); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	neg := chainFunc{n: 1, f: func(int) []Edge { return []Edge{{0, -0.5}, {0, 1.5}} }}
	if _, err := Build(neg); err == nil {
		t.Fatal("negative probability accepted")
	}
}

type chainFunc struct {
	n int
	f func(int) []Edge
}

func (c chainFunc) NumStates() int           { return c.n }
func (c chainFunc) Transitions(s int) []Edge { return c.f(s) }

func TestTwoStateStationary(t *testing.T) {
	// pi = (b, a)/(a+b).
	m := MustBuild(twoState{a: 0.2, b: 0.6})
	pi, err := m.Stationary(1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.75) > 1e-9 || math.Abs(pi[1]-0.25) > 1e-9 {
		t.Fatalf("stationary = %v, want (0.75, 0.25)", pi)
	}
}

func TestStepDistPreservesMass(t *testing.T) {
	m := MustBuild(twoState{0.3, 0.4})
	p := m.PointMass(0)
	for i := 0; i < 50; i++ {
		p = m.StepDist(p)
		sum := 0.0
		for _, x := range p {
			sum += x
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("mass leaked to %v", sum)
		}
	}
}

func TestTV(t *testing.T) {
	if d := TV([]float64{1, 0}, []float64{0, 1}); d != 1 {
		t.Fatalf("TV = %v", d)
	}
	if d := TV([]float64{0.5, 0.5}, []float64{0.5, 0.5}); d != 0 {
		t.Fatalf("TV = %v", d)
	}
}

func TestTVCurveDecreases(t *testing.T) {
	m := MustBuild(twoState{0.3, 0.4})
	pi, _ := m.Stationary(1e-12, 100000)
	curve := m.TVCurve(0, pi, 40)
	if curve[0] <= curve[39] {
		t.Fatalf("TV did not decrease: %v ... %v", curve[0], curve[39])
	}
	if curve[39] > 1e-3 {
		t.Fatalf("two-state chain far from mixed after 40 steps: %v", curve[39])
	}
}

func TestMixingTimeTwoState(t *testing.T) {
	// Symmetric chain with flip prob 0.5 mixes in one step exactly.
	m := MustBuild(twoState{0.5, 0.5})
	pi, _ := m.Stationary(1e-12, 10000)
	tau, ok := m.MixingTime(pi, 0.01, 100)
	if !ok || tau != 1 {
		t.Fatalf("mixing time = %d (ok=%v), want 1", tau, ok)
	}
}

func TestMixingTimeMonotoneInEps(t *testing.T) {
	m := MustBuild(twoState{0.1, 0.15})
	pi, _ := m.Stationary(1e-12, 100000)
	t1, ok1 := m.MixingTime(pi, 0.25, 1000)
	t2, ok2 := m.MixingTime(pi, 0.01, 1000)
	if !ok1 || !ok2 {
		t.Fatal("mixing time did not resolve")
	}
	if t1 > t2 {
		t.Fatalf("tau(0.25)=%d > tau(0.01)=%d", t1, t2)
	}
}

func TestMixingTimeHorizonExceeded(t *testing.T) {
	// Nearly-reducible chain mixes very slowly.
	m := MustBuild(twoState{1e-9, 1e-9})
	pi := []float64{0.5, 0.5}
	if _, ok := m.MixingTime(pi, 0.01, 10); ok {
		t.Fatal("horizon should have been exceeded")
	}
}

func TestIsErgodic(t *testing.T) {
	if !MustBuild(twoState{0.3, 0.3}).IsErgodic(50) {
		t.Fatal("ergodic chain reported non-ergodic")
	}
	// Periodic deterministic 2-cycle: never all-positive.
	cycle := chainFunc{n: 2, f: func(s int) []Edge { return []Edge{{1 - s, 1}} }}
	if MustBuild(cycle).IsErgodic(50) {
		t.Fatal("periodic chain reported ergodic")
	}
	// Reducible: two absorbing states.
	red := chainFunc{n: 2, f: func(s int) []Edge { return []Edge{{s, 1}} }}
	if MustBuild(red).IsErgodic(50) {
		t.Fatal("reducible chain reported ergodic")
	}
}

// TestStationaryLinearMatchesPower: the two independent stationary
// solvers agree on allocation chains.
func TestStationaryLinearMatchesPower(t *testing.T) {
	m := MustBuild(twoState{a: 0.2, b: 0.6})
	p1, err := m.Stationary(1e-13, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.StationaryLinear(1e-13, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if TV(p1, p2) > 1e-9 {
		t.Fatalf("solvers disagree: TV = %v", TV(p1, p2))
	}
}

func TestStationaryLinearFailsWithoutConvergence(t *testing.T) {
	// Asymmetric chain: the uniform start is NOT stationary, so a single
	// sweep cannot reach machine-precision balance.
	m := MustBuild(twoState{0.1, 0.5})
	if _, err := m.StationaryLinear(1e-15, 1); err == nil {
		t.Fatal("one sweep should not converge to 1e-15")
	}
}

func TestLazyCycleStationaryUniform(t *testing.T) {
	// Lazy random walk on a 5-cycle: stationary distribution is uniform.
	const n = 5
	walk := chainFunc{n: n, f: func(s int) []Edge {
		return []Edge{{s, 0.5}, {(s + 1) % n, 0.25}, {(s + n - 1) % n, 0.25}}
	}}
	m := MustBuild(walk)
	pi, err := m.Stationary(1e-13, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range pi {
		if math.Abs(x-0.2) > 1e-9 {
			t.Fatalf("stationary = %v, want uniform", pi)
		}
	}
}
