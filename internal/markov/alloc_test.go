package markov

import (
	"math"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

func TestAllocChainRowsStochastic(t *testing.T) {
	for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
		for _, rule := range []rules.ExactRule{rules.NewUniform(), rules.NewABKU(2), rules.MinLoad{}} {
			c := NewAllocChain(sc, rule, 3, 5)
			if _, err := Build(c); err != nil {
				t.Errorf("scenario %v rule %s: %v", sc, rule.Name(), err)
			}
		}
	}
}

func TestAllocChainErgodic(t *testing.T) {
	c := NewAllocChain(process.ScenarioA, rules.NewABKU(2), 3, 4)
	m := MustBuild(c)
	if !m.IsErgodic(200) {
		t.Fatal("I_A-ABKU[2] chain should be ergodic")
	}
}

// TestAllocChainMatchesSimulation cross-validates the exact transition
// probabilities against the step simulator: the empirical distribution of
// one-step outcomes from a fixed state must match Transitions.
func TestAllocChainMatchesSimulation(t *testing.T) {
	for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
		c := NewAllocChain(sc, rules.NewABKU(2), 3, 4)
		start := loadvec.Vector{2, 1, 1}
		s := c.Index(start)
		want := make(map[int]float64)
		for _, e := range c.Transitions(s) {
			want[e.To] = e.P
		}
		r := rng.New(31)
		const trials = 400000
		counts := make(map[int]int)
		for i := 0; i < trials; i++ {
			p := process.New(sc, rules.NewABKU(2), start, r)
			p.Step()
			counts[c.Index(p.State())]++
		}
		for to, p := range want {
			got := float64(counts[to]) / trials
			if math.Abs(got-p) > 0.005 {
				t.Errorf("scenario %v: transition to %v empirical %.4f vs exact %.4f",
					sc, c.State(to), got, p)
			}
		}
		total := 0
		for to := range counts {
			if _, ok := want[to]; !ok {
				t.Errorf("scenario %v: simulator reached %v which exact chain says is unreachable", sc, c.State(to))
			}
			total += counts[to]
		}
		if total != trials {
			t.Errorf("lost trials: %d", total)
		}
	}
}

// TestMinLoadChainStationary: with the omniscient MinLoad rule under
// Scenario A, mass concentrates on the most balanced states; the max
// load in stationarity must be near ceil(m/n).
func TestMinLoadChainStationary(t *testing.T) {
	c := NewAllocChain(process.ScenarioA, rules.MinLoad{}, 3, 6)
	m := MustBuild(c)
	pi, err := m.Stationary(1e-12, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	// Expected max load under pi.
	exp := 0.0
	for s, p := range pi {
		exp += p * float64(c.State(s).MaxLoad())
	}
	if exp > 3.1 {
		t.Fatalf("MinLoad stationary expected max load %v, want close to 2-3", exp)
	}
}

// TestStationaryMaxLoadOrdering: more choice gives (weakly) smaller
// stationary expected maximum load: Uniform >= ABKU[2] >= MinLoad.
func TestStationaryMaxLoadOrdering(t *testing.T) {
	expMax := func(rule rules.ExactRule) float64 {
		c := NewAllocChain(process.ScenarioA, rule, 4, 8)
		m := MustBuild(c)
		pi, err := m.Stationary(1e-12, 2000000)
		if err != nil {
			t.Fatal(err)
		}
		e := 0.0
		for s, p := range pi {
			e += p * float64(c.State(s).MaxLoad())
		}
		return e
	}
	u := expMax(rules.NewUniform())
	d2 := expMax(rules.NewABKU(2))
	ml := expMax(rules.MinLoad{})
	if !(u > d2 && d2 > ml) {
		t.Fatalf("expected max loads not ordered: uniform %.3f, abku2 %.3f, minload %.3f", u, d2, ml)
	}
}

// TestAllocStationarySolversAgree cross-validates the two stationary
// solvers on a real allocation chain.
func TestAllocStationarySolversAgree(t *testing.T) {
	c := NewAllocChain(process.ScenarioB, rules.NewABKU(2), 4, 7)
	m := MustBuild(c)
	p1, err := m.Stationary(1e-12, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.StationaryLinear(1e-12, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if TV(p1, p2) > 1e-8 {
		t.Fatalf("solvers disagree: TV = %v", TV(p1, p2))
	}
}

func TestAllocChainIndexRoundTrip(t *testing.T) {
	c := NewAllocChain(process.ScenarioB, rules.NewUniform(), 4, 6)
	for s := 0; s < c.NumStates(); s++ {
		if c.Index(c.State(s)) != s {
			t.Fatalf("index round trip failed at %d", s)
		}
	}
}

func TestAllocChainPanicsTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for huge state space")
		}
	}()
	NewAllocChain(process.ScenarioA, rules.NewUniform(), 100, 100)
}
