package markov

import (
	"testing"

	"dynalloc/internal/process"
	"dynalloc/internal/rules"
)

func TestIsReversibleLazyWalk(t *testing.T) {
	// Lazy walk on a cycle is reversible wrt the uniform distribution.
	const n = 5
	walk := chainFunc{n: n, f: func(s int) []Edge {
		return []Edge{{s, 0.5}, {(s + 1) % n, 0.25}, {(s + n - 1) % n, 0.25}}
	}}
	m := MustBuild(walk)
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1.0 / n
	}
	if !m.IsReversible(pi, 1e-12) {
		t.Fatal("lazy cycle walk should be reversible")
	}
}

func TestIsReversibleDetectsIrreversibility(t *testing.T) {
	// Biased cycle walk: uniform stationary but net circulation.
	const n = 4
	walk := chainFunc{n: n, f: func(s int) []Edge {
		return []Edge{{(s + 1) % n, 0.75}, {(s + n - 1) % n, 0.25}}
	}}
	m := MustBuild(walk)
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1.0 / n
	}
	if m.IsReversible(pi, 1e-12) {
		t.Fatal("biased cycle walk is not reversible")
	}
}

// TestAllocationChainsNotReversible documents a structural fact: the
// paper's allocation chains fail detailed balance, so spectral
// (reversible-chain) machinery does not apply and coupling is the right
// tool — the methodological point of the paper.
func TestAllocationChainsNotReversible(t *testing.T) {
	for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
		c := NewAllocChain(sc, rules.NewABKU(2), 4, 6)
		m := MustBuild(c)
		pi, err := m.Stationary(1e-12, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if m.IsReversible(pi, 1e-9) {
			t.Fatalf("I_%s-ABKU[2] unexpectedly reversible", sc)
		}
	}
}

func TestIsReversiblePanicsOnBadPi(t *testing.T) {
	m := MustBuild(twoState{0.5, 0.5})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.IsReversible([]float64{1}, 1e-9)
}
