package markov

import (
	"math"
	"testing"

	"dynalloc/internal/process"
	"dynalloc/internal/rules"
)

func TestDecayRateGeometricCurve(t *testing.T) {
	curve := make([]float64, 60)
	for i := range curve {
		curve[i] = 0.9 * math.Pow(0.8, float64(i))
	}
	rho, err := DecayRate(curve, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-0.8) > 1e-9 {
		t.Fatalf("rho = %v, want 0.8", rho)
	}
}

func TestDecayRateTwoStateExact(t *testing.T) {
	// Two-state chain: second eigenvalue is 1 - a - b.
	a, b := 0.2, 0.3
	m := MustBuild(twoState{a, b})
	pi, err := m.Stationary(1e-13, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := m.EstimateRelaxation(0, pi, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Ratios taken near the numerical floor carry relative error, so the
	// estimate is good to ~1%, not machine precision.
	if math.Abs(rho-(1-a-b)) > 0.01 {
		t.Fatalf("rho = %v, want %v", rho, 1-a-b)
	}
}

func TestDecayRateErrors(t *testing.T) {
	if _, err := DecayRate([]float64{1}, 1); err == nil {
		t.Fatal("window 1 accepted")
	}
	if _, err := DecayRate([]float64{0, 0, 0}, 4); err == nil {
		t.Fatal("dead curve accepted")
	}
}

func TestRelaxationTimePanics(t *testing.T) {
	for _, rho := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rho=%v accepted", rho)
				}
			}()
			RelaxationTime(rho)
		}()
	}
	if RelaxationTime(0.5) != 2 {
		t.Fatal("relaxation time wrong")
	}
}

// TestRelaxationScalesWithM: Theorem 1 implies the Scenario A chain's
// relaxation time grows linearly in m; check the exact trend on small
// instances.
func TestRelaxationScalesWithM(t *testing.T) {
	relax := func(n, m int) float64 {
		c := NewAllocChain(process.ScenarioA, rules.NewABKU(2), n, m)
		mat := MustBuild(c)
		pi, err := mat.Stationary(1e-13, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		rho, err := mat.EstimateRelaxation(0, pi, 400)
		if err != nil {
			t.Fatal(err)
		}
		return RelaxationTime(rho)
	}
	r4 := relax(4, 4)
	r8 := relax(4, 8)
	r12 := relax(4, 12)
	if !(r4 < r8 && r8 < r12) {
		t.Fatalf("relaxation times not increasing in m: %v %v %v", r4, r8, r12)
	}
	// Linear-in-m shape: the ratio r12/r4 is near 3 (allow wide slack —
	// small-m corrections are real).
	if ratio := r12 / r4; ratio < 1.8 || ratio > 4.5 {
		t.Fatalf("relaxation ratio m=12 vs m=4 is %v, want ~3", ratio)
	}
}
