package markov_test

import (
	"fmt"

	"dynalloc/internal/markov"
	"dynalloc/internal/process"
	"dynalloc/internal/rules"
)

// Exact analysis of a small allocation chain: enumerate Omega_m, build
// the transition matrix, and compute the exact mixing time the paper's
// Theorem 1 bounds.
func ExampleAllocChain() {
	chain := markov.NewAllocChain(process.ScenarioA, rules.NewABKU(2), 4, 6)
	mat := markov.MustBuild(chain)
	pi, err := mat.Stationary(1e-12, 1_000_000)
	if err != nil {
		panic(err)
	}
	tau, ok := mat.MixingTime(pi, 0.25, 10_000)
	fmt.Println("states:", chain.NumStates(), "tau(1/4):", tau, ok)
	// Output: states: 9 tau(1/4): 6 true
}
