package markov

import (
	"fmt"
	"math"
)

// DecayRate estimates the asymptotic per-step decay factor rho of a
// positive, geometrically decaying curve (such as the tail of a
// TV-to-stationarity curve): TV(t) ~ C * rho^t. It uses the median of
// the successive ratios over the last window entries that are above the
// numerical floor. The associated relaxation time is -1/ln(rho)
// (RelaxationTime); for an ergodic chain rho is the modulus of the
// second-largest transition-matrix eigenvalue.
func DecayRate(curve []float64, window int) (float64, error) {
	if window < 2 {
		return 0, fmt.Errorf("markov: window must be >= 2")
	}
	const floor = 1e-13
	// Collect ratios from the tail, skipping sub-floor entries.
	var ratios []float64
	count := 0
	for i := len(curve) - 1; i > 0 && count < window; i-- {
		a, b := curve[i-1], curve[i]
		if a <= floor || b <= floor {
			continue
		}
		r := b / a
		if r > 0 && r < 1.5 { // discard pre-asymptotic noise
			ratios = append(ratios, r)
			count++
		}
	}
	if len(ratios) < 2 {
		return 0, fmt.Errorf("markov: curve too short or too flat for decay estimation")
	}
	// Median ratio.
	for i := 1; i < len(ratios); i++ {
		for j := i; j > 0 && ratios[j] < ratios[j-1]; j-- {
			ratios[j], ratios[j-1] = ratios[j-1], ratios[j]
		}
	}
	return ratios[len(ratios)/2], nil
}

// RelaxationTime converts a decay factor rho in (0, 1) into the
// relaxation time 1/(1-rho) — the timescale on which the chain forgets
// its start, and the quantity Theorem 1 implies is Theta(m) for
// Scenario A.
func RelaxationTime(rho float64) float64 {
	if rho <= 0 || rho >= 1 {
		panic("markov: decay factor must be in (0, 1)")
	}
	return 1 / (1 - rho)
}

// EstimateRelaxation runs the TV curve from the given start until the
// distance decays below cutoff (or maxT), then estimates the decay rate
// from its tail. Convenience wrapper used by the exact experiments.
func (m *Matrix) EstimateRelaxation(start int, pi []float64, maxT int) (rho float64, err error) {
	curve := m.TVCurve(start, pi, maxT)
	// Truncate once the curve is numerically dead.
	end := len(curve)
	for end > 1 && curve[end-1] < 1e-12 {
		end--
	}
	return DecayRate(curve[:end], int(math.Max(8, float64(end/4))))
}
