package markov

import (
	"fmt"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rules"
)

// AllocChain is the exact Markov chain of a closed dynamic allocation
// process on Omega_m (Section 3.3 of the paper): states are the
// normalized load vectors, and one transition is a remove-then-insert
// phase under the given scenario and rule.
type AllocChain struct {
	Scenario process.Scenario
	Rule     rules.ExactRule
	NBins    int
	Balls    int

	states []loadvec.Vector
	index  map[string]int
}

// NewAllocChain enumerates Omega_m and returns the chain. It panics if
// the state space would be enormous; the exact experiments use small
// n and m on purpose.
func NewAllocChain(sc process.Scenario, rule rules.ExactRule, n, m int) *AllocChain {
	if m < 1 {
		panic("markov: closed allocation chain needs m >= 1")
	}
	if count := loadvec.CountStates(n, m); count > 200000 {
		panic(fmt.Sprintf("markov: Omega_%d with %d bins has %d states; too large for exact analysis", m, n, count))
	}
	states := loadvec.Enumerate(n, m)
	index := make(map[string]int, len(states))
	for i, s := range states {
		index[s.Key()] = i
	}
	return &AllocChain{Scenario: sc, Rule: rule, NBins: n, Balls: m, states: states, index: index}
}

// NumStates implements Chain.
func (c *AllocChain) NumStates() int { return len(c.states) }

// State returns the load vector of state s.
func (c *AllocChain) State(s int) loadvec.Vector { return c.states[s] }

// Index returns the state id of a load vector.
func (c *AllocChain) Index(v loadvec.Vector) int {
	i, ok := c.index[v.Key()]
	if !ok {
		panic(fmt.Sprintf("markov: vector %v not in Omega_%d", v, c.Balls))
	}
	return i
}

// removalProbs returns the distribution over removal positions for v.
func (c *AllocChain) removalProbs(v loadvec.Vector) []float64 {
	n := v.N()
	p := make([]float64, n)
	switch c.Scenario {
	case process.ScenarioA:
		m := float64(v.Total())
		for i, x := range v {
			p[i] = float64(x) / m
		}
	case process.ScenarioB:
		s := v.NonEmpty()
		for i := 0; i < s; i++ {
			p[i] = 1 / float64(s)
		}
	default:
		panic("markov: unknown scenario")
	}
	return p
}

// Transitions implements Chain by composing the exact removal and
// insertion distributions.
func (c *AllocChain) Transitions(s int) []Edge {
	v := c.states[s]
	acc := make(map[int]float64)
	for i, pRem := range c.removalProbs(v) {
		if pRem == 0 {
			continue
		}
		vStar := v.Clone()
		vStar.Remove(i)
		ins := c.Rule.ChoiceProbs(vStar)
		for j, pIns := range ins {
			if pIns == 0 {
				continue
			}
			vEnd := vStar.Clone()
			vEnd.Add(j)
			acc[c.Index(vEnd)] += pRem * pIns
		}
	}
	edges := make([]Edge, 0, len(acc))
	for to, p := range acc {
		edges = append(edges, Edge{To: to, P: p})
	}
	return edges
}
