// Package replica is the log-shipping replication layer of the live
// allocation service: a primary-side Streamer that serves the WAL as
// an ordered frame stream over the dgram protocol, and a follower-side
// Follower that persists its own copy of the stream, continuously
// replays it into a warm serve.Store, and can be promoted into a
// serving primary on demand.
//
// The wire conversation (frame codecs in internal/dgram):
//
//	SUBSCRIBE(afterSeq)  follower → primary   open/resume a stream
//	SNAPSHOT(seq, image) primary → follower   bootstrap/resync image
//	SEG_HDR(firstSeq)    primary → follower   segment boundary
//	REC_BATCH(records)   primary → follower   seq-ordered WAL records
//	HEARTBEAT(lastSeq)   primary → follower   durable seq while caught up
//	PROMOTE(force)       follower → primary   stand-down fence
//	PROMOTE_OK(lastSeq)  primary → follower   final durable seq
//
// Everything the primary ships comes off disk through the vfs seam
// (wal.TailReader), never from the live store, so what a follower
// applies is exactly what a local restore would replay — replication
// is restore, streamed. The one exception is bootstrap: balanced
// seeding at first boot never hits the WAL (it predates the journal
// hook), so a fresh subscription is primed with the primary's latest
// checkpoint as a SNAPSHOT frame, and the record stream tails from the
// snapshot's seq. See docs/REPLICATION.md for the full walkthrough.
package replica

import (
	"errors"
	"fmt"

	"dynalloc/internal/checkpoint"
	"dynalloc/internal/dgram"
	"dynalloc/internal/vfs"
	"dynalloc/internal/wal"
)

// ErrStreamGap is returned when the log cannot serve a contiguous
// record stream (truncated under the reader) and a snapshot resync did
// not restore continuity. The caller drops the subscription; the
// follower redials and resubscribes from its own durable seq.
var ErrStreamGap = errors.New("replica: record stream gap")

// ShipperConfig configures the primary-side stream pump.
type ShipperConfig struct {
	// FS and Dir locate the primary's WAL + checkpoint directory (use
	// Log.FS()/Log.Dir() of the live journal's log).
	FS  vfs.FS
	Dir string
	// BatchRecords caps records per REC_BATCH frame (default 256).
	BatchRecords int
	// ForceSnapshot primes the stream with a snapshot even when the log
	// could serve afterSeq, and rewinds the stream to the snapshot's
	// seq. The Streamer sets it when a subscriber claims a seq the
	// primary has never issued — a divergent timeline left behind by a
	// primary restore — so the follower is pulled back onto the
	// primary's history instead of silently missing re-issued seqs.
	ForceSnapshot bool
}

func (c *ShipperConfig) fill() {
	if c.FS == nil {
		c.FS = vfs.OS
	}
	if c.BatchRecords <= 0 {
		c.BatchRecords = 256
	}
	if c.BatchRecords > dgram.MaxBatchRecords {
		c.BatchRecords = dgram.MaxBatchRecords
	}
}

// Shipper turns one subscription (an afterSeq) into the SNAPSHOT /
// SEG_HDR / REC_BATCH frame sequence, by pumping a wal.TailReader and
// priming (or resyncing) from the latest checkpoint when the log alone
// cannot serve the requested position. It is a synchronous,
// single-goroutine pump: the Streamer drives one per connection, and
// the deterministic replication schedules drive one directly against a
// Follower with no network in between.
type Shipper struct {
	cfg   ShipperConfig
	after uint64
	tail  *wal.TailReader
	pbuf  []byte // payload encode scratch

	// gapCovered detects a resync that made no progress: a second gap
	// at the same covered seq means the checkpoint cannot bridge it.
	gapCovered uint64
	gapSeen    bool
}

// NewShipper returns a Shipper serving a subscription that has already
// applied afterSeq.
func NewShipper(cfg ShipperConfig, afterSeq uint64) *Shipper {
	cfg.fill()
	return &Shipper{cfg: cfg, after: afterSeq}
}

// Close releases the underlying tail reader.
func (s *Shipper) Close() {
	if s.tail != nil {
		s.tail.Close()
		s.tail = nil
	}
}

// Covered returns the highest seq the shipper has streamed (or the
// subscription floor).
func (s *Shipper) Covered() uint64 {
	if s.tail != nil {
		return s.tail.Covered()
	}
	return s.after
}

// Pump advances the stream, emitting frames through send until it is
// caught up with the live log (returns caughtUp=true) or send fails.
// A seq gap triggers one snapshot resync in place; a gap the snapshot
// cannot bridge is ErrStreamGap.
func (s *Shipper) Pump(send func(t dgram.Type, payload []byte) error) (caughtUp bool, err error) {
	if s.tail == nil {
		if err := s.initTail(send); err != nil {
			return false, err
		}
	}
	for {
		res, err := s.tail.Next(s.cfg.BatchRecords)
		if err != nil {
			return false, err
		}
		switch res.Event {
		case wal.TailSegment:
			s.pbuf = dgram.AppendSegHdr(s.pbuf[:0], dgram.SegHdr{FirstSeq: res.FirstSeq})
			if err := send(dgram.TSegHdr, s.pbuf); err != nil {
				return false, err
			}
		case wal.TailRecords:
			s.pbuf = dgram.AppendRecBatch(s.pbuf[:0], res.Records)
			if err := send(dgram.TRecBatch, s.pbuf); err != nil {
				return false, err
			}
			s.gapSeen = false
		case wal.TailCaughtUp:
			return true, nil
		case wal.TailGap:
			// The log was truncated under the reader (or an aborted
			// append lost records). Resync from the latest checkpoint:
			// it always covers at least the truncation point.
			covered := s.tail.Covered()
			if s.gapSeen && covered == s.gapCovered {
				return false, fmt.Errorf("%w: at seq %d, next segment opens at %d", ErrStreamGap, covered, res.FirstSeq)
			}
			s.gapSeen, s.gapCovered = true, covered
			s.tail.Close()
			s.tail = nil
			s.after = covered
			if err := s.resync(send); err != nil {
				return false, err
			}
		}
	}
}

// initTail primes a new subscription: decide whether the log alone can
// serve afterSeq+1 onward, send a SNAPSHOT when it cannot (or when the
// follower is fresh — boot seeding lives only in the checkpoint), and
// open the tail at the right floor.
func (s *Shipper) initTail(send func(dgram.Type, []byte) error) error {
	snap, _, err := checkpoint.LoadLatestFS(s.cfg.FS, s.cfg.Dir)
	haveCkpt := err == nil
	if err != nil && !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		return fmt.Errorf("replica: load checkpoint: %w", err)
	}
	segs, err := wal.SegmentsFS(s.cfg.FS, s.cfg.Dir)
	if err != nil {
		return err
	}

	need := false
	if haveCkpt {
		switch {
		case s.cfg.ForceSnapshot:
			need = true // divergent subscriber: rewind onto our history
		case s.after == 0:
			// A fresh follower must get the boot image: seeded balls
			// predate the journal hook and exist in no WAL record.
			need = true
		case len(segs) > 0 && segs[0].FirstSeq > s.after+1:
			need = true // retained log starts past the follower
		case len(segs) == 0 && snap.Seq > s.after:
			need = true // log fully truncated past the follower
		}
	}
	after := s.after
	if need {
		s.pbuf = dgram.AppendSnapshotMsg(s.pbuf[:0], dgram.SnapshotMsg{
			Seq:    snap.Seq,
			Allocs: snap.Allocs,
			Frees:  snap.Frees,
			Loads:  snap.Loads,
		})
		if err := send(dgram.TSnapshot, s.pbuf); err != nil {
			return err
		}
		if s.cfg.ForceSnapshot {
			after = snap.Seq // rewind, even below the claimed afterSeq
		} else if snap.Seq > after {
			after = snap.Seq
		}
	}
	s.tail = wal.NewTailReaderFS(s.cfg.FS, s.cfg.Dir, after)
	return nil
}

// resync is initTail for the mid-stream gap case: the snapshot is
// mandatory (a gap means the log alone cannot continue).
func (s *Shipper) resync(send func(dgram.Type, []byte) error) error {
	snap, _, err := checkpoint.LoadLatestFS(s.cfg.FS, s.cfg.Dir)
	if err != nil {
		if errors.Is(err, checkpoint.ErrNoCheckpoint) {
			return fmt.Errorf("%w: no checkpoint to resync from", ErrStreamGap)
		}
		return fmt.Errorf("replica: resync: %w", err)
	}
	s.pbuf = dgram.AppendSnapshotMsg(s.pbuf[:0], dgram.SnapshotMsg{
		Seq:    snap.Seq,
		Allocs: snap.Allocs,
		Frees:  snap.Frees,
		Loads:  snap.Loads,
	})
	if err := send(dgram.TSnapshot, s.pbuf); err != nil {
		return err
	}
	after := s.after
	if snap.Seq > after {
		after = snap.Seq
	}
	s.tail = wal.NewTailReaderFS(s.cfg.FS, s.cfg.Dir, after)
	return nil
}
