package replica

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dynalloc/internal/dgram"
	"dynalloc/internal/rng"
	"dynalloc/internal/serve"
	"dynalloc/internal/simfs"
	"dynalloc/internal/wal"
)

// These tests run the full wire path — Streamer serving a live
// journal's directory over TCP, Follower.Run subscribed to it — and
// pin the promotion state machine: the split-brain guard, the forced
// fence handshake, and the journal re-arm a promoted standby performs.

func waitFor(t *testing.T, d time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// livePair wires a primary + streamer to a running follower over
// loopback TCP and returns both plus the follower's pieces.
type livePair struct {
	p       *primary
	str     *Streamer
	sfs     *simfs.FS
	sst     *serve.Store
	f       *Follower
	cancel  context.CancelFunc
	runDone chan struct{}
	fenced  *atomic.Bool
}

func startLivePair(t *testing.T, hbTimeout time.Duration) *livePair {
	t.Helper()
	p := newPrimary(t, 6, wal.FsyncAlways)
	fenced := &atomic.Bool{}
	str, err := NewStreamer(StreamerConfig{
		FS:      p.fs,
		Dir:     p.dir,
		LastSeq: p.j.LastSeq,
		OnPromote: func(force bool) (uint64, error) {
			fenced.Store(true)
			p.j.Drain()
			return p.j.LastSeq(), nil
		},
		Heartbeat:    20 * time.Millisecond,
		Poll:         2 * time.Millisecond,
		BatchRecords: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go str.Serve(ln)
	t.Cleanup(func() { str.Close() })

	sfs := simfs.New()
	sst := serve.NewStoreShards(schedN, schedShards)
	f, _, err := NewFollower(FollowerConfig{
		Store:            sst,
		FS:               sfs,
		Dir:              "/standby",
		Fsync:            wal.FsyncAlways,
		SegmentBytes:     tinySeg,
		HeartbeatTimeout: hbTimeout,
		RetryEvery:       10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() {
		f.Run(ctx, ln.Addr().String())
		close(runDone)
	}()
	t.Cleanup(cancel)
	return &livePair{p: p, str: str, sfs: sfs, sst: sst, f: f, cancel: cancel, runDone: runDone, fenced: fenced}
}

func (lp *livePair) waitCaughtUp(t *testing.T) {
	t.Helper()
	waitFor(t, 3*time.Second, "follower catch-up", func() bool {
		return lp.f.AppliedSeq() == lp.p.j.LastSeq() && lp.f.Status().Connected
	})
}

// TestPromoteSplitBrainGuard: while the subscription has a live,
// heartbeating primary, Promote without force must refuse; with force
// it fences the primary through the PROMOTE handshake, applies its
// final tail, and hands over at exactly the primary's last seq. The
// promoted standby then re-arms a journal on its own directory and
// keeps a bit-exact durable trail.
func TestPromoteSplitBrainGuard(t *testing.T) {
	lp := startLivePair(t, 500*time.Millisecond)
	r := rng.New(7)
	lp.p.mutate(r, 80)
	lp.waitCaughtUp(t)

	if _, err := lp.f.Promote(false); !errors.Is(err, ErrPrimaryAlive) {
		t.Fatalf("promote alongside a live primary: err=%v, want ErrPrimaryAlive", err)
	}
	if lp.fenced.Load() {
		t.Fatal("refused promote still fenced the primary")
	}

	res, err := lp.f.Promote(true)
	if err != nil {
		t.Fatalf("forced promote: %v", err)
	}
	if !res.Forced {
		t.Fatal("forced promote not marked Forced")
	}
	if !lp.fenced.Load() {
		t.Fatal("forced promote never fenced the primary")
	}
	if want := lp.p.j.LastSeq(); res.LastSeq != want {
		t.Fatalf("promoted at seq %d, primary durable seq %d", res.LastSeq, want)
	}
	select {
	case <-lp.runDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not exit after promotion")
	}
	if err := lp.f.Deliver(dgram.THeartbeat, dgram.AppendHeartbeat(nil, dgram.Heartbeat{LastSeq: 1})); !errors.Is(err, ErrPromoted) {
		t.Fatalf("post-promotion Deliver: err=%v, want ErrPromoted", err)
	}

	pl, sl := lp.p.st.LoadsCopy(), lp.sst.LoadsCopy()
	for b := range pl {
		if pl[b] != sl[b] {
			t.Fatalf("bin %d: promoted standby %d, primary %d", b, sl[b], pl[b])
		}
	}

	// Re-arm: open a fresh journal on the promoted standby's own
	// directory — what the daemon does on POST /promote — write through
	// it, and prove the durable trail stays bit-exact.
	l2, err := wal.Open(wal.Options{Dir: "/standby", FS: lp.sfs, Fsync: wal.FsyncAlways, SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	j2 := serve.NewJournal(lp.sst, l2, res.LastSeq, serve.JournalOptions{MaxBatch: 4, SyncWriter: true})
	lp.sst.Alloc(0)
	lp.sst.Alloc(1)
	lp.sst.FreeBin(2)
	j2.Drain()
	if _, _, err := j2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	ref := serve.NewStoreShards(schedN, schedShards)
	if _, err := serve.RestoreFS(ref, lp.sfs, "/standby"); err != nil {
		t.Fatal(err)
	}
	rl, sl2 := ref.LoadsCopy(), lp.sst.LoadsCopy()
	for b := range rl {
		if rl[b] != sl2[b] {
			t.Fatalf("re-armed journal: bin %d restored to %d, warm %d", b, rl[b], sl2[b])
		}
	}
}

// TestPromoteAfterPrimaryDeath: once the primary is gone and the
// heartbeat window lapses, an unforced promote succeeds and serves
// exactly the state the primary had shipped.
func TestPromoteAfterPrimaryDeath(t *testing.T) {
	lp := startLivePair(t, 100*time.Millisecond)
	r := rng.New(8)
	lp.p.mutate(r, 60)
	lp.waitCaughtUp(t)

	// Kill the primary's streaming side entirely (the drill does this
	// with kill -9; here Close drops the listener and every conn).
	lp.str.Close()
	waitFor(t, 2*time.Second, "subscription death", func() bool {
		return !lp.f.Status().Connected
	})
	time.Sleep(120 * time.Millisecond) // let the heartbeat window lapse

	res, err := lp.f.Promote(false)
	if err != nil {
		t.Fatalf("promote after primary death: %v", err)
	}
	if res.Forced {
		t.Fatal("dead-primary promote should not be Forced")
	}
	if want := lp.p.j.LastSeq(); res.LastSeq != want {
		t.Fatalf("promoted at seq %d, want primary's last durable %d", res.LastSeq, want)
	}
	pl, sl := lp.p.st.LoadsCopy(), lp.sst.LoadsCopy()
	for b := range pl {
		if pl[b] != sl[b] {
			t.Fatalf("bin %d: promoted standby %d, primary %d", b, sl[b], pl[b])
		}
	}
}
