package replica

import (
	"errors"
	"testing"

	"dynalloc/internal/dgram"
	"dynalloc/internal/rng"
	"dynalloc/internal/serve"
	"dynalloc/internal/simfs"
	"dynalloc/internal/wal"
)

// The tests in this file drive the replication pipeline with no
// network: a Shipper pumping frames straight into a Follower's
// Deliver, both on simulated filesystems. This is the same coupling
// the Streamer provides over TCP, minus the sockets — so every
// schedule is deterministic and crash points are exact.

const (
	schedN      = 16
	schedShards = 4
)

// tinySeg forces a rotation every ~20 records so schedules exercise
// segment boundaries constantly.
var tinySeg = int64(16 + 20*wal.RecordSize)

// primary is a journaled store on its own simulated filesystem.
type primary struct {
	t     *testing.T
	fs    *simfs.FS
	dir   string
	fsync wal.FsyncPolicy
	l     *wal.Log
	st    *serve.Store
	j     *serve.Journal
}

func newPrimary(t *testing.T, fill int, fsync wal.FsyncPolicy) *primary {
	t.Helper()
	p := &primary{t: t, fs: simfs.New(), dir: "/primary", fsync: fsync}
	l, err := wal.Open(wal.Options{Dir: p.dir, FS: p.fs, Fsync: fsync, SegmentBytes: tinySeg})
	if err != nil {
		t.Fatal(err)
	}
	p.l = l
	p.st = serve.NewStoreShards(schedN, schedShards)
	p.st.FillBalanced(fill)
	p.j = serve.NewJournal(p.st, l, 0, serve.JournalOptions{Buffer: 8192, MaxBatch: 4, SyncWriter: true})
	p.j.Drain()
	// The boot image: balanced seeding predates the journal hook, so
	// it exists only here — exactly the production layout a fresh
	// subscription must be able to bootstrap from.
	if _, _, err := p.j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return p
}

// mutate applies ops random mutations and drains them to the log.
func (p *primary) mutate(r *rng.RNG, ops int) {
	for i := 0; i < ops; i++ {
		switch r.Intn(10) {
		case 0, 1, 2:
			p.st.FreeBin(r.Intn(schedN)) // empty-bin errors are fine: not journaled
		case 3:
			p.st.Crash(r.Intn(schedN), 1+r.Intn(3))
		default:
			p.st.Alloc(r.Intn(schedN))
		}
	}
	p.j.Drain()
}

// checkpoint cuts a checkpoint (which also prunes + truncates the log
// behind the oldest retained one).
func (p *primary) checkpoint() {
	p.t.Helper()
	if _, _, err := p.j.Checkpoint(); err != nil {
		p.t.Fatal(err)
	}
}

// powerCutRestart kills the primary process (losing unsynced bytes per
// its fsync policy) and restores a fresh store + journal from disk.
func (p *primary) powerCutRestart() {
	p.t.Helper()
	p.j.Close() // best effort; the cut below fences everything anyway
	p.fs.PowerCut(nil)
	l, err := wal.Open(wal.Options{Dir: p.dir, FS: p.fs, Fsync: p.fsync, SegmentBytes: tinySeg})
	if err != nil {
		p.t.Fatal(err)
	}
	st := serve.NewStoreShards(schedN, schedShards)
	res, err := serve.RestoreFS(st, p.fs, p.dir)
	if err != nil {
		p.t.Fatal(err)
	}
	p.l = l
	p.st = st
	p.j = serve.NewJournal(st, l, res.LastSeq, serve.JournalOptions{Buffer: 8192, MaxBatch: 4, SyncWriter: true})
}

// standby is a Follower on its own simulated filesystem.
type standby struct {
	fs *simfs.FS
	st *serve.Store
	f  *Follower
}

func openStandby(t *testing.T, fs *simfs.FS) *standby {
	t.Helper()
	st := serve.NewStoreShards(schedN, schedShards)
	f, _, err := NewFollower(FollowerConfig{
		Store:           st,
		FS:              fs,
		Dir:             "/standby",
		Fsync:           wal.FsyncAlways,
		SegmentBytes:    tinySeg,
		CheckpointEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &standby{fs: fs, st: st, f: f}
}

func newStandby(t *testing.T) *standby { return openStandby(t, simfs.New()) }

// powerCut kills the standby process and reopens it from its own
// durable state — the old Follower's handles are fenced and abandoned.
func (s *standby) powerCut(t *testing.T) *standby {
	t.Helper()
	s.fs.PowerCut(nil)
	return openStandby(t, s.fs)
}

// errShipStop is the sentinel a frame budget stops a ship with.
var errShipStop = errors.New("ship stop")

// ship streams the primary's log into the standby, exactly as one
// Streamer connection would: a fresh subscription from the follower's
// applied seq, with the divergent-subscriber snapshot check. maxFrames
// > 0 cuts the stream after that many frames (a mid-flight
// disconnect). Returns frames delivered and whether it caught up.
func ship(t *testing.T, p *primary, s *standby, maxFrames int) (int, bool) {
	t.Helper()
	after := s.f.AppliedSeq()
	sh := NewShipper(ShipperConfig{
		FS:            p.fs,
		Dir:           p.dir,
		BatchRecords:  5,
		ForceSnapshot: after > p.j.LastSeq(),
	}, after)
	defer sh.Close()
	n := 0
	caught, err := sh.Pump(func(ty dgram.Type, payload []byte) error {
		if maxFrames > 0 && n >= maxFrames {
			return errShipStop
		}
		n++
		return s.f.Deliver(ty, payload)
	})
	if err != nil && !errors.Is(err, errShipStop) {
		t.Fatalf("ship: %v", err)
	}
	return n, caught
}

// assertConverged checks the two invariants of a quiesced, caught-up
// pair: the standby's warm store is bit-exact with the primary, and
// bit-exact with a reference restore of the standby's own directory
// (the state a restart — or a promotion — would serve from).
func assertConverged(t *testing.T, p *primary, s *standby, repro string) {
	t.Helper()
	pl, sl := p.st.LoadsCopy(), s.st.LoadsCopy()
	for b := range pl {
		if pl[b] != sl[b] {
			t.Fatalf("bin %d: standby %d, primary %d (%s)", b, sl[b], pl[b], repro)
		}
	}
	if p.st.Allocs() != s.st.Allocs() || p.st.Frees() != s.st.Frees() {
		t.Fatalf("op clocks: standby %d/%d, primary %d/%d (%s)",
			s.st.Allocs(), s.st.Frees(), p.st.Allocs(), p.st.Frees(), repro)
	}
	assertSelfConsistent(t, s, repro)
}

// assertSelfConsistent checks the standby's warm store against a
// reference restore of its own directory.
func assertSelfConsistent(t *testing.T, s *standby, repro string) {
	t.Helper()
	ref := serve.NewStoreShards(schedN, schedShards)
	res, err := serve.RestoreFS(ref, s.fs.Clone(), "/standby")
	if err != nil {
		t.Fatalf("reference restore: %v (%s)", err, repro)
	}
	if res.LastSeq != s.f.AppliedSeq() {
		t.Fatalf("reference replay reaches seq %d, warm store claims %d (%s)",
			res.LastSeq, s.f.AppliedSeq(), repro)
	}
	rl, sl := ref.LoadsCopy(), s.st.LoadsCopy()
	for b := range rl {
		if rl[b] != sl[b] {
			t.Fatalf("bin %d: warm %d, own-dir replay %d (%s)", b, sl[b], rl[b], repro)
		}
	}
	if ref.Allocs() != s.st.Allocs() || ref.Frees() != s.st.Frees() {
		t.Fatalf("op clocks: warm %d/%d, own-dir replay %d/%d (%s)",
			s.st.Allocs(), s.st.Frees(), ref.Allocs(), ref.Frees(), repro)
	}
}

// TestShipBootstrapAndFollow is the happy path: a fresh follower gets
// the boot image as a SNAPSHOT (seeded balls exist in no WAL record),
// then incremental batches as the primary keeps writing.
func TestShipBootstrapAndFollow(t *testing.T) {
	r := rng.New(1)
	p := newPrimary(t, 6, wal.FsyncAlways)
	s := newStandby(t)

	if _, caught := ship(t, p, s, 0); !caught {
		t.Fatal("bootstrap ship did not catch up")
	}
	if s.f.Status().Snapshots != 1 {
		t.Fatalf("bootstrap used %d snapshots, want exactly 1", s.f.Status().Snapshots)
	}
	if s.st.Total() != p.st.Total() {
		t.Fatalf("seeded balls missing: standby total %d, primary %d", s.st.Total(), p.st.Total())
	}
	assertConverged(t, p, s, "bootstrap")

	for i := 0; i < 5; i++ {
		p.mutate(r, 40)
		if _, caught := ship(t, p, s, 0); !caught {
			t.Fatalf("follow round %d did not catch up", i)
		}
	}
	// The first follow round still subscribes from seq 0 (a seq-0
	// subscriber is indistinguishable from a fresh one, so it gets the
	// boot image again — idempotent); every later round streams records
	// only.
	if s.f.Status().Snapshots != 2 {
		t.Fatalf("steady-state follow resynced: %d snapshots, want 2", s.f.Status().Snapshots)
	}
	assertConverged(t, p, s, "follow")
}

// TestShipTruncationResync pins the gap path: the primary checkpoints
// and truncates past a lagging follower's position, so the next
// subscription cannot be served from the log alone and must be primed
// with a snapshot — after which it converges exactly.
func TestShipTruncationResync(t *testing.T) {
	r := rng.New(2)
	p := newPrimary(t, 4, wal.FsyncAlways)
	s := newStandby(t)
	ship(t, p, s, 0)

	// The follower sleeps while the primary writes on and checkpoints
	// twice (truncation runs behind the *oldest* retained checkpoint).
	p.mutate(r, 120)
	p.checkpoint()
	p.mutate(r, 120)
	p.checkpoint()

	before := s.f.Status().Snapshots
	if _, caught := ship(t, p, s, 0); !caught {
		t.Fatal("resync ship did not catch up")
	}
	if got := s.f.Status().Snapshots; got != before+1 {
		t.Fatalf("truncation resync used %d snapshots, want 1", got-before)
	}
	assertConverged(t, p, s, "truncation resync")
}

// TestShipDivergentFollowerRewound pins the fencing rule for a
// follower that outlived the primary's durable state: the primary
// lost unsynced records in a power cut, restarted, and re-issued seqs
// the follower had already applied from the dead timeline. The
// subscription must be rewound onto the primary's history with a
// forced snapshot, never silently resumed.
func TestShipDivergentFollowerRewound(t *testing.T) {
	r := rng.New(3)
	p := newPrimary(t, 4, wal.FsyncNever) // unsynced tail dies with the process
	s := newStandby(t)
	p.mutate(r, 80)
	// Seal flushes the bufio tail into the (simulated) page cache —
	// visible to the tail reader, but NOT durable under FsyncNever.
	if err := p.l.Seal(); err != nil {
		t.Fatal(err)
	}
	ship(t, p, s, 0) // follower applies the full (partly unsynced) log

	ahead := s.f.AppliedSeq()
	p.powerCutRestart()
	if p.j.LastSeq() >= ahead {
		t.Fatalf("schedule did not diverge: primary restored to %d, follower at %d", p.j.LastSeq(), ahead)
	}
	// The restarted primary writes its own history over the re-issued
	// seq range.
	p.mutate(r, 60)
	p.checkpoint()

	if _, caught := ship(t, p, s, 0); !caught {
		t.Fatal("divergent ship did not catch up")
	}
	assertConverged(t, p, s, "divergent rewind")
}
