package replica

import (
	"flag"
	"fmt"
	"testing"

	"dynalloc/internal/rng"
	"dynalloc/internal/wal"
)

// Randomized-but-deterministic replication schedules: each seed fully
// determines the mutation stream, the ship/disconnect points, the
// crash kind and position, and the fsync policies — so any failure
// reproduces with the one-liner printed in its message:
//
//	go test ./internal/replica -run Schedules -replica.seed=<seed>
var (
	replicaSeed      = flag.Int64("replica.seed", 0, "run exactly one replication schedule (0 = the default sweep)")
	replicaSchedules = flag.Int("replica.schedules", 24, "number of seeds in the default sweep")
)

func TestReplicationSchedules(t *testing.T) {
	if *replicaSeed != 0 {
		runSchedule(t, *replicaSeed)
		return
	}
	const base = int64(0xD1CE)
	for i := 0; i < *replicaSchedules; i++ {
		seed := base + int64(i)*7919
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runSchedule(t, seed) })
	}
}

// runSchedule plays one seeded scenario: a primary and a standby with
// random mutation bursts, partial ships, power cuts on either side,
// checkpoint truncation, and lying fsyncs — then quiesces, ships to
// caught-up, and requires full bit-exact convergence.
func runSchedule(t *testing.T, seed int64) {
	repro := fmt.Sprintf("re-run with -replica.seed=%d", seed)
	r := rng.New(uint64(seed))

	fsync := wal.FsyncAlways
	if r.Bool() {
		fsync = wal.FsyncNever // primary power cuts lose the tail: divergence territory
	}
	p := newPrimary(t, 1+r.Intn(8), fsync)
	s := newStandby(t)

	phases := 3 + r.Intn(5)
	for i := 0; i < phases; i++ {
		p.mutate(r, 10+r.Intn(60))
		// Under FsyncNever the drained batches sit in the log's bufio;
		// seal so the tail reader can see them (still not durable).
		if fsync == wal.FsyncNever {
			if err := p.l.Seal(); err != nil {
				t.Fatalf("seal: %v (%s)", err, repro)
			}
		}
		switch r.Intn(5) {
		case 0: // clean full ship
			ship(t, p, s, 0)
		case 1: // subscription dies mid-stream, then the standby loses power
			ship(t, p, s, 1+r.Intn(6))
			s = s.powerCut(t)
		case 2: // primary checkpoints twice: truncation may outrun the standby
			p.checkpoint()
			p.mutate(r, 5+r.Intn(20))
			p.checkpoint()
			ship(t, p, s, 0)
		case 3: // primary power-cut restart (lossy under FsyncNever)
			p.powerCutRestart()
			ship(t, p, s, 0)
		case 4: // the standby's disk lies about an fsync, then power cuts
			s.fs.LieOnSync(r.Intn(4))
			ship(t, p, s, 1+r.Intn(8))
			s = s.powerCut(t)
		}
	}

	// Quiesce and converge.
	p.mutate(r, 5+r.Intn(20))
	if fsync == wal.FsyncNever {
		if err := p.l.Seal(); err != nil {
			t.Fatalf("final seal: %v (%s)", err, repro)
		}
	}
	if _, caught := ship(t, p, s, 0); !caught {
		t.Fatalf("final ship did not catch up (%s)", repro)
	}
	assertConverged(t, p, s, repro)
}

// TestFollowerDoubleCrashBitExact is the pinned double-fault scenario:
// the standby power-cuts twice in a row mid-replay — once inside the
// bootstrap snapshot's follow-up batches, once again right after
// resubscribing — and must still converge to a warm store that is
// bit-exact both with the primary and with a reference replay of its
// own directory.
func TestFollowerDoubleCrashBitExact(t *testing.T) {
	r := rng.New(0xDB1)
	p := newPrimary(t, 5, wal.FsyncAlways)
	s := newStandby(t)
	p.mutate(r, 150)

	// First crash: a handful of frames into the stream.
	if n, caught := ship(t, p, s, 4); caught {
		t.Fatalf("truncated ship (%d frames) claims caught up", n)
	}
	s = s.powerCut(t)
	mid := s.f.AppliedSeq()

	// Second crash: immediately after resubscribing from the restored
	// seq, a few frames further in.
	if _, caught := ship(t, p, s, 3); caught {
		t.Fatal("second truncated ship claims caught up")
	}
	s = s.powerCut(t)
	if got := s.f.AppliedSeq(); got < mid {
		t.Fatalf("second restart regressed below the first: %d < %d", got, mid)
	}

	if _, caught := ship(t, p, s, 0); !caught {
		t.Fatal("final ship did not catch up")
	}
	assertConverged(t, p, s, "double crash")
}
