package replica

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dynalloc/internal/checkpoint"
	"dynalloc/internal/dgram"
	"dynalloc/internal/metrics"
	"dynalloc/internal/serve"
	"dynalloc/internal/vfs"
	"dynalloc/internal/wal"
)

// ErrPrimaryAlive is returned by Promote when the subscription still
// has a live primary and force was not set — the split-brain guard.
var ErrPrimaryAlive = errors.New("replica: primary still alive (use force to fence and take over)")

// ErrPromoted is returned by Deliver and Run after promotion: the
// follower has become a primary and applies nothing further.
var ErrPromoted = errors.New("replica: already promoted")

// FollowerConfig configures a hot standby.
type FollowerConfig struct {
	// Store is the warm store the stream is continuously applied to.
	// It must have no journal hook installed (the follower IS the
	// journal until promotion) and no traffic until Promote returns.
	Store *serve.Store
	// FS and Dir locate the follower's own WAL + checkpoint directory.
	FS  vfs.FS
	Dir string
	// Fsync/SegmentBytes configure the follower's local log copy
	// (defaults mirror wal.Options).
	Fsync        wal.FsyncPolicy
	SegmentBytes int64
	// CheckpointEvery, when positive, writes a local checkpoint after
	// that many applied records, bounding the replay a follower restart
	// (or the promotion hand-off) pays. 0 checkpoints only on snapshot.
	CheckpointEvery int64
	// KeepCheckpoints retains this many local checkpoints (default 2).
	KeepCheckpoints int
	// HeartbeatTimeout is how long the subscription may be silent
	// before the primary is presumed dead (default 2s). Promote without
	// force refuses while the subscription is within this window.
	HeartbeatTimeout time.Duration
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// RetryEvery is the redial backoff (default 250ms).
	RetryEvery time.Duration
}

func (c *FollowerConfig) fill() error {
	if c.Store == nil {
		return errors.New("replica: follower needs a store")
	}
	if c.Dir == "" {
		return errors.New("replica: follower needs a directory")
	}
	if c.FS == nil {
		c.FS = vfs.OS
	}
	if c.KeepCheckpoints <= 0 {
		c.KeepCheckpoints = 2
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 2 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RetryEvery <= 0 {
		c.RetryEvery = 250 * time.Millisecond
	}
	return nil
}

// Status is a point-in-time view of the follower, served by the
// daemon's /state endpoint in replica mode.
type Status struct {
	AppliedSeq   uint64 `json:"applied_seq"`
	PrimarySeq   uint64 `json:"primary_seq"`
	LagSeq       uint64 `json:"lag_seq"`
	LagBytes     uint64 `json:"lag_bytes"`
	Connected    bool   `json:"connected"`
	Promoted     bool   `json:"promoted"`
	SkippedFrees int64  `json:"skipped_frees"`
	Snapshots    int64  `json:"snapshots"`
}

// PromoteResult reports a completed promotion.
type PromoteResult struct {
	LastSeq      uint64 // seq the promoted state is consistent with
	Forced       bool   // the primary was fenced rather than observed dead
	SkippedFrees int64
}

// Follower is a hot standby: it persists the primary's record stream
// into its own WAL directory, applies every record to a warm store as
// it arrives, and tracks how far behind the primary it is
// (replica.lag.{seq,bytes}). Deliver is the single-writer core —
// called either by Run's connection loop or directly by the
// deterministic replication schedules — and Promote turns the standby
// into a primary-ready state: stream stopped, local log sealed and
// closed, ready for a fresh journal + detector to re-arm on top.
type Follower struct {
	cfg FollowerConfig
	log *wal.Log

	mu           sync.Mutex
	appliedSeq   uint64
	primarySeq   uint64
	lastContact  time.Time
	connected    bool
	promoted     bool
	closed       bool
	conn         net.Conn // live subscription, for the promote fence
	skippedFrees int64
	snapshots    int64
	sinceCkpt    int64
	promoteOK    chan uint64 // signalled by Deliver on TPromoteOK

	recbuf  []byte // grow-only frame encode scratch (subscribe/promote)
	recs    []wal.Record
	loadbuf []int32
}

// NewFollower restores the follower's warm store from its own
// directory (checkpoint + local WAL suffix — exactly a restart's
// restore) and opens its local log for the stream copy. The returned
// follower resumes its subscription at the restored seq.
func NewFollower(cfg FollowerConfig) (*Follower, *serve.RestoreResult, error) {
	if err := cfg.fill(); err != nil {
		return nil, nil, err
	}
	res, err := serve.RestoreFS(cfg.Store, cfg.FS, cfg.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("replica: restore follower state: %w", err)
	}
	if res.Restored && res.CheckpointPath == "" {
		// A follower's durable state is always rooted in a checkpoint —
		// every subscription starts from a bootstrap SNAPSHOT persisted
		// before any record. Records with no checkpoint mean the base
		// image was lost (a lying fsync at a power cut): the replayed
		// state is records-on-empty, silently wrong. Discard it and
		// re-bootstrap from seq 0.
		if err := cfg.Store.Restore(make([]int32, cfg.Store.N()), 0, 0); err != nil {
			return nil, nil, err
		}
		segs, err := wal.SegmentsFS(cfg.FS, cfg.Dir)
		if err != nil {
			return nil, nil, err
		}
		for _, s := range segs {
			if err := cfg.FS.Remove(s.Path); err != nil {
				return nil, nil, fmt.Errorf("replica: drop rootless segment: %w", err)
			}
		}
		if len(segs) > 0 {
			if err := cfg.FS.SyncDir(cfg.Dir); err != nil {
				return nil, nil, err
			}
		}
		metrics.AddCounter("replica.rootless_restores", 1)
		res = serve.RestoreResult{}
	}
	log, err := wal.Open(wal.Options{
		Dir:          cfg.Dir,
		FS:           cfg.FS,
		Fsync:        cfg.Fsync,
		SegmentBytes: cfg.SegmentBytes,
	})
	if err != nil {
		return nil, nil, err
	}
	f := &Follower{
		cfg:        cfg,
		log:        log,
		appliedSeq: res.LastSeq,
		primarySeq: res.LastSeq,
		promoteOK:  make(chan uint64, 1),
	}
	return f, &res, nil
}

// AppliedSeq returns the highest seq applied to the warm store.
func (f *Follower) AppliedSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appliedSeq
}

// Status returns the follower's current replication state.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	var lag uint64
	if f.primarySeq > f.appliedSeq {
		lag = f.primarySeq - f.appliedSeq
	}
	return Status{
		AppliedSeq:   f.appliedSeq,
		PrimarySeq:   f.primarySeq,
		LagSeq:       lag,
		LagBytes:     lag * wal.RecordSize,
		Connected:    f.connected,
		Promoted:     f.promoted,
		SkippedFrees: f.skippedFrees,
		Snapshots:    f.snapshots,
	}
}

// publishLag refreshes the replication-lag gauges. Callers hold f.mu.
func (f *Follower) publishLag() {
	var lag uint64
	if f.primarySeq > f.appliedSeq {
		lag = f.primarySeq - f.appliedSeq
	}
	metrics.SetGauge("replica.lag.seq", float64(lag))
	metrics.SetGauge("replica.lag.bytes", float64(lag*wal.RecordSize))
}

// Deliver applies one stream frame: the follower's single-writer core.
// It persists records to the local log BEFORE applying them to the
// warm store, so the store never reflects state the follower could not
// reproduce from its own disk.
func (f *Follower) Deliver(t dgram.Type, payload []byte) error {
	f.mu.Lock()
	if f.promoted || f.closed {
		f.mu.Unlock()
		return ErrPromoted
	}
	f.mu.Unlock()

	switch t {
	case dgram.TSegHdr:
		if _, err := dgram.DecodeSegHdr(payload); err != nil {
			return err
		}
		// Mirror the primary's rotation point. The local segment may
		// carry a different first-seq name (we joined mid-segment);
		// what matters is that boundaries exist so truncation and
		// catch-up reads stay incremental.
		return f.log.Seal()

	case dgram.TRecBatch:
		var err error
		f.recs, err = dgram.DecodeRecBatch(payload, f.recs[:0])
		if err != nil {
			return err
		}
		return f.applyBatch(f.recs)

	case dgram.THeartbeat:
		hb, err := dgram.DecodeHeartbeat(payload)
		if err != nil {
			return err
		}
		f.mu.Lock()
		if hb.LastSeq > f.primarySeq {
			f.primarySeq = hb.LastSeq
		}
		f.lastContact = time.Now()
		f.publishLag()
		f.mu.Unlock()
		return nil

	case dgram.TSnapshot:
		snap, err := dgram.DecodeSnapshotMsg(payload, f.loadbuf[:0])
		if err != nil {
			return err
		}
		f.loadbuf = snap.Loads
		return f.applySnapshot(snap)

	case dgram.TPromoteOK:
		ok, err := dgram.DecodePromoteOK(payload)
		if err != nil {
			return err
		}
		select {
		case f.promoteOK <- ok.LastSeq:
		default:
		}
		return nil
	}
	return fmt.Errorf("replica: unexpected stream frame %v", t)
}

// applyBatch persists and applies one record batch.
func (f *Follower) applyBatch(recs []wal.Record) error {
	f.mu.Lock()
	applied := f.appliedSeq
	f.mu.Unlock()

	// The stream can legitimately resend records we already hold (a
	// snapshot resync replays the tail from the snapshot seq); skip
	// them rather than double-applying.
	fresh := recs[:0]
	for _, r := range recs {
		if r.Seq > applied {
			fresh = append(fresh, r)
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	if err := f.log.AppendBatch(fresh); err != nil {
		return fmt.Errorf("replica: persist batch: %w", err)
	}
	// One batch-applier call instead of a per-record serve.Apply loop:
	// one stripe-lock acquisition per touched stripe, per-bin order
	// preserved (see serve.ApplyRecords).
	skipped, err := serve.ApplyRecords(f.cfg.Store, fresh)
	if err != nil {
		return fmt.Errorf("replica: apply: %w", err)
	}
	maxSeq := applied
	for _, r := range fresh {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	metrics.AddCounter("replica.applied.records", int64(len(fresh)))

	f.mu.Lock()
	f.appliedSeq = maxSeq
	if maxSeq > f.primarySeq {
		f.primarySeq = maxSeq
	}
	f.skippedFrees += skipped
	f.lastContact = time.Now()
	f.sinceCkpt += int64(len(fresh))
	needCkpt := f.cfg.CheckpointEvery > 0 && f.sinceCkpt >= f.cfg.CheckpointEvery
	if needCkpt {
		f.sinceCkpt = 0
	}
	f.publishLag()
	f.mu.Unlock()

	if needCkpt {
		if err := f.checkpointLocked(); err != nil {
			// Local checkpoint failure degrades restart speed, not
			// correctness: the log copy is intact.
			metrics.AddCounter("replica.checkpoint.errors", 1)
		}
	}
	return nil
}

// applySnapshot resets the follower to a full image: restore the warm
// store, persist the image as a local checkpoint, and drop every local
// segment — the stream re-sends everything after the snapshot seq, and
// a snapshot means the local log cannot be trusted to connect to it.
func (f *Follower) applySnapshot(snap dgram.SnapshotMsg) error {
	if err := f.cfg.Store.Restore(snap.Loads, snap.Allocs, snap.Frees); err != nil {
		return fmt.Errorf("replica: apply snapshot: %w", err)
	}
	if err := f.log.Seal(); err != nil {
		return fmt.Errorf("replica: seal before snapshot: %w", err)
	}
	if _, err := checkpoint.WriteFS(f.cfg.FS, f.cfg.Dir, checkpoint.Snapshot{
		Seq:    snap.Seq,
		Allocs: snap.Allocs,
		Frees:  snap.Frees,
		Loads:  snap.Loads,
	}); err != nil {
		return fmt.Errorf("replica: persist snapshot: %w", err)
	}
	// Remove every local artifact past the snapshot: a mid-stream
	// snapshot means local history cannot be trusted to connect to the
	// primary's, so checkpoints claiming seqs beyond it are from a dead
	// timeline — a later restore must never prefer them.
	metas, err := checkpoint.ListFS(f.cfg.FS, f.cfg.Dir)
	if err != nil {
		return err
	}
	for _, m := range metas {
		if m.Seq > snap.Seq {
			if err := f.cfg.FS.Remove(m.Path); err != nil {
				return fmt.Errorf("replica: drop dead-timeline checkpoint: %w", err)
			}
		}
	}
	// And every local segment: pre-snapshot ones are covered by the
	// checkpoint, post-snapshot ones may be dead-timeline too.
	segs, err := wal.SegmentsFS(f.cfg.FS, f.cfg.Dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := f.cfg.FS.Remove(s.Path); err != nil {
			return fmt.Errorf("replica: drop superseded segment: %w", err)
		}
	}
	if len(segs) > 0 {
		if err := f.cfg.FS.SyncDir(f.cfg.Dir); err != nil {
			return fmt.Errorf("replica: drop superseded segments: %w", err)
		}
	}
	f.mu.Lock()
	f.appliedSeq = snap.Seq
	if snap.Seq > f.primarySeq {
		f.primarySeq = snap.Seq
	}
	f.lastContact = time.Now()
	f.snapshots++
	f.sinceCkpt = 0
	f.publishLag()
	f.mu.Unlock()
	metrics.AddCounter("replica.snapshots", 1)
	return nil
}

// checkpointLocked writes a local checkpoint of the warm store and
// prunes covered segments. Deliver is single-goroutine and the store
// takes no other traffic, so a plain read is consistent.
func (f *Follower) checkpointLocked() error {
	st := f.cfg.Store
	loads := make([]int32, st.N())
	for b := range loads {
		loads[b] = int32(st.Load(b))
	}
	f.mu.Lock()
	seq := f.appliedSeq
	f.mu.Unlock()
	if _, err := checkpoint.WriteFS(f.cfg.FS, f.cfg.Dir, checkpoint.Snapshot{
		Seq:    seq,
		Allocs: st.Allocs(),
		Frees:  st.Frees(),
		Loads:  loads,
	}); err != nil {
		return err
	}
	if _, err := checkpoint.PruneFS(f.cfg.FS, f.cfg.Dir, f.cfg.KeepCheckpoints); err != nil {
		return err
	}
	metas, err := checkpoint.ListFS(f.cfg.FS, f.cfg.Dir)
	if err != nil {
		return err
	}
	if len(metas) > 0 {
		if _, err := f.log.TruncateThrough(metas[0].Seq); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts an un-promoted follower down cleanly: drops the live
// subscription (cancel Run's context first for an orderly exit) and
// closes the local log. No-op after Promote — promotion already
// sealed and closed the log.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed || f.promoted {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	if c := f.conn; c != nil {
		c.Close()
	}
	f.mu.Unlock()
	return f.log.Close()
}

// Run dials addr, subscribes from the follower's applied seq, and
// applies the stream until ctx is cancelled or the follower is
// promoted, redialing on connection loss. It returns nil after
// promotion or cancellation.
func (f *Follower) Run(ctx context.Context, addr string) error {
	for {
		if err := f.runOnce(ctx, addr); err != nil {
			if errors.Is(err, ErrPromoted) {
				return nil
			}
			metrics.AddCounter("replica.stream.disconnects", 1)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(f.cfg.RetryEvery):
		}
		f.mu.Lock()
		promoted := f.promoted
		f.mu.Unlock()
		if promoted {
			return nil
		}
	}
}

// runOnce is one subscription: dial, SUBSCRIBE, apply frames until the
// connection breaks, ctx ends, or promotion stops the stream.
func (f *Follower) runOnce(ctx context.Context, addr string) error {
	d := net.Dialer{Timeout: f.cfg.DialTimeout}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()

	fw := dgram.NewWriter(c)
	f.recbuf = dgram.AppendSubscribeReq(f.recbuf[:0], dgram.SubscribeReq{AfterSeq: f.AppliedSeq()})
	if err := fw.WriteFrame(dgram.TSubscribe, f.recbuf); err != nil {
		return err
	}

	f.mu.Lock()
	f.connected = true
	f.conn = c
	f.lastContact = time.Now()
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.connected = false
		f.conn = nil
		f.mu.Unlock()
	}()

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			c.Close()
		case <-stop:
		}
	}()

	fr := dgram.NewReader(c)
	for {
		// The heartbeat cadence bounds stream silence; a vanished
		// primary surfaces as a read timeout, flipping lastContact
		// staleness for the split-brain guard.
		c.SetReadDeadline(time.Now().Add(f.cfg.HeartbeatTimeout))
		t, payload, err := fr.ReadFrame()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if err := f.Deliver(t, payload); err != nil {
			return err
		}
	}
}

// Promote turns the standby into a primary-ready state. Without force
// it refuses while the subscription has heard from the primary within
// HeartbeatTimeout (split-brain guard). With force against a live
// primary it first sends a PROMOTE fence — the primary quiesces,
// ships its tail, and acknowledges with its final durable seq — and
// waits (bounded) until that seq is applied locally. Either way the
// stream is then stopped and the local log sealed and closed; the
// caller re-arms a journal + detector on the follower's directory and
// starts serving.
func (f *Follower) Promote(force bool) (PromoteResult, error) {
	f.mu.Lock()
	if f.promoted {
		r := PromoteResult{LastSeq: f.appliedSeq, SkippedFrees: f.skippedFrees}
		f.mu.Unlock()
		return r, nil
	}
	if f.closed {
		f.mu.Unlock()
		return PromoteResult{}, errors.New("replica: follower closed")
	}
	alive := f.connected && time.Since(f.lastContact) < f.cfg.HeartbeatTimeout
	conn := f.conn
	f.mu.Unlock()

	if alive && !force {
		return PromoteResult{}, ErrPrimaryAlive
	}
	forced := alive && force
	if forced && conn != nil {
		// Fence the primary: best effort — if the primary dies mid-
		// handshake we promote anyway (it is, after all, dead).
		f.fence(conn)
	}

	f.mu.Lock()
	f.promoted = true
	if c := f.conn; c != nil {
		c.Close() // unblocks runOnce; Run exits on the promoted flag
	}
	res := PromoteResult{LastSeq: f.appliedSeq, Forced: forced, SkippedFrees: f.skippedFrees}
	f.mu.Unlock()

	if err := f.log.Close(); err != nil {
		return res, fmt.Errorf("replica: seal local log: %w", err)
	}
	metrics.AddCounter("replica.promotions", 1)
	return res, nil
}

// fence sends PROMOTE to the live primary and waits (bounded by
// HeartbeatTimeout) for its final seq to be shipped and applied.
func (f *Follower) fence(conn net.Conn) {
	var buf []byte
	buf = dgram.AppendPromoteReq(buf, dgram.PromoteReq{Force: true})
	fw := dgram.NewWriter(conn)
	if err := fw.WriteFrame(dgram.TPromote, buf); err != nil {
		return
	}
	deadline := time.NewTimer(f.cfg.HeartbeatTimeout)
	defer deadline.Stop()
	var finalSeq uint64
	select {
	case finalSeq = <-f.promoteOK:
	case <-deadline.C:
		return
	}
	// PROMOTE_OK arrives after the primary ships its tail, and Deliver
	// processes frames in order, so by the time the ack is visible the
	// tail is normally applied; poll briefly for the race.
	for i := 0; i < 100 && f.AppliedSeq() < finalSeq; i++ {
		time.Sleep(5 * time.Millisecond)
	}
}
