package replica

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dynalloc/internal/dgram"
	"dynalloc/internal/metrics"
	"dynalloc/internal/vfs"
)

// StreamerConfig configures the primary-side replication listener.
type StreamerConfig struct {
	// FS and Dir locate the primary's WAL + checkpoint directory — the
	// same directory the live journal writes.
	FS  vfs.FS
	Dir string
	// LastSeq reports the primary's durable seq (journal.LastSeq); it
	// feeds heartbeats and the divergent-subscriber check.
	LastSeq func() uint64
	// OnPromote quiesces the primary when a follower fences it: reject
	// new mutations, drain the journal, and return the final durable
	// seq. The streamer then ships the remaining tail and acknowledges
	// with PROMOTE_OK(finalSeq). Nil means fencing is refused.
	OnPromote func(force bool) (uint64, error)
	// Heartbeat is the caught-up heartbeat cadence (default 250ms).
	Heartbeat time.Duration
	// Poll is the caught-up tail poll interval (default 10ms).
	Poll time.Duration
	// BatchRecords caps records per REC_BATCH frame (default 256).
	BatchRecords int
}

func (c *StreamerConfig) fill() error {
	if c.Dir == "" {
		return errors.New("replica: streamer needs a directory")
	}
	if c.LastSeq == nil {
		return errors.New("replica: streamer needs a LastSeq source")
	}
	if c.FS == nil {
		c.FS = vfs.OS
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 250 * time.Millisecond
	}
	if c.Poll <= 0 {
		c.Poll = 10 * time.Millisecond
	}
	return nil
}

// Streamer serves the primary's WAL to subscribed followers: one
// Shipper per connection pumping frames off disk, heartbeats while
// caught up, and the PROMOTE stand-down handshake. It follows the
// accept-loop shape of router.Server: Serve on a listener, per-conn
// goroutines tracked for Close.
type Streamer struct {
	cfg StreamerConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewStreamer returns a Streamer for the given config.
func NewStreamer(cfg StreamerConfig) (*Streamer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Streamer{cfg: cfg, conns: make(map[net.Conn]struct{})}, nil
}

// Serve accepts subscriptions on ln until Close. It returns nil after
// Close, or the accept error that stopped it.
func (s *Streamer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("replica: streamer is closed")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("replica: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

// Close stops accepting, drops every subscription, and waits for the
// per-connection goroutines to finish.
func (s *Streamer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Streamer) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// handle runs one subscription: expect SUBSCRIBE, then pump the log to
// the follower forever — records while behind, heartbeats while caught
// up — until the connection breaks, the streamer closes, or a PROMOTE
// fence ends the primary's reign.
func (s *Streamer) handle(c net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(c)

	fr := dgram.NewReader(c)
	fw := dgram.NewWriter(c)

	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	t, payload, err := fr.ReadFrame()
	if err != nil || t != dgram.TSubscribe {
		return
	}
	sub, err := dgram.DecodeSubscribeReq(payload)
	if err != nil {
		return
	}
	c.SetReadDeadline(time.Time{})
	metrics.AddCounter("replica.stream.subscriptions", 1)

	// A subscriber claiming a seq we never issued is on a divergent
	// timeline (it outlived a primary restore); rewind it onto ours.
	force := sub.AfterSeq > s.cfg.LastSeq()
	ship := NewShipper(ShipperConfig{
		FS:            s.cfg.FS,
		Dir:           s.cfg.Dir,
		BatchRecords:  s.cfg.BatchRecords,
		ForceSnapshot: force,
	}, sub.AfterSeq)
	defer ship.Close()

	// The pump owns all writes; a side goroutine watches the connection
	// for the PROMOTE fence (and for the follower going away — its read
	// error closes the conn, failing the pump's next write).
	promoteCh := make(chan dgram.PromoteReq, 1)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			t, payload, err := fr.ReadFrame()
			if err != nil {
				c.Close()
				return
			}
			if t == dgram.TPromote {
				if pr, derr := dgram.DecodePromoteReq(payload); derr == nil {
					select {
					case promoteCh <- pr:
					default:
					}
				}
			}
		}
	}()

	send := func(t dgram.Type, payload []byte) error {
		return fw.WriteFrame(t, payload)
	}
	var hbuf []byte
	var lastHB time.Time
	for {
		select {
		case pr := <-promoteCh:
			s.standDown(pr, ship, send)
			return
		default:
		}
		if _, err := ship.Pump(send); err != nil {
			if errors.Is(err, ErrStreamGap) {
				metrics.AddCounter("replica.stream.gaps", 1)
			}
			return
		}
		// Caught up: heartbeat on cadence, then wait out the poll
		// interval (or a promote fence / subscriber hangup).
		if time.Since(lastHB) >= s.cfg.Heartbeat {
			hbuf = dgram.AppendHeartbeat(hbuf[:0], dgram.Heartbeat{LastSeq: s.cfg.LastSeq()})
			if err := send(dgram.THeartbeat, hbuf); err != nil {
				return
			}
			lastHB = time.Now()
		}
		select {
		case pr := <-promoteCh:
			s.standDown(pr, ship, send)
			return
		case <-readerDone:
			return
		case <-time.After(s.cfg.Poll):
		}
	}
}

// standDown handles a PROMOTE fence: quiesce the primary via
// OnPromote, ship whatever tail the drain left on disk, and
// acknowledge with the final durable seq. By the time the follower
// reads PROMOTE_OK it has (in stream order) already received every
// record up to that seq.
func (s *Streamer) standDown(pr dgram.PromoteReq, ship *Shipper, send func(dgram.Type, []byte) error) {
	if s.cfg.OnPromote == nil {
		return // fencing unsupported: drop the conn, follower times out
	}
	finalSeq, err := s.cfg.OnPromote(pr.Force)
	if err != nil {
		return
	}
	if _, err := ship.Pump(send); err != nil {
		return
	}
	var buf []byte
	buf = dgram.AppendPromoteOK(buf, dgram.PromoteOK{LastSeq: finalSeq})
	send(dgram.TPromoteOK, buf)
	metrics.AddCounter("replica.stream.standdowns", 1)
}
