package replica

import (
	"context"
	"net"
	"testing"
	"time"

	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/router"
	"dynalloc/internal/serve"
	"dynalloc/internal/simfs"
	"dynalloc/internal/wal"
)

// TestPromotedStandbyRevivesShard is the cluster fail-over path end to
// end: shard 0 of a routed cluster dies (dgram server and replication
// stream both gone), its hot standby is promoted, and a new shard
// server for the standby's store binds the SAME address — so the
// router's health loop revives shard 0 with the dead primary's state
// intact, and traffic flows to it again.
func TestPromotedStandbyRevivesShard(t *testing.T) {
	pol, err := serve.ParsePolicy("abku:2")
	if err != nil {
		t.Fatal(err)
	}
	newShardSrv := func(st *serve.Store, seed uint64) *router.Server {
		return router.NewServer(router.ServerConfig{
			Store: st, Policy: pol, Scenario: process.ScenarioA, Seed: seed,
		})
	}

	// Shard 0: a journaled primary with a replication stream.
	p := newPrimary(t, 6, wal.FsyncAlways)
	str, err := NewStreamer(StreamerConfig{
		FS: p.fs, Dir: p.dir, LastSeq: p.j.LastSeq,
		Heartbeat: 20 * time.Millisecond, Poll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	strLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go str.Serve(strLn)
	t.Cleanup(func() { str.Close() })

	sh0 := newShardSrv(p.st, 1)
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shardAddr := ln0.Addr().String()
	sh0done := make(chan struct{})
	go func() { defer close(sh0done); sh0.Serve(ln0) }()

	// Shard 1: a plain second shard so the cluster survives the outage.
	st1 := serve.NewStoreShards(schedN, schedShards)
	sh1 := newShardSrv(st1, 2)
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go sh1.Serve(ln1)
	t.Cleanup(func() { sh1.Close() })

	// Shard 0's hot standby, following the stream.
	sfs := simfs.New()
	sst := serve.NewStoreShards(schedN, schedShards)
	f, _, err := NewFollower(FollowerConfig{
		Store: sst, FS: sfs, Dir: "/standby", Fsync: wal.FsyncAlways,
		SegmentBytes:     tinySeg,
		HeartbeatTimeout: 100 * time.Millisecond,
		RetryEvery:       10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go f.Run(ctx, strLn.Addr().String())

	rt, err := router.New(router.Options{
		Shards:         []string{shardAddr, ln1.Addr().String()},
		D:              2,
		DialTimeout:    2 * time.Second,
		CallTimeout:    2 * time.Second,
		HealthInterval: 20 * time.Millisecond,
		RetryBackoff:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ses := rt.NewSession()
	defer ses.Close()
	r := rng.NewStream(42, 0)

	// Routed traffic lands in shard 0's store through the journal hook;
	// drain so the stream can ship it.
	for i := 0; i < 60; i++ {
		if _, err := ses.Admit(r); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	p.j.Drain()
	waitFor(t, 3*time.Second, "standby catch-up", func() bool {
		return f.AppliedSeq() == p.j.LastSeq()
	})
	deadTotal := p.st.Total()
	deadLoads := p.st.LoadsCopy()

	// Shard 0 dies: dgram server and replication stream both gone.
	sh0.Close()
	<-sh0done
	str.Close()
	for i := 0; i < 20; i++ {
		if _, err := ses.Admit(r); err != nil {
			t.Fatalf("admit %d during outage: %v", i, err)
		}
	}
	waitFor(t, 3*time.Second, "shard 0 marked down", func() bool { return rt.Down(0) })

	// Promote the standby once the heartbeat window lapses, and bind a
	// shard server for its store on the dead primary's address.
	waitFor(t, 2*time.Second, "subscription death", func() bool { return !f.Status().Connected })
	time.Sleep(120 * time.Millisecond)
	res, err := f.Promote(false)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if res.LastSeq != p.j.LastSeq() {
		t.Fatalf("promoted at seq %d, primary died at %d", res.LastSeq, p.j.LastSeq())
	}
	if sst.Total() != deadTotal {
		t.Fatalf("standby inherited %d balls, primary held %d", sst.Total(), deadTotal)
	}
	sh0b := newShardSrv(sst, 3)
	ln0b, err := net.Listen("tcp", shardAddr)
	if err != nil {
		t.Fatalf("rebind %s: %v", shardAddr, err)
	}
	go sh0b.Serve(ln0b)
	t.Cleanup(func() { sh0b.Close() })

	waitFor(t, 5*time.Second, "health loop revival", func() bool { return !rt.Down(0) })

	// The revived shard serves the dead primary's state...
	sr, err := ses.State(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for b, l := range sr.Loads {
		if int(l) != int(deadLoads[b]) {
			t.Fatalf("revived shard bin %d: load %d, primary died with %d", b, l, deadLoads[b])
		}
	}
	// ...and takes traffic again.
	before := sst.Total()
	for i := 0; i < 40; i++ {
		if _, err := ses.Admit(r); err != nil {
			t.Fatalf("admit %d after revival: %v", i, err)
		}
	}
	if sst.Total() == before {
		t.Fatal("revived shard took no traffic")
	}
}
