package stats

import (
	"testing"

	"dynalloc/internal/rng"
)

func TestSequentialStopsOnPrecision(t *testing.T) {
	s := NewSequential(0.05, 10, 1_000_000)
	r := rng.New(1)
	sum := s.Run(func(int) float64 { return 10 + r.Float64() }) // tiny variance
	if sum.N() >= 1_000_000 {
		t.Fatal("never stopped despite tiny variance")
	}
	if sum.N() < 10 {
		t.Fatalf("stopped before MinN: %d", sum.N())
	}
	if rel := sum.CI95() / sum.Mean(); rel > 0.05 {
		t.Fatalf("stopped with relative CI %v", rel)
	}
}

func TestSequentialBudget(t *testing.T) {
	s := NewSequential(0.0001, 2, 50)
	r := rng.New(2)
	sum := s.Run(func(int) float64 { return r.Float64() * 100 }) // high variance
	if sum.N() != 50 {
		t.Fatalf("budget not honored: N = %d", sum.N())
	}
}

func TestSequentialZeroMeanRunsToBudget(t *testing.T) {
	s := NewSequential(0.1, 2, 20)
	alt := 1.0
	sum := s.Run(func(int) float64 { alt = -alt; return alt })
	if sum.N() != 20 {
		t.Fatalf("zero-mean stream stopped early at %d", sum.N())
	}
}

func TestSequentialAddInterface(t *testing.T) {
	s := NewSequential(0.5, 2, 5)
	if !s.Add(1) {
		t.Fatal("should continue after one observation")
	}
	for i := 0; i < 10 && s.Add(1); i++ {
	}
	if !s.Done() {
		t.Fatal("identical observations should satisfy any target")
	}
	if s.Summary().N() > 5 {
		t.Fatalf("exceeded budget: %d", s.Summary().N())
	}
}

func TestSequentialPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSequential(0, 2, 10) },
		func() { NewSequential(0.1, 1, 10) },
		func() { NewSequential(0.1, 10, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
