// Package stats provides the statistical machinery the experiment
// harness uses to turn raw simulation output into the tables in
// EXPERIMENTS.md: streaming moments with confidence intervals, quantiles,
// empirical total-variation distance, and growth-model fitting for the
// recovery-time scaling laws (n ln n, n^2 ln n, n^2 ln^2 n, ...).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of observations with Welford's algorithm,
// tracking count, mean, variance, min and max in O(1) memory.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddInt records one integer observation.
func (s *Summary) AddInt(x int) { s.Add(float64(x)) }

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// SE returns the standard error of the mean.
func (s *Summary) SE() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.SE() }

// String renders "mean ± ci (n=...)" for table cells.
func (s *Summary) String() string {
	return fmt.Sprintf("%.2f±%.2f (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Quantile returns the q-th empirical quantile (0 <= q <= 1) of xs using
// linear interpolation. It panics on an empty sample or q outside [0,1].
// The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile fraction out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the empirical median.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// TVDistance returns the total variation distance (1/2) sum_i |p_i - q_i|
// between two distributions given as aligned probability slices. Slices
// of different lengths are implicitly zero-padded.
func TVDistance(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	d := 0.0
	for i := 0; i < n; i++ {
		var pi, qi float64
		if i < len(p) {
			pi = p[i]
		}
		if i < len(q) {
			qi = q[i]
		}
		d += math.Abs(pi - qi)
	}
	return d / 2
}

// TVDistanceCounts returns the total variation distance between two
// empirical distributions given as count maps over arbitrary keys.
func TVDistanceCounts[K comparable](a, b map[K]int) float64 {
	var na, nb int
	for _, c := range a {
		na += c
	}
	for _, c := range b {
		nb += c
	}
	if na == 0 || nb == 0 {
		panic("stats: TVDistanceCounts with an empty sample")
	}
	d := 0.0
	seen := make(map[K]bool, len(a)+len(b))
	for k, c := range a {
		seen[k] = true
		d += math.Abs(float64(c)/float64(na) - float64(b[k])/float64(nb))
	}
	for k, c := range b {
		if !seen[k] {
			d += float64(c) / float64(nb)
		}
	}
	return d / 2
}

// Normalize converts nonnegative counts into a probability slice.
func Normalize(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	p := make([]float64, len(counts))
	if total == 0 {
		return p
	}
	for i, c := range counts {
		p[i] = float64(c) / float64(total)
	}
	return p
}
