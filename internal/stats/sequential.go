package stats

// Sequential is an adaptive estimator: it accumulates observations until
// the 95% confidence half-width falls below a relative target, or a
// sample budget runs out. Harness sweeps use it to spend trials where
// the variance actually is rather than using a fixed count everywhere.
type Sequential struct {
	Target float64 // relative half-width target, e.g. 0.05 for +-5%
	MinN   int     // never stop before this many observations
	MaxN   int     // hard budget
	sum    Summary
}

// NewSequential validates and returns an adaptive estimator.
func NewSequential(target float64, minN, maxN int) *Sequential {
	if target <= 0 {
		panic("stats: Sequential target must be positive")
	}
	if minN < 2 || maxN < minN {
		panic("stats: need 2 <= minN <= maxN")
	}
	return &Sequential{Target: target, MinN: minN, MaxN: maxN}
}

// Add records one observation and reports whether sampling should
// continue.
func (s *Sequential) Add(x float64) (continueSampling bool) {
	s.sum.Add(x)
	return !s.Done()
}

// Done reports whether the stopping rule has triggered: either the
// budget is exhausted or (past MinN) the CI half-width is within
// Target * |mean|. A mean of exactly zero only stops on the budget.
func (s *Sequential) Done() bool {
	n := s.sum.N()
	if n >= s.MaxN {
		return true
	}
	if n < s.MinN {
		return false
	}
	mean := s.sum.Mean()
	if mean == 0 {
		return false
	}
	rel := s.sum.CI95() / abs(mean)
	return rel <= s.Target
}

// Summary exposes the accumulated statistics.
func (s *Sequential) Summary() *Summary { return &s.sum }

// Run drives the estimator with a sample source: draw(i) produces the
// i-th observation. It returns the final summary.
func (s *Sequential) Run(draw func(i int) float64) *Summary {
	for i := 0; !s.Done(); i++ {
		s.sum.Add(draw(i))
	}
	return &s.sum
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
