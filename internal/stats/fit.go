package stats

import (
	"fmt"
	"math"
	"sort"
)

// GrowthModel is a candidate asymptotic shape T(n) ~ c * f(n) for a
// recovery-time curve. The models below are exactly the ones the paper's
// theorems distinguish between.
type GrowthModel struct {
	Name string
	F    func(n float64) float64
}

// Models returns the standard candidate set, ordered by growth rate:
// n, n ln n, n^2, n^2 ln n, n^2 ln^2 n, n^3, n^5. ln is clamped at 1 so
// tiny n do not produce degenerate weights.
func Models() []GrowthModel {
	l := func(n float64) float64 { return math.Max(1, math.Log(n)) }
	return []GrowthModel{
		{"n", func(n float64) float64 { return n }},
		{"n ln n", func(n float64) float64 { return n * l(n) }},
		{"n^2", func(n float64) float64 { return n * n }},
		{"n^2 ln n", func(n float64) float64 { return n * n * l(n) }},
		{"n^2 ln^2 n", func(n float64) float64 { return n * n * l(n) * l(n) }},
		{"n^3", func(n float64) float64 { return n * n * n }},
		{"n^5", func(n float64) float64 { return math.Pow(n, 5) }},
	}
}

// FitResult reports how well one growth model explains a curve.
type FitResult struct {
	Model GrowthModel
	C     float64 // least-squares constant in T(n) ~ C * f(n)
	// RelRMSE is the root-mean-square of the relative residuals
	// (T - C f)/T; small means the shape explains the data.
	RelRMSE float64
}

func (f FitResult) String() string {
	return fmt.Sprintf("%s (c=%.3g, relRMSE=%.3f)", f.Model.Name, f.C, f.RelRMSE)
}

// FitModel fits T(n) ~ c*f(n) by least squares on the relative residuals
// (equivalently, c = mean of T/f weighted for minimal relative error).
func FitModel(ns []float64, ts []float64, m GrowthModel) FitResult {
	if len(ns) != len(ts) || len(ns) == 0 {
		panic("stats: FitModel needs equal-length nonempty inputs")
	}
	// Minimize sum((t - c f)/t)^2 => c = sum(f/t) / sum((f/t)^2) ... solve
	// d/dc sum (1 - c f/t)^2 = 0 => c = sum(f/t) / sum(f^2/t^2).
	num, den := 0.0, 0.0
	for i := range ns {
		if ts[i] <= 0 {
			panic("stats: FitModel with non-positive measurement")
		}
		r := m.F(ns[i]) / ts[i]
		num += r
		den += r * r
	}
	c := num / den
	sse := 0.0
	for i := range ns {
		resid := 1 - c*m.F(ns[i])/ts[i]
		sse += resid * resid
	}
	return FitResult{Model: m, C: c, RelRMSE: math.Sqrt(sse / float64(len(ns)))}
}

// BestFit fits every candidate model and returns all results sorted by
// relative RMSE (best first).
func BestFit(ns []float64, ts []float64) []FitResult {
	models := Models()
	out := make([]FitResult, 0, len(models))
	for _, m := range models {
		out = append(out, FitModel(ns, ts, m))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RelRMSE < out[j].RelRMSE })
	return out
}

// LogLogSlope estimates the polynomial exponent of T(n) by ordinary least
// squares on (ln n, ln T). A curve n^2 ln^2 n reports a slope somewhat
// above 2; pure n ln n somewhat above 1.
func LogLogSlope(ns []float64, ts []float64) float64 {
	if len(ns) != len(ts) || len(ns) < 2 {
		panic("stats: LogLogSlope needs at least two points")
	}
	var sx, sy, sxx, sxy float64
	for i := range ns {
		x := math.Log(ns[i])
		y := math.Log(ts[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	k := float64(len(ns))
	return (k*sxy - sx*sy) / (k*sxx - sx*sx)
}

// RatioTrend returns the sequence T(n_i)/f(n_i); a flat trend confirms
// the shape f. Used to print the "T / (m ln m)" columns of the tables.
func RatioTrend(ns []float64, ts []float64, m GrowthModel) []float64 {
	if len(ns) != len(ts) {
		panic("stats: RatioTrend needs equal-length inputs")
	}
	out := make([]float64, len(ns))
	for i := range ns {
		out[i] = ts[i] / m.F(ns[i])
	}
	return out
}
