package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 should be positive")
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 || s.SE() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.AddInt(7)
	if s.Mean() != 7 || s.Var() != 0 || s.Min() != 7 || s.Max() != 7 {
		t.Fatalf("single-observation summary wrong: %+v", s)
	}
}

// Property: mean is within [min, max] and variance is nonnegative.
func TestSummaryProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // avoid float overflow in m2; not what Summary is for
			}
			s.Add(x)
		}
		if s.N() > 0 {
			ok = s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.Var() >= -1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Median(xs); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	if q := Quantile([]float64{10}, 0.9); q != 10 {
		t.Fatalf("single-element quantile = %v", q)
	}
	// Interpolation between ranks.
	if q := Quantile([]float64{0, 10}, 0.5); q != 5 {
		t.Fatalf("interpolated median = %v", q)
	}
	// Input unchanged.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTVDistance(t *testing.T) {
	if d := TVDistance([]float64{1, 0}, []float64{0, 1}); d != 1 {
		t.Fatalf("disjoint TV = %v", d)
	}
	if d := TVDistance([]float64{0.5, 0.5}, []float64{0.5, 0.5}); d != 0 {
		t.Fatalf("identical TV = %v", d)
	}
	if d := TVDistance([]float64{0.5, 0.5}, []float64{0.75, 0.25}); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("TV = %v, want 0.25", d)
	}
	// Zero-padding of different lengths.
	if d := TVDistance([]float64{1}, []float64{0.5, 0.5}); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("padded TV = %v, want 0.5", d)
	}
}

func TestTVDistanceCounts(t *testing.T) {
	a := map[string]int{"x": 2, "y": 2}
	b := map[string]int{"x": 4}
	// p = (.5,.5), q = (1,0) -> TV = .5
	if d := TVDistanceCounts(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("TV = %v", d)
	}
	if d := TVDistanceCounts(a, a); d != 0 {
		t.Fatalf("self TV = %v", d)
	}
	// Key present only in b.
	c := map[string]int{"z": 1}
	if d := TVDistanceCounts(a, c); math.Abs(d-1) > 1e-12 {
		t.Fatalf("disjoint TV = %v", d)
	}
}

func TestTVDistanceCountsPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TVDistanceCounts(map[int]int{}, map[int]int{1: 1})
}

func TestNormalize(t *testing.T) {
	p := Normalize([]int{1, 3, 0})
	want := []float64{0.25, 0.75, 0}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("Normalize = %v", p)
		}
	}
	z := Normalize([]int{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize of zeros = %v", z)
	}
}

func TestFitModelExact(t *testing.T) {
	// T(n) = 3 n ln n exactly: the n ln n model must fit with c=3, rmse~0.
	ns := []float64{16, 32, 64, 128, 256}
	ts := make([]float64, len(ns))
	for i, n := range ns {
		ts[i] = 3 * n * math.Log(n)
	}
	fits := BestFit(ns, ts)
	if fits[0].Model.Name != "n ln n" {
		t.Fatalf("best fit = %v", fits[0])
	}
	if math.Abs(fits[0].C-3) > 1e-9 || fits[0].RelRMSE > 1e-9 {
		t.Fatalf("fit params = %+v", fits[0])
	}
}

func TestBestFitDiscriminates(t *testing.T) {
	ns := []float64{16, 32, 64, 128, 256, 512}
	for _, gen := range []struct {
		name string
		f    func(n float64) float64
	}{
		{"n^2 ln n", func(n float64) float64 { return 0.5 * n * n * math.Log(n) }},
		{"n^3", func(n float64) float64 { return 2 * n * n * n }},
		{"n", func(n float64) float64 { return 10 * n }},
	} {
		ts := make([]float64, len(ns))
		for i, n := range ns {
			ts[i] = gen.f(n)
		}
		fits := BestFit(ns, ts)
		if fits[0].Model.Name != gen.name {
			t.Errorf("data of shape %s best-fit by %s", gen.name, fits[0].Model.Name)
		}
	}
}

func TestLogLogSlope(t *testing.T) {
	ns := []float64{8, 16, 32, 64, 128}
	ts := make([]float64, len(ns))
	for i, n := range ns {
		ts[i] = 7 * n * n // exponent 2
	}
	if s := LogLogSlope(ns, ts); math.Abs(s-2) > 1e-9 {
		t.Fatalf("slope = %v, want 2", s)
	}
}

func TestRatioTrendFlatForTrueModel(t *testing.T) {
	ns := []float64{10, 20, 40}
	ts := []float64{100, 400, 1600} // n^2
	m := Models()[2]                // "n^2"
	r := RatioTrend(ns, ts, m)
	for _, v := range r {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("ratio trend = %v", r)
		}
	}
}

func TestFitModelPanics(t *testing.T) {
	m := Models()[0]
	for _, f := range []func(){
		func() { FitModel(nil, nil, m) },
		func() { FitModel([]float64{1}, []float64{1, 2}, m) },
		func() { FitModel([]float64{1}, []float64{0}, m) },
		func() { LogLogSlope([]float64{1}, []float64{1}) },
		func() { RatioTrend([]float64{1}, []float64{1, 2}, m) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
