package stats

import (
	"math"
	"testing"

	"dynalloc/internal/rng"
)

// TestChiSquareSurvivalKnownQuantiles pins the survival function
// against standard chi-square table values: P(X >= q) = alpha at the
// tabulated alpha-quantiles.
func TestChiSquareSurvivalKnownQuantiles(t *testing.T) {
	cases := []struct {
		df    int
		x     float64
		wantP float64
	}{
		{1, 3.8415, 0.05},
		{1, 6.6349, 0.01},
		{2, 5.9915, 0.05},
		{5, 11.0705, 0.05},
		{10, 18.3070, 0.05},
		{10, 23.2093, 0.01},
		{50, 67.5048, 0.05},
		{100, 124.3421, 0.05},
		{3, 0, 1},
	}
	for _, c := range cases {
		got := ChiSquareSurvival(c.x, c.df)
		if math.Abs(got-c.wantP) > 2e-4 {
			t.Errorf("ChiSquareSurvival(%g, %d) = %.6f, want %.4f", c.x, c.df, got, c.wantP)
		}
	}
}

func TestChiSquareSurvivalMonotoneInX(t *testing.T) {
	prev := 1.1
	for x := 0.0; x <= 40; x += 0.5 {
		p := ChiSquareSurvival(x, 7)
		if p > prev+1e-12 {
			t.Fatalf("survival not non-increasing at x=%g: %g > %g", x, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("survival out of [0,1] at x=%g: %g", x, p)
		}
		prev = p
	}
}

// TestChiSquareGOFHandComputed checks the statistic on a worked
// example: observed (10, 20, 30) against uniform expectation (20 each)
// gives chi2 = 100/20 + 0 + 100/20 = 10 on 2 df, p ~ 0.00674.
func TestChiSquareGOFHandComputed(t *testing.T) {
	stat, df, p := ChiSquareGOF([]int{10, 20, 30}, []float64{1, 1, 1})
	if math.Abs(stat-10) > 1e-12 || df != 2 {
		t.Fatalf("stat, df = %g, %d; want 10, 2", stat, df)
	}
	if math.Abs(p-0.006738) > 1e-4 {
		t.Fatalf("p = %g, want ~0.006738", p)
	}
}

func TestChiSquareGOFUnnormalizedWeights(t *testing.T) {
	// Weights 2:1:1 over 400 draws: expected 200, 100, 100.
	s1, df1, p1 := ChiSquareGOF([]int{190, 110, 100}, []float64{2, 1, 1})
	s2, df2, p2 := ChiSquareGOF([]int{190, 110, 100}, []float64{0.5, 0.25, 0.25})
	if s1 != s2 || df1 != df2 || p1 != p2 {
		t.Fatalf("weight scaling changed the test: (%g,%d,%g) vs (%g,%d,%g)", s1, df1, p1, s2, df2, p2)
	}
}

func TestChiSquareGOFZeroExpectationCells(t *testing.T) {
	// A zero-weight cell with zero observations drops out of df.
	stat, df, _ := ChiSquareGOF([]int{25, 25, 0}, []float64{1, 1, 0})
	if df != 1 || stat != 0 {
		t.Fatalf("stat, df = %g, %d; want 0, 1", stat, df)
	}
	// Observations where the null puts no mass: p = 0 outright.
	if _, _, p := ChiSquareGOF([]int{25, 25, 5}, []float64{1, 1, 0}); p != 0 {
		t.Fatalf("impossible cell got p = %g, want 0", p)
	}
}

// TestChiSquareGOFCalibration feeds the test truly-null multinomial
// samples and checks the p-value distribution is roughly uniform: a
// correct test rejects at level alpha about alpha of the time.
func TestChiSquareGOFCalibration(t *testing.T) {
	r := rng.New(7)
	const trials, draws, cells = 400, 1000, 8
	weights := make([]float64, cells)
	for i := range weights {
		weights[i] = 1
	}
	low := 0 // p < 0.05
	mid := 0 // p < 0.5
	for trial := 0; trial < trials; trial++ {
		counts := make([]int, cells)
		for d := 0; d < draws; d++ {
			counts[r.Intn(cells)]++
		}
		_, _, p := ChiSquareGOF(counts, weights)
		if p < 0.05 {
			low++
		}
		if p < 0.5 {
			mid++
		}
	}
	// Binomial(400, 0.05) has sd ~ 4.4; allow ~4 sigma around 20.
	if low > 38 {
		t.Errorf("null rejection rate at 0.05: %d/%d, far above nominal", low, trials)
	}
	// And the p-values must not pile up near 1 either: P(p<0.5) ~ 0.5.
	if mid < 140 || mid > 260 {
		t.Errorf("P(p < 0.5) = %d/%d, want ~200", mid, trials)
	}
}
