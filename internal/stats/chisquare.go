package stats

import (
	"fmt"
	"math"
)

// ChiSquareGOF runs Pearson's chi-square goodness-of-fit test of
// observed counts against expected cell weights (any nonnegative
// weights; they are normalized to probabilities internally). It
// returns the statistic, the degrees of freedom (nonzero-expectation
// cells minus one) and the p-value — the probability of a statistic at
// least this large under the null. Cells with zero expected weight
// must have zero observations (anything else is an automatic p=0: the
// null puts no mass there). It panics on mismatched lengths, an empty
// sample, or all-zero weights, which are caller bugs rather than
// statistical outcomes.
func ChiSquareGOF(observed []int, expected []float64) (stat float64, df int, p float64) {
	if len(observed) != len(expected) {
		panic(fmt.Sprintf("stats: ChiSquareGOF with %d observed cells but %d expected", len(observed), len(expected)))
	}
	n, wtot := 0, 0.0
	for i, c := range observed {
		if c < 0 || expected[i] < 0 {
			panic("stats: ChiSquareGOF needs nonnegative counts and weights")
		}
		n += c
		wtot += expected[i]
	}
	if n == 0 || wtot == 0 {
		panic("stats: ChiSquareGOF with an empty sample or all-zero expectation")
	}
	for i, c := range observed {
		if expected[i] == 0 {
			if c != 0 {
				return math.Inf(1), len(observed) - 1, 0
			}
			continue
		}
		e := float64(n) * expected[i] / wtot
		d := float64(c) - e
		stat += d * d / e
		df++
	}
	df--
	if df < 1 {
		return stat, df, 1
	}
	return stat, df, ChiSquareSurvival(stat, df)
}

// ChiSquareSurvival returns P(X >= x) for X chi-square distributed
// with df degrees of freedom — the p-value companion to ChiSquareGOF.
func ChiSquareSurvival(x float64, df int) float64 {
	if df < 1 {
		panic("stats: ChiSquareSurvival needs df >= 1")
	}
	if x <= 0 {
		return 1
	}
	return regularizedGammaQ(float64(df)/2, x/2)
}

// regularizedGammaQ is the upper regularized incomplete gamma function
// Q(a, x) = Gamma(a, x)/Gamma(a), evaluated by the classic series /
// continued-fraction split at x = a+1 (Numerical Recipes style, on top
// of math.Lgamma).
func regularizedGammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		panic("stats: regularized gamma needs a > 0, x >= 0")
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a, x) by its power series; converges fast
// for x < a+1.
func gammaPSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a, x) by its Lentz continued
// fraction; converges fast for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-lg)
}
