package stats_test

import (
	"fmt"
	"math"

	"dynalloc/internal/stats"
)

// BestFit discriminates between the growth shapes the paper's theorems
// predict.
func ExampleBestFit() {
	ns := []float64{32, 64, 128, 256}
	ts := make([]float64, len(ns))
	for i, n := range ns {
		ts[i] = 0.8 * n * math.Log(n) // a Theorem 1-shaped curve
	}
	fits := stats.BestFit(ns, ts)
	fmt.Println("best model:", fits[0].Model.Name)
	// Output: best model: n ln n
}

// Summary accumulates trial outcomes with O(1) memory.
func ExampleSummary() {
	var s stats.Summary
	for _, x := range []float64{4, 6, 8} {
		s.Add(x)
	}
	fmt.Printf("mean %.1f over %d trials\n", s.Mean(), s.N())
	// Output: mean 6.0 over 3 trials
}
