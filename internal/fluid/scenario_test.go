package fluid

import (
	"math"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// TestScenarioBFixedPoint: the Scenario B fluid model also converges and
// conserves the mean.
func TestScenarioBFixedPoint(t *testing.T) {
	m := NewModel(rules.ConstThresholds(2), process.ScenarioB, 14)
	p, err := m.FixedPoint(InitialBalanced(1, 14), 0.05, 1e-7, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if mu := Mean(p); math.Abs(mu-1) > 0.02 {
		t.Fatalf("scenario B fixed point mean %v", mu)
	}
}

// TestScenarioBMatchesSimulation: the B-scenario fluid fixed point
// matches the simulated stationary load fractions.
func TestScenarioBMatchesSimulation(t *testing.T) {
	const n = 20000
	m := NewModel(rules.ConstThresholds(2), process.ScenarioB, 16)
	pf, err := m.FixedPoint(InitialBalanced(1, 16), 0.05, 1e-8, 400000)
	if err != nil {
		t.Fatal(err)
	}
	pr := process.New(process.ScenarioB, rules.NewABKU(2), loadvec.Balanced(n, n), rng.New(88))
	pr.Run(20 * n)
	counts := make([]float64, 17)
	const samples = 40
	for s := 0; s < samples; s++ {
		pr.Run(n / 2)
		for _, l := range pr.Peek() {
			if l > 16 {
				l = 16
			}
			counts[l]++
		}
	}
	for i := range counts {
		counts[i] /= float64(samples * n)
	}
	for l := 0; l <= 4; l++ {
		if math.Abs(counts[l]-pf[l]) > 0.03 {
			t.Fatalf("level %d: simulated %.4f vs fluid %.4f", l, counts[l], pf[l])
		}
	}
}

// TestFixedPointIndependentOfStart: the fluid dynamics have a unique
// attracting fixed point at each mean load — different initial
// distributions with the same mean converge to the same answer.
func TestFixedPointIndependentOfStart(t *testing.T) {
	m := NewModel(rules.ConstThresholds(2), process.ScenarioA, 16)
	balanced := InitialBalanced(1, 16)
	// A spread start with the same mean: half empty, half at load 2.
	spread := make([]float64, 17)
	spread[0] = 0.5
	spread[2] = 0.5
	p1, err := m.FixedPoint(balanced, 0.05, 1e-9, 400000)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.FixedPoint(spread, 0.05, 1e-9, 400000)
	if err != nil {
		t.Fatal(err)
	}
	for l := range p1 {
		if math.Abs(p1[l]-p2[l]) > 1e-4 {
			t.Fatalf("fixed points differ at level %d: %v vs %v", l, p1[l], p2[l])
		}
	}
}

// TestScenariosDifferInStationaryShape: removal semantics change the
// stationary distribution (B removes uniformly across nonempty bins, so
// highly loaded bins keep more mass than under A).
func TestScenariosDifferInStationaryShape(t *testing.T) {
	fp := func(sc process.Scenario) []float64 {
		m := NewModel(rules.ConstThresholds(2), sc, 16)
		p, err := m.FixedPoint(InitialBalanced(1, 16), 0.05, 1e-8, 400000)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := fp(process.ScenarioA)
	b := fp(process.ScenarioB)
	diff := 0.0
	for l := range a {
		diff += math.Abs(a[l] - b[l])
	}
	if diff < 1e-3 {
		t.Fatalf("scenario A and B fixed points are indistinguishable (L1 %v)", diff)
	}
}
