package fluid_test

import (
	"fmt"

	"dynalloc/internal/fluid"
	"dynalloc/internal/process"
	"dynalloc/internal/rules"
)

// The fluid limit predicts where a dynamic allocation process settles:
// integrate to the fixed point and read off the maximum load whose tail
// holds at least one bin in expectation.
func ExampleModel_FixedPoint() {
	m := fluid.NewModel(rules.ConstThresholds(2), process.ScenarioA, 30)
	p, err := m.FixedPoint(fluid.InitialBalanced(1, 30), 0.05, 1e-8, 400000)
	if err != nil {
		panic(err)
	}
	fmt.Println("predicted max load for one million bins:", fluid.PredictedMaxLoad(p, 1_000_000))
	// Output: predicted max load for one million bins: 4
}
