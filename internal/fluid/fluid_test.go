package fluid

import (
	"math"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

func TestInsertProbsMatchClosedFormABKU(t *testing.T) {
	// For ABKU[d], ins[l] = s_l^d - s_{l+1}^d.
	p := []float64{0.3, 0.4, 0.2, 0.1, 0}
	for _, d := range []int{1, 2, 3} {
		m := NewModel(rules.ConstThresholds(d), process.ScenarioA, len(p)-1)
		ins := m.InsertProbs(p)
		s := tails(p)
		for l := range p {
			want := math.Pow(s[l], float64(d)) - math.Pow(s[l+1], float64(d))
			if math.Abs(ins[l]-want) > 1e-12 {
				t.Fatalf("d=%d level %d: ins %v, want %v", d, l, ins[l], want)
			}
		}
	}
}

func TestInsertProbsSumToOne(t *testing.T) {
	p := []float64{0.25, 0.25, 0.25, 0.25, 0, 0}
	for _, x := range []rules.Thresholds{
		rules.ConstThresholds(1),
		rules.ConstThresholds(2),
		rules.SliceThresholds{1, 2, 4},
		rules.SliceThresholds{2, 3},
	} {
		m := NewModel(x, process.ScenarioA, len(p)-1)
		ins := m.InsertProbs(p)
		sum := 0.0
		for _, v := range ins {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("thresholds %v: insert probs sum to %v", x, sum)
		}
	}
}

func TestRemoveProbsScenarios(t *testing.T) {
	p := []float64{0.5, 0.25, 0.25}
	mA := NewModel(rules.ConstThresholds(2), process.ScenarioA, 2)
	remA := mA.RemoveProbs(p)
	// mean = 0.25 + 0.5 = 0.75; rem[1] = 0.25/0.75, rem[2] = 0.5/0.75.
	if math.Abs(remA[1]-1.0/3) > 1e-12 || math.Abs(remA[2]-2.0/3) > 1e-12 {
		t.Fatalf("scenario A rem = %v", remA)
	}
	mB := NewModel(rules.ConstThresholds(2), process.ScenarioB, 2)
	remB := mB.RemoveProbs(p)
	if math.Abs(remB[1]-0.5) > 1e-12 || math.Abs(remB[2]-0.5) > 1e-12 {
		t.Fatalf("scenario B rem = %v", remB)
	}
	if remA[0] != 0 || remB[0] != 0 {
		t.Fatal("empty bins must not be removal targets")
	}
}

func TestDerivConservesMassAndMean(t *testing.T) {
	p := InitialBalanced(1, 12)
	for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
		m := NewModel(rules.ConstThresholds(2), sc, 12)
		d := m.Deriv(p)
		mass, mean := 0.0, 0.0
		for l, x := range d {
			mass += x
			mean += float64(l) * x
		}
		if math.Abs(mass) > 1e-12 {
			t.Fatalf("scenario %v: mass flux %v", sc, mass)
		}
		// One insertion and one removal per phase: mean load is conserved
		// (up to cap truncation, which is zero here).
		if math.Abs(mean) > 1e-12 {
			t.Fatalf("scenario %v: mean flux %v", sc, mean)
		}
	}
}

func TestFixedPointReached(t *testing.T) {
	m := NewModel(rules.ConstThresholds(2), process.ScenarioA, 14)
	p0 := InitialBalanced(1, 14)
	p, err := m.FixedPoint(p0, 0.05, 1e-7, 200000)
	if err != nil {
		t.Fatal(err)
	}
	// At the fixed point the derivative is tiny and the mean is still 1.
	if mu := Mean(p); math.Abs(mu-1) > 0.02 {
		t.Fatalf("fixed point drifted to mean %v", mu)
	}
}

// TestTwoChoicesBeatsOneChoice is the headline comparison the paper's
// applications rely on: the stationary tail of d=2 is doubly
// exponential, so the predicted max load for n bins is far below d=1.
func TestTwoChoicesBeatsOneChoice(t *testing.T) {
	const n = 1 << 16
	pred := func(d int) int {
		m := NewModel(rules.ConstThresholds(d), process.ScenarioA, 40)
		p, err := m.FixedPoint(InitialBalanced(1, 40), 0.05, 1e-8, 400000)
		if err != nil {
			t.Fatal(err)
		}
		return PredictedMaxLoad(p, n)
	}
	one := pred(1)
	two := pred(2)
	three := pred(3)
	if !(one > two && two >= three) {
		t.Fatalf("max load predictions not ordered: d=1:%d d=2:%d d=3:%d", one, two, three)
	}
	if two > 8 {
		t.Fatalf("d=2 predicted max load %d is not in the ln ln n regime", two)
	}
	if one < 6 {
		t.Fatalf("d=1 predicted max load %d is suspiciously small", one)
	}
}

// TestFluidMatchesSimulation: the fixed-point tail fractions should be
// close to the empirical stationary distribution of a large simulated
// system.
func TestFluidMatchesSimulation(t *testing.T) {
	const n = 20000
	m := NewModel(rules.ConstThresholds(2), process.ScenarioA, 16)
	pf, err := m.FixedPoint(InitialBalanced(1, 16), 0.05, 1e-8, 400000)
	if err != nil {
		t.Fatal(err)
	}
	pr := process.New(process.ScenarioA, rules.NewABKU(2), loadvec.Balanced(n, n), rng.New(77))
	pr.Run(20 * n) // burn-in
	counts := make([]float64, 17)
	const samples = 40
	for s := 0; s < samples; s++ {
		pr.Run(n / 2)
		for _, l := range pr.Peek() {
			if l > 16 {
				l = 16
			}
			counts[l]++
		}
	}
	for i := range counts {
		counts[i] /= float64(samples * n)
	}
	for l := 0; l <= 4; l++ {
		if math.Abs(counts[l]-pf[l]) > 0.03 {
			t.Fatalf("level %d: simulated %.4f vs fluid %.4f", l, counts[l], pf[l])
		}
	}
}

func TestInitialBalanced(t *testing.T) {
	p := InitialBalanced(1.25, 4)
	if math.Abs(p[1]-0.75) > 1e-12 || math.Abs(p[2]-0.25) > 1e-12 {
		t.Fatalf("InitialBalanced(1.25) = %v", p)
	}
	if Mean(p) != 1.25 {
		t.Fatalf("mean = %v", Mean(p))
	}
	whole := InitialBalanced(2, 4)
	if whole[2] != 1 {
		t.Fatalf("InitialBalanced(2) = %v", whole)
	}
}

func TestPredictedMaxLoad(t *testing.T) {
	p := []float64{0.5, 0.25, 0.2, 0.05}
	// tails: 1, .5, .25, .05
	if got := PredictedMaxLoad(p, 10); got != 2 {
		t.Fatalf("PredictedMaxLoad(n=10) = %d, want 2", got)
	}
	if got := PredictedMaxLoad(p, 1000); got != 3 {
		t.Fatalf("PredictedMaxLoad(n=1000) = %d, want 3", got)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewModel(rules.ConstThresholds(2), process.ScenarioA, 1) },
		func() { InitialBalanced(-1, 4) },
		func() { InitialBalanced(9, 4) },
		func() { PredictedMaxLoad([]float64{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
