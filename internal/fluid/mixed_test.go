package fluid

import (
	"math"
	"testing"

	"dynalloc/internal/process"
	"dynalloc/internal/rules"
)

func TestMixedModelEndpoints(t *testing.T) {
	p := []float64{0.3, 0.4, 0.2, 0.1, 0}
	m0 := NewMixedModel(0, process.ScenarioA, len(p)-1)
	one := NewModel(rules.ConstThresholds(1), process.ScenarioA, len(p)-1)
	a := m0.InsertProbs(p)
	b := one.InsertProbs(p)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("beta=0 level %d: %v vs %v", i, a[i], b[i])
		}
	}
	m1 := NewMixedModel(1, process.ScenarioA, len(p)-1)
	two := NewModel(rules.ConstThresholds(2), process.ScenarioA, len(p)-1)
	a = m1.InsertProbs(p)
	b = two.InsertProbs(p)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("beta=1 level %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMixedModelInsertSumsToOne(t *testing.T) {
	p := []float64{0.25, 0.5, 0.25, 0, 0}
	m := NewMixedModel(0.35, process.ScenarioA, len(p)-1)
	sum := 0.0
	for _, v := range m.InsertProbs(p) {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mixture insert probs sum to %v", sum)
	}
}

// TestMixedModelInterpolatesMaxLoad: the (1+beta) fixed-point max load
// sits between the d=1 and d=2 predictions.
func TestMixedModelInterpolatesMaxLoad(t *testing.T) {
	const n = 1 << 16
	pred := func(m *Model) int {
		p, err := m.FixedPoint(InitialBalanced(1, m.L), 0.05, 1e-8, 400000)
		if err != nil {
			t.Fatal(err)
		}
		return PredictedMaxLoad(p, n)
	}
	one := pred(NewModel(rules.ConstThresholds(1), process.ScenarioA, 40))
	mix := pred(NewMixedModel(0.5, process.ScenarioA, 40))
	two := pred(NewModel(rules.ConstThresholds(2), process.ScenarioA, 40))
	if !(two <= mix && mix <= one) {
		t.Fatalf("max loads not interpolated: d1=%d mix=%d d2=%d", one, mix, two)
	}
	// With half the insertions informed, the tail is polynomially thin
	// rather than doubly exponential: strictly worse than pure d=2.
	if mix == two {
		t.Logf("note: mix prediction equals d=2 at this n (%d); acceptable but unusual", mix)
	}
}

func TestNewMixedModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMixedModel(1.5, process.ScenarioA, 10)
}
