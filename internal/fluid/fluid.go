// Package fluid implements Mitzenmacher's fluid-limit (density-dependent
// jump Markov process) method, the companion technique the paper builds
// on: differential equations whose fixed points predict the *stationary*
// load distribution — and hence the typical maximum load — of the
// dynamic allocation processes. The paper's own contribution (recovery
// time) says nothing about the stationary state, so the reproduction
// pairs the two exactly as Section 1 suggests: fluid limits for "where
// does the process settle", path coupling for "how fast does it get
// there".
//
// State: p[l] = fraction of bins with load exactly l, truncated at a cap
// L. One time unit corresponds to n phases of the discrete process (each
// bin is touched O(1) times per unit). Each phase removes one ball
// (Scenario A: from a uniform ball's bin; Scenario B: from a uniform
// nonempty bin) and inserts one ball with ADAP(x)/ABKU[d].
package fluid

import (
	"fmt"
	"math"

	"dynalloc/internal/process"
	"dynalloc/internal/rules"
)

// Model is a closed dynamic allocation process in the fluid limit.
type Model struct {
	// X is the threshold sequence of the insertion rule
	// (ConstThresholds(d) for ABKU[d]). Ignored when Law is set.
	X rules.Thresholds
	// Law, when non-nil, overrides the threshold DP as the insertion
	// law: given bin-load fractions p it returns ins[l] = probability
	// one insertion lands in a load-l bin. Used for rules that are not
	// pure ADAP(x), e.g. the (1+beta)-choice mixture.
	Law func(p []float64) []float64
	// Scenario selects the removal dynamics.
	Scenario process.Scenario
	// L is the load cap: bins beyond load L are treated as load L. Choose
	// L well above the expected maximum load.
	L int
}

// NewModel validates and returns a model for an ADAP(x) insertion rule.
func NewModel(x rules.Thresholds, sc process.Scenario, cap int) *Model {
	if cap < 2 {
		panic("fluid: load cap must be >= 2")
	}
	return &Model{X: x, Scenario: sc, L: cap}
}

// NewMixedModel returns the fluid model of the (1+beta)-choice rule:
// its insertion law is the beta-mixture of the d=1 and d=2 laws.
func NewMixedModel(beta float64, sc process.Scenario, cap int) *Model {
	if beta < 0 || beta > 1 {
		panic("fluid: beta out of [0,1]")
	}
	one := NewModel(rules.ConstThresholds(1), sc, cap)
	two := NewModel(rules.ConstThresholds(2), sc, cap)
	m := &Model{Scenario: sc, L: cap}
	m.Law = func(p []float64) []float64 {
		a := one.InsertProbs(p)
		b := two.InsertProbs(p)
		out := make([]float64, len(a))
		for i := range out {
			out[i] = (1-beta)*a[i] + beta*b[i]
		}
		return out
	}
	return m
}

// tails returns s[l] = sum_{j >= l} p[j] for l = 0..L+1.
func tails(p []float64) []float64 {
	s := make([]float64, len(p)+1)
	for l := len(p) - 1; l >= 0; l-- {
		s[l] = s[l+1] + p[l]
	}
	return s
}

// InsertProbs returns ins[l] = probability that one insertion under
// ADAP(X) lands in a bin of load exactly l, given bin-load fractions p.
// It runs the exact dynamic program over (probe count M, running
// minimum sampled load): a probe sequence stops at the first M for
// which the minimum load l seen so far satisfies X(l) <= M.
func (m *Model) InsertProbs(p []float64) []float64 {
	if m.Law != nil {
		return m.Law(p)
	}
	L := len(p) - 1
	ins := make([]float64, L+1)
	// alive[l] = Pr[not yet stopped, running min = l].
	alive := make([]float64, L+1)
	// First probe.
	for j := 0; j <= L; j++ {
		alive[j] = p[j]
	}
	limit := m.X.X(L)
	for M := 1; M <= limit; M++ {
		// Stop rule at probe M.
		done := true
		for l := 0; l <= L; l++ {
			if alive[l] == 0 {
				continue
			}
			if m.X.X(l) <= M {
				ins[l] += alive[l]
				alive[l] = 0
			} else {
				done = false
			}
		}
		if done {
			break
		}
		// Next probe: running min evolves.
		next := make([]float64, L+1)
		s := tails(p)
		for l := 0; l <= L; l++ {
			if alive[l] == 0 {
				continue
			}
			// Probe j >= l keeps the min at l; probe j < l moves it to j.
			next[l] += alive[l] * s[l]
			for j := 0; j < l; j++ {
				next[j] += alive[l] * p[j]
			}
		}
		alive = next
	}
	return ins
}

// RemoveProbs returns rem[l] = probability the removal phase takes a
// ball from a bin of load exactly l.
func (m *Model) RemoveProbs(p []float64) []float64 {
	L := len(p) - 1
	rem := make([]float64, L+1)
	switch m.Scenario {
	case process.ScenarioA:
		mean := 0.0
		for l := 1; l <= L; l++ {
			mean += float64(l) * p[l]
		}
		if mean <= 0 {
			return rem // no balls: removal is a no-op
		}
		for l := 1; l <= L; l++ {
			rem[l] = float64(l) * p[l] / mean
		}
	case process.ScenarioB:
		nonEmpty := 1 - p[0]
		if nonEmpty <= 0 {
			return rem
		}
		for l := 1; l <= L; l++ {
			rem[l] = p[l] / nonEmpty
		}
	default:
		panic("fluid: unknown scenario")
	}
	return rem
}

// Deriv returns dp/dt: per unit time each bin participates in O(1)
// phases; one phase inserts one ball (a load-l bin becomes l+1 with
// probability ins[l]) and removes one (load-l becomes l-1 with
// probability rem[l]). The cap L is absorbing upward: insertions into
// load-L bins are dropped, which is harmless when L is far above the
// operating regime.
func (m *Model) Deriv(p []float64) []float64 {
	L := len(p) - 1
	ins := m.InsertProbs(p)
	rem := m.RemoveProbs(p)
	d := make([]float64, L+1)
	for l := 0; l <= L; l++ {
		if l < L {
			d[l] -= ins[l] // load l -> l+1
			d[l+1] += ins[l]
		}
		if l >= 1 {
			d[l] -= rem[l] // load l -> l-1
			d[l-1] += rem[l]
		}
	}
	return d
}

// RK4 integrates the model with the classical fourth-order Runge-Kutta
// scheme: `steps` steps of size dt starting from p0 (copied).
func (m *Model) RK4(p0 []float64, dt float64, steps int) []float64 {
	p := append([]float64(nil), p0...)
	k := len(p)
	add := func(a, b []float64, scale float64) []float64 {
		out := make([]float64, k)
		for i := range out {
			out[i] = a[i] + scale*b[i]
		}
		return out
	}
	for s := 0; s < steps; s++ {
		k1 := m.Deriv(p)
		k2 := m.Deriv(add(p, k1, dt/2))
		k3 := m.Deriv(add(p, k2, dt/2))
		k4 := m.Deriv(add(p, k3, dt))
		for i := range p {
			p[i] += dt / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
			if p[i] < 0 {
				p[i] = 0 // numerical floor
			}
		}
		renormalize(p)
	}
	return p
}

func renormalize(p []float64) {
	sum := 0.0
	for _, x := range p {
		sum += x
	}
	if sum > 0 {
		for i := range p {
			p[i] /= sum
		}
	}
}

// FixedPoint integrates until ||dp/dt||_1 < tol or maxSteps RK4 steps of
// size dt pass, returning the (approximate) stationary load-fraction
// vector.
func (m *Model) FixedPoint(p0 []float64, dt, tol float64, maxSteps int) ([]float64, error) {
	p := append([]float64(nil), p0...)
	for s := 0; s < maxSteps; s++ {
		p = m.RK4(p, dt, 1)
		norm := 0.0
		for _, x := range m.Deriv(p) {
			norm += math.Abs(x)
		}
		if norm < tol {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fluid: no fixed point within %d steps", maxSteps)
}

// InitialBalanced returns the load-fraction vector of the balanced state
// with mean load rho (mass on floor(rho) and ceil(rho)).
func InitialBalanced(rho float64, cap int) []float64 {
	if rho < 0 || rho > float64(cap) {
		panic("fluid: mean load out of range")
	}
	p := make([]float64, cap+1)
	lo := int(math.Floor(rho))
	frac := rho - float64(lo)
	if lo >= cap {
		p[cap] = 1
		return p
	}
	p[lo] = 1 - frac
	p[lo+1] = frac
	return p
}

// PredictedMaxLoad returns the fluid-limit prediction of the maximum
// load among n bins: the largest level l whose tail fraction s_l is at
// least 1/n (a tail thinner than 1/n means fewer than one bin in
// expectation).
func PredictedMaxLoad(p []float64, n int) int {
	if n < 1 {
		panic("fluid: n must be positive")
	}
	s := tails(p)
	thresh := 1 / float64(n)
	maxL := 0
	for l := 0; l < len(s); l++ {
		if s[l] >= thresh {
			maxL = l
		}
	}
	return maxL
}

// Mean returns the mean load of a fraction vector.
func Mean(p []float64) float64 {
	mu := 0.0
	for l, x := range p {
		mu += float64(l) * x
	}
	return mu
}
