package serve

import (
	"testing"

	"dynalloc/internal/core"
	"dynalloc/internal/metrics"
	"dynalloc/internal/process"
)

func TestNewTarget(t *testing.T) {
	const n, m = 1024, 1024
	p := NewABKUPolicy(2)
	target, err := NewTarget(p, process.ScenarioA, n, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	// At load factor 1 the two-choice stationary max load is tiny
	// (Theta(ln ln n) above the mean); the fluid prediction must land
	// in a sane band.
	if target.PredictedMax < 1 || target.PredictedMax > 8 {
		t.Fatalf("predicted max %d out of sane band [1,8]", target.PredictedMax)
	}
	if target.MaxLoad() != target.PredictedMax+1 {
		t.Fatalf("MaxLoad() = %d, want predicted+slack", target.MaxLoad())
	}
	if want := core.Theorem1Bound(m, 0.25); target.BudgetSteps != want {
		t.Fatalf("budget %v, want Theorem 1 bound %v", target.BudgetSteps, want)
	}
	if _, err := NewTarget(p, process.ScenarioA, 0, 1, 0); err == nil {
		t.Fatal("NewTarget accepted n=0")
	}
	if _, err := NewTarget(p, process.ScenarioA, 4, 4, -1); err == nil {
		t.Fatal("NewTarget accepted negative slack")
	}
}

func TestNewTargetMixed(t *testing.T) {
	target, err := NewTarget(NewMixedPolicy(0.5), process.ScenarioB, 256, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The (1+beta) mixture sits between Uniform and ABKU[2]; its
	// stationary max at load factor 1 is small but above 1.
	if target.PredictedMax < 1 || target.PredictedMax > 12 {
		t.Fatalf("mixed predicted max %d out of sane band", target.PredictedMax)
	}
}

func TestDetectorEpisodes(t *testing.T) {
	metrics.Reset()
	metrics.Enable()
	defer metrics.Disable()
	defer metrics.Reset()

	const n, m = 64, 64
	st := NewStoreShards(n, 8)
	st.FillBalanced(m)
	target := Target{PredictedMax: 2, Slack: 1, BudgetSteps: 1}
	d := NewDetector(st, target)

	// Startup: balanced state is typical, so the first check closes the
	// initial (startup) episode.
	s := d.Check()
	if !s.Recovered || !d.Recovered() {
		t.Fatalf("balanced store not recovered: %+v", s)
	}
	if _, eps := d.LastEpisode(); eps != 1 {
		t.Fatalf("startup episode not recorded: %d episodes", eps)
	}

	// Crash and mark: the detector must flip to disrupted.
	st.Crash(5, 40)
	d.MarkDisrupted()
	if d.Recovered() {
		t.Fatal("recovered right after MarkDisrupted")
	}
	s = d.Check()
	if s.Recovered || s.MaxLoad < 40 {
		t.Fatalf("crash not observed: %+v", s)
	}
	if s.DeltaTypical == 0 || s.Gap == 0 {
		t.Fatalf("distance metrics flat after crash: %+v", s)
	}

	// Drain the crashed bin; do some admissions so the episode has a
	// nonzero step count, then the next check closes episode 2.
	for i := 0; i < 40; i++ {
		if _, err := st.FreeBin(5); err != nil {
			t.Fatal(err)
		}
	}
	st.Alloc(5) // advance the step clock
	if _, err := st.FreeBin(5); err != nil {
		t.Fatal(err)
	}
	s = d.Check()
	if !s.Recovered {
		t.Fatalf("still disrupted after drain: %+v", s)
	}
	ep, eps := d.LastEpisode()
	if eps != 2 {
		t.Fatalf("episodes = %d, want 2", eps)
	}
	if ep.Steps != 1 {
		t.Fatalf("episode steps = %d, want the 1 admission since the crash", ep.Steps)
	}

	// The metric surface: recovered gauge is 1, the recovery histogram
	// holds both completed episodes.
	snap := metrics.Default().Snapshot()
	if g := snap.Gauges["serve.recovered"]; g != 1 {
		t.Fatalf("serve.recovered gauge = %v, want 1", g)
	}
	if h := snap.Histograms["serve.recovery.steps"]; h.Count != 2 {
		t.Fatalf("serve.recovery.steps count = %d, want 2", h.Count)
	}
	if h := snap.Histograms["serve.recovery.wall_ns"]; h.Count != 2 {
		t.Fatalf("serve.recovery.wall_ns count = %d, want 2", h.Count)
	}
	if g := snap.Gauges["serve.target_max_load"]; g != 3 {
		t.Fatalf("serve.target_max_load gauge = %v, want 3", g)
	}
}

func TestDetectorDriftReopensOutage(t *testing.T) {
	st := NewStoreShards(16, 4)
	st.FillBalanced(16)
	d := NewDetector(st, Target{PredictedMax: 1, Slack: 0})
	if s := d.Check(); !s.Recovered {
		t.Fatalf("balanced not typical: %+v", s)
	}
	// Drift out of the band without MarkDisrupted: the detector itself
	// must open a new outage on observation.
	st.Crash(0, 10)
	if s := d.Check(); s.Recovered {
		t.Fatal("detector missed the drift")
	}
	for i := 0; i < 10; i++ {
		st.FreeBin(0)
	}
	if s := d.Check(); !s.Recovered {
		t.Fatal("detector missed the drift recovery")
	}
	if _, eps := d.LastEpisode(); eps != 2 {
		t.Fatalf("episodes = %d, want 2 (startup + drift)", eps)
	}
}
