package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynalloc/internal/metrics"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
)

// Config describes a traffic drive: workers replaying the paper's
// remove-then-insert phases against a live Store.
type Config struct {
	Store    *Store
	Policy   Policy
	Scenario process.Scenario

	// Workers is the number of concurrent drive goroutines (default 1).
	// Each worker draws from its own deterministic rng stream
	// (rng.NewStream(Seed, worker)), so a single-worker run is exactly
	// reproducible; multi-worker runs are reproducible per worker but
	// interleave nondeterministically at the store.
	Workers int
	Seed    uint64

	// Rate, when positive, paces the drive as an open loop: phases are
	// issued at `Rate` per second in aggregate, with exponential
	// interarrival times drawn from a separate pacing stream (so pacing
	// does not perturb the allocation decisions). Rate == 0 is a closed
	// loop: each worker issues its next phase immediately.
	Rate float64

	// MaxSteps stops the drive after this many phases in total
	// (0 = unlimited; stop via ctx or StopOnRecovery instead).
	MaxSteps int64

	// Detector, when set, is checked every CheckEvery phases (default:
	// max(1024, n)) by whichever worker crosses the cadence.
	Detector   *Detector
	CheckEvery int64

	// StopOnRecovery stops the drive at the first detector check that
	// observes the typical state.
	StopOnRecovery bool

	// Batch, when > 1, routes each worker through the batched admission
	// lane: super-phases of up to Batch phases whose admissions are
	// applied by one Store.AdmitBatch call (see Batcher), dropping the
	// steady-state allocation cost of the drive loop to zero and — with
	// a Journal installed — feeding the group-commit writer whole runs
	// at a time. 0 or 1 keeps the per-phase path. Detector checks still
	// fire on the CheckEvery cadence (at the pass that crosses it), and
	// the final pass is clamped to the steps MaxSteps still allows; as
	// in the per-phase lane the stop is cooperative, so concurrent
	// workers can overshoot MaxSteps by at most one pass each.
	Batch int
}

// Result summarizes one Engine.Run.
type Result struct {
	Steps     int64         // phases executed
	Wall      time.Duration // wall-clock duration of the run
	Recovered bool          // detector state at the end (false without a detector)
	Episode   Episode       // last completed recovery episode
	Episodes  int64         // completed episodes
}

// Engine drives traffic through a Store: each phase removes one ball
// per the departure scenario and admits one through the policy — the
// online form of the closed processes of Section 2. It is the
// subsystem's load generator for benchmarks, the -drive mode of
// cmd/dynallocd, and the harness the recovery integration tests run.
type Engine struct {
	cfg   Config
	steps atomic.Int64
	halt  atomic.Bool
}

// NewEngine validates cfg, fills in defaults, and returns an engine.
func NewEngine(cfg Config) *Engine {
	if cfg.Store == nil || cfg.Policy == nil {
		panic("serve: engine needs a store and a policy")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = int64(cfg.Store.N())
		if cfg.CheckEvery < 1024 {
			cfg.CheckEvery = 1024
		}
	}
	return &Engine{cfg: cfg}
}

// Steps returns the number of phases executed so far.
func (e *Engine) Steps() int64 { return e.steps.Load() }

// Stop asks all workers to exit after their current phase.
func (e *Engine) Stop() { e.halt.Store(true) }

// pacingStreamOffset separates the pacing rng streams from the
// decision streams, so open-loop pacing draws never perturb the
// allocation decisions of a given (seed, worker).
const pacingStreamOffset = 1 << 32

// Run drives traffic until ctx is done, MaxSteps phases have executed,
// Stop is called, or (with StopOnRecovery) the detector observes the
// typical state. It blocks until every worker has exited and returns
// the run summary. Per-worker admission latency histograms are merged
// into the "serve.alloc.latency_ns" metric, and the phase counters are
// flushed to "serve.engine.phases", when collection is enabled.
func (e *Engine) Run(ctx context.Context) Result {
	cfg := e.cfg
	start := time.Now()
	hists := make([]*metrics.Histogram, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		hists[w] = &metrics.Histogram{}
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			e.drive(ctx, worker, hists[worker])
		}(w)
	}
	wg.Wait()

	res := Result{Steps: e.steps.Load(), Wall: time.Since(start)}
	if cfg.Detector != nil {
		res.Recovered = cfg.Detector.Recovered()
		res.Episode, res.Episodes = cfg.Detector.LastEpisode()
	}
	if metrics.Enabled() {
		agg := metrics.Default().Histogram("serve.alloc.latency_ns")
		for _, h := range hists {
			agg.Merge(h)
		}
		metrics.AddCounter("serve.engine.phases", res.Steps)
	}
	return res
}

// drive is one worker's loop.
func (e *Engine) drive(ctx context.Context, worker int, lat *metrics.Histogram) {
	cfg := e.cfg
	if cfg.Batch > 1 {
		e.driveBatched(ctx, worker, lat)
		return
	}
	// Each worker gets its own policy copy (the serve-side form of
	// rules.CloneForWorker), so no mutable rule state is shared.
	pol := cfg.Policy.Clone()
	r := rng.NewStream(cfg.Seed, uint64(worker))
	var pace *rng.RNG
	var perWorkerRate float64
	if cfg.Rate > 0 {
		pace = rng.NewStream(cfg.Seed, uint64(worker)+pacingStreamOffset)
		perWorkerRate = cfg.Rate / float64(cfg.Workers)
	}
	done := ctx.Done()
	record := metrics.Enabled()

	for i := 0; ; i++ {
		if e.halt.Load() {
			return
		}
		if i&63 == 0 {
			select {
			case <-done:
				return
			default:
			}
		}
		if pace != nil {
			sleep := time.Duration(pace.Exp() / perWorkerRate * float64(time.Second))
			select {
			case <-done:
				return
			case <-time.After(sleep):
			}
		}

		if err := e.phase(pol, r, lat, record); err != nil {
			// Only ErrEmpty can surface here: the store was drained (all
			// departures, e.g. an aggressive open-loop free stream).
			// Closed-loop phases re-insert what they remove, so with
			// Total >= 1 this is unreachable; stop rather than spin.
			e.halt.Store(true)
			return
		}

		t := e.steps.Add(1)
		if cfg.MaxSteps > 0 && t >= cfg.MaxSteps {
			e.halt.Store(true)
			return
		}
		if cfg.Detector != nil && t%cfg.CheckEvery == 0 {
			s := cfg.Detector.Check()
			if cfg.StopOnRecovery && s.Recovered {
				e.halt.Store(true)
				return
			}
		}
	}
}

// driveBatched is one worker's loop on the batch lane (Config.Batch
// > 1): the same control surface as drive — halt flag, ctx polls,
// open-loop pacing, MaxSteps, detector cadence — but phases execute in
// Batcher passes. Pacing draws one exponential wait per pass, scaled
// by the pass size, so the aggregate phase rate matches the per-phase
// lane; the latency histogram records per-phase cost (pass wall time
// divided by phases completed).
func (e *Engine) driveBatched(ctx context.Context, worker int, lat *metrics.Histogram) {
	cfg := e.cfg
	bt := NewBatcher(cfg.Store, cfg.Policy, cfg.Scenario, cfg.Batch)
	r := rng.NewStream(cfg.Seed, uint64(worker))
	var pace *rng.RNG
	var perWorkerRate float64
	if cfg.Rate > 0 {
		pace = rng.NewStream(cfg.Seed, uint64(worker)+pacingStreamOffset)
		perWorkerRate = cfg.Rate / float64(cfg.Workers)
	}
	done := ctx.Done()
	record := metrics.Enabled()

	for i := 0; ; i++ {
		if e.halt.Load() {
			return
		}
		if i&15 == 0 {
			select {
			case <-done:
				return
			default:
			}
		}
		k := cfg.Batch
		if cfg.MaxSteps > 0 {
			rem := cfg.MaxSteps - e.steps.Load()
			if rem <= 0 {
				e.halt.Store(true)
				return
			}
			if int64(k) > rem {
				k = int(rem)
			}
		}
		if pace != nil {
			sleep := time.Duration(pace.Exp() / perWorkerRate * float64(k) * float64(time.Second))
			select {
			case <-done:
				return
			case <-time.After(sleep):
			}
		}

		var phases int
		var err error
		if record {
			t0 := time.Now()
			phases, err = bt.Pass(r, k)
			if phases > 0 {
				lat.Observe(time.Since(t0).Nanoseconds() / int64(phases))
			}
		} else {
			phases, err = bt.Pass(r, k)
		}
		if phases == 0 {
			if err != nil {
				// Drained store, as in drive: stop rather than spin.
				e.halt.Store(true)
			}
			return
		}

		t := e.steps.Add(int64(phases))
		if err != nil || (cfg.MaxSteps > 0 && t >= cfg.MaxSteps) {
			e.halt.Store(true)
			return
		}
		if cfg.Detector != nil && t/cfg.CheckEvery != (t-int64(phases))/cfg.CheckEvery {
			s := cfg.Detector.Check()
			if cfg.StopOnRecovery && s.Recovered {
				e.halt.Store(true)
				return
			}
		}
	}
}

// phase performs one remove-then-insert phase, the unit transition of
// the paper's closed processes.
func (e *Engine) phase(pol Policy, r *rng.RNG, lat *metrics.Histogram, record bool) error {
	var err error
	switch e.cfg.Scenario {
	case process.ScenarioA:
		_, err = e.cfg.Store.FreeBall(r)
	case process.ScenarioB:
		_, err = e.cfg.Store.FreeNonEmpty(r)
	default:
		panic(fmt.Sprintf("serve: unknown scenario %v", e.cfg.Scenario))
	}
	if err != nil {
		return err
	}
	if record {
		t0 := time.Now()
		bin, _ := pol.Pick(e.cfg.Store, r)
		e.cfg.Store.Alloc(bin)
		lat.Observe(time.Since(t0).Nanoseconds())
		return nil
	}
	bin, _ := pol.Pick(e.cfg.Store, r)
	e.cfg.Store.Alloc(bin)
	return nil
}
