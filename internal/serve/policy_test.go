package serve

import (
	"testing"

	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// predictProbes replays the probe stream a policy will see: rng streams
// are deterministic, so a second generator with the same (seed, stream)
// yields exactly the draws Pick consumes.
func predictProbes(seed uint64, n, k int) []int {
	r := rng.NewStream(seed, 0)
	out := make([]int, k)
	for i := range out {
		out[i] = r.Intn(n)
	}
	return out
}

func TestABKUPolicyPicksLeastLoadedProbe(t *testing.T) {
	const n, d = 32, 3
	st := NewStoreShards(n, 4)
	for b := 0; b < n; b++ {
		st.Crash(b, b) // distinct loads: bin index == load
	}
	for seed := uint64(0); seed < 20; seed++ {
		probes := predictProbes(seed, n, d)
		want := probes[0]
		for _, b := range probes[1:] {
			if st.Load(b) < st.Load(want) {
				want = b
			}
		}
		p := NewABKUPolicy(d)
		bin, used := p.Pick(st, rng.NewStream(seed, 0))
		if used != d {
			t.Fatalf("seed %d: ABKU[%d] used %d probes", seed, d, used)
		}
		if bin != want {
			t.Fatalf("seed %d: picked bin %d (load %d), want %d (load %d) among probes %v",
				seed, bin, st.Load(bin), want, st.Load(want), probes)
		}
	}
}

func TestADAPPolicyStopsByThreshold(t *testing.T) {
	const n = 16
	st := NewStoreShards(n, 4)
	for b := 0; b < n; b++ {
		st.Crash(b, 2) // uniform load 2 everywhere
	}
	// x_2 = 3: with every bin at load 2 the rule must probe exactly 3
	// times and keep the first probe (ties never displace the minimum).
	p := NewADAPPolicy(rules.SliceThresholds{1, 2, 3})
	for seed := uint64(0); seed < 10; seed++ {
		probes := predictProbes(seed, n, 3)
		bin, used := p.Pick(st, rng.NewStream(seed, 0))
		if used != 3 {
			t.Fatalf("seed %d: used %d probes, want 3", seed, used)
		}
		if bin != probes[0] {
			t.Fatalf("seed %d: picked %d, want first probe %d", seed, bin, probes[0])
		}
	}
	// A load-0 bin satisfies x_0 = 1 immediately: one probe.
	st0 := NewStoreShards(n, 4)
	if _, used := p.Pick(st0, rng.New(3)); used != 1 {
		t.Fatalf("on an empty store ADAP used %d probes, want 1", used)
	}
}

func TestMixedPolicyProbeCounts(t *testing.T) {
	st := NewStoreShards(8, 2)
	st.Crash(0, 5)
	always := NewMixedPolicy(1.0)
	never := NewMixedPolicy(0.0)
	for seed := uint64(0); seed < 10; seed++ {
		if _, used := always.Pick(st, rng.NewStream(seed, 0)); used != 2 {
			t.Fatalf("beta=1 used %d probes, want 2", used)
		}
		if _, used := never.Pick(st, rng.NewStream(seed, 0)); used != 1 {
			t.Fatalf("beta=0 used %d probes, want 1", used)
		}
	}
	// The coin is drawn before any probe, matching rules.Mixed's draw
	// order: the picked bin is the draw *after* the coin.
	r1 := rng.New(9)
	r1.Float64() // the coin
	wantBin := r1.Intn(8)
	bin, _ := never.Pick(st, rng.New(9))
	if bin != wantBin {
		t.Fatalf("coin/probe draw order differs from rules.Mixed: got bin %d, want %d", bin, wantBin)
	}
}

func TestPolicyCloneIndependence(t *testing.T) {
	xs := rules.SliceThresholds{1, 2, 2}
	p := NewADAPPolicy(xs)
	xs[1] = 99 // caller mutates its slice after construction
	clone := p.Clone()
	if p.Name() != clone.Name() {
		t.Fatalf("clone renamed the policy: %q vs %q", p.Name(), clone.Name())
	}
	// Both the original and the clone must still see the original
	// thresholds (defensive copies at construction and at Clone).
	ap := p.(*adapPolicy)
	cp := clone.(*adapPolicy)
	if ap.x.X(1) != 2 || cp.x.X(1) != 2 {
		t.Fatalf("threshold mutation leaked: orig x_1=%d clone x_1=%d", ap.x.X(1), cp.x.X(1))
	}
}

func TestParsePolicy(t *testing.T) {
	good := map[string]string{
		"abku:2":     "ABKU[2]",
		"abku":       "ABKU[2]",
		"abku3":      "ABKU[3]",
		"abku:1":     "Uniform",
		"uniform":    "Uniform",
		"adap:1,2,2": "ADAP(1,2,2,...)",
		"mixed:0.25": "Mixed(0.25)",
		"mixed":      "Mixed(0.50)",
	}
	for spec, want := range good {
		p, err := ParsePolicy(spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", spec, err)
		}
		if p.Name() != want {
			t.Fatalf("ParsePolicy(%q).Name() = %q, want %q", spec, p.Name(), want)
		}
	}
	bad := []string{"", "abku:0", "adap:", "adap:2,1", "adap:0", "mixed:1.5", "mixed:x", "rr", "abku:x"}
	for _, spec := range bad {
		if _, err := ParsePolicy(spec); err == nil {
			t.Fatalf("ParsePolicy(%q) succeeded, want error", spec)
		}
	}
}

func TestPolicyNamesMatchRules(t *testing.T) {
	// The service and the simulator must report identical rule names,
	// so tables and dashboards line up.
	pairs := []struct {
		p Policy
		r rules.Rule
	}{
		{NewABKUPolicy(2), rules.NewABKU(2)},
		{NewABKUPolicy(1), rules.NewUniform()},
		{NewADAPPolicy(rules.SliceThresholds{1, 2, 2}), rules.NewAdaptive(rules.SliceThresholds{1, 2, 2})},
		{NewMixedPolicy(0.5), rules.NewMixed(0.5)},
	}
	for _, pair := range pairs {
		if pair.p.Name() != pair.r.Name() {
			t.Fatalf("policy %q != rule %q", pair.p.Name(), pair.r.Name())
		}
	}
}
