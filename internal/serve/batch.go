package serve

import (
	"fmt"

	"dynalloc/internal/metrics"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
)

// Batcher is one worker's zero-allocation batch lane through the
// engine: each Pass drives up to `batch` remove-then-insert phases,
// removing k balls through the departure scenario and re-admitting all
// k with a single Store.AdmitBatch call — one striped-lock acquisition
// per touched shard per pass instead of one per ball. All pass state
// (the destination bins, the admit grouping scratch, pre-resolved
// metric counters) lives in the Batcher, so a steady stream of passes
// performs zero heap allocations on the non-durable path; the
// TestAllocBudget tier and the serve/admit-batch bench workload gate
// exactly that.
//
// Within one pass the policy's probes do not see the pass's own
// admissions — the same bounded staleness any concurrent d-choice
// deployment has (and precisely what the cluster router's pipelined
// dgram AdmitBatch already accepts shard-to-router); the departure
// draws of the next pass see every prior admission. A Batcher is
// single-caller state: give each worker its own.
type Batcher struct {
	st      *Store
	pol     Policy
	bp      BatchPolicy // non-nil when pol supports the batch pick path
	sc      process.Scenario
	bins    []int
	scratch AdmitScratch

	// Counters are resolved once here: the registry lookup takes a
	// read lock and hashes the name, which has no place in the hot loop.
	balls  *metrics.Counter
	passes *metrics.Counter
}

// NewBatcher returns a batch lane over st driving phases of the given
// scenario with its own clone of pol. batch (>= 1) is the pass
// capacity — the largest k a single Pass will drive.
func NewBatcher(st *Store, pol Policy, sc process.Scenario, batch int) *Batcher {
	if st == nil || pol == nil {
		panic("serve: batcher needs a store and a policy")
	}
	if batch < 1 {
		panic("serve: batcher needs batch >= 1")
	}
	if sc != process.ScenarioA && sc != process.ScenarioB {
		panic(fmt.Sprintf("serve: unknown scenario %v", sc))
	}
	reg := metrics.Default()
	b := &Batcher{
		st:     st,
		pol:    pol.Clone(),
		sc:     sc,
		bins:   make([]int, batch),
		balls:  reg.Counter("serve.admit.batch.balls"),
		passes: reg.Counter("serve.admit.batch.passes"),
	}
	b.bp, _ = b.pol.(BatchPolicy)
	return b
}

// Batch returns the pass capacity.
func (b *Batcher) Batch() int { return len(b.bins) }

// Pass drives one super-phase of k phases (clamped to the pass
// capacity): k scenario departures, then k admissions picked through
// the policy's batch path and applied with one AdmitBatch. It returns
// the number of phases completed. A short count with a non-nil error
// (always ErrEmpty) means the store drained mid-pass; the balls freed
// before the drain are still re-admitted, so a Pass never loses mass.
func (b *Batcher) Pass(r *rng.RNG, k int) (int, error) {
	if k > len(b.bins) {
		k = len(b.bins)
	}
	freed := 0
	var err error
	for ; freed < k; freed++ {
		if b.sc == process.ScenarioB {
			_, err = b.st.FreeNonEmpty(r)
		} else {
			_, err = b.st.FreeBall(r)
		}
		if err != nil {
			break
		}
	}
	if freed == 0 {
		return 0, err
	}
	bins := b.bins[:freed]
	if b.bp != nil {
		b.bp.PickBatch(b.st, r, bins)
	} else {
		for i := range bins {
			bins[i], _ = b.pol.Pick(b.st, r)
		}
	}
	b.st.AdmitBatch(bins, nil, &b.scratch)
	if metrics.Enabled() {
		b.balls.Add(int64(freed))
		b.passes.Inc()
	}
	return freed, err
}
