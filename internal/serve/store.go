// Package serve turns the paper's dynamic allocation processes into a
// long-running, thread-safe service: a sharded bin store that admits and
// releases balls concurrently, admission policies that realize ABKU[d],
// ADAP(x) and the (1+beta)-choice rule against live (un-normalized) bin
// loads, the paper's two departure streams (Scenario A and Scenario B),
// an online recovery detector that watches the store converge back to
// its typical state, and a traffic-driving engine.
//
// The offline packages (process, core, markov) study the same dynamics
// as Markov chains on normalized load vectors; this package is the
// online counterpart. The bridge between the two worlds is
// Store.Snapshot, which produces a loadvec.Vector so every existing
// analysis primitive (Gap, Delta, fluid baselines, theorem bounds)
// applies to the live system unchanged.
//
// Concurrency model: per-bin loads live in a flat array of atomics, so
// the admission path probes and the detector snapshots without taking
// any lock. Mutations go through striped (power-of-two sharded) locks;
// each shard additionally maintains an atomic ball total, which gives
// the Scenario A departure stream a two-level weighted sample (pick a
// shard by its total, then a bin within the shard) without a global
// lock. Single-worker runs driven from one rng stream are fully
// deterministic; see Engine.
package serve

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
)

// ErrEmpty is returned by the departure streams when the store holds no
// balls at the moment of the draw.
var ErrEmpty = errors.New("serve: store is empty")

// ErrEmptyBin is returned by FreeBin when the requested bin holds no
// ball (a process never removes from an empty bin).
var ErrEmptyBin = errors.New("serve: bin is empty")

// shard is one lock stripe of the store. The mutex guards all mutations
// of the bins in [lo, hi); total mirrors the ball count of those bins
// and is additionally readable lock-free (atomic) so Scenario A shard
// selection does not serialize on the stripe locks. allocs/frees count
// the stripe's completed admissions/departures: they are bumped under
// the stripe lock alongside the global counters, so a striped
// checkpoint reading them under each lock gets an exact per-section
// counter cut without stopping the world (only the SUM over stripes is
// persisted, which is why Restore may rebase the whole total onto one
// stripe). The pad keeps adjacent shards off one cache line.
type shard struct {
	mu     sync.Mutex
	total  atomic.Int64
	allocs atomic.Int64
	frees  atomic.Int64
	lo     int
	hi     int
	_      [8]byte
}

// StoreHook observes committed store mutations. Implementations are
// called with the owning shard lock held — immediately after the
// mutation is applied and before the lock is released — so per-bin
// hook order exactly matches per-bin mutation order. Implementations
// must therefore be fast and must never call back into the store; the
// durability Journal, for example, only assigns a sequence number and
// enqueues a WAL record.
type StoreHook interface {
	OnAlloc(bin int)
	OnFree(bin int)
	OnCrash(bin, k int)
}

// BatchStoreHook is an optional StoreHook extension for the batched
// admission lane: AdmitBatch hands each shard's group of admissions to
// OnAllocRun in one call — with that shard's lock held, immediately
// after the whole group is applied — instead of one OnAlloc per ball,
// so per-push overhead (close guards, pending accounting, seq
// reservation in the Journal) is paid once per group. The StoreHook
// constraints apply unchanged, plus: bins is scratch owned by the
// caller and must not be retained past the call. A hook that does not
// implement this interface receives per-ball OnAlloc calls from
// AdmitBatch, so batching never changes what a plain hook observes.
type BatchStoreHook interface {
	StoreHook
	OnAllocRun(bins []int)
}

// Store is a concurrent bin store holding the live load vector of an
// allocation service with n bins. All methods are safe for concurrent
// use. Loads are int32; a single bin can therefore absorb ~2·10^9
// balls, far beyond any crash injection of interest.
type Store struct {
	n         int
	shardBits int // len(shards) == 1 << shardBits
	shardSize int
	loads     []atomic.Int32
	shards    []shard
	hook      StoreHook // set before traffic via SetHook; nil = one branch per mutation

	total    atomic.Int64 // balls currently stored
	nonEmpty atomic.Int64 // bins with load > 0
	allocs   atomic.Int64 // completed Alloc calls (the service's step clock)
	frees    atomic.Int64 // completed Free* calls
}

// NewStore returns an empty store with n bins and an automatic shard
// count: the smallest power of two covering 2x GOMAXPROCS, clamped to
// [8, 256] and to at most n. Use NewStoreShards to pin the shard count
// (the Scenario A departure stream consumes randomness per shard
// geometry, so pinning it makes runs reproducible across machines).
func NewStore(n int) *Store {
	target := 2 * runtime.GOMAXPROCS(0)
	if target < 8 {
		target = 8
	}
	if target > 256 {
		target = 256
	}
	shards := ceilPow2(target)
	if shards > n {
		shards = ceilPow2(n)
	}
	return NewStoreShards(n, shards)
}

// NewStoreShards returns an empty store with n bins and exactly
// `shards` lock stripes. It panics unless n >= 1 and shards is a power
// of two in [1, 2^20].
func NewStoreShards(n, shards int) *Store {
	if n < 1 {
		panic("serve: store needs n >= 1")
	}
	if shards < 1 || shards > 1<<20 || shards&(shards-1) != 0 {
		panic(fmt.Sprintf("serve: shard count %d is not a power of two in [1, 2^20]", shards))
	}
	size := (n + shards - 1) / shards
	st := &Store{
		n:         n,
		shardBits: bits.TrailingZeros(uint(shards)),
		shardSize: size,
		loads:     make([]atomic.Int32, n),
		shards:    make([]shard, shards),
	}
	for i := range st.shards {
		lo := i * size
		hi := lo + size
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		st.shards[i].lo, st.shards[i].hi = lo, hi
	}
	return st
}

func ceilPow2(x int) int {
	if x <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(x-1))
}

// N returns the number of bins.
func (st *Store) N() int { return st.n }

// Shards returns the number of lock stripes.
func (st *Store) Shards() int { return len(st.shards) }

// Total returns the number of balls currently stored.
func (st *Store) Total() int64 { return st.total.Load() }

// NonEmpty returns the number of bins currently holding a ball.
func (st *Store) NonEmpty() int64 { return st.nonEmpty.Load() }

// Allocs returns the number of completed admissions since creation.
// This monotone counter is the service's step clock: in a closed-loop
// drive one phase performs exactly one admission, so recovery times
// measured in Allocs are directly comparable to the paper's phase
// counts.
func (st *Store) Allocs() int64 { return st.allocs.Load() }

// Frees returns the number of completed departures since creation.
func (st *Store) Frees() int64 { return st.frees.Load() }

// Load returns bin b's current load with one atomic read. This is the
// lock-free probe primitive of the admission path; the value may be
// stale by the time the caller acts on it, which is exactly the
// semantics a d-choice balancer has in any distributed deployment.
func (st *Store) Load(b int) int { return int(st.loads[b].Load()) }

func (st *Store) shardOf(b int) *shard { return &st.shards[b/st.shardSize] }

// SetHook installs (or, with nil, removes) the mutation hook. Not
// synchronized: call it before traffic starts, or after every worker
// has quiesced — boot-time restore wiring and shutdown are the two
// intended call sites.
func (st *Store) SetHook(h StoreHook) { st.hook = h }

// allocBareLocked adds one ball to bin b without notifying the hook.
// Caller holds the shard lock and is responsible for the hook call
// (per ball, or per run via BatchStoreHook) before releasing it.
func (st *Store) allocBareLocked(sh *shard, b int) int32 {
	l := st.loads[b].Add(1)
	if l == 1 {
		st.nonEmpty.Add(1)
	}
	sh.total.Add(1)
	sh.allocs.Add(1)
	st.total.Add(1)
	st.allocs.Add(1)
	return l
}

// allocLocked adds one ball to bin b. Caller holds the shard lock.
func (st *Store) allocLocked(sh *shard, b int) int32 {
	l := st.allocBareLocked(sh, b)
	if st.hook != nil {
		st.hook.OnAlloc(b)
	}
	return l
}

// freeLocked removes one ball from bin b. Caller holds the shard lock
// and has verified the bin is nonempty.
func (st *Store) freeLocked(sh *shard, b int) int32 {
	l := st.loads[b].Add(-1)
	if l == 0 {
		st.nonEmpty.Add(-1)
	}
	sh.total.Add(-1)
	sh.frees.Add(1)
	st.total.Add(-1)
	st.frees.Add(1)
	if st.hook != nil {
		st.hook.OnFree(b)
	}
	return l
}

// Alloc places one ball into bin b and returns the bin's new load. It
// panics if b is out of range.
func (st *Store) Alloc(b int) int {
	if b < 0 || b >= st.n {
		panic(fmt.Sprintf("serve: Alloc bin %d out of range [0,%d)", b, st.n))
	}
	sh := st.shardOf(b)
	sh.mu.Lock()
	l := st.allocLocked(sh, b)
	sh.mu.Unlock()
	return int(l)
}

// ShardOf returns the index of the lock stripe bin b belongs to.
func (st *Store) ShardOf(b int) int { return b / st.shardSize }

// AdmitScratch is the reusable per-caller state of Store.AdmitBatch:
// the per-shard chain heads/tails, the entry links, the list of
// touched shards, and the shard-grouped apply order of the last batch.
// The zero value is ready to use; the slices grow to the store's shard
// count and the largest batch seen, after which AdmitBatch performs no
// heap allocation. A scratch is single-caller state — never share one
// between concurrent AdmitBatch calls.
type AdmitScratch struct {
	head    []int32 // per touched shard slot: 1-based index of its first entry
	tail    []int32 // per touched shard slot: 1-based index of its last entry
	next    []int32 // per entry: 1-based index of the next entry in its shard
	touched []int32 // shard indices hit by the batch, in first-touch order
	order   []int32 // entry indices in the order their admissions were applied
	run     []int   // current shard's bins, handed to BatchStoreHook.OnAllocRun
}

// Order returns the entry indices of the most recent AdmitBatch in the
// order their admissions were applied: grouped by shard (first-touch
// order), stable within a shard. Because the Journal assigns sequence
// numbers under the shard lock at apply time, this is exactly WAL seq
// order — which is what the crash-schedule explorer needs to keep its
// reference history aligned with what a power cut can tear. The slice
// is valid until the next AdmitBatch call with this scratch.
func (sc *AdmitScratch) Order() []int32 { return sc.order }

// AdmitBatch admits one ball into bins[i] for every i. It is
// observationally equivalent to len(bins) sequential Alloc calls —
// same final loads, counters, per-ball load results, and per-bin hook
// order — but takes one striped-lock acquisition per *touched shard*
// per batch instead of one per ball. Entries are grouped by shard and
// applied shard by shard in first-touch order, stable within a shard;
// entries of different shards may commit out of entry order, which is
// invisible to any observer because single-ball admissions to distinct
// bins commute (every interleaving reaches the same state, and
// concurrent readers could see any of them already). Use
// sc.Order() when the true apply order matters.
//
// If loads is non-nil it must hold at least len(bins) entries;
// loads[i] receives bin bins[i]'s load immediately after its
// admission, exactly what the corresponding Alloc call would have
// returned. AdmitBatch panics — before mutating anything — if any bin
// is out of range.
func (st *Store) AdmitBatch(bins []int, loads []int32, sc *AdmitScratch) {
	n := len(bins)
	if n == 0 {
		return
	}
	for _, b := range bins {
		if b < 0 || b >= st.n {
			panic(fmt.Sprintf("serve: AdmitBatch bin %d out of range [0,%d)", b, st.n))
		}
	}
	if n == 1 {
		// No grouping to do; keep the single-ball fast path allocation-free
		// without touching the scratch chains.
		l := int32(st.Alloc(bins[0]))
		if loads != nil {
			loads[0] = l
		}
		sc.order = append(sc.order[:0], 0)
		return
	}
	if len(sc.head) < len(st.shards) {
		sc.head = make([]int32, len(st.shards))
		sc.tail = make([]int32, len(st.shards))
	}
	if cap(sc.next) < n {
		sc.next = make([]int32, n)
	}
	sc.next = sc.next[:n]
	sc.touched = sc.touched[:0]
	sc.order = sc.order[:0]

	// Group entries into per-shard FIFO chains (1-based links; 0 = nil).
	for i, b := range bins {
		si := int32(b / st.shardSize)
		sc.next[i] = 0
		if sc.head[si] == 0 {
			sc.head[si] = int32(i + 1)
			sc.touched = append(sc.touched, si)
		} else {
			sc.next[sc.tail[si]-1] = int32(i + 1)
		}
		sc.tail[si] = int32(i + 1)
	}

	bh, _ := st.hook.(BatchStoreHook)
	for _, si := range sc.touched {
		sh := &st.shards[si]
		sh.mu.Lock()
		if bh != nil {
			sc.run = sc.run[:0]
			for e := sc.head[si]; e != 0; e = sc.next[e-1] {
				i := int(e - 1)
				l := st.allocBareLocked(sh, bins[i])
				if loads != nil {
					loads[i] = l
				}
				sc.order = append(sc.order, int32(i))
				sc.run = append(sc.run, bins[i])
			}
			bh.OnAllocRun(sc.run)
		} else if st.hook != nil {
			for e := sc.head[si]; e != 0; e = sc.next[e-1] {
				i := int(e - 1)
				l := st.allocBareLocked(sh, bins[i])
				if loads != nil {
					loads[i] = l
				}
				sc.order = append(sc.order, int32(i))
				st.hook.OnAlloc(bins[i])
			}
		} else {
			for e := sc.head[si]; e != 0; e = sc.next[e-1] {
				i := int(e - 1)
				l := st.allocBareLocked(sh, bins[i])
				if loads != nil {
					loads[i] = l
				}
				sc.order = append(sc.order, int32(i))
			}
		}
		sh.mu.Unlock()
		sc.head[si], sc.tail[si] = 0, 0
	}
}

// FreeBin removes one ball from the specific bin b and returns its new
// load, or ErrEmptyBin if the bin holds no ball. It panics if b is out
// of range.
func (st *Store) FreeBin(b int) (int, error) {
	if b < 0 || b >= st.n {
		panic(fmt.Sprintf("serve: FreeBin bin %d out of range [0,%d)", b, st.n))
	}
	sh := st.shardOf(b)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st.loads[b].Load() == 0 {
		return 0, ErrEmptyBin
	}
	return int(st.freeLocked(sh, b)), nil
}

// FreeBall implements the Scenario A departure stream: it removes a
// ball chosen uniformly at random among all stored balls (a bin is hit
// with probability proportional to its load) and returns the bin it
// was taken from.
//
// The draw is two-level: one uniform variate in [0, Total()) selects a
// shard by walking the atomic shard totals, then the residue selects a
// bin inside the (locked) shard by a weighted scan. With quiescent
// writers this is an exact weighted sample; under concurrent churn the
// totals can drift during the walk, in which case the draw is retried
// (and, within a confirmed shard, the residue is clamped — a bias of
// at most one ball's weight per racing mutation).
func (st *Store) FreeBall(r *rng.RNG) (int, error) {
	for attempt := 0; attempt < 64; attempt++ {
		total := st.total.Load()
		if total <= 0 {
			return -1, ErrEmpty
		}
		target := int64(r.Uint64n(uint64(total)))
		for si := range st.shards {
			sh := &st.shards[si]
			t := sh.total.Load()
			if target >= t {
				target -= t
				continue
			}
			sh.mu.Lock()
			t = sh.total.Load() // stable now: all writers take this lock
			if t == 0 {
				sh.mu.Unlock()
				break // drifted empty under us; redraw
			}
			if target >= t {
				target = t - 1
			}
			for b := sh.lo; b < sh.hi; b++ {
				l := int64(st.loads[b].Load())
				if target < l {
					st.freeLocked(sh, b)
					sh.mu.Unlock()
					return b, nil
				}
				target -= l
			}
			sh.mu.Unlock()
			break // unreachable unless totals drifted; redraw
		}
	}
	// Pathological churn: fall back to the first ball found under locks.
	for si := range st.shards {
		sh := &st.shards[si]
		sh.mu.Lock()
		for b := sh.lo; b < sh.hi; b++ {
			if st.loads[b].Load() > 0 {
				st.freeLocked(sh, b)
				sh.mu.Unlock()
				return b, nil
			}
		}
		sh.mu.Unlock()
	}
	return -1, ErrEmpty
}

// FreeNonEmpty implements the Scenario B departure stream: it removes
// one ball from a nonempty bin chosen uniformly at random among the
// nonempty bins, and returns that bin. The draw is rejection sampling
// over uniform bins (expected n/NonEmpty() iterations, at most 2
// whenever at least half the bins are loaded); after 4n+64 consecutive
// rejections it falls back to a linear scan over all bins, which keeps
// the call bounded when racing frees empty the store.
func (st *Store) FreeNonEmpty(r *rng.RNG) (int, error) {
	maxRejects := 4*st.n + 64
	for attempt := 0; attempt <= maxRejects; attempt++ {
		if st.total.Load() <= 0 {
			return -1, ErrEmpty
		}
		b := r.Intn(st.n)
		if st.loads[b].Load() == 0 {
			continue
		}
		sh := st.shardOf(b)
		sh.mu.Lock()
		if st.loads[b].Load() > 0 {
			st.freeLocked(sh, b)
			sh.mu.Unlock()
			return b, nil
		}
		sh.mu.Unlock()
	}
	for off := 0; off < st.n; off++ {
		b := off
		if st.loads[b].Load() == 0 {
			continue
		}
		sh := st.shardOf(b)
		sh.mu.Lock()
		if st.loads[b].Load() > 0 {
			st.freeLocked(sh, b)
			sh.mu.Unlock()
			return b, nil
		}
		sh.mu.Unlock()
	}
	return -1, ErrEmpty
}

// Crash dumps k extra balls into bin b at once — the fault injector
// that manufactures the adversarial "all the mass in one place" states
// of the paper's introduction. It returns the bin's new load. Crash
// counts neither as admissions nor as departures, so the step clock
// (Allocs) measures recovery work only.
func (st *Store) Crash(b, k int) int {
	if b < 0 || b >= st.n {
		panic(fmt.Sprintf("serve: Crash bin %d out of range [0,%d)", b, st.n))
	}
	if k < 0 {
		panic("serve: Crash needs k >= 0")
	}
	if k == 0 {
		return st.Load(b)
	}
	sh := st.shardOf(b)
	sh.mu.Lock()
	l := st.loads[b].Add(int32(k))
	if l == int32(k) {
		st.nonEmpty.Add(1)
	}
	sh.total.Add(int64(k))
	st.total.Add(int64(k))
	if st.hook != nil {
		st.hook.OnCrash(b, k)
	}
	sh.mu.Unlock()
	return int(l)
}

// FillBalanced seeds the store with the most balanced state of Omega_m:
// every bin gets floor(m/n) balls and the first m mod n bins one more.
// Intended for initialization; it takes the shard locks bin by bin and
// is safe (though pointless) to race with traffic. Seeding counts as
// neither admissions nor departures.
func (st *Store) FillBalanced(m int) {
	if m < 0 {
		panic("serve: FillBalanced needs m >= 0")
	}
	q, rem := m/st.n, m%st.n
	for b := 0; b < st.n; b++ {
		add := q
		if b < rem {
			add++
		}
		if add == 0 {
			continue
		}
		st.Crash(b, add)
	}
}

// Snapshot reads every bin with one atomic load apiece — no locks — and
// returns the normalized load vector, the exact object the offline
// analysis code (Gap, Delta, fluid baselines, theorem bounds) operates
// on. Under concurrent traffic the snapshot is per-bin consistent but
// not a global atomic cut: it may show a state the store never passed
// through exactly, off by the handful of operations in flight. For the
// recovery detector this is harmless — the distance metrics move by
// O(1) per operation.
func (st *Store) Snapshot() loadvec.Vector {
	out := make([]int, st.n)
	for b := range out {
		out[b] = int(st.loads[b].Load())
	}
	return loadvec.FromLoads(out)
}

// LoadsCopy returns the raw (bin-indexed, unsorted) loads, read
// lock-free like Snapshot. Useful for tests and for callers that need
// bin identities rather than the normalized vector.
func (st *Store) LoadsCopy() []int {
	out := make([]int, st.n)
	for b := range out {
		out[b] = int(st.loads[b].Load())
	}
	return out
}

// LoadSummary is the compact load digest a cluster router probes for:
// everything the cluster-level d-choice rule and the cluster recovery
// detector need from a shard, without the Snapshot() copy + sort.
type LoadSummary struct {
	N        int   `json:"n"`
	Total    int64 `json:"total"`
	MaxLoad  int   `json:"max_load"`
	NonEmpty int64 `json:"non_empty"`
	Allocs   int64 `json:"allocs"`
	Frees    int64 `json:"frees"`
}

// LoadSummary reads the store's load digest lock-free: the counters are
// single atomic loads and MaxLoad is one pass over the bin atomics with
// no allocation — unlike Snapshot, which copies all n loads and sorts
// them into a normalized vector. Under concurrent traffic the digest
// has Snapshot's consistency: per-field exact counters, a max that can
// be off by the operations in flight during the scan. This is the
// PROBE hot path of the dgram protocol, so it must not allocate.
func (st *Store) LoadSummary() LoadSummary {
	max := 0
	for b := range st.loads {
		if l := int(st.loads[b].Load()); l > max {
			max = l
		}
	}
	return LoadSummary{
		N:        st.n,
		Total:    st.total.Load(),
		MaxLoad:  max,
		NonEmpty: st.nonEmpty.Load(),
		Allocs:   st.allocs.Load(),
		Frees:    st.frees.Load(),
	}
}

// AppendStripeTotals appends the per-stripe ball counts (one atomic
// read per lock stripe, index order) to dst and returns it, so callers
// on a hot path can reuse the slice across probes.
func (st *Store) AppendStripeTotals(dst []int64) []int64 {
	for i := range st.shards {
		dst = append(dst, st.shards[i].total.Load())
	}
	return dst
}

// Stats is a cheap O(1) summary of the store's counters.
type Stats struct {
	N        int   `json:"n"`
	Total    int64 `json:"total"`
	NonEmpty int64 `json:"non_empty"`
	Allocs   int64 `json:"allocs"`
	Frees    int64 `json:"frees"`
}

// lockAll acquires every shard lock in index order, stopping the world
// for an exact checkpoint cut: with all stripes held no mutation (and
// therefore no journal push) can be in flight.
func (st *Store) lockAll() {
	for i := range st.shards {
		st.shards[i].mu.Lock()
	}
}

// unlockAll releases every shard lock (reverse order of lockAll).
func (st *Store) unlockAll() {
	for i := len(st.shards) - 1; i >= 0; i-- {
		st.shards[i].mu.Unlock()
	}
}

// Restore overwrites the store's entire state with the given per-bin
// loads and counter values — the boot-time half of checkpoint
// recovery. It is NOT safe to race with traffic; call it before any
// worker or handler touches the store. Restoring counts as neither
// admissions nor departures beyond the restored counter values.
func (st *Store) Restore(loads []int32, allocs, frees int64) error {
	if len(loads) != st.n {
		return fmt.Errorf("serve: restore of %d bins into a store of %d", len(loads), st.n)
	}
	var total, nonEmpty int64
	for i := range st.shards {
		st.shards[i].total.Store(0)
		st.shards[i].allocs.Store(0)
		st.shards[i].frees.Store(0)
	}
	// The restored totals cannot be attributed to individual stripes
	// (the snapshot persists only the sums), so they rebase onto stripe
	// 0: per-stripe counts stop being meaningful, but the sum over
	// stripes — the only thing a striped checkpoint persists — stays
	// exact as subsequent mutations bump their own stripes.
	st.shards[0].allocs.Store(allocs)
	st.shards[0].frees.Store(frees)
	for b, l := range loads {
		if l < 0 {
			return fmt.Errorf("serve: restore bin %d has negative load %d", b, l)
		}
		st.loads[b].Store(l)
		if l > 0 {
			nonEmpty++
			total += int64(l)
			st.shardOf(b).total.Add(int64(l))
		}
	}
	st.total.Store(total)
	st.nonEmpty.Store(nonEmpty)
	st.allocs.Store(allocs)
	st.frees.Store(frees)
	return nil
}

// Stats returns the current counter summary without touching the bins.
func (st *Store) Stats() Stats {
	return Stats{
		N:        st.n,
		Total:    st.total.Load(),
		NonEmpty: st.nonEmpty.Load(),
		Allocs:   st.allocs.Load(),
		Frees:    st.frees.Load(),
	}
}
