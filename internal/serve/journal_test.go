package serve

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"dynalloc/internal/checkpoint"
	"dynalloc/internal/metrics"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/simfs"
	"dynalloc/internal/vfs"
	"dynalloc/internal/wal"
)

// The tests in this file run the journal against the simulated
// filesystem (internal/simfs): deterministic, no disk, and trial
// forks are cheap Clone calls instead of directory copies. The
// crash-schedule explorer (internal/simfs/explore) drives the same
// stack through randomized crash points; these tests pin the
// hand-picked layouts with exact assertions.
func newJournaled(t *testing.T, n, shards int, opts wal.Options) (*Store, *Journal, *simfs.FS, string) {
	t.Helper()
	fs := simfs.New()
	dir := "/wal"
	opts.Dir = dir
	opts.FS = fs
	if opts.SegmentBytes == 0 {
		// Tiny segments so every test exercises rotation.
		opts.SegmentBytes = 16 + 20*wal.RecordSize
	}
	if opts.Fsync == 0 {
		opts.Fsync = wal.FsyncNever
	}
	l, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStoreShards(n, shards)
	// A small MaxBatch so rotation still happens every few records
	// against the tiny segments above — and every test here exercises
	// the batched append path.
	j := NewJournal(st, l, 0, JournalOptions{Buffer: 64, MaxBatch: 4})
	return st, j, fs, dir
}

// refOp is one successful mutation of the reference model.
type refOp struct {
	op     wal.Op
	bin, k int
}

// applyRef replays a prefix of the reference op log onto plain ints.
func applyRef(n int, ops []refOp) (loads []int, allocs, frees int64) {
	loads = make([]int, n)
	for _, o := range ops {
		switch o.op {
		case wal.OpAlloc:
			loads[o.bin]++
			allocs++
		case wal.OpFree:
			loads[o.bin]--
			frees++
		case wal.OpCrash:
			loads[o.bin] += o.k
		}
	}
	return loads, allocs, frees
}

func assertStoreMatchesRef(t *testing.T, st *Store, n int, ops []refOp, what string) {
	t.Helper()
	want, allocs, frees := applyRef(n, ops)
	got := st.LoadsCopy()
	for b := range want {
		if got[b] != want[b] {
			t.Fatalf("%s: bin %d restored to %d, reference says %d (prefix %d ops)",
				what, b, got[b], want[b], len(ops))
		}
	}
	if st.Allocs() != allocs || st.Frees() != frees {
		t.Fatalf("%s: op clocks allocs=%d frees=%d, reference %d/%d",
			what, st.Allocs(), st.Frees(), allocs, frees)
	}
}

func TestJournalRoundTripThroughRestore(t *testing.T) {
	const n = 16
	st, j, fs, dir := newJournaled(t, n, 4, wal.Options{})
	st.FillBalanced(10)
	st.Alloc(3)
	st.Alloc(3)
	if _, err := st.FreeBin(3); err != nil {
		t.Fatal(err)
	}
	st.Crash(7, 5)
	want := st.LoadsCopy()
	wantAllocs, wantFrees := st.Allocs(), st.Frees()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	fresh := NewStoreShards(n, 4)
	res, err := RestoreFS(fresh, fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Restored || res.Torn || res.SkippedFrees != 0 {
		t.Fatalf("restore result %+v", res)
	}
	got := fresh.LoadsCopy()
	for b := range want {
		if got[b] != want[b] {
			t.Fatalf("bin %d: restored %d, want %d", b, got[b], want[b])
		}
	}
	if fresh.Allocs() != wantAllocs || fresh.Frees() != wantFrees {
		t.Fatalf("restored clocks %d/%d, want %d/%d", fresh.Allocs(), fresh.Frees(), wantAllocs, wantFrees)
	}
	if res.LastSeq != j.LastSeq() {
		t.Fatalf("restored LastSeq %d, journal wrote %d", res.LastSeq, j.LastSeq())
	}
}

// TestRealDiskRestore keeps the production Restore path (vfs.OS)
// covered end to end; everything else runs on simfs.
func TestRealDiskRestore(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStoreShards(8, 2)
	j := NewJournal(st, l, 0, JournalOptions{Buffer: 16})
	for i := 0; i < 20; i++ {
		st.Alloc(i % 8)
	}
	if _, _, err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := NewStoreShards(8, 2)
	res, err := Restore(fresh, dir)
	if err != nil || !res.Restored {
		t.Fatalf("real-disk restore: %+v, %v", res, err)
	}
	assertStoreMatchesRef(t, fresh, 8, allocRef(20, 8), "real-disk restore")
}

// TestCrashRecoveryProperty is the acceptance property test: drive a
// randomized traffic prefix through a journaled store, kill it at an
// arbitrary record boundary (and mid-record via truncation, and via a
// corrupted CRC, and with the newest checkpoint destroyed), restore,
// and require the rebuilt store to equal the reference replay exactly.
func TestCrashRecoveryProperty(t *testing.T) {
	const (
		n      = 24
		shards = 4
		opsLen = 400
	)
	r := rng.New(20260805)

	st, j, fs, dir := newJournaled(t, n, shards, wal.Options{})
	var ops []refOp
	var ckptSeqs []int // op-counts at which checkpoints were taken
	mutate := func() {
		switch r.Intn(10) {
		case 0: // crash injection
			b, k := r.Intn(n), 1+r.Intn(4)
			st.Crash(b, k)
			ops = append(ops, refOp{wal.OpCrash, b, k})
		case 1, 2, 3: // departure (may hit an empty bin: then no record)
			b := r.Intn(n)
			if _, err := st.FreeBin(b); err == nil {
				ops = append(ops, refOp{wal.OpFree, b, 1})
			}
		default: // admission
			b := r.Intn(n)
			st.Alloc(b)
			ops = append(ops, refOp{wal.OpAlloc, b, 1})
		}
	}
	for len(ops) < opsLen {
		mutate()
		// Two checkpoints mid-stream: the second's truncation must leave
		// enough WAL for the first to restore from (KeepCheckpoints=2).
		if len(ops) == opsLen/3 || len(ops) == 2*opsLen/3 {
			if _, _, err := j.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			ckptSeqs = append(ckptSeqs, len(ops))
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	newestCkpt := ckptSeqs[len(ckptSeqs)-1]
	oldestCkpt := ckptSeqs[0]

	// Checkpoint truncation deletes fully-covered segments, so file
	// positions no longer map to sequence numbers. The cut point is
	// instead read out of the record bytes themselves: traffic was
	// single-threaded, so file order equals seq order and the seq field
	// (record offset 9..17) of the last surviving record IS the highest
	// surviving seq.
	recordsIn := func(cfs *simfs.FS, path string) int {
		size := cfs.Size(path)
		if size < 0 {
			t.Fatalf("missing segment %s", path)
		}
		return int((size - 16) / wal.RecordSize)
	}
	seqAt := func(cfs *simfs.FS, path string, idx int) int {
		data, err := cfs.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		off := 16 + idx*wal.RecordSize + 9
		var v uint64
		for i := 7; i >= 0; i-- { // little-endian
			v = v<<8 | uint64(data[off+i])
		}
		return int(v)
	}
	sortedSegs := func(cfs *simfs.FS) []string {
		segs, err := cfs.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no segments: %v", err)
		}
		return segs
	}
	// lastSeqBefore returns the seq of the final record strictly before
	// position idx of segment si (0 if none survives in any segment).
	lastSeqBefore := func(cfs *simfs.FS, segs []string, si, idx int) int {
		for ; si >= 0; si-- {
			if idx > 0 {
				return seqAt(cfs, segs[si], idx-1)
			}
			if si > 0 {
				idx = recordsIn(cfs, segs[si-1])
			}
		}
		return 0
	}

	type trial struct {
		name      string
		mutateDir func(t *testing.T, cfs *simfs.FS) int // returns highest surviving seq (or -1 = all)
	}
	trials := []trial{
		{"no-cut", func(t *testing.T, cfs *simfs.FS) int { return -1 }},
		{"boundary-cut", func(t *testing.T, cfs *simfs.FS) int {
			segs := sortedSegs(cfs)
			last := len(segs) - 1
			keep := r.Intn(recordsIn(cfs, segs[last]) + 1)
			if err := cfs.Truncate(segs[last], int64(16+keep*wal.RecordSize)); err != nil {
				t.Fatal(err)
			}
			return lastSeqBefore(cfs, segs, last, keep)
		}},
		{"mid-record-cut", func(t *testing.T, cfs *simfs.FS) int {
			segs := sortedSegs(cfs)
			last := len(segs) - 1
			keep := r.Intn(recordsIn(cfs, segs[last])) // at least one partial record remains
			off := int64(16 + keep*wal.RecordSize + 1 + r.Intn(wal.RecordSize-2))
			if err := cfs.Truncate(segs[last], off); err != nil {
				t.Fatal(err)
			}
			return lastSeqBefore(cfs, segs, last, keep)
		}},
		{"corrupt-crc", func(t *testing.T, cfs *simfs.FS) int {
			segs := sortedSegs(cfs)
			// Pick a random record across all segments, flip a bin byte;
			// the CRC no longer matches and replay stops inside that
			// segment.
			si := r.Intn(len(segs))
			inSeg := recordsIn(cfs, segs[si])
			if inSeg == 0 {
				return -1
			}
			ri := r.Intn(inSeg)
			if err := cfs.Corrupt(segs[si], int64(16+ri*wal.RecordSize+2), 0x55); err != nil {
				t.Fatal(err)
			}
			// When the whole corrupted segment is already covered by the
			// newest checkpoint, replay bridges into the next segment (no
			// record would be skipped) and nothing is lost at all;
			// otherwise the corruption cuts the stream right there.
			if si < len(segs)-1 && seqAt(cfs, segs[si], inSeg-1) <= newestCkpt {
				return -1
			}
			return lastSeqBefore(cfs, segs, si, ri)
		}},
		{"newest-checkpoint-destroyed", func(t *testing.T, cfs *simfs.FS) int {
			metas, err := checkpoint.ListFS(cfs, dir)
			if err != nil || len(metas) != 2 {
				t.Fatalf("want 2 retained checkpoints, got %d (%v)", len(metas), err)
			}
			// Truncate the newest checkpoint file: LoadLatest must fall
			// back to the older one and replay the longer suffix.
			if err := cfs.Truncate(metas[1].Path, 9); err != nil {
				t.Fatal(err)
			}
			return -1
		}},
	}

	for round := 0; round < 8; round++ {
		for _, tr := range trials {
			cfs := fs.Clone()
			surviving := tr.mutateDir(t, cfs)

			prefix := len(ops)
			if surviving >= 0 {
				prefix = surviving
			}
			// The checkpoint floor: a kill cannot un-write a durable
			// checkpoint, so the restored state is at least that advanced.
			floor := newestCkpt
			if tr.name == "newest-checkpoint-destroyed" {
				floor = oldestCkpt
			}
			if prefix < floor {
				prefix = floor
			}

			fresh := NewStoreShards(n, shards)
			res, err := RestoreFS(fresh, cfs, dir)
			if err != nil {
				t.Fatalf("%s round %d: restore: %v", tr.name, round, err)
			}
			if !res.Restored {
				t.Fatalf("%s round %d: nothing restored (%+v)", tr.name, round, res)
			}
			if res.SkippedFrees != 0 {
				t.Fatalf("%s round %d: replay skipped %d frees on an honest log", tr.name, round, res.SkippedFrees)
			}
			assertStoreMatchesRef(t, fresh, n, ops[:prefix], tr.name)
		}
	}
}

// TestJournalUnderConcurrentTraffic drives the engine multi-worker
// against a journaled store and requires the restored replica to match
// the final state bin for bin: per-bin record order is preserved by
// the shard locks even though the global interleaving is racy.
func TestJournalUnderConcurrentTraffic(t *testing.T) {
	const n = 128
	st, j, fs, dir := newJournaled(t, n, 8, wal.Options{SegmentBytes: 1 << 16})
	st.FillBalanced(n)

	eng := NewEngine(Config{
		Store: st, Policy: NewABKUPolicy(2), Scenario: process.ScenarioA,
		Workers: 4, Seed: 99, MaxSteps: 20000,
	})
	eng.Run(context.Background())
	st.Crash(0, 64)
	want := st.LoadsCopy()
	wantAllocs, wantFrees := st.Allocs(), st.Frees()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	fresh := NewStoreShards(n, 8)
	res, err := RestoreFS(fresh, fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || res.SkippedFrees != 0 {
		t.Fatalf("restore result %+v", res)
	}
	got := fresh.LoadsCopy()
	for b := range want {
		if got[b] != want[b] {
			t.Fatalf("bin %d: restored %d, want %d", b, got[b], want[b])
		}
	}
	if fresh.Allocs() != wantAllocs || fresh.Frees() != wantFrees {
		t.Fatalf("clocks: %d/%d want %d/%d", fresh.Allocs(), fresh.Frees(), wantAllocs, wantFrees)
	}
}

func TestCheckpointTruncatesCoveredSegments(t *testing.T) {
	st, j, fs, dir := newJournaled(t, 8, 2, wal.Options{SegmentBytes: 16 + 4*wal.RecordSize})
	for i := 0; i < 40; i++ {
		st.Alloc(i % 8)
	}
	// Let the writer drain so sealed segments exist on disk.
	waitForSeq(t, j, 40)
	before, _ := fs.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(before) < 5 {
		t.Fatalf("expected several sealed segments, got %d", len(before))
	}
	if _, _, err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.Checkpoint(); err != nil { // second: oldest retained seq == 40 too
		t.Fatal(err)
	}
	after, _ := fs.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(after) >= len(before) {
		t.Fatalf("checkpoint truncated nothing: %d -> %d segments", len(before), len(after))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := NewStoreShards(8, 2)
	res, err := RestoreFS(fresh, fs, dir)
	if err != nil || !res.Restored {
		t.Fatalf("restore after truncation: %+v, %v", res, err)
	}
	assertStoreMatchesRef(t, fresh, 8, allocRef(40, 8), "post-truncation restore")
}

func allocRef(count, n int) []refOp {
	ops := make([]refOp, count)
	for i := range ops {
		ops[i] = refOp{wal.OpAlloc, i % n, 1}
	}
	return ops
}

// waitForSeq drains the journal queue (Drain blocks until the writer
// has handed every enqueued record to the WAL) and forces the tail
// into the segment file with one Sync.
func waitForSeq(t *testing.T, j *Journal, seq uint64) {
	t.Helper()
	j.Drain()
	if j.LastSeq() < seq {
		t.Fatalf("journal at seq %d, want >= %d", j.LastSeq(), seq)
	}
	if err := j.log.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreSkipsFreeOfEmptyBinFromForgedLog(t *testing.T) {
	fs := simfs.New()
	dir := "/wal"
	l, err := wal.Open(wal.Options{Dir: dir, FS: fs, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	// A forged log: free before any alloc, then normal traffic.
	recs := []wal.Record{
		{Op: wal.OpFree, Bin: 2, K: 1, Seq: 1},
		{Op: wal.OpAlloc, Bin: 2, K: 1, Seq: 2},
		{Op: wal.OpCrash, Bin: 0, K: 3, Seq: 3},
		{Op: wal.OpFree, Bin: 0, K: 1, Seq: 4},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	st := NewStoreShards(4, 2)
	res, err := RestoreFS(st, fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedFrees != 1 {
		t.Fatalf("skipped frees = %d, want 1", res.SkippedFrees)
	}
	if got := st.LoadsCopy(); got[2] != 1 || got[0] != 2 {
		t.Fatalf("forged-log state: %v", got)
	}
}

// TestDoubleCrashKeepsPostRestartMutations is the
// crash → restore → traffic → crash-again property test: run 1 takes a
// mid-run checkpoint (so boot-time truncation, which only reaches the
// oldest retained checkpoint's seq, cannot delete run 1's torn
// segment), dies mid-record, run 2 restores, takes the boot checkpoint
// exactly like cmd/dynallocd, serves more traffic, and dies mid-record
// too. The second restore must keep every acknowledged run 2 mutation:
// replay has to walk past run 1's torn tail into run 2's segment.
func TestDoubleCrashKeepsPostRestartMutations(t *testing.T) {
	const n = 16
	r := rng.New(77)
	var ops1, ops2 []refOp
	mutate := func(st *Store, ops *[]refOp) {
		switch r.Intn(10) {
		case 0:
			b, k := r.Intn(n), 1+r.Intn(4)
			st.Crash(b, k)
			*ops = append(*ops, refOp{wal.OpCrash, b, k})
		case 1, 2, 3:
			b := r.Intn(n)
			if _, err := st.FreeBin(b); err == nil {
				*ops = append(*ops, refOp{wal.OpFree, b, 1})
			}
		default:
			b := r.Intn(n)
			st.Alloc(b)
			*ops = append(*ops, refOp{wal.OpAlloc, b, 1})
		}
	}
	tearLastSegment := func(fs *simfs.FS, dir string) {
		segs, err := fs.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no segments to tear: %v", err)
		}
		last := segs[len(segs)-1]
		size := fs.Size(last)
		if size <= 16+wal.RecordSize {
			t.Fatalf("last segment too small to tear: %d bytes", size)
		}
		if err := fs.Truncate(last, size-wal.RecordSize/2); err != nil {
			t.Fatal(err)
		}
	}

	// Run 1: traffic, a mid-run checkpoint, more traffic, kill -9.
	st, j, fs, dir := newJournaled(t, n, 4, wal.Options{SegmentBytes: 1 << 20})
	for len(ops1) < 30 {
		mutate(st, &ops1)
	}
	if _, _, err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for len(ops1) < 60 {
		mutate(st, &ops1)
	}
	waitForSeq(t, j, uint64(len(ops1)))
	tearLastSegment(fs, dir) // run 1's last acknowledged record is lost

	// Run 2: restore, boot checkpoint (as cmd/dynallocd does), traffic.
	surviving1 := ops1[:len(ops1)-1]
	st2 := NewStoreShards(n, 4)
	res, err := RestoreFS(st2, fs, dir)
	if err != nil || !res.Restored || !res.Torn {
		t.Fatalf("first restore: %+v, %v", res, err)
	}
	assertStoreMatchesRef(t, st2, n, surviving1, "first restore")
	l2, err := wal.Open(wal.Options{Dir: dir, FS: fs, Fsync: wal.FsyncNever, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	j2 := NewJournal(st2, l2, res.LastSeq, JournalOptions{Buffer: 64})
	if _, _, err := j2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for len(ops2) < 40 {
		mutate(st2, &ops2)
	}
	waitForSeq(t, j2, res.LastSeq+uint64(len(ops2)))
	// Run 1's torn segment must still be there (boot truncation reaches
	// only the oldest retained checkpoint) — the hazard under test.
	if segs, _ := fs.Glob(filepath.Join(dir, "wal-*.seg")); len(segs) < 2 {
		t.Fatalf("expected run 1's torn segment to survive the boot checkpoint, have %d segments", len(segs))
	}
	tearLastSegment(fs, dir) // run 2 dies mid-record too

	// Second restore: every acknowledged mutation of BOTH runs except
	// the two torn-off records must be present.
	want := append(append([]refOp{}, surviving1...), ops2[:len(ops2)-1]...)
	st3 := NewStoreShards(n, 4)
	res3, err := RestoreFS(st3, fs, dir)
	if err != nil || !res3.Restored || !res3.Torn {
		t.Fatalf("second restore: %+v, %v", res3, err)
	}
	if res3.SkippedFrees != 0 {
		t.Fatalf("second restore skipped %d frees on an honest log", res3.SkippedFrees)
	}
	assertStoreMatchesRef(t, st3, n, want, "double crash")
}

// TestCheckpointMaintenanceFailureIsNonFatal: once the snapshot file
// is durably written, a failure to prune/truncate (here: an injected
// Remove failure on the first covered segment) must not surface as a
// Checkpoint error — it is reported via MaintErr and retried by the
// next checkpoint.
func TestCheckpointMaintenanceFailureIsNonFatal(t *testing.T) {
	st, j, fs, dir := newJournaled(t, 8, 2, wal.Options{SegmentBytes: 16 + 4*wal.RecordSize})
	for i := 0; i < 12; i++ {
		st.Alloc(i % 8)
	}
	waitForSeq(t, j, 12)
	fs.FailOp(simfs.OpRemove, 1, errors.New("injected remove failure"))
	snap, path, err := j.Checkpoint()
	if err != nil {
		t.Fatalf("maintenance failure escalated into a checkpoint error: %v", err)
	}
	if path == "" || snap.Seq != 12 {
		t.Fatalf("checkpoint result degraded: seq %d path %q", snap.Seq, path)
	}
	if j.MaintErr() == nil {
		t.Fatal("maintenance failure not recorded in MaintErr")
	}
	// The snapshot really is on disk and restorable despite the error.
	fresh := NewStoreShards(8, 2)
	if res, err := RestoreFS(fresh, fs, dir); err != nil || !res.Restored {
		t.Fatalf("restore after degraded checkpoint: %+v, %v", res, err)
	}
	// The fault has disarmed: the next checkpoint's maintenance succeeds.
	if _, _, err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := j.MaintErr(); err != nil {
		t.Fatalf("MaintErr not cleared after clean checkpoint: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// gateFS wraps a vfs.FS so every write to files it creates blocks
// until the gate channel is closed — a hung (not erroring) disk.
type gateFS struct {
	vfs.FS
	gate chan struct{}
}

func (g gateFS) Create(name string) (vfs.File, error) {
	f, err := g.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, gate: g.gate}, nil
}

type gateFile struct {
	vfs.File
	gate chan struct{}
}

func (g *gateFile) Write(p []byte) (int, error) { <-g.gate; return g.File.Write(p) }

// TestStallTimeoutKeepsMutationsAvailable: with StallTimeout set, a
// WAL writer wedged inside a hung write must not block mutations
// indefinitely — pushes that cannot enqueue drop their record, note
// the error, and the store stays available (degraded durability).
func TestStallTimeoutKeepsMutationsAvailable(t *testing.T) {
	fs := simfs.New()
	gate := make(chan struct{})
	l, err := wal.Open(wal.Options{
		Dir: "/wal", Fsync: wal.FsyncAlways,
		FS: gateFS{FS: fs, gate: gate},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStoreShards(8, 2)
	// MaxBatch 1 pins the per-record writer: with greedy batching the
	// writer's fill could absorb every push into the wedged batch and
	// no push would ever see a full queue.
	j := NewJournal(st, l, 0, JournalOptions{Buffer: 1, StallTimeout: 20 * time.Millisecond, MaxBatch: 1})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			st.Alloc(i % 8)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("mutations blocked on a hung WAL writer despite StallTimeout")
	}
	if j.Err() == nil {
		t.Fatal("stalled drops not noted in Err")
	}
	if st.Total() != 4 {
		t.Fatalf("store lost mutations: %d balls, want 4", st.Total())
	}
	close(gate) // the disk un-wedges; Close must surface the degradation
	if err := j.Close(); err == nil {
		t.Fatal("Close did not surface the recorded stall error")
	}
}

// TestJournalGroupCommit: with a SyncWriter journal (deterministic
// batch boundaries) under FsyncAlways, a burst of mutations shares
// fsyncs — ceil(burst/MaxBatch) of them, not one per record.
func TestJournalGroupCommit(t *testing.T) {
	fs := simfs.New()
	l, err := wal.Open(wal.Options{Dir: "/wal", FS: fs, Fsync: wal.FsyncAlways, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStoreShards(8, 2)
	j := NewJournal(st, l, 0, JournalOptions{Buffer: 256, MaxBatch: 16, SyncWriter: true})
	for i := 0; i < 64; i++ {
		st.Alloc(i % 8)
	}
	j.Drain()
	if got := fs.Ops(simfs.OpSync); got != 4 {
		t.Fatalf("64 mutations at MaxBatch=16 issued %d fsyncs, want 4", got)
	}
	if j.LastSeq() != 64 || j.Err() != nil {
		t.Fatalf("seq %d err %v after drain", j.LastSeq(), j.Err())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := NewStoreShards(8, 2)
	res, err := RestoreFS(fresh, fs, "/wal")
	if err != nil || res.LastSeq != 64 {
		t.Fatalf("restore: %+v, %v", res, err)
	}
	assertStoreMatchesRef(t, fresh, 8, allocRef(64, 8), "group commit")
}

// TestJournalBatchErrorAccounting: when a batch append fails, the
// first error is retained in Err and EVERY record of the batch counts
// toward wal.append.errors — none of them may be presumed durable.
func TestJournalBatchErrorAccounting(t *testing.T) {
	metrics.Reset()
	metrics.Enable()
	defer func() {
		metrics.Disable()
		metrics.Reset()
	}()

	fs := simfs.New()
	boom := errors.New("injected write failure")
	l, err := wal.Open(wal.Options{Dir: "/wal", FS: fs, Fsync: wal.FsyncAlways, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStoreShards(8, 2)
	j := NewJournal(st, l, 0, JournalOptions{Buffer: 64, MaxBatch: 8, SyncWriter: true})
	fs.FailOp(simfs.OpWrite, 1, boom)
	for i := 0; i < 8; i++ {
		st.Alloc(i % 8)
	}
	j.Drain()
	if err := j.Err(); err == nil || !errors.Is(err, boom) {
		t.Fatalf("first batch error not retained: %v", err)
	}
	snap := metrics.Default().Snapshot()
	if got := snap.Counters["wal.append.errors"]; got != 8 {
		t.Fatalf("wal.append.errors = %d, want the whole batch (8)", got)
	}
	// Availability is intact: the store took every mutation.
	if st.Total() != 8 {
		t.Fatalf("store lost mutations: %d balls", st.Total())
	}
	j.Close() // surfaces the retained error; expected
}

// TestDrainWaitsWithoutSpinning: Drain must block (on the writer's
// condition variable, not a Gosched spin) across a slow WAL write and
// return promptly once the writer settles.
func TestDrainWaitsWithoutSpinning(t *testing.T) {
	fs := simfs.New()
	gate := make(chan struct{})
	l, err := wal.Open(wal.Options{
		Dir: "/wal", Fsync: wal.FsyncAlways,
		FS: gateFS{FS: fs, gate: gate},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStoreShards(8, 2)
	j := NewJournal(st, l, 0, JournalOptions{Buffer: 64})
	st.Alloc(1)
	st.Alloc(2)

	done := make(chan struct{})
	go func() {
		j.Drain()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Drain returned while the writer was wedged inside the WAL write")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate) // the disk un-wedges; the writer settles and wakes Drain
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never woke after the writer settled")
	}
	if j.LastSeq() != 2 || j.Err() != nil {
		t.Fatalf("seq %d err %v after drain", j.LastSeq(), j.Err())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalCloseIdempotentAndDetaches(t *testing.T) {
	st, j, _, _ := newJournaled(t, 8, 2, wal.Options{})
	st.Alloc(1)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The hook is detached: further mutations don't panic or block.
	st.Alloc(2)
	if st.Total() != 2 {
		t.Fatalf("store unusable after journal close: %+v", st.Stats())
	}
}
