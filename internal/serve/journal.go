package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynalloc/internal/checkpoint"
	"dynalloc/internal/metrics"
	"dynalloc/internal/wal"
)

// JournalOptions tunes the durability bridge.
type JournalOptions struct {
	// Buffer is the bounded record queue between the store's mutation
	// hooks and the WAL writer goroutine (default 4096). When the queue
	// is full, mutations block until the writer drains — bounded memory
	// with backpressure, never silent loss. Note the stall mode this
	// implies: the queue only stays full while the writer is stuck
	// inside a WAL write/fsync that neither returns nor errors (a hung
	// disk, not a failing one), and a blocked push holds its shard's
	// lock — so a wedged disk stalls every mutation on that shard and
	// any Checkpoint waiting to lock all shards. The "WAL errors
	// degrade durability, never availability" guarantee covers errors;
	// for stalls, set StallTimeout.
	Buffer int

	// StallTimeout, when positive, bounds how long a mutation waits on
	// a full queue: a push that cannot enqueue within it drops the
	// record, notes the error (Err) and counts it in
	// serve.journal.stalled — durability degrades to keep the service
	// available through a hung disk. 0 (the default) keeps the pure
	// backpressure behavior described under Buffer.
	StallTimeout time.Duration

	// KeepCheckpoints is how many checkpoint files Checkpoint retains
	// (default 2). The WAL is truncated only up to the *oldest* retained
	// checkpoint's seq, so a corrupted newest checkpoint can still fall
	// back to the previous one plus a longer replay.
	KeepCheckpoints int

	// SyncEvery, when positive, runs a background ticker that calls
	// Log.Sync — useful with wal.FsyncInterval so an idle service still
	// bounds its loss window (the log itself only syncs on appends).
	SyncEvery time.Duration

	// MaxBatch caps how many queued records the writer hands to one
	// wal.Log.AppendBatch call (default 512). The writer drains the
	// queue greedily: it blocks for the first record, then takes
	// whatever else is already queued up to this cap — group commit, so
	// under wal.FsyncAlways a burst of mutations shares one fsync
	// instead of paying one each. 1 restores per-record appends.
	MaxBatch int

	// SyncWriter disables the background writer goroutine: records
	// queue up until Drain (or Close), which appends them in the
	// calling goroutine in MaxBatch chunks. This makes batch boundaries
	// a deterministic function of the push/Drain sequence — what the
	// crash-schedule explorer (internal/simfs/explore) needs to replay
	// batched schedules bit-identically from a seed. Single-threaded
	// drivers only, and Buffer must cover every push between two
	// Drains (a full queue would block with nobody draining).
	SyncWriter bool
}

func (o *JournalOptions) fill() {
	if o.Buffer <= 0 {
		o.Buffer = 4096
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = 2
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 512
	}
}

// Journal makes a Store durable: it installs itself as the store's
// mutation hook, assigns every mutation a WAL sequence number under
// the shard lock (so checkpoint cuts are exact), and hands the record
// to a single writer goroutine through a bounded channel — the append
// happens off the allocation hot path. The writer group-commits: it
// drains the channel greedily into batches of up to MaxBatch records
// and appends each batch with one wal.Log.AppendBatch call, so a
// burst of mutations shares one mutex acquisition, one buffered
// write, and (under wal.FsyncAlways) one fsync.
//
// Checkpoint walks the lock stripes one at a time — no stop-the-world
// cut — capturing each stripe's loads, counters, and a per-stripe seq
// watermark under that stripe's lock alone; the cut is exact because
// seq assignment happens under the same locks (see Checkpoint for the
// argument). WAL segments fully covered by the oldest retained
// checkpoint are deleted afterwards.
//
// A WAL append error does not stop the service: the first error is
// retained (Err), subsequent records are still drained (and counted
// dropped once the log is closed), and the wal.append.errors counter
// tracks the loss — durability degrades, availability does not.
type Journal struct {
	st   *Store
	log  *wal.Log
	opts JournalOptions

	seq     atomic.Uint64
	pending atomic.Int64 // records enqueued but not yet handed to the WAL

	// drainMu/drainCond let Drain sleep until pending reaches zero
	// instead of burning a core — the writer can sit inside a slow
	// fsync for milliseconds.
	drainMu   sync.Mutex
	drainCond *sync.Cond

	batchPool sync.Pool // *[]wal.Record, cap MaxBatch, recycled per batch

	closeMu sync.RWMutex // held (read) across every push; (write) by Close
	closed  bool
	ch      chan wal.Record
	wg      sync.WaitGroup
	stop    chan struct{} // stops the SyncEvery ticker

	errMu    sync.Mutex
	firstErr error

	ckptMu   sync.Mutex // serializes Checkpoint calls
	maintMu  sync.Mutex
	maintErr error // maintenance failure of the most recent checkpoint
}

// NewJournal wires st to log and starts the writer goroutine. lastSeq
// is the sequence number already covered by the restored state (0 for
// a fresh store); new records continue at lastSeq+1. The journal
// installs itself as the store's hook — call before traffic starts.
func NewJournal(st *Store, log *wal.Log, lastSeq uint64, opts JournalOptions) *Journal {
	opts.fill()
	j := &Journal{
		st:   st,
		log:  log,
		opts: opts,
		ch:   make(chan wal.Record, opts.Buffer),
		stop: make(chan struct{}),
	}
	j.seq.Store(lastSeq)
	j.drainCond = sync.NewCond(&j.drainMu)
	j.batchPool.New = func() any {
		b := make([]wal.Record, 0, j.opts.MaxBatch)
		return &b
	}
	if !opts.SyncWriter {
		j.wg.Add(1)
		go j.writer()
	}
	if opts.SyncEvery > 0 {
		j.wg.Add(1)
		go j.syncLoop()
	}
	st.SetHook(j)
	return j
}

// writer drains the record queue into the WAL in batches: block for
// one record, then greedily take whatever else is already queued (up
// to MaxBatch) and hand the whole slice to AppendBatch — so one fsync
// covers the burst (group commit) and the mutex/flush overhead is paid
// once per batch instead of once per record.
func (j *Journal) writer() {
	defer j.wg.Done()
	for rec := range j.ch {
		bp := j.batchPool.Get().(*[]wal.Record)
		batch := j.fill(append((*bp)[:0], rec))
		j.appendBatch(batch)
		*bp = batch[:0]
		j.batchPool.Put(bp)
	}
}

// fill takes queued records without blocking until batch reaches
// MaxBatch or the queue is momentarily empty (or closed).
func (j *Journal) fill(batch []wal.Record) []wal.Record {
	for len(batch) < j.opts.MaxBatch {
		select {
		case rec, ok := <-j.ch:
			if !ok {
				return batch
			}
			batch = append(batch, rec)
		default:
			return batch
		}
	}
	return batch
}

// appendBatch hands one batch to the WAL and settles its accounting.
// An error fails the whole batch: the first one is retained for Err
// and every record of the batch is counted in wal.append.errors —
// none of them may be considered durable (a torn prefix can still be
// on disk; replay recovers it like any torn tail). pending is
// decremented by the batch size afterwards, so Drain's contract — every
// record enqueued before the call has been handed to the WAL — is
// unchanged by batching.
func (j *Journal) appendBatch(batch []wal.Record) {
	if err := j.log.AppendBatch(batch); err != nil {
		j.noteErr(err)
		metrics.AddCounter("wal.append.errors", int64(len(batch)))
	}
	j.decPending(int64(len(batch)))
}

// decPending subtracts settled records from pending and wakes Drain
// waiters when the queue fully settles.
func (j *Journal) decPending(n int64) {
	if j.pending.Add(-n) == 0 {
		j.drainMu.Lock()
		j.drainCond.Broadcast()
		j.drainMu.Unlock()
	}
}

// flushQueued appends everything currently queued, in MaxBatch chunks,
// in the calling goroutine — the SyncWriter drain path (also used by
// Close to settle the tail once the channel is closed).
func (j *Journal) flushQueued() {
	for {
		select {
		case rec, ok := <-j.ch:
			if !ok {
				return
			}
			bp := j.batchPool.Get().(*[]wal.Record)
			batch := j.fill(append((*bp)[:0], rec))
			j.appendBatch(batch)
			*bp = batch[:0]
			j.batchPool.Put(bp)
		default:
			return
		}
	}
}

// syncLoop bounds the fsync-interval loss window while idle.
func (j *Journal) syncLoop() {
	defer j.wg.Done()
	t := time.NewTicker(j.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			if err := j.log.Sync(); err != nil {
				j.noteErr(err)
			}
		}
	}
}

func (j *Journal) noteErr(err error) {
	j.errMu.Lock()
	if j.firstErr == nil {
		j.firstErr = err
	}
	j.errMu.Unlock()
}

// Err returns the first WAL write error, if any.
func (j *Journal) Err() error {
	j.errMu.Lock()
	defer j.errMu.Unlock()
	return j.firstErr
}

// LastSeq returns the seq of the most recently enqueued record.
func (j *Journal) LastSeq() uint64 { return j.seq.Load() }

// push assigns the next seq and enqueues one record. It runs under the
// mutating shard's lock (see StoreHook), so seq order equals mutation
// order per bin, and a Checkpoint holding every shard lock observes a
// stable seq. With no StallTimeout a full queue blocks here —
// holding that shard lock — until the writer drains (see
// JournalOptions.Buffer for what that stall mode means).
func (j *Journal) push(op wal.Op, bin, k int) {
	j.closeMu.RLock()
	defer j.closeMu.RUnlock()
	if j.closed {
		metrics.AddCounter("serve.journal.dropped", 1)
		return
	}
	rec := wal.Record{Op: op, Bin: uint32(bin), K: int32(k), Seq: j.seq.Add(1)}
	j.pending.Add(1)
	j.enqueue(rec)
}

// OnAllocRun implements BatchStoreHook: the batched admission lane's
// push. It reserves one contiguous seq range for the whole run and
// enqueues the records in order — still under the shard lock that
// applied them (see Store.AdmitBatch), so seq order equals mutation
// order per bin and a Checkpoint holding every shard lock still
// observes a stable seq. The per-push close guard and pending
// accounting are paid once per run instead of once per ball, and the
// writer's greedy group commit typically lands a whole run in one
// wal.AppendBatch call.
func (j *Journal) OnAllocRun(bins []int) {
	n := len(bins)
	if n == 0 {
		return
	}
	j.closeMu.RLock()
	defer j.closeMu.RUnlock()
	if j.closed {
		metrics.AddCounter("serve.journal.dropped", int64(n))
		return
	}
	base := j.seq.Add(uint64(n)) - uint64(n)
	j.pending.Add(int64(n))
	for i, bin := range bins {
		j.enqueue(wal.Record{Op: wal.OpAlloc, Bin: uint32(bin), K: 1, Seq: base + uint64(i) + 1})
	}
}

// enqueue hands one record — already counted in pending, seq already
// assigned — to the writer queue, honoring StallTimeout. The caller
// holds closeMu.RLock, so the channel cannot be closed under us.
func (j *Journal) enqueue(rec wal.Record) {
	if j.opts.StallTimeout <= 0 {
		j.ch <- rec
		return
	}
	select {
	case j.ch <- rec:
		return
	default:
	}
	t := getStallTimer(j.opts.StallTimeout)
	select {
	case j.ch <- rec:
	case <-t.C:
		j.decPending(1)
		j.noteErr(fmt.Errorf("serve: journal stalled for %v; record seq %d dropped", j.opts.StallTimeout, rec.Seq))
		metrics.AddCounter("serve.journal.stalled", 1)
	}
	putStallTimer(t)
}

// stallTimers pools the StallTimeout timers: a wedged disk stalls
// every mutation on a shard, and allocating a fresh runtime timer per
// stalled push just adds churn to an already-bad moment.
var stallTimers sync.Pool

func getStallTimer(d time.Duration) *time.Timer {
	if v := stallTimers.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putStallTimer stops t and clears any tick left in its channel (the
// pooled timer must come back quiescent whether it fired or not).
func putStallTimer(t *time.Timer) {
	t.Stop()
	select {
	case <-t.C:
	default:
	}
	stallTimers.Put(t)
}

// Drain blocks until every record enqueued before the call has been
// handed to the WAL (appended, or its failure recorded in Err). With
// traffic quiesced this makes the writer goroutine's work observable:
// after Drain, LastSeq's record has reached the log — which is what
// the deterministic crash-schedule simulations need between steps, and
// what a graceful flush wants before a checkpoint. Waiters sleep on a
// condition variable signalled by the writer; they don't spin while
// the writer sits inside a slow fsync.
//
// Under SyncWriter there is no writer goroutine: Drain itself appends
// everything queued, in MaxBatch chunks, in the calling goroutine.
func (j *Journal) Drain() {
	if j.opts.SyncWriter {
		j.flushQueued()
		return
	}
	j.drainMu.Lock()
	for j.pending.Load() != 0 {
		j.drainCond.Wait()
	}
	j.drainMu.Unlock()
}

// OnAlloc implements StoreHook.
func (j *Journal) OnAlloc(bin int) { j.push(wal.OpAlloc, bin, 1) }

// OnFree implements StoreHook.
func (j *Journal) OnFree(bin int) { j.push(wal.OpFree, bin, 1) }

// OnCrash implements StoreHook.
func (j *Journal) OnCrash(bin, k int) { j.push(wal.OpCrash, bin, k) }

// Checkpoint captures a striped snapshot — no stop-the-world cut —
// persists it, prunes old checkpoints and truncates WAL segments the
// oldest retained checkpoint covers. It returns the snapshot and the
// file it was written to. Only a failure to persist the snapshot is an
// error: once the snapshot file is durable, pruning and truncation are
// maintenance, and their failure (say, one unremovable old file) is
// recorded in MaintErr and retried by the next checkpoint instead of
// being returned — a successful checkpoint must never look fatal.
//
// The striped cut walks the store's lock stripes one at a time: each
// stripe's loads and counters are copied under that stripe's lock
// alone, so admissions on other stripes never stall for longer than
// one stripe copy. The per-stripe seq fence is j.seq read UNDER the
// stripe lock: every record targeting the stripe with a seq at or
// below that read is already applied (seq assignment — including the
// batch hook's range reservation — happens under the stripe lock,
// after the mutation), and any later record draws a strictly higher
// seq. Each stripe therefore becomes a checkpoint Section with an
// exact watermark; Snapshot.Seq is the minimum watermark, preserving
// the v1 truncation contract, and restore filters replayed records per
// section (see RestoreFS).
func (j *Journal) Checkpoint() (checkpoint.Snapshot, string, error) {
	j.ckptMu.Lock()
	defer j.ckptMu.Unlock()

	st := j.st
	loads := make([]int32, st.n)
	sections := make([]checkpoint.Section, 0, len(st.shards))
	var allocs, frees int64
	minWm := ^uint64(0)
	var copyNs, maxHoldNs int64
	for i := range st.shards {
		sh := &st.shards[i]
		if sh.lo == sh.hi {
			continue // empty trailing stripe (shards > bins geometry)
		}
		t0 := time.Now()
		sh.mu.Lock()
		for b := sh.lo; b < sh.hi; b++ {
			loads[b] = st.loads[b].Load()
		}
		wm := j.seq.Load()
		a, f := sh.allocs.Load(), sh.frees.Load()
		sh.mu.Unlock()
		hold := time.Since(t0).Nanoseconds()
		copyNs += hold
		if hold > maxHoldNs {
			maxHoldNs = hold
		}
		sections = append(sections, checkpoint.Section{Lo: sh.lo, Hi: sh.hi, Watermark: wm})
		allocs += a
		frees += f
		if wm < minWm {
			minWm = wm
		}
	}
	if minWm == ^uint64(0) {
		minWm = j.seq.Load()
	}
	metrics.AddCounter("checkpoint.stripe.copies", int64(len(sections)))
	metrics.ObserveTimer("checkpoint.stripe.copy_ns", time.Duration(copyNs))
	metrics.SetGauge("checkpoint.stripe.max_hold_ns", float64(maxHoldNs))

	snap := checkpoint.Snapshot{
		Seq:      minWm,
		Allocs:   allocs,
		Frees:    frees,
		Loads:    loads,
		Sections: sections,
	}

	path, err := checkpoint.WriteFS(j.log.FS(), j.log.Dir(), snap)
	if err != nil {
		return snap, "", err
	}
	j.maintain()
	return snap, path, nil
}

// maintain prunes old checkpoints and truncates fully-covered WAL
// segments after a successful snapshot write. A failure is recorded
// (MaintErr, checkpoint.maintenance.errors) rather than returned:
// durability is already intact and the next checkpoint retries.
func (j *Journal) maintain() {
	err := func() error {
		if _, err := checkpoint.PruneFS(j.log.FS(), j.log.Dir(), j.opts.KeepCheckpoints); err != nil {
			return err
		}
		metas, err := checkpoint.ListFS(j.log.FS(), j.log.Dir())
		if err != nil {
			return err
		}
		if len(metas) > 0 {
			if _, err := j.log.TruncateThrough(metas[0].Seq); err != nil {
				return err
			}
		}
		return nil
	}()
	j.maintMu.Lock()
	j.maintErr = err
	j.maintMu.Unlock()
	if err != nil {
		metrics.AddCounter("checkpoint.maintenance.errors", 1)
	}
}

// MaintErr returns the maintenance (prune/truncate) failure of the
// most recent Checkpoint, nil when it fully succeeded.
func (j *Journal) MaintErr() error {
	j.maintMu.Lock()
	defer j.maintMu.Unlock()
	return j.maintErr
}

// Close detaches the journal from the store, flushes the queue, and
// closes the WAL (fsyncing the tail unless the policy is never).
// Callers quiesce traffic first; mutations racing Close are counted
// in serve.journal.dropped rather than lost silently.
func (j *Journal) Close() error {
	j.closeMu.Lock()
	if j.closed {
		j.closeMu.Unlock()
		return nil
	}
	j.closed = true
	close(j.ch)
	j.closeMu.Unlock()
	close(j.stop)
	j.wg.Wait()
	if j.opts.SyncWriter {
		// No writer goroutine: settle the queued tail here.
		j.flushQueued()
	}
	j.st.SetHook(nil)
	if err := j.log.Close(); err != nil {
		return err
	}
	return j.Err()
}
