package serve

import (
	"context"
	"testing"
	"time"

	"dynalloc/internal/process"
)

func TestEngineClosedLoopConservesBalls(t *testing.T) {
	const n, m, steps = 128, 128, 5000
	for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
		st := NewStoreShards(n, 8)
		st.FillBalanced(m)
		eng := NewEngine(Config{
			Store: st, Policy: NewABKUPolicy(2), Scenario: sc,
			Workers: 1, Seed: 11, MaxSteps: steps,
		})
		res := eng.Run(context.Background())
		if res.Steps != steps {
			t.Fatalf("scenario %v: ran %d steps, want %d", sc, res.Steps, steps)
		}
		if st.Total() != m {
			t.Fatalf("scenario %v: closed loop changed the ball count to %d", sc, st.Total())
		}
		if st.Allocs() != steps || st.Frees() != steps {
			t.Fatalf("scenario %v: clocks allocs=%d frees=%d, want %d each", sc, st.Allocs(), st.Frees(), steps)
		}
	}
}

func TestEngineSingleWorkerDeterminism(t *testing.T) {
	run := func() []int {
		st := NewStoreShards(64, 8)
		st.FillBalanced(96)
		eng := NewEngine(Config{
			Store: st, Policy: NewABKUPolicy(2), Scenario: process.ScenarioA,
			Workers: 1, Seed: 1998, MaxSteps: 3000,
		})
		eng.Run(context.Background())
		return st.LoadsCopy()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bin %d diverged between identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEngineMultiWorker(t *testing.T) {
	const n, m, steps = 256, 512, 20000
	st := NewStoreShards(n, 16)
	st.FillBalanced(m)
	eng := NewEngine(Config{
		Store: st, Policy: NewABKUPolicy(2), Scenario: process.ScenarioA,
		Workers: 8, Seed: 3, MaxSteps: steps,
	})
	res := eng.Run(context.Background())
	// Workers race the MaxSteps check, so a handful of phases past the
	// budget are possible — but never more than one extra per worker.
	if res.Steps < steps || res.Steps > steps+8 {
		t.Fatalf("ran %d steps, want ~%d", res.Steps, steps)
	}
	if st.Total() != m {
		t.Fatalf("ball count drifted to %d, want %d", st.Total(), m)
	}
}

func TestEngineEmptyStoreHalts(t *testing.T) {
	st := NewStoreShards(16, 4) // no balls at all
	eng := NewEngine(Config{
		Store: st, Policy: NewABKUPolicy(2), Scenario: process.ScenarioA,
		Workers: 2, Seed: 1, MaxSteps: 100,
	})
	done := make(chan Result, 1)
	go func() { done <- eng.Run(context.Background()) }()
	select {
	case res := <-done:
		if res.Steps != 0 {
			t.Fatalf("empty store executed %d phases", res.Steps)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine did not halt on an empty store")
	}
}

func TestEngineContextCancel(t *testing.T) {
	st := NewStoreShards(64, 8)
	st.FillBalanced(64)
	ctx, cancel := context.WithCancel(context.Background())
	eng := NewEngine(Config{
		Store: st, Policy: NewABKUPolicy(2), Scenario: process.ScenarioA,
		Workers: 2, Seed: 9, // no MaxSteps: only ctx stops it
	})
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan Result, 1)
	go func() { done <- eng.Run(ctx) }()
	select {
	case res := <-done:
		if res.Steps == 0 {
			t.Fatal("no phases before cancel")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine ignored context cancellation")
	}
}

func TestEngineOpenLoopPacing(t *testing.T) {
	st := NewStoreShards(32, 4)
	st.FillBalanced(32)
	eng := NewEngine(Config{
		Store: st, Policy: NewABKUPolicy(2), Scenario: process.ScenarioA,
		Workers: 2, Seed: 4, Rate: 50000, MaxSteps: 200,
	})
	res := eng.Run(context.Background())
	if res.Steps < 200 || res.Steps > 202 {
		t.Fatalf("paced run executed %d phases, want ~200", res.Steps)
	}
}

// TestEngineCrashRecovery is the in-package form of the crash/recover
// drill: seed a balanced store, crash one bin, and drive Scenario A
// with ABKU[2] until the detector observes the typical state. The
// paper's Theorem 1 promises recovery within O(m ln m) phases; the
// budget below is that scale with a generous constant.
func TestEngineCrashRecovery(t *testing.T) {
	const (
		n     = 64
		m0    = 64
		crash = 128
	)
	st := NewStoreShards(n, 8)
	st.FillBalanced(m0)
	st.Crash(0, crash)
	m := m0 + crash

	pol := NewABKUPolicy(2)
	target, err := NewTarget(pol, process.ScenarioA, n, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(st, target)
	det.MarkDisrupted()

	budget := int64(40 * target.BudgetSteps) // 40 · m·ln(4m)
	eng := NewEngine(Config{
		Store: st, Policy: pol, Scenario: process.ScenarioA,
		Workers: 1, Seed: 2024, MaxSteps: budget,
		Detector: det, CheckEvery: 32, StopOnRecovery: true,
	})
	res := eng.Run(context.Background())
	if !res.Recovered {
		t.Fatalf("no recovery within %d phases (budget 40·m·ln(4m)); last: %+v", budget, mustLast(det))
	}
	if res.Episode.Steps <= 0 || res.Episode.Steps > budget {
		t.Fatalf("episode steps %d outside (0, %d]", res.Episode.Steps, budget)
	}
	if st.Total() != int64(m) {
		t.Fatalf("ball count drifted to %d, want %d", st.Total(), m)
	}
}

func mustLast(d *Detector) Status {
	s, _ := d.Last()
	return s
}
