package serve

import (
	"fmt"
	"testing"

	"dynalloc/internal/metrics"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/simfs"
	"dynalloc/internal/wal"
)

// The allocation-budget tier: testing.AllocsPerRun gates on the
// batched admission pipeline. The engine (non-durable) lane must run
// at literally zero heap allocations per pass in steady state — the
// claim ROADMAP item 1 closes and BENCH_baseline.json pins for the
// serve/admit-batch workload — and the durable lane gets an explicit
// ceiling instead of a vibe. These tests run on a dedicated CI leg
// (`go test ./internal/serve -run AllocBudget -count=1`, no -race:
// race instrumentation allocates) and skip themselves under -race so
// the ordinary race legs stay green.

// budgetPolicies is the shipped policy set the budgets hold for.
func budgetPolicies() []Policy {
	return []Policy{
		NewABKUPolicy(1), // uniform
		NewABKUPolicy(2),
		NewADAPPolicy(rules.SliceThresholds{1, 2, 2, 3}),
		NewMixedPolicy(0.5),
	}
}

// warmBatcher builds a loaded store + batcher and runs enough passes
// to grow every piece of reusable scratch to steady state.
func warmBatcher(pol Policy, sc process.Scenario, batch int) (*Batcher, *rng.RNG) {
	st := NewStoreShards(1<<12, 64)
	st.FillBalanced(1 << 12)
	bt := NewBatcher(st, pol, sc, batch)
	r := rng.New(0xA110C)
	for i := 0; i < 8; i++ {
		if _, err := bt.Pass(r, batch); err != nil {
			panic(err)
		}
	}
	return bt, r
}

func TestAllocBudgetAdmitBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under -race instrumentation")
	}
	for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
		for _, pol := range budgetPolicies() {
			t.Run(fmt.Sprintf("%v/%s", sc, pol.Name()), func(t *testing.T) {
				bt, r := warmBatcher(pol, sc, 64)
				avg := testing.AllocsPerRun(50, func() {
					if _, err := bt.Pass(r, 64); err != nil {
						panic(err)
					}
				})
				if avg != 0 {
					t.Errorf("batched admit pass: %v allocs/pass, want exactly 0", avg)
				}
			})
		}
	}
}

// The engine lane's zero must survive metrics collection being on —
// cmd/bench runs with metrics enabled, and the baseline's 0 allocs/op
// is measured there. The Batcher pre-resolves its counters for this.
func TestAllocBudgetAdmitBatchMetricsOn(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under -race instrumentation")
	}
	metrics.Enable()
	defer metrics.Disable()
	bt, r := warmBatcher(NewABKUPolicy(2), process.ScenarioA, 64)
	avg := testing.AllocsPerRun(50, func() {
		if _, err := bt.Pass(r, 64); err != nil {
			panic(err)
		}
	})
	if avg != 0 {
		t.Errorf("batched admit pass with metrics on: %v allocs/pass, want exactly 0", avg)
	}
}

// The durable lane cannot be literally zero — the WAL writes through a
// filesystem — but it gets a pinned ceiling so regressions surface as
// a failing number, not a slow drift. The journal runs in SyncWriter
// mode on simfs: deterministic, GC-stable, no disk. One run is a
// 64-phase pass plus a Drain that appends ~128 records (64 frees + 64
// allocs) in MaxBatch chunks; measured cost is ~1 alloc/run (segment
// buffer growth inside simfs, amortized), so the ceiling of 8 is
// generous headroom for GC timing — while still two orders of
// magnitude below a per-record allocation (128/run).
func TestAllocBudgetDurableAdmitBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under -race instrumentation")
	}
	fs := simfs.New()
	l, err := wal.Open(wal.Options{Dir: "/wal", FS: fs, Fsync: wal.FsyncNever, SegmentBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStoreShards(1<<12, 64)
	st.FillBalanced(1 << 12)
	j := NewJournal(st, l, 0, JournalOptions{Buffer: 1024, SyncWriter: true, MaxBatch: 512})
	defer j.Close()
	bt := NewBatcher(st, NewABKUPolicy(2), process.ScenarioA, 64)
	r := rng.New(0xD00D)
	for i := 0; i < 8; i++ {
		if _, err := bt.Pass(r, 64); err != nil {
			t.Fatal(err)
		}
		j.Drain()
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := bt.Pass(r, 64); err != nil {
			panic(err)
		}
		j.Drain()
	})
	const ceiling = 8.0
	if avg > ceiling {
		t.Errorf("durable batched admit pass: %v allocs/pass, ceiling %v", avg, ceiling)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
}
