package serve

import (
	"math"
	"testing"

	"dynalloc/internal/stats"
)

// Chi-square battery entry for the chaos injector's Poisson clock: the
// interarrival gaps must be Exp(rate). The test bins 20k draws into 20
// equiprobable exponential quantile bins, so the null gives every bin
// the same expectation and the GOF statistic is exact. Seeded like the
// sampler battery in sampling_stat_test.go: a failure is a sampler
// defect, never flake.
func TestChaosInterarrivalIsExponential(t *testing.T) {
	st, det, _ := chaosFixture(t)
	const (
		rate  = 2.0
		draws = 20000
		bins  = 20
	)
	inj, err := NewChaosInjector(ChaosConfig{
		Store: st, Detector: det, Seed: 0xCA7A5, Rate: rate, Faults: []string{ChaosCrash},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Quantile boundaries of Exp(rate): q_i = -ln(1 - i/bins) / rate.
	bounds := make([]float64, bins-1)
	for i := 1; i < bins; i++ {
		bounds[i-1] = -math.Log(1-float64(i)/bins) / rate
	}
	observed := make([]int, bins)
	var sum float64
	for d := 0; d < draws; d++ {
		gap := inj.interarrival().Seconds()
		if gap < 0 {
			t.Fatalf("draw %d: negative interarrival %g", d, gap)
		}
		sum += gap
		b := 0
		for b < bins-1 && gap >= bounds[b] {
			b++
		}
		observed[b]++
	}

	expected := make([]float64, bins)
	for i := range expected {
		expected[i] = 1
	}
	stat, df, p := stats.ChiSquareGOF(observed, expected)
	if p < statAlpha {
		t.Errorf("interarrivals not Exp(%g): chi2=%.2f df=%d p=%.2g\ncounts=%v", rate, stat, df, p, observed)
	}

	// Pin the rate explicitly too: mean gap must be 1/rate.
	mean := sum / draws
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("mean interarrival %gs, want ~%gs", mean, 1/rate)
	}

	// Power check, mirroring TestSamplersAreDistinguishable: a uniform
	// law on [0, 2/rate] has the same mean but must be rejected.
	uniform := make([]int, bins)
	r := inj.r
	for d := 0; d < draws; d++ {
		gap := r.Float64() * 2 / rate
		b := 0
		for b < bins-1 && gap >= bounds[b] {
			b++
		}
		uniform[b]++
	}
	if _, _, p := stats.ChiSquareGOF(uniform, expected); p > 1e-12 {
		t.Errorf("uniform gaps pass the exponential GOF (p=%.2g); the battery has no power", p)
	}
}
