package serve

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"dynalloc/internal/vfs"
)

func chaosFixture(t *testing.T) (*Store, *Detector, *EpisodeTracker) {
	t.Helper()
	st := NewStore(64)
	st.FillBalanced(256) // 4 per bin
	det := NewDetector(st, Target{PredictedMax: 4, Slack: 1, BudgetSteps: 1000})
	tr := NewEpisodeTracker(1000)
	det.AttachEpisodes(tr)
	det.Check() // close the startup episode; the store is balanced
	return st, det, tr
}

func TestChaosInjectorValidation(t *testing.T) {
	st, det, _ := chaosFixture(t)
	cases := []struct {
		name string
		cfg  ChaosConfig
	}{
		{"no store", ChaosConfig{Detector: det}},
		{"no detector", ChaosConfig{Store: st}},
		{"negative rate", ChaosConfig{Store: st, Detector: det, Rate: -1}},
		{"unknown fault", ChaosConfig{Store: st, Detector: det, Faults: []string{"meteor"}}},
		{"duplicate fault", ChaosConfig{Store: st, Detector: det, Faults: []string{ChaosCrash, ChaosCrash}}},
		{"stall without FaultFS", ChaosConfig{Store: st, Detector: det, Faults: []string{ChaosStall}}},
		{"enospc without FaultFS", ChaosConfig{Store: st, Detector: det, Faults: []string{ChaosNoSpace}}},
		{"powercut without cutter", ChaosConfig{Store: st, Detector: det, Faults: []string{ChaosPowerCut}}},
		{"bad crash frac", ChaosConfig{Store: st, Detector: det, CrashFrac: 1.5}},
	}
	for _, tc := range cases {
		if _, err := NewChaosInjector(tc.cfg); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}

	// The default menu grows with the seams provided.
	inj, err := NewChaosInjector(ChaosConfig{Store: st, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	if kinds := inj.Kinds(); len(kinds) != 1 || kinds[0] != ChaosCrash {
		t.Fatalf("bare injector menu = %v, want [crash]", kinds)
	}
	inj, err = NewChaosInjector(ChaosConfig{
		Store: st, Detector: det, FaultFS: vfs.NewFaultFS(vfs.OS),
	})
	if err != nil {
		t.Fatal(err)
	}
	if kinds := inj.Kinds(); len(kinds) != 3 {
		t.Fatalf("FaultFS injector menu = %v, want crash+enospc+stall", kinds)
	}
}

// TestChaosCrashPreservesMass: the crash catastrophe relocates balls,
// it does not mint them — the recovery target computed at boot stays
// valid across arbitrarily many catastrophes.
func TestChaosCrashPreservesMass(t *testing.T) {
	st, det, tr := chaosFixture(t)
	inj, err := NewChaosInjector(ChaosConfig{
		Store: st, Detector: det, Seed: 7, Faults: []string{ChaosCrash}, CrashFrac: 0.125,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := st.Total()
	for i := 0; i < 10; i++ {
		inj.fire()
	}
	if got := st.Total(); got != before {
		t.Fatalf("10 crash catastrophes changed the mass: %d -> %d", before, got)
	}
	if got := inj.Fired(); got != 10 {
		t.Fatalf("Fired = %d, want 10", got)
	}
	if det.Recovered() {
		t.Fatal("detector still recovered after catastrophes")
	}
	// All 10 landed before any recovery: one episode, nine merges.
	sum := tr.Summary()
	if !sum.Open || sum.OpenFaults != 10 || sum.MergedFaults != 9 {
		t.Fatalf("catastrophes not merged into the open episode: %+v", sum)
	}
	// The relocation is visible: some bin now carries far more than the
	// balanced 4.
	if s := det.Check(); s.MaxLoad < 8 {
		t.Fatalf("max load %d after 10 relocating crashes, expected a pile-up", s.MaxLoad)
	}
}

// TestChaosDiskFaultsArmAndRepair: enospc and stall arm the FaultFS,
// note the fault on the detector, and the exponential repair window
// clears them.
func TestChaosDiskFaultsArmAndRepair(t *testing.T) {
	st, det, tr := chaosFixture(t)
	ffs := vfs.NewFaultFS(vfs.OS)
	dir := t.TempDir()
	inj, err := NewChaosInjector(ChaosConfig{
		Store: st, Detector: det, Seed: 11,
		Faults:     []string{ChaosNoSpace},
		RepairMean: time.Millisecond,
		FaultFS:    ffs,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.fire()
	if _, err := ffs.Create(filepath.Join(dir, "x")); !errors.Is(err, vfs.ErrInjectedNoSpace) {
		t.Fatalf("create during enospc: %v, want ErrInjectedNoSpace", err)
	}
	if sum := tr.Summary(); !sum.Open || sum.OpenKind != ChaosNoSpace {
		t.Fatalf("enospc not noted as a fault: %+v", sum)
	}
	// The repair timer (mean 1ms) clears the fault well within a second.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := ffs.Create(filepath.Join(dir, "y")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("enospc never repaired")
		}
		time.Sleep(time.Millisecond)
	}
}

type fakeCutter struct{ k int }

func (f *fakeCutter) CrashAfterOps(k int) { f.k = k }

func TestChaosPowerCutSchedulesNearFuture(t *testing.T) {
	st, det, _ := chaosFixture(t)
	cut := &fakeCutter{}
	inj, err := NewChaosInjector(ChaosConfig{
		Store: st, Detector: det, Seed: 13,
		Faults: []string{ChaosPowerCut}, PowerCut: cut, PowerCutOps: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.fire()
	if cut.k < 1 || cut.k > 16 {
		t.Fatalf("power cut scheduled %d ops ahead, want 1..16", cut.k)
	}
	if det.Recovered() {
		t.Fatal("power cut did not mark the detector disrupted")
	}
}

// TestChaosInjectorRun drives the real Poisson loop briefly at a high
// rate and checks the lifecycle: catastrophes fire, the observer hook
// sees them, and cancellation clears any armed disk fault.
func TestChaosInjectorRun(t *testing.T) {
	st, det, _ := chaosFixture(t)
	ffs := vfs.NewFaultFS(vfs.OS)
	var seen int
	inj, err := NewChaosInjector(ChaosConfig{
		Store: st, Detector: det, Seed: 17,
		Rate:       500,       // mean gap 2ms: plenty of firings in the window
		RepairMean: time.Hour, // repairs never land: cancellation must clear
		FaultFS:    ffs,
		OnFault:    func(string) { seen++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	inj.Run(ctx) // blocks until the timeout
	if inj.Fired() == 0 || seen == 0 {
		t.Fatalf("no catastrophes in 200ms at rate 500/s (fired=%d seen=%d)", inj.Fired(), seen)
	}
	if int64(seen) != inj.Fired() {
		t.Fatalf("observer saw %d, injector fired %d", seen, inj.Fired())
	}
	// Whatever disk fault was armed when the context fell, Run's exit
	// path repaired it.
	dir := t.TempDir()
	if _, err := ffs.Create(filepath.Join(dir, "post")); err != nil {
		t.Fatalf("disk fault survived Run's shutdown: %v", err)
	}
}
