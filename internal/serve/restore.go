// Cold-start restore: load the newest valid checkpoint, replay the WAL
// suffix, fence the unreachable tail. This file is the parallel form of
// that pipeline — wal.ReplayPipelineFS partitions records by the
// store's lock stripes and a batch applier applies each stripe's
// records, in file order, on one worker — plus the sequential fallback
// (Workers <= 1) that drives the exact same applier through the classic
// wal.ReplayFS walk, which is what the equivalence suite pins the
// parallel path against.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"dynalloc/internal/checkpoint"
	"dynalloc/internal/metrics"
	"dynalloc/internal/vfs"
	"dynalloc/internal/wal"
)

// RestoreOptions tunes the restore pipeline.
type RestoreOptions struct {
	// Workers is the number of parallel apply workers for WAL replay.
	// 0 means DefaultRestoreWorkers(); 1 forces the classic sequential
	// replay (same applier, same final state — the parallel path is
	// bit-exact against it). The effective count is clamped to the
	// store's stripe count, since a stripe is the unit of partitioning.
	Workers int
}

// DefaultRestoreWorkers is the worker count Restore uses when the
// caller does not pin one: GOMAXPROCS clamped to [2, 8]. The floor of 2
// keeps the pipeline (read-ahead, decode, apply overlap) on even a
// single-core runner, where overlapping segment reads with CRC checks
// and applies still wins; the ceiling reflects that replay saturates on
// lock stripes and memory bandwidth well before high core counts.
func DefaultRestoreWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 2 {
		w = 2
	}
	return w
}

// RestoreResult reports what Restore rebuilt, and how long each restore
// phase took (the MTTR decomposition the drills print).
type RestoreResult struct {
	Restored       bool   // any durable state was found
	CheckpointSeq  uint64 // seq covered by the loaded checkpoint (0 if none)
	CheckpointPath string // file the checkpoint came from ("" if none)
	Replayed       int64  // WAL records applied on top of the checkpoint
	SkippedFrees   int64  // replayed frees that hit an already-empty bin
	Torn           bool   // replay stopped at a torn/corrupted record
	LastSeq        uint64 // seq the rebuilt state is consistent with
	StaleRemoved   int    // unreachable post-gap segments pruned (see wal.RemoveStaleFS)

	Workers      int   // apply workers the replay ran with
	CheckpointNs int64 // loading + installing the checkpoint
	ReplayNs     int64 // replaying the WAL suffix
	FenceNs      int64 // fencing the stale post-gap suffix
}

// Restore rebuilds st from the durability directory: load the newest
// valid checkpoint (if any), then replay the WAL suffix with
// seq > checkpoint seq. Call it on a fresh store before any traffic
// and before NewJournal (replayed mutations must not re-journal).
// Restore runs against the real filesystem with the default worker
// count; RestoreFS is the same against any vfs.FS, and RestoreFSOpts
// additionally pins the options.
//
// Replay is defensive the same way the paper's processes are: a free
// whose bin is already empty (possible only against a forged or
// hand-edited log — per-bin order makes it impossible in our own) is
// skipped and counted, never fatal, so an adversarially bad WAL still
// yields *a* state the process can recover from.
func Restore(st *Store, dir string) (RestoreResult, error) {
	return RestoreFS(st, vfs.OS, dir)
}

// RestoreOpts is Restore with explicit options.
func RestoreOpts(st *Store, dir string, opts RestoreOptions) (RestoreResult, error) {
	return RestoreFSOpts(st, vfs.OS, dir, opts)
}

// RestoreFS is Restore against an explicit filesystem.
func RestoreFS(st *Store, fsys vfs.FS, dir string) (RestoreResult, error) {
	return RestoreFSOpts(st, fsys, dir, RestoreOptions{})
}

// RestoreFSOpts is the full restore pipeline. With Workers > 1 the WAL
// suffix is replayed by wal.ReplayPipelineFS — segment read-ahead and
// record decode overlap with application, and records fan out to
// Workers appliers partitioned by the store's lock stripes, so the
// final state (loads, counters, and every RestoreResult field except
// the timings) is bit-identical to the sequential replay. A sectioned
// checkpoint (see Journal.Checkpoint) additionally filters each
// replayed record against its stripe's seq watermark, so records
// already reflected in the stripe's copy are not applied twice.
func RestoreFSOpts(st *Store, fsys vfs.FS, dir string, opts RestoreOptions) (RestoreResult, error) {
	defer metrics.Span("checkpoint.restore_ns")()
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultRestoreWorkers()
	}
	if workers > st.Shards() {
		workers = st.Shards()
	}
	var res RestoreResult
	res.Workers = workers

	t0 := time.Now()
	snap, path, err := checkpoint.LoadLatestFS(fsys, dir)
	switch {
	case err == nil:
		if err := st.Restore(snap.Loads, snap.Allocs, snap.Frees); err != nil {
			return res, fmt.Errorf("serve: restore %s: %w", path, err)
		}
		res.Restored = true
		res.CheckpointSeq = snap.Seq
		res.CheckpointPath = path
		res.LastSeq = snap.Seq
	case errors.Is(err, checkpoint.ErrNoCheckpoint):
		// Fresh (or checkpoint-less) directory: replay from the start.
	default:
		return res, err
	}
	res.CheckpointNs = time.Since(t0).Nanoseconds()

	ap := newReplayApplier(st, &snap, workers)
	t0 = time.Now()
	var stats wal.ReplayStats
	if workers > 1 {
		stats, err = wal.ReplayPipelineFS(fsys, dir, res.CheckpointSeq, wal.PipelineOptions{
			Workers:    workers,
			Partition:  func(rec wal.Record) int { return int(rec.Bin) / st.shardSize },
			ApplyBatch: ap.applyBatch,
		})
	} else {
		metrics.SetGauge("wal.replay.workers", 1)
		stats, err = wal.ReplayFS(fsys, dir, res.CheckpointSeq, ap.applyOne)
	}
	res.ReplayNs = time.Since(t0).Nanoseconds()
	res.Replayed = ap.applied.Load()
	res.SkippedFrees = ap.skippedFrees.Load()
	if err != nil {
		return res, err
	}
	res.Torn = stats.Torn
	if stats.LastSeq > res.LastSeq {
		res.LastSeq = stats.LastSeq
	}
	if stats.Applied > 0 {
		res.Restored = true
	}
	metrics.AddCounter("wal.replay.records", res.Replayed)
	metrics.AddCounter("wal.replay.skipped_frees", res.SkippedFrees)

	// Replay may have stopped short of the on-disk max at a seq gap (an
	// aborted append dropped a record; everything past it was never
	// acknowledged durable). The unreachable suffix must go NOW, before
	// the journal reopens: new records reuse seqs from LastSeq+1, and a
	// stale segment left behind would overlap the new history and feed a
	// future replay records from the dead timeline.
	t0 = time.Now()
	removed, err := wal.RemoveStaleFS(fsys, dir, res.LastSeq)
	res.FenceNs = time.Since(t0).Nanoseconds()
	res.StaleRemoved = removed
	if err != nil {
		return res, fmt.Errorf("serve: restore: %w", err)
	}
	return res, nil
}

// replayApplier applies batches of replayed WAL records into the store
// with one stripe-lock acquisition per touched stripe per batch, and
// one delta flush of the global counters per stripe group — the same
// chain-grouping technique as Store.AdmitBatch. It is safe for
// concurrent batches as long as no stripe's records are in flight on
// two workers at once, which is exactly what the pipeline's
// stripe-to-worker partition guarantees. The store must not have a
// journal hook installed (replayed mutations must not re-journal);
// applier writes bypass the hook entirely.
type replayApplier struct {
	st   *Store
	snap *checkpoint.Snapshot // non-nil only when stripes have distinct watermarks

	applied      atomic.Int64 // records past the seq/watermark filters
	skippedFrees atomic.Int64 // frees that hit an already-empty bin

	scratch []applyScratch
}

// applyScratch is one worker's reusable grouping state: per-stripe
// chain heads/tails (1-based; 0 = nil), per-record links, and the
// stripes touched by the current batch.
type applyScratch struct {
	head    []int32
	tail    []int32
	next    []int32
	touched []int32
	one     [1]wal.Record // applyOne's batch buffer (sequential path only)
}

// newReplayApplier builds an applier for workers concurrent lanes. The
// snapshot is consulted per record only when its sections carry
// watermarks above Seq — a v1 or quiesced checkpoint skips the lookup
// entirely.
func newReplayApplier(st *Store, snap *checkpoint.Snapshot, workers int) *replayApplier {
	a := &replayApplier{st: st, scratch: make([]applyScratch, workers)}
	if snap.MaxWatermark() > snap.Seq {
		a.snap = snap
	}
	return a
}

// applyOne drives the applier from the sequential wal.ReplayFS walk —
// one single-record batch per callback, so both replay paths share
// every semantic (watermark filter, skipped frees, counter updates)
// by construction.
func (a *replayApplier) applyOne(rec wal.Record) error {
	sc := &a.scratch[0]
	sc.one[0] = rec
	return a.applyBatch(0, sc.one[:])
}

// applyBatch applies one pipeline batch on worker w. Records are
// grouped into per-stripe chains first (preserving in-batch order, so
// per-bin order survives), then each stripe group is applied under one
// lock acquisition; per-stripe and global counters take one delta add
// per group instead of one per record. An error aborts the batch with
// the store state unspecified, matching the replay contract.
func (a *replayApplier) applyBatch(w int, recs []wal.Record) error {
	st := a.st
	sc := &a.scratch[w]
	if len(sc.head) < len(st.shards) {
		sc.head = make([]int32, len(st.shards))
		sc.tail = make([]int32, len(st.shards))
	}
	if cap(sc.next) < len(recs) {
		sc.next = make([]int32, len(recs))
	}
	sc.next = sc.next[:len(recs)]
	sc.touched = sc.touched[:0]

	var applied int64
	for i, rec := range recs {
		bin := int(rec.Bin)
		if bin < 0 || bin >= st.n {
			for _, si := range sc.touched {
				sc.head[si], sc.tail[si] = 0, 0
			}
			return fmt.Errorf("serve: replay record seq %d targets bin %d of %d", rec.Seq, bin, st.n)
		}
		if a.snap != nil && rec.Seq <= a.snap.WatermarkFor(bin) {
			continue // already reflected in the stripe's checkpoint section
		}
		si := int32(bin / st.shardSize)
		sc.next[i] = 0
		if sc.head[si] == 0 {
			sc.head[si] = int32(i + 1)
			sc.touched = append(sc.touched, si)
		} else {
			sc.next[sc.tail[si]-1] = int32(i + 1)
		}
		sc.tail[si] = int32(i + 1)
		applied++
	}

	var skipped int64
	var err error
	for _, si := range sc.touched {
		if err != nil {
			sc.head[si], sc.tail[si] = 0, 0
			continue
		}
		sh := &st.shards[si]
		var total, allocs, frees, nonEmpty int64
		sh.mu.Lock()
		for e := sc.head[si]; e != 0 && err == nil; e = sc.next[e-1] {
			rec := recs[e-1]
			bin := int(rec.Bin)
			switch rec.Op {
			case wal.OpAlloc:
				if st.loads[bin].Add(1) == 1 {
					nonEmpty++
				}
				total++
				allocs++
			case wal.OpFree:
				if st.loads[bin].Load() == 0 {
					skipped++
					continue
				}
				if st.loads[bin].Add(-1) == 0 {
					nonEmpty--
				}
				total--
				frees++
			case wal.OpCrash:
				if rec.K < 0 {
					err = fmt.Errorf("serve: replay crash record seq %d has k=%d", rec.Seq, rec.K)
					continue
				}
				if rec.K == 0 {
					continue
				}
				if st.loads[bin].Add(rec.K) == rec.K {
					nonEmpty++
				}
				total += int64(rec.K)
			default:
				err = fmt.Errorf("serve: replay record seq %d has unknown op %v", rec.Seq, rec.Op)
			}
		}
		sh.total.Add(total)
		sh.allocs.Add(allocs)
		sh.frees.Add(frees)
		sh.mu.Unlock()
		st.total.Add(total)
		st.nonEmpty.Add(nonEmpty)
		st.allocs.Add(allocs)
		st.frees.Add(frees)
		sc.head[si], sc.tail[si] = 0, 0
	}
	a.applied.Add(applied)
	a.skippedFrees.Add(skipped)
	return err
}

// ApplyRecords replays a batch of WAL records into st through the same
// batch applier restore uses — one stripe-lock acquisition per touched
// stripe, per-bin order preserved — and reports how many frees hit an
// already-empty bin. It is the warm-replay entry point for a
// replication follower applying the primary's record batches and for
// the explorer's reference replay. Single caller at a time; the store
// must not have a journal hook installed.
func ApplyRecords(st *Store, recs []wal.Record) (skippedFrees int64, err error) {
	var snap checkpoint.Snapshot
	ap := newReplayApplier(st, &snap, 1)
	err = ap.applyBatch(0, recs)
	return ap.skippedFrees.Load(), err
}

// Apply replays one WAL record into st — the warm-replay hook shared
// by restore and by a replication follower continuously applying the
// primary's stream. skippedFree reports a free that hit an
// already-empty bin (possible only against a forged or divergent log;
// counted, never fatal — see RestoreFS). The store must not have a
// journal hook installed, or the replayed mutation would be journaled
// again.
func Apply(st *Store, rec wal.Record) (skippedFree bool, err error) {
	bin := int(rec.Bin)
	if bin < 0 || bin >= st.N() {
		return false, fmt.Errorf("serve: replay record seq %d targets bin %d of %d", rec.Seq, bin, st.N())
	}
	switch rec.Op {
	case wal.OpAlloc:
		st.Alloc(bin)
	case wal.OpFree:
		if _, err := st.FreeBin(bin); err != nil {
			return true, nil
		}
	case wal.OpCrash:
		if rec.K < 0 {
			return false, fmt.Errorf("serve: replay crash record seq %d has k=%d", rec.Seq, rec.K)
		}
		st.Crash(bin, int(rec.K))
	default:
		return false, fmt.Errorf("serve: replay record seq %d has unknown op %v", rec.Seq, rec.Op)
	}
	return false, nil
}
