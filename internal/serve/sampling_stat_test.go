package serve

import (
	"fmt"
	"testing"

	"dynalloc/internal/rng"
	"dynalloc/internal/stats"
)

// Statistical acceptance tests for the two departure samplers. Each
// draw is undone with Alloc on the drawn bin so every draw sees the
// identical load vector, which makes the null hypothesis exact:
// FreeNonEmpty (Scenario B) must be uniform over the nonempty bins,
// FreeBall (Scenario A) must hit each bin with probability
// proportional to its load. Everything is seeded — a failure is a real
// sampler defect (or a knowingly changed distribution), never flake.

// drawDistribution samples the given sampler `draws` times against a
// frozen load vector and returns per-bin hit counts.
func drawDistribution(t *testing.T, st *Store, r *rng.RNG, draws int, sample func(*rng.RNG) (int, error)) []int {
	t.Helper()
	counts := make([]int, st.N())
	for d := 0; d < draws; d++ {
		b, err := sample(r)
		if err != nil {
			t.Fatalf("draw %d: %v", d, err)
		}
		counts[b]++
		st.Alloc(b) // undo: keep the load vector frozen
	}
	return counts
}

// loadStore builds a store with the given loads across a specific
// shard geometry.
func loadStore(loads []int, shards int) *Store {
	st := NewStoreShards(len(loads), shards)
	for b, l := range loads {
		for i := 0; i < l; i++ {
			st.Alloc(b)
		}
	}
	return st
}

// The fixture mixes empty bins, singletons and heavy bins, and its
// length (19) does not divide evenly into any shard count — the
// shard-walk arithmetic sees ragged final stripes.
var statLoads = []int{0, 3, 1, 0, 7, 2, 0, 1, 5, 0, 12, 1, 2, 0, 4, 9, 0, 1, 6}

const (
	statDraws = 20000
	// Reject the null below this p-value. With a dozen seeded subtests
	// at alpha=1e-3 a false failure is a percent-level event per seed
	// choice — and seeds are fixed, so a pass today is a pass forever;
	// a broken sampler lands at p < 1e-12 immediately.
	statAlpha = 1e-3
)

func TestFreeNonEmptyIsUniformOverNonEmptyBins(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 16, 32} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			st := loadStore(statLoads, shards)
			r := rng.New(0xB100D + uint64(shards))
			counts := drawDistribution(t, st, r, statDraws, st.FreeNonEmpty)

			want := make([]float64, len(statLoads))
			for b, l := range statLoads {
				if l > 0 {
					want[b] = 1
				}
			}
			stat, df, p := stats.ChiSquareGOF(counts, want)
			if p < statAlpha {
				t.Errorf("FreeNonEmpty not uniform over nonempty bins: chi2=%.2f df=%d p=%.2g\ncounts=%v", stat, df, p, counts)
			}
		})
	}
}

func TestFreeBallIsLoadProportional(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 16, 32} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			st := loadStore(statLoads, shards)
			r := rng.New(0xBA11 + uint64(shards))
			counts := drawDistribution(t, st, r, statDraws, st.FreeBall)

			want := make([]float64, len(statLoads))
			for b, l := range statLoads {
				want[b] = float64(l)
			}
			stat, df, p := stats.ChiSquareGOF(counts, want)
			if p < statAlpha {
				t.Errorf("FreeBall not load-proportional: chi2=%.2f df=%d p=%.2g\ncounts=%v", stat, df, p, counts)
			}
		})
	}
}

// TestSamplersAreDistinguishable is the power check: on a skewed load
// vector the two samplers have very different laws, and each must be
// *rejected* against the other's null. Without this, the two tests
// above could pass vacuously (e.g. if the chi-square had no power).
func TestSamplersAreDistinguishable(t *testing.T) {
	st := loadStore(statLoads, 4)
	r := rng.New(0xD15C)

	uniform := make([]float64, len(statLoads))
	proportional := make([]float64, len(statLoads))
	for b, l := range statLoads {
		if l > 0 {
			uniform[b] = 1
		}
		proportional[b] = float64(l)
	}

	ballCounts := drawDistribution(t, st, r, statDraws, st.FreeBall)
	if _, _, p := stats.ChiSquareGOF(ballCounts, uniform); p > 1e-12 {
		t.Errorf("FreeBall looks uniform over nonempty bins (p=%.2g); the GOF tests have no power", p)
	}
	nonEmptyCounts := drawDistribution(t, st, r, statDraws, st.FreeNonEmpty)
	if _, _, p := stats.ChiSquareGOF(nonEmptyCounts, proportional); p > 1e-12 {
		t.Errorf("FreeNonEmpty looks load-proportional (p=%.2g); the GOF tests have no power", p)
	}
}

// TestFreeNonEmptySingleSurvivor pins the degenerate distribution: with
// one nonempty bin every draw must hit it, whatever the geometry.
func TestFreeNonEmptySingleSurvivor(t *testing.T) {
	loads := make([]int, 16)
	loads[11] = 5000
	st := loadStore(loads, 8)
	r := rng.New(3)
	for d := 0; d < 200; d++ {
		if b, err := st.FreeNonEmpty(r); err != nil || b != 11 {
			t.Fatalf("draw %d: got bin %d, %v; want 11", d, b, err)
		}
		st.Alloc(11)
	}
}
