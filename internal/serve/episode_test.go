package serve

import (
	"testing"
	"time"

	"dynalloc/internal/metrics"
)

// Synthetic-timeline tests: the tracker is driven directly through its
// noteFault/noteRecovered seam with explicit clocks, so every duration
// and step count below is exact arithmetic, not wall-clock luck.

func TestEpisodeTrackerMergesOverlappingFaults(t *testing.T) {
	base := time.Now()
	tr := NewEpisodeTracker(1000)

	tr.noteFault("crash", 100, base)
	tr.noteFault("stall", 150, base.Add(10*time.Millisecond))
	tr.noteFault("crash", 180, base.Add(20*time.Millisecond))
	tr.noteRecovered(400, base.Add(50*time.Millisecond))

	s := tr.Summary()
	if s.Completed != 1 {
		t.Fatalf("three overlapping faults made %d episodes, want 1 (merge semantics)", s.Completed)
	}
	if s.Faults != 3 || s.MergedFaults != 2 {
		t.Fatalf("faults=%d merged=%d, want 3/2", s.Faults, s.MergedFaults)
	}
	if s.Open {
		t.Fatal("episode still open after recovery")
	}
	ep := s.Last
	if ep == nil {
		t.Fatal("no last episode")
	}
	// Measured from the FIRST fault: 400-100 steps, 50ms wall — not
	// from the last fault's stamps.
	if ep.Steps != 300 || ep.Wall != 50*time.Millisecond {
		t.Fatalf("episode measured %d steps / %v, want 300 / 50ms (from the first fault)", ep.Steps, ep.Wall)
	}
	if ep.Kind != "crash" || ep.Faults != 3 {
		t.Fatalf("episode kind=%q faults=%d, want crash/3", ep.Kind, ep.Faults)
	}
	if ep.BudgetRatio != 0.3 {
		t.Fatalf("budget ratio = %g, want 0.3 (300 steps / 1000 budget)", ep.BudgetRatio)
	}
	if s.FaultsByKind["crash"] != 2 || s.FaultsByKind["stall"] != 1 {
		t.Fatalf("faults by kind: %v", s.FaultsByKind)
	}

	// A recovery with nothing open is ignored, not a second episode.
	tr.noteRecovered(500, base.Add(60*time.Millisecond))
	if got := tr.Completed(); got != 1 {
		t.Fatalf("spurious recovery closed an episode: completed=%d", got)
	}
}

func TestEpisodeTrackerMTTRArithmetic(t *testing.T) {
	base := time.Now()
	tr := NewEpisodeTracker(1000)

	// Three disjoint episodes: (100 steps, 10ms), (300, 30ms), (200, 20ms).
	timeline := []struct {
		steps int64
		wall  time.Duration
	}{{100, 10 * time.Millisecond}, {300, 30 * time.Millisecond}, {200, 20 * time.Millisecond}}
	var clockSteps int64
	clock := base
	for _, ep := range timeline {
		tr.noteFault("crash", clockSteps, clock)
		clockSteps += ep.steps
		clock = clock.Add(ep.wall)
		tr.noteRecovered(clockSteps, clock)
		clockSteps += 1000 // healthy gap between episodes
		clock = clock.Add(time.Second)
	}

	s := tr.Summary()
	if s.Completed != 3 || s.Faults != 3 || s.MergedFaults != 0 {
		t.Fatalf("completed=%d faults=%d merged=%d, want 3/3/0", s.Completed, s.Faults, s.MergedFaults)
	}
	if s.TotalDownSteps != 600 || s.TotalDowntime != 60*time.Millisecond {
		t.Fatalf("total downtime %d steps / %v, want 600 / 60ms", s.TotalDownSteps, s.TotalDowntime)
	}
	if s.MTTRSteps != 200 || s.MTTR != 20*time.Millisecond {
		t.Fatalf("MTTR %g steps / %v, want 200 / 20ms", s.MTTRSteps, s.MTTR)
	}
	if s.MaxSteps != 300 || s.MaxWall != 30*time.Millisecond {
		t.Fatalf("max %d steps / %v, want 300 / 30ms", s.MaxSteps, s.MaxWall)
	}
	if s.WorstBudgetRatio != 0.3 {
		t.Fatalf("worst budget ratio %g, want 0.3", s.WorstBudgetRatio)
	}

	// An open episode shows up in the summary without touching the
	// completed aggregates.
	tr.noteFault("enospc", clockSteps, clock)
	s = tr.Summary()
	if !s.Open || s.OpenKind != "enospc" || s.OpenFaults != 1 {
		t.Fatalf("open episode not reported: %+v", s)
	}
	if s.Completed != 3 || s.MTTRSteps != 200 {
		t.Fatalf("open episode leaked into completed aggregates: %+v", s)
	}
}

// TestDetectorDrivesEpisodeTracker covers the integration seam: the
// detector reports startup, manual faults and drift to an attached
// tracker, closes episodes on recovery, and merges faults that land
// mid-outage.
func TestDetectorDrivesEpisodeTracker(t *testing.T) {
	metrics.Reset()
	metrics.Enable()
	defer func() {
		metrics.Disable()
		metrics.Reset()
	}()

	st := NewStore(8)
	st.FillBalanced(16) // 2 per bin
	det := NewDetector(st, Target{PredictedMax: 2, Slack: 1, BudgetSteps: 100})
	tr := NewEpisodeTracker(100)
	det.AttachEpisodes(tr)

	// The detector starts disrupted, so attaching opens the startup
	// episode; the first Check observes a typical state and closes it.
	if s := tr.Summary(); !s.Open || s.OpenKind != "startup" {
		t.Fatalf("attach did not open the startup episode: %+v", s)
	}
	if s := det.Check(); !s.Recovered {
		t.Fatalf("balanced store not recovered: %+v", s)
	}
	if got := tr.Completed(); got != 1 {
		t.Fatalf("startup episode not closed: completed=%d", got)
	}

	// A crash opens episode 2; a second fault mid-outage merges.
	st.Crash(3, 10)
	det.NoteFault(ChaosCrash)
	if s := det.Check(); s.Recovered {
		t.Fatalf("crashed store recovered early: %+v", s)
	}
	st.Crash(5, 4)
	det.NoteFault(ChaosStall) // overlapping fault: same episode
	sum := tr.Summary()
	if sum.Completed != 1 || !sum.Open || sum.OpenFaults != 2 || sum.MergedFaults != 1 {
		t.Fatalf("overlapping faults not merged: %+v", sum)
	}

	// Drain both crashed bins; recovery closes episode 2.
	for i := 0; i < 10; i++ {
		st.FreeBin(3)
	}
	for i := 0; i < 4; i++ {
		st.FreeBin(5)
	}
	if s := det.Check(); !s.Recovered {
		t.Fatalf("drained store not recovered: %+v", s)
	}
	sum = tr.Summary()
	if sum.Completed != 2 || sum.Open {
		t.Fatalf("crash episode not closed: %+v", sum)
	}
	if sum.Last.Kind != ChaosCrash || sum.Last.Faults != 2 {
		t.Fatalf("episode 2 attribution: %+v", sum.Last)
	}
	if sum.FaultsByKind["startup"] != 1 || sum.FaultsByKind[ChaosCrash] != 1 || sum.FaultsByKind[ChaosStall] != 1 {
		t.Fatalf("faults by kind: %v", sum.FaultsByKind)
	}

	// A drift out of the typical band (no explicit fault call) is
	// reported to the tracker as kind "drift".
	st.Crash(1, 10)
	if s := det.Check(); s.Recovered {
		t.Fatalf("drifted store still recovered: %+v", s)
	}
	sum = tr.Summary()
	if !sum.Open || sum.OpenKind != "drift" {
		t.Fatalf("drift did not open a drift episode: %+v", sum)
	}
	for i := 0; i < 10; i++ {
		st.FreeBin(1)
	}
	det.Check()
	if got := tr.Completed(); got != 3 {
		t.Fatalf("drift episode not closed: completed=%d", got)
	}

	snap := metrics.Default().Snapshot()
	if got := snap.Counters["serve.episodes.completed"]; got != 3 {
		t.Fatalf("serve.episodes.completed = %d, want 3", got)
	}
	if got := snap.Counters["serve.episodes.faults"]; got != 4 {
		t.Fatalf("serve.episodes.faults = %d, want 4", got)
	}
	if got := snap.Counters["serve.episodes.merged_faults"]; got != 1 {
		t.Fatalf("serve.episodes.merged_faults = %d, want 1", got)
	}
	if h, ok := snap.Histograms["serve.episodes.steps"]; !ok || h.Count != 3 {
		t.Fatalf("serve.episodes.steps histogram: %+v (ok=%v)", h, ok)
	}
	if h, ok := snap.Histograms["serve.episodes.budget_pct"]; !ok || h.Count != 3 {
		t.Fatalf("serve.episodes.budget_pct histogram: %+v (ok=%v)", h, ok)
	}
	if g := snap.Gauges["serve.episodes.open"]; g != 0 {
		t.Fatalf("serve.episodes.open gauge = %g, want 0", g)
	}
	if g := snap.Gauges["serve.episodes.mttr_ns"]; g <= 0 {
		t.Fatalf("serve.episodes.mttr_ns gauge = %g, want > 0", g)
	}
}
