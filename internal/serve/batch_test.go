package serve

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/stats"
	"dynalloc/internal/wal"
)

// recEvent is one observed hook call.
type recEvent struct {
	op  wal.Op
	bin int
}

// recHook records every per-ball hook call, in order.
type recHook struct{ events []recEvent }

func (h *recHook) OnAlloc(bin int)    { h.events = append(h.events, recEvent{wal.OpAlloc, bin}) }
func (h *recHook) OnFree(bin int)     { h.events = append(h.events, recEvent{wal.OpFree, bin}) }
func (h *recHook) OnCrash(bin, k int) { h.events = append(h.events, recEvent{wal.OpCrash, bin}) }

// recBatchHook additionally records OnAllocRun runs (copying the
// scratch-owned slice, as the BatchStoreHook contract requires).
type recBatchHook struct {
	recHook
	runs [][]int
}

func (h *recBatchHook) OnAllocRun(bins []int) {
	h.runs = append(h.runs, append([]int(nil), bins...))
	for _, b := range bins {
		h.events = append(h.events, recEvent{wal.OpAlloc, b})
	}
}

// shipped policies for the equivalence battery, keyed by name.
func shippedPolicies() []Policy {
	return []Policy{
		NewABKUPolicy(1),
		NewABKUPolicy(2),
		NewABKUPolicy(3),
		NewADAPPolicy(rules.SliceThresholds{1, 2, 2, 3}),
		NewMixedPolicy(0.5),
	}
}

// TestAdmitBatchMatchesSequentialAllocs is the core property test:
// over randomized load vectors, shard geometries and batch contents
// (duplicates included), AdmitBatch must be observationally equivalent
// to len(bins) sequential Alloc calls — same final state and counters,
// same per-ball load results, same per-bin hook event counts — and
// Order() must be a shard-grouped, within-shard-stable permutation of
// the entries whose load results are consistent with the apply order.
func TestAdmitBatchMatchesSequentialAllocs(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		r := rng.New(0xBA7C4 + uint64(trial))
		n := 1 + r.Intn(200)
		shards := 1 << r.Intn(5)
		if shards > n {
			shards = 1
		}
		batchStore := NewStoreShards(n, shards)
		seqStore := NewStoreShards(n, shards)
		// Random initial fill, identical on both stores.
		for b := 0; b < n; b++ {
			if k := r.Intn(4); k > 0 {
				batchStore.Crash(b, k)
				seqStore.Crash(b, k)
			}
		}
		bh := &recBatchHook{}
		sh := &recHook{}
		batchStore.SetHook(bh)
		seqStore.SetHook(sh)

		k := 1 + r.Intn(300)
		bins := make([]int, k)
		for i := range bins {
			bins[i] = r.Intn(n)
		}
		batchLoads := make([]int32, k)
		var sc AdmitScratch
		batchStore.AdmitBatch(bins, batchLoads, &sc)

		seqLoads := make([]int32, k)
		for i, b := range bins {
			seqLoads[i] = int32(seqStore.Alloc(b))
		}

		// Final state and counters agree exactly.
		if !reflect.DeepEqual(batchStore.LoadsCopy(), seqStore.LoadsCopy()) {
			t.Fatalf("trial %d: loads diverge\nbatch=%v\nseq=%v", trial, batchStore.LoadsCopy(), seqStore.LoadsCopy())
		}
		bs, ss := batchStore.Stats(), seqStore.Stats()
		if bs != ss {
			t.Fatalf("trial %d: stats diverge: batch=%+v seq=%+v", trial, bs, ss)
		}

		// Per-ball load results: same bin, same multiset of loads, and
		// within one bin the sorted loads must match (each admission to a
		// bin yields a distinct consecutive load, in apply order).
		perBin := map[int][]int32{}
		for i, b := range bins {
			perBin[b] = append(perBin[b], batchLoads[i])
		}
		perBinSeq := map[int][]int32{}
		for i, b := range bins {
			perBinSeq[b] = append(perBinSeq[b], seqLoads[i])
		}
		for b, bl := range perBin {
			sl := perBinSeq[b]
			// Entry order within a bin == apply order within a bin (the
			// shard chain is FIFO), so the load sequences match directly.
			if !reflect.DeepEqual(bl, sl) {
				t.Fatalf("trial %d bin %d: per-ball loads diverge: batch=%v seq=%v", trial, b, bl, sl)
			}
		}

		// Hook events: equal per-bin counts (order across bins may differ
		// by shard grouping; per-bin order is trivially equal since every
		// event of a bin is the same record).
		count := func(evs []recEvent) map[recEvent]int {
			m := map[recEvent]int{}
			for _, e := range evs {
				m[e]++
			}
			return m
		}
		if !reflect.DeepEqual(count(bh.events), count(sh.events)) {
			t.Fatalf("trial %d: hook events diverge: batch=%v seq=%v", trial, count(bh.events), count(sh.events))
		}

		// The batch hook's runs concatenate to exactly Order()'s bins, and
		// each run stays within a single shard.
		var runCat []int
		for _, run := range bh.runs {
			s0 := batchStore.ShardOf(run[0])
			for _, b := range run {
				if batchStore.ShardOf(b) != s0 {
					t.Fatalf("trial %d: run %v crosses shards", trial, run)
				}
			}
			runCat = append(runCat, run...)
		}
		order := sc.Order()
		if len(order) != k {
			t.Fatalf("trial %d: Order() has %d entries, want %d", trial, len(order), k)
		}
		seen := make([]bool, k)
		for pos, e := range order {
			if seen[e] {
				t.Fatalf("trial %d: Order() repeats entry %d", trial, e)
			}
			seen[e] = true
			if runCat[pos] != bins[e] {
				t.Fatalf("trial %d: apply order pos %d: hook saw bin %d, Order() says entry %d (bin %d)",
					trial, pos, runCat[pos], e, bins[e])
			}
		}
		// Within-shard stability: entries of the same shard appear in
		// Order() in entry order.
		lastPerShard := map[int]int32{}
		for _, e := range order {
			si := batchStore.ShardOf(bins[e])
			if prev, ok := lastPerShard[si]; ok && e < prev {
				t.Fatalf("trial %d: shard %d applied entry %d after %d (not FIFO)", trial, si, e, prev)
			}
			lastPerShard[si] = e
		}
	}
}

// TestAdmitBatchPlainHookFallback: a hook without OnAllocRun receives
// ordinary per-ball OnAlloc calls from AdmitBatch, in apply order.
func TestAdmitBatchPlainHookFallback(t *testing.T) {
	st := NewStoreShards(32, 4)
	h := &recHook{}
	st.SetHook(h)
	bins := []int{0, 31, 8, 0, 16, 9}
	var sc AdmitScratch
	st.AdmitBatch(bins, nil, &sc)
	if len(h.events) != len(bins) {
		t.Fatalf("plain hook saw %d events, want %d", len(h.events), len(bins))
	}
	for pos, e := range sc.Order() {
		if h.events[pos] != (recEvent{wal.OpAlloc, bins[e]}) {
			t.Fatalf("event %d = %+v, want alloc of bin %d", pos, h.events[pos], bins[e])
		}
	}
}

// TestPickBatchMatchesSequentialPicks pins the strongest form of the
// batch pick path's equivalence: same stream, bit-identical choices.
func TestPickBatchMatchesSequentialPicks(t *testing.T) {
	st := loadStore(statLoads, 4)
	for _, pol := range shippedPolicies() {
		t.Run(pol.Name(), func(t *testing.T) {
			bp, ok := pol.(BatchPolicy)
			if !ok {
				t.Fatalf("%s does not implement BatchPolicy", pol.Name())
			}
			r1 := rng.New(0x9E1EC7)
			r2 := rng.New(0x9E1EC7)
			batched := make([]int, 257)
			probes := bp.PickBatch(st, r1, batched)
			seqProbes := 0
			for i := range batched {
				b, m := pol.Pick(st, r2)
				seqProbes += m
				if b != batched[i] {
					t.Fatalf("choice %d: batch=%d sequential=%d", i, batched[i], b)
				}
			}
			if probes != seqProbes {
				t.Fatalf("probes: batch=%d sequential=%d", probes, seqProbes)
			}
		})
	}
}

// twoSampleChi2 runs a chi-square homogeneity test on two per-bin
// count vectors (null: both samples drawn from the same distribution).
func twoSampleChi2(a, b []int) (stat float64, df int) {
	var na, nb float64
	for i := range a {
		na += float64(a[i])
		nb += float64(b[i])
	}
	for i := range a {
		tot := float64(a[i] + b[i])
		if tot == 0 {
			continue
		}
		ea := tot * na / (na + nb)
		eb := tot * nb / (na + nb)
		stat += (float64(a[i]) - ea) * (float64(a[i]) - ea) / ea
		stat += (float64(b[i]) - eb) * (float64(b[i]) - eb) / eb
		df++
	}
	return stat, df - 1
}

// TestBatchLaneChoiceDistribution drives the full batched admit path
// (PickBatch + AdmitBatch, undone after every batch so the load vector
// stays frozen and the null hypothesis is exact) against the
// sequential path under an independent stream, and requires the
// destination distributions to agree by chi-square homogeneity for
// every shipped policy. The bit-equality test above is stronger for
// the pick path alone; this one exercises the whole lane, including
// the store apply.
func TestBatchLaneChoiceDistribution(t *testing.T) {
	const batch = 64
	for _, pol := range shippedPolicies() {
		t.Run(pol.Name(), func(t *testing.T) {
			st := loadStore(statLoads, 4)
			bp := pol.(BatchPolicy)
			r1 := rng.New(0xC0117)
			r2 := rng.New(0xD157)

			batchCounts := make([]int, st.N())
			bins := make([]int, batch)
			var sc AdmitScratch
			for drawn := 0; drawn < statDraws; drawn += batch {
				bp.PickBatch(st, r1, bins)
				st.AdmitBatch(bins, nil, &sc)
				for _, b := range bins {
					batchCounts[b]++
					if _, err := st.FreeBin(b); err != nil { // undo
						t.Fatal(err)
					}
				}
			}
			seqCounts := make([]int, st.N())
			for d := 0; d < statDraws; d++ {
				b, _ := pol.Pick(st, r2)
				st.Alloc(b)
				seqCounts[b]++
				if _, err := st.FreeBin(b); err != nil {
					t.Fatal(err)
				}
			}
			stat, df := twoSampleChi2(batchCounts, seqCounts)
			p := stats.ChiSquareSurvival(stat, df)
			if p < statAlpha {
				t.Errorf("batched vs sequential choices diverge: chi2=%.2f df=%d p=%.2g\nbatch=%v\nseq=%v",
					stat, df, p, batchCounts, seqCounts)
			}
		})
	}
}

// TestAdmitBatchJournalSeqOrder pins the invariant the crash-schedule
// explorer leans on: with a Journal installed, the WAL records of one
// AdmitBatch land with consecutive seqs whose bin sequence equals the
// batch's bins permuted by AdmitScratch.Order().
func TestAdmitBatchJournalSeqOrder(t *testing.T) {
	st, j, fs, dir := newJournaled(t, 32, 4, wal.Options{SegmentBytes: 1 << 20})
	bins := []int{0, 31, 8, 0, 16, 9, 24, 1, 1}
	var sc AdmitScratch
	st.AdmitBatch(bins, nil, &sc)
	j.Drain()
	if err := j.Close(); err != nil { // flush the log's write buffer to the fs
		t.Fatal(err)
	}
	var got []int
	if _, err := wal.ReplayFS(fs, dir, 0, func(rec wal.Record) error {
		got = append(got, int(rec.Bin))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := make([]int, 0, len(bins))
	for _, e := range sc.Order() {
		want = append(want, bins[e])
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WAL bin sequence %v, want apply order %v", got, want)
	}
}

// TestEngineBatchLaneDrives: the engine's Batch config drives exactly
// MaxSteps phases through the batch lane and preserves mass.
func TestEngineBatchLaneDrives(t *testing.T) {
	for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
		t.Run(fmt.Sprintf("%v", sc), func(t *testing.T) {
			st := NewStoreShards(256, 8)
			st.FillBalanced(256)
			eng := NewEngine(Config{
				Store: st, Policy: NewABKUPolicy(2), Scenario: sc,
				Workers: 1, Seed: 42, MaxSteps: 10_000, Batch: 64,
			})
			res := eng.Run(context.Background())
			if res.Steps != 10_000 {
				t.Fatalf("steps = %d, want 10000", res.Steps)
			}
			if st.Total() != 256 {
				t.Fatalf("total = %d, want 256 (closed loop preserves mass)", st.Total())
			}
			if st.Allocs() != 10_000 || st.Frees() != 10_000 {
				t.Fatalf("allocs=%d frees=%d, want 10000 each", st.Allocs(), st.Frees())
			}
		})
	}
}

// TestEngineBatchDetectorCadence: the detector still fires on the
// CheckEvery cadence when steps advance by whole passes. The pass size
// (48) never lands a step count on a multiple of CheckEvery (100), so
// a naive t%CheckEvery==0 check would never fire; the crossing check
// must stop the drive at the first pass that crosses the boundary.
func TestEngineBatchDetectorCadence(t *testing.T) {
	st := NewStoreShards(64, 4)
	st.FillBalanced(64)
	// A permissive target: the very first check observes recovery.
	det := NewDetector(st, Target{PredictedMax: 64, Slack: 64})
	eng := NewEngine(Config{
		Store: st, Policy: NewABKUPolicy(2), Scenario: process.ScenarioA,
		Workers: 1, Seed: 7, MaxSteps: 100_000, Batch: 48,
		Detector: det, CheckEvery: 100, StopOnRecovery: true,
	})
	res := eng.Run(context.Background())
	if !res.Recovered {
		t.Fatalf("detector never fired: steps=%d", res.Steps)
	}
	// First boundary is step 100; the pass crossing it ends at 144.
	if res.Steps < 100 || res.Steps > 144 {
		t.Fatalf("stopped at step %d, want within the first pass crossing step 100 (100..144)", res.Steps)
	}
}

// TestAdmitBatchConcurrentMixedTraffic is the batch lane's entry in
// the targeted -race leg: AdmitBatch racing FreeBall, FreeNonEmpty,
// FreeBin, Crash, Snapshot and LoadSummary on one store, with full
// accounting checks at the end (the counters must balance exactly —
// torn counts under concurrency would show up here).
func TestAdmitBatchConcurrentMixedTraffic(t *testing.T) {
	const (
		n      = 512
		m      = 2048
		iters  = 400
		batch  = 32
		admitW = 2
	)
	st := NewStoreShards(n, 8)
	st.FillBalanced(m)

	var admitted, freed, crashed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < admitW; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 1)
			pol := NewABKUPolicy(2).(BatchPolicy)
			bins := make([]int, batch)
			loads := make([]int32, batch)
			var sc AdmitScratch
			for i := 0; i < iters; i++ {
				pol.PickBatch(st, r, bins)
				st.AdmitBatch(bins, loads, &sc)
				admitted.Add(batch)
			}
		}(w)
	}
	wg.Add(1)
	go func() { // Scenario A departures
		defer wg.Done()
		r := rng.New(100)
		for i := 0; i < iters*batch/2; i++ {
			if _, err := st.FreeBall(r); err == nil {
				freed.Add(1)
			}
		}
	}()
	wg.Add(1)
	go func() { // Scenario B departures + targeted frees
		defer wg.Done()
		r := rng.New(200)
		for i := 0; i < iters*batch/2; i++ {
			if i%7 == 0 {
				if _, err := st.FreeBin(r.Intn(n)); err == nil {
					freed.Add(1)
				}
				continue
			}
			if _, err := st.FreeNonEmpty(r); err == nil {
				freed.Add(1)
			}
		}
	}()
	wg.Add(1)
	go func() { // crash injections
		defer wg.Done()
		r := rng.New(300)
		for i := 0; i < iters/4; i++ {
			k := 1 + r.Intn(8)
			st.Crash(r.Intn(n), k)
			crashed.Add(int64(k))
		}
	}()
	wg.Add(1)
	go func() { // readers
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = st.Snapshot()
			_ = st.LoadSummary()
			_ = st.Stats()
		}
	}()
	wg.Wait()

	loads := st.LoadsCopy()
	var sum, nonEmpty int64
	for _, l := range loads {
		if l < 0 {
			t.Fatalf("negative load %d", l)
		}
		sum += int64(l)
		if l > 0 {
			nonEmpty++
		}
	}
	if got := st.Total(); got != sum {
		t.Errorf("Total() = %d, sum of loads = %d", got, sum)
	}
	if got := st.NonEmpty(); got != nonEmpty {
		t.Errorf("NonEmpty() = %d, counted %d", got, nonEmpty)
	}
	if got := st.Allocs(); got != admitted.Load() {
		t.Errorf("Allocs() = %d, admitted %d", got, admitted.Load())
	}
	if got := st.Frees(); got != freed.Load() {
		t.Errorf("Frees() = %d, freed %d", got, freed.Load())
	}
	if want := m + admitted.Load() + crashed.Load() - freed.Load(); sum != want {
		t.Errorf("mass: sum=%d, want %d (m + admitted + crashed - freed)", sum, want)
	}
	var stripes []int64
	for i, tot := range st.AppendStripeTotals(stripes) {
		var shardSum int64
		for b := 0; b < n; b++ {
			if st.ShardOf(b) == i {
				shardSum += int64(loads[b])
			}
		}
		if tot != shardSum {
			t.Errorf("stripe %d total %d, loads sum %d", i, tot, shardSum)
		}
	}
}
