package serve

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"dynalloc/internal/metrics"
	"dynalloc/internal/rng"
	"dynalloc/internal/vfs"
)

// chaosStreamOffset keeps the injector's rng stream disjoint from the
// drive workers' decision streams (0..W-1), their pacing streams
// (1<<32), and the HTTP admission stream (1<<33).
const chaosStreamOffset = 1 << 34

// Chaos catastrophe kinds. Each is one fault family the injector can
// draw when a catastrophe fires; docs/CHAOS.md has the full taxonomy.
const (
	// ChaosCrash relocates a fraction of the store's balls into one
	// random bin — the paper's adversarial "all the mass in one place"
	// state, arriving at a Poisson time instead of at boot. It is
	// mass-preserving (balls are freed uniformly first, then dumped),
	// so the recovery target computed at boot stays valid no matter how
	// many catastrophes land.
	ChaosCrash = "crash"
	// ChaosStall arms a sync delay on the WAL filesystem: every fsync
	// sleeps, as on a hung device. Repaired after an exponential window.
	ChaosStall = "stall"
	// ChaosNoSpace arms a write fault on the WAL filesystem: creates
	// and writes fail as on a full disk. Repaired after an exponential
	// window; the WAL heals onto a fresh segment (wal.segment.aborts).
	ChaosNoSpace = "enospc"
	// ChaosPowerCut severs a simulated filesystem a few operations from
	// now — a power event landing mid-write (often mid-checkpoint).
	// Test mode only: it needs a PowerCutter (simfs implements it) and
	// is never armed against a real disk.
	ChaosPowerCut = "powercut"
)

// PowerCutter is the test-mode power-event hook; *simfs.FS implements
// it. Kept as a local interface so serve does not depend on simfs.
type PowerCutter interface {
	CrashAfterOps(k int)
}

// ChaosConfig configures a ChaosInjector.
type ChaosConfig struct {
	Store    *Store    // required: the store catastrophes land on
	Detector *Detector // required: every catastrophe is a NoteFault here

	Rate float64 // catastrophes per second (Poisson); default 0.5
	Seed uint64  // rng seed; the injector uses a derived stream

	// Faults is the catastrophe menu, drawn uniformly per firing. Empty
	// means everything available: ChaosCrash always, ChaosStall and
	// ChaosNoSpace when FaultFS is set, ChaosPowerCut when PowerCut is.
	Faults []string

	CrashFrac  float64       // fraction of balls a crash relocates; default 1/16
	RepairMean time.Duration // mean exponential repair window for disk faults; default 250ms
	StallDelay time.Duration // per-fsync sleep while stalled; default 5ms

	FaultFS     *vfs.FaultFS // WAL-directory fault seam; nil disables stall/enospc
	PowerCut    PowerCutter  // test-mode power events; nil disables powercut
	PowerCutOps int          // max ops ahead a power cut is scheduled; default 32

	OnFault func(kind string) // optional observer, called after each catastrophe
}

// ChaosInjector fires Poisson-timed catastrophes at a live store — the
// continuous-fault regime the self-stabilization results describe,
// in the style of the classic catastrophe simulators: exponential
// interarrivals at Rate, a uniformly drawn catastrophe kind per
// firing, and exponential repair windows for the faults that persist
// (disk stall, ENOSPC). Every catastrophe is reported to the Detector
// via NoteFault, so the EpisodeTracker attributes episodes to fault
// kinds and measures each recovery from the first fault of its outage.
//
// Counters: serve.chaos.catastrophes (total) and serve.chaos.<kind>
// per kind; the serve.chaos.disk_faulted gauge is 1 while a disk fault
// is armed. Run blocks until ctx is done and clears any armed faults
// on the way out.
type ChaosInjector struct {
	cfg   ChaosConfig
	kinds []string
	r     *rng.RNG

	fired   atomic.Int64
	repairs atomic.Int64 // outstanding disk-fault repairs
}

// NewChaosInjector validates cfg, fills defaults, and returns an
// injector ready to Run.
func NewChaosInjector(cfg ChaosConfig) (*ChaosInjector, error) {
	if cfg.Store == nil || cfg.Detector == nil {
		return nil, fmt.Errorf("serve: chaos needs a Store and a Detector")
	}
	if cfg.Rate == 0 {
		cfg.Rate = 0.5
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("serve: chaos rate must be > 0, got %g", cfg.Rate)
	}
	if cfg.CrashFrac == 0 {
		cfg.CrashFrac = 1.0 / 16
	}
	if cfg.CrashFrac < 0 || cfg.CrashFrac > 1 {
		return nil, fmt.Errorf("serve: chaos crash fraction must be in (0,1], got %g", cfg.CrashFrac)
	}
	if cfg.RepairMean <= 0 {
		cfg.RepairMean = 250 * time.Millisecond
	}
	if cfg.StallDelay <= 0 {
		cfg.StallDelay = 5 * time.Millisecond
	}
	if cfg.PowerCutOps <= 0 {
		cfg.PowerCutOps = 32
	}

	kinds := cfg.Faults
	if len(kinds) == 0 {
		kinds = []string{ChaosCrash}
		if cfg.FaultFS != nil {
			kinds = append(kinds, ChaosStall, ChaosNoSpace)
		}
		if cfg.PowerCut != nil {
			kinds = append(kinds, ChaosPowerCut)
		}
	}
	seen := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		if seen[k] {
			return nil, fmt.Errorf("serve: duplicate chaos fault %q", k)
		}
		seen[k] = true
		switch k {
		case ChaosCrash:
		case ChaosStall, ChaosNoSpace:
			if cfg.FaultFS == nil {
				return nil, fmt.Errorf("serve: chaos fault %q needs a FaultFS (run with a WAL directory)", k)
			}
		case ChaosPowerCut:
			if cfg.PowerCut == nil {
				return nil, fmt.Errorf("serve: chaos fault %q needs a PowerCutter (test mode only)", k)
			}
		default:
			return nil, fmt.Errorf("serve: unknown chaos fault %q (want %s, %s, %s or %s)",
				k, ChaosCrash, ChaosStall, ChaosNoSpace, ChaosPowerCut)
		}
	}
	sort.Strings(kinds)
	return &ChaosInjector{
		cfg:   cfg,
		kinds: kinds,
		r:     rng.NewStream(cfg.Seed, chaosStreamOffset),
	}, nil
}

// Kinds returns the catastrophe menu the injector draws from.
func (c *ChaosInjector) Kinds() []string { return append([]string(nil), c.kinds...) }

// Fired returns how many catastrophes have fired.
func (c *ChaosInjector) Fired() int64 { return c.fired.Load() }

// Run fires catastrophes until ctx is done: exponential interarrival
// at cfg.Rate, one uniformly drawn catastrophe per arrival. It blocks;
// run it in a goroutine. Any armed disk fault is cleared on return.
func (c *ChaosInjector) Run(ctx context.Context) {
	metrics.SetGauge("serve.chaos.rate", c.cfg.Rate)
	defer func() {
		if c.cfg.FaultFS != nil {
			c.cfg.FaultFS.ClearFaults()
			metrics.SetGauge("serve.chaos.disk_faulted", 0)
		}
	}()
	timer := time.NewTimer(c.interarrival())
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
			c.fire()
			timer.Reset(c.interarrival())
		}
	}
}

// interarrival draws the next Poisson gap.
func (c *ChaosInjector) interarrival() time.Duration {
	return time.Duration(c.r.Exp() / c.cfg.Rate * float64(time.Second))
}

// fire executes one catastrophe.
func (c *ChaosInjector) fire() {
	kind := c.kinds[c.r.Intn(len(c.kinds))]
	switch kind {
	case ChaosCrash:
		if !c.fireCrash() {
			return // nothing to relocate; not a catastrophe
		}
	case ChaosStall:
		c.cfg.FaultFS.SetSyncDelay(c.cfg.StallDelay)
		c.scheduleRepair(func() { c.cfg.FaultFS.SetSyncDelay(0) })
	case ChaosNoSpace:
		c.cfg.FaultFS.SetWriteError(vfs.ErrInjectedNoSpace)
		c.scheduleRepair(func() { c.cfg.FaultFS.SetWriteError(nil) })
	case ChaosPowerCut:
		c.cfg.PowerCut.CrashAfterOps(1 + c.r.Intn(c.cfg.PowerCutOps))
	}
	c.fired.Add(1)
	c.cfg.Detector.NoteFault(kind)
	metrics.AddCounter("serve.chaos.catastrophes", 1)
	metrics.AddCounter("serve.chaos."+kind, 1)
	if c.cfg.OnFault != nil {
		c.cfg.OnFault(kind)
	}
}

// fireCrash relocates CrashFrac of the store's balls into one random
// bin: balls leave uniformly (scenario-A departures) and land as one
// overload, manufacturing the adversarial state without changing the
// total mass. Returns false when the store had nothing to move.
func (c *ChaosInjector) fireCrash() bool {
	st := c.cfg.Store
	k := int(c.cfg.CrashFrac * float64(st.Total()))
	if k < 1 {
		k = 1
	}
	freed := 0
	for i := 0; i < k; i++ {
		if _, err := st.FreeBall(c.r); err != nil {
			break
		}
		freed++
	}
	if freed == 0 {
		return false
	}
	bin := c.r.Intn(st.N())
	st.Crash(bin, freed)
	metrics.ObserveHistogram("serve.chaos.crash_balls", int64(freed))
	return true
}

// scheduleRepair clears a disk fault after an exponentially
// distributed window (drawn here, on the injector's rng stream, so
// firing order stays deterministic for a fixed seed).
func (c *ChaosInjector) scheduleRepair(repair func()) {
	window := time.Duration(c.r.Exp() * float64(c.cfg.RepairMean))
	if c.repairs.Add(1) == 1 {
		metrics.SetGauge("serve.chaos.disk_faulted", 1)
	}
	time.AfterFunc(window, func() {
		repair()
		if c.repairs.Add(-1) == 0 {
			metrics.SetGauge("serve.chaos.disk_faulted", 0)
		}
	})
}
