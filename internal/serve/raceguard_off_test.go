//go:build !race

package serve

// See raceguard_on_test.go.
const raceEnabled = false
