package serve

import (
	"context"
	"path/filepath"
	"testing"

	"dynalloc/internal/process"
	"dynalloc/internal/wal"
)

// TestRestartDrillRecoversWithinBudget is the in-process restart drill:
// a journaled store takes a crash, the process "dies" mid-write (the
// journal is abandoned unclosed and the WAL tail torn), a fresh process
// restores the disrupted state from disk, and the recovery detector
// must re-fire within 8x the Theorem 1 m*ln(m/eps) budget once traffic
// resumes — durability must hand the drill the same disruption the
// original process saw.
func TestRestartDrillRecoversWithinBudget(t *testing.T) {
	const (
		n      = 256
		shards = 8
		crashK = 128
	)
	st, j, fs, dir := newJournaled(t, n, shards, wal.Options{SegmentBytes: 1 << 16})
	st.FillBalanced(n)
	if _, _, err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	pol := NewABKUPolicy(2)
	eng := NewEngine(Config{
		Store: st, Policy: pol, Scenario: process.ScenarioA,
		Workers: 1, Seed: 41, MaxSteps: 4 * n,
	})
	eng.Run(context.Background())

	st.Crash(7, crashK)
	// A little more traffic after the fault, then the process "dies":
	// drain the queue to disk, tear the tail mid-record, and walk away
	// without closing the journal (no final checkpoint, no clean seal).
	eng2 := NewEngine(Config{
		Store: st, Policy: pol, Scenario: process.ScenarioA,
		Workers: 1, Seed: 43, MaxSteps: 2 * n,
	})
	eng2.Run(context.Background())
	waitForSeq(t, j, j.LastSeq())
	segs, err := fs.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments: %v", err)
	}
	last := segs[len(segs)-1]
	if size := fs.Size(last); size > 16+wal.RecordSize {
		if err := fs.Truncate(last, size-wal.RecordSize/2); err != nil {
			t.Fatal(err)
		}
	}

	// "Reboot": restore into a fresh store and verify the disruption
	// survived — the crashed bin must still be far above typical.
	st2 := NewStoreShards(n, shards)
	res, err := RestoreFS(st2, fs, dir)
	if err != nil || !res.Restored {
		t.Fatalf("restore: %+v, %v", res, err)
	}
	m2 := int(st2.Total())
	target, err := NewTarget(pol, process.ScenarioA, n, m2, 1)
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(st2, target)
	if s := det.Check(); s.Recovered {
		t.Fatalf("restored state lost the disruption: %+v", s)
	}

	budget := int64(8 * target.BudgetSteps)
	drill := NewEngine(Config{
		Store: st2, Policy: pol, Scenario: process.ScenarioA,
		Workers: 1, Seed: 47, MaxSteps: budget,
		Detector: det, CheckEvery: int64(n), StopOnRecovery: true,
	})
	out := drill.Run(context.Background())
	if !out.Recovered {
		t.Fatalf("detector did not re-fire within 8x budget (%d steps, budget %.0f)",
			out.Steps, target.BudgetSteps)
	}
	if out.Episode.Steps > budget {
		t.Fatalf("recovery took %d steps, over the 8x Theorem 1 budget %d",
			out.Episode.Steps, budget)
	}
	t.Logf("restart drill: recovered in %d steps (%.2fx the m*ln(m/eps) budget %.0f)",
		out.Episode.Steps, float64(out.Episode.Steps)/target.BudgetSteps, target.BudgetSteps)
}
