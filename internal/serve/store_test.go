package serve

import (
	"sync"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
)

func TestStoreGeometry(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{1, 1}, {7, 4}, {64, 8}, {100, 16}, {1 << 16, 256},
	} {
		st := NewStoreShards(tc.n, tc.shards)
		if st.N() != tc.n || st.Shards() != tc.shards {
			t.Fatalf("n=%d shards=%d: got n=%d shards=%d", tc.n, tc.shards, st.N(), st.Shards())
		}
		// Every bin belongs to exactly one shard range.
		covered := 0
		for i := range st.shards {
			sh := &st.shards[i]
			if sh.lo > sh.hi {
				t.Fatalf("shard %d has lo %d > hi %d", i, sh.lo, sh.hi)
			}
			covered += sh.hi - sh.lo
		}
		if covered != tc.n {
			t.Fatalf("n=%d shards=%d: ranges cover %d bins", tc.n, tc.shards, covered)
		}
		for b := 0; b < tc.n; b++ {
			sh := st.shardOf(b)
			if b < sh.lo || b >= sh.hi {
				t.Fatalf("bin %d mapped to shard range [%d,%d)", b, sh.lo, sh.hi)
			}
		}
	}
}

func TestNewStoreAutoShards(t *testing.T) {
	st := NewStore(1 << 14)
	if s := st.Shards(); s < 1 || s&(s-1) != 0 {
		t.Fatalf("auto shard count %d not a power of two", s)
	}
	if small := NewStore(3); small.Shards() > 4 {
		t.Fatalf("tiny store got %d shards", small.Shards())
	}
}

func TestNewStoreShardsPanics(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{{0, 1}, {4, 3}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStoreShards(%d, %d) did not panic", tc.n, tc.shards)
				}
			}()
			NewStoreShards(tc.n, tc.shards)
		}()
	}
}

func TestAllocFreeInvariants(t *testing.T) {
	st := NewStoreShards(8, 4)
	if l := st.Alloc(3); l != 1 {
		t.Fatalf("first Alloc load = %d, want 1", l)
	}
	st.Alloc(3)
	st.Alloc(5)
	if st.Total() != 3 || st.NonEmpty() != 2 || st.Allocs() != 3 {
		t.Fatalf("after 3 allocs: %+v", st.Stats())
	}
	if l, err := st.FreeBin(3); err != nil || l != 1 {
		t.Fatalf("FreeBin(3) = %d, %v", l, err)
	}
	if _, err := st.FreeBin(0); err != ErrEmptyBin {
		t.Fatalf("FreeBin on empty bin: %v, want ErrEmptyBin", err)
	}
	if st.Total() != 2 || st.NonEmpty() != 2 || st.Frees() != 1 {
		t.Fatalf("after free: %+v", st.Stats())
	}
	st.FreeBin(3)
	if st.NonEmpty() != 1 {
		t.Fatalf("NonEmpty = %d, want 1", st.NonEmpty())
	}
}

func TestFillBalancedSnapshot(t *testing.T) {
	const n, m = 10, 23
	st := NewStoreShards(n, 2)
	st.FillBalanced(m)
	if st.Total() != m {
		t.Fatalf("Total = %d, want %d", st.Total(), m)
	}
	if st.Allocs() != 0 || st.Frees() != 0 {
		t.Fatalf("seeding advanced the op clocks: %+v", st.Stats())
	}
	want := loadvec.Balanced(n, m)
	if got := st.Snapshot(); !got.Equal(want) {
		t.Fatalf("snapshot %v, want %v", got, want)
	}
}

func TestCrash(t *testing.T) {
	st := NewStoreShards(16, 4)
	st.FillBalanced(16)
	if l := st.Crash(7, 100); l != 101 {
		t.Fatalf("Crash load = %d, want 101", l)
	}
	if st.Total() != 116 || st.NonEmpty() != 16 {
		t.Fatalf("after crash: %+v", st.Stats())
	}
	if st.Crash(7, 0) != 101 {
		t.Fatal("Crash with k=0 must be a no-op")
	}
	if got := st.Snapshot().MaxLoad(); got != 101 {
		t.Fatalf("max load %d, want 101", got)
	}
}

func TestFreeOnEmptyStore(t *testing.T) {
	st := NewStoreShards(8, 2)
	r := rng.New(1)
	if _, err := st.FreeBall(r); err != ErrEmpty {
		t.Fatalf("FreeBall on empty store: %v, want ErrEmpty", err)
	}
	if _, err := st.FreeNonEmpty(r); err != ErrEmpty {
		t.Fatalf("FreeNonEmpty on empty store: %v, want ErrEmpty", err)
	}
}

// TestFreeBallWeighted checks the Scenario A departure stream draws
// bins proportionally to load: with loads 8:2:0, bin 0 should receive
// ~80% of the removals (each draw is undone so the state is constant).
func TestFreeBallWeighted(t *testing.T) {
	st := NewStoreShards(4, 2)
	st.Crash(0, 8)
	st.Crash(1, 2)
	r := rng.New(42)
	const draws = 5000
	counts := map[int]int{}
	for i := 0; i < draws; i++ {
		b, err := st.FreeBall(r)
		if err != nil {
			t.Fatal(err)
		}
		counts[b]++
		st.Crash(b, 1) // put it back
	}
	if counts[2] != 0 || counts[3] != 0 {
		t.Fatalf("empty bins drawn: %v", counts)
	}
	frac := float64(counts[0]) / draws
	if frac < 0.76 || frac > 0.84 {
		t.Fatalf("bin 0 drawn %.3f of the time, want ~0.8", frac)
	}
}

// TestFreeNonEmptyUniform checks the Scenario B departure stream draws
// uniformly over nonempty bins regardless of their load.
func TestFreeNonEmptyUniform(t *testing.T) {
	st := NewStoreShards(4, 2)
	st.Crash(0, 1000)
	st.Crash(3, 10000)
	r := rng.New(7)
	const draws = 4000
	counts := map[int]int{}
	for i := 0; i < draws; i++ {
		b, err := st.FreeNonEmpty(r)
		if err != nil {
			t.Fatal(err)
		}
		counts[b]++
		st.Crash(b, 1)
	}
	frac := float64(counts[0]) / draws
	if frac < 0.46 || frac > 0.54 {
		t.Fatalf("bin 0 drawn %.3f of the time, want ~0.5 (counts %v)", frac, counts)
	}
}

// TestStoreDeterminism: the same seed against the same geometry must
// produce the identical operation sequence (single worker).
func TestStoreDeterminism(t *testing.T) {
	run := func() []int {
		st := NewStoreShards(64, 8)
		st.FillBalanced(64)
		r := rng.New(1998)
		for i := 0; i < 2000; i++ {
			if i%2 == 0 {
				if _, err := st.FreeBall(r); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := st.FreeNonEmpty(r); err != nil {
					t.Fatal(err)
				}
			}
			st.Alloc(r.Intn(64))
		}
		return st.LoadsCopy()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bin %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestStoreConcurrent hammers the store from many goroutines and then
// verifies every counter against the ground-truth bin contents. Run
// with -race to exercise the lock discipline.
func TestStoreConcurrent(t *testing.T) {
	const (
		n       = 257 // deliberately not a multiple of the shard count
		workers = 8
		ops     = 4000
	)
	st := NewStoreShards(n, 16)
	st.FillBalanced(3 * n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.NewStream(5, uint64(w))
			for i := 0; i < ops; i++ {
				switch r.Intn(4) {
				case 0:
					st.Alloc(r.Intn(n))
				case 1:
					st.FreeBall(r)
				case 2:
					st.FreeNonEmpty(r)
				case 3:
					st.FreeBin(r.Intn(n))
				}
				if i%512 == 0 {
					st.Snapshot() // lock-free reader racing the writers
				}
			}
		}(w)
	}
	wg.Wait()

	loads := st.LoadsCopy()
	var total int64
	var nonEmpty int64
	for b, l := range loads {
		if l < 0 {
			t.Fatalf("bin %d has negative load %d", b, l)
		}
		total += int64(l)
		if l > 0 {
			nonEmpty++
		}
	}
	if st.Total() != total {
		t.Fatalf("Total counter %d, bins sum to %d", st.Total(), total)
	}
	if st.NonEmpty() != nonEmpty {
		t.Fatalf("NonEmpty counter %d, bins say %d", st.NonEmpty(), nonEmpty)
	}
	var shardSum int64
	for i := range st.shards {
		shardSum += st.shards[i].total.Load()
	}
	if shardSum != total {
		t.Fatalf("shard totals sum to %d, bins to %d", shardSum, total)
	}
	if got := 3*n + int(st.Allocs()) - int(st.Frees()); int64(got) != total {
		t.Fatalf("op clocks inconsistent: seeded %d + allocs %d - frees %d != total %d",
			3*n, st.Allocs(), st.Frees(), total)
	}
}

// The replay-surfaced edge cases: a process never removes from an
// empty bin, but a forged or hand-edited WAL can ask for exactly that,
// so the store-level behavior these replays rely on is pinned here.

func TestFreeBinEmptyEdgeCases(t *testing.T) {
	st := NewStoreShards(8, 2)
	// Free from a bin that was never filled.
	if _, err := st.FreeBin(3); err != ErrEmptyBin {
		t.Fatalf("free of never-filled bin: %v, want ErrEmptyBin", err)
	}
	// Fill then drain, then free once more: the second free must fail
	// without disturbing any counter.
	st.Alloc(3)
	if _, err := st.FreeBin(3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.FreeBin(3); err != ErrEmptyBin {
		t.Fatalf("free of drained bin: %v, want ErrEmptyBin", err)
	}
	if st.Total() != 0 || st.NonEmpty() != 0 || st.Allocs() != 1 || st.Frees() != 1 {
		t.Fatalf("failed frees disturbed counters: %+v", st.Stats())
	}
}

func TestCrashEmptyBinEdgeCases(t *testing.T) {
	st := NewStoreShards(8, 2)
	// Crash k=0 of an empty bin: a no-op that must not create a
	// phantom nonempty bin.
	if got := st.Crash(5, 0); got != 0 {
		t.Fatalf("Crash(5, 0) = %d", got)
	}
	if st.NonEmpty() != 0 || st.Total() != 0 {
		t.Fatalf("zero crash disturbed counters: %+v", st.Stats())
	}
	// Crash k>0 of an empty bin transitions it to nonempty exactly once.
	if got := st.Crash(5, 4); got != 4 {
		t.Fatalf("Crash(5, 4) = %d", got)
	}
	if st.NonEmpty() != 1 || st.Total() != 4 {
		t.Fatalf("crash of empty bin: %+v", st.Stats())
	}
	// Crash of an already-loaded bin must not double-count nonempty.
	st.Crash(5, 2)
	if st.NonEmpty() != 1 || st.Total() != 6 {
		t.Fatalf("crash of loaded bin: %+v", st.Stats())
	}
	// Crash counts as neither an admission nor a departure.
	if st.Allocs() != 0 || st.Frees() != 0 {
		t.Fatalf("crash moved the op clocks: %+v", st.Stats())
	}
}

func TestAllocFreeInterleavingAtEmpty(t *testing.T) {
	st := NewStoreShards(4, 2)
	r := rng.New(7)
	// m=0 throughout: every departure stream call must refuse, every
	// alloc/free pair must return to the empty state exactly.
	for i := 0; i < 100; i++ {
		if _, err := st.FreeBall(r); err != ErrEmpty {
			t.Fatalf("FreeBall on empty store: %v", err)
		}
		if _, err := st.FreeNonEmpty(r); err != ErrEmpty {
			t.Fatalf("FreeNonEmpty on empty store: %v", err)
		}
		b := i % 4
		st.Alloc(b)
		if _, err := st.FreeBin(b); err != nil {
			t.Fatalf("drain after alloc: %v", err)
		}
		if st.Total() != 0 || st.NonEmpty() != 0 {
			t.Fatalf("iteration %d left residue: %+v", i, st.Stats())
		}
	}
	if st.Allocs() != 100 || st.Frees() != 100 {
		t.Fatalf("op clocks after interleaving: %+v", st.Stats())
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	st := NewStoreShards(16, 4)
	st.FillBalanced(20)
	st.Crash(3, 9)
	want := st.LoadsCopy()

	other := NewStoreShards(16, 4)
	loads := make([]int32, len(want))
	for i, l := range want {
		loads[i] = int32(l)
	}
	if err := other.Restore(loads, 7, 5); err != nil {
		t.Fatal(err)
	}
	got := other.LoadsCopy()
	for b := range want {
		if got[b] != want[b] {
			t.Fatalf("bin %d: restored %d, want %d", b, got[b], want[b])
		}
	}
	if other.Total() != st.Total() || other.NonEmpty() != st.NonEmpty() {
		t.Fatalf("restored counters %+v vs %+v", other.Stats(), st.Stats())
	}
	if other.Allocs() != 7 || other.Frees() != 5 {
		t.Fatalf("restored op clocks: %+v", other.Stats())
	}
	var shardSum int64
	for i := range other.shards {
		shardSum += other.shards[i].total.Load()
	}
	if shardSum != other.Total() {
		t.Fatalf("restored shard totals sum to %d, want %d", shardSum, other.Total())
	}

	// Dimension mismatch and negative loads are rejected.
	if err := other.Restore(make([]int32, 5), 0, 0); err == nil {
		t.Fatal("restore accepted wrong n")
	}
	if err := other.Restore(append(make([]int32, 15), -1), 0, 0); err == nil {
		t.Fatal("restore accepted a negative load")
	}
}

func TestLoadSummaryMatchesSnapshot(t *testing.T) {
	r := rng.New(7)
	for _, tc := range []struct{ n, shards, churn int }{
		{1, 1, 50}, {64, 8, 500}, {1000, 16, 5000},
	} {
		st := NewStoreShards(tc.n, tc.shards)
		check := func() {
			sum := st.LoadSummary()
			v := st.Snapshot()
			if sum.N != tc.n {
				t.Fatalf("n=%d: summary N %d", tc.n, sum.N)
			}
			if sum.MaxLoad != v.MaxLoad() {
				t.Fatalf("n=%d: summary max %d, snapshot max %d", tc.n, sum.MaxLoad, v.MaxLoad())
			}
			if sum.Total != int64(v.Total()) || sum.Total != st.Total() {
				t.Fatalf("n=%d: summary total %d, snapshot %d, counter %d", tc.n, sum.Total, v.Total(), st.Total())
			}
			if sum.NonEmpty != int64(v.NonEmpty()) {
				t.Fatalf("n=%d: summary nonempty %d, snapshot %d", tc.n, sum.NonEmpty, v.NonEmpty())
			}
			if sum.Allocs != st.Allocs() || sum.Frees != st.Frees() {
				t.Fatalf("n=%d: summary clocks (%d,%d) vs store (%d,%d)", tc.n, sum.Allocs, sum.Frees, st.Allocs(), st.Frees())
			}
			var stripes []int64
			stripes = st.AppendStripeTotals(stripes[:0])
			if len(stripes) != st.Shards() {
				t.Fatalf("n=%d: %d stripe totals for %d stripes", tc.n, len(stripes), st.Shards())
			}
			var sumStripes int64
			for _, s := range stripes {
				sumStripes += s
			}
			if sumStripes != sum.Total {
				t.Fatalf("n=%d: stripe totals sum %d, total %d", tc.n, sumStripes, sum.Total)
			}
		}
		check() // empty store: MaxLoad 0
		st.FillBalanced(3 * tc.n / 2)
		check()
		st.Crash(r.Intn(tc.n), 17)
		check()
		for i := 0; i < tc.churn; i++ {
			if r.Bool() {
				st.Alloc(r.Intn(tc.n))
			} else if _, err := st.FreeBall(r); err != nil && err != ErrEmpty {
				t.Fatal(err)
			}
			if i%97 == 0 {
				check()
			}
		}
		check()
	}
}

func TestLoadSummaryConcurrent(t *testing.T) {
	st := NewStoreShards(512, 16)
	st.FillBalanced(2048)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.NewStream(11, uint64(w))
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.Alloc(r.Intn(512))
				if _, err := st.FreeBall(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Under churn the digest cannot be an exact cut, but every field
	// must stay within the bounds the closed-loop traffic implies.
	for i := 0; i < 200; i++ {
		sum := st.LoadSummary()
		if sum.MaxLoad < 1 || sum.NonEmpty < 1 {
			t.Fatalf("digest lost the balls: %+v", sum)
		}
		if sum.Total < 2048-8 || sum.Total > 2048+8 {
			t.Fatalf("closed-loop total drifted: %+v", sum)
		}
	}
	close(stop)
	wg.Wait()
}
