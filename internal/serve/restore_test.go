package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"dynalloc/internal/checkpoint"
	"dynalloc/internal/rng"
	"dynalloc/internal/wal"
)

// diffResults compares two RestoreResults on every field except the
// worker count and the phase timings (those legitimately differ across
// restore modes). Empty string means equal.
func diffResults(a, b RestoreResult) string {
	a.Workers, b.Workers = 0, 0
	a.CheckpointNs, b.CheckpointNs = 0, 0
	a.ReplayNs, b.ReplayNs = 0, 0
	a.FenceNs, b.FenceNs = 0, 0
	if a != b {
		return fmt.Sprintf("%+v vs %+v", a, b)
	}
	return ""
}

// assertStoresEqual compares every externally observable piece of
// store state two restore modes must agree on.
func assertStoresEqual(t *testing.T, what string, a, b *Store) {
	t.Helper()
	if a.Total() != b.Total() || a.NonEmpty() != b.NonEmpty() ||
		a.Allocs() != b.Allocs() || a.Frees() != b.Frees() {
		t.Fatalf("%s: counters total=%d/%d nonEmpty=%d/%d allocs=%d/%d frees=%d/%d",
			what, a.Total(), b.Total(), a.NonEmpty(), b.NonEmpty(),
			a.Allocs(), b.Allocs(), a.Frees(), b.Frees())
	}
	la, lb := a.LoadsCopy(), b.LoadsCopy()
	for bin := range la {
		if la[bin] != lb[bin] {
			t.Fatalf("%s: bin %d loads %d vs %d", what, bin, la[bin], lb[bin])
		}
	}
}

// TestParallelRestoreMatchesSequential is the serve-level equivalence
// property: randomized journaled traffic with mid-stream (striped)
// checkpoints, then a restore at workers=1 and at several parallel
// widths — every RestoreResult field except timings and the full store
// state must be bit-identical. The explorer sweeps the same property
// across randomized crash schedules; this pins it on dense layouts
// with exact worker counts.
func TestParallelRestoreMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		const n, shards = 64, 8
		st, j, fs, dir := newJournaled(t, n, shards, wal.Options{})
		r := rng.New(uint64(seed))
		for i := 0; i < 600; i++ {
			switch {
			case r.Float64() < 0.55:
				st.Alloc(int(r.Uint64n(n)))
			case r.Float64() < 0.5:
				st.FreeBin(int(r.Uint64n(n))) // may fail on empty: fine
			default:
				st.Crash(int(r.Uint64n(n)), int(r.Uint64n(4)))
			}
			if i%180 == 99 {
				if _, _, err := j.Checkpoint(); err != nil {
					t.Fatalf("seed %d: checkpoint: %v", seed, err)
				}
			}
		}
		want := st.LoadsCopy()
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		seqSt := NewStoreShards(n, shards)
		seqRes, err := RestoreFSOpts(seqSt, fs.Clone(), dir, RestoreOptions{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: sequential restore: %v", seed, err)
		}
		got := seqSt.LoadsCopy()
		for b := range want {
			if got[b] != want[b] {
				t.Fatalf("seed %d: sequential restore bin %d = %d, live store %d", seed, b, got[b], want[b])
			}
		}
		for _, workers := range []int{2, 3, shards, shards + 5} {
			parSt := NewStoreShards(n, shards)
			parRes, err := RestoreFSOpts(parSt, fs.Clone(), dir, RestoreOptions{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if msg := diffResults(parRes, seqRes); msg != "" {
				t.Fatalf("seed %d workers %d: results diverge: %s", seed, workers, msg)
			}
			assertStoresEqual(t, fmt.Sprintf("seed %d workers %d", seed, workers), parSt, seqSt)
			if wantW := min(workers, shards); parRes.Workers != wantW {
				t.Fatalf("seed %d: ran with %d workers, want %d (clamped)", seed, parRes.Workers, wantW)
			}
		}
	}
}

// TestStripedCheckpointCarriesSections pins the striped checkpoint's
// on-disk shape: one section per non-empty stripe, tiling the bins,
// with Seq = the minimum watermark — the truncation-soundness
// invariant — and restore consuming it back to the exact live state.
func TestStripedCheckpointCarriesSections(t *testing.T) {
	const n, shards = 32, 4
	st, j, fs, dir := newJournaled(t, n, shards, wal.Options{})
	for i := 0; i < 200; i++ {
		st.Alloc(i % n)
	}
	written, path, err := j.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	snap, gotPath, err := checkpoint.LoadLatestFS(fs, dir)
	if err != nil || gotPath != path {
		t.Fatalf("LoadLatest: %q, %v; want %q", gotPath, err, path)
	}
	if len(snap.Sections) != shards {
		t.Fatalf("checkpoint has %d sections, want one per stripe (%d)", len(snap.Sections), shards)
	}
	minWm := ^uint64(0)
	prev := 0
	for i, sec := range snap.Sections {
		if sec.Lo != prev || sec.Hi <= sec.Lo {
			t.Fatalf("section %d [%d,%d) does not tile (prev end %d)", i, sec.Lo, sec.Hi, prev)
		}
		prev = sec.Hi
		if sec.Watermark < minWm {
			minWm = sec.Watermark
		}
	}
	if prev != n {
		t.Fatalf("sections cover %d of %d bins", prev, n)
	}
	if snap.Seq != minWm || written.Seq != snap.Seq {
		t.Fatalf("Seq %d (Checkpoint returned %d), min watermark %d: truncation invariant broken", snap.Seq, written.Seq, minWm)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := NewStoreShards(n, shards)
	if _, err := RestoreFS(fresh, fs, dir); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, "sectioned restore", fresh, st)
}

// TestStripedCheckpointUnderConcurrentTraffic checkpoints repeatedly
// while mutator goroutines hammer the journaled store — the striped
// snapshot holds only one stripe lock at a time, so traffic keeps
// flowing mid-checkpoint. Every checkpoint written during the storm
// must restore (with the WAL suffix on top) to the final state, in
// both restore modes.
func TestStripedCheckpointUnderConcurrentTraffic(t *testing.T) {
	const n, shards = 128, 8
	st, j, fs, dir := newJournaled(t, n, shards, wal.Options{SegmentBytes: 1 << 16})
	st.FillBalanced(n)

	var mutators sync.WaitGroup
	for g := 0; g < 4; g++ {
		mutators.Add(1)
		go func(g int) {
			defer mutators.Done()
			r := rng.New(uint64(100 + g))
			for i := 0; i < 4000; i++ {
				if r.Float64() < 0.6 {
					st.Alloc(int(r.Uint64n(n)))
				} else {
					st.FreeBin(int(r.Uint64n(n)))
				}
			}
		}(g)
	}
	stopCh := make(chan struct{})
	ckptDone := make(chan int)
	go func() {
		taken := 0
		for {
			select {
			case <-stopCh:
				ckptDone <- taken
				return
			default:
			}
			if _, _, err := j.Checkpoint(); err != nil {
				t.Errorf("checkpoint under traffic: %v", err)
				ckptDone <- taken
				return
			}
			taken++
		}
	}()
	mutators.Wait()
	close(stopCh)
	if taken := <-ckptDone; taken == 0 && !t.Failed() {
		t.Fatal("no checkpoint completed during the traffic storm")
	}

	want := st.LoadsCopy()
	wantAllocs, wantFrees := st.Allocs(), st.Frees()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, shards} {
		fresh := NewStoreShards(n, shards)
		res, err := RestoreFSOpts(fresh, fs.Clone(), dir, RestoreOptions{Workers: workers})
		if err != nil || !res.Restored {
			t.Fatalf("workers=%d: restore %+v, %v", workers, res, err)
		}
		got := fresh.LoadsCopy()
		for b := range want {
			if got[b] != want[b] {
				t.Fatalf("workers=%d: bin %d restored %d, want %d", workers, b, got[b], want[b])
			}
		}
		if fresh.Allocs() != wantAllocs || fresh.Frees() != wantFrees {
			t.Fatalf("workers=%d: clocks %d/%d want %d/%d", workers, fresh.Allocs(), fresh.Frees(), wantAllocs, wantFrees)
		}
	}
}

// TestApplyRecordsMatchesApply pins the follower's batched warm-apply
// against the one-record Apply it replaced, including the forged-log
// skipped-free path.
func TestApplyRecordsMatchesApply(t *testing.T) {
	const n = 48
	r := rng.New(7)
	var recs []wal.Record
	for i := 0; i < 500; i++ {
		rec := wal.Record{Bin: uint32(r.Uint64n(n)), K: 1, Seq: uint64(i + 1)}
		switch {
		case r.Float64() < 0.5:
			rec.Op = wal.OpAlloc
		case r.Float64() < 0.7:
			rec.Op = wal.OpFree // often hits empty bins: the skip path
		default:
			rec.Op = wal.OpCrash
			rec.K = int32(r.Uint64n(5))
		}
		recs = append(recs, rec)
	}

	one := NewStoreShards(n, 4)
	var oneSkipped int64
	for _, rec := range recs {
		skipped, err := Apply(one, rec)
		if err != nil {
			t.Fatal(err)
		}
		if skipped {
			oneSkipped++
		}
	}

	batched := NewStoreShards(n, 4)
	var gotSkipped int64
	for lo := 0; lo < len(recs); lo += 64 {
		hi := min(lo+64, len(recs))
		skipped, err := ApplyRecords(batched, recs[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		gotSkipped += skipped
	}

	if gotSkipped != oneSkipped {
		t.Fatalf("skipped frees: batched %d, per-record %d", gotSkipped, oneSkipped)
	}
	if oneSkipped == 0 {
		t.Fatal("schedule never hit the skipped-free path; weaken the free bias")
	}
	assertStoresEqual(t, "batched vs per-record apply", batched, one)
}

// TestApplyRecordsErrors: the batch applier reports malformed records
// with the same errors as the one-record path, and an error aborts the
// batch.
func TestApplyRecordsErrors(t *testing.T) {
	cases := []struct {
		name string
		rec  wal.Record
		want string
	}{
		{"bin out of range", wal.Record{Op: wal.OpAlloc, Bin: 99, K: 1, Seq: 5}, "targets bin 99 of 8"},
		{"negative crash", wal.Record{Op: wal.OpCrash, Bin: 1, K: -2, Seq: 5}, "has k=-2"},
		{"unknown op", wal.Record{Op: 77, Bin: 1, K: 1, Seq: 5}, "unknown op"},
	}
	for _, tc := range cases {
		st := NewStoreShards(8, 2)
		_, batchErr := ApplyRecords(st, []wal.Record{
			{Op: wal.OpAlloc, Bin: 0, K: 1, Seq: 4},
			tc.rec,
		})
		if batchErr == nil || !strings.Contains(batchErr.Error(), tc.want) {
			t.Fatalf("%s: ApplyRecords err = %v, want %q", tc.name, batchErr, tc.want)
		}
		_, oneErr := Apply(NewStoreShards(8, 2), tc.rec)
		if oneErr == nil || !strings.Contains(oneErr.Error(), tc.want) {
			t.Fatalf("%s: Apply err = %v, want %q", tc.name, oneErr, tc.want)
		}
	}
}
