//go:build race

package serve

// raceEnabled reports whether this test binary was built with -race.
// The allocation-budget tier (allocbudget_test.go) skips itself under
// race instrumentation, which inserts its own allocations; the budgets
// run on a dedicated non-race CI leg.
const raceEnabled = true
