package serve

import (
	"sync"
	"time"

	"dynalloc/internal/metrics"
)

// EpisodeReport is one completed recovery episode as the tracker saw
// it: opened by a fault while the store was typical, extended by every
// fault that landed before recovery, and closed by the first Check
// that found the store typical again.
type EpisodeReport struct {
	Kind        string        `json:"kind"`         // kind of the fault that opened the episode
	Faults      int           `json:"faults"`       // faults merged into it (>= 1)
	Steps       int64         `json:"steps"`        // admissions from first fault to recovery
	Wall        time.Duration `json:"wall_ns"`      // wall clock from first fault to recovery
	BudgetRatio float64       `json:"budget_ratio"` // Steps / Theorem-1 budget (0 when no budget)
}

// EpisodeSummary aggregates a tracker's full history — the numbers the
// chaos drill gates on and /state?summary=1 serves.
type EpisodeSummary struct {
	Completed    int64 `json:"completed"`     // episodes closed by a recovery
	Faults       int64 `json:"faults"`        // every fault noted, merged or not
	MergedFaults int64 `json:"merged_faults"` // faults that landed inside an open episode

	Open       bool          `json:"open"`                   // an episode is in progress
	OpenKind   string        `json:"open_kind,omitempty"`    // kind that opened it
	OpenFaults int           `json:"open_faults,omitempty"`  // faults merged into it so far
	OpenWall   time.Duration `json:"open_wall_ns,omitempty"` // downtime accrued so far

	TotalDowntime  time.Duration `json:"total_downtime_ns"` // sum of completed episode walls
	TotalDownSteps int64         `json:"total_down_steps"`  // sum of completed episode steps

	MTTR      time.Duration `json:"mttr_ns"`    // TotalDowntime / Completed
	MTTRSteps float64       `json:"mttr_steps"` // TotalDownSteps / Completed

	MaxWall          time.Duration `json:"max_wall_ns"`        // slowest completed recovery
	MaxSteps         int64         `json:"max_steps"`          // largest completed recovery in steps
	WorstBudgetRatio float64       `json:"worst_budget_ratio"` // max Steps/budget over completed episodes
	BudgetSteps      float64       `json:"budget_steps"`       // the Theorem 1 scale episodes are judged against

	FaultsByKind map[string]int64 `json:"faults_by_kind,omitempty"`
	Last         *EpisodeReport   `json:"last,omitempty"` // most recently completed episode
}

// EpisodeTracker segments the Detector's recovered/disrupted timeline
// into recovery episodes — the continuous-fault counterpart of the
// detector's one-shot Episode. The self-stabilization yardstick
// (Becchetti et al.'s repeated balls-into-bins results) is that the
// system returns to the typical state no matter when or how often
// faults land, so the tracker's unit of account is the *outage*, not
// the fault: a fault that arrives while the store is already disrupted
// merges into the open episode, and the episode is measured from the
// FIRST fault to the recovery that ends it. From the episodes it
// publishes MTTR, total downtime, episode counts, and recovery-time
// histograms normalized against the Theorem 1 budget:
//
//	serve.episodes.completed      counter  episodes closed by a recovery
//	serve.episodes.faults         counter  faults noted (by kind in the summary)
//	serve.episodes.merged_faults  counter  faults merged into an open episode
//	serve.episodes.open           gauge    1 while an episode is in progress
//	serve.episodes.mttr_ns        gauge    mean time to recovery, wall clock
//	serve.episodes.mttr_steps     gauge    mean time to recovery, admission steps
//	serve.episodes.downtime_ns    gauge    total wall-clock downtime
//	serve.episodes.steps          hist     per-episode recovery steps
//	serve.episodes.wall_ns        hist     per-episode recovery wall clock
//	serve.episodes.budget_pct     hist     per-episode steps as % of the Theorem 1 budget
//
// The tracker does not observe the store itself: the Detector drives
// it (AttachEpisodes), calling noteFault on MarkDisrupted/NoteFault
// and on a drift-opened outage, and noteRecovered when a Check closes
// one. All methods are safe for concurrent use.
type EpisodeTracker struct {
	budget float64 // Theorem 1 steps; <= 0 disables normalization

	mu             sync.Mutex
	open           bool
	openKind       string
	openFaults     int
	openStart      time.Time
	openStartSteps int64

	completed      int64
	faults         int64
	merged         int64
	totalDowntime  time.Duration
	totalDownSteps int64
	maxWall        time.Duration
	maxSteps       int64
	worstRatio     float64
	byKind         map[string]int64
	last           EpisodeReport
	haveLast       bool
}

// NewEpisodeTracker returns a tracker judging episodes against the
// Theorem 1 budget (pass target.BudgetSteps; <= 0 disables the
// normalized histogram and ratios).
func NewEpisodeTracker(budgetSteps float64) *EpisodeTracker {
	return &EpisodeTracker{budget: budgetSteps, byKind: make(map[string]int64)}
}

// noteFault records a fault of the given kind at the store clock
// (steps, now). It opens an episode if none is in progress; otherwise
// the fault merges into the open one and the origin stamp is kept —
// the episode measures from the first fault.
func (t *EpisodeTracker) noteFault(kind string, steps int64, now time.Time) {
	t.mu.Lock()
	t.faults++
	t.byKind[kind]++
	mergedHere := t.open
	if t.open {
		t.merged++
		t.openFaults++
	} else {
		t.open = true
		t.openKind = kind
		t.openFaults = 1
		t.openStart = now
		t.openStartSteps = steps
	}
	t.mu.Unlock()
	metrics.AddCounter("serve.episodes.faults", 1)
	metrics.SetGauge("serve.episodes.open", 1)
	if mergedHere {
		metrics.AddCounter("serve.episodes.merged_faults", 1)
	}
}

// noteRecovered closes the open episode at the store clock (steps,
// now). A recovery with no open episode is ignored (the detector can
// start recovered, or recover before the tracker was attached).
func (t *EpisodeTracker) noteRecovered(steps int64, now time.Time) {
	t.mu.Lock()
	if !t.open {
		t.mu.Unlock()
		return
	}
	ep := EpisodeReport{
		Kind:   t.openKind,
		Faults: t.openFaults,
		Steps:  steps - t.openStartSteps,
		Wall:   now.Sub(t.openStart),
	}
	if ep.Steps < 0 {
		ep.Steps = 0
	}
	if ep.Wall < 0 {
		ep.Wall = 0
	}
	if t.budget > 0 {
		ep.BudgetRatio = float64(ep.Steps) / t.budget
	}
	t.open = false
	t.openKind = ""
	t.openFaults = 0
	t.completed++
	t.totalDowntime += ep.Wall
	t.totalDownSteps += ep.Steps
	if ep.Wall > t.maxWall {
		t.maxWall = ep.Wall
	}
	if ep.Steps > t.maxSteps {
		t.maxSteps = ep.Steps
	}
	if ep.BudgetRatio > t.worstRatio {
		t.worstRatio = ep.BudgetRatio
	}
	t.last = ep
	t.haveLast = true
	completed := t.completed
	downtime := t.totalDowntime
	downSteps := t.totalDownSteps
	t.mu.Unlock()

	metrics.AddCounter("serve.episodes.completed", 1)
	metrics.SetGauge("serve.episodes.open", 0)
	metrics.SetGauge("serve.episodes.downtime_ns", float64(downtime.Nanoseconds()))
	metrics.SetGauge("serve.episodes.mttr_ns", float64(downtime.Nanoseconds())/float64(completed))
	metrics.SetGauge("serve.episodes.mttr_steps", float64(downSteps)/float64(completed))
	metrics.ObserveHistogram("serve.episodes.steps", ep.Steps)
	metrics.ObserveHistogram("serve.episodes.wall_ns", ep.Wall.Nanoseconds())
	if t.budget > 0 {
		metrics.ObserveHistogram("serve.episodes.budget_pct", int64(ep.BudgetRatio*100))
	}
}

// Completed returns the number of closed episodes.
func (t *EpisodeTracker) Completed() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.completed
}

// Summary snapshots the tracker's full history. OpenWall is measured
// against time.Now for an in-progress episode.
func (t *EpisodeTracker) Summary() EpisodeSummary {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := EpisodeSummary{
		Completed:        t.completed,
		Faults:           t.faults,
		MergedFaults:     t.merged,
		Open:             t.open,
		TotalDowntime:    t.totalDowntime,
		TotalDownSteps:   t.totalDownSteps,
		MaxWall:          t.maxWall,
		MaxSteps:         t.maxSteps,
		WorstBudgetRatio: t.worstRatio,
		BudgetSteps:      t.budget,
	}
	if t.open {
		s.OpenKind = t.openKind
		s.OpenFaults = t.openFaults
		s.OpenWall = now.Sub(t.openStart)
	}
	if t.completed > 0 {
		s.MTTR = time.Duration(int64(t.totalDowntime) / t.completed)
		s.MTTRSteps = float64(t.totalDownSteps) / float64(t.completed)
	}
	if len(t.byKind) > 0 {
		s.FaultsByKind = make(map[string]int64, len(t.byKind))
		for k, v := range t.byKind {
			s.FaultsByKind[k] = v
		}
	}
	if t.haveLast {
		ep := t.last
		s.Last = &ep
	}
	return s
}
