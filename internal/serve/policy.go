package serve

import (
	"fmt"
	"math"
	"strings"

	"dynalloc/internal/fluid"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// Policy is the online admission counterpart of rules.Rule: where a
// Rule picks a *position* of a normalized load vector, a Policy picks
// an actual *bin* of a live Store by probing loads lock-free. The
// shipped policies realize exactly the paper's insertion rules —
// ABKU[d], ADAP(x) and the (1+beta)-choice mixture — and share their
// parameter types (rules.Thresholds) with the offline code, so one
// threshold sequence configures the simulator, the fluid baseline and
// the service identically.
//
// Implementations must be immutable after construction; workers obtain
// an independent copy through Clone (the serve-side mirror of
// rules.CloneForWorker), so no mutable rule state is ever shared.
type Policy interface {
	// Name identifies the policy, matching the rules package naming
	// ("ABKU[2]", "ADAP(1,2,...)", "Mixed(0.50)").
	Name() string
	// Pick selects the destination bin for one ball, drawing probe
	// positions (and, for mixtures, coins) from r and reading live
	// loads from st. It returns the chosen bin and the number of
	// probes consumed.
	Pick(st *Store, r *rng.RNG) (bin, probes int)
	// Clone returns an independent copy for a new worker.
	Clone() Policy
	// FluidModel returns the fluid-limit model of this insertion rule
	// under the given departure scenario, used by the recovery detector
	// to predict the typical (stationary) maximum load.
	FluidModel(sc process.Scenario, cap int) *fluid.Model
}

// BatchPolicy is the batch-capable extension of Policy: PickBatch
// fills bins with one destination per entry, drawing randomness in
// exactly the order len(bins) sequential Pick calls would — stream for
// stream, the batch lane is choice-identical to the per-ball lane, not
// merely distribution-equal — and returns the total probe count.
// Implementations must not allocate: PickBatch sits on the zero-alloc
// admission hot path gated by the TestAllocBudget tier. All shipped
// policies implement BatchPolicy; callers type-assert once and fall
// back to per-ball Pick calls for policies that do not.
type BatchPolicy interface {
	Policy
	PickBatch(st *Store, r *rng.RNG, bins []int) (probes int)
}

// maxAdmissionProbes caps a single admission's probe loop, mirroring
// rules.maxAdaptiveProbes: a defense against mis-specified thresholds,
// not a semantic limit.
const maxAdmissionProbes = 1 << 20

// adapPolicy is ADAP(x) on live bins: probe uniform bins, track the
// least loaded bin seen, place the ball at probe M once x_l <= M where
// l is that bin's load. With x ≡ d this is ABKU[d].
type adapPolicy struct {
	x    rules.Thresholds
	name string
}

// NewADAPPolicy returns the online ADAP(x) admission policy. The
// threshold sequence is cloned per worker via rules.CloneThresholds.
func NewADAPPolicy(x rules.Thresholds) Policy {
	return &adapPolicy{x: rules.CloneThresholds(x), name: fmt.Sprintf("ADAP(%s)", x.String())}
}

// NewABKUPolicy returns the online ABKU[d] admission policy: probe d
// uniform bins and place the ball in the least loaded.
func NewABKUPolicy(d int) Policy {
	if d < 1 {
		panic("serve: ABKU needs d >= 1")
	}
	name := fmt.Sprintf("ABKU[%d]", d)
	if d == 1 {
		name = "Uniform"
	}
	return &adapPolicy{x: rules.ConstThresholds(d), name: name}
}

func (p *adapPolicy) Name() string { return p.name }

func (p *adapPolicy) Pick(st *Store, r *rng.RNG) (int, int) {
	best, bestLoad := -1, 0
	for m := 1; m <= maxAdmissionProbes; m++ {
		b := r.Intn(st.n)
		if l := st.Load(b); best < 0 || l < bestLoad {
			best, bestLoad = b, l
		}
		if p.x.X(bestLoad) <= m {
			return best, m
		}
	}
	panic(fmt.Sprintf("serve: %s did not place a ball within %d probes (thresholds too large?)", p.name, maxAdmissionProbes))
}

// PickBatch implements BatchPolicy. Each entry runs the same probe
// loop as Pick against the live loads (direct method call, so no
// interface dispatch or allocation per ball); within one batch, later
// entries do not see earlier entries' admissions — the bounded
// staleness every concurrent d-choice deployment already has.
func (p *adapPolicy) PickBatch(st *Store, r *rng.RNG, bins []int) int {
	probes := 0
	for i := range bins {
		b, m := p.Pick(st, r)
		bins[i] = b
		probes += m
	}
	return probes
}

func (p *adapPolicy) Clone() Policy {
	return &adapPolicy{x: rules.CloneThresholds(p.x), name: p.name}
}

func (p *adapPolicy) FluidModel(sc process.Scenario, cap int) *fluid.Model {
	return fluid.NewModel(rules.CloneThresholds(p.x), sc, cap)
}

// mixedPolicy is the (1+beta)-choice rule on live bins: with
// probability beta place with two probes (ABKU[2]), otherwise with one.
// The coin is drawn before any probe, matching the draw order of
// rules.Mixed so single-worker runs consume randomness identically.
type mixedPolicy struct {
	beta float64
	name string
}

// NewMixedPolicy returns the online (1+beta)-choice admission policy.
// It panics unless beta is in [0, 1].
func NewMixedPolicy(beta float64) Policy {
	if beta < 0 || beta > 1 || math.IsNaN(beta) {
		panic("serve: Mixed beta out of [0,1]")
	}
	return &mixedPolicy{beta: beta, name: fmt.Sprintf("Mixed(%.2f)", beta)}
}

func (p *mixedPolicy) Name() string { return p.name }

func (p *mixedPolicy) Pick(st *Store, r *rng.RNG) (int, int) {
	two := r.Float64() < p.beta
	b1 := r.Intn(st.n)
	if !two {
		return b1, 1
	}
	b2 := r.Intn(st.n)
	if st.Load(b2) < st.Load(b1) {
		return b2, 2
	}
	return b1, 2
}

// PickBatch implements BatchPolicy; see adapPolicy.PickBatch.
func (p *mixedPolicy) PickBatch(st *Store, r *rng.RNG, bins []int) int {
	probes := 0
	for i := range bins {
		b, m := p.Pick(st, r)
		bins[i] = b
		probes += m
	}
	return probes
}

func (p *mixedPolicy) Clone() Policy { c := *p; return &c }

func (p *mixedPolicy) FluidModel(sc process.Scenario, cap int) *fluid.Model {
	return fluid.NewMixedModel(p.beta, sc, cap)
}

// ParsePolicy builds a policy from a compact spec string, as used by
// CLI flags and the bench suite:
//
//	"abku:2"            ABKU[2]  (also "abku2"; "uniform" == "abku:1")
//	"adap:1,2,2,3"      ADAP with the given threshold prefix
//	"mixed:0.5"         (1+beta)-choice with beta = 0.5
func ParsePolicy(spec string) (Policy, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "uniform":
		return NewABKUPolicy(1), nil
	case "abku":
		d := 2
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%d", &d); err != nil {
				return nil, fmt.Errorf("serve: bad abku spec %q: %v", spec, err)
			}
		}
		if d < 1 {
			return nil, fmt.Errorf("serve: abku needs d >= 1, got %d", d)
		}
		return NewABKUPolicy(d), nil
	case "adap":
		if arg == "" {
			return nil, fmt.Errorf("serve: adap spec needs thresholds, e.g. adap:1,2,2")
		}
		var xs rules.SliceThresholds
		for _, f := range strings.Split(arg, ",") {
			var x int
			if _, err := fmt.Sscanf(f, "%d", &x); err != nil {
				return nil, fmt.Errorf("serve: bad adap threshold %q in %q", f, spec)
			}
			if x < 1 {
				return nil, fmt.Errorf("serve: adap thresholds must be >= 1, got %d", x)
			}
			xs = append(xs, x)
		}
		for i := 1; i < len(xs); i++ {
			if xs[i] < xs[i-1] {
				return nil, fmt.Errorf("serve: adap thresholds must be nondecreasing in %q", spec)
			}
		}
		return NewADAPPolicy(xs), nil
	case "mixed":
		beta := 0.5
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%g", &beta); err != nil {
				return nil, fmt.Errorf("serve: bad mixed spec %q: %v", spec, err)
			}
		}
		if beta < 0 || beta > 1 {
			return nil, fmt.Errorf("serve: mixed beta must be in [0,1], got %g", beta)
		}
		return NewMixedPolicy(beta), nil
	}
	// Bare "abku2"-style shorthand.
	var d int
	if n, err := fmt.Sscanf(spec, "abku%d", &d); n == 1 && err == nil && d >= 1 {
		return NewABKUPolicy(d), nil
	}
	return nil, fmt.Errorf("serve: unknown policy spec %q (want abku:<d>, adap:<x1,x2,...>, mixed:<beta>, uniform)", spec)
}
