package serve

import (
	"fmt"
	"math"
	"sync"
	"time"

	"dynalloc/internal/core"
	"dynalloc/internal/fluid"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/metrics"
	"dynalloc/internal/process"
)

// Target is the recovery detector's definition of "typical state": the
// store has recovered once its maximum load is at most
// PredictedMax + Slack, where PredictedMax is the fluid-limit
// prediction of the stationary maximum load (the same baseline the
// offline experiments validate against — see internal/fluid). The
// paper guarantees the process reaches the typical state from an
// arbitrary start within O(m ln m) phases (Theorem 1, Scenario A);
// BudgetSteps carries that scale so dashboards and tests can compare
// the measured recovery against the theorem.
type Target struct {
	PredictedMax int     `json:"predicted_max"` // fluid-limit stationary max-load prediction
	Slack        int     `json:"slack"`         // allowed excess before the state counts as atypical
	BudgetSteps  float64 `json:"budget_steps"`  // Theorem 1 scale: m·ln(m/eps) with eps = 1/4
}

// MaxLoad returns the recovery threshold PredictedMax + Slack.
func (t Target) MaxLoad() int { return t.PredictedMax + t.Slack }

// NewTarget computes the recovery target for a store of n bins serving
// m balls under the given admission policy and departure scenario. It
// integrates the rule's fluid-limit model to its fixed point and reads
// off the predicted maximum load; the integration is O(cap^2) per step
// with cap = ceil(m/n)+14 levels and converges in well under a second
// for any realistic load factor.
func NewTarget(p Policy, sc process.Scenario, n, m, slack int) (Target, error) {
	if n < 1 || m < 1 {
		return Target{}, fmt.Errorf("serve: target needs n >= 1 and m >= 1, got n=%d m=%d", n, m)
	}
	if slack < 0 {
		return Target{}, fmt.Errorf("serve: target slack must be >= 0, got %d", slack)
	}
	rho := float64(m) / float64(n)
	cap := int(math.Ceil(rho)) + 14
	model := p.FluidModel(sc, cap)
	// Tolerance 1e-7 (not 1e-8): mixture laws plateau slightly above
	// 1e-8 from floating-point noise, and bin-count rounding swamps the
	// difference anyway.
	pf, err := model.FixedPoint(fluid.InitialBalanced(rho, cap), 0.05, 1e-7, 400000)
	if err != nil {
		return Target{}, fmt.Errorf("serve: fluid baseline for %s: %w", p.Name(), err)
	}
	return Target{
		PredictedMax: fluid.PredictedMaxLoad(pf, n),
		Slack:        slack,
		BudgetSteps:  core.Theorem1Bound(m, 0.25),
	}, nil
}

// Episode is one completed recovery: the store left the typical state
// (a crash, or a slow drift) and came back. Steps counts admissions
// (the service's phase clock), Wall is elapsed wall-clock time.
type Episode struct {
	Steps int64         `json:"steps"`
	Wall  time.Duration `json:"wall_ns"`
}

// Status is one detector observation of the store.
type Status struct {
	Steps        int64 `json:"steps"`         // store admission clock at the check
	MaxLoad      int   `json:"max_load"`      // current maximum bin load
	Gap          int   `json:"gap"`           // max load above fair share (loadvec.Gap)
	DeltaTypical int   `json:"delta_typical"` // path-coupling distance Delta to the balanced state
	PredictedMax int   `json:"predicted_max"` // fluid-limit stationary prediction
	TargetMax    int   `json:"target_max"`    // recovery threshold (predicted + slack)
	Total        int64 `json:"total"`         // balls in the store
	NonEmpty     int64 `json:"non_empty"`     // nonempty bins
	Recovered    bool  `json:"recovered"`
}

// Detector watches a Store converge to its typical state. Check
// snapshots the store (lock-free, O(n)), computes the distance-to-
// typical measures — maximum load against the fluid-limit prediction,
// the gap above fair share, and the path-coupling metric
// Delta(v, balanced) that Sections 4 and 5 contract — and tracks
// recovered/disrupted transitions. Each not-recovered -> recovered
// transition closes an Episode, recorded in the "serve.recovery.steps"
// and "serve.recovery.wall_ns" histograms; the current state is
// published through the "serve.recovered" gauge and friends (see
// docs/SERVING.md for the full metric list).
//
// All methods are safe for concurrent use. Overlapping Check calls are
// coalesced: a call that finds another check in flight returns the
// previous observation instead of snapshotting again, so a wall-clock
// ticker and a step-cadence driver can share one detector without
// stacking O(n) scans.
type Detector struct {
	store  *Store
	target Target

	checkMu sync.Mutex // serializes the snapshot+transition critical section

	mu          sync.Mutex // guards everything below
	recovered   bool
	disruptedAt int64     // store step clock when the current outage began
	disruptedTS time.Time // wall clock when the current outage began
	last        Status
	haveLast    bool
	lastEpisode Episode
	episodes    int64
	checks      int64
	tracker     *EpisodeTracker // optional; see AttachEpisodes
}

// NewDetector returns a detector for st with the given target. The
// store starts in the "disrupted" state: the first Check that observes
// a typical state closes the initial episode (recovery from startup).
func NewDetector(st *Store, target Target) *Detector {
	return &Detector{
		store:       st,
		target:      target,
		disruptedAt: st.Allocs(),
		disruptedTS: time.Now(),
	}
}

// Target returns the detector's recovery target.
func (d *Detector) Target() Target { return d.target }

// Recovered reports whether the last observation was typical.
func (d *Detector) Recovered() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recovered
}

// Last returns the most recent observation, if any check has run.
func (d *Detector) Last() (Status, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last, d.haveLast
}

// LastEpisode returns the most recently completed recovery episode and
// the count of completed episodes (0 means none yet).
func (d *Detector) LastEpisode() (Episode, int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastEpisode, d.episodes
}

// AttachEpisodes connects an EpisodeTracker to the detector: every
// NoteFault/MarkDisrupted call and every drift-opened outage is
// reported to the tracker as a fault, and every recovery closes the
// tracker's open episode. If the detector is currently disrupted
// (which includes a freshly constructed detector — the store starts
// atypical), the tracker opens a "startup" episode stamped at the
// outage's origin, so boot-time recovery is the first episode.
func (d *Detector) AttachEpisodes(tr *EpisodeTracker) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracker = tr
	if tr != nil && !d.recovered {
		tr.noteFault("startup", d.disruptedAt, d.disruptedTS)
	}
}

// Episodes returns the attached tracker, or nil.
func (d *Detector) Episodes() *EpisodeTracker {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker
}

// MarkDisrupted forces the detector into the not-recovered state,
// stamping the outage at the store's current step clock. Call it right
// after a fault injection (Store.Crash) so the following recovery is
// measured from the injection, not from the next Check. It is
// NoteFault with the kind "manual".
func (d *Detector) MarkDisrupted() { d.NoteFault("manual") }

// NoteFault records a fault of the given kind (the chaos injector
// passes its catastrophe names; /crash passes "manual"). If the store
// is currently recovered this opens a new outage at the store's
// current step clock. If it is already disrupted the fault MERGES into
// the ongoing outage: the origin stamp is kept, so the eventual
// episode is measured from the first fault — overlapping faults are
// one episode, the self-stabilization unit of account.
func (d *Detector) NoteFault(kind string) {
	now := time.Now()
	steps := d.store.Allocs()
	d.mu.Lock()
	if d.recovered {
		d.recovered = false
		d.disruptedAt = steps
		d.disruptedTS = now
	}
	if d.tracker != nil {
		d.tracker.noteFault(kind, steps, now)
	}
	d.mu.Unlock()
	metrics.SetGauge("serve.recovered", 0)
}

// Check snapshots the store and updates the recovery state, returning
// the observation. If another Check is already in flight the cached
// observation is returned instead (see the type comment).
func (d *Detector) Check() Status {
	if !d.checkMu.TryLock() {
		d.mu.Lock()
		s := d.last
		d.mu.Unlock()
		return s
	}
	defer d.checkMu.Unlock()

	steps := d.store.Allocs()
	v := d.store.Snapshot()
	m := v.Total()
	s := Status{
		Steps:        steps,
		MaxLoad:      v.MaxLoad(),
		Gap:          v.Gap(),
		PredictedMax: d.target.PredictedMax,
		TargetMax:    d.target.MaxLoad(),
		Total:        int64(m),
		NonEmpty:     int64(v.NonEmpty()),
	}
	if v.N() > 0 {
		s.DeltaTypical = v.Delta(loadvec.Balanced(v.N(), m))
	}
	s.Recovered = s.MaxLoad <= d.target.MaxLoad()

	now := time.Now()
	d.mu.Lock()
	d.checks++
	switch {
	case !d.recovered && s.Recovered:
		ep := Episode{Steps: steps - d.disruptedAt, Wall: now.Sub(d.disruptedTS)}
		d.lastEpisode = ep
		d.episodes++
		d.recovered = true
		metrics.ObserveHistogram("serve.recovery.steps", ep.Steps)
		metrics.ObserveHistogram("serve.recovery.wall_ns", ep.Wall.Nanoseconds())
		if d.tracker != nil {
			d.tracker.noteRecovered(steps, now)
		}
	case d.recovered && !s.Recovered:
		// The store drifted (or was crashed) out of the typical band
		// between checks: open a new outage at this observation.
		d.recovered = false
		d.disruptedAt = steps
		d.disruptedTS = now
		if d.tracker != nil {
			d.tracker.noteFault("drift", steps, now)
		}
	}
	d.last = s
	d.haveLast = true
	d.mu.Unlock()

	metrics.AddCounter("serve.detector.checks", 1)
	metrics.SetGauge("serve.recovered", boolGauge(s.Recovered))
	metrics.SetGauge("serve.max_load", float64(s.MaxLoad))
	metrics.SetGauge("serve.gap", float64(s.Gap))
	metrics.SetGauge("serve.delta_typical", float64(s.DeltaTypical))
	metrics.SetGauge("serve.predicted_max_load", float64(s.PredictedMax))
	metrics.SetGauge("serve.target_max_load", float64(s.TargetMax))
	metrics.SetGauge("serve.recovery.budget_steps", d.target.BudgetSteps)
	return s
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
