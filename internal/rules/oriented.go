package rules

import (
	"fmt"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
)

// CheckRightOriented tests Definition 3.4 on one triple (v, u, s):
// with i = D(v, rs) and i' = D(u, Phi_D(rs)), right-orientation demands
//
//	i < i'  =>  v[i]  < u[i]
//	i > i'  =>  v[i'] > u[i'].
//
// It returns a descriptive error on violation. Together with VerifyRule
// this is the executable form of Lemma 3.4.
func CheckRightOriented(rule Rule, v, u loadvec.Vector, s *Sample) error {
	i := rule.Choose(v, s)
	ip := rule.Choose(u, rule.Phi(s))
	switch {
	case i < ip && v[i] >= u[i]:
		return fmt.Errorf("rules: %s not right-oriented: D(v)=%d < D(u)=%d but v[%d]=%d >= u[%d]=%d (v=%v u=%v)",
			rule.Name(), i, ip, i, v[i], i, u[i], v, u)
	case i > ip && v[ip] <= u[ip]:
		return fmt.Errorf("rules: %s not right-oriented: D(v)=%d > D(u)=%d but v[%d]=%d <= u[%d]=%d (v=%v u=%v)",
			rule.Name(), i, ip, ip, v[ip], ip, u[ip], v, u)
	}
	return nil
}

// CheckLemma33 verifies the conclusion of Lemma 3.3 on one triple:
// inserting one ball into v and u with the shared sample must not
// increase ||v - u||_1.
func CheckLemma33(rule Rule, v, u loadvec.Vector, s *Sample) error {
	before := v.L1(u)
	v0 := v.Clone()
	u0 := u.Clone()
	v0.Add(rule.Choose(v, s))
	u0.Add(rule.Choose(u, rule.Phi(s)))
	after := v0.L1(u0)
	if after > before {
		return fmt.Errorf("rules: %s violates Lemma 3.3: ||v-u||_1 grew %d -> %d (v=%v u=%v)",
			rule.Name(), before, after, v, u)
	}
	return nil
}

// VerifyRule Monte-Carlo-checks right-orientation (Definition 3.4) and
// the Lemma 3.3 contraction on `trials` random pairs from Omega_m with n
// bins. It returns the first violation found, or nil. This is the E9
// experiment and is also run as a test for every shipped rule.
func VerifyRule(rule Rule, n, m, trials int, r *rng.RNG) error {
	for trial := 0; trial < trials; trial++ {
		v := loadvec.Random(n, m, r)
		u := loadvec.Random(n, m, r)
		s := NewSample(n, r)
		if err := CheckRightOriented(rule, v, u, s); err != nil {
			return err
		}
		if err := CheckLemma33(rule, v, u, s); err != nil {
			return err
		}
	}
	return nil
}
