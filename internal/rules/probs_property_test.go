package rules

import (
	"fmt"
	"math"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
	"dynalloc/internal/stats"
)

// shippedExactRules is every rule family the repo ships that exposes
// its exact choice distribution, at a spread of parameters.
func shippedExactRules() []ExactRule {
	return []ExactRule{
		NewUniform(),
		NewABKU(2),
		NewABKU(3),
		NewAdaptive(SliceThresholds{1, 1, 2, 3, 5, 8}),
		NewAdaptive(ConstThresholds(4)),
		NewMixed(0.25),
		NewMixed(0.75),
		MinLoad{},
	}
}

// TestShippedRulesAllocationProbMonotoneInLoad is the probability-level
// form of right-orientation (Definition 3.2): on a normalized load
// vector, a strictly heavier bin must never be the likelier allocation
// target — p[i] <= p[j] whenever i < j and v[i] > v[j]. (Positions
// with equal loads are unconstrained: the position, not the load,
// breaks their tie.) Checked on randomized vectors across sizes and
// fills, along with p being a probability distribution at all.
func TestShippedRulesAllocationProbMonotoneInLoad(t *testing.T) {
	const trials = 300
	const eps = 1e-9
	for _, rule := range shippedExactRules() {
		t.Run(rule.Name(), func(t *testing.T) {
			r := rng.New(0x0D3F)
			for trial := 0; trial < trials; trial++ {
				n := 2 + r.Intn(12)
				m := r.Intn(4*n + 1)
				v := loadvec.Random(n, m, r)
				p := rule.ChoiceProbs(v)
				if len(p) != n {
					t.Fatalf("ChoiceProbs(%v) has %d entries, want %d", v, len(p), n)
				}
				sum := 0.0
				for i, pi := range p {
					if pi < -eps || pi > 1+eps {
						t.Fatalf("p[%d] = %g out of [0,1] on v=%v", i, pi, v)
					}
					sum += pi
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("probabilities sum to %g on v=%v (p=%v)", sum, v, p)
				}
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						if v[i] > v[j] && p[i] > p[j]+eps {
							t.Fatalf("allocation probability increases with load on v=%v: p[%d]=%g > p[%d]=%g (loads %d > %d)",
								v, i, p[i], j, p[j], v[i], v[j])
						}
					}
				}
			}
		})
	}
}

// TestChooseMatchesChoiceProbs cross-checks the sampling path against
// the exact path: the empirical distribution of Choose over fresh
// Samples must pass a chi-square goodness-of-fit test against
// ChoiceProbs on the same vector. This pins the two implementations of
// every rule (the DP and the probe loop) to each other.
func TestChooseMatchesChoiceProbs(t *testing.T) {
	const draws = 20000
	vectors := []loadvec.Vector{
		loadvec.FromLoads([]int{4, 2, 2, 1, 1, 0, 0, 0}),
		loadvec.FromLoads([]int{7, 7, 3, 1}),
		loadvec.FromLoads([]int{1, 1, 1, 1, 1, 1}),
	}
	for _, rule := range shippedExactRules() {
		for vi, v := range vectors {
			t.Run(fmt.Sprintf("%s/v%d", rule.Name(), vi), func(t *testing.T) {
				r := rng.New(0xC401CE + uint64(vi))
				want := rule.ChoiceProbs(v)
				counts := make([]int, v.N())
				for d := 0; d < draws; d++ {
					counts[rule.Choose(v, NewSample(v.N(), r))]++
				}
				stat, df, p := stats.ChiSquareGOF(counts, want)
				if df >= 1 && p < 1e-3 {
					t.Errorf("Choose disagrees with ChoiceProbs on v=%v: chi2=%.2f df=%d p=%.2g\ncounts=%v\nwant=%v",
						v, stat, df, p, counts, want)
				}
				if df < 1 { // deterministic rule: every draw must hit the one cell
					for i, c := range counts {
						if c > 0 && want[i] == 0 {
							t.Errorf("deterministic rule hit zero-probability position %d on v=%v", i, v)
						}
					}
				}
			})
		}
	}
}
