package rules_test

import (
	"fmt"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rules"
)

// ABKU[d] probes d bins and takes the least loaded: on a normalized
// vector that is the largest probed position.
func ExampleNewABKU() {
	rule := rules.NewABKU(2)
	v := loadvec.Vector{5, 3, 1, 0}
	s := rules.Fixed(4, []int{1, 3}) // the two probes
	fmt.Println(rule.Name(), "places the ball at position", rule.Choose(v, s))
	// Output: ABKU[2] places the ball at position 3
}

// ADAP(x) keeps probing until the best bin seen clears its load's
// threshold: an empty bin (x_0 = 1) is taken immediately.
func ExampleNewAdaptive() {
	rule := rules.NewAdaptive(rules.SliceThresholds{1, 3})
	v := loadvec.Vector{4, 2, 0}
	fmt.Println(rule.Choose(v, rules.Fixed(3, []int{2})))
	fmt.Println(rule.Choose(v, rules.Fixed(3, []int{0, 1, 0})))
	// Output:
	// 2
	// 1
}

// Every shipped rule satisfies Definition 3.4; the checker is the
// executable Lemma 3.4.
func ExampleCheckRightOriented() {
	v := loadvec.Vector{3, 1}
	u := loadvec.Vector{2, 2}
	err := rules.CheckRightOriented(rules.NewABKU(2), v, u, rules.Fixed(2, []int{0, 1}))
	fmt.Println(err)
	// Output: <nil>
}
