package rules

import (
	"sync"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
)

// TestSharedRuleConcurrent exercises the package's concurrency
// contract under -race: one rule value shared by many goroutines, each
// drawing its own Samples from its own rng stream. Any write to rule
// state inside Choose would trip the race detector here.
func TestSharedRuleConcurrent(t *testing.T) {
	shared := []Rule{
		NewABKU(2),
		NewUniform(),
		NewAdaptive(SliceThresholds{1, 2, 2, 3}),
		NewMixed(0.5),
		MinLoad{},
	}
	const workers = 8
	const steps = 2000
	v := loadvec.Balanced(64, 128)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.NewStream(11, uint64(w))
			for i := 0; i < steps; i++ {
				rule := shared[i%len(shared)]
				pos := rule.Choose(v, NewSample(v.N(), r))
				if pos < 0 || pos >= v.N() {
					t.Errorf("worker %d: %s chose position %d", w, rule.Name(), pos)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCloneForWorker covers the clone-per-worker pattern callers should
// use for rules of unknown provenance.
func TestCloneForWorker(t *testing.T) {
	for _, rule := range []Rule{NewABKU(3), NewAdaptive(SliceThresholds{1, 2}), NewMixed(0.25), MinLoad{}} {
		clone := CloneForWorker(rule)
		if clone.Name() != rule.Name() {
			t.Fatalf("clone of %s renamed to %s", rule.Name(), clone.Name())
		}
		if rule.MaxProbes(64, 8) != clone.MaxProbes(64, 8) {
			t.Fatalf("%s: clone MaxProbes %d != %d", rule.Name(), clone.MaxProbes(64, 8), rule.MaxProbes(64, 8))
		}
		// Shipped rules implement Cloner, so the clone is a distinct
		// value for pointer-shaped rules.
		if _, ok := rule.(Cloner); !ok {
			t.Fatalf("%s does not implement Cloner", rule.Name())
		}
	}
	// A rule without Cloner is passed through unchanged.
	br := badRule{}
	if CloneForWorker(br) != Rule(br) {
		t.Fatal("non-Cloner rule was not passed through")
	}
}

// TestCloneIsolation: mutating a threshold slice after cloning must not
// leak into the clone (or vice versa).
func TestCloneIsolation(t *testing.T) {
	xs := SliceThresholds{1, 2, 2}
	orig := NewAdaptive(xs)
	clone := CloneForWorker(orig).(*Adaptive)

	// The clone's thresholds are an independent copy.
	cx := clone.x.(SliceThresholds)
	cx[1] = 99
	if got := orig.x.X(1); got != 2 {
		t.Fatalf("mutating the clone's thresholds changed the original: x_1 = %d", got)
	}

	choose := func(r Rule) int {
		v := loadvec.Balanced(16, 32)
		return r.Choose(v, Fixed(16, []int{5, 3, 7, 1, 2, 9, 11, 0}))
	}
	if a, b := choose(orig), choose(NewAdaptive(SliceThresholds{1, 2, 2})); a != b {
		t.Fatalf("original drifted after clone mutation: %d vs %d", a, b)
	}
}

func TestCloneThresholds(t *testing.T) {
	s := SliceThresholds{1, 2, 3}
	c := CloneThresholds(s).(SliceThresholds)
	c[0] = 42
	if s[0] != 1 {
		t.Fatal("CloneThresholds aliased the slice")
	}
	if CloneThresholds(ConstThresholds(2)) != ConstThresholds(2) {
		t.Fatal("ConstThresholds must clone to itself")
	}
}
