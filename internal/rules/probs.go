package rules

import "dynalloc/internal/loadvec"

// ExactRule is a Rule that can report its exact choice distribution on a
// given state, enabling exact transition-matrix construction for the
// mixing-time experiments (E10). Both shipped rule families implement it.
type ExactRule interface {
	Rule
	// ChoiceProbs returns p[i] = Pr[D(v, RS) = i] over positions i.
	ChoiceProbs(v loadvec.Vector) []float64
}

// ChoiceProbs implements ExactRule for ADAP(x)/ABKU[d]/Uniform via a
// forward dynamic program over (probe count M, prefix-maximum position).
//
// At probe M the alive states are the possible prefix maxima pmax that
// have not yet satisfied x_{v[pmax]} <= M' for any M' <= M. Each new
// probe b is uniform on [0, n); the prefix maximum either stays (with
// probability (pmax+1)/n) or jumps to any larger position (1/n each).
// All probability mass stops by M = x_{v[0]} because at that point every
// possible load satisfies its threshold.
func (a *Adaptive) ChoiceProbs(v loadvec.Vector) []float64 {
	n := v.N()
	stop := make([]float64, n)
	alive := make([]float64, n) // mass by prefix-max position, before any probe
	// First probe: pmax = b uniform.
	for b := 0; b < n; b++ {
		alive[b] += 1 / float64(n)
	}
	limit := a.x.X(v.MaxLoad())
	for m := 1; m <= limit; m++ {
		// Stop check at probe m.
		anyAlive := false
		for p := 0; p < n; p++ {
			if alive[p] == 0 {
				continue
			}
			if a.x.X(v[p]) <= m {
				stop[p] += alive[p]
				alive[p] = 0
			} else {
				anyAlive = true
			}
		}
		if !anyAlive {
			break
		}
		// Next probe: evolve the prefix maximum.
		next := make([]float64, n)
		for p := 0; p < n; p++ {
			if alive[p] == 0 {
				continue
			}
			next[p] += alive[p] * float64(p+1) / float64(n)
			share := alive[p] / float64(n)
			for q := p + 1; q < n; q++ {
				next[q] += share
			}
		}
		alive = next
	}
	return stop
}

// ChoiceProbs implements ExactRule for the omniscient MinLoad rule.
func (MinLoad) ChoiceProbs(v loadvec.Vector) []float64 {
	p := make([]float64, v.N())
	p[v.N()-1] = 1
	return p
}
