package rules

import (
	"fmt"

	"dynalloc/internal/loadvec"
)

// Mixed is the (1+beta)-choice rule studied by Mitzenmacher's line of
// work: with probability beta the ball is placed with ABKU[2] (the less
// loaded of two probes), otherwise with a single uniform probe. It
// interpolates between Uniform (beta = 0) and ABKU[2] (beta = 1) and is
// the canonical "how much choice is enough?" ablation for the recovery
// experiments.
//
// Right-orientation (Definition 3.4): the sample carries the coin, so
// both coupled copies see the same coin; conditioned on it the rule is
// ABKU[1] or ABKU[2], each right-oriented by Lemma 3.4, and the defining
// inequalities only ever compare executions with equal coins. Phi is the
// identity.
type Mixed struct {
	beta float64
	one  *Adaptive
	two  *Adaptive
	name string
}

// NewMixed returns the (1+beta)-choice rule. It panics unless beta is in
// [0, 1].
func NewMixed(beta float64) *Mixed {
	if beta < 0 || beta > 1 {
		panic("rules: Mixed beta out of [0,1]")
	}
	return &Mixed{
		beta: beta,
		one:  NewABKU(1),
		two:  NewABKU(2),
		name: fmt.Sprintf("Mixed(%.2f)", beta),
	}
}

// Name implements Rule.
func (mx *Mixed) Name() string { return mx.name }

// Beta returns the two-choice probability.
func (mx *Mixed) Beta() float64 { return mx.beta }

// Choose implements Rule.
func (mx *Mixed) Choose(v loadvec.Vector, s *Sample) int {
	if s.Coin(0) < mx.beta {
		return mx.two.Choose(v, s)
	}
	return mx.one.Choose(v, s)
}

// Phi implements Rule (identity, as for all rules in the paper).
func (mx *Mixed) Phi(s *Sample) *Sample { return s }

// Clone implements Cloner: the two branch rules are cloned along with
// the mixture, so the copy shares no state with the receiver.
func (mx *Mixed) Clone() Rule {
	return &Mixed{
		beta: mx.beta,
		one:  mx.one.Clone().(*Adaptive),
		two:  mx.two.Clone().(*Adaptive),
		name: mx.name,
	}
}

// MaxProbes implements Rule.
func (mx *Mixed) MaxProbes(n, maxLoad int) int { return 2 }

// ChoiceProbs implements ExactRule as the beta-mixture of the exact
// distributions of the two branches.
func (mx *Mixed) ChoiceProbs(v loadvec.Vector) []float64 {
	p1 := mx.one.ChoiceProbs(v)
	p2 := mx.two.ChoiceProbs(v)
	out := make([]float64, len(p1))
	for i := range out {
		out[i] = (1-mx.beta)*p1[i] + mx.beta*p2[i]
	}
	return out
}
