package rules

import (
	"math"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
)

func TestMixedDegenerateEndpointsMatch(t *testing.T) {
	// beta = 0 behaves like Uniform, beta = 1 like ABKU[2], on identical
	// sample transcripts.
	v := loadvec.Vector{3, 2, 1, 0}
	r := rng.New(1)
	for trial := 0; trial < 2000; trial++ {
		s := NewSample(4, r)
		m0 := NewMixed(0).Choose(v, s)
		u := NewUniform().Choose(v, s)
		if m0 != u {
			t.Fatalf("Mixed(0) chose %d, Uniform chose %d", m0, u)
		}
		m1 := NewMixed(1).Choose(v, s)
		d2 := NewABKU(2).Choose(v, s)
		if m1 != d2 {
			t.Fatalf("Mixed(1) chose %d, ABKU[2] chose %d", m1, d2)
		}
	}
}

func TestMixedRightOriented(t *testing.T) {
	r := rng.New(2)
	for _, beta := range []float64{0, 0.25, 0.5, 0.9, 1} {
		mx := NewMixed(beta)
		for _, nm := range [][2]int{{3, 6}, {6, 12}} {
			if err := VerifyRule(mx, nm[0], nm[1], 1500, r); err != nil {
				t.Errorf("beta=%.2f: %v", beta, err)
			}
		}
	}
}

func TestMixedChoiceProbs(t *testing.T) {
	v := loadvec.Vector{4, 2, 1, 0, 0}
	beta := 0.3
	mx := NewMixed(beta)
	p := mx.ChoiceProbs(v)
	p1 := NewABKU(1).ChoiceProbs(v)
	p2 := NewABKU(2).ChoiceProbs(v)
	sum := 0.0
	for i := range p {
		want := 0.7*p1[i] + 0.3*p2[i]
		if math.Abs(p[i]-want) > 1e-12 {
			t.Fatalf("pos %d: %v, want %v", i, p[i], want)
		}
		sum += p[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v", sum)
	}
}

func TestMixedChoiceProbsMatchMonteCarlo(t *testing.T) {
	v := loadvec.Vector{3, 1, 1, 0}
	mx := NewMixed(0.6)
	want := mx.ChoiceProbs(v)
	r := rng.New(3)
	const draws = 300000
	counts := make([]int, v.N())
	for i := 0; i < draws; i++ {
		counts[mx.Choose(v, NewSample(v.N(), r))]++
	}
	for pos := range v {
		got := float64(counts[pos]) / draws
		if math.Abs(got-want[pos]) > 0.005 {
			t.Fatalf("pos %d: MC %.4f vs exact %.4f", pos, got, want[pos])
		}
	}
}

func TestMixedPanicsOnBadBeta(t *testing.T) {
	for _, beta := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("beta=%v accepted", beta)
				}
			}()
			NewMixed(beta)
		}()
	}
}

func TestSampleCoinMemoized(t *testing.T) {
	s := NewSample(4, rng.New(5))
	a := s.Coin(3)
	if a < 0 || a >= 1 {
		t.Fatalf("coin out of range: %v", a)
	}
	if b := s.Coin(3); b != a {
		t.Fatal("coin changed between reads")
	}
	// Coins and positions draw from the same RNG but are memoized
	// independently; interleaved access stays consistent.
	p := s.At(0)
	if s.At(0) != p || s.Coin(3) != a {
		t.Fatal("interleaved access broke memoization")
	}
}

func TestSampleCoinPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSample(2, rng.New(1)).Coin(-1)
}
