package rules

import (
	"math"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
)

func TestSampleLazyAndMemoized(t *testing.T) {
	s := NewSample(10, rng.New(1))
	a := s.At(5)
	if s.Len() != 6 {
		t.Fatalf("Len = %d after At(5)", s.Len())
	}
	if b := s.At(5); b != a {
		t.Fatalf("At(5) changed between calls: %d != %d", a, b)
	}
	if c := s.At(2); c < 0 || c >= 10 {
		t.Fatalf("At(2) = %d out of range", c)
	}
}

func TestSampleSharedView(t *testing.T) {
	// Two references to the same sample must agree element-wise no matter
	// the access order — this is what the coupled chains rely on.
	s := NewSample(100, rng.New(2))
	first := s.At(7)
	if s.At(7) != first || s.At(0) < 0 {
		t.Fatal("sample not consistent across accesses")
	}
}

func TestFixedSample(t *testing.T) {
	s := Fixed(5, []int{3, 1, 4})
	if s.At(0) != 3 || s.At(1) != 1 || s.At(2) != 4 {
		t.Fatal("Fixed sample returned wrong values")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Fixed sample beyond length did not panic")
		}
	}()
	s.At(3)
}

func TestNewSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSample(0, rng.New(1))
}

func TestUniformChoosesFirstProbe(t *testing.T) {
	u := NewUniform()
	v := loadvec.Vector{5, 3, 1, 0}
	for b := 0; b < 4; b++ {
		if got := u.Choose(v, Fixed(4, []int{b})); got != b {
			t.Fatalf("Uniform chose %d for probe %d", got, b)
		}
	}
	if u.Name() != "Uniform" {
		t.Fatalf("Name = %q", u.Name())
	}
}

func TestABKUChoosesLeastLoadedOfD(t *testing.T) {
	d2 := NewABKU(2)
	v := loadvec.Vector{5, 3, 1, 0}
	// Least loaded of probes = max position among first d.
	cases := []struct {
		seq  []int
		want int
	}{
		{[]int{0, 0}, 0},
		{[]int{0, 3}, 3},
		{[]int{3, 0}, 3},
		{[]int{2, 1}, 2},
	}
	for _, c := range cases {
		if got := d2.Choose(v, Fixed(4, c.seq)); got != c.want {
			t.Errorf("ABKU[2] on %v chose %d, want %d", c.seq, got, c.want)
		}
	}
	if d2.Name() != "ABKU[2]" {
		t.Fatalf("Name = %q", d2.Name())
	}
}

func TestABKUConsumesExactlyD(t *testing.T) {
	d3 := NewABKU(3)
	v := loadvec.Vector{2, 2, 1, 1, 0}
	s := NewSample(5, rng.New(3))
	d3.Choose(v, s)
	if s.Len() != 3 {
		t.Fatalf("ABKU[3] consumed %d probes, want 3", s.Len())
	}
}

func TestAdaptiveStopsEarlyOnEmptyBin(t *testing.T) {
	// x = (1, 3, 3, ...): a probe that hits an empty bin is accepted
	// immediately; otherwise three probes are needed.
	ad := NewAdaptive(SliceThresholds{1, 3})
	v := loadvec.Vector{4, 2, 0}
	if got := ad.Choose(v, Fixed(3, []int{2})); got != 2 {
		t.Fatalf("ADAP should accept the empty bin immediately, chose %d", got)
	}
	// First probe loaded: must continue to 3 probes; prefix max decides.
	if got := ad.Choose(v, Fixed(3, []int{0, 1, 0})); got != 1 {
		t.Fatalf("ADAP chose %d, want prefix max 1", got)
	}
	// Second probe empty bin: load 0 has x_0 = 1 <= 2, stops at probe 2.
	s := Fixed(3, []int{0, 2, 0})
	if got := ad.Choose(v, s); got != 2 {
		t.Fatalf("ADAP chose %d, want 2", got)
	}
}

func TestAdaptiveThresholdGoverns(t *testing.T) {
	// x = (2, 2): even an empty bin needs two probes.
	ad := NewAdaptive(SliceThresholds{2, 2})
	v := loadvec.Vector{1, 0}
	s := NewSample(2, rng.New(9))
	got := ad.Choose(v, s)
	if s.Len() != 2 {
		t.Fatalf("consumed %d probes, want 2", s.Len())
	}
	want := s.At(0)
	if s.At(1) > want {
		want = s.At(1)
	}
	if got != want {
		t.Fatalf("chose %d, want prefix max %d", got, want)
	}
}

func TestThresholdValidation(t *testing.T) {
	for _, xs := range []SliceThresholds{{0}, {2, 1}, {1, 2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewAdaptive(%v) did not panic", xs)
				}
			}()
			NewAdaptive(xs)
		}()
	}
}

func TestSliceThresholdsTail(t *testing.T) {
	xs := SliceThresholds{1, 2, 4}
	if xs.X(0) != 1 || xs.X(2) != 4 || xs.X(100) != 4 {
		t.Fatal("SliceThresholds indexing wrong")
	}
}

func TestABKUPanicsOnBadD(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewABKU(0)
}

func TestMinLoadRule(t *testing.T) {
	var ml MinLoad
	v := loadvec.Vector{3, 2, 1}
	if ml.Choose(v, nil) != 2 {
		t.Fatal("MinLoad must choose the last position")
	}
	p := ml.ChoiceProbs(v)
	if p[2] != 1 || p[0] != 0 || p[1] != 0 {
		t.Fatalf("MinLoad ChoiceProbs = %v", p)
	}
}

// TestRightOrientedAllRules is the executable Lemma 3.4: every shipped
// rule passes the Definition 3.4 checks and the Lemma 3.3 contraction on
// thousands of random state pairs.
func TestRightOrientedAllRules(t *testing.T) {
	r := rng.New(42)
	rulesUnderTest := []Rule{
		NewUniform(),
		NewABKU(2),
		NewABKU(3),
		NewABKU(5),
		NewAdaptive(SliceThresholds{1, 2, 4, 8}),
		NewAdaptive(SliceThresholds{2, 3}),
		MinLoad{},
	}
	for _, rule := range rulesUnderTest {
		for _, nm := range [][2]int{{2, 2}, {3, 7}, {5, 5}, {8, 24}} {
			if err := VerifyRule(rule, nm[0], nm[1], 800, r); err != nil {
				t.Errorf("%v", err)
			}
		}
	}
}

// TestNotRightOrientedDetected feeds the checker a deliberately
// non-monotone state-dependent rule and expects a violation, confirming
// the checker has teeth. (A rule that ignores the loads entirely always
// produces i == i' and is trivially right-oriented, so the bad rule must
// branch on a load value in a non-monotone way.)
func TestNotRightOrientedDetected(t *testing.T) {
	r := rng.New(43)
	bad := badRule{}
	found := false
	for trial := 0; trial < 5000 && !found; trial++ {
		v := loadvec.Random(4, 8, r)
		u := loadvec.Random(4, 8, r)
		s := NewSample(4, r)
		if CheckRightOriented(bad, v, u, s) != nil || CheckLemma33(bad, v, u, s) != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("checker failed to flag a non-right-oriented rule")
	}
}

// badRule probes two bins and branches on the parity of the first probe's
// load — a non-monotone dependence that violates Definition 3.4.
type badRule struct{}

func (badRule) Name() string { return "bad" }
func (badRule) Choose(v loadvec.Vector, s *Sample) int {
	if v[s.At(0)]%2 == 0 {
		return s.At(0)
	}
	return s.At(1)
}
func (badRule) Phi(s *Sample) *Sample  { return s }
func (badRule) MaxProbes(_, _ int) int { return 2 }

func TestChoiceProbsSumToOne(t *testing.T) {
	r := rng.New(44)
	exact := []ExactRule{NewUniform(), NewABKU(2), NewABKU(4), NewAdaptive(SliceThresholds{1, 2, 3}), MinLoad{}}
	for _, rule := range exact {
		for trial := 0; trial < 50; trial++ {
			v := loadvec.Random(5, 9, r)
			p := rule.ChoiceProbs(v)
			sum := 0.0
			for _, x := range p {
				if x < -1e-12 {
					t.Fatalf("%s: negative probability %v", rule.Name(), p)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s: ChoiceProbs sums to %v on %v", rule.Name(), sum, v)
			}
		}
	}
}

func TestChoiceProbsABKUClosedForm(t *testing.T) {
	// For ABKU[d], Pr[position p] = ((p+1)^d - p^d)/n^d.
	v := loadvec.Vector{4, 3, 2, 1, 0} // distinct loads: no tie subtleties
	for _, d := range []int{1, 2, 3} {
		p := NewABKU(d).ChoiceProbs(v)
		n := float64(v.N())
		for pos := range v {
			want := (math.Pow(float64(pos+1), float64(d)) - math.Pow(float64(pos), float64(d))) / math.Pow(n, float64(d))
			if math.Abs(p[pos]-want) > 1e-12 {
				t.Fatalf("ABKU[%d] pos %d: prob %v, want %v", d, pos, p[pos], want)
			}
		}
	}
}

// TestChoiceProbsMatchMonteCarlo cross-validates the DP against direct
// simulation of Choose for an adaptive rule with nontrivial thresholds.
func TestChoiceProbsMatchMonteCarlo(t *testing.T) {
	rule := NewAdaptive(SliceThresholds{1, 2, 4})
	v := loadvec.Vector{3, 2, 2, 1, 0, 0}
	want := rule.ChoiceProbs(v)
	r := rng.New(45)
	const draws = 300000
	counts := make([]int, v.N())
	for i := 0; i < draws; i++ {
		counts[rule.Choose(v, NewSample(v.N(), r))]++
	}
	for pos := range v {
		got := float64(counts[pos]) / draws
		if math.Abs(got-want[pos]) > 0.005 {
			t.Fatalf("pos %d: MC %.4f vs DP %.4f", pos, got, want[pos])
		}
	}
}

// TestAdaptiveProbeCapPanics: a threshold sequence too large to ever
// satisfy must fail loudly (panic at the probe cap) rather than hang.
func TestAdaptiveProbeCapPanics(t *testing.T) {
	ad := NewAdaptive(SliceThresholds{1 << 21})
	defer func() {
		if recover() == nil {
			t.Fatal("runaway probe loop did not panic")
		}
	}()
	ad.Choose(loadvec.Vector{1, 0}, NewSample(2, rng.New(1)))
}

func TestMaxProbes(t *testing.T) {
	if got := NewABKU(3).MaxProbes(10, 7); got != 3 {
		t.Fatalf("ABKU[3].MaxProbes = %d", got)
	}
	ad := NewAdaptive(SliceThresholds{1, 2, 4})
	if got := ad.MaxProbes(10, 5); got != 4 {
		t.Fatalf("ADAP MaxProbes = %d", got)
	}
}

func BenchmarkABKU2Choose(b *testing.B) {
	rule := NewABKU(2)
	v := loadvec.Random(1024, 1024, rng.New(1))
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rule.Choose(v, NewSample(v.N(), r))
	}
}
