// Package rules implements the insertion scheduling rules of the paper
// as right-oriented random functions (Section 3.2).
//
// A random function D from Omega to [n] is a quadruple (RS, IRS, D, D):
// a sample space RS, a sampler IRS, and a deterministic map D(v, rs).
// Definition 3.4 calls D *right-oriented* if there is a permutation
// Phi_D of RS such that, writing i = D(v, rs) and i' = D(u, Phi_D(rs)):
//
//	i < i'  implies  v[i]  < u[i], and
//	i > i'  implies  v[i'] > u[i'].
//
// (Positions index the common normalized order; larger position means
// smaller load.) Lemma 3.3 shows that inserting a ball into two states
// with a shared sample — one copy using rs, the other Phi_D(rs) — never
// increases ||v - u||_1. That single lemma is what lets the paper couple
// the insertion half of every ABKU[d] and ADAP(x) process at once, and
// Lemma 3.4 proves all of those rules are right-oriented with Phi_D the
// identity.
//
// Here RS is realized as a lazily-extended sequence of i.u.r. bin
// positions (Sample). Coupled chains pass the *same* Sample to both
// copies, which is exactly the "same rs" coupling of the paper.
//
// # Concurrency
//
// Every Rule shipped by this package — Adaptive (and its ABKU/Uniform
// constructors), Mixed, and MinLoad — is immutable after construction:
// Choose, Phi and MaxProbes never write rule state, so a single rule
// value may be shared by any number of goroutines. What is NOT safe to
// share is a *Sample: it memoizes draws in place and is single-step,
// single-goroutine state. Concurrent workers must each draw fresh
// Samples from their own *rng.RNG stream (rng.NewStream per worker).
//
// Callers that accept a Rule from outside this package should not rely
// on immutability: use CloneForWorker to hand each worker its own copy.
// Rules that carry mutable state must implement Cloner; the shipped
// rules implement it too (returning an independent copy), so the
// clone-per-worker pattern works uniformly.
package rules

import (
	"fmt"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
)

// Sample is one draw rs from the sample space RS: an unbounded sequence
// of independent uniform bin positions (plus an auxiliary stream of
// uniform floats for randomized-probe-count rules such as Mixed),
// materialized lazily so that the ADAP rules can look arbitrarily deep
// while ABKU[d] only ever draws d values. A Sample must not be shared
// across steps; draw a fresh one per insertion.
type Sample struct {
	n     int
	r     *rng.RNG
	seq   []int
	coins []float64
}

// NewSample returns a fresh sample over n bin positions drawing from r.
func NewSample(n int, r *rng.RNG) *Sample {
	if n <= 0 {
		panic("rules: NewSample needs n >= 1")
	}
	return &Sample{n: n, r: r}
}

// At returns the t-th element b_t of the sequence (0-based), drawing and
// memoizing it on first access. Memoization is what makes a Sample
// shareable between the two copies of a coupled chain: both see the same
// b regardless of how deep each one looks.
func (s *Sample) At(t int) int {
	if t < 0 {
		panic("rules: Sample.At negative index")
	}
	for len(s.seq) <= t {
		s.seq = append(s.seq, s.r.Intn(s.n))
	}
	return s.seq[t]
}

// Len returns how many elements have been materialized so far.
func (s *Sample) Len() int { return len(s.seq) }

// Coin returns the t-th auxiliary uniform [0,1) variate of the sample,
// drawing and memoizing it on first access. Coins are independent of the
// position sequence; coupled copies that share the Sample see the same
// coins, which keeps mixture rules (e.g. the (1+beta)-choice rule)
// right-oriented: conditioned on the coins, both copies run the same
// deterministic-probe-count rule.
func (s *Sample) Coin(t int) float64 {
	if t < 0 {
		panic("rules: Sample.Coin negative index")
	}
	for len(s.coins) <= t {
		s.coins = append(s.coins, s.r.Float64())
	}
	return s.coins[t]
}

// Fixed returns a sample with a predetermined sequence, for exact-chain
// enumeration and tests. At panics beyond the given sequence.
func Fixed(n int, seq []int) *Sample {
	return &Sample{n: n, seq: append([]int(nil), seq...)}
}

// Rule is a right-oriented random function: the scheduling rule used to
// place each new ball.
type Rule interface {
	// Name identifies the rule in tables, e.g. "ABKU[2]".
	Name() string
	// Choose returns D(v, rs): the position of the normalized vector v
	// that receives the new ball under sample s. Implementations must be
	// deterministic given (v, s).
	Choose(v loadvec.Vector, s *Sample) int
	// Phi applies the permutation Phi_D of Definition 3.4 to the sample.
	// All rules in the paper have Phi = identity (Lemma 3.4); the method
	// exists so the coupling code matches the paper's generality.
	Phi(s *Sample) *Sample
	// MaxProbes bounds how many sequence elements Choose may consume on
	// an n-bin system with maximum load maxLoad; exact-chain construction
	// enumerates samples up to this depth. Rules with unbounded lookahead
	// return a conservative bound and panic past it.
	MaxProbes(n, maxLoad int) int
}

// Cloner is implemented by rules that can produce an independent copy
// of themselves for a new worker. All rules in this package implement
// it; custom stateful rules must, or CloneForWorker will hand workers
// the shared original.
type Cloner interface {
	// Clone returns a copy sharing no mutable state with the receiver.
	Clone() Rule
}

// CloneForWorker returns an independent per-worker copy of rule when it
// implements Cloner, and rule itself otherwise. The fallback is only
// correct for immutable rules (which all rules in this package are —
// see the package concurrency note); concurrent drivers such as
// internal/serve call this once per worker so that no mutable rule
// state is ever shared across goroutines.
func CloneForWorker(rule Rule) Rule {
	if c, ok := rule.(Cloner); ok {
		return c.Clone()
	}
	return rule
}

// Thresholds is the nondecreasing sequence x = (x_0, x_1, ...) of
// ADAP(x): a ball standing at a sampled bin of load l is placed once the
// number of probes M reaches x_l.
type Thresholds interface {
	// X returns x_l >= 1 for load l >= 0; it must be nondecreasing in l.
	X(load int) int
	// String renders the sequence for rule names.
	String() string
}

// ConstThresholds is x_l = d for all l, which makes ADAP(x) the ABKU[d]
// rule: always probe exactly d bins.
type ConstThresholds int

// X implements Thresholds.
func (c ConstThresholds) X(int) int { return int(c) }

func (c ConstThresholds) String() string { return fmt.Sprintf("%d,%d,...", int(c), int(c)) }

// SliceThresholds takes x from a literal slice, repeating the last entry
// for loads beyond its end (which keeps the sequence nondecreasing).
type SliceThresholds []int

// X implements Thresholds.
func (xs SliceThresholds) X(load int) int {
	if len(xs) == 0 {
		panic("rules: empty threshold slice")
	}
	if load < 0 {
		panic("rules: negative load")
	}
	if load >= len(xs) {
		return xs[len(xs)-1]
	}
	return xs[load]
}

func (xs SliceThresholds) String() string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", x)
	}
	return s + ",..."
}

// CloneThresholds returns a threshold sequence sharing no backing
// storage with x: SliceThresholds gets its slice copied, and value
// types (ConstThresholds) are returned as-is. Custom implementations
// are returned unchanged and must be immutable, per the package
// concurrency contract. Per-worker configuration paths (internal/serve)
// use this so a caller mutating its slice after construction cannot
// race the workers.
func CloneThresholds(x Thresholds) Thresholds {
	switch t := x.(type) {
	case ConstThresholds:
		return t
	case SliceThresholds:
		return append(SliceThresholds(nil), t...)
	default:
		return x
	}
}

// validateThresholds panics if the visible prefix of x is not a
// nondecreasing sequence of positive integers (the paper's requirement).
func validateThresholds(x Thresholds, upTo int) {
	prev := 0
	for l := 0; l <= upTo; l++ {
		v := x.X(l)
		if v < 1 {
			panic(fmt.Sprintf("rules: threshold x_%d = %d < 1", l, v))
		}
		if v < prev {
			panic(fmt.Sprintf("rules: thresholds decrease at load %d (%d -> %d)", l, prev, v))
		}
		prev = v
	}
}

// Adaptive is the ADAP(x) rule of Czumaj and Stemann: repeatedly probe
// uniform bins; after M probes, if the least loaded probed bin has load l
// with x_l <= M, place the ball there.
type Adaptive struct {
	x    Thresholds
	name string
}

// NewAdaptive returns ADAP(x). The visible prefix of x is validated.
func NewAdaptive(x Thresholds) *Adaptive {
	validateThresholds(x, 64)
	return &Adaptive{x: x, name: fmt.Sprintf("ADAP(%s)", x.String())}
}

// Name implements Rule.
func (a *Adaptive) Name() string { return a.name }

// maxAdaptiveProbes caps the probe loop; it is a defense against a
// mis-specified threshold sequence, not a semantic limit. The loop
// terminates with probability 1 for any valid x: once the prefix minimum
// reaches the globally least loaded bin, the stopping condition is met as
// soon as M reaches the (fixed) threshold of that load.
const maxAdaptiveProbes = 1 << 20

// Choose implements Rule; this is formula (1) of the paper. The prefix
// maximum position p(b)_M (largest position = least loaded bin seen so
// far) is tracked as probes accumulate.
func (a *Adaptive) Choose(v loadvec.Vector, s *Sample) int {
	pmax := -1
	for m := 1; m <= maxAdaptiveProbes; m++ {
		if b := s.At(m - 1); b > pmax {
			pmax = b
		}
		if a.x.X(v[pmax]) <= m {
			return pmax
		}
	}
	panic(fmt.Sprintf("rules: %s did not place a ball within %d probes (thresholds too large?)", a.name, maxAdaptiveProbes))
}

// Phi implements Rule; Lemma 3.4: the identity permutation witnesses
// right-orientation for every ADAP(x).
func (a *Adaptive) Phi(s *Sample) *Sample { return s }

// Clone implements Cloner: the copy shares no mutable state (the
// threshold sequence is cloned defensively).
func (a *Adaptive) Clone() Rule {
	return &Adaptive{x: CloneThresholds(a.x), name: a.name}
}

// MaxProbes implements Rule: the rule must stop by M = x_l* where l* is
// the least load reachable, but enumerating exactly is workload
// dependent; the bound below covers every state with the given max load.
func (a *Adaptive) MaxProbes(n, maxLoad int) int {
	return a.x.X(maxLoad)
}

// NewABKU returns the ABKU[d] rule of Azar, Broder, Karlin and Upfal:
// probe d bins i.u.r. (with replacement) and place the ball in the least
// loaded. It is ADAP(x) with the constant sequence x_l = d.
func NewABKU(d int) *Adaptive {
	if d < 1 {
		panic("rules: ABKU needs d >= 1")
	}
	r := NewAdaptive(ConstThresholds(d))
	r.name = fmt.Sprintf("ABKU[%d]", d)
	return r
}

// NewUniform returns the classical one-choice rule (a ball goes to a
// uniformly random bin), i.e. ABKU[1].
func NewUniform() *Adaptive {
	r := NewABKU(1)
	r.name = "Uniform"
	return r
}

// MinLoad is the omniscient d = infinity rule: every ball goes to a least
// loaded bin. It consumes no randomness and is trivially right-oriented
// (D is the constant n-1). Used as a best-case baseline and in tests.
type MinLoad struct{}

// Name implements Rule.
func (MinLoad) Name() string { return "MinLoad" }

// Choose implements Rule.
func (MinLoad) Choose(v loadvec.Vector, _ *Sample) int { return v.N() - 1 }

// Phi implements Rule.
func (MinLoad) Phi(s *Sample) *Sample { return s }

// Clone implements Cloner (MinLoad carries no state at all).
func (MinLoad) Clone() Rule { return MinLoad{} }

// MaxProbes implements Rule.
func (MinLoad) MaxProbes(int, int) int { return 0 }
