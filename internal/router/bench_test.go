package router

import (
	"net"
	"sync"
	"testing"

	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/serve"
)

// benchCluster boots `shards` in-process dgram servers and a Router,
// mirroring cmd/bench's router workloads at test scale.
func benchCluster(b *testing.B, nPerShard, shards, d int) *Router {
	b.Helper()
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		st := serve.NewStore(nPerShard)
		st.FillBalanced(nPerShard)
		srv := NewServer(ServerConfig{
			Store: st, Policy: serve.NewABKUPolicy(2), Scenario: process.ScenarioA,
			Seed: uint64(i + 1),
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		go srv.Serve(ln)
		b.Cleanup(func() { srv.Close() })
	}
	rt, err := New(Options{Shards: addrs, D: d})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	return rt
}

func BenchmarkSessionProbe(b *testing.B) {
	rt := benchCluster(b, 1024, 1, 1)
	ses := rt.NewSession()
	defer ses.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ses.Probe(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionAdmit(b *testing.B) {
	rt := benchCluster(b, 1024, 3, 2)
	ses := rt.NewSession()
	defer ses.Close()
	r := rng.NewStream(1, 0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ses.Admit(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionAdmitBatch16(b *testing.B) {
	rt := benchCluster(b, 1024, 3, 2)
	ses := rt.NewSession()
	defer ses.Close()
	r := rng.NewStream(1, 0)
	res := make([]AdmitResult, 0, 16)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := ses.AdmitBatch(r, 16, res[:0])
		if err != nil {
			b.Fatal(err)
		}
		res = out
	}
}

func BenchmarkSessionAdmitParallel8(b *testing.B) {
	rt := benchCluster(b, 1024, 3, 2)
	var mu sync.Mutex
	w := 0
	b.ResetTimer()
	b.ReportAllocs()
	b.SetParallelism(1) // RunParallel spawns GOMAXPROCS goroutines
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		w++
		r := rng.NewStream(2, uint64(w))
		mu.Unlock()
		ses := rt.NewSession()
		defer ses.Close()
		for pb.Next() {
			if _, err := ses.Admit(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}
