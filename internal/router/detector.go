package router

import (
	"sync"
	"time"

	"dynalloc/internal/dgram"
	"dynalloc/internal/metrics"
	"dynalloc/internal/serve"
)

// ClusterStatus is one detector observation of the whole shard fleet.
type ClusterStatus struct {
	Steps        int64 `json:"steps"`         // cluster step clock: sum of shard admission clocks
	MaxLoad      int   `json:"max_load"`      // max bin load across reachable shards
	Total        int64 `json:"total"`         // balls across reachable shards
	NonEmpty     int64 `json:"non_empty"`     // nonempty bins across reachable shards
	PredictedMax int   `json:"predicted_max"` // fluid-limit stationary prediction
	TargetMax    int   `json:"target_max"`    // recovery threshold (predicted + slack)
	LiveShards   int   `json:"live_shards"`   // shards that answered this sweep
	Shards       int   `json:"shards"`        // configured shard count
	Degraded     bool  `json:"degraded"`      // any shard unreachable this sweep
	Recovered    bool  `json:"recovered"`
}

// Detector watches the whole cluster converge to its typical state,
// the fleet-level mirror of serve.Detector. Each Check probes every
// shard through its own session, aggregates the load digests, and
// fires once the cluster-wide maximum load is back under the
// fluid-limit target — on the cluster step clock, the sum of shard
// admission clocks, which is the phase count of the aggregate process
// the paper's Theorem 1 budget is stated in.
//
// The target is computed for the AGGREGATE geometry (total bins, total
// balls, the shards' local policy): the two-level structure admits at
// the least-loaded probed shard, so the stationary max load of the
// fleet is approximated by a single store of the combined size. A
// shard that cannot be probed makes the sweep Degraded, and a degraded
// cluster is never Recovered — max load on an unreachable shard is
// unknown, so the detector refuses to fire blind. Each shard's clocks
// are cached from its last successful probe, keeping the cluster step
// clock monotone across an outage.
//
// All methods are safe for concurrent use; overlapping Checks coalesce
// like serve.Detector's.
type Detector struct {
	rt     *Router
	target serve.Target

	checkMu sync.Mutex
	ses     *Session // owned by checkMu

	mu          sync.Mutex // guards everything below
	recovered   bool
	disruptedAt int64
	disruptedTS time.Time
	cached      []dgram.Summary // last successful probe per shard
	haveCached  []bool
	last        ClusterStatus
	haveLast    bool
	lastEpisode serve.Episode
	episodes    int64
}

// NewDetector returns a cluster detector over rt with the given
// aggregate target. The cluster starts "disrupted": the first Check
// that observes a typical, fully-reachable fleet closes the boot
// episode.
func NewDetector(rt *Router, target serve.Target) *Detector {
	return &Detector{
		rt:          rt,
		target:      target,
		ses:         rt.NewSession(),
		disruptedTS: time.Now(),
		cached:      make([]dgram.Summary, rt.NumShards()),
		haveCached:  make([]bool, rt.NumShards()),
	}
}

// Target returns the detector's aggregate recovery target.
func (d *Detector) Target() serve.Target { return d.target }

// Recovered reports whether the last sweep observed a typical cluster.
func (d *Detector) Recovered() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recovered
}

// Last returns the most recent observation, if any Check has run.
func (d *Detector) Last() (ClusterStatus, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last, d.haveLast
}

// LastEpisode returns the most recently completed cluster recovery and
// the count of completed episodes.
func (d *Detector) LastEpisode() (serve.Episode, int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastEpisode, d.episodes
}

// MarkDisrupted opens an outage at the current cluster step clock (the
// cached one — no probes). Call it right after injecting a fault so
// the recovery is measured from the injection. Already-disrupted
// clusters keep their original stamp: overlapping faults are one
// episode.
func (d *Detector) MarkDisrupted() {
	now := time.Now()
	d.mu.Lock()
	if d.recovered {
		d.recovered = false
		d.disruptedAt = d.stepsLocked()
		d.disruptedTS = now
	}
	d.mu.Unlock()
	metrics.SetGauge("router.cluster.recovered", 0)
}

// stepsLocked sums the cached shard admission clocks. d.mu held.
func (d *Detector) stepsLocked() int64 {
	var s int64
	for i := range d.cached {
		s += d.cached[i].Allocs
	}
	return s
}

// Check sweeps the fleet and updates the recovery state, returning the
// observation. A concurrent Check returns the cached observation.
func (d *Detector) Check() ClusterStatus {
	if !d.checkMu.TryLock() {
		d.mu.Lock()
		s := d.last
		d.mu.Unlock()
		return s
	}
	defer d.checkMu.Unlock()

	live := 0
	type probeRes struct {
		sum dgram.Summary
		ok  bool
	}
	res := make([]probeRes, d.rt.NumShards())
	for i := range res {
		sum, err := d.ses.Probe(i)
		if err != nil {
			// One retry through a fresh dial: the shard may be fine and
			// only this session's connection stale (shard restarted).
			sum, err = d.ses.Probe(i)
		}
		if err == nil {
			d.rt.markUp(i)
			res[i] = probeRes{sum: sum, ok: true}
			live++
		} else {
			d.rt.markDown(i)
		}
	}

	now := time.Now()
	d.mu.Lock()
	s := ClusterStatus{
		PredictedMax: d.target.PredictedMax,
		TargetMax:    d.target.MaxLoad(),
		LiveShards:   live,
		Shards:       d.rt.NumShards(),
		Degraded:     live < d.rt.NumShards(),
	}
	for i := range res {
		if res[i].ok {
			d.cached[i] = res[i].sum
			d.haveCached[i] = true
		}
		if !d.haveCached[i] {
			continue
		}
		c := d.cached[i]
		s.Steps += c.Allocs
		if res[i].ok {
			s.Total += c.Total
			s.NonEmpty += c.NonEmpty
			if int(c.MaxLoad) > s.MaxLoad {
				s.MaxLoad = int(c.MaxLoad)
			}
		}
	}
	s.Recovered = !s.Degraded && live > 0 && s.MaxLoad <= d.target.MaxLoad()

	switch {
	case !d.recovered && s.Recovered:
		ep := serve.Episode{Steps: s.Steps - d.disruptedAt, Wall: now.Sub(d.disruptedTS)}
		d.lastEpisode = ep
		d.episodes++
		d.recovered = true
		metrics.ObserveHistogram("router.recovery.steps", ep.Steps)
		metrics.ObserveHistogram("router.recovery.wall_ns", ep.Wall.Nanoseconds())
	case d.recovered && !s.Recovered:
		d.recovered = false
		d.disruptedAt = s.Steps
		d.disruptedTS = now
	}
	d.last = s
	d.haveLast = true
	d.mu.Unlock()

	metrics.AddCounter("router.detector.checks", 1)
	metrics.SetGauge("router.cluster.recovered", boolGauge(s.Recovered))
	metrics.SetGauge("router.cluster.max_load", float64(s.MaxLoad))
	metrics.SetGauge("router.cluster.total", float64(s.Total))
	metrics.SetGauge("router.cluster.live_shards", float64(s.LiveShards))
	metrics.SetGauge("router.cluster.target_max_load", float64(s.TargetMax))
	metrics.SetGauge("router.recovery.budget_steps", d.target.BudgetSteps)
	return s
}

// Close releases the detector's probe session.
func (d *Detector) Close() {
	d.checkMu.Lock()
	d.ses.Close()
	d.checkMu.Unlock()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
