// Package router is the cluster tier of the live allocation service:
// the shard-side dgram listener (Server) that lets a dynallocd
// instance speak the binary protocol natively, the client/router layer
// (Router) that partitions the bin space across N shard endpoints and
// applies the paper's d-choice rule ACROSS shards — probe d shards,
// admit at the least loaded — and the cluster-wide recovery Detector
// that aggregates per-shard load digests against the fluid-limit
// prediction exactly like serve.Detector does for one store.
//
// This is the two-level power-of-d structure of the Luczak–McDiarmid
// continuous-time two-choices model: the router balances ball mass
// across shards by total load, and each shard's local admission policy
// balances across its own bins. Recovery of the whole cluster from an
// adversarial state (a crashed shard bin, a killed and restored shard)
// is measured against the same Theorem 1 budget as the single-node
// service, on the cluster-wide step clock (the sum of shard admission
// clocks).
//
// Fault model: shards fail by connection error or timeout. The router
// degrades rather than fails — a probe that cannot reach its shard
// drops out of the fan-out (d-1 probing), a shard that errors is
// marked down and health-checked in the background until it returns,
// and admissions retry on the surviving shards — so client-visible
// errors require losing every shard. See docs/CLUSTER.md.
package router

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"dynalloc/internal/dgram"
	"dynalloc/internal/metrics"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/serve"
)

// serverStreamOffset keeps the dgram listener's per-connection rng
// streams disjoint from the drive workers (0..W-1), their pacing
// streams (1<<32), and the HTTP admission stream (1<<33).
const serverStreamOffset = 1 << 34

// admitChunk bounds the per-connection batch-lane scratch: an ADMIT
// request's Count is admitted in chunks of this many balls through
// Store.AdmitBatch (the choices within a chunk do not see the chunk's
// own admissions — the pipelining the router client already accepts).
const admitChunk = 256

// ServerConfig wires a shard's dgram listener to its store.
type ServerConfig struct {
	Store    *serve.Store
	Policy   serve.Policy
	Scenario process.Scenario
	// Seed derives per-connection rng streams (serverStreamOffset +
	// connection ordinal), so admissions through the binary protocol are
	// deterministic per connection and disjoint from every other stream
	// of the daemon.
	Seed uint64
	// Detector, when set, supplies the Recovered bit of PROBE replies
	// and is notified (MarkDisrupted) on CRASH injections.
	Detector *serve.Detector
}

// Server serves the dgram protocol for one shard. One goroutine per
// connection; each connection gets its own policy clone and rng
// stream, so connections never contend on admission state — the same
// isolation the Engine gives its workers.
type Server struct {
	cfg      ServerConfig
	draining atomic.Bool
	connSeq  atomic.Uint64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a Server for cfg. It panics without a store or
// policy, mirroring serve.NewEngine.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Store == nil || cfg.Policy == nil {
		panic("router: server needs a store and a policy")
	}
	return &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// SetDraining flips the drain refusal: while true, mutating requests
// (ADMIT/FREE/CRASH) answer TErr/CodeDraining so a shutdown checkpoint
// sees a quiesced store; PROBE and STATE stay live for observability.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Serve accepts connections on ln until Close (or an unrecoverable
// accept error) and blocks until every connection handler has exited.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("router: server already closed")
	}
	s.ln = ln
	s.mu.Unlock()

	var err error
	for {
		c, aerr := ln.Accept()
		if aerr != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				err = aerr
			}
			break
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			break
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
	s.wg.Wait()
	return err
}

// Close stops accepting, closes every live connection, and waits for
// the handlers to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
	s.wg.Done()
}

// handle is one connection's request loop. All reply encoding goes
// through per-connection scratch buffers, so a steady request stream
// does not allocate.
func (s *Server) handle(c net.Conn) {
	defer s.dropConn(c)
	st := s.cfg.Store
	pol := s.cfg.Policy.Clone()
	bpol, _ := pol.(serve.BatchPolicy)
	r := rng.NewStream(s.cfg.Seed, serverStreamOffset+s.connSeq.Add(1))
	fr := dgram.NewReader(c)
	fw := dgram.NewWriter(c)

	var payload []byte        // reply payload scratch
	var pairs []dgram.BinLoad // admit/free pair scratch
	var loads []int32         // STATE loads scratch

	// ADMIT batch-lane scratch: requests are chunked through
	// Store.AdmitBatch in admitChunk slices, so a connection's steady
	// admission stream stays zero-alloc with bounded scratch no matter
	// how large a Count the peer asks for.
	var admitBins [admitChunk]int
	var admitLoads [admitChunk]int32
	var admitScratch serve.AdmitScratch

	reply := func(t dgram.Type, p []byte) bool {
		if err := fw.WriteFrame(t, p); err != nil {
			return false
		}
		return true
	}
	replyErr := func(code dgram.ErrCode, msg string) bool {
		metrics.AddCounter("dgram.server.errors", 1)
		payload = dgram.AppendErrReply(payload[:0], dgram.ErrReply{Code: code, Msg: msg})
		return reply(dgram.TErr, payload)
	}

	for {
		t, req, err := fr.ReadFrame()
		if err != nil {
			return // connection gone, version skew, or corruption: drop it
		}
		metrics.AddCounter("dgram.server.requests", 1)
		switch t {
		case dgram.TProbe:
			sum := st.LoadSummary()
			w := dgram.Summary{
				N:        uint32(sum.N),
				Total:    sum.Total,
				MaxLoad:  int32(sum.MaxLoad),
				NonEmpty: sum.NonEmpty,
				Allocs:   sum.Allocs,
				Frees:    sum.Frees,
			}
			if d := s.cfg.Detector; d != nil {
				w.Recovered = d.Recovered()
			}
			payload = dgram.AppendSummary(payload[:0], w)
			if !reply(dgram.TSummary, payload) {
				return
			}

		case dgram.TAdmit:
			q, derr := dgram.DecodeAdmitReq(req)
			if derr != nil {
				if !replyErr(dgram.CodeBadRequest, derr.Error()) {
					return
				}
				continue
			}
			if s.draining.Load() {
				if !replyErr(dgram.CodeDraining, "shutting down") {
					return
				}
				continue
			}
			pairs = pairs[:0]
			for left := q.Count; left > 0; {
				n := int(left)
				if n > admitChunk {
					n = admitChunk
				}
				bins := admitBins[:n]
				if bpol != nil {
					bpol.PickBatch(st, r, bins)
				} else {
					for i := range bins {
						bins[i], _ = pol.Pick(st, r)
					}
				}
				st.AdmitBatch(bins, admitLoads[:n], &admitScratch)
				for i := range bins {
					pairs = append(pairs, dgram.BinLoad{Bin: uint32(bins[i]), Load: admitLoads[i]})
				}
				left -= uint32(n)
			}
			payload = dgram.AppendBinLoads(payload[:0], pairs)
			if !reply(dgram.TAdmitOK, payload) {
				return
			}

		case dgram.TFree:
			q, derr := dgram.DecodeFreeReq(req)
			if derr != nil {
				if !replyErr(dgram.CodeBadRequest, derr.Error()) {
					return
				}
				continue
			}
			if s.draining.Load() {
				if !replyErr(dgram.CodeDraining, "shutting down") {
					return
				}
				continue
			}
			if q.Mode == dgram.FreeBin && int(q.Bin) >= st.N() {
				if !replyErr(dgram.CodeBadRequest, fmt.Sprintf("bin %d out of range", q.Bin)) {
					return
				}
				continue
			}
			pairs = pairs[:0]
			var ferr error
			for i := uint32(0); i < q.Count && ferr == nil; i++ {
				var bin, load int
				switch {
				case q.Mode == dgram.FreeBin:
					bin = int(q.Bin)
					load, ferr = st.FreeBin(bin)
				case s.cfg.Scenario == process.ScenarioB:
					bin, ferr = st.FreeNonEmpty(r)
					if ferr == nil {
						load = st.Load(bin)
					}
				default:
					bin, ferr = st.FreeBall(r)
					if ferr == nil {
						load = st.Load(bin)
					}
				}
				if ferr == nil {
					pairs = append(pairs, dgram.BinLoad{Bin: uint32(bin), Load: int32(load)})
				}
			}
			if ferr != nil && len(pairs) == 0 {
				code := dgram.CodeInternal
				if errors.Is(ferr, serve.ErrEmpty) || errors.Is(ferr, serve.ErrEmptyBin) {
					code = dgram.CodeEmpty
				}
				if !replyErr(code, ferr.Error()) {
					return
				}
				continue
			}
			payload = dgram.AppendBinLoads(payload[:0], pairs)
			if !reply(dgram.TFreeOK, payload) {
				return
			}

		case dgram.TCrash:
			q, derr := dgram.DecodeCrashReq(req)
			if derr != nil {
				if !replyErr(dgram.CodeBadRequest, derr.Error()) {
					return
				}
				continue
			}
			if s.draining.Load() {
				if !replyErr(dgram.CodeDraining, "shutting down") {
					return
				}
				continue
			}
			if int(q.Bin) >= st.N() {
				if !replyErr(dgram.CodeBadRequest, fmt.Sprintf("bin %d out of range", q.Bin)) {
					return
				}
				continue
			}
			load := st.Crash(int(q.Bin), int(q.K))
			if d := s.cfg.Detector; d != nil {
				d.MarkDisrupted()
			}
			payload = dgram.AppendLoad(payload[:0], int32(load))
			if !reply(dgram.TCrashOK, payload) {
				return
			}

		case dgram.TState:
			n := st.N()
			if cap(loads) < n {
				loads = make([]int32, n)
			}
			loads = loads[:n]
			for b := 0; b < n; b++ {
				loads[b] = int32(st.Load(b))
			}
			w := dgram.StateReply{Allocs: st.Allocs(), Frees: st.Frees(), Loads: loads}
			payload = dgram.AppendStateReply(payload[:0], w)
			if !reply(dgram.TStateOK, payload) {
				return
			}

		default:
			// A reply type (or anything else) arriving as a request is a
			// confused peer, not a crash.
			if !replyErr(dgram.CodeBadRequest, "unexpected frame "+t.String()) {
				return
			}
		}
	}
}
