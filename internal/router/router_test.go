package router

import (
	"errors"
	"net"
	"testing"
	"time"

	"dynalloc/internal/dgram"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/serve"
)

// testShard is one in-process shard: a store behind a dgram Server on
// a loopback listener.
type testShard struct {
	st   *serve.Store
	srv  *Server
	ln   net.Listener
	addr string
	done chan struct{}
}

func startShard(t *testing.T, n int, seed uint64, det *serve.Detector) *testShard {
	t.Helper()
	st := serve.NewStore(n)
	return startShardStore(t, st, seed, det)
}

func startShardStore(t *testing.T, st *serve.Store, seed uint64, det *serve.Detector) *testShard {
	t.Helper()
	pol, err := serve.ParsePolicy("abku:2")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{Store: st, Policy: pol, Scenario: process.ScenarioA, Seed: seed, Detector: det})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sh := &testShard{st: st, srv: srv, ln: ln, addr: ln.Addr().String(), done: make(chan struct{})}
	go func() {
		defer close(sh.done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() { sh.stop() })
	return sh
}

func (sh *testShard) stop() {
	sh.srv.Close()
	<-sh.done
}

// restart rebinds a new server for the same store on the SAME address
// — the test double of a shard process coming back after a kill.
func (sh *testShard) restart(t *testing.T, seed uint64) {
	t.Helper()
	pol, err := serve.ParsePolicy("abku:2")
	if err != nil {
		t.Fatal(err)
	}
	sh.srv = NewServer(ServerConfig{Store: sh.st, Policy: pol, Scenario: process.ScenarioA, Seed: seed})
	ln, err := net.Listen("tcp", sh.addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", sh.addr, err)
	}
	sh.ln = ln
	sh.done = make(chan struct{})
	go func() {
		defer close(sh.done)
		sh.srv.Serve(ln)
	}()
}

func newTestRouter(t *testing.T, d int, shards ...*testShard) *Router {
	t.Helper()
	addrs := make([]string, len(shards))
	for i, sh := range shards {
		addrs[i] = sh.addr
	}
	rt, err := New(Options{
		Shards:         addrs,
		D:              d,
		DialTimeout:    2 * time.Second,
		CallTimeout:    2 * time.Second,
		HealthInterval: 20 * time.Millisecond,
		RetryBackoff:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestAdmitPrefersLeastLoadedShard: with full fan-out, every admission
// must land on a lightest shard at probe time — the cluster-level
// least-loaded rule.
func TestAdmitPrefersLeastLoadedShard(t *testing.T) {
	a := startShard(t, 64, 1, nil)
	b := startShard(t, 64, 2, nil)
	c := startShard(t, 64, 3, nil)
	// Preload shard a well above the others.
	for i := 0; i < 300; i++ {
		a.st.Alloc(i % 64)
	}
	rt := newTestRouter(t, 3, a, b, c)
	ses := rt.NewSession()
	defer ses.Close()
	r := rng.NewStream(7, 0)

	for i := 0; i < 200; i++ {
		res, err := ses.Admit(r)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if res.Shard == 0 {
			t.Fatalf("admit %d landed on the heaviest shard (totals %d/%d/%d)",
				i, a.st.Total(), b.st.Total(), c.st.Total())
		}
		if res.Probes != 3 {
			t.Fatalf("admit %d probed %d shards, want 3", i, res.Probes)
		}
	}
	if got := b.st.Total() + c.st.Total(); got != 200 {
		t.Fatalf("light shards hold %d balls, want 200", got)
	}
	// The two light shards split the work roughly evenly (tie-break is
	// uniform; a 200-trial split worse than 40/160 is ~impossible).
	if b.st.Total() < 40 || c.st.Total() < 40 {
		t.Fatalf("lopsided split: %d/%d", b.st.Total(), c.st.Total())
	}
}

// TestAdmitDegradedZeroErrors: killing one shard mid-traffic must not
// surface a single client error — the fan-out degrades to d-1.
func TestAdmitDegradedZeroErrors(t *testing.T) {
	a := startShard(t, 64, 1, nil)
	b := startShard(t, 64, 2, nil)
	c := startShard(t, 64, 3, nil)
	rt := newTestRouter(t, 2, a, b, c)
	ses := rt.NewSession()
	defer ses.Close()
	r := rng.NewStream(11, 0)

	for i := 0; i < 50; i++ {
		if _, err := ses.Admit(r); err != nil {
			t.Fatalf("warmup admit %d: %v", i, err)
		}
	}
	a.stop() // kill -9 equivalent: connections reset, listener gone

	sawDegraded := false
	for i := 0; i < 200; i++ {
		res, err := ses.Admit(r)
		if err != nil {
			t.Fatalf("admit %d during outage: %v", i, err)
		}
		if res.Shard == 0 {
			t.Fatalf("admit %d landed on the dead shard", i)
		}
		if res.Probes < rt.D() {
			sawDegraded = true
		}
	}
	if !rt.Down(0) {
		t.Fatal("dead shard not marked down")
	}
	if !rt.Degraded() {
		t.Fatal("router not degraded with a dead shard")
	}
	_ = sawDegraded // degraded probing may or may not be observed before markDown kicks in
	if got := a.st.Total() + b.st.Total() + c.st.Total(); got != 250 {
		t.Fatalf("cluster holds %d balls, want 250", got)
	}
}

// TestShardRevival: a restarted shard (same address, same store) is
// revived by the health loop and takes traffic again.
func TestShardRevival(t *testing.T) {
	a := startShard(t, 64, 1, nil)
	b := startShard(t, 64, 2, nil)
	rt := newTestRouter(t, 2, a, b)
	ses := rt.NewSession()
	defer ses.Close()
	r := rng.NewStream(13, 0)

	a.stop()
	for i := 0; i < 20; i++ {
		if _, err := ses.Admit(r); err != nil {
			t.Fatalf("admit %d during outage: %v", i, err)
		}
	}
	if !rt.Down(0) {
		t.Fatal("shard 0 should be down")
	}

	a.restart(t, 21)
	deadline := time.Now().Add(5 * time.Second)
	for rt.Down(0) {
		if time.Now().After(deadline) {
			t.Fatal("health loop never revived the restarted shard")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Shard 0 is empty, shard 1 holds everything: traffic must flow
	// back to shard 0.
	before := a.st.Total()
	for i := 0; i < 50; i++ {
		if _, err := ses.Admit(r); err != nil {
			t.Fatalf("admit %d after revival: %v", i, err)
		}
	}
	if a.st.Total() == before {
		t.Fatal("revived shard took no traffic")
	}
}

// TestFreeConservesBalls: cluster-wide departures drain exactly what
// admissions put in, and an empty cluster reports ErrClusterEmpty.
func TestFreeConservesBalls(t *testing.T) {
	a := startShard(t, 32, 1, nil)
	b := startShard(t, 32, 2, nil)
	rt := newTestRouter(t, 2, a, b)
	ses := rt.NewSession()
	defer ses.Close()
	r := rng.NewStream(17, 0)

	const m = 120
	for i := 0; i < m; i++ {
		if _, err := ses.Admit(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < m; i++ {
		if _, err := ses.Free(r); err != nil {
			t.Fatalf("free %d: %v", i, err)
		}
	}
	if got := a.st.Total() + b.st.Total(); got != 0 {
		t.Fatalf("cluster holds %d balls after draining, want 0", got)
	}
	if _, err := ses.Free(r); !errors.Is(err, ErrClusterEmpty) {
		t.Fatalf("free on empty cluster: got %v, want ErrClusterEmpty", err)
	}
}

// TestSessionStateAndCrash exercises the remaining verbs end to end.
func TestSessionStateAndCrash(t *testing.T) {
	a := startShard(t, 16, 1, nil)
	rt := newTestRouter(t, 1, a)
	ses := rt.NewSession()
	defer ses.Close()

	load, err := ses.Crash(0, 3, 7)
	if err != nil || load != 7 {
		t.Fatalf("crash: load %d, err %v", load, err)
	}
	sr, err := ses.State(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Loads) != 16 || sr.Loads[3] != 7 {
		t.Fatalf("state: %d bins, bin3=%d", len(sr.Loads), sr.Loads[3])
	}
	// Targeted free drains the crashed bin.
	res, err := ses.FreeAt(0, dgram.FreeReq{Mode: dgram.FreeBin, Bin: 3, Count: 1})
	if err != nil || res.Load != 6 {
		t.Fatalf("free bin: %+v, err %v", res, err)
	}
	// Draining shard refuses mutations with CodeDraining.
	a.srv.SetDraining(true)
	var e dgram.ErrReply
	if _, err := ses.Admit(rng.NewStream(1, 0)); err == nil {
		t.Fatal("admit on a draining single-shard cluster must fail")
	}
	a.srv.SetDraining(false)
	_ = e
}

// TestClusterDetector drives the full episode lifecycle: boot
// recovery, crash disruption, degraded-never-recovered, and re-fire
// after the fault drains.
func TestClusterDetector(t *testing.T) {
	a := startShard(t, 64, 1, nil)
	b := startShard(t, 64, 2, nil)
	c := startShard(t, 64, 3, nil)
	rt := newTestRouter(t, 2, a, b, c)
	ses := rt.NewSession()
	defer ses.Close()
	r := rng.NewStream(19, 0)

	pol, err := serve.ParsePolicy("abku:2")
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate geometry: 192 bins, 192 balls.
	target, err := serve.NewTarget(pol, process.ScenarioA, 192, 192, 2)
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(rt, target)
	defer det.Close()

	if det.Recovered() {
		t.Fatal("detector must start disrupted")
	}
	for i := 0; i < 192; i++ {
		if _, err := ses.Admit(r); err != nil {
			t.Fatal(err)
		}
	}
	s := det.Check()
	if !s.Recovered || s.Degraded {
		t.Fatalf("boot check: %+v", s)
	}
	if s.Total != 192 || s.Steps != 192 {
		t.Fatalf("boot check clocks: total %d steps %d", s.Total, s.Steps)
	}
	if ep, n := det.LastEpisode(); n != 1 || ep.Steps != 192 {
		t.Fatalf("boot episode: %+v, count %d", ep, n)
	}

	// Crash a bin well above the target and stamp the outage.
	spike := uint32(target.MaxLoad() + 20)
	if _, err := ses.Crash(0, 0, spike); err != nil {
		t.Fatal(err)
	}
	det.MarkDisrupted()
	if s := det.Check(); s.Recovered {
		t.Fatalf("crashed cluster reported recovered: %+v", s)
	}

	// A dead shard makes the sweep degraded and blocks recovery even
	// if the max load were fine.
	c.stop()
	if s := det.Check(); !s.Degraded || s.Recovered || s.LiveShards != 2 {
		t.Fatalf("degraded check: %+v", s)
	}
	c.restart(t, 33)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := det.Check(); !s.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detector never saw the shard return")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Drain the crashed bin; interleave admissions so the step clock
	// advances, then the detector must re-fire with a sane episode.
	for i := 0; i < int(spike); i++ {
		if _, err := ses.FreeAt(0, dgram.FreeReq{Mode: dgram.FreeBin, Bin: 0, Count: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := ses.Admit(r); err != nil {
			t.Fatal(err)
		}
		if _, err := ses.Free(r); err != nil {
			t.Fatal(err)
		}
	}
	s = det.Check()
	if !s.Recovered {
		t.Fatalf("drained cluster not recovered: %+v", s)
	}
	ep, n := det.LastEpisode()
	if n != 2 {
		t.Fatalf("episode count %d, want 2", n)
	}
	if ep.Steps <= 0 || float64(ep.Steps) > target.BudgetSteps*8 {
		t.Fatalf("episode steps %d outside (0, 8x budget %f]", ep.Steps, target.BudgetSteps)
	}
}

// TestOptionsValidation pins the config contract.
func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty shard list must be rejected")
	}
	if _, err := New(Options{Shards: []string{"x"}, D: -1}); err == nil {
		t.Fatal("negative d must be rejected")
	}
	rt, err := New(Options{Shards: []string{"127.0.0.1:1", "127.0.0.1:2"}, D: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.D() != 2 {
		t.Fatalf("d clamped to %d, want 2", rt.D())
	}
}
