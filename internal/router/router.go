package router

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dynalloc/internal/dgram"
	"dynalloc/internal/metrics"
	"dynalloc/internal/rng"
)

// MaxD caps the router's probe fan-out; a d beyond the shard count is
// clamped anyway, and fixed-size per-session scratch wants a bound.
const MaxD = 16

// Typed router errors.
var (
	// ErrNoLiveShards: every shard endpoint is marked down.
	ErrNoLiveShards = errors.New("router: no live shards")
	// ErrClusterEmpty: a departure found no ball on any live shard.
	ErrClusterEmpty = errors.New("router: cluster holds no balls")
	// ErrShardDown: the specifically addressed shard is down.
	ErrShardDown = errors.New("router: shard is down")
)

// Options configures a Router.
type Options struct {
	// Shards is the dgram address list, one per shard. Shard index in
	// this slice is the shard's identity everywhere (metrics, HTTP).
	Shards []string
	// D is the cluster-level probe fan-out: ABKU[D] across shards.
	// Defaults to 2, clamped to [1, min(MaxD, len(Shards))].
	D int
	// DialTimeout bounds one connection attempt (default 1s).
	DialTimeout time.Duration
	// CallTimeout bounds one request/reply round trip (default 1s).
	CallTimeout time.Duration
	// HealthInterval is the background health-probe cadence that
	// revives down shards (default 200ms).
	HealthInterval time.Duration
	// RetryBackoff is the pause between whole-admission retry rounds
	// once every probed shard has failed (default 20ms): it lets the
	// health loop revive somebody instead of spinning.
	RetryBackoff time.Duration
}

func (o *Options) fill() error {
	if len(o.Shards) == 0 {
		return errors.New("router: need at least one shard address")
	}
	if o.D == 0 {
		o.D = 2
	}
	if o.D < 1 {
		return fmt.Errorf("router: d must be >= 1, got %d", o.D)
	}
	if o.D > MaxD {
		o.D = MaxD
	}
	if o.D > len(o.Shards) {
		o.D = len(o.Shards)
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = time.Second
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 200 * time.Millisecond
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 20 * time.Millisecond
	}
	return nil
}

// shardState is the router's shared view of one shard endpoint.
type shardState struct {
	addr  string
	down  atomic.Bool
	total atomic.Int64 // last observed ball count (Free's weighted pick)
	n     atomic.Int64 // last observed bin count
	fails atomic.Int64 // cumulative connection/call failures

	// admitCounter is the preformatted per-shard admit-share metric
	// name, so the hot path never fmt.Sprintfs.
	admitCounter string
}

// Router is the cluster-level d-choice balancer: it owns the shared
// shard state (up/down, cached totals) and a background health loop.
// The hot path lives in Session, which holds per-caller connections
// and scratch; a Router is typically one per process with one Session
// per worker goroutine.
type Router struct {
	opts   Options
	shards []*shardState

	healthCancel chan struct{}
	healthWG     sync.WaitGroup
	closeOnce    sync.Once
}

// New validates opts and returns a Router with its health loop
// running. Shards start optimistic (up); the first failed call or
// health probe marks a shard down, and the health loop revives it when
// it answers probes again.
func New(opts Options) (*Router, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	rt := &Router{opts: opts, healthCancel: make(chan struct{})}
	for i, a := range opts.Shards {
		rt.shards = append(rt.shards, &shardState{
			addr:         a,
			admitCounter: fmt.Sprintf("router.admit.shard.%d", i),
		})
	}
	rt.healthWG.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health loop. Sessions must be closed separately (by
// whoever owns them).
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.healthCancel) })
	rt.healthWG.Wait()
}

// NumShards returns the configured shard count.
func (rt *Router) NumShards() int { return len(rt.shards) }

// D returns the effective probe fan-out.
func (rt *Router) D() int { return rt.opts.D }

// Addr returns shard i's dgram address.
func (rt *Router) Addr(i int) string { return rt.shards[i].addr }

// Down reports whether shard i is currently marked down.
func (rt *Router) Down(i int) bool { return rt.shards[i].down.Load() }

// LiveCount returns the number of shards not marked down.
func (rt *Router) LiveCount() int {
	live := 0
	for _, s := range rt.shards {
		if !s.down.Load() {
			live++
		}
	}
	return live
}

// Degraded reports whether any shard is marked down.
func (rt *Router) Degraded() bool { return rt.LiveCount() < len(rt.shards) }

// CachedTotal returns the last ball count observed for shard i (from
// any probe on any session, or the health loop).
func (rt *Router) CachedTotal(i int) int64 { return rt.shards[i].total.Load() }

// CachedN returns the last bin count observed for shard i (0 until the
// first successful probe).
func (rt *Router) CachedN(i int) int { return int(rt.shards[i].n.Load()) }

// Fails returns shard i's cumulative failure count.
func (rt *Router) Fails(i int) int64 { return rt.shards[i].fails.Load() }

// markDown records a failed call against shard i.
func (rt *Router) markDown(i int) {
	s := rt.shards[i]
	s.fails.Add(1)
	if !s.down.Swap(true) {
		metrics.AddCounter("router.shard.down", 1)
	}
	metrics.SetGauge("router.live_shards", float64(rt.LiveCount()))
}

// markUp records a successful health probe against shard i.
func (rt *Router) markUp(i int) {
	if rt.shards[i].down.Swap(false) {
		metrics.AddCounter("router.shard.up", 1)
	}
	metrics.SetGauge("router.live_shards", float64(rt.LiveCount()))
}

// noteSummary folds a probe reply into the shared shard view.
func (rt *Router) noteSummary(i int, sum dgram.Summary) {
	rt.shards[i].total.Store(sum.Total)
	rt.shards[i].n.Store(int64(sum.N))
}

// healthLoop probes every shard on a fixed cadence with its own
// session: down shards get revived when they answer again, and the
// cached totals stay fresh even when no traffic flows (Free's weighted
// shard pick and the HTTP surface read them).
func (rt *Router) healthLoop() {
	defer rt.healthWG.Done()
	ses := rt.NewSession()
	defer ses.Close()
	t := time.NewTicker(rt.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.healthCancel:
			return
		case <-t.C:
		}
		for i := range rt.shards {
			if _, err := ses.Probe(i); err == nil {
				rt.markUp(i)
			} else {
				rt.markDown(i)
			}
		}
	}
}

// WaitReady blocks until every shard answers a probe, or the timeout
// elapses (error). Boot-time convenience for daemons and drills.
func (rt *Router) WaitReady(timeout time.Duration) error {
	ses := rt.NewSession()
	defer ses.Close()
	deadline := time.Now().Add(timeout)
	for {
		ready := 0
		for i := range rt.shards {
			if _, err := ses.Probe(i); err == nil {
				rt.markUp(i)
				ready++
			}
		}
		if ready == len(rt.shards) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("router: %d of %d shards ready after %v", ready, len(rt.shards), timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// conn is one persistent dgram connection with its framing state.
type conn struct {
	c  net.Conn
	fr *dgram.Reader
	fw *dgram.Writer
}

// AdmitResult describes one routed admission.
type AdmitResult struct {
	Shard  int    // shard the ball landed on
	Bin    uint32 // shard-local bin
	Load   int32  // bin load after the admit
	Probes int    // shard summaries actually obtained (== d when healthy)
}

// FreeResult describes one routed departure.
type FreeResult struct {
	Shard int
	Bin   uint32
	Load  int32
}

// Session is one caller's stateful handle on the cluster: persistent
// connections (one per shard, lazily dialed) plus the scratch buffers
// that make the probe/admit hot path allocation-free. A Session is NOT
// safe for concurrent use — give each worker its own, exactly like
// Policy.Clone; randomized methods take the caller's rng stream.
type Session struct {
	rt    *Router
	conns []*conn // per shard, nil until dialed

	req    []byte // request payload scratch
	pairs  []dgram.BinLoad
	picked [MaxD]int
	sums   [MaxD]dgram.Summary
	sumOK  [MaxD]bool
	weight []int64       // Free's weighted-pick scratch
	batch  []AdmitResult // Admit's single-ball result scratch
}

// NewSession returns a fresh session with no connections dialed yet.
func (rt *Router) NewSession() *Session {
	return &Session{rt: rt, conns: make([]*conn, len(rt.shards))}
}

// Close drops the session's connections.
func (s *Session) Close() {
	for i, c := range s.conns {
		if c != nil {
			c.c.Close()
			s.conns[i] = nil
		}
	}
}

// get returns the session's connection to shard i, dialing on demand.
// Down shards are refused without a dial attempt: dialing a dead
// endpoint costs a timeout, and probes own revival (they force-dial).
func (s *Session) get(i int) (*conn, error) { return s.getDial(i, false) }

func (s *Session) getDial(i int, force bool) (*conn, error) {
	if c := s.conns[i]; c != nil {
		return c, nil
	}
	if !force && s.rt.shards[i].down.Load() {
		return nil, fmt.Errorf("%w: shard %d (%s)", ErrShardDown, i, s.rt.shards[i].addr)
	}
	nc, err := net.DialTimeout("tcp", s.rt.shards[i].addr, s.rt.opts.DialTimeout)
	if err != nil {
		s.rt.markDown(i)
		return nil, err
	}
	metrics.AddCounter("router.dials", 1)
	c := &conn{c: nc, fr: dgram.NewReader(nc), fw: dgram.NewWriter(nc)}
	s.conns[i] = c
	return c, nil
}

// drop closes shard i's connection after a call failure and marks the
// shard down (the health loop revives it).
func (s *Session) drop(i int) {
	if c := s.conns[i]; c != nil {
		c.c.Close()
		s.conns[i] = nil
	}
	s.rt.markDown(i)
}

// dropConnOnly closes shard i's connection without marking the shard
// down — for protocol-level refusals where the shard itself is healthy.
func (s *Session) dropConnOnly(i int) {
	if c := s.conns[i]; c != nil {
		c.c.Close()
		s.conns[i] = nil
	}
}

// call sends one request frame on shard i's connection and reads one
// reply frame. The reply payload is valid until the next call on this
// session. Deadlines bound the whole round trip.
func (s *Session) call(i int, t dgram.Type, payload []byte) (dgram.Type, []byte, error) {
	return s.callDial(i, t, payload, false)
}

func (s *Session) callDial(i int, t dgram.Type, payload []byte, force bool) (dgram.Type, []byte, error) {
	c, err := s.getDial(i, force)
	if err != nil {
		return 0, nil, err
	}
	if err := c.c.SetDeadline(time.Now().Add(s.rt.opts.CallTimeout)); err != nil {
		s.drop(i)
		return 0, nil, err
	}
	if err := c.fw.WriteFrame(t, payload); err != nil {
		s.drop(i)
		return 0, nil, err
	}
	rt, rp, err := c.fr.ReadFrame()
	if err != nil {
		s.drop(i)
		return 0, nil, err
	}
	return rt, rp, nil
}

// Probe fetches shard i's load digest and folds it into the router's
// cached view. Probes force-dial even down shards — they are the
// revival mechanism; a caller that sees a probe succeed should markUp
// (the health loop and cluster detector do).
func (s *Session) Probe(i int) (dgram.Summary, error) {
	t, p, err := s.callDial(i, dgram.TProbe, nil, true)
	if err != nil {
		return dgram.Summary{}, err
	}
	if t != dgram.TSummary {
		s.drop(i)
		return dgram.Summary{}, fmt.Errorf("router: shard %d answered PROBE with %v", i, t)
	}
	sum, err := dgram.DecodeSummary(p)
	if err != nil {
		s.drop(i)
		return dgram.Summary{}, err
	}
	s.rt.noteSummary(i, sum)
	return sum, nil
}

// pickLive fills s.picked with up to k distinct live shard indices
// drawn uniformly via r, returning how many it picked. With fewer than
// k live shards it returns all of them — the d-1 degraded fan-out.
func (s *Session) pickLive(k int, r *rng.RNG) int {
	// Reservoir sample over the live set: one pass, no allocation,
	// uniform over subsets regardless of which shards are down.
	seen := 0
	for i := range s.rt.shards {
		if s.rt.shards[i].down.Load() {
			continue
		}
		seen++
		if seen <= k {
			s.picked[seen-1] = i
			continue
		}
		if j := r.Intn(seen); j < k {
			s.picked[j] = i
		}
	}
	if seen < k {
		return seen
	}
	return k
}

// Admit routes one ball: probe d live shards in parallel on this
// session's persistent connections (writes first, then reads, so the
// probe fan-out costs one round-trip time, not d), admit at the shard
// with the fewest balls, and return where the ball landed. Shards that
// fail mid-call are dropped from the fan-out and marked down; the
// admission proceeds on the survivors (d-1 probing) and only fails
// once no shard is reachable across retry rounds.
func (s *Session) Admit(r *rng.RNG) (AdmitResult, error) {
	out, err := s.AdmitBatch(r, 1, s.batch[:0])
	s.batch = out[:0]
	if err != nil {
		return AdmitResult{}, err
	}
	return out[0], nil
}

// AdmitBatch routes count balls through ONE probe fan-out and ONE
// ADMIT exchange: the chosen (least-loaded) shard admits the whole
// batch through its local policy. Batching amortizes the two protocol
// round trips across count admissions — the cluster-level d-choice
// decision is made per batch rather than per ball, the standard
// granularity/throughput trade (each ball still gets a full local
// d-choice placement inside its shard). Results are appended to dst
// (one per ball, reusable across calls). On a mid-batch failure the
// whole batch is retried elsewhere, so balls are admitted at least
// once — the same contract as Admit.
func (s *Session) AdmitBatch(r *rng.RNG, count int, dst []AdmitResult) ([]AdmitResult, error) {
	if count < 1 {
		return dst, fmt.Errorf("router: admit batch of %d", count)
	}
	record := metrics.Enabled()
	var t0 time.Time
	if record {
		t0 = time.Now()
	}
	rounds := 2*len(s.rt.shards) + 2
	for attempt := 0; attempt < rounds; attempt++ {
		if attempt > 0 {
			time.Sleep(s.rt.opts.RetryBackoff)
		}
		k := s.pickLive(s.rt.opts.D, r)
		if k == 0 {
			continue // every shard down; wait for the health loop
		}
		// Phase 1: one PROBE write per picked shard. Writes go out
		// back to back so the replies overlap on the wire.
		for pi := 0; pi < k; pi++ {
			i := s.picked[pi]
			s.sumOK[pi] = false
			c, err := s.get(i)
			if err != nil {
				continue
			}
			if err := c.c.SetDeadline(time.Now().Add(s.rt.opts.CallTimeout)); err != nil {
				s.drop(i)
				continue
			}
			if err := c.fw.WriteFrame(dgram.TProbe, nil); err != nil {
				s.drop(i)
				continue
			}
			s.sumOK[pi] = true
		}
		// Phase 2: collect the summaries.
		got := 0
		for pi := 0; pi < k; pi++ {
			if !s.sumOK[pi] {
				continue
			}
			i := s.picked[pi]
			s.sumOK[pi] = false
			c := s.conns[i]
			if c == nil {
				continue
			}
			t, p, err := c.fr.ReadFrame()
			if err != nil || t != dgram.TSummary {
				s.drop(i)
				continue
			}
			sum, err := dgram.DecodeSummary(p)
			if err != nil {
				s.drop(i)
				continue
			}
			s.rt.noteSummary(i, sum)
			s.sums[pi] = sum
			s.sumOK[pi] = true
			got++
		}
		if got == 0 {
			continue
		}
		if record {
			metrics.ObserveHistogram("router.probe.fanout", int64(got))
			if got < s.rt.opts.D {
				metrics.AddCounter("router.admit.degraded", 1)
			}
		}
		// Phase 3: admit at the least-loaded probed shard; on failure
		// fall through to the next-least-loaded until none remain.
		for {
			best, bestTotal, ties := -1, int64(0), 0
			for pi := 0; pi < k; pi++ {
				if !s.sumOK[pi] {
					continue
				}
				switch {
				case best < 0 || s.sums[pi].Total < bestTotal:
					best, bestTotal, ties = pi, s.sums[pi].Total, 1
				case s.sums[pi].Total == bestTotal:
					// Uniform tie-break, reservoir style, so equal-loaded
					// shards split admissions evenly.
					ties++
					if r.Intn(ties) == 0 {
						best = pi
					}
				}
			}
			if best < 0 {
				break // exhausted this round's summaries; re-pick
			}
			i := s.picked[best]
			s.sumOK[best] = false
			out, err := s.admitAt(i, uint32(count), dst)
			if err != nil {
				continue
			}
			for j := len(dst); j < len(out); j++ {
				out[j].Probes = got
			}
			if record {
				metrics.AddCounter("router.admits", int64(count))
				metrics.AddCounter(s.rt.admitShardCounter(i), int64(count))
				metrics.ObserveHistogram("router.admit.latency_ns", time.Since(t0).Nanoseconds())
			}
			return out, nil
		}
	}
	metrics.AddCounter("router.admit.failures", 1)
	return dst, ErrNoLiveShards
}

// admitAt sends one ADMIT for count balls to shard i on the
// already-probed connection, appending one result per admitted ball to
// dst. On any failure dst is returned unchanged.
func (s *Session) admitAt(i int, count uint32, dst []AdmitResult) ([]AdmitResult, error) {
	c := s.conns[i]
	if c == nil {
		return dst, fmt.Errorf("%w: shard %d", ErrShardDown, i)
	}
	s.req = dgram.AppendAdmitReq(s.req[:0], dgram.AdmitReq{Count: count})
	if err := c.fw.WriteFrame(dgram.TAdmit, s.req); err != nil {
		s.drop(i)
		return dst, err
	}
	t, p, err := c.fr.ReadFrame()
	if err != nil {
		s.drop(i)
		return dst, err
	}
	switch t {
	case dgram.TAdmitOK:
		s.pairs = s.pairs[:0]
		s.pairs, err = dgram.DecodeBinLoads(p, s.pairs)
		if err != nil || len(s.pairs) != int(count) {
			s.drop(i)
			return dst, fmt.Errorf("router: shard %d ADMIT reply: %d pairs, %v", i, len(s.pairs), err)
		}
		for _, bl := range s.pairs {
			dst = append(dst, AdmitResult{Shard: i, Bin: bl.Bin, Load: bl.Load})
		}
		return dst, nil
	case dgram.TErr:
		e, _ := dgram.DecodeErrReply(p)
		if e.Code == dgram.CodeDraining {
			// The shard is shutting down: push traffic elsewhere but
			// keep the connection polite.
			s.rt.markDown(i)
			s.dropConnOnly(i)
		}
		return dst, e
	default:
		s.drop(i)
		return dst, fmt.Errorf("router: shard %d answered ADMIT with %v", i, t)
	}
}

// Free routes one departure drawn cluster-wide: a shard is chosen with
// probability proportional to its cached ball count (the cluster-level
// mirror of Scenario A's uniform-ball draw; the shard then applies its
// own configured scenario), and the departure retries on other live
// shards if the chosen one is empty or unreachable.
func (s *Session) Free(r *rng.RNG) (FreeResult, error) {
	rounds := 2*len(s.rt.shards) + 2
	empties := 0
	for attempt := 0; attempt < rounds; attempt++ {
		i := s.pickWeighted(r)
		if i < 0 {
			time.Sleep(s.rt.opts.RetryBackoff)
			continue
		}
		res, err := s.FreeAt(i, dgram.FreeReq{Mode: dgram.FreeScenario, Count: 1})
		if err == nil {
			metrics.AddCounter("router.frees", 1)
			return res, nil
		}
		var e dgram.ErrReply
		if errors.As(err, &e) && e.Code == dgram.CodeEmpty {
			// That shard is empty; zero its cached weight and try another.
			s.rt.shards[i].total.Store(0)
			if empties++; empties >= len(s.rt.shards) {
				return FreeResult{}, ErrClusterEmpty
			}
		}
	}
	metrics.AddCounter("router.free.failures", 1)
	return FreeResult{}, ErrNoLiveShards
}

// pickWeighted draws a live shard with probability proportional to its
// cached total (uniform among live shards when the cache is all
// zeros). Returns -1 when no shard is live.
func (s *Session) pickWeighted(r *rng.RNG) int {
	if cap(s.weight) < len(s.rt.shards) {
		s.weight = make([]int64, len(s.rt.shards))
	}
	s.weight = s.weight[:len(s.rt.shards)]
	var total int64
	live := 0
	for i := range s.rt.shards {
		s.weight[i] = -1
		if s.rt.shards[i].down.Load() {
			continue
		}
		w := s.rt.shards[i].total.Load()
		if w < 0 {
			w = 0
		}
		s.weight[i] = w
		total += w
		live++
	}
	if live == 0 {
		return -1
	}
	if total <= 0 {
		// Nothing cached yet: uniform over live shards.
		k := r.Intn(live)
		for i := range s.weight {
			if s.weight[i] >= 0 {
				if k == 0 {
					return i
				}
				k--
			}
		}
		return -1
	}
	target := int64(r.Uint64n(uint64(total)))
	for i := range s.weight {
		if s.weight[i] <= 0 {
			continue
		}
		if target < s.weight[i] {
			return i
		}
		target -= s.weight[i]
	}
	// Rounding/race fallback: last live shard with weight.
	for i := len(s.weight) - 1; i >= 0; i-- {
		if s.weight[i] > 0 {
			return i
		}
	}
	return -1
}

// FreeAt sends one FREE request to shard i.
func (s *Session) FreeAt(i int, q dgram.FreeReq) (FreeResult, error) {
	s.req = dgram.AppendFreeReq(s.req[:0], q)
	t, p, err := s.call(i, dgram.TFree, s.req)
	if err != nil {
		return FreeResult{}, err
	}
	switch t {
	case dgram.TFreeOK:
		s.pairs = s.pairs[:0]
		s.pairs, err = dgram.DecodeBinLoads(p, s.pairs)
		if err != nil || len(s.pairs) != 1 {
			s.drop(i)
			return FreeResult{}, fmt.Errorf("router: shard %d FREE reply: %v", i, err)
		}
		return FreeResult{Shard: i, Bin: s.pairs[0].Bin, Load: s.pairs[0].Load}, nil
	case dgram.TErr:
		e, _ := dgram.DecodeErrReply(p)
		if e.Code == dgram.CodeDraining {
			s.rt.markDown(i)
			s.dropConnOnly(i)
		}
		return FreeResult{}, e
	default:
		s.drop(i)
		return FreeResult{}, fmt.Errorf("router: shard %d answered FREE with %v", i, t)
	}
}

// Crash injects k extra balls into shard i's bin — the cluster-level
// fault injector — and returns the bin's new load.
func (s *Session) Crash(i int, bin uint32, k uint32) (int32, error) {
	s.req = dgram.AppendCrashReq(s.req[:0], dgram.CrashReq{Bin: bin, K: k})
	t, p, err := s.call(i, dgram.TCrash, s.req)
	if err != nil {
		return 0, err
	}
	switch t {
	case dgram.TCrashOK:
		return dgram.DecodeLoad(p)
	case dgram.TErr:
		e, _ := dgram.DecodeErrReply(p)
		return 0, e
	default:
		s.drop(i)
		return 0, fmt.Errorf("router: shard %d answered CRASH with %v", i, t)
	}
}

// State fetches shard i's full load vector (appending into loads,
// which may be reused across calls) plus its clocks.
func (s *Session) State(i int, loads []int32) (dgram.StateReply, error) {
	t, p, err := s.call(i, dgram.TState, nil)
	if err != nil {
		return dgram.StateReply{}, err
	}
	switch t {
	case dgram.TStateOK:
		sr, err := dgram.DecodeStateReply(p, loads)
		if err != nil {
			s.drop(i)
			return dgram.StateReply{}, err
		}
		return sr, nil
	case dgram.TErr:
		e, _ := dgram.DecodeErrReply(p)
		return dgram.StateReply{}, e
	default:
		s.drop(i)
		return dgram.StateReply{}, fmt.Errorf("router: shard %d answered STATE with %v", i, t)
	}
}

// admitShardCounter returns the per-shard admit-share counter name,
// preformatted so the hot path never fmt.Sprintfs.
func (rt *Router) admitShardCounter(i int) string {
	return rt.shards[i].admitCounter
}
