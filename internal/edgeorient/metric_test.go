package edgeorient

import (
	"testing"

	"dynalloc/internal/rng"
)

func TestMultisetDiff(t *testing.T) {
	x := State{3, 1, 0, -4}
	y := State{2, 2, 0, -4}
	xe, ye, ok := multisetDiff(x, y, 4)
	if !ok {
		t.Fatal("diff bailed out")
	}
	if len(xe) != 2 || xe[0] != 3 || xe[1] != 1 {
		t.Fatalf("xExtra = %v", xe)
	}
	if len(ye) != 2 || ye[0] != 2 || ye[1] != 2 {
		t.Fatalf("yExtra = %v", ye)
	}
	// Limit respected.
	if _, _, ok := multisetDiff(State{5, 0, -1, -4}, State{2, 1, 1, -4}, 2); ok {
		t.Fatal("limit not enforced")
	}
	// Identical states: empty diff.
	xe, ye, ok = multisetDiff(x, x, 4)
	if !ok || len(xe) != 0 || len(ye) != 0 {
		t.Fatalf("self diff = %v %v", xe, ye)
	}
}

func TestGAdjacent(t *testing.T) {
	y := State{2, 2, 0, -4}
	x := State{3, 1, 0, -4} // split the two 2s
	d, ok := gAdjacent(x, y)
	if !ok || d != 2 {
		t.Fatalf("gAdjacent = (%d, %v)", d, ok)
	}
	// Not adjacent the other way round (y is a merge of x, not a split).
	if _, ok := gAdjacent(y, x); ok {
		t.Fatal("reverse direction should not match the split pattern")
	}
	// Unrelated states.
	if _, ok := gAdjacent(State{1, 0, -1}, State{2, -1, -1}); ok {
		t.Fatal("non-adjacent states matched")
	}
	if _, ok := gAdjacent(x, x); ok {
		t.Fatal("identical states are not G-adjacent")
	}
}

func TestSkDistance(t *testing.T) {
	// Construct an S_2 pair: x extras {a=2, c=-1} (a-c=3, k=2), y extras
	// {1, 0}, and x empty strictly between -1 and 2 (discs 0 and 1).
	x := State{2, 2, -1, -3}
	y := State{2, 1, 0, -3}
	k, ok := skDistance(x, y)
	if !ok || k != 2 {
		t.Fatalf("skDistance = (%d, %v), want (2, true)", k, ok)
	}
	// Symmetric call must agree (Shat is symmetrized).
	k, ok = skDistance(y, x)
	if !ok || k != 2 {
		t.Fatalf("reverse skDistance = (%d, %v)", k, ok)
	}
	// Violating the emptiness condition kills the relation: add a vertex
	// at disc 1 to x (and compensate in both states).
	x2 := State{2, 2, 1, -1, -4}
	y2 := State{2, 1, 1, 0, -4}
	if _, ok := skDistance(x2, y2); ok {
		t.Fatal("emptiness condition not enforced")
	}
}

func TestGNeighborsSymmetric(t *testing.T) {
	// Ghat is symmetric: z in gNeighbors(s) iff s in gNeighbors(z).
	r := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		s := RandomReachable(2+r.Intn(5), r.Intn(20), r)
		for _, z := range gNeighbors(s) {
			back := false
			for _, w := range gNeighbors(z) {
				if w.Equal(s) {
					back = true
					break
				}
			}
			if !back {
				t.Fatalf("Ghat not symmetric: %v -> %v has no reverse", s, z)
			}
		}
	}
}

func TestGNeighborsAreAdjacent(t *testing.T) {
	s := State{1, 1, 0, -2}
	for _, z := range gNeighbors(s) {
		if !z.IsValid() {
			t.Fatalf("invalid neighbor %v", z)
		}
		_, ok1 := gAdjacent(z, s)
		_, ok2 := gAdjacent(s, z)
		if !ok1 && !ok2 {
			t.Fatalf("gNeighbors produced non-adjacent %v from %v", z, s)
		}
	}
}

func TestDeltaBFSBasics(t *testing.T) {
	x := State{3, 1, 0, -4}
	y := State{2, 2, 0, -4}
	if d, ok := DeltaBFS(x, x, 3); !ok || d != 0 {
		t.Fatalf("Delta(x,x) = (%d, %v)", d, ok)
	}
	if d, ok := DeltaBFS(x, y, 3); !ok || d != 1 {
		t.Fatalf("Delta(adjacent) = (%d, %v)", d, ok)
	}
	if d, ok := DeltaBFS(y, x, 3); !ok || d != 1 {
		t.Fatalf("Delta symmetric failed: (%d, %v)", d, ok)
	}
}

func TestDeltaBFSSkPair(t *testing.T) {
	// The S_2 pair above has distance exactly 2? Delta is min of the S_k
	// value and any G-path; for this pair no single G-edge connects them,
	// so Delta = 2.
	x := State{2, 2, -1, -3}
	y := State{2, 1, 0, -3}
	d, ok := DeltaBFS(x, y, 4)
	if !ok || d != 2 {
		t.Fatalf("Delta(S_2 pair) = (%d, %v), want 2", d, ok)
	}
}

// TestDeltaBFSMetricProperties: symmetry and triangle inequality on
// random reachable triples of a small instance.
func TestDeltaBFSMetricProperties(t *testing.T) {
	r := rng.New(8)
	const n, cap = 4, 6
	for trial := 0; trial < 60; trial++ {
		a := RandomReachable(n, r.Intn(8), r)
		b := RandomReachable(n, r.Intn(8), r)
		c := RandomReachable(n, r.Intn(8), r)
		dab, ok1 := DeltaBFS(a, b, cap)
		dba, ok2 := DeltaBFS(b, a, cap)
		if ok1 != ok2 || (ok1 && dab != dba) {
			t.Fatalf("asymmetric: Delta(%v,%v)=(%d,%v) vs (%d,%v)", a, b, dab, ok1, dba, ok2)
		}
		dac, ok3 := DeltaBFS(a, c, cap)
		dbc, ok4 := DeltaBFS(b, c, cap)
		if ok1 && ok3 && ok4 && dac > dab+dbc {
			t.Fatalf("triangle violated: d(a,c)=%d > d(a,b)+d(b,c)=%d+%d", dac, dab, dbc)
		}
		if ok1 && dab == 0 && !a.Equal(b) {
			t.Fatalf("zero distance for distinct states %v, %v", a, b)
		}
	}
}

func TestDeltaBFSCapRespected(t *testing.T) {
	// Far-apart states: adversarial vs zero with height 6 needs many
	// moves; a cap of 1 must report failure.
	x := AdversarialState(6, 6)
	y := NewState(6)
	if _, ok := DeltaBFS(x, y, 1); ok {
		t.Fatal("cap not respected")
	}
}
