package edgeorient

import (
	"testing"

	"dynalloc/internal/rng"
	"dynalloc/internal/stats"
)

// skPairFixtures returns hand-built pairs (x, y, k) with y in Shat_k(x),
// verified against skDistance, for the Lemma 6.3 contraction check.
func skPairFixtures(t *testing.T) []struct {
	x, y State
	k    int
} {
	fixtures := []struct {
		x, y State
		k    int
	}{
		// n = 4, k = 2: x extras {2, -1}, y extras {1, 0}, gap empty in x.
		{State{2, 2, -1, -3}, State{2, 1, 0, -3}, 2},
		// n = 5, k = 2: same move embedded in a larger state.
		{State{3, 2, -1, -1, -3}, State{3, 1, 0, -1, -3}, 2},
		// n = 4, k = 3: x extras {2, -2}, y extras {1, -1}, discs -1..1
		// empty in x.
		{State{3, 2, -2, -3}, State{3, 1, -1, -3}, 3},
	}
	for i := range fixtures {
		f := &fixtures[i]
		f.x = FromDiscrepancies(f.x)
		f.y = FromDiscrepancies(f.y)
		k, ok := skDistance(f.x, f.y)
		if !ok || k != f.k {
			t.Fatalf("fixture %d is not an S_%d pair (got %d, %v): %v vs %v", i, f.k, k, ok, f.x, f.y)
		}
	}
	return fixtures
}

// TestLemma63Contraction is the executable Lemma 6.3: on pairs at
// distance k (S_k related), one coupled step keeps the distance within
// the case-analysis window [k-2, k+1] and does not increase it in
// expectation.
func TestLemma63Contraction(t *testing.T) {
	r := rng.New(63)
	for i, f := range skPairFixtures(t) {
		var sum stats.Summary
		const trialCount = 6000
		for trial := 0; trial < trialCount; trial++ {
			c := NewCoupled(f.x, f.y, r)
			c.Step()
			d, ok := DeltaBFS(c.X, c.Y, f.k+3)
			if !ok {
				t.Fatalf("fixture %d: post-step distance above %d: %v vs %v", i, f.k+3, c.X, c.Y)
			}
			if d > f.k+1 || d < f.k-2 {
				t.Fatalf("fixture %d: Delta' = %d outside [k-2, k+1] for k = %d", i, d, f.k)
			}
			sum.AddInt(d)
		}
		// E[Delta'] <= Delta = k, with slack for Monte Carlo noise.
		if sum.Mean() > float64(f.k)+3*sum.SE()+1e-9 {
			t.Fatalf("fixture %d: E[Delta'] = %.4f exceeds k = %d", i, sum.Mean(), f.k)
		}
	}
}

// TestSkDistanceFixtureSymmetry: the fixtures are symmetric relations.
func TestSkDistanceFixtureSymmetry(t *testing.T) {
	for i, f := range skPairFixtures(t) {
		k, ok := skDistance(f.y, f.x)
		if !ok || k != f.k {
			t.Fatalf("fixture %d not symmetric: (%d, %v)", i, k, ok)
		}
	}
}
