package edgeorient

import (
	"fmt"

	"dynalloc/internal/markov"
)

// Chain is the exact Markov chain of Section 6 for small n: the lazy
// edge-orientation chain restricted to Psi, the set of states reachable
// from the all-zero state. Anderson et al. (cited by the paper) show the
// discrepancies stay within a bounded window on Psi, so the closure is
// finite; NewChain computes it by breadth-first closure over the
// transition relation.
type Chain struct {
	n      int
	states []State
	index  map[string]int
}

// NewChain enumerates Psi for n vertices. It panics if the closure
// exceeds maxStates (use small n; the space grows quickly).
func NewChain(n, maxStates int) *Chain {
	c := &Chain{n: n, index: make(map[string]int)}
	zero := NewState(n)
	c.add(zero)
	for head := 0; head < len(c.states); head++ {
		s := c.states[head]
		for phi := 0; phi < n-1; phi++ {
			for psi := phi + 1; psi < n; psi++ {
				t := s.Clone()
				t.Orient(phi, psi)
				if _, seen := c.index[t.Key()]; !seen {
					c.add(t)
					if len(c.states) > maxStates {
						panic(fmt.Sprintf("edgeorient: Psi for n=%d exceeds %d states", n, maxStates))
					}
				}
			}
		}
	}
	return c
}

func (c *Chain) add(s State) {
	c.index[s.Key()] = len(c.states)
	c.states = append(c.states, s)
}

// NumStates implements markov.Chain.
func (c *Chain) NumStates() int { return len(c.states) }

// State returns the state with id i.
func (c *Chain) State(i int) State { return c.states[i] }

// Index returns the id of a state, which must be in Psi.
func (c *Chain) Index(s State) int {
	i, ok := c.index[s.Key()]
	if !ok {
		panic(fmt.Sprintf("edgeorient: state %v not reachable from zero", s))
	}
	return i
}

// Transitions implements markov.Chain: with probability 1/2 the lazy bit
// skips the step; otherwise a uniform pair of ranks is oriented.
func (c *Chain) Transitions(s int) []markov.Edge {
	cur := c.states[s]
	n := c.n
	pairs := n * (n - 1) / 2
	acc := map[int]float64{s: 0.5}
	per := 0.5 / float64(pairs)
	for phi := 0; phi < n-1; phi++ {
		for psi := phi + 1; psi < n; psi++ {
			t := cur.Clone()
			t.Orient(phi, psi)
			acc[c.Index(t)] += per
		}
	}
	edges := make([]markov.Edge, 0, len(acc))
	for to, p := range acc {
		edges = append(edges, markov.Edge{To: to, P: p})
	}
	return edges
}

// ExpectedUnfairness returns the expectation of the unfairness under a
// distribution over Psi.
func (c *Chain) ExpectedUnfairness(p []float64) float64 {
	if len(p) != len(c.states) {
		panic("edgeorient: distribution length mismatch")
	}
	e := 0.0
	for i, w := range p {
		e += w * float64(c.states[i].Unfairness())
	}
	return e
}
