package edgeorient

// Exact one-step analysis of the Section 6 coupling, the analogue of
// core.ExactGammaA/B for the edge orientation chain: the coupling's
// randomness is just (phi, psi, b) — a uniform rank pair and a fair
// bit — so its one-step law on a given pair can be enumerated outright
// and the Lemma 6.2 contraction verified without Monte Carlo.

// ExactEdgeContraction is the exactly-computed one-step law of the
// Section 6 coupling on one state pair.
type ExactEdgeContraction struct {
	MeanDelta float64 // E[Delta'] under the Definition 6.3 metric
	ZeroFreq  float64 // Pr[coalesced]
	MaxDelta  int
}

// ExactGammaEdge enumerates every (phi, psi, b) outcome of the coupled
// step on (x, y) and computes the exact expected post-step distance
// under the Definition 6.3 metric (capped at metricCap; it panics if a
// successor pair exceeds the cap, so results are exact, never clipped).
// Lemma 6.2 asserts E[Delta'] <= 1 - 2/(n(n-1)) when Delta(x, y) = 1;
// TestLemma62Exhaustive checks that over every split pair of the
// reachable space for small n.
func ExactGammaEdge(x, y State, metricCap int) ExactEdgeContraction {
	if x.N() != y.N() {
		panic("edgeorient: exact coupling on different sizes")
	}
	n := x.N()
	pairs := n * (n - 1) / 2
	w := 1.0 / float64(2*pairs) // each (phi, psi, b) outcome
	var out ExactEdgeContraction
	for phi := 0; phi < n-1; phi++ {
		for psi := phi + 1; psi < n; psi++ {
			for _, b := range []bool{false, true} {
				bStar := b
				if d, ok := gAdjacent(x, y); ok &&
					x[phi] == d+1 && x[psi] == d-1 && y[phi] == d && y[psi] == d {
					bStar = !b
				} else if d, ok := gAdjacent(y, x); ok &&
					y[phi] == d+1 && y[psi] == d-1 && x[phi] == d && x[psi] == d {
					bStar = !b
				}
				xn := x.Clone()
				yn := y.Clone()
				if b {
					xn.Orient(phi, psi)
				}
				if bStar {
					yn.Orient(phi, psi)
				}
				d, ok := DeltaBFS(xn, yn, metricCap)
				if !ok {
					panic("edgeorient: successor pair exceeded the metric cap; raise it")
				}
				out.MeanDelta += w * float64(d)
				if d == 0 {
					out.ZeroFreq += w
				}
				if d > out.MaxDelta {
					out.MaxDelta = d
				}
			}
		}
	}
	return out
}

// AllSplitPairs enumerates every Gamma pair (x, y) with x a split of y
// (Delta = 1) where y ranges over the reachable space Psi for n
// vertices. Used for exhaustive Lemma 6.2 verification.
func AllSplitPairs(n, maxStates int) [][2]State {
	chain := NewChain(n, maxStates)
	var out [][2]State
	for s := 0; s < chain.NumStates(); s++ {
		y := chain.State(s)
		// Every disc with multiplicity >= 2 yields one split pair.
		for i := 0; i < n; {
			j := i
			for j < n && y[j] == y[i] {
				j++
			}
			if j-i >= 2 {
				x := y.Clone()
				x.decAtValue(y[i])
				x.incAtValue(y[i])
				out = append(out, [2]State{x, y})
			}
			i = j
		}
	}
	return out
}
