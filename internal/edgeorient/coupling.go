package edgeorient

import "dynalloc/internal/rng"

// multisetDiff returns the values present in x but not y (xExtra) and
// vice versa (yExtra), with multiplicity, walking the two sorted vectors.
// If more than limit total differences accumulate it returns ok = false
// (the caller only cares about small differences).
func multisetDiff(x, y State, limit int) (xExtra, yExtra []int, ok bool) {
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] == y[j]:
			i++
			j++
		case x[i] > y[j]:
			xExtra = append(xExtra, x[i])
			i++
		default:
			yExtra = append(yExtra, y[j])
			j++
		}
		if len(xExtra)+len(yExtra) > limit {
			return nil, nil, false
		}
	}
	for ; i < len(x); i++ {
		xExtra = append(xExtra, x[i])
	}
	for ; j < len(y); j++ {
		yExtra = append(yExtra, y[j])
	}
	if len(xExtra)+len(yExtra) > limit {
		return nil, nil, false
	}
	return xExtra, yExtra, true
}

// gAdjacent reports whether x = y + "split at disc d" — i.e. y has two
// vertices at discrepancy d where x instead has one at d+1 and one at
// d-1 (Definition 6.1: y is in G(x) with x = y + e_l - 2e_{l+1} +
// e_{l+2}). Returns the split disc d.
func gAdjacent(x, y State) (d int, ok bool) {
	xe, ye, ok := multisetDiff(x, y, 4)
	if !ok || len(xe) != 2 || len(ye) != 2 {
		return 0, false
	}
	// xe sorted descending by construction; need xe = {d+1, d-1}, ye = {d, d}.
	if ye[0] != ye[1] {
		return 0, false
	}
	d = ye[0]
	if xe[0] == d+1 && xe[1] == d-1 {
		return d, true
	}
	return 0, false
}

// Coupled runs two copies of the Section 6 Markov chain under the
// paper's coupling: both copies see the same uniform rank pair
// (phi, psi) and the same lazy bit, EXCEPT in the special coalescing
// case of Lemma 6.2 (case 7) where the second copy flips its bit:
// when X and Y are G-adjacent with split disc d and the drawn ranks hit
// exactly the differing vertices (X at d+1 and d-1, Y at d and d), the
// two moves are mirror images, so giving Y the complemented bit makes
// the pair coalesce no matter how the bit lands.
//
// Each copy, viewed alone, performs exactly the lazy chain's step, so
// this is a faithful coupling; the time until X and Y coincide upper
// bounds the mixing time by the coupling inequality.
type Coupled struct {
	X, Y  State
	r     *rng.RNG
	steps int64
}

// NewCoupled returns a coupled pair from the two (copied) start states.
// The states must have the same number of vertices.
func NewCoupled(x, y State, r *rng.RNG) *Coupled {
	if x.N() != y.N() {
		panic("edgeorient: coupled states must have equal sizes")
	}
	return &Coupled{X: x.Clone(), Y: y.Clone(), r: r}
}

// Steps returns the number of coupled steps executed.
func (c *Coupled) Steps() int64 { return c.steps }

// Coalesced reports whether the two copies coincide.
func (c *Coupled) Coalesced() bool { return c.X.Equal(c.Y) }

// Distance returns the rank-wise L1 distance between the copies, a cheap
// progress surrogate for the composite metric of Definition 6.3.
func (c *Coupled) Distance() int { return c.X.L1(c.Y) }

// Step advances both copies by one coupled transition.
func (c *Coupled) Step() {
	phi, psi := c.r.DistinctPair(c.X.N())
	b := c.r.Bool()
	bStar := b
	if d, ok := gAdjacent(c.X, c.Y); ok {
		if c.X[phi] == d+1 && c.X[psi] == d-1 && c.Y[phi] == d && c.Y[psi] == d {
			bStar = !b
		}
	} else if d, ok := gAdjacent(c.Y, c.X); ok {
		if c.Y[phi] == d+1 && c.Y[psi] == d-1 && c.X[phi] == d && c.X[psi] == d {
			bStar = !b
		}
	}
	if b {
		c.X.Orient(phi, psi)
	}
	if bStar {
		c.Y.Orient(phi, psi)
	}
	c.steps++
}

// CoalescenceTime runs the coupling until the copies coincide and
// returns the number of steps, or (maxSteps, false) on timeout.
func (c *Coupled) CoalescenceTime(maxSteps int64) (int64, bool) {
	if c.Coalesced() {
		return 0, true
	}
	for t := int64(1); t <= maxSteps; t++ {
		c.Step()
		if c.Coalesced() {
			return t, true
		}
	}
	return maxSteps, false
}

// GAdjacentPair builds a pair (x, y) at metric distance 1: y is a
// reachable-looking random state with at least two vertices at one
// discrepancy, and x splits such a pair. These are the Gamma pairs of
// Lemma 6.2, used for contraction measurements.
func GAdjacentPair(n int, r *rng.RNG, warmup int) (x, y State) {
	for {
		y = RandomReachable(n, warmup, r)
		// Find discs with multiplicity >= 2; pick one uniformly.
		var candidates []int
		for i := 0; i < n; {
			j := i
			for j < n && y[j] == y[i] {
				j++
			}
			if j-i >= 2 {
				candidates = append(candidates, y[i])
			}
			i = j
		}
		if len(candidates) == 0 {
			continue // extremely unlikely for n >= 3
		}
		d := candidates[r.Intn(len(candidates))]
		x = y.Clone()
		x.decAtValue(d)
		x.incAtValue(d)
		// After dec one d became d-1; after inc one (other) d became d+1.
		return x, y
	}
}
