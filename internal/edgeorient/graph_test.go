package edgeorient

import (
	"testing"

	"dynalloc/internal/rng"
	"dynalloc/internal/stats"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	if g.N() != 4 || g.Edges() != 0 || g.Unfairness() != 0 {
		t.Fatalf("fresh graph wrong: %+v", g)
	}
	r := rng.New(1)
	g.AddEdge(0, 1, Greedy, r)
	if g.Edges() != 1 {
		t.Fatalf("edges = %d", g.Edges())
	}
	if g.Disc(0)+g.Disc(1) != 0 {
		t.Fatal("edge did not balance")
	}
	if g.Unfairness() != 1 {
		t.Fatalf("unfairness = %d", g.Unfairness())
	}
}

func TestGraphGreedyOrientation(t *testing.T) {
	g := NewGraph(3)
	r := rng.New(2)
	// Make vertex 0 heavy: repeatedly orient 0->1 manually via greedy on
	// a fresh graph where 0 already has positive disc.
	g.outdeg[0] = 3 // disc(0) = 3
	g.indeg[1] = 3  // disc(1) = -3
	// Greedy must orient from the smaller-disc endpoint (1) to 0.
	g.AddEdge(0, 1, Greedy, r)
	if g.Disc(0) != 2 || g.Disc(1) != -2 {
		t.Fatalf("greedy mis-oriented: disc0=%d disc1=%d", g.Disc(0), g.Disc(1))
	}
	// AntiGreedy does the opposite.
	g.AddEdge(0, 1, AntiGreedy, r)
	if g.Disc(0) != 3 || g.Disc(1) != -3 {
		t.Fatalf("anti-greedy mis-oriented: disc0=%d disc1=%d", g.Disc(0), g.Disc(1))
	}
}

func TestGraphInvariants(t *testing.T) {
	r := rng.New(3)
	for _, p := range []Protocol{Greedy, RandomOrient, AntiGreedy} {
		g := NewGraph(8)
		for i := 0; i < 5000; i++ {
			g.Step(p, r)
			if g.TotalDiscrepancy() != 0 {
				t.Fatalf("%v: discrepancies unbalanced at step %d", p, i)
			}
		}
		if g.Edges() != 5000 {
			t.Fatalf("%v: edge count %d", p, g.Edges())
		}
		if !g.DiscState().IsValid() {
			t.Fatalf("%v: projection invalid", p)
		}
	}
}

func TestGraphBadEdgesPanic(t *testing.T) {
	g := NewGraph(3)
	r := rng.New(4)
	for _, pair := range [][2]int{{0, 0}, {-1, 1}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("edge %v accepted", pair)
				}
			}()
			g.AddEdge(pair[0], pair[1], Greedy, r)
		}()
	}
}

// TestGraphMatchesStateLaw validates the exchangeability reduction: the
// distribution of the sorted discrepancy vector after T greedy edges is
// the same whether simulated on the identity-tracking Graph or on the
// canonical State. (Statistical check via TV distance of state keys.)
func TestGraphMatchesStateLaw(t *testing.T) {
	const n, T, trials = 4, 12, 120000
	rg := rng.New(5)
	graphCounts := make(map[string]int)
	for trial := 0; trial < trials; trial++ {
		g := NewGraph(n)
		for i := 0; i < T; i++ {
			g.Step(Greedy, rg)
		}
		graphCounts[g.DiscState().Key()]++
	}
	rs := rng.New(6)
	stateCounts := make(map[string]int)
	for trial := 0; trial < trials; trial++ {
		s := NewState(n)
		for i := 0; i < T; i++ {
			s.StepGreedy(rs)
		}
		stateCounts[s.Key()]++
	}
	if d := stats.TVDistanceCounts(graphCounts, stateCounts); d > 0.012 {
		t.Fatalf("graph and state laws differ: TV = %.4f", d)
	}
}

// TestProtocolOrdering: after many edges, greedy keeps unfairness tiny,
// random grows like sqrt(T/n), anti-greedy grows fastest.
func TestProtocolOrdering(t *testing.T) {
	const n, T = 32, 60000
	r := rng.New(7)
	u := make(map[Protocol]int)
	for _, p := range []Protocol{Greedy, RandomOrient, AntiGreedy} {
		g := NewGraph(n)
		for i := 0; i < T; i++ {
			g.Step(p, r)
		}
		u[p] = g.Unfairness()
	}
	if !(u[Greedy] < u[RandomOrient] && u[RandomOrient] < u[AntiGreedy]) {
		t.Fatalf("unfairness ordering violated: greedy=%d random=%d anti=%d",
			u[Greedy], u[RandomOrient], u[AntiGreedy])
	}
	if u[Greedy] > 6 {
		t.Fatalf("greedy unfairness %d too large", u[Greedy])
	}
}

func TestProtocolString(t *testing.T) {
	if Greedy.String() != "greedy" || RandomOrient.String() != "random" || AntiGreedy.String() != "anti-greedy" {
		t.Fatal("protocol names wrong")
	}
}
