package edgeorient

import (
	"fmt"

	"dynalloc/internal/rng"
)

// Protocol selects how an arriving undirected edge is oriented.
type Protocol int

const (
	// Greedy orients from the endpoint with the smaller discrepancy to
	// the larger — the protocol of Ajtai et al. analyzed by the paper.
	Greedy Protocol = iota
	// RandomOrient flips a fair coin per edge: the no-information
	// baseline, whose unfairness grows like the square root of time.
	RandomOrient
	// AntiGreedy orients from the larger discrepancy to the smaller —
	// the adversarial baseline, driving unfairness up as fast as a
	// local rule can.
	AntiGreedy
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case Greedy:
		return "greedy"
	case RandomOrient:
		return "random"
	case AntiGreedy:
		return "anti-greedy"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Graph is the concrete multigraph view of the edge orientation problem:
// unlike State (which exploits vertex exchangeability and keeps only the
// sorted discrepancy vector), Graph tracks every vertex identity, the
// number of edges, and per-vertex in/out degree. It exists to validate
// the exchangeability reduction — the law of Graph's sorted discrepancy
// vector must equal the law of State — and to compare orientation
// protocols.
type Graph struct {
	outdeg []int64
	indeg  []int64
	edges  int64
}

// NewGraph returns the edge-less multigraph on n vertices (n >= 2).
func NewGraph(n int) *Graph {
	if n < 2 {
		panic("edgeorient: need at least 2 vertices")
	}
	return &Graph{outdeg: make([]int64, n), indeg: make([]int64, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.outdeg) }

// Edges returns the number of edges added so far.
func (g *Graph) Edges() int64 { return g.edges }

// Disc returns the discrepancy (outdeg - indeg) of vertex v.
func (g *Graph) Disc(v int) int { return int(g.outdeg[v] - g.indeg[v]) }

// AddEdge adds an undirected edge {a, b} oriented by the protocol
// (ties in Greedy/AntiGreedy are broken toward a->b). The chosen tail
// gains an out-edge (+1 discrepancy), the head an in-edge (-1).
func (g *Graph) AddEdge(a, b int, p Protocol, r *rng.RNG) {
	if a == b || a < 0 || b < 0 || a >= g.N() || b >= g.N() {
		panic(fmt.Sprintf("edgeorient: bad edge (%d, %d)", a, b))
	}
	da, db := g.Disc(a), g.Disc(b)
	tail, head := a, b
	switch p {
	case Greedy:
		if da > db {
			tail, head = b, a
		}
	case AntiGreedy:
		if da < db {
			tail, head = b, a
		}
	case RandomOrient:
		if r.Bool() {
			tail, head = b, a
		}
	default:
		panic("edgeorient: unknown protocol")
	}
	g.outdeg[tail]++
	g.indeg[head]++
	g.edges++
}

// Step adds one uniformly random edge under the protocol.
func (g *Graph) Step(p Protocol, r *rng.RNG) {
	a, b := r.DistinctPair(g.N())
	g.AddEdge(a, b, p, r)
}

// Unfairness returns max_v |outdeg(v) - indeg(v)|.
func (g *Graph) Unfairness() int {
	u := 0
	for v := range g.outdeg {
		d := g.Disc(v)
		if d < 0 {
			d = -d
		}
		if d > u {
			u = d
		}
	}
	return u
}

// DiscState returns the exchangeable-state projection of the graph: the
// sorted discrepancy vector as a State.
func (g *Graph) DiscState() State {
	d := make([]int, g.N())
	for v := range d {
		d[v] = g.Disc(v)
	}
	return FromDiscrepancies(d)
}

// TotalDiscrepancy returns the sum of discrepancies, which is invariantly
// zero (every edge adds +1 and -1).
func (g *Graph) TotalDiscrepancy() int64 {
	var s int64
	for v := range g.outdeg {
		s += g.outdeg[v] - g.indeg[v]
	}
	return s
}
