package edgeorient

import (
	"testing"
	"testing/quick"

	"dynalloc/internal/rng"
)

func TestNewState(t *testing.T) {
	s := NewState(5)
	if s.N() != 5 || !s.IsValid() || s.Unfairness() != 0 {
		t.Fatalf("NewState(5) = %v", s)
	}
}

func TestNewStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewState(1)
}

func TestFromDiscrepancies(t *testing.T) {
	s := FromDiscrepancies([]int{-2, 3, 0, -1})
	want := State{3, 0, -1, -2}
	if !s.Equal(want) {
		t.Fatalf("FromDiscrepancies = %v, want %v", s, want)
	}
}

func TestFromDiscrepanciesPanicsOnUnbalanced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromDiscrepancies([]int{1, 0})
}

func TestUnfairness(t *testing.T) {
	cases := []struct {
		s    State
		want int
	}{
		{State{0, 0, 0}, 0},
		{State{2, 0, -2}, 2},
		{State{1, 0, -1}, 1},
		{State{3, -1, -1, -1}, 3},
		{State{1, 1, 1, -3}, 3},
	}
	for _, c := range cases {
		if got := c.s.Unfairness(); got != c.want {
			t.Errorf("Unfairness(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

// TestOrientMatchesNaive cross-checks the O(log n) in-place Orient
// against the naive "modify, then sort" implementation.
func TestOrientMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 3000; trial++ {
		n := 2 + r.Intn(8)
		s := RandomReachable(n, r.Intn(30), r)
		phi, psi := r.DistinctPair(n)
		naive := append([]int(nil), s...)
		naive[phi]--
		naive[psi]++
		want := FromDiscrepancies(naive)
		got := s.Clone()
		got.Orient(phi, psi)
		if !got.Equal(want) {
			t.Fatalf("Orient(%d,%d) on %v = %v, want %v", phi, psi, s, got, want)
		}
	}
}

func TestOrientPanicsOnBadRanks(t *testing.T) {
	s := NewState(3)
	for _, pair := range [][2]int{{-1, 1}, {0, 3}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Orient(%d,%d) did not panic", pair[0], pair[1])
				}
			}()
			s.Orient(pair[0], pair[1])
		}()
	}
}

func TestStepKeepsInvariants(t *testing.T) {
	r := rng.New(2)
	s := AdversarialState(9, 5)
	applied := 0
	for i := 0; i < 5000; i++ {
		if s.Step(r) {
			applied++
		}
		if !s.IsValid() {
			t.Fatalf("invalid state after step %d: %v", i, s)
		}
	}
	// The lazy bit applies about half the steps.
	if applied < 2000 || applied > 3000 {
		t.Fatalf("lazy chain applied %d/5000 edges", applied)
	}
}

// TestGreedyControlsUnfairness: the greedy protocol keeps unfairness
// tiny (Theta(log log n)); a long run from zero must stay in single
// digits for n = 64.
func TestGreedyControlsUnfairness(t *testing.T) {
	r := rng.New(3)
	s := NewState(64)
	maxU := 0
	for i := 0; i < 200000; i++ {
		s.StepGreedy(r)
		if u := s.Unfairness(); u > maxU {
			maxU = u
		}
	}
	if maxU > 8 {
		t.Fatalf("greedy unfairness reached %d on n=64", maxU)
	}
}

// TestGreedyRecoversFromAdversarial: from a +h/-h split the unfairness
// must decay back to the typical O(log log n) band.
func TestGreedyRecoversFromAdversarial(t *testing.T) {
	r := rng.New(4)
	s := AdversarialState(16, 10)
	for i := 0; i < 200000 && s.Unfairness() > 3; i++ {
		s.StepGreedy(r)
	}
	if u := s.Unfairness(); u > 3 {
		t.Fatalf("unfairness stuck at %d after 200000 greedy steps", u)
	}
}

func TestAdversarialState(t *testing.T) {
	s := AdversarialState(6, 4)
	if !s.IsValid() {
		t.Fatalf("invalid: %v", s)
	}
	if s.Unfairness() != 4 {
		t.Fatalf("unfairness = %d", s.Unfairness())
	}
	odd := AdversarialState(5, 2)
	if !odd.IsValid() || odd.Unfairness() != 2 {
		t.Fatalf("odd n adversarial invalid: %v", odd)
	}
}

func TestL1(t *testing.T) {
	a := State{2, 0, -2}
	b := State{1, 0, -1}
	if d := a.L1(b); d != 2 {
		t.Fatalf("L1 = %d", d)
	}
	if d := a.L1(a); d != 0 {
		t.Fatalf("self L1 = %d", d)
	}
}

func TestKeyAndEqual(t *testing.T) {
	a := State{1, 0, -1}
	b := State{1, 0, -1}
	c := State{1, -1, 0} // not sorted; different key is fine — states are canonical
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatal("equal states disagree")
	}
	if a.Equal(c) {
		t.Fatal("unequal states report equal")
	}
}

func TestRandomReachableValid(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 100; trial++ {
		s := RandomReachable(3+r.Intn(10), r.Intn(100), r)
		if !s.IsValid() {
			t.Fatalf("invalid reachable state %v", s)
		}
	}
}

func TestLevelCounts(t *testing.T) {
	s := State{2, 2, 0, -1, -3}
	counts, top := s.LevelCounts()
	if top != 2 {
		t.Fatalf("top = %d", top)
	}
	want := []int{2, 0, 1, 1, 0, 1} // discs 2,1,0,-1,-2,-3
	if len(counts) != len(want) {
		t.Fatalf("counts = %v", counts)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

// TestLevelCountsRoundTrip: FromLevelCounts inverts LevelCounts on
// random reachable states — the Section 6 representation equivalence.
func TestLevelCountsRoundTrip(t *testing.T) {
	r := rng.New(81)
	for trial := 0; trial < 500; trial++ {
		s := RandomReachable(2+r.Intn(10), r.Intn(60), r)
		counts, top := s.LevelCounts()
		back := FromLevelCounts(counts, top)
		if !back.Equal(s) {
			t.Fatalf("round trip failed: %v -> %v/%d -> %v", s, counts, top, back)
		}
	}
}

func TestFromLevelCountsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { FromLevelCounts([]int{-1, 1}, 0) },
		func() { FromLevelCounts([]int{2}, 1) }, // two vertices at disc 1: sum != 0
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestOrientProperty: quick-check that Orient preserves the zero-sum
// invariant and sortedness from arbitrary reachable states.
func TestOrientProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(10)
		s := RandomReachable(n, r.Intn(50), r)
		phi, psi := r.DistinctPair(n)
		s.Orient(phi, psi)
		return s.IsValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestUnfairnessNeverJumps: one edge changes the unfairness by at most 1.
func TestUnfairnessNeverJumps(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(8)
		s := RandomReachable(n, r.Intn(40), r)
		before := s.Unfairness()
		s.StepGreedy(r)
		after := s.Unfairness()
		diff := after - before
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStepGreedy(b *testing.B) {
	r := rng.New(1)
	s := NewState(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StepGreedy(r)
	}
}
