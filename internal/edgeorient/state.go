// Package edgeorient implements the edge orientation problem of Ajtai,
// Aspnes, Naor, Rabani, Schulman and Waarts, as analyzed in Section 6 of
// the paper.
//
// Undirected edges over n vertices arrive one per step, each a uniformly
// random pair of distinct vertices. The greedy protocol orients each
// arriving edge from the endpoint with the smaller discrepancy
// (outdegree - indegree) to the one with the larger discrepancy. The
// unfairness of a state is max_v |outdeg(v) - indeg(v)|; Ajtai et al.
// showed the greedy protocol keeps the expected unfairness at
// Theta(log log n), and the paper bounds the recovery time: O(n^2 ln^2 n)
// steps suffice to return from an arbitrary state to a typical one
// (Theorem 2), improving the previous O(n^5) bound.
//
// Because vertices are exchangeable, a state is the sorted (descending)
// vector of discrepancies — equivalently the level-count vector x of the
// paper (x_i = number of vertices at the i-th highest discrepancy
// level). Section 6's Markov chain adds a fair "lazy" bit b per step
// (Remark 1) to make the chain ergodic; with b = 0 the step is skipped.
// This package implements both the lazy chain and the original non-lazy
// protocol.
package edgeorient

import (
	"fmt"
	"sort"

	"dynalloc/internal/rng"
)

// State is a sorted-descending vector of vertex discrepancies
// (outdegree - indegree), one entry per vertex, summing to zero.
type State []int

// NewState returns the all-zero state on n vertices (the empty
// multigraph). It panics for n < 2, since edges need two endpoints.
func NewState(n int) State {
	if n < 2 {
		panic("edgeorient: need at least 2 vertices")
	}
	return make(State, n)
}

// FromDiscrepancies returns the normalized state for an arbitrary
// discrepancy assignment. It panics if the values do not sum to zero —
// every orientation of every multigraph has balanced total discrepancy.
func FromDiscrepancies(d []int) State {
	s := make(State, len(d))
	copy(s, d)
	sum := 0
	for _, x := range s {
		sum += x
	}
	if sum != 0 {
		panic(fmt.Sprintf("edgeorient: discrepancies sum to %d, want 0", sum))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(s)))
	return s
}

// Clone returns an independent copy.
func (s State) Clone() State {
	c := make(State, len(s))
	copy(c, s)
	return c
}

// N returns the number of vertices.
func (s State) N() int { return len(s) }

// IsValid reports whether s is sorted descending and sums to zero.
func (s State) IsValid() bool {
	sum := 0
	for i, x := range s {
		sum += x
		if i > 0 && x > s[i-1] {
			return false
		}
	}
	return sum == 0
}

// Unfairness returns max_v |disc(v)|, the fairness measure of Ajtai et
// al. On a sorted vector this is max(|first|, |last|).
func (s State) Unfairness() int {
	if len(s) == 0 {
		return 0
	}
	hi := s[0]
	lo := -s[len(s)-1]
	if hi < 0 {
		hi = 0
	}
	if lo < 0 {
		lo = 0
	}
	if hi > lo {
		return hi
	}
	return lo
}

// Equal reports whether two states are identical.
func (s State) Equal(t State) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// L1 returns ||s - t||_1 over ranks, a convenient coalescence surrogate.
func (s State) L1(t State) int {
	if len(s) != len(t) {
		panic("edgeorient: L1 on different sizes")
	}
	d := 0
	for i := range s {
		if s[i] >= t[i] {
			d += s[i] - t[i]
		} else {
			d += t[i] - s[i]
		}
	}
	return d
}

// Key returns a canonical string encoding for map keys.
func (s State) Key() string {
	b := make([]byte, 0, 4*len(s))
	for i, x := range s {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, []byte(fmt.Sprintf("%d", x))...)
	}
	return string(b)
}

func (s State) String() string { return "[" + s.Key() + "]" }

// decAtValue decrements one vertex currently at discrepancy val,
// choosing the last rank of that value block so the vector stays sorted.
// It panics if no vertex has that value.
func (s State) decAtValue(val int) {
	// Last index with s[i] == val: one before first index with s[i] < val.
	j := sort.Search(len(s), func(t int) bool { return s[t] < val }) - 1
	if j < 0 || s[j] != val {
		panic(fmt.Sprintf("edgeorient: no vertex at discrepancy %d in %v", val, s))
	}
	s[j]--
}

// incAtValue increments one vertex currently at discrepancy val,
// choosing the first rank of that value block.
func (s State) incAtValue(val int) {
	j := sort.Search(len(s), func(t int) bool { return s[t] <= val })
	if j >= len(s) || s[j] != val {
		panic(fmt.Sprintf("edgeorient: no vertex at discrepancy %d in %v", val, s))
	}
	s[j]++
}

// Orient applies one greedy edge arrival between the vertices at sorted
// ranks phi < psi: the rank-phi vertex (weakly larger discrepancy)
// receives the edge head (disc-1) and the rank-psi vertex the tail
// (disc+1). The vector is re-normalized in place in O(log n).
// When the two ranks hold equal discrepancies the orientation is
// arbitrary and the resulting multiset is the same either way.
func (s State) Orient(phi, psi int) {
	if phi < 0 || psi >= len(s) || phi >= psi {
		panic(fmt.Sprintf("edgeorient: bad ranks (%d, %d)", phi, psi))
	}
	hi := s[phi] // weakly larger discrepancy
	lo := s[psi]
	s.decAtValue(hi)
	s.incAtValue(lo)
}

// Step performs one step of the lazy Markov chain of Section 6: draw a
// uniform pair of distinct ranks and a fair bit; orient only if the bit
// is set. Returns whether the edge was applied.
func (s State) Step(r *rng.RNG) bool {
	phi, psi := r.DistinctPair(len(s))
	b := r.Bool()
	if b {
		s.Orient(phi, psi)
	}
	return b
}

// StepGreedy performs one step of the original (non-lazy) greedy
// protocol: an edge always arrives. This is the process whose stationary
// unfairness is Theta(log log n).
func (s State) StepGreedy(r *rng.RNG) {
	phi, psi := r.DistinctPair(len(s))
	s.Orient(phi, psi)
}

// AdversarialState returns the "maximally unfair" state used as the
// recovery workload: discrepancies +h for the first half of the vertices
// and -h for the second half (with one zero when n is odd).
func AdversarialState(n, h int) State {
	if n < 2 {
		panic("edgeorient: need at least 2 vertices")
	}
	if h < 0 {
		panic("edgeorient: negative height")
	}
	s := make(State, n)
	for i := 0; i < n/2; i++ {
		s[i] = h
		s[n-1-i] = -h
	}
	return s
}

// LevelCounts returns the paper's x-representation of the state
// (Section 6): counts[i] is the number of vertices at the i-th highest
// discrepancy level, where level 0 corresponds to discrepancy topDisc
// and level i to topDisc - i. The window spans from the maximum to the
// minimum discrepancy present, so counts always starts and ends with a
// positive entry and sums to n.
func (s State) LevelCounts() (counts []int, topDisc int) {
	if len(s) == 0 {
		return nil, 0
	}
	topDisc = s[0]
	bottom := s[len(s)-1]
	counts = make([]int, topDisc-bottom+1)
	for _, d := range s {
		counts[topDisc-d]++
	}
	return counts, topDisc
}

// FromLevelCounts reconstructs a State from the x-representation. It is
// the inverse of LevelCounts and panics if the resulting discrepancies
// do not sum to zero.
func FromLevelCounts(counts []int, topDisc int) State {
	var d []int
	for i, c := range counts {
		if c < 0 {
			panic("edgeorient: negative level count")
		}
		for j := 0; j < c; j++ {
			d = append(d, topDisc-i)
		}
	}
	return FromDiscrepancies(d)
}

// RandomReachable returns a state sampled by running the non-lazy greedy
// protocol for steps edges from the empty graph — a "typical" state.
func RandomReachable(n, steps int, r *rng.RNG) State {
	s := NewState(n)
	for i := 0; i < steps; i++ {
		s.StepGreedy(r)
	}
	return s
}
