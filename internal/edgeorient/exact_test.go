package edgeorient

import (
	"math"
	"testing"

	"dynalloc/internal/rng"
)

func TestAllSplitPairs(t *testing.T) {
	pairs := AllSplitPairs(4, 200000)
	if len(pairs) == 0 {
		t.Fatal("no split pairs found")
	}
	for _, pr := range pairs {
		if _, ok := gAdjacent(pr[0], pr[1]); !ok {
			t.Fatalf("pair %v / %v not G-adjacent", pr[0], pr[1])
		}
		if d, ok := DeltaBFS(pr[0], pr[1], 2); !ok || d != 1 {
			t.Fatalf("pair %v / %v has distance %d", pr[0], pr[1], d)
		}
	}
}

// TestLemma62Exhaustive verifies Lemma 6.2 EXACTLY on every split pair
// of the reachable spaces for n = 3, 4: the coupled step's expected
// distance never exceeds 1 - 2/(n(n-1)), coalescence has positive
// probability, and the distance never exceeds 2.
func TestLemma62Exhaustive(t *testing.T) {
	for _, n := range []int{3, 4} {
		bound := 1 - 2/(float64(n)*float64(n-1))
		for _, pr := range AllSplitPairs(n, 200000) {
			ec := ExactGammaEdge(pr[0], pr[1], 5)
			if ec.MeanDelta > bound+1e-12 {
				t.Fatalf("n=%d pair %v/%v: E[Delta'] = %.12f > %.12f",
					n, pr[0], pr[1], ec.MeanDelta, bound)
			}
			if ec.ZeroFreq <= 0 {
				t.Fatalf("n=%d pair %v/%v: no coalescence mass", n, pr[0], pr[1])
			}
			if ec.MaxDelta > 2 {
				t.Fatalf("n=%d pair %v/%v: Delta' reached %d", n, pr[0], pr[1], ec.MaxDelta)
			}
		}
	}
}

// TestExactGammaEdgeMatchesMonteCarlo cross-validates the enumeration
// against the simulated coupling on one pair.
func TestExactGammaEdgeMatchesMonteCarlo(t *testing.T) {
	y := FromDiscrepancies([]int{1, 1, 0, -2})
	x := FromDiscrepancies([]int{2, 0, 0, -2})
	ec := ExactGammaEdge(x, y, 5)
	r := rng.New(62)
	const trials = 200000
	sum, zeros := 0, 0
	for i := 0; i < trials; i++ {
		c := NewCoupled(x, y, r)
		c.Step()
		d, ok := DeltaBFS(c.X, c.Y, 5)
		if !ok {
			t.Fatal("MC successor exceeded cap")
		}
		sum += d
		if d == 0 {
			zeros++
		}
	}
	if diff := math.Abs(float64(sum)/trials - ec.MeanDelta); diff > 0.005 {
		t.Fatalf("MC mean %.5f vs exact %.5f", float64(sum)/trials, ec.MeanDelta)
	}
	if diff := math.Abs(float64(zeros)/trials - ec.ZeroFreq); diff > 0.005 {
		t.Fatalf("MC zero freq %.5f vs exact %.5f", float64(zeros)/trials, ec.ZeroFreq)
	}
}

// TestClaim61FiniteOnPsi: Claim 6.1 includes that Delta(x, y) is finite
// for every pair of reachable states; verify exhaustively for n = 4.
func TestClaim61FiniteOnPsi(t *testing.T) {
	chain := NewChain(4, 200000)
	states := make([]State, chain.NumStates())
	for i := range states {
		states[i] = chain.State(i)
	}
	for a := 0; a < len(states); a++ {
		for b := a + 1; b < len(states); b++ {
			if _, ok := DeltaBFS(states[a], states[b], 12); !ok {
				t.Fatalf("Delta(%v, %v) not within 12", states[a], states[b])
			}
		}
	}
}

func TestExactGammaEdgePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExactGammaEdge(NewState(3), NewState(4), 3)
}
