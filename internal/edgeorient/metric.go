package edgeorient

import "sort"

// This file implements the composite path-coupling metric of
// Definitions 6.1-6.3.
//
// In level-count language, y is in G(x) when x = y + e_l - 2e_{l+1} +
// e_{l+2}: two vertices of y sharing a discrepancy d split into d+1 and
// d-1. y is in S_k(x) when x = y + e_l - e_{l+1} - e_{l+k} + e_{l+k+1}
// with x empty on the k levels strictly between: in discrepancy language
// x has extra vertices at discs {a, c} with a - c = k + 1 >= 2, y has
// extras at {a-1, c+1}, and x has no vertex at any disc in (c, a).
//
// Definition 6.3 sets Delta(x, y) = 0 if equal; 1 if y in Ghat(x); and
// otherwise min( k if y in Shat_k(x), min_{z in Ghat(x)} 1 + Delta(z, y) ).
// Unrolled, Delta is the cheapest way to walk from x to y through
// G-edges of cost 1, optionally finishing with one S_k hop of cost k.
// DeltaBFS below computes exactly that by breadth-first search, capped.

// hasAnyInOpenRange reports whether s contains a vertex with
// discrepancy strictly between lo and hi (exclusive). s is sorted
// descending.
func hasAnyInOpenRange(s State, lo, hi int) bool {
	// First index with value <= hi-1 (i.e. < hi).
	i := sort.Search(len(s), func(t int) bool { return s[t] < hi })
	return i < len(s) && s[i] > lo
}

// skDistance returns the smallest k such that y is in Shat_k(x)
// (either orientation), or 0, false if no such k exists. Since the two
// orientations give the same k when both apply, checking both and
// taking any hit is correct.
func skDistance(x, y State) (int, bool) {
	xe, ye, ok := multisetDiff(x, y, 4)
	if !ok || len(xe) != 2 || len(ye) != 2 {
		return 0, false
	}
	// Orientation 1: x plays the paper's x. xe = {a, c}, ye = {a-1, c+1},
	// a - c >= 2, x empty strictly between c and a.
	if k, ok := skOriented(xe, ye, x); ok {
		return k, true
	}
	// Orientation 2: y plays the paper's x.
	if k, ok := skOriented(ye, xe, y); ok {
		return k, true
	}
	return 0, false
}

// skOriented checks the one-directional S_k pattern: extras of the
// "upper" state are {a, c}, extras of the other are {a-1, c+1}, and the
// upper state has no vertices strictly between c and a.
func skOriented(upperExtra, lowerExtra []int, upper State) (int, bool) {
	a, c := upperExtra[0], upperExtra[1] // sorted descending
	if a-c < 2 {
		return 0, false
	}
	hi, lo := lowerExtra[0], lowerExtra[1]
	if hi != a-1 || lo != c+1 {
		return 0, false
	}
	if hasAnyInOpenRange(upper, c, a) {
		return 0, false
	}
	return a - c - 1, true
}

// gNeighbors returns every state in Ghat(s): all single split moves
// ({d, d} -> {d+1, d-1}) and all single merge moves
// ({d+1, d-1} -> {d, d}).
func gNeighbors(s State) []State {
	var out []State
	n := len(s)
	// Distinct values with their counts, descending.
	type block struct{ val, count int }
	var blocks []block
	for i := 0; i < n; {
		j := i
		for j < n && s[j] == s[i] {
			j++
		}
		blocks = append(blocks, block{s[i], j - i})
		i = j
	}
	count := func(v int) int {
		for _, b := range blocks {
			if b.val == v {
				return b.count
			}
		}
		return 0
	}
	for _, b := range blocks {
		// Split: need two at b.val.
		if b.count >= 2 {
			t := s.Clone()
			t.decAtValue(b.val)
			t.incAtValue(b.val)
			out = append(out, t)
		}
		// Merge {b.val, b.val-2} -> {b.val-1, b.val-1}. The middle level
		// b.val-1 need not be occupied, so enumerate merges by their top
		// value rather than their center.
		if count(b.val-2) >= 1 {
			t := s.Clone()
			t.decAtValue(b.val)
			t.incAtValue(b.val - 2)
			out = append(out, t)
		}
	}
	return out
}

// sNeighbor is one Shat_k move out of a state, with its cost k.
type sNeighbor struct {
	s State
	k int
}

// sNeighbors enumerates every state reachable by one Shat_k relation
// (either orientation) together with its cost k. In discrepancy terms:
//
//   - "pull inward": two occupied discs a > c with nothing strictly
//     between move to a-1 and c+1; cost k = a - c - 1 (requires k >= 1,
//     i.e. a - c >= 2). The emptiness condition is on the CURRENT state.
//   - "push outward": vertices at discs b >= d whose closed interval
//     [d, b] contains no other vertex move to b+1 and d-1; the resulting
//     state is empty on [d, b], satisfying the upper state's emptiness;
//     cost k = b - d + 1.
func sNeighbors(s State) []sNeighbor {
	var out []sNeighbor
	n := len(s)
	// Occupied discs descending with counts.
	type block struct{ val, count int }
	var blocks []block
	for i := 0; i < n; {
		j := i
		for j < n && s[j] == s[i] {
			j++
		}
		blocks = append(blocks, block{s[i], j - i})
		i = j
	}
	// Pull inward: consecutive occupied blocks with a gap of >= 2.
	for bi := 0; bi+1 < len(blocks); bi++ {
		a, c := blocks[bi].val, blocks[bi+1].val
		if a-c >= 2 {
			t := s.Clone()
			t.decAtValue(a)
			t.incAtValue(c)
			out = append(out, sNeighbor{t, a - c - 1})
		}
	}
	// Push outward: an isolated pair within one block (count exactly 2,
	// b == d) or two adjacent blocks that are alone on [d, b] (counts
	// exactly 1 each).
	for bi, b := range blocks {
		if b.count == 2 {
			t := s.Clone()
			t.decAtValue(b.val) // one down...
			// decAtValue moved the LAST of the pair to val-1; now move
			// the other UP.
			t.incAtValue(b.val)
			// That is a split {v,v} -> {v+1, v-1}: cost k = 1 — but that
			// coincides with a Ghat edge with the emptiness condition;
			// still a valid S_1 move.
			out = append(out, sNeighbor{t, 1})
		}
		if b.count == 1 && bi+1 < len(blocks) && blocks[bi+1].count == 1 {
			d := blocks[bi+1].val
			// No other vertex strictly between is automatic (blocks are
			// consecutive); the moved pair must be alone on [d, b],
			// which holds since both counts are 1.
			t := s.Clone()
			t.incAtValue(b.val) // b -> b+1
			t.decAtValue(d)     // d -> d-1
			out = append(out, sNeighbor{t, b.val - d + 1})
		}
	}
	return out
}

// DeltaBFS computes the metric Delta(x, y) of Definition 6.3 exactly as
// a shortest path over the union graph (Ghat edges of weight 1, Shat_k
// relations of weight k — the Lemma 6.3 case analysis composes both
// anywhere along a path), by uniform-cost search capped at maxDist.
// Returns (Delta, true) on success or (0, false) if Delta(x, y) >
// maxDist. Exponential in maxDist; intended for the verification tests
// and contraction experiments, where distances are tiny.
func DeltaBFS(x, y State, maxDist int) (int, bool) {
	if x.N() != y.N() {
		panic("edgeorient: DeltaBFS on different sizes")
	}
	if x.Equal(y) {
		return 0, true
	}
	// Dijkstra with small integer costs: bucket queue by distance.
	dist := map[string]int{x.Key(): 0}
	buckets := make([][]State, maxDist+1)
	buckets[0] = []State{x}
	targetKey := y.Key()
	for d := 0; d <= maxDist; d++ {
		for len(buckets[d]) > 0 {
			cur := buckets[d][len(buckets[d])-1]
			buckets[d] = buckets[d][:len(buckets[d])-1]
			ck := cur.Key()
			if dist[ck] != d {
				continue // stale entry
			}
			if ck == targetKey {
				return d, true
			}
			relax := func(nb State, cost int) {
				nd := d + cost
				if nd > maxDist {
					return
				}
				key := nb.Key()
				if old, seen := dist[key]; !seen || nd < old {
					dist[key] = nd
					buckets[nd] = append(buckets[nd], nb)
				}
			}
			for _, nb := range gNeighbors(cur) {
				relax(nb, 1)
			}
			for _, sn := range sNeighbors(cur) {
				relax(sn.s, sn.k)
			}
		}
	}
	return 0, false
}
