package edgeorient

import (
	"testing"

	"dynalloc/internal/rng"
	"dynalloc/internal/stats"
)

func TestCoupledFaithfulMarginals(t *testing.T) {
	// Each copy of the coupling, viewed alone, must perform the lazy
	// chain's step: compare the empirical one-step distribution of the Y
	// copy under coupling against an independent chain, from a start
	// where the flip rule fires (a G-adjacent pair).
	y := State{1, 1, 0, -2}
	x := State{2, 0, 0, -2} // split of the two 1s
	if _, ok := gAdjacent(x, y); !ok {
		t.Fatal("test setup: pair not G-adjacent")
	}
	const trials = 300000
	rc := rng.New(21)
	coupledCounts := make(map[string]int)
	for i := 0; i < trials; i++ {
		c := NewCoupled(x, y, rc)
		c.Step()
		coupledCounts[c.Y.Key()]++
	}
	ri := rng.New(22)
	freeCounts := make(map[string]int)
	for i := 0; i < trials; i++ {
		s := y.Clone()
		s.Step(ri)
		freeCounts[s.Key()]++
	}
	if d := stats.TVDistanceCounts(coupledCounts, freeCounts); d > 0.01 {
		t.Fatalf("coupled marginal deviates from free chain: TV = %.4f", d)
	}
}

func TestCoupledXMarginalFaithful(t *testing.T) {
	y := State{1, 1, 0, -2}
	x := State{2, 0, 0, -2}
	const trials = 300000
	rc := rng.New(23)
	coupledCounts := make(map[string]int)
	for i := 0; i < trials; i++ {
		c := NewCoupled(x, y, rc)
		c.Step()
		coupledCounts[c.X.Key()]++
	}
	ri := rng.New(24)
	freeCounts := make(map[string]int)
	for i := 0; i < trials; i++ {
		s := x.Clone()
		s.Step(ri)
		freeCounts[s.Key()]++
	}
	if d := stats.TVDistanceCounts(coupledCounts, freeCounts); d > 0.01 {
		t.Fatalf("coupled X marginal deviates: TV = %.4f", d)
	}
}

func TestCoupledNeverDiverges(t *testing.T) {
	// Once coalesced, the coupling keeps the copies identical forever
	// (same randomness, no flip case on equal states).
	r := rng.New(25)
	c := NewCoupled(NewState(6), NewState(6), r)
	for i := 0; i < 2000; i++ {
		c.Step()
		if !c.Coalesced() {
			t.Fatalf("coalesced pair diverged at step %d", i)
		}
	}
}

func TestCoalescenceHappens(t *testing.T) {
	r := rng.New(26)
	x := AdversarialState(6, 3)
	y := NewState(6)
	c := NewCoupled(x, y, r)
	steps, ok := c.CoalescenceTime(5_000_000)
	if !ok {
		t.Fatalf("no coalescence for n=6 within 5M steps (L1 still %d)", c.X.L1(c.Y))
	}
	if steps == 0 {
		t.Fatal("distinct states cannot coalesce in zero steps")
	}
	if !c.Coalesced() {
		t.Fatal("CoalescenceTime returned ok but states differ")
	}
}

func TestCoalescenceTimeImmediate(t *testing.T) {
	r := rng.New(27)
	c := NewCoupled(NewState(4), NewState(4), r)
	steps, ok := c.CoalescenceTime(10)
	if !ok || steps != 0 {
		t.Fatalf("CoalescenceTime on equal states = (%d, %v)", steps, ok)
	}
}

// TestContractionOnGammaPairs is the Monte-Carlo form of Lemma 6.2: on
// pairs at distance 1 the coupled step must not increase the expected
// distance, and with probability about 2(1+x_{l+1})/(n(n-1)) it strictly
// decreases it.
func TestContractionOnGammaPairs(t *testing.T) {
	r := rng.New(28)
	const n = 5
	var sum stats.Summary
	zeros := 0
	const trials = 4000
	for trial := 0; trial < trials; trial++ {
		x, y := GAdjacentPair(n, r, 15)
		c := NewCoupled(x, y, r)
		c.Step()
		d, ok := DeltaBFS(c.X, c.Y, 4)
		if !ok {
			t.Fatalf("post-step distance exceeded 4 from a Gamma pair: %v vs %v", c.X, c.Y)
		}
		if d > 2 {
			t.Fatalf("Lemma 6.2 case analysis violated: distance %d > 2", d)
		}
		if d == 0 {
			zeros++
		}
		sum.AddInt(d)
	}
	// Lemma 6.2's quantitative form: E[Delta'] <= 1 - 2/(n(n-1)).
	bound := 1 - 2/(float64(n)*float64(n-1))
	if sum.Mean() > bound+3*sum.SE() {
		t.Fatalf("expected distance after coupled step = %.4f exceeds Lemma 6.2 bound %.4f", sum.Mean(), bound)
	}
	if zeros == 0 {
		t.Fatal("coupling never coalesced a Gamma pair in one step")
	}
}

func TestGAdjacentPairGenerator(t *testing.T) {
	r := rng.New(29)
	for trial := 0; trial < 200; trial++ {
		x, y := GAdjacentPair(4+r.Intn(5), r, 10)
		if _, ok := gAdjacent(x, y); !ok {
			t.Fatalf("generator produced non-adjacent pair %v, %v", x, y)
		}
		if d, ok := DeltaBFS(x, y, 2); !ok || d != 1 {
			t.Fatalf("Gamma pair has distance %d (ok=%v)", d, ok)
		}
	}
}

func TestNewCoupledPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCoupled(NewState(3), NewState(4), rng.New(1))
}
