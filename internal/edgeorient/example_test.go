package edgeorient_test

import (
	"fmt"

	"dynalloc/internal/edgeorient"
	"dynalloc/internal/rng"
)

// The greedy protocol orients each arriving edge from the endpoint with
// the smaller discrepancy to the larger, keeping the state balanced.
func ExampleState_Orient() {
	s := edgeorient.FromDiscrepancies([]int{2, 0, -2})
	s.Orient(0, 2) // edge between the extreme vertices
	fmt.Println(s, "unfairness:", s.Unfairness())
	// Output: [1,0,-1] unfairness: 1
}

// The composite metric of Definitions 6.1-6.3: a split pair is at
// distance 1.
func ExampleDeltaBFS() {
	y := edgeorient.FromDiscrepancies([]int{1, 1, 0, -2})
	x := edgeorient.FromDiscrepancies([]int{2, 0, 0, -2})
	d, ok := edgeorient.DeltaBFS(x, y, 4)
	fmt.Println(d, ok)
	// Output: 1 true
}

// The Section 6 coupling coalesces from any pair of starts.
func ExampleCoupled() {
	c := edgeorient.NewCoupled(
		edgeorient.AdversarialState(6, 2),
		edgeorient.NewState(6),
		rng.New(5))
	_, ok := c.CoalescenceTime(10_000_000)
	fmt.Println("coalesced:", ok)
	// Output: coalesced: true
}
