package edgeorient

import (
	"math"
	"testing"

	"dynalloc/internal/markov"
	"dynalloc/internal/rng"
)

func TestChainClosureSmall(t *testing.T) {
	c := NewChain(3, 10000)
	if c.NumStates() < 2 {
		t.Fatalf("Psi for n=3 has only %d states", c.NumStates())
	}
	// The zero state is state 0 and indexes round-trip.
	if !c.State(0).Equal(NewState(3)) {
		t.Fatal("state 0 is not the zero state")
	}
	for i := 0; i < c.NumStates(); i++ {
		if c.Index(c.State(i)) != i {
			t.Fatalf("index round trip failed at %d", i)
		}
		if !c.State(i).IsValid() {
			t.Fatalf("invalid state %v", c.State(i))
		}
	}
}

// TestChainBoundedDiscrepancies: on Psi the discrepancies stay within
// the window cited by the paper (|disc| <= ceil(n/2)).
func TestChainBoundedDiscrepancies(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		c := NewChain(n, 200000)
		bound := (n + 1) / 2
		for i := 0; i < c.NumStates(); i++ {
			if u := c.State(i).Unfairness(); u > bound {
				t.Fatalf("n=%d: reachable state %v has unfairness %d > %d", n, c.State(i), u, bound)
			}
		}
	}
}

func TestChainStochasticAndErgodic(t *testing.T) {
	c := NewChain(4, 200000)
	m, err := markov.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsErgodic(300) {
		t.Fatal("lazy edge-orientation chain should be ergodic")
	}
}

// TestChainMatchesSimulation: empirical one-step distribution from a
// fixed state matches the exact transition row.
func TestChainMatchesSimulation(t *testing.T) {
	c := NewChain(4, 200000)
	start := FromDiscrepancies([]int{1, 1, -1, -1})
	sID := c.Index(start)
	want := make(map[int]float64)
	for _, e := range c.Transitions(sID) {
		want[e.To] = e.P
	}
	r := rng.New(11)
	const trials = 300000
	counts := make(map[int]int)
	for i := 0; i < trials; i++ {
		s := start.Clone()
		s.Step(r)
		counts[c.Index(s)]++
	}
	for to, p := range want {
		got := float64(counts[to]) / trials
		if math.Abs(got-p) > 0.005 {
			t.Errorf("transition to %v: empirical %.4f vs exact %.4f", c.State(to), got, p)
		}
	}
	for to := range counts {
		if _, ok := want[to]; !ok {
			t.Errorf("simulation reached %v marked unreachable", c.State(to))
		}
	}
}

// TestStationaryUnfairnessSmall: exact stationary expected unfairness is
// small (Theta(log log n) regime) for tiny n.
func TestStationaryUnfairnessSmall(t *testing.T) {
	c := NewChain(4, 200000)
	m := markov.MustBuild(c)
	pi, err := m.Stationary(1e-11, 2000000)
	if err != nil {
		t.Fatal(err)
	}
	e := c.ExpectedUnfairness(pi)
	if e <= 0 || e > 2 {
		t.Fatalf("stationary expected unfairness = %v, want in (0, 2]", e)
	}
}

// TestExactMixingTimeFinite: the chain mixes; tau(1/4) is finite and
// small for n = 3.
func TestExactMixingTimeFinite(t *testing.T) {
	c := NewChain(3, 10000)
	m := markov.MustBuild(c)
	pi, err := m.Stationary(1e-11, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	tau, ok := m.MixingTime(pi, 0.25, 2000)
	if !ok {
		t.Fatal("mixing time not reached within horizon")
	}
	if tau < 1 {
		t.Fatalf("tau = %d", tau)
	}
}

func TestExpectedUnfairnessPanics(t *testing.T) {
	c := NewChain(3, 10000)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.ExpectedUnfairness([]float64{1})
}
