package exper

import (
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/stats"
)

// TestCoupledOpenMarginalFaithful: each copy of the open coupling,
// viewed alone, must step exactly like the free open process.
func TestCoupledOpenMarginalFaithful(t *testing.T) {
	start := loadvec.Vector{2, 1, 0, 0}
	other := loadvec.Vector{1, 1, 1, 1}
	const trialCount = 200000
	rc := rng.New(41)
	coupled := make(map[string]int)
	for i := 0; i < trialCount; i++ {
		c := newCoupledOpen(rules.NewABKU(2), other, start, rc)
		c.Step()
		coupled[c.Y.Key()]++
	}
	rf := rng.New(42)
	free := make(map[string]int)
	for i := 0; i < trialCount; i++ {
		o := process.NewOpen(rules.NewABKU(2), start, rf)
		o.Step()
		free[o.State().Key()]++
	}
	if d := stats.TVDistanceCounts(coupled, free); d > 0.01 {
		t.Fatalf("coupled open marginal off by TV %.4f", d)
	}
}

// TestCoupledOpenEmptyRemoval: removal against an empty copy is a no-op
// for that copy only.
func TestCoupledOpenEmptyRemoval(t *testing.T) {
	r := rng.New(43)
	c := newCoupledOpen(rules.NewABKU(2), loadvec.OneTower(3, 5), loadvec.New(3), r)
	for i := 0; i < 50; i++ {
		c.Step()
		if c.Y.Total() < 0 || c.X.Total() < 0 {
			t.Fatal("negative ball count")
		}
	}
}

// TestCoupledOpenBallCountsContract: with shared coins, the ball-count
// difference never increases (removal is a no-op only on the smaller
// copy at zero, and insertions move both).
func TestCoupledOpenBallCountsContract(t *testing.T) {
	r := rng.New(44)
	c := newCoupledOpen(rules.NewABKU(2), loadvec.OneTower(4, 12), loadvec.New(4), r)
	gap := c.X.Total() - c.Y.Total()
	if gap < 0 {
		gap = -gap
	}
	for i := 0; i < 20000; i++ {
		c.Step()
		g := c.X.Total() - c.Y.Total()
		if g < 0 {
			g = -g
		}
		if g > gap {
			t.Fatalf("ball-count gap grew from %d to %d at step %d", gap, g, i)
		}
		gap = g
	}
}
