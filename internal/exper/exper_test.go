package exper

import (
	"strings"
	"testing"

	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry order %v, want %v", got, want)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
	r, err := Get("E1")
	if err != nil || r.ID != "E1" || r.Claim == "" {
		t.Fatalf("Get(E1) = %+v, %v", r, err)
	}
}

// TestAllExperimentsRunQuick executes every experiment at quick scale:
// they must produce non-empty tables without panicking, and E9 must not
// report any FAIL.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes seconds")
	}
	o := Options{Seed: 7, Full: false}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			tb := r.Run(o)
			if tb == nil || len(tb.Rows) == 0 {
				t.Fatalf("%s produced an empty table", id)
			}
			out := tb.String()
			if id == "E9" && strings.Contains(out, "FAIL") {
				t.Fatalf("E9 reported a right-orientation failure:\n%s", out)
			}
		})
	}
}

func TestCoupledOpenBasics(t *testing.T) {
	r := rng.New(1)
	c := newCoupledOpen(rules.NewABKU(2), loadvec.OneTower(4, 8), loadvec.New(4), r)
	if c.Coalesced() {
		t.Fatal("distinct open states reported coalesced")
	}
	start := c.Distance()
	if start != 8 {
		t.Fatalf("initial L1 = %d", start)
	}
	for i := 0; i < 200000 && !c.Coalesced(); i++ {
		c.Step()
		if !c.X.IsNormalized() || !c.Y.IsNormalized() {
			t.Fatal("open coupling denormalized a state")
		}
	}
	if !c.Coalesced() {
		t.Fatalf("open coupling did not coalesce (distance %d)", c.Distance())
	}
	// Stays coalesced.
	for i := 0; i < 1000; i++ {
		c.Step()
		if !c.Coalesced() {
			t.Fatal("open coupling diverged after coalescence")
		}
	}
}

func TestCoupledOpenPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newCoupledOpen(rules.NewUniform(), loadvec.New(3), loadvec.New(4), rng.New(1))
}

func TestTypicalGapSane(t *testing.T) {
	g := typicalGap(rules.ConstThresholds(2), process.ScenarioA, 1024, 1)
	if g < 1 || g > 6 {
		t.Fatalf("typical gap for ABKU[2] = %d, expected small", g)
	}
	g1 := typicalGap(rules.ConstThresholds(1), process.ScenarioA, 1024, 1)
	if g1 <= g {
		t.Fatalf("one-choice typical gap %d should exceed two-choice %d", g1, g)
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		in   int
		want string
	}{{0, "0"}, {7, "7"}, {128, "128"}, {100000, "100000"}} {
		if got := itoa(c.in); got != c.want {
			t.Fatalf("itoa(%d) = %q", c.in, got)
		}
	}
}
