package exper

import (
	"math"

	"dynalloc/internal/core"
	"dynalloc/internal/edgeorient"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/markov"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/stats"
	"dynalloc/internal/table"
	"dynalloc/internal/tvest"
)

func init() {
	register("E13", "Mixing-time bracket at simulation scale: projected-TV lower estimate vs coalescence upper bound vs Theorem 1", runE13)
	register("E14", "Exact expected recovery times (hitting times into the typical set) for small chains", runE14)
	register("E15", "Theorem 2's two-phase structure: discrepancies shrink to O(ln n) in O(n^2 ln n) steps and stay there", runE15)
}

func runE13(o Options) *table.Table {
	t := table.New("E13: mixing-time bracket for I_A-ABKU[2] (m = n, start = one tower)",
		"n", "TV-projected tau(1/4) (lower est)", "coalescence q75 (upper est)", "Theorem 1 tau(1/4)")
	ns := sizes(o, []int{16, 32}, []int{16, 32, 64, 128})
	replicas := trials(o, 4000, 20000)
	coalTrials := trials(o, 10, 40)
	for _, n := range ns {
		m := n
		// Stationary reference of the projected statistic. The chain's
		// relaxation time is ~m, so thin by m/2 to keep the reference's
		// effective sample size (and hence the TV noise floor) under
		// control.
		ref := tvest.Reference(
			process.New(process.ScenarioA, rules.NewABKU(2), loadvec.Balanced(n, m), rng.NewStream(o.Seed, uint64(n)*13)),
			tvest.TopKey, 50*m, replicas, m/2+1)
		// Projected TV curve from the tower start.
		hi := int64(6 * float64(m) * math.Log(float64(m)))
		grid := tvest.GeometricGrid(int64(m)/4+1, hi, 28)
		curve := tvest.Curve(func(trial int) tvest.Stepper {
			return process.New(process.ScenarioA, rules.NewABKU(2), loadvec.OneTower(n, m), rng.NewStream(o.Seed+1, uint64(trial)))
		}, tvest.TopKey, ref, replicas, grid)
		lower := "> horizon"
		if tt, ok := tvest.FirstBelow(grid, curve, 0.25); ok {
			lower = itoa(int(tt))
		}
		// Coalescence upper estimate: by the coupling inequality,
		// TV(t) <= Pr[T_coal > t], so tau(1/4) is at most the 75th
		// percentile of the coalescence time from the worst pair.
		q75 := core.QuantileCoalescence(func(r *rng.RNG) core.Coupling {
			v, u := loadvec.ExtremePair(n, m)
			return core.NewCoupledAlloc(process.ScenarioA, rules.NewABKU(2), v, u, r)
		}, o.Seed+2+uint64(n), coalTrials, int64(400)*int64(m)*int64(m), 0.75)
		t.AddRow(n, lower, q75, core.Theorem1Bound(m, 0.25))
	}
	t.AddNote("projection onto the top-3 statistic estimates TV from below, so column 2 ~<= true tau(1/4) <= column 3; Theorem 1 caps both")
	return t
}

func runE14(o Options) *table.Table {
	t := table.New("E14: exact expected recovery time into the typical set (gap <= 1)",
		"chain", "n", "m", "E[T] from tower", "worst-case E[T]", "m ln m", "m^2")
	type inst struct{ n, m int }
	instances := []inst{{3, 6}, {4, 8}}
	if o.Full {
		instances = append(instances, inst{5, 10}, inst{5, 15}, inst{6, 12})
	}
	for _, in := range instances {
		for _, sc := range []process.Scenario{process.ScenarioA, process.ScenarioB} {
			chain := markov.NewAllocChain(sc, rules.NewABKU(2), in.n, in.m)
			mat := markov.MustBuild(chain)
			typical := func(s int) bool { return chain.State(s).Gap() <= 1 }
			h, err := mat.HittingTimes(typical, 1e-10, 2_000_000)
			if err != nil {
				t.AddNote("I_%s n=%d m=%d: %v", sc, in.n, in.m, err)
				continue
			}
			worst, _, err := mat.WorstHittingTime(typical, 1e-10, 2_000_000)
			if err != nil {
				t.AddNote("I_%s n=%d m=%d: %v", sc, in.n, in.m, err)
				continue
			}
			tower := h[chain.Index(loadvec.OneTower(in.n, in.m))]
			name := "I_A-ABKU[2]"
			if sc == process.ScenarioB {
				name = "I_B-ABKU[2]"
			}
			t.AddRow(name, in.n, in.m, tower, worst,
				float64(in.m)*math.Log(float64(in.m)), float64(in.m*in.m))
		}
	}
	t.AddNote("Scenario A's exact expected recovery tracks m ln m; Scenario B's grows markedly faster, as Claims 5.3's bounds predict")
	return t
}

func runE15(o Options) *table.Table {
	t := table.New("E15: Theorem 2's two-phase structure (lazy edge-orientation chain)",
		"n", "trials", "phase-1 T (to unfairness <= 2 ln n)", "T/(n^2 ln n)", "window max unfairness", "window/(2 ln n)", "implied tau bound")
	ns := sizes(o, []int{16, 32}, []int{16, 32, 64, 128})
	k := trials(o, 6, 20)
	var xs, ys []float64
	for _, n := range ns {
		target := int(math.Ceil(2 * math.Log(float64(n))))
		var phase1 stats.Summary
		var windowMax stats.Summary
		timeouts := 0
		for trial := 0; trial < k; trial++ {
			r := rng.NewStream(o.Seed+uint64(n)*7, uint64(trial))
			s := edgeorient.AdversarialState(n, n/2)
			maxSteps := int64(n) * int64(n) * int64(n) * 100
			var tm int64
			for tm = 0; tm < maxSteps && s.Unfairness() > target; tm++ {
				s.Step(r)
			}
			if s.Unfairness() > target {
				timeouts++
				continue
			}
			phase1.AddInt(int(tm))
			// Phase 2: the O(ln n) band must persist for a long window
			// (the paper conditions on it holding for the next n^3 steps;
			// we verify a c*n^2 ln n window to keep runtimes sane).
			window := int(float64(n*n) * math.Log(float64(n)))
			wmax := 0
			for i := 0; i < window; i++ {
				s.Step(r)
				if u := s.Unfairness(); u > wmax {
					wmax = u
				}
			}
			windowMax.AddInt(wmax)
		}
		if timeouts > 0 {
			t.AddNote("n=%d: %d/%d phase-1 timeouts", n, timeouts, k)
		}
		shape := float64(n) * float64(n) * math.Log(float64(n))
		// Theorem 2's assembly: after phase 1 the path-coupling diameter
		// is the observed O(ln n) band (times n vertices / 2 per level
		// move — we use the conservative n * windowMax), and the
		// contraction factor of Corollary 6.4 applies. The implied bound
		// is phase-1 time + the conditional path-coupling time.
		reducedDiameter := math.Max(2, float64(n)*windowMax.Mean()/2)
		pairs := float64(n) * float64(n-1) / 2
		beta := 1 - 1/(float64(n)*pairs)
		implied := phase1.Mean() + core.PathCouplingContraction(reducedDiameter, beta, 0.25)
		t.AddRow(n, phase1.N(), phase1.Mean(), phase1.Mean()/shape,
			windowMax.Mean(), windowMax.Mean()/(2*math.Log(float64(n))), implied)
		xs = append(xs, float64(n))
		ys = append(ys, phase1.Mean())
	}
	if len(xs) >= 3 {
		fits := stats.BestFit(xs, ys)
		t.AddNote("phase-1 best fit: %s; log-log slope %.2f (paper: O(n^2 ln n) shrink, then O(ln n) discrepancies persist)",
			fits[0], stats.LogLogSlope(xs, ys))
	}
	return t
}
