package exper

import (
	"strconv"
	"strings"
	"testing"
)

// TestConclusionsSeedStable: the lemma-level conclusions must hold for
// any seed, not just the default. Run the cheap contraction experiments
// under several seeds and re-check the inequality columns.
func TestConclusionsSeedStable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []uint64{1, 77, 123456789} {
		o := Options{Seed: seed, Full: false}
		// E7: E[Delta'] <= 1 - 1/m (+ noise).
		tb := runE7(o)
		for _, row := range tb.Rows {
			mean := parseF(t, row[2])
			bound := parseF(t, row[3])
			if mean > bound+0.01 {
				t.Errorf("seed %d: E7 row %v violates Corollary 4.2", seed, row)
			}
		}
		// E4: E[Delta'] <= 1 and alpha >= 1/(2n) (+ noise).
		tb = runE4(o)
		for _, row := range tb.Rows {
			if parseF(t, row[2]) > 1.01 {
				t.Errorf("seed %d: E4 row %v violates Claim 5.1", seed, row)
			}
			if parseF(t, row[4]) < parseF(t, row[5])-0.01 {
				t.Errorf("seed %d: E4 row %v violates the alpha bound", seed, row)
			}
		}
	}
}

// TestQuickFullConsistency: quick and full scales of E7 agree on the
// shared sizes (they use the same seeds per n).
func TestQuickFullConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("runs E7 twice")
	}
	o := Options{Seed: 5}
	quickTb := runE7(o)
	o.Full = true
	fullTb := runE7(o)
	// Rows are keyed by n in column 0; shared sizes must produce similar
	// contraction estimates (different trial counts, same law).
	fullByN := map[string]float64{}
	for _, row := range fullTb.Rows {
		fullByN[row[0]] = parseF(t, row[2])
	}
	for _, row := range quickTb.Rows {
		if fullMean, ok := fullByN[row[0]]; ok {
			q := parseF(t, row[2])
			if diff := q - fullMean; diff > 0.01 || diff < -0.01 {
				t.Errorf("n=%s: quick mean %v vs full mean %v", row[0], q, fullMean)
			}
		}
	}
}

func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}
