package exper

import (
	"dynalloc/internal/loadvec"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
)

// coupledOpen couples two copies of the open process of Section 7 by
// sharing the coin, the removal quantile and the insertion sample. The
// ball counts follow the same reflected random walk, so they merge once
// the smaller copy is pinned at zero while the larger keeps removing;
// after the counts agree, Lemma 3.3 plus the shared removal quantile
// drive the configurations together.
type coupledOpen struct {
	rule  rules.Rule
	X, Y  loadvec.Vector
	r     *rng.RNG
	steps int64
}

func newCoupledOpen(rule rules.Rule, x, y loadvec.Vector, r *rng.RNG) *coupledOpen {
	if x.N() != y.N() {
		panic("exper: coupled open processes need equal bin counts")
	}
	return &coupledOpen{rule: rule, X: x.Clone(), Y: y.Clone(), r: r}
}

func (c *coupledOpen) Coalesced() bool { return c.X.Equal(c.Y) }

func (c *coupledOpen) Distance() int { return c.X.L1(c.Y) }

func (c *coupledOpen) Step() {
	if c.r.Bool() {
		// Shared removal quantile; no-op on an empty copy.
		u := c.r.Float64()
		removeQuantile(&c.X, u)
		removeQuantile(&c.Y, u)
	} else {
		s := rules.NewSample(c.X.N(), c.r)
		c.X.Add(c.rule.Choose(c.X, s))
		c.Y.Add(c.rule.Choose(c.Y, c.rule.Phi(s)))
	}
	c.steps++
}

func removeQuantile(v *loadvec.Vector, u float64) {
	m := v.Total()
	if m == 0 {
		return
	}
	t := int(u * float64(m))
	if t >= m {
		t = m - 1
	}
	acc := 0
	for i, x := range *v {
		acc += x
		if t < acc {
			v.Remove(i)
			return
		}
	}
}
