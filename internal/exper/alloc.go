package exper

import (
	"math"

	"dynalloc/internal/core"
	"dynalloc/internal/fluid"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/markov"
	"dynalloc/internal/metrics"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/stats"
	"dynalloc/internal/table"
)

func init() {
	register("E1", "Theorem 1: Scenario A mixes in ceil(m ln(m/eps)) — coalescence grows like m ln m", runE1)
	register("E2", "Theorem 1 tightness: max-load recovery from m*e_1 takes Theta(m ln m), far below the O(n^3) baseline", runE2)
	register("E3", "Claim 5.3: Scenario B is polynomially slower than Scenario A (O(n m^2 ln 1/eps) vs m ln m)", runE3)
	register("E4", "Claims 5.1/5.2: Scenario B coupling has E[Delta'] <= 1 and alpha >= 1/(2n)", runE4)
	register("E7", "Corollary 4.2 / Lemma 6.2: one-step contraction factors of the paper's couplings", runE7)
	register("E8", "Recovery time is independent of the initial state", runE8)
	register("E12", "Section 7 extensions: open processes and limited relocation", runE12)
}

// typicalGap returns the fluid-limit prediction of the stationary
// imbalance (max load above fair share) for the given rule — the
// "typical state" threshold used as recovery target.
func typicalGap(x rules.Thresholds, sc process.Scenario, n int, rho float64) int {
	defer metrics.Span("exper.state_setup.stage_ns")()
	cap := 30
	m := fluid.NewModel(x, sc, cap)
	p, err := m.FixedPoint(fluid.InitialBalanced(rho, cap), 0.05, 1e-7, 400000)
	if err != nil {
		panic(err)
	}
	fair := int(math.Ceil(rho))
	g := fluid.PredictedMaxLoad(p, n) - fair
	if g < 1 {
		g = 1
	}
	return g
}

func runE1(o Options) *table.Table {
	t := table.New("E1: Scenario A coalescence time (I_A-ABKU[2], m = n, worst-case start pair)",
		"n", "trials", "mean T_coal", "ci95", "T/(m ln m)", "Theorem 1 tau(1/4)")
	ns := sizes(o, []int{16, 32, 64}, []int{32, 64, 128, 256, 512})
	k := trials(o, 8, 40)
	var xs, ys []float64
	for _, n := range ns {
		m := n
		res := core.EstimateCoalescence(func(r *rng.RNG) core.Coupling {
			v, u := loadvec.ExtremePair(n, m)
			return core.NewCoupledAlloc(process.ScenarioA, rules.NewABKU(2), v, u, r)
		}, o.Seed+uint64(n), k, int64(400)*int64(m)*int64(m))
		if res.Timeouts > 0 {
			t.AddNote("n=%d: %d/%d trials timed out", n, res.Timeouts, k)
		}
		mlnm := float64(m) * math.Log(float64(m))
		t.AddRow(n, res.Times.N(), res.Times.Mean(), res.Times.CI95(), res.Times.Mean()/mlnm,
			core.Theorem1Bound(m, 0.25))
		xs = append(xs, float64(n))
		ys = append(ys, res.Times.Mean())
	}
	if len(xs) >= 3 {
		fits := stats.BestFit(xs, ys)
		t.AddNote("best-fit growth model: %s; log-log slope %.2f", fits[0], stats.LogLogSlope(xs, ys))
	}
	return t
}

func runE2(o Options) *table.Table {
	t := table.New("E2: Scenario A max-load recovery from one tower (I_A-ABKU[2], m = n)",
		"n", "gap target", "trials", "mean T_rec", "ci95", "T/(m ln m)", "O(n^3) baseline")
	ns := sizes(o, []int{16, 32, 64}, []int{32, 64, 128, 256, 512})
	k := trials(o, 10, 50)
	var xs, ys []float64
	for _, n := range ns {
		m := n
		gap := typicalGap(rules.ConstThresholds(2), process.ScenarioA, n, 1)
		res := core.MeasureRecovery(core.RecoverySpec{
			Scenario:  process.ScenarioA,
			Rule:      func() rules.Rule { return rules.NewABKU(2) },
			Initial:   func() loadvec.Vector { return loadvec.OneTower(n, m) },
			GapTarget: gap,
			MaxSteps:  int64(400) * int64(m) * int64(m),
		}, o.Seed+uint64(n), k)
		if res.Timeouts > 0 {
			t.AddNote("n=%d: %d/%d trials timed out", n, res.Timeouts, k)
		}
		mlnm := float64(m) * math.Log(float64(m))
		t.AddRow(n, gap, res.Times.N(), res.Times.Mean(), res.Times.CI95(),
			res.Times.Mean()/mlnm, core.AzarRecoveryBound(n))
		xs = append(xs, float64(n))
		ys = append(ys, res.Times.Mean())
	}
	if len(xs) >= 3 {
		fits := stats.BestFit(xs, ys)
		t.AddNote("best-fit growth model: %s; log-log slope %.2f", fits[0], stats.LogLogSlope(xs, ys))
	}
	return t
}

func runE3(o Options) *table.Table {
	t := table.New("E3: Scenario B coalescence time (I_B-ABKU[2], m = n, worst-case start pair)",
		"n", "trials", "mean T_coal", "ci95", "T/(m ln m)", "T/m^2", "Claim 5.3 tau(1/4)")
	ns := sizes(o, []int{8, 16, 32}, []int{16, 32, 64, 128})
	k := trials(o, 8, 30)
	var xs, ys []float64
	for _, n := range ns {
		m := n
		res := core.EstimateCoalescence(func(r *rng.RNG) core.Coupling {
			v, u := loadvec.ExtremePair(n, m)
			return core.NewCoupledAlloc(process.ScenarioB, rules.NewABKU(2), v, u, r)
		}, o.Seed+uint64(n), k, int64(2000)*int64(m)*int64(m))
		if res.Timeouts > 0 {
			t.AddNote("n=%d: %d/%d trials timed out", n, res.Timeouts, k)
		}
		mlnm := float64(m) * math.Log(float64(m))
		t.AddRow(n, res.Times.N(), res.Times.Mean(), res.Times.CI95(),
			res.Times.Mean()/mlnm, res.Times.Mean()/float64(m*m), core.Claim53Bound(n, m, 0.25))
		xs = append(xs, float64(n))
		ys = append(ys, res.Times.Mean())
	}
	if len(xs) >= 3 {
		fits := stats.BestFit(xs, ys)
		t.AddNote("best-fit growth model: %s; log-log slope %.2f (Scenario A slope is ~1; B is markedly steeper)",
			fits[0], stats.LogLogSlope(xs, ys))
	}
	return t
}

func runE4(o Options) *table.Table {
	t := table.New("E4: Scenario B coupling contraction on Gamma pairs (Claims 5.1/5.2)",
		"n", "m", "E[Delta']", "bound (=1)", "alpha = Pr[Delta' != 1]", "1/(2n)", "max Delta'")
	ns := sizes(o, []int{8, 16}, []int{8, 16, 32, 64})
	k := trials(o, 40000, 200000)
	for _, n := range ns {
		m := n
		r := rng.NewStream(o.Seed, uint64(n))
		est := core.MeasureContractionB(rules.NewABKU(2), n, m, k, r)
		t.AddRow(n, m, est.MeanDelta, 1.0, est.AlphaFreq, 1/(2*float64(n)), est.MaxDelta)
	}
	t.AddNote("Path Coupling Lemma case 2 with these (beta, alpha) gives Claim 5.3's O(n m^2 ln 1/eps)")
	return t
}

func runE7(o Options) *table.Table {
	t := table.New("E7: Scenario A coupling contraction on Gamma pairs (Corollary 4.2)",
		"n", "m", "E[Delta']", "bound 1-1/m", "Pr[coalesce]", "1/m", "max Delta'")
	ns := sizes(o, []int{8, 16}, []int{8, 16, 32, 64})
	k := trials(o, 40000, 200000)
	for _, n := range ns {
		m := n
		r := rng.NewStream(o.Seed, uint64(n))
		est := core.MeasureContractionA(rules.NewABKU(2), n, m, k, r)
		t.AddRow(n, m, est.MeanDelta, 1-1/float64(m),
			float64(est.Coalesced)/float64(est.Trials), 1/float64(m), est.MaxDelta)
	}
	t.AddNote("Path Coupling Lemma case 1 with beta = 1-1/m and D <= m gives Theorem 1's ceil(m ln(m/eps))")
	return t
}

func runE8(o Options) *table.Table {
	n := 64
	if o.Full {
		n = 128
	}
	m := n
	t := table.New("E8: recovery time is independent of the initial state (I_A-ABKU[2], n = m = "+itoa(n)+")",
		"initial state", "trials", "mean T_rec", "ci95", "median")
	k := trials(o, 10, 60)
	gap := typicalGap(rules.ConstThresholds(2), process.ScenarioA, n, 1)
	starts := []struct {
		name string
		gen  func(r *rng.RNG) loadvec.Vector
	}{
		{"one tower", func(*rng.RNG) loadvec.Vector { return loadvec.OneTower(n, m) }},
		{"two towers", func(*rng.RNG) loadvec.Vector { return loadvec.TwoTowers(n, m) }},
		{"staircase", func(*rng.RNG) loadvec.Vector { return loadvec.Staircase(n, m) }},
		{"random (1-choice)", func(r *rng.RNG) loadvec.Vector { return loadvec.Random(n, m, r) }},
	}
	for si, s := range starts {
		times := make([]float64, 0, k)
		var sum stats.Summary
		for trial := 0; trial < k; trial++ {
			r := rng.NewStream(o.Seed+uint64(si), uint64(trial))
			init := s.gen(r)
			p := process.New(process.ScenarioA, rules.NewABKU(2), init, r)
			tm, ok := p.RecoveryTime(gap, int64(1000)*int64(m)*int64(m))
			if !ok {
				t.AddNote("%s: trial %d timed out", s.name, trial)
				continue
			}
			sum.AddInt(int(tm))
			times = append(times, float64(tm))
		}
		t.AddRow(s.name, sum.N(), sum.Mean(), sum.CI95(), stats.Median(times))
	}
	t.AddNote("gap target %d (fluid-limit typical state); all starts recover within the same O(m ln m) band", gap)
	return t
}

func runE12(o Options) *table.Table {
	t := table.New("E12: Section 7 extensions — open process coalescence, bounded-open exact mixing, limited relocation",
		"process", "n", "trials", "mean T", "ci95")
	// Bounded open systems (the first class of Section 7): finite and
	// ergodic, so the exact machinery applies directly.
	for _, in := range [][2]int{{3, 5}, {4, 6}} {
		c := markov.NewBoundedOpenChain(rules.NewABKU(2), in[0], in[1])
		mat := markov.MustBuild(c)
		pi, err := mat.Stationary(1e-11, 5_000_000)
		if err != nil {
			t.AddNote("bounded open n=%d max=%d: %v", in[0], in[1], err)
			continue
		}
		tau, ok := mat.MixingTime(pi, 0.25, 100000)
		if !ok {
			t.AddNote("bounded open n=%d max=%d: horizon exceeded", in[0], in[1])
			continue
		}
		t.AddRow("bounded open exact tau(1/4), max="+itoa(in[1]), in[0], c.NumStates(), float64(tau), 0.0)
	}
	ns := sizes(o, []int{8, 16}, []int{16, 32, 64})
	k := trials(o, 8, 30)
	for _, n := range ns {
		m := 2 * n
		res := core.EstimateCoalescence(func(r *rng.RNG) core.Coupling {
			return newCoupledOpen(rules.NewABKU(2), loadvec.OneTower(n, m), loadvec.New(n), r)
		}, o.Seed+uint64(n), k, int64(4000)*int64(m)*int64(m))
		if res.Timeouts > 0 {
			t.AddNote("open n=%d: %d/%d trials timed out", n, res.Timeouts, k)
		}
		t.AddRow("open (m tower vs empty)", n, res.Times.N(), res.Times.Mean(), res.Times.CI95())
	}
	// Relocation: measure recovery speedup.
	for _, n := range ns {
		m := n
		gap := typicalGap(rules.ConstThresholds(2), process.ScenarioA, n, 1)
		for _, pr := range []float64{0, 1} {
			var sum stats.Summary
			timeouts := 0
			for trial := 0; trial < k; trial++ {
				r := rng.NewStream(o.Seed+uint64(n)+uint64(pr*7), uint64(trial))
				rp := process.NewRelocating(process.ScenarioA, rules.NewABKU(2), loadvec.OneTower(n, m), pr, r)
				tm, ok := rp.RunUntil(func(v loadvec.Vector) bool { return v.Gap() <= gap }, int64(1000)*int64(m)*int64(m))
				if !ok {
					timeouts++
					continue
				}
				sum.AddInt(int(tm))
			}
			if timeouts > 0 {
				t.AddNote("reloc=%.1f n=%d: %d timeouts", pr, n, timeouts)
			}
			name := "closed (reloc 0.0)"
			if pr > 0 {
				name = "with relocation 1.0"
			}
			t.AddRow(name, n, sum.N(), sum.Mean(), sum.CI95())
		}
	}
	return t
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
