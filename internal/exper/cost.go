package exper

import (
	"dynalloc/internal/carpool"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/stats"
	"dynalloc/internal/table"
)

func init() {
	register("E19", "The cost of choice: probes per insertion vs stationary max load across rules (the ADAP(x) efficiency frontier of Czumaj-Stemann)", runE19)
	register("E20", "Fair allocation (carpool) via the Ajtai et al. reduction: fairness and recovery vs trip size", runE20)
}

func runE19(o Options) *table.Table {
	n := 10000
	if o.Full {
		n = 50000
	}
	t := table.New("E19: probes per insertion vs stationary max load (I_A, m = n = "+itoa(n)+")",
		"rule", "mean probes/insertion", "stationary mean max load", "ci95")
	type cand struct {
		name string
		rule rules.Rule
	}
	cands := []cand{
		{"Uniform", rules.NewUniform()},
		{"Mixed(0.2)", rules.NewMixed(0.2)},
		{"Mixed(0.5)", rules.NewMixed(0.5)},
		{"ABKU[2]", rules.NewABKU(2)},
		{"ABKU[3]", rules.NewABKU(3)},
		{"ABKU[5]", rules.NewABKU(5)},
		{"ADAP(1,2)", rules.NewAdaptive(rules.SliceThresholds{1, 2})},
		{"ADAP(1,2,4)", rules.NewAdaptive(rules.SliceThresholds{1, 2, 4})},
		{"ADAP(1,3)", rules.NewAdaptive(rules.SliceThresholds{1, 3})},
	}
	samples := trials(o, 5, 12)
	for ci, c := range cands {
		r := rng.NewStream(o.Seed, uint64(ci)*17)
		v := loadvec.Balanced(n, n)
		// Burn in with the plain process (probe counts not needed).
		p := process.New(process.ScenarioA, c.rule, v, r)
		p.Run(15 * n)
		// Then measure probes by driving the phases manually.
		state := p.State()
		var probes stats.Summary
		var maxes stats.Summary
		for s := 0; s < samples; s++ {
			for step := 0; step < n; step++ {
				// Remove per A(v) via scan (measurement path, not hot).
				ball := r.Intn(state.Total())
				acc := 0
				for i, x := range state {
					acc += x
					if ball < acc {
						state.Remove(i)
						break
					}
				}
				sam := rules.NewSample(state.N(), r)
				state.Add(c.rule.Choose(state, sam))
				probes.AddInt(sam.Len())
			}
			maxes.AddInt(state.MaxLoad())
		}
		t.AddRow(c.name, probes.Mean(), maxes.Mean(), maxes.CI95())
	}
	t.AddNote("ADAP(x) buys ABKU-like balance with adaptive probe budgets — the efficiency frontier motivating Czumaj-Stemann's extension")
	return t
}

func runE20(o Options) *table.Table {
	n := 64
	if o.Full {
		n = 128
	}
	t := table.New("E20: carpool fairness via the edge-orientation reduction (n = "+itoa(n)+" participants)",
		"trip size k", "stationary mean unfairness", "max seen", "recovery trips (from height 10)", "ci95")
	k := trials(o, 8, 25)
	for _, size := range []int{2, 3, 4, 8} {
		r := rng.NewStream(o.Seed, uint64(size)*5)
		// Stationary fairness.
		p := carpool.New(n, size)
		burn := 20 * n
		for i := 0; i < burn; i++ {
			p.Step(r)
		}
		var fair stats.Summary
		maxSeen := 0.0
		samples := trials(o, 200, 1500)
		for s := 0; s < samples; s++ {
			for j := 0; j < n/2+1; j++ {
				p.Step(r)
			}
			u := p.Unfairness()
			fair.Add(u)
			if u > maxSeen {
				maxSeen = u
			}
		}
		// Recovery from an adversarial history of height 10.
		var rec stats.Summary
		timeouts := 0
		for trial := 0; trial < k; trial++ {
			rt := rng.NewStream(o.Seed+1, uint64(size)*1000+uint64(trial))
			q := carpool.New(n, size)
			bad := make([]int64, n)
			h := int64(10 * size)
			for i := 0; i < n/2; i++ {
				bad[i] = h
				bad[n-1-i] = -h
			}
			q.SetDiscrepancies(bad)
			target := fair.Mean() + 2
			var steps int64
			max := int64(n) * int64(n) * int64(n) * 20
			for steps = 0; steps < max && q.Unfairness() > target; steps++ {
				q.Step(rt)
			}
			if q.Unfairness() > target {
				timeouts++
				continue
			}
			rec.AddInt(int(steps))
		}
		if timeouts > 0 {
			t.AddNote("k=%d: %d/%d recovery timeouts", size, timeouts, k)
		}
		t.AddRow(size, fair.Mean(), maxSeen, rec.Mean(), rec.CI95())
	}
	t.AddNote("k=2 is exactly the edge orientation problem at half scale (the factor-2 price of the reduction); recovery stays polynomial for every k")

	return t
}
