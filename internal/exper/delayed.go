package exper

import (
	"math"

	"dynalloc/internal/core"
	"dynalloc/internal/edgeorient"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/stats"
	"dynalloc/internal/table"
)

func init() {
	register("E16", "Delayed path coupling: the one-step factor 1-1/m compounds geometrically over k steps", runE16)
}

func runE16(o Options) *table.Table {
	n := 32
	if o.Full {
		n = 64
	}
	m := n
	t := table.New("E16: delayed contraction of the Scenario A coupling (I_A-ABKU[2], n = m = "+itoa(n)+")",
		"k", "E[Delta^(k)] measured", "(1-1/m)^k", "ratio")
	k := 4 * m
	tr := trials(o, 8000, 60000)
	curve := core.MeasureDelayedContraction(process.ScenarioA, rules.NewABKU(2), n, m, k, tr, o.Seed)
	for _, kk := range []int{1, m / 2, m, 2 * m, 4 * m} {
		pred := math.Pow(1-1.0/float64(m), float64(kk))
		got := curve[kk-1]
		ratio := 0.0
		if pred > 0 {
			ratio = got / pred
		}
		t.AddRow(kk, got, pred, ratio)
	}
	t.AddNote("measured with the general shared-randomness coupling (slightly super-unital at k=1, unlike the exact Section 4 coupling of E7); compounding to below (1-1/m)^k by k ~ m is what turns the one-step factor into the m ln m mixing bound")

	// Contrast: the Section 6 coupling has ADDITIVE drift (Lemmas
	// 6.2/6.3 subtract (n choose 2)^{-1} per step) rather than a
	// multiplicative factor; over k steps from adjacent pairs the L1
	// surrogate falls roughly linearly, not geometrically.
	en := 16
	if o.Full {
		en = 24
	}
	pairsEdge := float64(en) * float64(en-1) / 2
	ek := int(6 * pairsEdge)
	etr := trials(o, 300, 2000)
	var l1At = map[int]*stats.Summary{}
	checkpoints := []int{1, ek / 4, ek / 2, ek}
	for _, cp := range checkpoints {
		l1At[cp] = &stats.Summary{}
	}
	for trial := 0; trial < etr; trial++ {
		r := rng.NewStream(o.Seed+99, uint64(trial))
		x, y := edgeorient.GAdjacentPair(en, r, 20)
		c := edgeorient.NewCoupled(x, y, r)
		for step := 1; step <= ek; step++ {
			c.Step()
			if s, ok := l1At[step]; ok {
				s.AddInt(c.Distance())
			}
		}
	}
	for _, cp := range checkpoints {
		bound := math.Max(0, 2-float64(cp)/pairsEdge) // L1 of a split pair is 2; worst-case drift 1/C(n,2)
		ratio := 0.0
		if bound > 0 {
			ratio = l1At[cp].Mean() / bound
		}
		t.AddRow("edge k="+itoa(cp), l1At[cp].Mean(), bound, ratio)
	}
	t.AddNote("edge-orientation rows: column 3 is the worst-case ADDITIVE-drift bound of Lemmas 6.2/6.3 (distance - k/C(n,2)); the measured decay sits below it because the bit-flip case coalesces adjacent pairs outright — but the drift, unlike Scenario A's, is additive, which is why the Section 6 bounds carry n^2-scale factors")
	return t
}
