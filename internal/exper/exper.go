// Package exper is the benchmark harness: one runner per experiment in
// DESIGN.md (E1-E12), each regenerating one of the paper's results as a
// printed table. cmd/recoverysim drives the runners; bench_test.go wraps
// them in testing.B benchmarks; EXPERIMENTS.md records their output
// against the paper's claims.
package exper

import (
	"fmt"
	"sort"

	"dynalloc/internal/metrics"
	"dynalloc/internal/table"
)

// Options configures a run.
type Options struct {
	// Seed makes every experiment reproducible; trials use derived
	// streams.
	Seed uint64
	// Full selects the paper-scale parameter sweeps; false runs the
	// quick versions used by benchmarks and smoke tests.
	Full bool
}

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Claim string // the paper result being reproduced
	Run   func(Options) *table.Table
}

var registry = map[string]Runner{}

func register(id, claim string, run func(Options) *table.Table) {
	if _, dup := registry[id]; dup {
		panic("exper: duplicate experiment id " + id)
	}
	// Every runner gets a whole-run stage timer for free; finer stages
	// (state setup, coupling sweeps, TV estimation) report from the
	// packages that implement them.
	timed := func(o Options) *table.Table {
		defer metrics.Span("exper." + id + ".run_ns")()
		return run(o)
	}
	registry[id] = Runner{ID: id, Claim: claim, Run: timed}
}

// Get returns the runner for an experiment id (e.g. "E1").
func Get(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return Runner{}, fmt.Errorf("exper: unknown experiment %q (have %v)", id, IDs())
	}
	return r, nil
}

// IDs lists the registered experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// Numeric ordering: E1, E2, ..., E10 (not lexicographic).
		var a, b int
		fmt.Sscanf(ids[i], "E%d", &a)
		fmt.Sscanf(ids[j], "E%d", &b)
		return a < b
	})
	return ids
}

// sizes picks a sweep by scale.
func sizes(o Options, quick, full []int) []int {
	if o.Full {
		return full
	}
	return quick
}

// trials picks a repeat count by scale.
func trials(o Options, quick, full int) int {
	if o.Full {
		return full
	}
	return quick
}
