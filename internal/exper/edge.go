package exper

import (
	"math"

	"dynalloc/internal/core"
	"dynalloc/internal/edgeorient"
	"dynalloc/internal/markov"
	"dynalloc/internal/rng"
	"dynalloc/internal/stats"
	"dynalloc/internal/table"
)

func init() {
	register("E5", "Corollary 6.4 / Theorem 2: edge orientation recovers in O(n^2 ln^2 n) steps, far below the O(n^5) baseline", runE5)
	register("E6", "Ajtai et al.: stationary expected unfairness of the greedy protocol is Theta(log log n)", runE6)
}

func runE5(o Options) *table.Table {
	t := table.New("E5: edge orientation recovery (greedy protocol, lazy chain)",
		"n", "quantity", "trials", "mean T", "ci95", "T/(n^2 ln^2 n)", "O(n^5) baseline")
	// Coupled coalescence from (adversarial, zero): upper bounds mixing.
	nsCoal := sizes(o, []int{6, 8, 10}, []int{8, 12, 16, 24})
	k := trials(o, 6, 20)
	var xs, ys []float64
	for _, n := range nsCoal {
		res := core.EstimateCoalescence(func(r *rng.RNG) core.Coupling {
			return edgeOrientCoupling(n, r)
		}, o.Seed+uint64(n), k, int64(n)*int64(n)*int64(n)*int64(n)*200)
		if res.Timeouts > 0 {
			t.AddNote("coalescence n=%d: %d/%d timeouts", n, res.Timeouts, k)
		}
		shape := float64(n) * float64(n) * math.Pow(math.Log(float64(n)), 2)
		t.AddRow(n, "coupling coalescence", res.Times.N(), res.Times.Mean(), res.Times.CI95(),
			res.Times.Mean()/shape, core.AjtaiRecoveryBound(n))
	}
	// Unfairness recovery from an adversarial state: the operational
	// recovery measure (time until max |disc| falls to the typical band).
	nsRec := sizes(o, []int{16, 32}, []int{16, 32, 64, 128, 256})
	for _, n := range nsRec {
		var sum stats.Summary
		timeouts := 0
		target := 3 // typical Theta(log log n) band for these n
		for trial := 0; trial < k; trial++ {
			r := rng.NewStream(o.Seed+uint64(n)*31, uint64(trial))
			s := edgeorient.AdversarialState(n, n/2)
			var tm int64
			max := int64(n) * int64(n) * int64(n) * 50
			for tm = 0; tm < max && s.Unfairness() > target; tm++ {
				s.Step(r)
			}
			if s.Unfairness() > target {
				timeouts++
				continue
			}
			sum.AddInt(int(tm))
		}
		if timeouts > 0 {
			t.AddNote("recovery n=%d: %d/%d timeouts", n, timeouts, k)
		}
		shape := float64(n) * float64(n) * math.Pow(math.Log(float64(n)), 2)
		t.AddRow(n, "unfairness recovery (h=n/2)", sum.N(), sum.Mean(), sum.CI95(),
			sum.Mean()/shape, core.AjtaiRecoveryBound(n))
		xs = append(xs, float64(n))
		ys = append(ys, sum.Mean())
	}
	if len(xs) >= 3 {
		fits := stats.BestFit(xs, ys)
		t.AddNote("unfairness-recovery best fit: %s; log-log slope %.2f (paper: O(n^2 ln^2 n), Omega(n^2); prior bound n^5)",
			fits[0], stats.LogLogSlope(xs, ys))
	}
	return t
}

// edgeOrientCoupling builds the standard E5 coupling start pair.
func edgeOrientCoupling(n int, r *rng.RNG) core.Coupling {
	x := edgeorient.AdversarialState(n, (n+3)/4)
	y := edgeorient.NewState(n)
	return edgeorient.NewCoupled(x, y, r)
}

func runE6(o Options) *table.Table {
	t := table.New("E6: stationary unfairness of the greedy protocol (Ajtai et al. Theta(log log n))",
		"n", "samples", "mean unfairness", "ci95", "max seen", "ln ln n")
	ns := sizes(o, []int{16, 64, 256}, []int{16, 64, 256, 1024, 4096})
	for _, n := range ns {
		r := rng.NewStream(o.Seed, uint64(n))
		s := edgeorient.NewState(n)
		burn := 20 * n
		for i := 0; i < burn; i++ {
			s.StepGreedy(r)
		}
		var sum stats.Summary
		maxSeen := 0
		samples := trials(o, 300, 2000)
		for i := 0; i < samples; i++ {
			for j := 0; j < n/2+1; j++ {
				s.StepGreedy(r)
			}
			u := s.Unfairness()
			sum.AddInt(u)
			if u > maxSeen {
				maxSeen = u
			}
		}
		t.AddRow(n, sum.N(), sum.Mean(), sum.CI95(), maxSeen, math.Log(math.Log(float64(n))))
	}
	// Exact stationary expected unfairness for tiny n (ground truth for
	// the simulation estimates above).
	for _, n := range []int{3, 4, 5} {
		c := edgeorient.NewChain(n, 500000)
		m := markov.MustBuild(c)
		pi, err := m.Stationary(1e-11, 5_000_000)
		if err != nil {
			t.AddNote("exact n=%d: %v", n, err)
			continue
		}
		t.AddRow(n, c.NumStates(), c.ExpectedUnfairness(pi), 0.0, "(exact)", math.Log(math.Log(float64(n))))
	}
	t.AddNote("mean unfairness grows like ln ln n: doubling n repeatedly moves the mean by O(1) at most; the last rows are exact (lazy chain, enumerated)")
	return t
}
