package exper

import (
	"dynalloc/internal/core"
	"dynalloc/internal/edgeorient"
	"dynalloc/internal/markov"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/table"
)

func init() {
	register("E9", "Lemmas 3.3/3.4: ABKU[d] and ADAP(x) are right-oriented; shared-sample insertion never grows ||v-u||_1", runE9)
	register("E10", "Exact mixing times of small chains vs the paper's path-coupling bounds", runE10)
}

func runE9(o Options) *table.Table {
	t := table.New("E9: right-orientation verification (Definition 3.4 + Lemma 3.3)",
		"rule", "n", "m", "trials", "result")
	ruleSet := []rules.Rule{
		rules.NewUniform(),
		rules.NewABKU(2),
		rules.NewABKU(3),
		rules.NewABKU(7),
		rules.NewAdaptive(rules.SliceThresholds{1, 2, 4, 8}),
		rules.NewAdaptive(rules.SliceThresholds{2, 2, 3, 5}),
		rules.NewMixed(0.5),
		rules.MinLoad{},
	}
	shapes := [][2]int{{4, 8}, {8, 8}, {16, 48}}
	k := trials(o, 2000, 20000)
	for _, rule := range ruleSet {
		for _, nm := range shapes {
			r := rng.NewStream(o.Seed, uint64(nm[0]*1000+nm[1]))
			res := "PASS"
			if err := rules.VerifyRule(rule, nm[0], nm[1], k, r); err != nil {
				res = "FAIL: " + err.Error()
			}
			t.AddRow(rule.Name(), nm[0], nm[1], k, res)
		}
	}
	return t
}

func runE10(o Options) *table.Table {
	t := table.New("E10: exact mixing time tau(1/4) vs paper bounds (small enumerable chains)",
		"chain", "n", "m", "states", "exact tau(1/4)", "paper bound", "bound/exact")
	type inst struct{ n, m int }
	instances := []inst{{3, 4}, {3, 6}, {4, 6}}
	if o.Full {
		instances = append(instances, inst{4, 8}, inst{5, 8})
	}
	horizon := 50000
	for _, in := range instances {
		// Scenario A.
		ca := markov.NewAllocChain(process.ScenarioA, rules.NewABKU(2), in.n, in.m)
		ma := markov.MustBuild(ca)
		pia, err := ma.Stationary(1e-11, 5_000_000)
		if err != nil {
			t.AddNote("I_A n=%d m=%d: %v", in.n, in.m, err)
			continue
		}
		tauA, okA := ma.MixingTime(pia, 0.25, horizon)
		boundA := core.Theorem1Bound(in.m, 0.25)
		rowA := "timeout"
		ratioA := 0.0
		if okA {
			rowA = itoa(tauA)
			if tauA > 0 {
				ratioA = boundA / float64(tauA)
			}
		}
		t.AddRow("I_A-ABKU[2]", in.n, in.m, ca.NumStates(), rowA, boundA, ratioA)

		// Scenario B.
		cb := markov.NewAllocChain(process.ScenarioB, rules.NewABKU(2), in.n, in.m)
		mb := markov.MustBuild(cb)
		pib, err := mb.Stationary(1e-11, 5_000_000)
		if err != nil {
			t.AddNote("I_B n=%d m=%d: %v", in.n, in.m, err)
			continue
		}
		tauB, okB := mb.MixingTime(pib, 0.25, horizon)
		boundB := core.Claim53Bound(in.n, in.m, 0.25)
		rowB := "timeout"
		ratioB := 0.0
		if okB {
			rowB = itoa(tauB)
			if tauB > 0 {
				ratioB = boundB / float64(tauB)
			}
		}
		t.AddRow("I_B-ABKU[2]", in.n, in.m, cb.NumStates(), rowB, boundB, ratioB)
	}
	// Edge orientation, exact for tiny n.
	eoSizes := []int{3, 4}
	if o.Full {
		eoSizes = append(eoSizes, 5)
	}
	for _, n := range eoSizes {
		ch := edgeorient.NewChain(n, 500000)
		m := markov.MustBuild(ch)
		pi, err := m.Stationary(1e-11, 5_000_000)
		if err != nil {
			t.AddNote("edge orientation n=%d: %v", n, err)
			continue
		}
		tau, ok := m.MixingTime(pi, 0.25, horizon)
		bound := core.Corollary64Bound(n, 0.25)
		row := "timeout"
		ratio := 0.0
		if ok {
			row = itoa(tau)
			if tau > 0 {
				ratio = bound / float64(tau)
			}
		}
		t.AddRow("edge orientation", n, 0, ch.NumStates(), row, bound, ratio)
	}
	t.AddNote("the paper's bounds are valid upper bounds (ratio >= 1) of the predicted shape")
	return t
}
