package exper

import (
	"dynalloc/internal/core"
	"dynalloc/internal/edgeorient"
	"dynalloc/internal/metrics"
	"dynalloc/internal/par"
	"dynalloc/internal/table"
)

func init() {
	register("E18", "Exhaustive exact verification of Corollary 4.2 and Claims 5.1/5.2 over every Gamma pair of small state spaces", runE18)
}

func runE18(o Options) *table.Table {
	t := table.New("E18: exact one-step coupling law over ALL Gamma pairs (ABKU[2])",
		"coupling", "n", "m", "pairs", "max E[Delta']", "bound", "min key prob", "key prob bound")
	type inst struct{ n, m int }
	instances := []inst{{3, 5}, {4, 6}, {4, 8}}
	if o.Full {
		instances = append(instances, inst{5, 8}, inst{5, 10}, inst{6, 9})
	}
	const d = 2
	type pairLaw struct{ mean, key float64 }
	// reduceMaxMin folds per-pair laws into (max E[Delta'], min key
	// prob). Order-independent, so the parallel scan stays exact.
	reduceMaxMin := func(laws []pairLaw) (float64, float64) {
		maxMean, minKey := 0.0, 1.0
		for _, l := range laws {
			if l.mean > maxMean {
				maxMean = l.mean
			}
			if l.key < minKey {
				minKey = l.key
			}
		}
		return maxMean, minKey
	}
	for _, in := range instances {
		setup := metrics.Span("exper.state_setup.stage_ns")
		pairs := core.AllGammaPairs(in.n, in.m)
		setup()
		// Section 4 coupling: max E[Delta'] vs 1-1/m; min coalescence
		// prob vs 1/m. Each pair's law is an independent exact
		// enumeration, so the scan runs on all CPUs.
		scanA := metrics.Span("exper.coupling_scan.stage_ns")
		lawsA := par.Map(len(pairs), 0, func(i int) pairLaw {
			ec := core.ExactGammaA(d, pairs[i][0], pairs[i][1])
			return pairLaw{ec.MeanDelta, ec.ZeroFreq}
		})
		scanA()
		maxMean, minZero := reduceMaxMin(lawsA)
		t.AddRow("Section 4 (I_A)", in.n, in.m, len(pairs),
			maxMean, 1-1/float64(in.m), minZero, 1/float64(in.m))

		// Section 5 coupling: max E[Delta'] vs 1; min alpha vs 1/(2n).
		scanB := metrics.Span("exper.coupling_scan.stage_ns")
		lawsB := par.Map(len(pairs), 0, func(i int) pairLaw {
			ec := core.ExactGammaB(d, pairs[i][0], pairs[i][1])
			return pairLaw{ec.MeanDelta, ec.AlphaFreq}
		})
		scanB()
		maxMean, minAlpha := reduceMaxMin(lawsB)
		t.AddRow("Section 5 (I_B)", in.n, in.m, len(pairs),
			maxMean, 1.0, minAlpha, 1/(2*float64(in.n)))
	}
	// Section 6 coupling (Lemma 6.2): every split pair of the reachable
	// space, exact over the (phi, psi, b) randomness and the exact
	// Definition 6.3 metric.
	eoSizes := []int{3, 4}
	if o.Full {
		eoSizes = append(eoSizes, 5)
	}
	for _, n := range eoSizes {
		setup := metrics.Span("exper.state_setup.stage_ns")
		pairs := edgeorient.AllSplitPairs(n, 500000)
		setup()
		scan := metrics.Span("exper.coupling_scan.stage_ns")
		laws := par.Map(len(pairs), 0, func(i int) pairLaw {
			ec := edgeorient.ExactGammaEdge(pairs[i][0], pairs[i][1], 6)
			return pairLaw{ec.MeanDelta, ec.ZeroFreq}
		})
		scan()
		maxMean, minZero := reduceMaxMin(laws)
		bound := 1 - 2/(float64(n)*float64(n-1))
		t.AddRow("Section 6 (edge)", n, 0, len(pairs), maxMean, bound, minZero, 1/(2*float64(n)))
	}
	t.AddNote("computed by exact enumeration of removal, branch and shared-insertion randomness (Sections 4/5) and of the (phi, psi, b) randomness with the exact Definition 6.3 metric (Section 6) — no Monte Carlo; every pair satisfies its lemma")
	return t
}
