package exper

import (
	"math"

	"dynalloc/internal/fluid"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rng"
	"dynalloc/internal/rules"
	"dynalloc/internal/stats"
	"dynalloc/internal/table"
)

func init() {
	register("E11", "Mitzenmacher companion: stationary max load is ln ln n / ln d + O(1) for d >= 2, vs Theta(ln n / ln ln n) for d = 1", runE11)
}

func runE11(o Options) *table.Table {
	n := 10000
	if o.Full {
		n = 100000
	}
	t := table.New("E11: stationary maximum load (fluid-limit prediction vs simulation, m = n = "+itoa(n)+")",
		"rule", "fluid max load", "sim mean max", "ci95", "ln ln n/ln d")
	type cand struct {
		name string
		x    rules.Thresholds
		rule rules.Rule
		d    float64
	}
	cands := []cand{
		{"Uniform (d=1)", rules.ConstThresholds(1), rules.NewUniform(), 0},
		{"Mixed(0.5)", nil, rules.NewMixed(0.5), 0},
		{"ABKU[2]", rules.ConstThresholds(2), rules.NewABKU(2), 2},
		{"ABKU[3]", rules.ConstThresholds(3), rules.NewABKU(3), 3},
		{"ADAP(1,2,4,...)", rules.SliceThresholds{1, 2, 4}, rules.NewAdaptive(rules.SliceThresholds{1, 2, 4}), 0},
	}
	cap := 40
	samples := trials(o, 5, 12)
	for ci, c := range cands {
		var model *fluid.Model
		if c.x != nil {
			model = fluid.NewModel(c.x, process.ScenarioA, cap)
		} else {
			mx, ok := c.rule.(*rules.Mixed)
			if !ok {
				t.AddNote("%s: no fluid model available", c.name)
				continue
			}
			model = fluid.NewMixedModel(mx.Beta(), process.ScenarioA, cap)
		}
		pf, err := model.FixedPoint(fluid.InitialBalanced(1, cap), 0.05, 1e-8, 400000)
		if err != nil {
			t.AddNote("%s: fluid fixed point failed: %v", c.name, err)
			continue
		}
		pred := fluid.PredictedMaxLoad(pf, n)

		r := rng.NewStream(o.Seed, uint64(ci))
		p := process.New(process.ScenarioA, c.rule, loadvec.Balanced(n, n), r)
		p.Run(20 * n) // burn-in to stationarity
		var sum stats.Summary
		for s := 0; s < samples; s++ {
			p.Run(2 * n)
			sum.AddInt(p.MaxLoad())
		}
		ref := 0.0
		if c.d >= 2 {
			ref = math.Log(math.Log(float64(n))) / math.Log(c.d)
		}
		t.AddRow(c.name, pred, sum.Mean(), sum.CI95(), ref)
	}
	t.AddNote("d=1 sits in the Theta(ln n/ln ln n) regime; any d >= 2 collapses to ln ln n/ln d + O(1) (the two-choices effect)")
	return t
}
