package exper

import (
	"math"

	"dynalloc/internal/core"
	"dynalloc/internal/fluid"
	"dynalloc/internal/loadvec"
	"dynalloc/internal/process"
	"dynalloc/internal/rules"
	"dynalloc/internal/table"
)

func init() {
	register("E17", "Theorem 1 is rule-universal: every right-oriented rule recovers in Theta(m ln m) under Scenario A (to its own typical state)", runE17)
}

func runE17(o Options) *table.Table {
	n := 128
	if o.Full {
		n = 256
	}
	m := n
	t := table.New("E17: recovery time by insertion rule (I_A, n = m = "+itoa(n)+", one-tower start)",
		"rule", "typical gap", "trials", "mean T_rec", "ci95", "T/(m ln m)")
	k := trials(o, 10, 50)
	type cand struct {
		name string
		mk   func() rules.Rule
		gap  int
	}
	cands := []cand{
		{"Uniform", func() rules.Rule { return rules.NewUniform() }, typicalGap(rules.ConstThresholds(1), process.ScenarioA, n, 1)},
		{"Mixed(0.5)", func() rules.Rule { return rules.NewMixed(0.5) }, 0},
		{"ABKU[2]", func() rules.Rule { return rules.NewABKU(2) }, typicalGap(rules.ConstThresholds(2), process.ScenarioA, n, 1)},
		{"ABKU[3]", func() rules.Rule { return rules.NewABKU(3) }, typicalGap(rules.ConstThresholds(3), process.ScenarioA, n, 1)},
		{"ADAP(1,2,4)", func() rules.Rule { return rules.NewAdaptive(rules.SliceThresholds{1, 2, 4}) }, typicalGap(rules.SliceThresholds{1, 2, 4}, process.ScenarioA, n, 1)},
		{"MinLoad", func() rules.Rule { return rules.MinLoad{} }, 1},
	}
	// Mixed typical gap via its fluid model.
	cands[1].gap = mixedTypicalGap(0.5, n)
	mlnm := float64(m) * math.Log(float64(m))
	for ci, c := range cands {
		res := core.MeasureRecovery(core.RecoverySpec{
			Scenario:  process.ScenarioA,
			Rule:      c.mk,
			Initial:   func() loadvec.Vector { return loadvec.OneTower(n, m) },
			GapTarget: c.gap,
			MaxSteps:  int64(2000) * int64(m) * int64(m),
		}, o.Seed+uint64(ci), k)
		if res.Timeouts > 0 {
			t.AddNote("%s: %d/%d timeouts", c.name, res.Timeouts, k)
		}
		t.AddRow(c.name, c.gap, res.Times.N(), res.Times.Mean(), res.Times.CI95(),
			res.Times.Mean()/mlnm)
	}
	t.AddNote("each rule recovers to ITS OWN fluid-limit typical state; the time scale m ln m is shared — the universality Theorem 1 proves for all right-oriented rules")
	return t
}

func mixedTypicalGap(beta float64, n int) int {
	const cap = 30
	m := fluid.NewMixedModel(beta, process.ScenarioA, cap)
	p, err := m.FixedPoint(fluid.InitialBalanced(1, cap), 0.05, 1e-7, 400000)
	if err != nil {
		panic(err)
	}
	g := fluid.PredictedMaxLoad(p, n) - 1
	if g < 1 {
		g = 1
	}
	return g
}
