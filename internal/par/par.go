// Package par provides the small deterministic-parallelism substrate the
// experiment harness runs on: a bounded worker pool over an index space.
//
// Every experiment trial draws its randomness from a stream derived from
// (seed, trial index), so trials are independent and the work is
// embarrassingly parallel; results are written into per-index slots and
// reduced in index order afterwards, which keeps every table bit-for-bit
// reproducible regardless of the worker count.
//
// # Panic semantics
//
// If any fn(i) panics, ForEach re-panics in the caller's goroutine with
// the first captured panic value, wrapped to note its origin. The
// remaining indices are ABANDONED, not retried: every worker stops at
// its next index claim, so an arbitrary subset of the still-unstarted
// indices is never executed (and indices claimed between the panic and
// the stop flag propagating may still run to completion). Callers that
// treat a panic as recoverable must therefore assume partial coverage
// of [0, n). The abandoned count is observable as the
// "par.foreach.skipped_indices" counter when metrics collection is on.
//
// # Metrics
//
// When metrics.Enabled(), each ForEach call records into the default
// registry: calls/indices/panics/skipped-index counters, wall and
// per-worker busy time ("par.foreach.wall_ns" / "par.foreach.busy_ns"),
// queue drain time ("par.foreach.drain_ns": from the first worker
// running out of indices to the last fn returning — the straggler tail
// a static partition would hide), per-call worker utilization
// ("par.foreach.utilization": busy / (workers * wall)), and a per-index
// latency histogram ("par.foreach.index_ns"). When collection is off
// the only overhead is one atomic load per ForEach call.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dynalloc/internal/metrics"
)

// ForEach runs fn(i) for every i in [0, n), distributing indices over a
// pool of `workers` goroutines (runtime.NumCPU() when workers <= 0).
// It returns after all calls complete. If any fn panics, ForEach panics
// in the caller's goroutine with the first captured panic value (wrapped
// to note its origin); remaining indices are skipped — see the package
// comment for the exact semantics.
func ForEach(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}

	// Capture the gate once: a call observes either full instrumentation
	// or none, even if collection is toggled mid-run.
	instr := metrics.Enabled()
	var start time.Time
	if instr {
		start = time.Now()
		metrics.AddCounter("par.foreach.calls", 1)
		metrics.AddCounter("par.foreach.indices", int64(n))
		metrics.SetGauge("par.foreach.workers", float64(workers))
	}

	if workers == 1 {
		done := 0
		if instr {
			// A panic must still account for the abandoned tail before
			// propagating (the sequential path has no recover of its own).
			defer func() {
				metrics.ObserveTimer("par.foreach.wall_ns", time.Since(start))
				if done < n {
					metrics.AddCounter("par.foreach.panics", 1)
					metrics.AddCounter("par.foreach.skipped_indices", int64(n-done))
				}
			}()
		}
		for i := 0; i < n; i++ {
			done++ // counted as executed even if fn panics, matching the pool path
			runIndex(instr, fn, i)
		}
		if instr {
			metrics.ObserveTimer("par.foreach.busy_ns", time.Since(start))
			metrics.SetGauge("par.foreach.utilization", 1)
		}
		return
	}

	var (
		next      atomic.Int64
		executed  atomic.Int64 // indices whose fn ran (including the panicking one)
		busyNS    atomic.Int64 // summed per-worker time inside fn
		drainFrom atomic.Int64 // earliest time a worker found the queue empty (unix ns)
		wg        sync.WaitGroup
		panicked  atomic.Bool
		panicMu   sync.Mutex
		panicVal  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			var busy time.Duration
			defer func() {
				if instr {
					busyNS.Add(busy.Nanoseconds())
				}
				wg.Done()
			}()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || panicked.Load() {
					if instr && i >= n {
						now := time.Now().UnixNano()
						// Keep the earliest out-of-work timestamp.
						for {
							prev := drainFrom.Load()
							if prev != 0 && prev <= now {
								break
							}
							if drainFrom.CompareAndSwap(prev, now) {
								break
							}
						}
					}
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if !panicked.Load() {
								panicVal = r
								panicked.Store(true)
							}
							panicMu.Unlock()
						}
					}()
					var t0 time.Time
					if instr {
						t0 = time.Now()
					}
					executed.Add(1)
					runIndex(instr, fn, i)
					if instr {
						busy += time.Since(t0)
					}
				}()
			}
		}()
	}
	wg.Wait()
	if instr {
		wall := time.Since(start)
		metrics.ObserveTimer("par.foreach.wall_ns", wall)
		metrics.ObserveTimer("par.foreach.busy_ns", time.Duration(busyNS.Load()))
		if wall > 0 {
			metrics.SetGauge("par.foreach.utilization",
				float64(busyNS.Load())/(float64(workers)*float64(wall.Nanoseconds())))
		}
		if df := drainFrom.Load(); df != 0 {
			end := start.Add(wall).UnixNano()
			if end > df {
				metrics.ObserveTimer("par.foreach.drain_ns", time.Duration(end-df))
			}
		}
		if skipped := int64(n) - executed.Load(); skipped > 0 {
			metrics.AddCounter("par.foreach.skipped_indices", skipped)
		}
	}
	if panicked.Load() {
		if instr {
			metrics.AddCounter("par.foreach.panics", 1)
		}
		panic(fmt.Sprintf("par: worker panicked: %v", panicVal))
	}
}

// runIndex executes fn(i), recording the per-index latency when
// instrumented. Panics propagate to the caller.
func runIndex(instr bool, fn func(int), i int) {
	if !instr {
		fn(i)
		return
	}
	t0 := time.Now()
	fn(i)
	metrics.ObserveHistogram("par.foreach.index_ns", time.Since(t0).Nanoseconds())
}

// Map runs fn over [0, n) in parallel and returns the results in index
// order. Determinism: out[i] depends only on fn(i).
func Map[T any](n, workers int, fn func(int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}
