// Package par provides the small deterministic-parallelism substrate the
// experiment harness runs on: a bounded worker pool over an index space.
//
// Every experiment trial draws its randomness from a stream derived from
// (seed, trial index), so trials are independent and the work is
// embarrassingly parallel; results are written into per-index slots and
// reduced in index order afterwards, which keeps every table bit-for-bit
// reproducible regardless of the worker count.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), distributing indices over a
// pool of `workers` goroutines (runtime.NumCPU() when workers <= 0).
// It returns after all calls complete. If any fn panics, ForEach panics
// in the caller's goroutine with the first captured panic value (wrapped
// to note its origin); remaining indices may be skipped.
func ForEach(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicMu  sync.Mutex
		panicVal any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || panicked.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if !panicked.Load() {
								panicVal = r
								panicked.Store(true)
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(fmt.Sprintf("par: worker panicked: %v", panicVal))
	}
}

// Map runs fn over [0, n) in parallel and returns the results in index
// order. Determinism: out[i] depends only on fn(i).
func Map[T any](n, workers int, fn func(int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}
