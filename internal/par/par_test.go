package par

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for non-positive n")
	}
}

func TestForEachMoreWorkersThanWork(t *testing.T) {
	var count atomic.Int32
	ForEach(3, 100, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestForEachPanicsPropagate(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("wrong panic payload: %v", r)
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestForEachSequentialPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sequential path swallowed panic")
		}
	}()
	ForEach(5, 1, func(i int) {
		if i == 2 {
			panic("boom")
		}
	})
}

func TestMapDeterministicOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out := Map(100, workers, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapParallelMatchesSequential(t *testing.T) {
	seq := Map(257, 1, func(i int) float64 { return float64(i) / 3 })
	parl := Map(257, 16, func(i int) float64 { return float64(i) / 3 })
	for i := range seq {
		if seq[i] != parl[i] {
			t.Fatalf("index %d differs", i)
		}
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(64, 8, func(int) {})
	}
}
