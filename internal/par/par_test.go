package par

import (
	"strings"
	"sync/atomic"
	"testing"

	"dynalloc/internal/metrics"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for non-positive n")
	}
}

func TestForEachMoreWorkersThanWork(t *testing.T) {
	var count atomic.Int32
	ForEach(3, 100, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestForEachPanicsPropagate(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("wrong panic payload: %v", r)
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
}

func TestForEachSequentialPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sequential path swallowed panic")
		}
	}()
	ForEach(5, 1, func(i int) {
		if i == 2 {
			panic("boom")
		}
	})
}

func TestMapDeterministicOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out := Map(100, workers, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapParallelMatchesSequential(t *testing.T) {
	seq := Map(257, 1, func(i int) float64 { return float64(i) / 3 })
	parl := Map(257, 16, func(i int) float64 { return float64(i) / 3 })
	for i := range seq {
		if seq[i] != parl[i] {
			t.Fatalf("index %d differs", i)
		}
	}
}

func TestForEachMetrics(t *testing.T) {
	metrics.Reset()
	metrics.Enable()
	defer func() {
		metrics.Disable()
		metrics.Reset()
	}()
	var count atomic.Int32
	ForEach(50, 4, func(int) { count.Add(1) })
	s := metrics.Default().Snapshot()
	if s.Counters["par.foreach.calls"] != 1 || s.Counters["par.foreach.indices"] != 50 {
		t.Fatalf("call/index counters wrong: %+v", s.Counters)
	}
	if s.Counters["par.foreach.skipped_indices"] != 0 {
		t.Fatalf("clean run recorded skips: %+v", s.Counters)
	}
	if s.Timers["par.foreach.wall_ns"].Count != 1 {
		t.Fatalf("wall timer missing: %+v", s.Timers)
	}
	if got := s.Histograms["par.foreach.index_ns"].Count; got != 50 {
		t.Fatalf("index histogram count = %d, want 50", got)
	}
	u := s.Gauges["par.foreach.utilization"]
	if u <= 0 || u > 1.000001 {
		t.Fatalf("utilization out of range: %v", u)
	}
}

func TestForEachPanicRecordsSkippedIndices(t *testing.T) {
	metrics.Reset()
	metrics.Enable()
	defer func() {
		metrics.Disable()
		metrics.Reset()
	}()
	const n = 1000
	var executed atomic.Int64
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic not propagated")
			}
		}()
		ForEach(n, 4, func(i int) {
			executed.Add(1)
			if i == 3 {
				panic("boom")
			}
		})
	}()
	s := metrics.Default().Snapshot()
	if s.Counters["par.foreach.panics"] != 1 {
		t.Fatalf("panic counter = %d", s.Counters["par.foreach.panics"])
	}
	skipped := s.Counters["par.foreach.skipped_indices"]
	if skipped == 0 {
		t.Fatal("early panic skipped no indices — expected an abandoned tail")
	}
	if got := executed.Load() + skipped; got != n {
		t.Fatalf("executed (%d) + skipped (%d) = %d, want %d", executed.Load(), skipped, got, n)
	}
}

func TestForEachSequentialPanicRecordsSkippedIndices(t *testing.T) {
	metrics.Reset()
	metrics.Enable()
	defer func() {
		metrics.Disable()
		metrics.Reset()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic not propagated")
			}
		}()
		ForEach(10, 1, func(i int) {
			if i == 4 {
				panic("boom")
			}
		})
	}()
	s := metrics.Default().Snapshot()
	if got := s.Counters["par.foreach.skipped_indices"]; got != 5 {
		t.Fatalf("skipped = %d, want 5 (indices 5..9 never ran)", got)
	}
	if s.Counters["par.foreach.panics"] != 1 {
		t.Fatalf("panic counter = %d", s.Counters["par.foreach.panics"])
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(64, 8, func(int) {})
	}
}
