package metrics

import (
	"sync"
	"testing"
)

func TestHistogramMergeEmpty(t *testing.T) {
	var h, empty Histogram
	h.Observe(10)
	h.Observe(20)

	h.Merge(&empty) // merging an empty histogram changes nothing
	if h.Count() != 2 || h.Sum() != 30 {
		t.Fatalf("after empty merge: count=%d sum=%d", h.Count(), h.Sum())
	}
	h.Merge(nil) // nil is a no-op
	if h.Count() != 2 {
		t.Fatalf("after nil merge: count=%d", h.Count())
	}

	// Merging into an empty histogram reproduces the source exactly.
	var dst Histogram
	dst.Merge(&h)
	if dst.Count() != 2 || dst.Sum() != 30 {
		t.Fatalf("empty dst after merge: count=%d sum=%d", dst.Count(), dst.Sum())
	}
	if dst.Quantile(1) != h.Quantile(1) || dst.Quantile(0) != h.Quantile(0) {
		t.Fatal("merged quantiles differ from source")
	}
	// The source is untouched.
	if h.Count() != 2 || h.Sum() != 30 {
		t.Fatalf("source modified by merge: count=%d sum=%d", h.Count(), h.Sum())
	}
}

// TestHistogramMergeOverlap: merging two histograms with overlapping
// buckets is exactly equivalent to observing both streams into one.
func TestHistogramMergeOverlap(t *testing.T) {
	var a, b, want Histogram
	for v := int64(1); v <= 100; v++ {
		a.Observe(v)
		want.Observe(v)
	}
	for v := int64(50); v <= 150; v++ { // overlaps a's upper buckets
		b.Observe(v)
		want.Observe(v)
	}

	a.Merge(&b)
	if a.Count() != want.Count() || a.Sum() != want.Sum() {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d", a.Count(), a.Sum(), want.Count(), want.Sum())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, exp := a.Quantile(q), want.Quantile(q); got != exp {
			t.Fatalf("q%.2f = %d, want %d", q, got, exp)
		}
	}
	ab, wb := a.nonzeroBuckets(), want.nonzeroBuckets()
	if len(ab) != len(wb) {
		t.Fatalf("bucket shapes differ: %v vs %v", ab, wb)
	}
	for i := range ab {
		if ab[i] != wb[i] {
			t.Fatalf("bucket %d: %+v vs %+v", i, ab[i], wb[i])
		}
	}
}

// TestHistogramMergeFanIn is the engine's aggregation shape: per-worker
// histograms merged into one shared sketch, concurrently.
func TestHistogramMergeFanIn(t *testing.T) {
	const workers = 8
	const per = 1000
	parts := make([]Histogram, workers)
	for w := range parts {
		for i := int64(1); i <= per; i++ {
			parts[w].Observe(i)
		}
	}
	var agg Histogram
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			agg.Merge(&parts[w])
		}(w)
	}
	wg.Wait()
	if agg.Count() != workers*per {
		t.Fatalf("count = %d, want %d", agg.Count(), workers*per)
	}
	if agg.Sum() != workers*per*(per+1)/2 {
		t.Fatalf("sum = %d", agg.Sum())
	}
}
