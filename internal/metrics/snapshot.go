package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// SnapshotSchema identifies the JSON layout written by WriteFile; bump
// it when the structure changes incompatibly.
const SnapshotSchema = "dynalloc-metrics/v1"

// Snapshot is a point-in-time, JSON-serializable copy of a registry.
type Snapshot struct {
	Schema     string                  `json:"schema"`
	TakenAt    time.Time               `json:"taken_at"`
	GoVersion  string                  `json:"go_version"`
	NumCPU     int                     `json:"num_cpu"`
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Timers     map[string]TimerStats   `json:"timers,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// TimerStats is the serialized form of a Timer.
type TimerStats struct {
	Count   int64   `json:"count"`
	TotalNS int64   `json:"total_ns"`
	MeanNS  float64 `json:"mean_ns"`
	MinNS   int64   `json:"min_ns"`
	MaxNS   int64   `json:"max_ns"`
}

// HistBucket is one sparse histogram bucket: Count observations at most
// Upper (and above the previous listed bound).
type HistBucket struct {
	Upper int64 `json:"upper"`
	Count int64 `json:"count"`
}

// HistSnapshot is the serialized form of a Histogram.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Mean    float64      `json:"mean"`
	P50     int64        `json:"p50"`
	P90     int64        `json:"p90"`
	P99     int64        `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the registry's current values. Concurrent recording
// is allowed; the snapshot is per-metric consistent (each metric's
// fields are read through its own synchronization) but not a global
// atomic cut.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:    SnapshotSchema,
		TakenAt:   time.Now().UTC(),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.ctrs) > 0 {
		s.Counters = make(map[string]int64, len(r.ctrs))
		for _, name := range names(r.ctrs) {
			s.Counters[name] = r.ctrs[name].Value()
		}
	}
	if len(r.gaug) > 0 {
		s.Gauges = make(map[string]float64, len(r.gaug))
		for _, name := range names(r.gaug) {
			s.Gauges[name] = r.gaug[name].Value()
		}
	}
	if len(r.timrs) > 0 {
		s.Timers = make(map[string]TimerStats, len(r.timrs))
		for _, name := range names(r.timrs) {
			t := r.timrs[name]
			t.mu.Lock()
			min, max := t.min, t.max
			t.mu.Unlock()
			s.Timers[name] = TimerStats{
				Count:   t.Count(),
				TotalNS: t.TotalNS(),
				MeanNS:  t.MeanNS(),
				MinNS:   min,
				MaxNS:   max,
			}
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for _, name := range names(r.hists) {
			h := r.hists[name]
			s.Histograms[name] = HistSnapshot{
				Count:   h.Count(),
				Sum:     h.Sum(),
				Mean:    h.Mean(),
				P50:     h.Quantile(0.50),
				P90:     h.Quantile(0.90),
				P99:     h.Quantile(0.99),
				Buckets: h.nonzeroBuckets(),
			}
		}
	}
	return s
}

// MarshalIndent renders the snapshot as indented JSON.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WriteFile snapshots the registry and writes it as indented JSON.
func (r *Registry) WriteFile(path string) error {
	b, err := r.Snapshot().MarshalIndent()
	if err != nil {
		return fmt.Errorf("metrics: marshal snapshot: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("metrics: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot loads a snapshot previously written by WriteFile and
// validates its schema tag.
func ReadSnapshot(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("metrics: read snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: parse snapshot %s: %w", path, err)
	}
	if s.Schema != SnapshotSchema {
		return Snapshot{}, fmt.Errorf("metrics: %s has schema %q, want %q", path, s.Schema, SnapshotSchema)
	}
	return s, nil
}
