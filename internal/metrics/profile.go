package metrics

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	rpprof "runtime/pprof"
)

// ProfileConfig groups the observability outputs a CLI can enable: a
// metrics snapshot, a live pprof HTTP endpoint, and CPU/heap profiles
// captured over the whole run.
type ProfileConfig struct {
	MetricsPath string // write a metrics Snapshot JSON here on Stop
	PprofAddr   string // serve net/http/pprof here (e.g. ":6060") for the run's duration
	CPUPath     string // write a CPU profile spanning Start..Stop here
	HeapPath    string // write a heap profile at Stop here
}

// RegisterFlags registers the standard observability flags on fs (use
// flag.CommandLine for a CLI's global flags) and returns the config
// they populate. Call cfg.Start after fs is parsed.
func RegisterFlags(fs *flag.FlagSet) *ProfileConfig {
	cfg := &ProfileConfig{}
	fs.StringVar(&cfg.MetricsPath, "metrics", "", "write a metrics snapshot JSON to this file on exit (enables collection)")
	fs.StringVar(&cfg.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. :6060) while running")
	fs.StringVar(&cfg.CPUPath, "cpuprofile", "", "write a CPU profile of the whole run to this file")
	fs.StringVar(&cfg.HeapPath, "memprofile", "", "write a heap profile to this file on exit")
	return cfg
}

// Start begins collection and profiling per the config. The returned
// stop function must be called once before process exit (it finalizes
// profiles and writes the metrics snapshot); it is safe to call when
// nothing was enabled. Start fails without side effects if the CPU
// profile cannot be created or started.
func (c *ProfileConfig) Start() (stop func() error, err error) {
	if c.MetricsPath != "" {
		Enable()
	}
	if c.PprofAddr != "" {
		srv := &http.Server{Addr: c.PprofAddr}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "metrics: pprof server on %s: %v\n", c.PprofAddr, err)
			}
		}()
	}
	var cpuFile *os.File
	if c.CPUPath != "" {
		cpuFile, err = os.Create(c.CPUPath)
		if err != nil {
			return nil, fmt.Errorf("metrics: create cpu profile: %w", err)
		}
		if err := rpprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("metrics: start cpu profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			rpprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if c.HeapPath != "" {
			f, err := os.Create(c.HeapPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("metrics: create heap profile: %w", err)
				}
			} else {
				runtime.GC() // settle the heap so the profile reflects live objects
				if err := rpprof.WriteHeapProfile(f); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("metrics: write heap profile: %w", err)
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if c.MetricsPath != "" {
			if err := Default().WriteFile(c.MetricsPath); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}
