package metrics

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 16, 10000
	var c Counter
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestTimerConcurrent(t *testing.T) {
	const goroutines, perG = 8, 500
	var tm Timer
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tm.Observe(time.Duration(g*perG+i+1) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := tm.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	// Sum over all observed values: 1 + 2 + ... + goroutines*perG.
	n := int64(goroutines * perG)
	if got, want := tm.TotalNS(), n*(n+1)/2; got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
	s := snapshotTimer(&tm)
	if s.MinNS != 1 || s.MaxNS != n {
		t.Fatalf("min/max = %d/%d, want 1/%d", s.MinNS, s.MaxNS, n)
	}
}

// snapshotTimer extracts a TimerStats via the registry snapshot path.
func snapshotTimer(tm *Timer) TimerStats {
	r := NewRegistry()
	r.mu.Lock()
	r.timrs["t"] = tm
	r.mu.Unlock()
	return r.Snapshot().Timers["t"]
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := 1; v <= 100; v++ {
				g.Set(float64(v) / 7)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 100.0/7 {
		t.Fatalf("gauge = %v, want %v", got, 100.0/7)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations: 1..100.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Fatalf("count/sum = %d/%d", h.Count(), h.Sum())
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("mean = %v", got)
	}
	// Quantile is an upper estimate within a factor of 2: the true p50
	// (50) lives in bucket (32, 64].
	if got := h.Quantile(0.5); got != 64 {
		t.Fatalf("p50 = %d, want 64", got)
	}
	if got := h.Quantile(1); got != 128 {
		t.Fatalf("p100 = %d, want 128", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %d, want 1", got)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(-5) // clamped to 0
	h.Observe(math.MaxInt64)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("low quantile = %d", got)
	}
	if got := h.Quantile(1); got <= 0 {
		t.Fatalf("top quantile overflowed: %d", got)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d", got)
	}
	if got := h.Sum(); got != 8*1000*1001/2 {
		t.Fatalf("sum = %d", got)
	}
}

func TestRegistryIdempotentConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	got := make([]*Counter, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			got[g] = r.Counter("same")
			got[g].Inc()
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatal("Counter(name) returned distinct instances")
		}
	}
	if v := r.Counter("same").Value(); v != goroutines {
		t.Fatalf("merged count = %d, want %d", v, goroutines)
	}
}

func TestDefaultGate(t *testing.T) {
	Reset()
	Disable()
	AddCounter("gated", 5)
	ObserveTimer("gated_t", time.Second)
	Span("gated_s")()
	if s := Default().Snapshot(); len(s.Counters) != 0 || len(s.Timers) != 0 {
		t.Fatalf("disabled gate still recorded: %+v", s)
	}
	Enable()
	defer Disable()
	AddCounter("gated", 5)
	SetGauge("g", 2.5)
	ObserveHistogram("h", 42)
	done := Span("gated_s")
	done()
	s := Default().Snapshot()
	if s.Counters["gated"] != 5 || s.Gauges["g"] != 2.5 || s.Histograms["h"].Count != 1 {
		t.Fatalf("enabled gate dropped data: %+v", s)
	}
	if s.Timers["gated_s"].Count != 1 {
		t.Fatalf("span not recorded: %+v", s.Timers)
	}
	Reset()
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("par.foreach.calls").Add(3)
	r.Gauge("par.foreach.utilization").Set(0.875)
	r.Timer("exper.E1.run_ns").Observe(1500 * time.Millisecond)
	r.Timer("exper.E1.run_ns").Observe(500 * time.Millisecond)
	for v := int64(1); v <= 64; v++ {
		r.Histogram("core.coalescence.trial_ns").Observe(v * 1000)
	}

	path := filepath.Join(t.TempDir(), "snap.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Snapshot()
	// TakenAt differs between the write and the re-snapshot; compare the
	// payload.
	got.TakenAt, want.TakenAt = time.Time{}, time.Time{}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Fatalf("round trip mismatch:\n got %s\nwant %s", gb, wb)
	}
	if got.Schema != SnapshotSchema {
		t.Fatalf("schema = %q", got.Schema)
	}
	ts := got.Timers["exper.E1.run_ns"]
	if ts.Count != 2 || ts.TotalNS != 2_000_000_000 || ts.MeanNS != 1_000_000_000 {
		t.Fatalf("timer stats = %+v", ts)
	}
	hs := got.Histograms["core.coalescence.trial_ns"]
	if hs.Count != 64 || hs.P99 < hs.P50 {
		t.Fatalf("hist stats = %+v", hs)
	}
}

func TestReadSnapshotRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeJSON(path, map[string]any{"schema": "other/v9"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func writeJSON(path string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
