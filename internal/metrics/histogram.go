package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i
// counts observations v with 2^(i-1) <= v < 2^i (bucket 0 holds v <= 1,
// the last bucket absorbs everything above 2^(histBuckets-2) ns —
// about 1.2 hours, far beyond any per-trial latency here).
const histBuckets = 43

// Histogram is a fixed-size log2-bucketed sketch of nonnegative int64
// observations (by convention: nanoseconds). It is lock-free: one
// atomic add per Observe plus count/sum upkeep, so it is cheap enough
// to record per-trial latencies from every worker. Quantiles are
// estimated to within a factor of 2 (the bucket width), which is the
// right resolution for "did the tail move" regression questions.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // smallest b with v <= 2^b
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// Observe records one value. Negative values are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Merge folds every observation recorded in o into h, bucket by
// bucket: counts, sums and per-bucket tallies add, so quantile
// estimates of the merged histogram are exactly those of observing
// both streams into one sketch (the fixed power-of-two buckets make
// merging lossless). This is how per-worker and per-shard histograms —
// e.g. the serve engine's admission latencies or recovery episodes
// collected shard-locally — aggregate into one registry metric.
//
// Merge is safe to race with writers on h. Reads of o are atomic but
// not a consistent cut; quiesce o's writers first for an exact merge.
// A nil o is a no-op, and o is not modified (merging the same source
// twice double-counts it).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if n := o.count.Load(); n != 0 {
		h.count.Add(n)
	}
	if s := o.sum.Load(); s != 0 {
		h.sum.Add(s)
	}
	for i := range o.buckets {
		if c := o.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observation (0 before the first).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper estimate of the q-th quantile (q in [0,1]):
// the upper bound of the bucket containing it. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// nonzeroBuckets returns the sketch as a sparse {upper bound -> count}
// listing, smallest bound first.
func (h *Histogram) nonzeroBuckets() []HistBucket {
	var out []HistBucket
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			out = append(out, HistBucket{Upper: bucketUpper(i), Count: c})
		}
	}
	return out
}
