// Package metrics is the observability substrate for the experiment
// engine: lock-free counters, gauges, wall-clock timers and
// log-bucketed latency histograms, collected in a named registry that
// snapshots to JSON.
//
// Everything routes through a process-wide Default registry guarded by
// an enable gate: when disabled (the default) every recording call is a
// single atomic load and an early return, so instrumented hot paths —
// par.ForEach, the coupling estimators — pay effectively nothing unless
// a CLI turned collection on with -metrics/-bench. All types are safe
// for concurrent use.
//
// Naming convention: dotted lowercase paths, coarsest component first
// ("par.foreach.wall_ns", "exper.E1.run_ns", "core.coalescence.trial_ns").
// Durations are recorded in nanoseconds and suffixed "_ns".
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates the Default registry. Package-level so the check inlines
// to one atomic load on instrumented hot paths.
var enabled atomic.Bool

// Enable turns on collection into the Default registry.
func Enable() { enabled.Store(true) }

// Disable turns collection off again (used by tests).
func Disable() { enabled.Store(false) }

// Enabled reports whether the Default registry is collecting. Call sites
// that would do nontrivial work to compute a metric (e.g. per-worker
// timing) should check this first.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically accumulating atomic int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float64 (stored as IEEE-754 bits).
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the most recently set value (0 if never set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Timer accumulates durations: total time, call count, min and max.
// Unlike Histogram it keeps exact totals, so it is the right type for
// stage timings where the mean matters more than the tail shape.
type Timer struct {
	count atomic.Int64
	total atomic.Int64 // ns
	mu    sync.Mutex   // guards seen/min/max
	seen  bool
	min   int64
	max   int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	t.count.Add(1)
	t.total.Add(ns)
	t.mu.Lock()
	if !t.seen || ns < t.min {
		t.min = ns
	}
	if !t.seen || ns > t.max {
		t.max = ns
	}
	t.seen = true
	t.mu.Unlock()
}

// Time runs fn and observes its wall-clock duration.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// TotalNS returns the summed duration in nanoseconds.
func (t *Timer) TotalNS() int64 { return t.total.Load() }

// MeanNS returns the mean duration in nanoseconds (0 before the first
// observation).
func (t *Timer) MeanNS() float64 {
	n := t.count.Load()
	if n == 0 {
		return 0
	}
	return float64(t.total.Load()) / float64(n)
}

// Registry is a named collection of metrics. The zero value is NOT
// ready; use NewRegistry. Metric creation is idempotent: the first
// Counter("x") allocates, later calls return the same instance.
type Registry struct {
	mu    sync.RWMutex
	ctrs  map[string]*Counter
	gaug  map[string]*Gauge
	timrs map[string]*Timer
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  map[string]*Counter{},
		gaug:  map[string]*Gauge{},
		timrs: map[string]*Timer{},
		hists: map[string]*Histogram{},
	}
}

// defaultRegistry is the process-wide registry the convenience
// functions below feed. It always exists; the enable gate only controls
// whether the convenience functions record into it. Held behind an
// atomic pointer so Reset is safe against in-flight recorders.
var defaultRegistry atomic.Pointer[Registry]

func init() { defaultRegistry.Store(NewRegistry()) }

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry.Load() }

// Reset swaps in a fresh Default registry (used by tests and by
// cmd/bench between workloads). In-flight recorders may land in either
// the old or the new registry; callers quiesce instrumented work first.
func Reset() { defaultRegistry.Store(NewRegistry()) }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.ctrs[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.ctrs[name]; ok {
		return c
	}
	c = &Counter{}
	r.ctrs[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gaug[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gaug[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gaug[name] = g
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timrs[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok = r.timrs[name]; ok {
		return t
	}
	t = &Timer{}
	r.timrs[name] = t
	return t
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// names returns the sorted keys of a metric map (for stable snapshots).
func names[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- Default-registry convenience recorders -------------------------
//
// These are the functions instrumented packages call. Each one is a
// no-op unless Enable() has been called, so "always instrumented" code
// costs one atomic load in the common case.

// AddCounter adds n to the named counter in the Default registry.
func AddCounter(name string, n int64) {
	if !enabled.Load() {
		return
	}
	Default().Counter(name).Add(n)
}

// SetGauge sets the named gauge in the Default registry.
func SetGauge(name string, v float64) {
	if !enabled.Load() {
		return
	}
	Default().Gauge(name).Set(v)
}

// ObserveTimer records d against the named timer in the Default
// registry.
func ObserveTimer(name string, d time.Duration) {
	if !enabled.Load() {
		return
	}
	Default().Timer(name).Observe(d)
}

// ObserveHistogram records a nanosecond latency against the named
// histogram in the Default registry.
func ObserveHistogram(name string, ns int64) {
	if !enabled.Load() {
		return
	}
	Default().Histogram(name).Observe(ns)
}

// Span starts a wall-clock stage timing and returns the function that
// stops it. Use as a one-liner:
//
//	defer metrics.Span("exper.E1.run_ns")()
//
// When collection is disabled the returned closure is a shared no-op
// and time.Now is never called.
func Span(name string) func() {
	if !enabled.Load() {
		return nopSpan
	}
	start := time.Now()
	return func() { Default().Timer(name).Observe(time.Since(start)) }
}

func nopSpan() {}
