// Package trace records trajectories of simulation metrics (gap, max
// load, unfairness, coupling distance, ...) with bounded memory: when a
// recorder exceeds its point budget it doubles its sampling stride and
// compacts, so arbitrarily long runs keep an evenly-spaced summary of at
// most maxPoints rows. Traces serialize to CSV for external plotting.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Recorder accumulates (step, values...) rows under a point budget.
type Recorder struct {
	columns   []string
	maxPoints int
	stride    int64
	steps     []int64
	rows      [][]float64
}

// NewRecorder returns a recorder for the named value columns keeping at
// most maxPoints rows (minimum 8).
func NewRecorder(maxPoints int, columns ...string) *Recorder {
	if maxPoints < 8 {
		panic("trace: need a budget of at least 8 points")
	}
	if len(columns) == 0 {
		panic("trace: need at least one column")
	}
	return &Recorder{columns: columns, maxPoints: maxPoints, stride: 1}
}

// Columns returns the value column names.
func (r *Recorder) Columns() []string { return append([]string(nil), r.columns...) }

// Len returns the number of retained rows.
func (r *Recorder) Len() int { return len(r.steps) }

// Stride returns the current sampling stride: Record calls whose step is
// not a multiple of it are dropped.
func (r *Recorder) Stride() int64 { return r.stride }

// Record offers one observation at the given step (steps must be
// non-decreasing across calls). Values must match the column count.
func (r *Recorder) Record(step int64, values ...float64) {
	if len(values) != len(r.columns) {
		panic(fmt.Sprintf("trace: %d values for %d columns", len(values), len(r.columns)))
	}
	if n := len(r.steps); n > 0 && step < r.steps[n-1] {
		panic("trace: steps must be non-decreasing")
	}
	if step%r.stride != 0 {
		return
	}
	r.steps = append(r.steps, step)
	r.rows = append(r.rows, append([]float64(nil), values...))
	if len(r.steps) > r.maxPoints {
		r.compact()
	}
}

// compact doubles the stride and drops rows that no longer land on it.
func (r *Recorder) compact() {
	r.stride *= 2
	keptSteps := r.steps[:0]
	keptRows := r.rows[:0]
	for i, s := range r.steps {
		if s%r.stride == 0 {
			keptSteps = append(keptSteps, s)
			keptRows = append(keptRows, r.rows[i])
		}
	}
	r.steps = keptSteps
	r.rows = keptRows
}

// At returns the i-th retained (step, values) row. The returned slice is
// owned by the recorder and must not be modified.
func (r *Recorder) At(i int) (int64, []float64) {
	return r.steps[i], r.rows[i]
}

// Last returns the final retained row, or (0, nil) when empty.
func (r *Recorder) Last() (int64, []float64) {
	if len(r.steps) == 0 {
		return 0, nil
	}
	return r.steps[len(r.steps)-1], r.rows[len(r.rows)-1]
}

// Sparkline renders column col of the recorded trajectory as a one-line
// ASCII chart (8 height levels), for quick terminal inspection of decay
// curves. Returns "" when nothing is recorded.
func (r *Recorder) Sparkline(col int, width int) string {
	if col < 0 || col >= len(r.columns) {
		panic("trace: sparkline column out of range")
	}
	if width < 1 {
		panic("trace: sparkline width must be positive")
	}
	n := len(r.rows)
	if n == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := r.rows[0][col], r.rows[0][col]
	for _, row := range r.rows {
		v := row[col]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if width > n {
		width = n
	}
	out := make([]rune, width)
	for i := 0; i < width; i++ {
		// Average the bucket of rows mapped to this cell.
		from := i * n / width
		to := (i + 1) * n / width
		if to == from {
			to = from + 1
		}
		sum := 0.0
		for j := from; j < to; j++ {
			sum += r.rows[j][col]
		}
		v := sum / float64(to-from)
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		out[i] = levels[idx]
	}
	return string(out)
}

// WriteCSV emits "step,<columns...>" rows.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "step,%s\n", strings.Join(r.columns, ",")); err != nil {
		return err
	}
	for i, s := range r.steps {
		parts := make([]string, 0, len(r.columns)+1)
		parts = append(parts, fmt.Sprintf("%d", s))
		for _, v := range r.rows[i] {
			parts = append(parts, fmt.Sprintf("%g", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}
