package trace

import (
	"strings"
	"testing"
)

func TestRecordAndRead(t *testing.T) {
	r := NewRecorder(16, "gap", "max")
	for s := int64(0); s < 10; s++ {
		r.Record(s, float64(s), float64(2*s))
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d", r.Len())
	}
	step, vals := r.At(3)
	if step != 3 || vals[0] != 3 || vals[1] != 6 {
		t.Fatalf("At(3) = %d, %v", step, vals)
	}
	last, lv := r.Last()
	if last != 9 || lv[0] != 9 {
		t.Fatalf("Last = %d, %v", last, lv)
	}
}

func TestBudgetAndStride(t *testing.T) {
	r := NewRecorder(8, "x")
	for s := int64(0); s < 1000; s++ {
		r.Record(s, float64(s))
	}
	if r.Len() > 8 {
		t.Fatalf("budget exceeded: %d rows", r.Len())
	}
	if r.Stride() < 128 {
		t.Fatalf("stride = %d, expected >= 128 after 1000 points into 8 slots", r.Stride())
	}
	// All retained steps are multiples of the stride and increasing.
	prev := int64(-1)
	for i := 0; i < r.Len(); i++ {
		s, _ := r.At(i)
		if s%r.Stride() != 0 {
			t.Fatalf("retained step %d not on stride %d", s, r.Stride())
		}
		if s <= prev {
			t.Fatalf("steps not increasing")
		}
		prev = s
	}
}

func TestSparseSteps(t *testing.T) {
	// Recording only occasionally still works; off-stride steps drop.
	r := NewRecorder(8, "x")
	r.Record(0, 1)
	r.Record(100, 2)
	r.Record(101, 3)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewRecorder(4, "x") },
		func() { NewRecorder(8) },
		func() { NewRecorder(8, "x").Record(0, 1, 2) },
		func() {
			r := NewRecorder(8, "x")
			r.Record(5, 1)
			r.Record(3, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEmptyLast(t *testing.T) {
	r := NewRecorder(8, "x")
	if s, v := r.Last(); s != 0 || v != nil {
		t.Fatal("empty Last should be zero")
	}
}

func TestSparkline(t *testing.T) {
	r := NewRecorder(64, "v")
	for s := int64(0); s < 32; s++ {
		r.Record(s, float64(s)) // ramp
	}
	sp := r.Sparkline(0, 8)
	runes := []rune(sp)
	if len(runes) != 8 {
		t.Fatalf("sparkline length %d: %q", len(runes), sp)
	}
	// A ramp renders non-decreasing levels, lowest first; the last cell
	// averages its bucket so it lands near (not exactly at) the top.
	if runes[0] != '▁' || runes[7] < '▆' {
		t.Fatalf("ramp sparkline = %q", sp)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("ramp not monotone: %q", sp)
		}
	}
}

func TestSparklineFlatAndEmpty(t *testing.T) {
	r := NewRecorder(16, "v")
	if r.Sparkline(0, 5) != "" {
		t.Fatal("empty recorder should render empty sparkline")
	}
	r.Record(0, 3)
	r.Record(1, 3)
	sp := r.Sparkline(0, 4)
	for _, c := range sp {
		if c != '▁' {
			t.Fatalf("flat sparkline = %q", sp)
		}
	}
}

func TestSparklinePanics(t *testing.T) {
	r := NewRecorder(16, "v")
	r.Record(0, 1)
	for _, f := range []func(){
		func() { r.Sparkline(1, 4) },
		func() { r.Sparkline(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(8, "gap", "max")
	r.Record(0, 1, 2)
	r.Record(1, 0.5, 3)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "step,gap,max\n0,1,2\n1,0.5,3\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}
